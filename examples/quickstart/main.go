// Quickstart: run the paper's asynchronous plurality-consensus protocol on
// a complete graph of 100k nodes with 8 opinions and a (1+0.5) bias, then
// print what happened.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"plurality"
)

func main() {
	// 1. Build the initial opinion distribution: color 0 holds 1.5x the
	//    support of every other color (Theorem 1.3's (1+eps) regime).
	const (
		n   = 100_000
		k   = 8
		eps = 0.5
	)
	counts, err := plurality.Biased(n, k, eps)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial supports: %v\n", counts)

	// 2. Inspect the schedule the protocol will run: block length Delta,
	//    phase structure, endgame budget — all Θ(log n)-sized.
	spec, err := plurality.PlanCore(n)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("schedule: Delta=%d, %d phases of %d ticks, endgame=%d ticks\n",
		spec.Delta, spec.Phases, spec.PhaseTicks, spec.EndgameTicks)

	// 3. Compile the job: protocol spec × initial counts × options,
	//    validated eagerly. The job is reusable and safe to share.
	job, err := plurality.NewJob("core", counts, plurality.WithSeed(42))
	if err != nil {
		log.Fatal(err)
	}

	// 4. Run. Each node carries a unit-rate Poisson clock (simulated by
	//    the sequential model); runs are deterministic for a fixed seed,
	//    and the context would let us cancel mid-run.
	rep, err := job.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	// 5. Report: the plurality color should win in Θ(log n) parallel
	//    time, i.e. a few thousand time units at this size — each node
	//    was activated only ~ConsensusTime times. The unified Report
	//    carries the cross-protocol fields; Core() has the paper detail.
	core, _ := rep.Core()
	fmt.Printf("consensus on color %d after %.1f time units (%d total activations)\n",
		rep.Winner, rep.ConsensusTime, rep.Ticks)
	fmt.Printf("plurality won: %v; sync-gadget jumps executed: %d\n",
		rep.Winner == 0, core.Jumps)
}
