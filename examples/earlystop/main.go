// Earlystop: stop a run the moment it is "good enough", using the two
// halves of the Run API v2 together — streaming observation and context
// cancellation.
//
// An Undecided-State Dynamics run at n = 10⁷ executes on the
// count-collapsed occupancy engine (O(k) memory, so ten million nodes cost
// nothing to set up). The observer streams a histogram snapshot every two
// units of parallel time; as soon as the leading color holds 95% support it
// cancels the context, and the engine returns mid-simulation with the
// progress made so far — no polling, no waiting for exact consensus.
//
// Why not the Voter baseline? Voter is a neutral martingale: moving the
// leader from its initial 22% to 95% support takes Θ(n) parallel time —
// about 10¹⁴ activations at this n — so "early" never arrives. Early
// stopping needs a dynamic with drift; any other registry spec
// ("two-choices", "3-majority", "j-majority:5") works the same way here.
//
//	go run ./examples/earlystop
package main

import (
	"context"
	"errors"
	"fmt"
	"log"

	"plurality"
)

func main() {
	const (
		n         = 10_000_000
		k         = 8
		threshold = 0.95
	)
	counts, err := plurality.Biased(n, k, 1) // c1 = 2·c2
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: n=%d, k=%d, leader=%d (%.1f%%)\n\n",
		n, k, counts[0], 100*float64(counts[0])/float64(n))

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// The observer sees (time, histogram, undecided, converged-fraction)
	// snapshots from inside the occupancy engine and pulls the plug at 95%
	// support. Snapshot.Counts is engine-owned scratch, so only scalar
	// fields are retained.
	type point struct {
		t, frac   float64
		undecided int64
	}
	var trail []point
	observer := plurality.WithObserver(2, func(s plurality.Snapshot) {
		trail = append(trail, point{t: s.Time, frac: s.ConvergedFraction, undecided: s.Undecided})
		if s.ConvergedFraction >= threshold {
			cancel()
		}
	})

	job, err := plurality.NewJob("usd", counts,
		plurality.WithSeed(42),
		plurality.WithModel(plurality.Poisson),
		plurality.WithEngine(plurality.EngineOccupancy), // O(k) state at n = 10⁷
		plurality.WithMaxTime(1e4),
		observer,
	)
	if err != nil {
		log.Fatal(err)
	}

	rep, err := job.Run(ctx)
	switch {
	case errors.Is(err, context.Canceled):
		fmt.Printf("stopped early at t=%.1f (%d activations): leader holds >= %.0f%%\n",
			rep.Time, rep.Ticks, 100*threshold)
	case err != nil:
		log.Fatal(err)
	default:
		fmt.Printf("full consensus at t=%.1f before the threshold tripped\n", rep.ConsensusTime)
	}
	fmt.Printf("leading color: C%d, undecided nodes left: %d\n\n", rep.Winner, rep.Undecided)

	fmt.Println("support trajectory (one snapshot per 2 time units):")
	for _, p := range trail {
		fmt.Printf("  t=%6.1f  leader=%.3f  undecided=%d\n", p.t, p.frac, p.undecided)
	}
}
