// Sensorvote: a wireless sensor network agrees on the plurality reading.
//
// A field of 50k sensors each quantize a noisy measurement into one of 16
// buckets. The true bucket is measured by more sensors than any other, but
// far from a majority. The sensors have no shared clock — each wakes up on
// its own Poisson timer — and radio responses take exponentially
// distributed time. This is exactly the paper's §4 setting: the core
// protocol still converges on the plurality bucket in Θ(log n) time. The
// support trajectory is recorded with the uniform WithObserver stream via
// the Trajectory helper, and a deadline on the context bounds the wall
// clock.
//
//	go run ./examples/sensorvote
package main

import (
	"context"
	"fmt"
	"log"
	"strings"
	"time"

	"plurality"
)

func main() {
	const (
		sensors = 50_000
		buckets = 16
	)

	// Zipf-distributed readings: the true value (bucket 0) is the most
	// common observation, trailed by near-miss quantizations.
	counts, err := plurality.Zipf(sensors, buckets, 0.9)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sensor readings per bucket (true bucket first):\n")
	for b, c := range counts {
		fmt.Printf("  bucket %2d: %5d sensors %s\n", b, c, bar(c, counts[0], 40))
	}

	// Poisson wake-ups (the continuous model) and Exp(2) radio latency:
	// mean response delay of half a wake-up interval. The trajectory
	// recorder observes the plurality support every 200 time units.
	traj := plurality.NewTrajectory()
	job, err := plurality.NewJob("core", counts,
		plurality.WithSeed(7),
		plurality.WithModel(plurality.Poisson),
		plurality.WithResponseDelay(2),
		traj.Observer(200),
	)
	if err != nil {
		log.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	rep, err := job.Run(ctx)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nnetwork agreed on bucket %d after %.0f time units (wake-ups per sensor: ~%.0f)\n",
		rep.Winner, rep.ConsensusTime, rep.ConsensusTime)
	fmt.Printf("plurality reading won: %v\n", rep.Winner == 0)
	fmt.Printf("\nplurality support over time:\n")
	times, fracs := traj.Series(plurality.SeriesConverged)
	for i, f := range fracs {
		fmt.Printf("  t=%6.0f  %.3f %s\n", times[i], f, bar(int64(f*1000), 1000, 40))
	}
	fmt.Printf("\nsparkline: %s\n", traj.Sparkline(40))
}

// bar renders v/max as a fixed-width ASCII bar.
func bar(v, max int64, width int) string {
	if max <= 0 {
		return ""
	}
	fill := int(v * int64(width) / max)
	if fill > width {
		fill = width
	}
	return "[" + strings.Repeat("#", fill) + strings.Repeat(".", width-fill) + "]"
}
