// Configrollout: a replica fleet converges on the most widely deployed
// configuration version using synchronous gossip rounds.
//
// 256 candidate config versions are live after a messy rollout; version 0
// leads but holds only a sliver of the fleet. With many candidate values,
// plain Two-Choices needs Ω(k) rounds (Theorem 1.1's lower bound), while
// OneExtraBit — one extra bit per replica — finishes in polylog rounds
// (Theorem 1.2). This example races them, plus the 3-Majority baseline, as
// three Jobs sharing one initial histogram: the synchronous dynamics select
// WithModel(Synchronous), OneExtraBit is its own protocol spec, and the
// unified Report makes the round counts directly comparable.
//
//	go run ./examples/configrollout
package main

import (
	"context"
	"fmt"
	"log"

	"plurality"
)

func main() {
	const (
		replicas = 200_000
		versions = 256
	)
	// Theorem 1.1's adversarial instance: every runner-up version is
	// equally common and the leader's edge is only sqrt(n ln n) replicas,
	// so Two-Choices faces its Omega(n/c1) round bill while OneExtraBit's
	// quadratic per-phase amplification shrugs it off.
	counts, err := plurality.GapSqrt(replicas, versions, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fleet: %d replicas, %d config versions, leader=%d replicas, runner-ups=%d each\n\n",
		replicas, versions, counts[0], counts[1])

	type entry struct {
		name string
		spec string
		opts []plurality.Option
	}
	protocols := []entry{
		{name: "two-choices", spec: "two-choices",
			opts: []plurality.Option{plurality.WithModel(plurality.Synchronous)}},
		{name: "3-majority", spec: "3-majority",
			opts: []plurality.Option{plurality.WithModel(plurality.Synchronous)}},
		{name: "one-extra-bit", spec: "onebit"},
	}

	ctx := context.Background()
	fmt.Printf("%-15s %-8s %-8s %s\n", "protocol", "rounds", "winner", "right version?")
	for _, p := range protocols {
		job, err := plurality.NewJob(p.spec, counts, append(p.opts, plurality.WithSeed(1))...)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := job.Run(ctx)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-15s %-8d v%-7d %v\n", p.name, rep.Rounds, rep.Winner, rep.Winner == 0)
	}
	fmt.Println("\nOneExtraBit's single memory bit turns Omega(k) gossip rounds into polylog.")
}
