// Protocolrace: every registered sampling dynamic races on one workload.
//
// Same population, same clocks, every protocol the registry knows —
// Two-Choices, Voter, 3-Majority, Undecided-State Dynamics, j-Majority —
// plus the paper's core protocol. The racers come straight from
// plurality.Protocols(), so a newly registered dynamic joins the race
// without touching this file, and each racer is one plurality.Job whose
// pooled Trials fan the repetitions across cores. The table reports
// parallel consensus time and whether the plurality color actually won,
// making the trade-offs concrete: Voter is obliviously fast to *a*
// consensus but has no plurality guarantee; the sampling dynamics are quick
// while k is small; the core protocol pays a constant-factor schedule
// overhead in exchange for its Θ(log n) guarantee independent of k.
//
//	go run ./examples/protocolrace
package main

import (
	"context"
	"errors"
	"fmt"
	"log"

	"plurality"
)

func main() {
	// Small enough that the slowest racer (Voter's lazy random walk needs
	// ~n² effective transitions) finishes in seconds.
	const (
		n      = 5_000
		k      = 8
		eps    = 1.0
		trials = 3
	)
	counts, err := plurality.Biased(n, k, eps)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: n=%d, k=%d, c1=%d vs runner-ups %d (eps=%.1f)\n\n",
		n, k, counts[0], counts[1], eps)

	type racer struct {
		name string
		note string
		job  *plurality.Job
	}
	newJob := func(spec string, opts ...plurality.Option) *plurality.Job {
		job, err := plurality.NewJob(spec, counts, append(opts, plurality.WithSeed(100))...)
		if err != nil {
			log.Fatal(err)
		}
		return job
	}
	racers := []racer{{name: "core (paper)", job: newJob("core")}}
	// Every registered sampling dynamic joins via its race spec.
	for _, d := range plurality.Protocols() {
		note := ""
		if !d.PluralityWins {
			note = "no plurality guarantee"
		}
		racers = append(racers, racer{
			name: d.RaceSpec,
			note: note,
			job:  newJob(d.RaceSpec, plurality.WithMaxTime(1e6)),
		})
	}

	ctx := context.Background()
	fmt.Printf("%-14s %-12s %-10s %s\n", "protocol", "median time", "plurality", "notes")
	for _, r := range racers {
		reps, err := r.job.Trials(ctx, trials)
		if err != nil && !errors.Is(err, plurality.ErrTimeLimit) && !errors.Is(err, plurality.ErrNoConsensus) {
			log.Fatal(err)
		}
		var times []float64
		wins := 0
		for _, rep := range reps {
			if rep.Converged && rep.Winner == 0 {
				wins++
			}
			t := rep.ConsensusTime
			if !rep.Converged {
				// A timed-out trial consumed its whole budget; recording 0
				// would make the slowest racer look fastest.
				t = rep.Time
			}
			times = append(times, t)
		}
		fmt.Printf("%-14s %-12.0f %d/%-8d %s\n", r.name, medianOf(times), wins, trials, r.note)
	}
}

func medianOf(xs []float64) float64 {
	// Insertion sort — three elements.
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
	return xs[len(xs)/2]
}
