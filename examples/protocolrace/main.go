// Protocolrace: every registered sampling dynamic races on one workload.
//
// Same population, same clocks, every protocol the registry knows —
// Two-Choices, Voter, 3-Majority, Undecided-State Dynamics, j-Majority —
// plus the paper's core protocol. The racers come straight from
// plurality.Protocols(), so a newly registered dynamic joins the race
// without touching this file. The table reports parallel consensus time
// and whether the plurality color actually won, making the trade-offs
// concrete: Voter is obliviously fast to *a* consensus but has no
// plurality guarantee; the sampling dynamics are quick while k is small;
// the core protocol pays a constant-factor schedule overhead in exchange
// for its Θ(log n) guarantee independent of k.
//
//	go run ./examples/protocolrace
package main

import (
	"errors"
	"fmt"
	"log"

	"plurality"
)

func main() {
	// Small enough that the slowest racer (Voter's lazy random walk needs
	// ~n² effective transitions) finishes in seconds.
	const (
		n   = 5_000
		k   = 8
		eps = 1.0
	)
	counts, err := plurality.Biased(n, k, eps)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: n=%d, k=%d, c1=%d vs runner-ups %d (eps=%.1f)\n\n",
		n, k, counts[0], counts[1], eps)

	type racer struct {
		name string
		note string
		run  func(pop *plurality.Population, seed uint64) (time float64, winner plurality.Color, done bool, err error)
	}
	racers := []racer{
		{name: "core (paper)", run: func(pop *plurality.Population, seed uint64) (float64, plurality.Color, bool, error) {
			res, err := plurality.RunCore(pop, plurality.WithSeed(seed))
			return res.ConsensusTime, res.Winner, res.Done, err
		}},
	}
	// Every registered sampling dynamic joins via its race spec.
	for _, d := range plurality.Protocols() {
		spec := d.RaceSpec
		note := ""
		if !d.PluralityWins {
			note = "no plurality guarantee"
		}
		racers = append(racers, racer{name: spec, note: note,
			run: func(pop *plurality.Population, seed uint64) (float64, plurality.Color, bool, error) {
				res, err := plurality.RunDynamic(spec, pop,
					plurality.WithSeed(seed), plurality.WithMaxTime(1e6))
				return res.Time, res.Winner, res.Done, err
			}})
	}

	const trials = 3
	fmt.Printf("%-14s %-12s %-10s %s\n", "protocol", "median time", "plurality", "notes")
	for _, r := range racers {
		var times []float64
		wins := 0
		for trial := 0; trial < trials; trial++ {
			pop, err := plurality.NewPopulation(counts)
			if err != nil {
				log.Fatal(err)
			}
			t, winner, done, err := r.run(pop, uint64(100+trial))
			if err != nil && !errors.Is(err, plurality.ErrTimeLimit) && !errors.Is(err, plurality.ErrNoConsensus) {
				log.Fatal(err)
			}
			if done && winner == 0 {
				wins++
			}
			times = append(times, t)
		}
		fmt.Printf("%-14s %-12.0f %d/%-8d %s\n", r.name, medianOf(times), wins, trials, r.note)
	}
}

func medianOf(xs []float64) float64 {
	// Insertion sort — three elements.
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
	return xs[len(xs)/2]
}
