// Protocolrace: all four asynchronous dynamics race on one workload.
//
// Same population, same clocks, four protocols: the paper's core protocol,
// asynchronous Two-Choices, 3-Majority, and Voter. The table reports
// parallel consensus time, whether the plurality color actually won, and
// per-node work — making the trade-offs concrete: Voter is obliviously fast
// to *a* consensus but elects the wrong color a quarter of the time on this
// workload; Two-Choices and 3-Majority are quick while k is small; the core
// protocol pays a constant-factor schedule overhead in exchange for its
// Θ(log n) guarantee independent of k.
//
//	go run ./examples/protocolrace
package main

import (
	"errors"
	"fmt"
	"log"

	"plurality"
)

func main() {
	const (
		n   = 20_000
		k   = 32
		eps = 1.0
	)
	counts, err := plurality.Biased(n, k, eps)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: n=%d, k=%d, c1=%d vs runner-ups %d (eps=%.1f)\n\n",
		n, k, counts[0], counts[1], eps)

	type racer struct {
		name string
		run  func(pop *plurality.Population, seed uint64) (time float64, winner plurality.Color, done bool, err error)
	}
	racers := []racer{
		{name: "core (paper)", run: func(pop *plurality.Population, seed uint64) (float64, plurality.Color, bool, error) {
			res, err := plurality.RunCore(pop, plurality.WithSeed(seed))
			return res.ConsensusTime, res.Winner, res.Done, err
		}},
		{name: "two-choices", run: func(pop *plurality.Population, seed uint64) (float64, plurality.Color, bool, error) {
			res, err := plurality.RunTwoChoicesAsync(pop, plurality.WithSeed(seed))
			return res.Time, res.Winner, res.Done, err
		}},
		{name: "3-majority", run: func(pop *plurality.Population, seed uint64) (float64, plurality.Color, bool, error) {
			res, err := plurality.RunThreeMajorityAsync(pop, plurality.WithSeed(seed))
			return res.Time, res.Winner, res.Done, err
		}},
		{name: "voter", run: func(pop *plurality.Population, seed uint64) (float64, plurality.Color, bool, error) {
			res, err := plurality.RunVoterAsync(pop, plurality.WithSeed(seed), plurality.WithMaxTime(1e6))
			return res.Time, res.Winner, res.Done, err
		}},
	}

	const trials = 3
	fmt.Printf("%-14s %-12s %-10s %s\n", "protocol", "median time", "plurality", "notes")
	for _, r := range racers {
		var times []float64
		wins := 0
		for trial := 0; trial < trials; trial++ {
			pop, err := plurality.NewPopulation(counts)
			if err != nil {
				log.Fatal(err)
			}
			t, winner, done, err := r.run(pop, uint64(100+trial))
			if err != nil && !errors.Is(err, plurality.ErrTimeLimit) && !errors.Is(err, plurality.ErrNoConsensus) {
				log.Fatal(err)
			}
			if done && winner == 0 {
				wins++
			}
			times = append(times, t)
		}
		note := ""
		if r.name == "voter" {
			note = "no plurality guarantee"
		}
		fmt.Printf("%-14s %-12.0f %d/%-8d %s\n", r.name, medianOf(times), wins, trials, note)
	}
}

func medianOf(xs []float64) float64 {
	// Insertion sort — three elements.
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
	return xs[len(xs)/2]
}
