// Asyncadapt: adapt a synchronous protocol to Poisson clocks with the
// weaksync framework — the "generic framework" the paper's discussion (§4)
// anticipates.
//
// The protocol here is *iterated median consensus on numeric values*: in a
// synchronous world, every round each node collects a few neighbors' values
// and commits the median of its collection. The collect-then-commit
// structure needs rounds — if commits interleave with collections, nodes mix
// old and new values. The weaksync framework supplies exactly the paper's
// remedy: blocks of do-nothing "tactical waiting" around every step and a
// Sync Gadget at each phase end, so the unsynchronized Poisson-clock nodes
// behave as if bulk-synchronized.
//
//	go run ./examples/asyncadapt
package main

import (
	"fmt"
	"log"
	"sort"

	"plurality/internal/graph"
	"plurality/internal/rng"
	"plurality/internal/sched"
	"plurality/weaksync"
)

func main() {
	const (
		n       = 10_000
		phases  = 20
		samples = 7
	)

	// Sensor values: mostly honest readings near 500, with 10% outliers
	// reporting wild values — median dynamics is robust to them.
	values := make([]float64, n)
	r := rng.New(2024)
	for i := range values {
		if r.Bernoulli(0.1) {
			values[i] = r.Float64() * 10_000 // outlier
		} else {
			values[i] = 450 + r.Float64()*100 // honest
		}
	}
	fmt.Printf("initial values: spread [%.0f, %.0f]\n", minOf(values), maxOf(values))

	g, err := graph.NewComplete(n)
	if err != nil {
		log.Fatal(err)
	}
	scheduler, err := sched.NewPoisson(n, 1, rng.New(1))
	if err != nil {
		log.Fatal(err)
	}

	collected := make([][]float64, n)
	phase := weaksync.Phase{Steps: []weaksync.Step{
		{
			Name:   "collect",
			Window: samples,
			Do: func(e *weaksync.Env) {
				collected[e.Node] = append(collected[e.Node], values[e.Sample()])
			},
		},
		{
			Name: "commit-median",
			Do: func(e *weaksync.Env) {
				c := collected[e.Node]
				if len(c) == 0 {
					return
				}
				sort.Float64s(c)
				values[e.Node] = c[len(c)/2]
				collected[e.Node] = c[:0]
			},
		},
	}}

	res, err := weaksync.Run(weaksync.Program{
		Phases: weaksync.Repeat(phases, phase),
	}, weaksync.Config{
		Graph:     g,
		Scheduler: scheduler,
		Rand:      rng.New(7),
		MaxTime:   1e6,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("after %d asynchronous phases (%.0f time units, %d sync jumps):\n",
		phases, res.Time, res.Jumps)
	fmt.Printf("final values: spread [%.2f, %.2f]\n", minOf(values), maxOf(values))
	fmt.Println("the network contracted to a common, outlier-robust value without any shared clock")
}

func minOf(xs []float64) float64 {
	m := xs[0]
	for _, v := range xs {
		if v < m {
			m = v
		}
	}
	return m
}

func maxOf(xs []float64) float64 {
	m := xs[0]
	for _, v := range xs {
		if v > m {
			m = v
		}
	}
	return m
}
