package plurality_test

import (
	"context"
	"fmt"
	"log"

	"plurality"
)

// The Job API: one validated binding of protocol × counts × options,
// reusable across runs and engines.
func ExampleNewJob() {
	counts, err := plurality.Biased(100_000, 4, 1) // c1 = 2*c2
	if err != nil {
		log.Fatal(err)
	}
	job, err := plurality.NewJob("two-choices", counts,
		plurality.WithSeed(1),
		plurality.WithEngine(plurality.EngineOccupancy))
	if err != nil {
		log.Fatal(err)
	}
	rep, err := job.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("converged: %v, winner: color %d\n", rep.Converged, rep.Winner)
	// Output:
	// converged: true, winner: color 0
}

// Pooled multi-trial execution: one Job fans out across cores with
// decorrelated per-trial seeds, so results are independent of the worker
// count.
func ExampleJob_Trials() {
	counts, err := plurality.Biased(10_000, 4, 1)
	if err != nil {
		log.Fatal(err)
	}
	job, err := plurality.NewJob("3-majority", counts, plurality.WithSeed(3))
	if err != nil {
		log.Fatal(err)
	}
	reps, err := job.Trials(context.Background(), 8)
	if err != nil {
		log.Fatal(err)
	}
	wins := 0
	for _, rep := range reps {
		if rep.Converged && rep.Winner == 0 {
			wins++
		}
	}
	fmt.Printf("plurality won %d/%d trials\n", wins, len(reps))
	// Output:
	// plurality won 8/8 trials
}

// Streaming observation is uniform across engines: the observer sees the
// live histogram every interval units of parallel time — here driving an
// early stop through context cancellation, honored inside the engine loop.
func ExampleWithObserver() {
	counts, err := plurality.Biased(100_000, 4, 1)
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	job, err := plurality.NewJob("two-choices", counts,
		plurality.WithSeed(1),
		plurality.WithEngine(plurality.EngineOccupancy),
		plurality.WithObserver(1, func(s plurality.Snapshot) {
			if s.ConvergedFraction >= 0.99 {
				cancel() // close enough: stop the simulation mid-run
			}
		}))
	if err != nil {
		log.Fatal(err)
	}
	rep, err := job.Run(ctx)
	fmt.Printf("stopped early: %v at 99%% agreement\n", err != nil && !rep.Converged)
	// Output:
	// stopped early: true at 99% agreement
}
