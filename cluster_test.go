package plurality_test

import (
	"context"
	"strings"
	"testing"
	"time"

	"plurality"
)

// TestNodeRuntimeOptionRejections is the regression contract of the
// WithTransport validation mapping: every simulator-only option must be
// rejected at NewJob, and every rejection must name the node runtime so
// the caller knows which execution path refused it — never the bare
// "would be silently ignored" mask error.
func TestNodeRuntimeOptionRejections(t *testing.T) {
	adv, err := plurality.ParseAdversary("corrupt")
	if err != nil {
		t.Fatal(err)
	}
	adv.Budget = 4
	graph, err := plurality.AnnealedRegularGraph(64, 8)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		opt  plurality.Option
	}{
		{"WithAdversary", plurality.WithAdversary(adv)},
		{"WithObserver", plurality.WithObserver(1, func(plurality.Snapshot) {})},
		{"WithResponseDelay", plurality.WithResponseDelay(0.5)},
		{"WithEdgeLatency", plurality.WithEdgeLatency(plurality.ExpEdgeLatency(0.1))},
		{"WithChurn", plurality.WithChurn(0.01)},
		{"WithEngine", plurality.WithEngine(plurality.EngineOccupancy)},
		{"WithGraph", plurality.WithGraph(graph)},
		{"WithCrashes", plurality.WithCrashes(0.1)},
		{"WithDesync", plurality.WithDesync(0.5, 3)},
		{"WithMaxRounds", plurality.WithMaxRounds(100)},
		{"WithLeapEpsilon", plurality.WithLeapEpsilon(0.1)},
		{"WithODEThreshold", plurality.WithODEThreshold(0.01)},
	}
	for _, tc := range cases {
		_, err := plurality.NewJob("two-choices", []int64{40, 24},
			plurality.WithTransport(plurality.NewChanTransport()), tc.opt)
		if err == nil {
			t.Errorf("%s: accepted on the node runtime", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), "node runtime") {
			t.Errorf("%s: rejection does not name the node runtime: %v", tc.name, err)
		}
		if !strings.Contains(err.Error(), tc.name) {
			t.Errorf("%s: rejection does not name the option: %v", tc.name, err)
		}
	}
}

func TestNodeRuntimeRejectsNonDynamicSpecs(t *testing.T) {
	for _, spec := range []string{"core", "onebit"} {
		_, err := plurality.NewJob(spec, []int64{40, 24},
			plurality.WithTransport(plurality.NewChanTransport()))
		if err == nil || !strings.Contains(err.Error(), "node runtime") {
			t.Errorf("%s: got %v, want a node-runtime rejection", spec, err)
		}
	}
	// Registry protocol, but the synchronous model — also simulator-only.
	_, err := plurality.NewJob("two-choices", []int64{40, 24},
		plurality.WithTransport(plurality.NewChanTransport()),
		plurality.WithModel(plurality.Synchronous))
	if err == nil || !strings.Contains(err.Error(), "node runtime") {
		t.Errorf("synchronous: got %v, want a node-runtime rejection", err)
	}
	// Asynchronous but not Poisson: the node runtime cannot emulate the
	// sequential schedule.
	_, err = plurality.NewJob("two-choices", []int64{40, 24},
		plurality.WithTransport(plurality.NewChanTransport()),
		plurality.WithModel(plurality.Sequential))
	if err == nil || !strings.Contains(err.Error(), "node runtime") {
		t.Errorf("sequential: got %v, want a node-runtime rejection", err)
	}
	// A nil transport is a configuration bug, not a silent fallback.
	_, err = plurality.NewJob("two-choices", []int64{40, 24}, plurality.WithTransport(nil))
	if err == nil || !strings.Contains(err.Error(), "node runtime") {
		t.Errorf("nil transport: got %v, want a node-runtime rejection", err)
	}
}

func TestClusterAPI(t *testing.T) {
	c, err := plurality.NewCluster(plurality.NodeConfig{
		Protocol: "two-choices",
		Counts:   []int64{40, 24},
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Converged || rep.Winner != 0 {
		t.Fatalf("converged=%v winner=%d", rep.Converged, rep.Winner)
	}
	if rep.Kind != plurality.KindDynamic || rep.Protocol != "two-choices" {
		t.Errorf("kind=%v protocol=%q", rep.Kind, rep.Protocol)
	}
	if rep.Messages == 0 {
		t.Error("cluster run reports zero messages")
	}
	if rep.ConsensusTime <= 0 || rep.Time < rep.ConsensusTime {
		t.Errorf("consensus time %.3f, total %.3f", rep.ConsensusTime, rep.Time)
	}
	// Re-running the same cluster is allowed and bit-identical.
	rep2, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep != rep2 {
		t.Errorf("re-run drifted: %+v vs %+v", rep, rep2)
	}
}

func TestClusterTrialsDeterministic(t *testing.T) {
	job, err := plurality.NewJob("usd", []int64{30, 18},
		plurality.WithSeed(5),
		plurality.WithTransport(plurality.NewLossyChanTransport(plurality.NetFaults{
			Latency: 0.05, Drop: 0.02, Reorder: 0.1,
		})))
	if err != nil {
		t.Fatal(err)
	}
	a, err := job.Trials(context.Background(), 6)
	if err != nil {
		t.Fatal(err)
	}
	b, err := job.Trials(context.Background(), 6)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trial %d drifted:\n%+v\n%+v", i, a[i], b[i])
		}
	}
	// Trial 0 must equal a plain Run (the Trials seed contract).
	rep, err := job.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if a[0] != rep {
		t.Fatalf("trial 0 %+v != Run %+v", a[0], rep)
	}
}

func TestClusterTCPTransport(t *testing.T) {
	if testing.Short() {
		t.Skip("real sockets and wall-clock timers")
	}
	c, err := plurality.NewCluster(plurality.NodeConfig{
		Protocol:  "two-choices",
		Counts:    []int64{30, 18},
		Seed:      5,
		MaxTime:   2000,
		Transport: plurality.NewTCPTransport(2 * time.Millisecond),
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Converged || rep.Winner != 0 {
		t.Fatalf("tcp: converged=%v winner=%d", rep.Converged, rep.Winner)
	}
}

func TestClusterRunOnRejected(t *testing.T) {
	job, err := plurality.NewJob("two-choices", []int64{8, 8},
		plurality.WithTransport(plurality.NewChanTransport()))
	if err != nil {
		t.Fatal(err)
	}
	pop, err := plurality.NewPopulation([]int64{8, 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := job.RunOn(context.Background(), pop); err == nil {
		t.Error("RunOn accepted a node-runtime job")
	}
}
