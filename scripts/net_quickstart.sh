#!/usr/bin/env bash
# net_quickstart.sh — builds pluralitynode and runs the README "Running a
# real cluster" quickstart: two OS processes, each hosting half of one
# 64-node cluster, exchanging pull messages over loopback TCP until both
# halves report consensus. Verifies the documented behavior end to end:
# both processes print a consensus line and agree on the winner.
#
# The commands between the "quickstart begin/end" markers are the README
# snippet verbatim (with $PORT1/$PORT2 standing in for the documented
# 9001/9002, so CI cannot collide on fixed ports, and pluralitynode
# standing in for the built binary); a drift test compares the two, so the
# README cannot document commands this script does not prove.
set -eu

cd "$(dirname "$0")/.."

BIN=$(mktemp -t pluralitynode.XXXXXX)
LOG=$(mktemp -t pluralitynode.log.XXXXXX)
trap 'rm -f "$BIN" "$LOG"' EXIT

go build -o "$BIN" ./cmd/pluralitynode

# Reserve two concrete loopback ports (bind-then-close; listeners set
# SO_REUSEADDR, so the immediate rebind by pluralitynode succeeds).
reserve() {
    "$BIN" -reserve-port
}
PORT1=$(reserve)
PORT2=$(reserve)

pluralitynode() { "$BIN" "$@" 2>&1 | tee -a "$LOG"; }

# --- quickstart begin ---
# one 64-node cluster as two real processes: each hosts half the node
# ids and serves its peers' pull requests over loopback TCP; identical
# -peers/-n/-seed on both sides derive the same deterministic instance
pluralitynode -listen 127.0.0.1:$PORT1 -peers 127.0.0.1:$PORT1,127.0.0.1:$PORT2 -n 64 -seed 7 &
pluralitynode -listen 127.0.0.1:$PORT2 -peers 127.0.0.1:$PORT1,127.0.0.1:$PORT2 -n 64 -seed 7
wait
# --- quickstart end ---

# Verify what the quickstart claims.
fail() { echo "net_quickstart: $1" >&2; cat "$LOG" >&2; exit 1; }

LINES=$(grep -c 'consensus winner=' "$LOG" || true)
[ "$LINES" = 2 ] || fail "expected 2 consensus lines, got $LINES"
WINNERS=$(sed -n 's/.*consensus winner=\([0-9-]*\).*/\1/p' "$LOG" | sort -u)
[ "$(printf '%s\n' "$WINNERS" | wc -l)" = 1 ] || fail "processes disagree on the winner: $WINNERS"
[ "$WINNERS" = 0 ] || fail "winner $WINNERS, want majority color 0"

echo "net_quickstart: OK (ports $PORT1/$PORT2, winner $WINNERS)"
