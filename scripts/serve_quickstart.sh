#!/usr/bin/env bash
# serve_quickstart.sh — boots pluralityd and runs the README "Serving"
# quickstart against it, verifying the documented behavior end to end:
# the submitted job completes, the cached re-submission answers
# `X-Cache: hit` with a byte-identical body, and the SSE stream closes
# with a terminal report event.
#
# The commands between the "quickstart begin/end" markers are the README
# snippet verbatim (with $ADDR standing in for localhost:8080); a drift
# test compares the two, so the README cannot document commands this
# script does not prove.
set -eu

cd "$(dirname "$0")/.."

BIN=$(mktemp -t pluralityd.XXXXXX)
LOG=$(mktemp -t pluralityd.log.XXXXXX)
trap 'kill "$DPID" 2>/dev/null || true; rm -f "$BIN" "$LOG"' EXIT

go build -o "$BIN" ./cmd/pluralityd
"$BIN" -addr 127.0.0.1:0 >"$LOG" 2>&1 &
DPID=$!

# The daemon logs its bound address ("pluralityd listening addr=...").
ADDR=""
for _ in $(seq 1 100); do
    ADDR=$(sed -n 's/.*pluralityd listening.*addr=\([0-9.:]*\).*/\1/p' "$LOG" | head -n1)
    [ -n "$ADDR" ] && break
    sleep 0.1
done
if [ -z "$ADDR" ]; then
    echo "serve_quickstart: daemon did not come up:" >&2
    cat "$LOG" >&2
    exit 1
fi

# --- quickstart begin ---
# submit a deterministic job: Two-Choices at n = 10^7 on the
# count-collapsed engine finishes in about a second
curl -s $ADDR/v1/jobs -d '{"protocol":"two-choices","counts":[6000000,4000000],"engine":"occupancy"}'
# poll it; terminal bodies are byte-deterministic
curl -s $ADDR/v1/jobs/j1
# re-submit the identical spec: completed runs replay from cache
# (X-Cache: hit), byte-identical, without re-execution
curl -si $ADDR/v1/jobs -d '{"protocol":"two-choices","counts":[6000000,4000000],"engine":"occupancy"}'
# stream a live run: observeInterval publishes SSE snapshots, closed by a
# terminal report event
curl -s $ADDR/v1/jobs -d '{"protocol":"3-majority","counts":[600000,300000,100000],"engine":"occupancy","observeInterval":1,"seed":7}'
curl -sN $ADDR/v1/jobs/j2/stream
# daemon observability: jobs/sec, queue depth, cache hit rate, latency
# quantiles
curl -s $ADDR/v1/metrics
# --- quickstart end ---

# Verify what the quickstart claims.
fail() { echo "serve_quickstart: $1" >&2; exit 1; }

for _ in $(seq 1 300); do
    STATE=$(curl -s "$ADDR/v1/jobs/j1" | sed -n 's/.*"state":"\([a-z]*\)".*/\1/p')
    [ "$STATE" = "done" ] && break
    [ "$STATE" = "failed" ] || [ "$STATE" = "canceled" ] && fail "job j1 ended $STATE"
    sleep 0.1
done
[ "$STATE" = "done" ] || fail "job j1 stuck in ${STATE:-unknown}"

TERMINAL=$(curl -s "$ADDR/v1/jobs/j1")
REPLAY=$(curl -si "$ADDR/v1/jobs" -d '{"protocol":"two-choices","counts":[6000000,4000000],"engine":"occupancy"}')
printf '%s' "$REPLAY" | grep -qi '^x-cache: hit' || fail "re-submission was not a cache hit"
BODY=$(printf '%s' "$REPLAY" | tr -d '\r' | sed -n '/^$/,$p' | sed '1d')
[ "$BODY" = "$TERMINAL" ] || fail "cached replay not byte-identical:
$BODY
vs
$TERMINAL"

curl -sN --max-time 60 "$ADDR/v1/jobs/j2/stream" | grep -q '^event: report' || fail "stream produced no terminal report event"
curl -s "$ADDR/v1/metrics" | grep -q '"hitRate"' || fail "metrics missing cache hit rate"

echo "serve_quickstart: OK ($ADDR)"
