package plurality

import (
	"errors"
	"testing"
)

// TestWithEdgeLatency: per-edge latencies thread from the public option
// into both the core protocol and the sampling dynamics, slowing but not
// breaking convergence.
func TestWithEdgeLatency(t *testing.T) {
	const n = 1000
	counts, err := Biased(n, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	runWith := func(opts ...Option) float64 {
		pop, err := NewPopulation(counts)
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunCore(pop, append([]Option{WithSeed(3), WithModel(Poisson)}, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		return res.ConsensusTime
	}
	instant := runWith()
	exp := runWith(WithEdgeLatency(ExpEdgeLatency(2)))
	uni := runWith(WithEdgeLatency(UniformEdgeLatency(1, 3)))
	if exp <= instant || uni <= instant {
		t.Fatalf("latency did not slow core: instant %v, exp %v, uniform %v", instant, exp, uni)
	}

	pop, err := NewPopulation(counts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunTwoChoicesAsync(pop, WithSeed(3), WithEdgeLatency(ExpEdgeLatency(1)))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done {
		t.Fatalf("two-choices under latency did not converge: %+v", res)
	}
}

// TestWithChurn: the public churn option injects counted node
// replacements into both runner families.
func TestWithChurn(t *testing.T) {
	const n = 1000
	counts, err := Biased(n, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	pop, err := NewPopulation(counts)
	if err != nil {
		t.Fatal(err)
	}
	core, err := RunCore(pop, WithSeed(5), WithChurn(0.2/n))
	if err != nil {
		t.Fatal(err)
	}
	if !core.Done || core.Churns == 0 {
		t.Fatalf("core churn run: %+v", core)
	}

	pop2, err := NewPopulation(counts)
	if err != nil {
		t.Fatal(err)
	}
	dyn, err := RunThreeMajorityAsync(pop2, WithSeed(5), WithChurn(0.2/n))
	if err != nil {
		t.Fatal(err)
	}
	if !dyn.Done || dyn.Churns == 0 {
		t.Fatalf("three-majority churn run: %+v", dyn)
	}
}

// TestWithCrashesRejectsSparseTopology: the public surface enforces the
// crash/topology contract.
func TestWithCrashesRejectsSparseTopology(t *testing.T) {
	counts, err := Biased(100, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	pop, err := NewPopulation(counts)
	if err != nil {
		t.Fatal(err)
	}
	g, err := CycleGraph(100)
	if err != nil {
		t.Fatal(err)
	}
	_, err = RunCore(pop, WithGraph(g), WithCrashes(0.1))
	if err == nil {
		t.Fatal("crash injection on a cycle should be rejected")
	}
	if errors.Is(err, ErrNoConsensus) {
		t.Fatalf("want a validation error, got a protocol failure: %v", err)
	}
}
