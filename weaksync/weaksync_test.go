package weaksync

import (
	"errors"
	"math"
	"sort"
	"testing"

	"plurality/internal/graph"
	"plurality/internal/population"
	"plurality/internal/rng"
	"plurality/internal/sched"
)

func harness(t *testing.T, n int, seed uint64) Config {
	t.Helper()
	g, err := graph.NewComplete(n)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.NewSequential(n, rng.At(seed, 0))
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Graph:     g,
		Scheduler: s,
		Rand:      rng.At(seed, 1),
		MaxTime:   1e6,
	}
}

func noop(*Env) {}

func TestValidate(t *testing.T) {
	base := harness(t, 100, 1)
	prog := Program{Phases: []Phase{{Steps: []Step{{Name: "x", Do: noop}}}}}
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{name: "nil graph", mutate: func(c *Config) { c.Graph = nil }},
		{name: "nil scheduler", mutate: func(c *Config) { c.Scheduler = nil }},
		{name: "nil rand", mutate: func(c *Config) { c.Rand = nil }},
		{name: "zero time", mutate: func(c *Config) { c.MaxTime = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := base
			tt.mutate(&cfg)
			if _, err := Run(prog, cfg); err == nil {
				t.Error("want validation error")
			}
		})
	}
}

func TestCompileErrors(t *testing.T) {
	cfg := harness(t, 100, 2)
	if _, err := Run(Program{}, cfg); err == nil {
		t.Error("empty program should fail")
	}
	if _, err := Run(Program{Phases: []Phase{{}}}, cfg); err == nil {
		t.Error("empty phase should fail")
	}
	if _, err := Run(Program{Phases: []Phase{{Steps: []Step{{Name: "no-op"}}}}}, cfg); err == nil {
		t.Error("nil step action should fail")
	}
	bad := harness(t, 100, 3)
	bad.Delta = 1
	if _, err := Run(Program{Phases: []Phase{{Steps: []Step{{Name: "x", Do: noop}}}}}, bad); err == nil {
		t.Error("Delta=1 should fail")
	}
}

func TestRepeat(t *testing.T) {
	p := Phase{Steps: []Step{{Name: "a", Do: noop}}}
	phases := Repeat(3, p)
	if len(phases) != 3 {
		t.Fatalf("len = %d", len(phases))
	}
}

func TestAllNodesExecuteEveryStep(t *testing.T) {
	const n = 500
	cfg := harness(t, n, 4)
	var hitsA, hitsB []int
	prog := Program{
		Phases: []Phase{{
			Steps: []Step{
				{Name: "a", Do: func(e *Env) { hitsA = append(hitsA, e.Node) }},
				{Name: "b", Do: func(e *Env) { hitsB = append(hitsB, e.Node) }},
			},
		}},
	}
	res, err := Run(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Halted != n {
		t.Fatalf("halted %d/%d", res.Halted, n)
	}
	// Window defaults to 1, so each node executes each step exactly once.
	if len(hitsA) != n || len(hitsB) != n {
		t.Fatalf("step executions a=%d b=%d, want %d each", len(hitsA), len(hitsB), n)
	}
	seen := make([]bool, n)
	for _, u := range hitsA {
		if seen[u] {
			t.Fatalf("node %d executed step a twice", u)
		}
		seen[u] = true
	}
}

func TestTacticalWaitingOrdersSteps(t *testing.T) {
	// The padding blocks must make (almost) every node finish step a
	// before (almost) any node runs step b: we count b-executions that
	// happen before 90% of a-executions are done.
	const n = 2000
	cfg := harness(t, n, 5)
	var doneA int
	early := 0
	prog := Program{
		Phases: []Phase{{
			Steps: []Step{
				{Name: "a", Do: func(e *Env) { doneA++ }},
				{Name: "b", Do: func(e *Env) {
					if doneA < n*9/10 {
						early++
					}
				}},
			},
		}},
	}
	if _, err := Run(prog, cfg); err != nil {
		t.Fatal(err)
	}
	if frac := float64(early) / n; frac > 0.02 {
		t.Fatalf("%.1f%% of nodes ran step b before 90%% finished step a", 100*frac)
	}
}

func TestWindowedStepRunsWindowTicks(t *testing.T) {
	const n = 300
	cfg := harness(t, n, 6)
	ticks := make([]int, n)
	prog := Program{
		Phases: []Phase{{
			Steps: []Step{{
				Name:   "sampling",
				Window: 5,
				Do:     func(e *Env) { ticks[e.Node]++ },
			}},
		}},
	}
	if _, err := Run(prog, cfg); err != nil {
		t.Fatal(err)
	}
	for u, c := range ticks {
		if c != 5 {
			t.Fatalf("node %d executed %d window ticks, want 5", u, c)
		}
	}
}

func TestStopHookEndsRun(t *testing.T) {
	const n = 200
	cfg := harness(t, n, 7)
	fired := 0
	cfg.Stop = func() bool {
		fired++
		return fired > 50
	}
	prog := Program{Phases: Repeat(100, Phase{Steps: []Step{{Name: "x", Do: noop}}})}
	res, err := Run(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped {
		t.Fatalf("res = %+v, want Stopped", res)
	}
}

func TestTimeBudgetError(t *testing.T) {
	cfg := harness(t, 200, 8)
	cfg.MaxTime = 3
	prog := Program{Phases: Repeat(50, Phase{Steps: []Step{{Name: "x", Do: noop}}})}
	_, err := Run(prog, cfg)
	if !errors.Is(err, ErrIncomplete) {
		t.Fatalf("err = %v, want ErrIncomplete", err)
	}
}

func TestOnHaltInvokedPerNode(t *testing.T) {
	const n = 150
	cfg := harness(t, n, 9)
	halts := make(map[int]int)
	prog := Program{
		Phases: []Phase{{Steps: []Step{{Name: "x", Do: noop}}}},
		OnHalt: func(u int) { halts[u]++ },
	}
	if _, err := Run(prog, cfg); err != nil {
		t.Fatal(err)
	}
	if len(halts) != n {
		t.Fatalf("halt hook fired for %d/%d nodes", len(halts), n)
	}
	for u, c := range halts {
		if c != 1 {
			t.Fatalf("node %d halted %d times", u, c)
		}
	}
}

func TestGadgetJumpsHappen(t *testing.T) {
	const n = 1000
	cfg := harness(t, n, 10)
	prog := Program{Phases: Repeat(4, Phase{Steps: []Step{{Name: "x", Do: noop}}})}
	res, err := Run(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Jumps == 0 {
		t.Fatal("no jumps executed")
	}
	ablated := harness(t, n, 10)
	ablated.DisableSyncGadget = true
	res2, err := Run(prog, ablated)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Jumps != 0 {
		t.Fatalf("ablated run executed %d jumps", res2.Jumps)
	}
}

// TestPluralityProgramOnFramework re-expresses the paper's part-1 protocol
// (Two-Choices step → commit → Bit-Propagation) as a weaksync Program and
// checks it drives the population to the plurality color — the framework
// generalizes internal/core, as §4 of the paper anticipates.
func TestPluralityProgramOnFramework(t *testing.T) {
	const (
		n   = 5000
		k   = 4
		eps = 1.0
	)
	counts, err := population.BiasedCounts(n, k, eps)
	if err != nil {
		t.Fatal(err)
	}
	pop, err := population.FromCounts(counts)
	if err != nil {
		t.Fatal(err)
	}
	cfg := harness(t, n, 11)
	spec, err := compileSpecForTest(cfg, n)
	if err != nil {
		t.Fatal(err)
	}

	intermediate := make([]population.Color, n)
	for i := range intermediate {
		intermediate[i] = population.None
	}
	bit := make([]bool, n)

	phase := Phase{Steps: []Step{
		{
			Name: "two-choices",
			Do: func(e *Env) {
				a := pop.ColorOf(e.Sample())
				b := pop.ColorOf(e.Sample())
				if a == b {
					intermediate[e.Node] = a
				} else {
					intermediate[e.Node] = population.None
				}
			},
		},
		{
			Name: "commit",
			Do: func(e *Env) {
				if c := intermediate[e.Node]; c != population.None {
					pop.SetColor(e.Node, c)
					bit[e.Node] = true
				} else {
					bit[e.Node] = false
				}
				intermediate[e.Node] = population.None
			},
		},
		{
			Name:   "bit-propagation",
			Window: spec,
			Do: func(e *Env) {
				if bit[e.Node] {
					return
				}
				v := e.Sample()
				if bit[v] {
					pop.SetColor(e.Node, pop.ColorOf(v))
					bit[e.Node] = true
				}
			},
		},
	}}

	cfg.Stop = pop.IsUnanimous
	res, err := Run(Program{Phases: Repeat(10, phase)}, cfg)
	if err != nil && !errors.Is(err, ErrIncomplete) {
		t.Fatal(err)
	}
	if !res.Stopped && !pop.IsUnanimous() {
		t.Fatalf("no consensus: counts %v", pop.Counts())
	}
	if pop.Plurality() != 0 {
		t.Fatalf("wrong winner: counts %v", pop.Counts())
	}
	if res.Jumps == 0 {
		t.Fatal("gadget never fired")
	}
}

// compileSpecForTest exposes the resolved ∆ so the test's bit-propagation
// window can span its whole block, like the core protocol's.
func compileSpecForTest(cfg Config, n int) (int, error) {
	sch, err := compile(Program{Phases: []Phase{{Steps: []Step{{Name: "x", Do: noop}}}}}, cfg, n)
	if err != nil {
		return 0, err
	}
	return sch.delta, nil
}

// TestMedianDynamicsOnFramework adapts a *different* synchronous protocol —
// iterated median consensus on numeric values — to the asynchronous model
// via the framework: each phase, every node samples three values during its
// step window and then commits the median of its collection. Values
// contract toward a common point; phase structure (sample-all-then-commit)
// is exactly what weak synchronicity provides.
func TestMedianDynamicsOnFramework(t *testing.T) {
	const n = 2000
	cfg := harness(t, n, 12)

	values := make([]float64, n)
	r := rng.New(99)
	for i := range values {
		values[i] = r.Float64() * 1000
	}
	collected := make([][]float64, n)
	phase := Phase{Steps: []Step{
		{
			Name:   "collect",
			Window: 7,
			Do: func(e *Env) {
				collected[e.Node] = append(collected[e.Node], values[e.Sample()])
			},
		},
		{
			Name: "commit-median",
			Do: func(e *Env) {
				c := collected[e.Node]
				if len(c) == 0 {
					return
				}
				sort.Float64s(c)
				values[e.Node] = c[len(c)/2]
				collected[e.Node] = c[:0]
			},
		},
	}}
	if _, err := Run(Program{Phases: Repeat(25, phase)}, cfg); err != nil {
		t.Fatal(err)
	}

	lo, hi := values[0], values[0]
	for _, v := range values {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if hi-lo > 100 {
		t.Fatalf("median dynamics did not contract: range [%.1f, %.1f] after 25 phases", lo, hi)
	}
}
