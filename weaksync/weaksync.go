// Package weaksync is the generic framework the paper's discussion (§4)
// anticipates: it adapts *synchronous-style, phase-structured protocols* to
// the asynchronous Poisson-clock model using the paper's weak-synchronicity
// toolkit — do-nothing padding blocks (tactical waiting) around every
// critical step and the Sync Gadget appended to every phase.
//
// A protocol is expressed as a Program: an ordered list of phases, each an
// ordered list of Steps. The framework compiles the program into a
// working-time schedule in which
//
//   - each step owns one block of ∆ = Θ(log n / log log n) ticks, executing
//     on the first Window ticks of the block and idling for the rest,
//   - each step's block is followed by one full do-nothing block, so that
//     all but o(n) nodes finish a step before any of them starts the next,
//   - every phase ends with a Sync Gadget sub-phase (sample real times,
//     wait, jump to the median) that re-synchronizes working times.
//
// The paper's own core protocol is one instance of this framework (see the
// package tests, which re-express Two-Choices + commit + Bit-Propagation as
// a Program); internal/core keeps its hand-specialized implementation for
// performance and for the endgame/failure-injection features.
package weaksync

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"plurality/internal/graph"
	"plurality/internal/rng"
	"plurality/internal/sched"
)

// Env is the execution environment handed to a step's action: it identifies
// the acting node and provides sampling primitives.
type Env struct {
	// Node is the acting node.
	Node int
	// Time is the current parallel time.
	Time float64
	// Tick is how many ticks of the step's window the node has already
	// spent (0 for the first).
	Tick int

	g graph.Graph
	r *rng.RNG
}

// Sample returns a uniformly random neighbor of the acting node.
func (e *Env) Sample() int { return e.g.Sample(e.r, e.Node) }

// Rand exposes the run's random source for randomized steps.
func (e *Env) Rand() *rng.RNG { return e.r }

// Step is one critical instruction window of a phase.
type Step struct {
	// Name identifies the step in errors and traces.
	Name string
	// Window is how many consecutive ticks of the step's block execute
	// Do; it is clamped to the block length ∆. Window 0 means 1 (a
	// single instruction, like the Two-Choices or commit steps).
	Window int
	// Do is invoked once per executing tick.
	Do func(env *Env)
}

// Phase is an ordered list of steps; the framework appends the Sync Gadget
// automatically.
type Phase struct {
	Steps []Step
}

// Program is a synchronous-style protocol to run under weak synchronicity.
type Program struct {
	// Phases run in order, once each. Use Repeat to unroll a phase body
	// multiple times.
	Phases []Phase
	// OnHalt, if set, is invoked once per node when it completes the
	// last phase.
	OnHalt func(node int)
}

// Repeat returns n copies of the given phase, the common way to build
// "Θ(log log n) identical phases" programs.
func Repeat(n int, p Phase) []Phase {
	out := make([]Phase, n)
	for i := range out {
		out[i] = p
	}
	return out
}

// Config configures a framework run.
type Config struct {
	// Graph is the topology. Required.
	Graph graph.Graph
	// Scheduler delivers activations. Required; node count must match.
	Scheduler sched.Scheduler
	// Rand drives all sampling. Required.
	Rand *rng.RNG
	// MaxTime bounds the run in parallel time. Required (> 0).
	MaxTime float64
	// Delta overrides the block length (0 = ⌈10·ln n / ln ln n⌉, the
	// calibration used by internal/core).
	Delta int
	// GadgetSamples overrides the Sync Gadget sampling length
	// (0 = min(∆, ⌈(log₂ log₂ n)³⌉)).
	GadgetSamples int
	// DisableSyncGadget removes the sync sub-phases (ablation).
	DisableSyncGadget bool
	// Stop, if set, is polled after every tick; returning true ends the
	// run early (e.g. a consensus detector).
	Stop func() bool
}

// Result describes a framework run.
type Result struct {
	// Halted is the number of nodes that completed the whole program.
	Halted int
	// Stopped reports whether Config.Stop ended the run.
	Stopped bool
	// Time is the parallel time of the last delivered tick.
	Time float64
	// Ticks is the number of delivered activations.
	Ticks int64
	// Jumps is the number of Sync Gadget jumps executed.
	Jumps int64
}

// ErrIncomplete reports that the time budget elapsed before every node
// completed the program (and Stop never fired).
var ErrIncomplete = errors.New("weaksync: nodes did not complete the program in time")

// schedule is the compiled layout of a program.
type schedule struct {
	delta         int
	gadgetSamples int
	phaseStart    []int64 // absolute first tick of each phase
	phaseLen      []int64
	totalTicks    int64
	// stepOffset[p][s] is the in-phase offset of phase p's step s.
	stepOffset [][]int64
	gadgetOff  int64 // in-phase offset of gadget sampling (last sub-phase)
	jumpOff    int64 // in-phase offset of the jump step (phase end − 1)
	hasGadget  bool
}

// compile lays out the program for n nodes.
func compile(p Program, cfg Config, n int) (*schedule, error) {
	if len(p.Phases) == 0 {
		return nil, errors.New("weaksync: empty program")
	}
	ln := math.Log(float64(n))
	lnln := math.Log(ln)
	if lnln < 1 {
		lnln = 1
	}
	delta := cfg.Delta
	if delta == 0 {
		delta = int(math.Ceil(10 * ln / lnln))
	}
	if delta < 2 {
		return nil, fmt.Errorf("weaksync: Delta = %d, want >= 2", delta)
	}
	gadget := cfg.GadgetSamples
	if gadget == 0 {
		l2 := math.Log2(float64(n))
		gadget = int(math.Ceil(math.Pow(math.Log2(l2), 3)))
	}
	if gadget > delta {
		gadget = delta
	}
	if gadget < 1 {
		gadget = 1
	}

	s := &schedule{
		delta:         delta,
		gadgetSamples: gadget,
		hasGadget:     !cfg.DisableSyncGadget,
	}
	var cursor int64
	for _, phase := range p.Phases {
		if len(phase.Steps) == 0 {
			return nil, errors.New("weaksync: phase with no steps")
		}
		offsets := make([]int64, len(phase.Steps))
		var pos int64
		for i, step := range phase.Steps {
			if step.Do == nil {
				return nil, fmt.Errorf("weaksync: step %q has no action", step.Name)
			}
			offsets[i] = pos
			pos += int64(2 * delta) // step block + padding block
		}
		// Sync sub-phase: one sampling block + one waiting block ending
		// in the jump step. Present (as idle time) even when the gadget
		// is disabled, so ablations compare identical schedules.
		gadgetOff := pos
		pos += int64(2 * delta)

		s.phaseStart = append(s.phaseStart, cursor)
		s.phaseLen = append(s.phaseLen, pos)
		s.stepOffset = append(s.stepOffset, offsets)
		s.gadgetOff = gadgetOff
		s.jumpOff = pos - 1
		cursor += pos
	}
	s.totalTicks = cursor
	return s, nil
}

// locate maps an absolute working time to (phase, inPhase); done when
// w >= totalTicks.
func (s *schedule) locate(w int64) (phase int, inPhase int64, done bool) {
	if w >= s.totalTicks {
		return 0, 0, true
	}
	// Phases may have unequal lengths; binary-search the start table.
	phase = sort.Search(len(s.phaseStart), func(i int) bool { return s.phaseStart[i] > w }) - 1
	return phase, w - s.phaseStart[phase], false
}

// runner is the mutable execution state of one framework run. Keeping the
// per-tick body as a method (rather than a capturing closure handed to the
// scheduler) lets the batched run loop dispatch it directly.
type runner struct {
	p   Program
	cfg Config
	sch *schedule
	n   int

	working []int64
	real    []int64
	halted  []bool
	samples []int64
	counts  []int32
	buf     []int64
	env     Env
	res     Result
}

// Run executes the program on n = cfg.Graph.N() nodes until every node
// halts, Stop fires, or the time budget elapses.
func Run(p Program, cfg Config) (Result, error) {
	if err := validate(cfg); err != nil {
		return Result{}, err
	}
	n := cfg.Graph.N()
	sch, err := compile(p, cfg, n)
	if err != nil {
		return Result{}, err
	}

	rn := &runner{
		p:       p,
		cfg:     cfg,
		sch:     sch,
		n:       n,
		working: make([]int64, n),
		real:    make([]int64, n),
		halted:  make([]bool, n),
		samples: make([]int64, n*sch.gadgetSamples),
		counts:  make([]int32, n),
		buf:     make([]int64, sch.gadgetSamples),
		env:     Env{g: cfg.Graph, r: cfg.Rand},
	}

	last, stopped := sched.RunBatch(cfg.Scheduler, cfg.MaxTime, rn.tick)

	rn.res.Time = last.Time
	rn.res.Ticks = last.Seq + 1
	if !stopped && !rn.res.Stopped && rn.res.Halted < n {
		return rn.res, fmt.Errorf("weaksync: %d/%d halted by time %v: %w", rn.res.Halted, n, cfg.MaxTime, ErrIncomplete)
	}
	return rn.res, nil
}

// tick executes one activation and reports whether the run continues.
func (rn *runner) tick(t sched.Tick) bool {
	u := t.Node
	if rn.halted[u] {
		return !rn.done()
	}
	rn.real[u]++
	w := rn.working[u]
	rn.working[u] = w + 1

	sch := rn.sch
	phase, pos, finished := sch.locate(w)
	if finished {
		rn.halted[u] = true
		rn.res.Halted++
		if rn.p.OnHalt != nil {
			rn.p.OnHalt(u)
		}
		return !rn.done()
	}

	offsets := sch.stepOffset[phase]
	for i, off := range offsets {
		step := rn.p.Phases[phase].Steps[i]
		window := int64(step.Window)
		if window <= 0 {
			window = 1
		}
		if window > int64(sch.delta) {
			window = int64(sch.delta)
		}
		if pos >= off && pos < off+window {
			rn.env.Node = u
			rn.env.Time = t.Time
			rn.env.Tick = int(pos - off)
			step.Do(&rn.env)
			return !rn.done()
		}
	}

	if sch.hasGadget {
		switch {
		case pos >= sch.gadgetOff && pos < sch.gadgetOff+int64(sch.gadgetSamples):
			v := rn.cfg.Graph.Sample(rn.cfg.Rand, u)
			if c := rn.counts[u]; int(c) < sch.gadgetSamples {
				rn.samples[u*sch.gadgetSamples+int(c)] = rn.real[v] - rn.real[u]
				rn.counts[u] = c + 1
			}
		case pos == sch.jumpOff:
			if c := int(rn.counts[u]); c > 0 {
				b := rn.buf[:c]
				copy(b, rn.samples[u*sch.gadgetSamples:u*sch.gadgetSamples+c])
				sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
				med := b[c/2]
				if c%2 == 0 {
					med = (b[c/2-1] + b[c/2]) / 2
				}
				if target := med + rn.real[u]; target >= 0 {
					rn.working[u] = target
				} else {
					rn.working[u] = 0
				}
				rn.counts[u] = 0
				rn.res.Jumps++
			}
		}
	}
	return !rn.done()
}

// done updates res.Stopped from the Stop hook and reports whether the run
// should end.
func (rn *runner) done() bool {
	if rn.cfg.Stop != nil && rn.cfg.Stop() {
		rn.res.Stopped = true
		return true
	}
	return rn.res.Halted >= rn.n
}

func validate(cfg Config) error {
	switch {
	case cfg.Graph == nil:
		return errors.New("weaksync: nil graph")
	case cfg.Scheduler == nil:
		return errors.New("weaksync: nil scheduler")
	case cfg.Rand == nil:
		return errors.New("weaksync: nil rand")
	case cfg.MaxTime <= 0:
		return fmt.Errorf("weaksync: MaxTime = %v, want > 0", cfg.MaxTime)
	case cfg.Scheduler.N() != cfg.Graph.N():
		return fmt.Errorf("weaksync: scheduler has %d nodes, graph %d", cfg.Scheduler.N(), cfg.Graph.N())
	}
	return nil
}
