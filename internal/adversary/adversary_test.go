package adversary

import (
	"strings"
	"testing"
	"testing/quick"

	"plurality/internal/population"
	"plurality/internal/rng"
)

func TestRegistryResolves(t *testing.T) {
	for _, d := range Registry() {
		if d.Name == "" || d.Summary == "" || d.Source == "" {
			t.Errorf("descriptor %+v has empty presentation fields", d)
		}
		got, ok := ByName(d.Name)
		if !ok || got.Name != d.Name {
			t.Errorf("ByName(%q) = %+v, %v", d.Name, got, ok)
		}
		for _, al := range d.Aliases {
			got, ok := ByName(al)
			if !ok || got.Name != d.Name {
				t.Errorf("alias ByName(%q) = %+v, %v, want %q", al, got, ok, d.Name)
			}
		}
	}
	if _, ok := ByName("no-such-adversary"); ok {
		t.Error("ByName accepted an unknown name")
	}
	if len(Registry()) != 5 {
		t.Errorf("registry has %d adversaries, want 5", len(Registry()))
	}
}

func TestParse(t *testing.T) {
	for _, tc := range []struct {
		in      string
		name    string
		lag     float64
		wantErr bool
	}{
		{in: "", name: ""},
		{in: "none", name: "none"},
		{in: "corrupt", name: "corrupt"},
		{in: "corruption", name: "corrupt"}, // alias canonicalizes
		{in: "liar", name: "byzantine"},
		{in: "late:2.5", name: "late", lag: 2.5},
		{in: "late", wantErr: false, name: "late"}, // lag checked by Validate once active
		{in: "corrupt:3", wantErr: true},           // lag on a lag-free adversary
		{in: "none:1", wantErr: true},
		{in: "late:x", wantErr: true},
		{in: "bogus", wantErr: true},
	} {
		s, err := Parse(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("Parse(%q) = %+v, want error", tc.in, s)
			}
			continue
		}
		if err != nil {
			t.Errorf("Parse(%q): %v", tc.in, err)
			continue
		}
		if s.Name != tc.name || s.Lag != tc.lag {
			t.Errorf("Parse(%q) = %+v, want name %q lag %v", tc.in, s, tc.name, tc.lag)
		}
	}
}

func TestSpecValidate(t *testing.T) {
	for _, tc := range []struct {
		spec    Spec
		wantErr string
	}{
		{spec: Spec{}},
		{spec: Spec{Name: "none"}},
		{spec: Spec{Name: "corrupt", Budget: 4}},
		{spec: Spec{Name: "corrupt", Budget: -1}, wantErr: "budget"},
		{spec: Spec{Name: "late", Budget: 4}, wantErr: "needs a positive lag"},
		{spec: Spec{Name: "late", Budget: 4, Lag: 2}},
		{spec: Spec{Name: "corrupt", Budget: 4, Lag: 2}, wantErr: "takes no lag"},
		{spec: Spec{Name: "bogus", Budget: 1}, wantErr: "unknown adversary"},
		{spec: Spec{Lag: 1}, wantErr: "without an adversary"},
	} {
		err := tc.spec.Validate()
		if tc.wantErr == "" {
			if err != nil {
				t.Errorf("Validate(%+v): %v", tc.spec, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("Validate(%+v) = %v, want error containing %q", tc.spec, err, tc.wantErr)
		}
	}
}

func TestNewInactiveIsNil(t *testing.T) {
	for _, spec := range []Spec{
		{},
		{Name: "none"},
		{Name: "corrupt"},            // zero budget
		{Name: "late", Budget: 0},    // zero budget before the lag check
		{Name: "corrupt", Budget: 0}, // explicit zero
	} {
		adv, err := New(spec, 1)
		if err != nil || adv != nil {
			t.Errorf("New(%+v) = %v, %v, want nil, nil", spec, adv, err)
		}
	}
	if _, err := New(Spec{Name: "bogus", Budget: 1}, 1); err == nil {
		t.Error("New accepted an unknown adversary")
	}
}

// TestPlanFlipsNoResurrection: corruption flips never move more than half
// the top-bottom gap, so they can never invert the order and resurrect a
// dead color into the plurality.
func TestPlanFlipsNoResurrection(t *testing.T) {
	adv, err := New(Spec{Name: "corrupt", Budget: 1 << 40}, 1)
	if err != nil {
		t.Fatal(err)
	}
	counts := []int64{900, 0, 100}
	// The extinct color 1 must never be resurrected: flips target the
	// weakest SURVIVING opinion, keeping consensus absorbing.
	from, to, x := adv.PlanFlips(counts, 100)
	if from != 0 || to != 2 {
		t.Fatalf("PlanFlips flips %d -> %d, want plurality 0 -> weakest survivor 2", from, to)
	}
	gap := counts[from] - counts[to]
	if x <= 0 || x > (gap+1)/2 {
		t.Fatalf("PlanFlips moves %d nodes, want in (0, %d] (half the gap)", x, (gap+1)/2)
	}
	// At (or past) consensus nothing survives as a flip target.
	if _, _, x := adv.PlanFlips([]int64{1000, 0, 0}, 200); x != 0 {
		t.Fatalf("PlanFlips planned %d flips against a consensus histogram", x)
	}
}

func TestCorruptionWindowAccounting(t *testing.T) {
	adv, err := New(Spec{Name: "corrupt", Budget: 3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// The first boundary sits one full window in: the adversary watches a
	// window of activity before its first strike.
	if adv.CorruptionDue(0.5 * CorruptWindow) {
		t.Fatal("window due before the first CorruptWindow elapsed")
	}
	if !adv.CorruptionDue(1.5 * CorruptWindow) {
		t.Fatal("window not due after CorruptWindow elapsed")
	}
	if adv.CorruptionDue(1.6 * CorruptWindow) {
		t.Fatal("window fired twice without a new boundary crossing")
	}
	if !adv.CorruptionDue(2.5 * CorruptWindow) {
		t.Fatal("next window not due")
	}
	adv.NoteCorruptions(5)
	adv.NoteBias()
	if adv.Corruptions() != 5 || adv.Biased() != 1 {
		t.Fatalf("counters = %d, %d, want 5, 1", adv.Corruptions(), adv.Biased())
	}
}

func TestDelaySetVictims(t *testing.T) {
	adv, err := New(Spec{Name: "delay-set", Budget: 8}, 7)
	if err != nil {
		t.Fatal(err)
	}
	adv.InitVictims(100)
	victims := 0
	for u := 0; u < 100; u++ {
		if adv.Victim(u) {
			victims++
		}
	}
	if victims != 8 {
		t.Fatalf("victim set has %d nodes, want budget 8", victims)
	}
	// Non-per-node adversaries never report victims.
	bias, err := New(Spec{Name: "minority-bias", Budget: 8}, 7)
	if err != nil {
		t.Fatal(err)
	}
	bias.InitVictims(100)
	for u := 0; u < 100; u++ {
		if bias.Victim(u) {
			t.Fatalf("minority-bias reported node %d as a victim", u)
		}
	}
}

func TestLieReportsMinority(t *testing.T) {
	// With budget = n every sample is answered by a liar.
	adv, err := New(Spec{Name: "byzantine", Budget: 1000}, 1)
	if err != nil {
		t.Fatal(err)
	}
	counts := []int64{700, 200, 100}
	for i := 0; i < 64; i++ {
		c, ok := adv.Lie(counts, 1000, float64(i))
		if !ok {
			t.Fatal("liar probability f/n = 1 produced a truthful sample")
		}
		if c != 2 {
			t.Fatalf("lie reported color %d, want minority 2", c)
		}
	}
	if adv.Corruptions() == 0 {
		t.Fatal("lies were not counted as corruptions")
	}
}

func TestFindHolderRespectsSkip(t *testing.T) {
	pop, err := population.FromCounts([]int64{4, 4})
	if err != nil {
		t.Fatal(err)
	}
	adv, err := New(Spec{Name: "corrupt", Budget: 1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Skip everything: no holder may be found.
	if u, ok := adv.FindHolder(pop, 0, func(int) bool { return true }); ok {
		t.Fatalf("FindHolder returned %d despite a skip-all filter", u)
	}
	u, ok := adv.FindHolder(pop, 1, nil)
	if !ok || pop.ColorOf(u) != 1 {
		t.Fatalf("FindHolder = %d, %v; want a holder of color 1", u, ok)
	}
}

// TestAdversaryStreamDisjoint: the adversary's dedicated RNG stream is
// decorrelated from the engine streams (0: scheduler, 1: protocol rule)
// for every seed — the property that makes zero-budget runs bit-identical
// and active adversaries non-perturbing to the underlying randomness.
func TestAdversaryStreamDisjoint(t *testing.T) {
	prop := func(seed uint64) bool {
		adv := rng.At(seed, Stream)
		for _, other := range []int{0, 1} {
			eng := rng.At(seed, other)
			// Identical streams would agree on every output; decorrelated
			// ones disagree somewhere in the first few draws.
			same := true
			for i := 0; i < 4; i++ {
				if adv.Uint64() != eng.Uint64() {
					same = false
				}
			}
			if same {
				return false
			}
			adv = rng.At(seed, Stream) // rewind for the next comparison
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 10000}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}
