// Package adversary implements the bounded-budget adversary families of
// ROADMAP item 2 — worst-case scheduling, state corruption and Byzantine
// sampling — as engine-agnostic decision logic the execution engines thread
// through their loops. The model follows the robustness literature around
// the source paper: "Breaking the Ω̃(√n) Barrier: Fast Consensus under a
// Late Adversary" (Robinson, Scheideler & Setzer) for the lagged-observation
// scheduling adversary, and the classic f-bounded corruption model in which
// plurality consensus survives f = o(√n) corrupted opinions per window and
// fails beyond the √n scale — the phase transition the adversary-threshold
// sweep gates on.
//
// # Families
//
// Scheduling adversaries bias or reorder activations without touching state:
//
//   - minority-bias redirects up to Budget activations per unit of parallel
//     time onto nodes holding the current minority opinion.
//   - delay-set suppresses every activation of a fixed Budget-node victim
//     set chosen at start (per-node engines only — the count-collapsed
//     engines have no node identity to delay).
//   - late is minority-bias driven by a view of the histogram that refreshes
//     only every Lag units of parallel time — the late adversary's
//     observation lag ℓ.
//
// State-corruption adversaries rewrite opinions: corrupt flips up to Budget
// nodes from the plurality opinion toward the minority at every
// CorruptWindow boundary (every round under the synchronous model). Flips
// never resurrect an extinct opinion — a corrupted node copies an existing
// minority holder — so consensus remains absorbing and the survive/fail
// threshold is the drift-versus-budget race the sweep measures.
//
// Byzantine adversaries lie inside the generic Rule sampling path: each
// sample drawn by any registry protocol (Two-Choices, USD, j-Majority, …)
// is answered by a liar with probability Budget/n, reporting the minority
// opinion instead of the sampled node's true color.
//
// # Determinism
//
// Every adversary draws from its own dedicated RNG stream (Stream), derived
// from the run seed exactly like the scheduler and rule streams, so runs
// stay reproducible per seed and an inactive adversary consumes no
// randomness at all — adversary=none is bit-identical to no adversary.
package adversary

import (
	"fmt"
	"strconv"
	"strings"

	"plurality/internal/population"
	"plurality/internal/rng"
)

// Stream is the adversary's dedicated RNG stream index under rng.At. The
// engines consume streams 0 (scheduler) and 1 (rule/core protocol); the
// experiment harness claims 1<<10 and above. Stream 2 is reserved here so
// adversary draws never perturb a trial's protocol randomness.
const Stream = 2

// CorruptWindow is the parallel-time span of one corruption tick-window:
// the corrupt adversary spends its budget at every CorruptWindow boundary.
// Three time units give every corrupted node ≈ 1−e⁻³ ≈ 95% probability of
// activating enough to be repaired by a drift-positive protocol, which
// places the survive/fail transition of the adversary-threshold sweep
// between f = n^0.3 and f = 4√n at simulable n.
const CorruptWindow = 3.0

// BiasWindow is the parallel-time span of one scheduling-bias budget
// window: biasing adversaries redirect at most Budget activations per
// BiasWindow.
const BiasWindow = 1.0

// findAttempts bounds the rejection sampling a per-node engine performs
// when materializing a color-level decision ("some node holding color c")
// as a concrete node; an adversary whose target opinion has nearly died out
// simply loses that redirect.
const findAttempts = 32

// Family classifies what an adversary is allowed to touch.
type Family int

const (
	// FamilyScheduling biases or suppresses activations, never state.
	FamilyScheduling Family = iota + 1
	// FamilyCorruption rewrites node opinions under a per-window budget.
	FamilyCorruption
	// FamilyByzantine lies inside the sampling path under a node budget.
	FamilyByzantine
)

// String names the family for listings and error messages.
func (f Family) String() string {
	switch f {
	case FamilyScheduling:
		return "scheduling"
	case FamilyCorruption:
		return "corruption"
	case FamilyByzantine:
		return "byzantine"
	}
	return "none"
}

// Descriptor describes one registered adversary family member: the metadata
// the listings render plus the capability flags Job.Validate enforces
// per engine.
type Descriptor struct {
	// Name is the canonical registry name, e.g. "corrupt".
	Name string
	// Aliases are alternate spellings ByName accepts.
	Aliases []string
	// Family classifies the adversary's powers.
	Family Family
	// Summary is the one-line behavior for listings and the README table.
	Summary string
	// Source is the model the adversary comes from.
	Source string
	// NeedsLag marks adversaries parameterized by an observation lag ℓ
	// ("late"); Spec.Lag is required positive for them and must be zero
	// for everyone else.
	NeedsLag bool
	// PerNode marks adversaries that need node identity (delay-set) and
	// therefore run only on the per-node engines, never on the
	// count-collapsed occupancy path.
	PerNode bool
}

// registry returns every registered adversary, in presentation order.
// Registering an adversary here exposes it to WithAdversary, the experiment
// harness's adversary axis, both CLIs and the README table.
func registry() []Descriptor {
	return []Descriptor{
		{
			Name:    "minority-bias",
			Family:  FamilyScheduling,
			Summary: "redirects up to f activations per unit time onto nodes holding the minority opinion",
			Source:  "oblivious scheduling adversary (ROADMAP item 2)",
		},
		{
			Name:    "delay-set",
			Family:  FamilyScheduling,
			Summary: "suppresses every activation of a fixed f-node victim set chosen at start",
			Source:  "targeted-delay scheduling adversary (ROADMAP item 2)",
			PerNode: true,
		},
		{
			Name:     "late",
			Family:   FamilyScheduling,
			Summary:  "minority-bias steered by a histogram view refreshed only every ℓ time units",
			Source:   "late adversary of Robinson, Scheideler & Setzer (DISC '16)",
			NeedsLag: true,
		},
		{
			Name:    "corrupt",
			Aliases: []string{"corruption"},
			Family:  FamilyCorruption,
			Summary: "flips up to f plurality-opinion nodes toward the minority per tick-window (per round when synchronous)",
			Source:  "f-bounded state corruption; survives f = o(√n), fails beyond",
		},
		{
			Name:    "byzantine",
			Aliases: []string{"liar"},
			Family:  FamilyByzantine,
			Summary: "each sample is answered by a liar with probability f/n, reporting the minority opinion",
			Source:  "Byzantine sampling in the generic Rule path",
		},
	}
}

// descriptors is the registry materialized once at init.
var descriptors = registry()

// Registry returns every registered adversary, in presentation order. The
// slice is a copy; descriptors themselves are immutable values.
func Registry() []Descriptor {
	out := make([]Descriptor, len(descriptors))
	copy(out, descriptors)
	return out
}

// Names returns the canonical names in presentation order.
func Names() []string {
	names := make([]string, len(descriptors))
	for i, d := range descriptors {
		names[i] = d.Name
	}
	return names
}

// ByName resolves an adversary by canonical name or alias.
func ByName(name string) (Descriptor, bool) {
	for _, d := range descriptors {
		if d.Name == name {
			return d, true
		}
		for _, a := range d.Aliases {
			if a == name {
				return d, true
			}
		}
	}
	return Descriptor{}, false
}

// Spec is a declarative adversary selection: a registry name, the budget f,
// and — for lag-parameterized adversaries — the observation lag ℓ. The zero
// Spec, the name "none" and a zero budget all select no adversary; an
// inactive spec installs no hooks and consumes no randomness.
type Spec struct {
	// Name is the registry name ("corrupt", "late", …); "" and "none"
	// select no adversary.
	Name string
	// Budget is f: flips per window (corruption), redirects per window
	// (scheduling bias), victim-set size (delay-set) or expected liar
	// count (byzantine). Zero deactivates the adversary.
	Budget int64
	// Lag is the observation lag ℓ in parallel time, required positive for
	// NeedsLag adversaries ("late") and zero for everyone else.
	Lag float64
}

// Parse resolves a textual adversary spec — "name" or "name:<lag>" for
// lag-parameterized adversaries — into a Spec with no budget; callers
// supply the budget separately (the -budget flag, the budget axis).
func Parse(spec string) (Spec, error) {
	name, param, hasParam := strings.Cut(spec, ":")
	s := Spec{Name: name}
	if name == "" || name == "none" {
		if hasParam {
			return Spec{}, fmt.Errorf("adversary: %q takes no parameter", name)
		}
		return s, nil
	}
	d, ok := ByName(name)
	if !ok {
		return Spec{}, fmt.Errorf("adversary: unknown adversary %q (registered: %s)",
			name, strings.Join(Names(), ", "))
	}
	if hasParam {
		if !d.NeedsLag {
			return Spec{}, fmt.Errorf("adversary: %s takes no lag parameter, got %q", d.Name, param)
		}
		lag, err := strconv.ParseFloat(param, 64)
		if err != nil {
			return Spec{}, fmt.Errorf("adversary: bad lag %q: %v", param, err)
		}
		s.Lag = lag
	}
	s.Name = d.Name // canonicalize aliases
	return s, nil
}

// Active reports whether the spec selects a live adversary: a registered
// name with a positive budget.
func (s Spec) Active() bool {
	return s.Name != "" && s.Name != "none" && s.Budget > 0
}

// Descriptor resolves the spec's registry entry.
func (s Spec) Descriptor() (Descriptor, bool) {
	if s.Name == "" || s.Name == "none" {
		return Descriptor{}, false
	}
	return ByName(s.Name)
}

// Validate checks the spec's internal consistency: the name must resolve,
// budgets may not be negative, and the lag is required exactly for the
// lag-parameterized adversaries.
func (s Spec) Validate() error {
	if s.Budget < 0 {
		return fmt.Errorf("adversary: budget %d, want >= 0", s.Budget)
	}
	if s.Lag < 0 {
		return fmt.Errorf("adversary: lag %v, want >= 0", s.Lag)
	}
	if s.Name == "" || s.Name == "none" {
		if s.Lag != 0 {
			return fmt.Errorf("adversary: lag %v without an adversary", s.Lag)
		}
		return nil
	}
	d, ok := ByName(s.Name)
	if !ok {
		return fmt.Errorf("adversary: unknown adversary %q (registered: %s)",
			s.Name, strings.Join(Names(), ", "))
	}
	if d.NeedsLag && s.Active() && s.Lag == 0 {
		return fmt.Errorf("adversary: %s needs a positive lag, e.g. %q", d.Name, d.Name+":2")
	}
	if !d.NeedsLag && s.Lag != 0 {
		return fmt.Errorf("adversary: %s takes no lag, got %v", d.Name, s.Lag)
	}
	return nil
}

// Adversary is one run's live adversary instance: the resolved descriptor,
// the budget-window accounting, the lagged view, and the dedicated RNG
// stream. Instances are single-run and not safe for concurrent use — every
// trial constructs its own from the trial seed, exactly like the engines'
// protocol RNGs.
type Adversary struct {
	desc   Descriptor
	budget int64
	lag    float64
	rand   *rng.RNG

	corruptions int64
	biased      int64

	nextCorruptAt float64

	biasWindow int64
	biasUsed   int64

	lagCounts []int64
	lagFresh  bool
	lagNextAt float64

	victims map[int]struct{}
}

// New constructs the run instance for spec, drawing all adversary
// randomness from rng.At(seed, Stream). An inactive spec returns (nil, nil)
// — the engines install no hooks for a nil adversary.
func New(spec Spec, seed uint64) (*Adversary, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if !spec.Active() {
		return nil, nil
	}
	d, _ := spec.Descriptor()
	return &Adversary{
		desc:       d,
		budget:     spec.Budget,
		lag:        spec.Lag,
		rand:       rng.At(seed, Stream),
		biasWindow: -1,
	}, nil
}

// Desc returns the resolved registry descriptor.
func (a *Adversary) Desc() Descriptor { return a.desc }

// Family returns the adversary's family; FamilyScheduling et al.
func (a *Adversary) Family() Family { return a.desc.Family }

// Budget returns the configured budget f.
func (a *Adversary) Budget() int64 { return a.budget }

// Corruptions returns the number of opinions rewritten so far: corruption
// flips plus Byzantine lies.
func (a *Adversary) Corruptions() int64 { return a.corruptions }

// Biased returns the number of activations redirected or suppressed so far.
func (a *Adversary) Biased() int64 { return a.biased }

// NoteCorruptions records n applied opinion rewrites. The engines call it
// with the flips they actually materialized, which may be fewer than
// planned when rejection sampling against a near-extinct opinion fails.
func (a *Adversary) NoteCorruptions(n int64) { a.corruptions += n }

// NoteBias records one redirected or suppressed activation.
func (a *Adversary) NoteBias() { a.biased++ }

// view returns the histogram the adversary is allowed to see at time now:
// the live counts, or — for lag-parameterized adversaries — a snapshot
// refreshed only every Lag time units.
func (a *Adversary) view(counts []int64, now float64) []int64 {
	if a.lag <= 0 {
		return counts
	}
	if !a.lagFresh || now >= a.lagNextAt {
		if a.lagCounts == nil {
			a.lagCounts = make([]int64, len(counts))
		}
		copy(a.lagCounts, counts)
		a.lagFresh = true
		a.lagNextAt = now + a.lag
	}
	return a.lagCounts
}

// topBottom locates the plurality color and the least-supported still-alive
// color distinct from it. ok is false when fewer than two opinions survive —
// there is no minority to support and the adversary stands down.
func topBottom(counts []int64) (top, bottom population.Color, ok bool) {
	top, bottom = -1, -1
	for c, v := range counts {
		if v <= 0 {
			continue
		}
		if top < 0 || v > counts[top] {
			top = population.Color(c)
		}
	}
	if top < 0 {
		return -1, -1, false
	}
	for c, v := range counts {
		if v <= 0 || population.Color(c) == top {
			continue
		}
		if bottom < 0 || v < counts[bottom] {
			bottom = population.Color(c)
		}
	}
	return top, bottom, bottom >= 0
}

// CorruptionDue reports whether a corruption window boundary has been
// crossed at parallel time now, advancing the boundary when it has. Only
// the corruption family ever fires.
func (a *Adversary) CorruptionDue(now float64) bool {
	if a.desc.Family != FamilyCorruption {
		return false
	}
	if a.nextCorruptAt == 0 {
		a.nextCorruptAt = CorruptWindow
	}
	if now < a.nextCorruptAt {
		return false
	}
	for now >= a.nextCorruptAt {
		a.nextCorruptAt += CorruptWindow
	}
	return true
}

// PlanFlips plans one corruption window's flips against the (possibly
// lagged) view of counts: move x = min(Budget, ⌈gap/2⌉) nodes from the
// plurality opinion to the weakest surviving opinion. Capping at half the
// gap keeps the adversary from overshooting into instantly handing the
// minority the win; refusing extinct opinions keeps consensus absorbing.
// The engines materialize the plan (histogram move or per-node flips) and
// report the realized count via NoteCorruptions.
func (a *Adversary) PlanFlips(counts []int64, now float64) (from, to population.Color, x int64) {
	top, bottom, ok := topBottom(a.view(counts, now))
	if !ok {
		return -1, -1, 0
	}
	gap := counts[top] - counts[bottom]
	if gap <= 0 {
		// A lagged view may disagree with the live histogram; never flip
		// against the live gap.
		return -1, -1, 0
	}
	x = (gap + 1) / 2
	if x > a.budget {
		x = a.budget
	}
	return top, bottom, x
}

// BiasColor decides whether the next activation should be redirected onto a
// node holding the (possibly lagged) minority opinion, spending one unit of
// the per-BiasWindow budget. It fires only for the biasing scheduling
// adversaries; delay-set uses Victim instead. The caller materializes the
// redirect and reports success via NoteBias.
func (a *Adversary) BiasColor(counts []int64, now float64) (population.Color, bool) {
	if a.desc.Family != FamilyScheduling || a.desc.PerNode {
		return -1, false
	}
	if w := int64(now / BiasWindow); w != a.biasWindow {
		a.biasWindow = w
		a.biasUsed = 0
	}
	if a.biasUsed >= a.budget {
		return -1, false
	}
	_, bottom, ok := topBottom(a.view(counts, now))
	if !ok {
		return -1, false
	}
	a.biasUsed++
	return bottom, true
}

// InitVictims draws the delay-set's fixed victim set: min(Budget, n−1)
// distinct nodes chosen uniformly from the adversary stream. It is a no-op
// for every other adversary.
func (a *Adversary) InitVictims(n int) {
	if !a.desc.PerNode || a.victims != nil {
		return
	}
	f := a.budget
	if f > int64(n)-1 {
		f = int64(n) - 1
	}
	a.victims = make(map[int]struct{}, f)
	for int64(len(a.victims)) < f {
		a.victims[a.rand.Intn(n)] = struct{}{}
	}
}

// Victim reports whether node u's activations are suppressed by the
// delay-set. The caller records each suppression via NoteBias.
func (a *Adversary) Victim(u int) bool {
	if a.victims == nil {
		return false
	}
	_, ok := a.victims[u]
	return ok
}

// Lie intercepts one drawn sample for the Byzantine family: with
// probability Budget/n the sampled node is a liar and reports the current
// minority opinion instead of the truth. The lie is recorded as a
// corruption. n is the population size; other families never lie.
func (a *Adversary) Lie(counts []int64, n int64, now float64) (population.Color, bool) {
	if a.desc.Family != FamilyByzantine {
		return -1, false
	}
	p := float64(a.budget) / float64(n)
	if p > 1 {
		p = 1
	}
	if !a.rand.Bernoulli(p) {
		return -1, false
	}
	_, bottom, ok := topBottom(a.view(counts, now))
	if !ok {
		return -1, false
	}
	a.corruptions++
	return bottom, true
}

// FindHolder materializes a color-level decision as a concrete node: a
// uniformly random node with ColorOf(u) == c, found by bounded rejection
// sampling from the adversary stream. ok is false when findAttempts draws
// all miss — the adversary loses that action. skip, when non-nil, excludes
// nodes the engine considers untouchable (halted or crashed).
func (a *Adversary) FindHolder(pop *population.Population, c population.Color, skip func(int) bool) (int, bool) {
	n := pop.N()
	for i := 0; i < findAttempts; i++ {
		u := a.rand.Intn(n)
		if pop.ColorOf(u) != c {
			continue
		}
		if skip != nil && skip(u) {
			continue
		}
		return u, true
	}
	return -1, false
}
