package node

import (
	"container/heap"
	"errors"
	"fmt"
	"sync"

	"plurality/internal/population"
	"plurality/internal/rng"
)

// Faults configures message-level fault injection on the in-process
// fabric. All draws come from the fabric's own seeded stream, so a faulty
// cluster is exactly as deterministic as a clean one.
type Faults struct {
	// Latency is the mean of the exponential per-message delay, in
	// parallel-time units, applied independently to each request and each
	// reply. Zero means instant delivery (the oracle-equivalent setting).
	Latency float64
	// Drop is the probability a message (request or reply) is lost.
	Drop float64
	// Reorder is the probability a message draws a second independent
	// exponential delay on top of Latency, shuffling it behind later
	// traffic.
	Reorder float64
}

// errStall reports a fabric where every live node blocked with no pending
// event — a runtime bug by construction (every Sleep and every Pull
// schedules a wake), surfaced loudly instead of deadlocking.
var errStall = errors.New("node: fabric stalled with no pending events")

// event is one scheduled occurrence on the virtual timeline.
type event struct {
	at   float64
	seq  int64 // tiebreaker: schedule order
	fire func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); ev := old[n-1]; *h = old[:n-1]; return ev }

// Fabric is the in-process transport: a conservative virtual-time event
// coordinator. Node goroutines only ever block inside Sleep or Pull; the
// coordinator waits until every live node is blocked (running == 0), pops
// the earliest pending event — ties broken by schedule order — advances
// the shared clock, and fires it. Exactly one goroutine is ever runnable,
// so execution is globally sequential and bit-deterministic for a fixed
// seed, while the nodes still communicate exclusively through messages.
type Fabric struct {
	n      int
	faults Faults
	frng   *rng.RNG

	mu      sync.Mutex
	cond    *sync.Cond // coordinator waits here for running == 0
	events  eventHeap
	seq     int64
	now     float64
	running int // node goroutines not blocked in Sleep/Pull
	live    int // node goroutines that have not called Done
	closed  bool
	started bool
	err     error
	done    chan struct{} // coordinator exited

	handlers []Handler
	bound    int
	stats    Stats
}

// NewFabric creates an in-process fabric for n nodes. The fault stream is
// seeded independently of every node stream, so enabling faults does not
// shift the nodes' own random draws.
func NewFabric(n int, seed uint64, f Faults) *Fabric {
	fb := &Fabric{
		n:        n,
		faults:   f,
		frng:     rng.At(seed, faultStream),
		handlers: make([]Handler, n),
		done:     make(chan struct{}),
	}
	fb.cond = sync.NewCond(&fb.mu)
	return fb
}

// Bind implements Network.
func (f *Fabric) Bind(id int, h Handler) (Conn, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.started {
		return nil, errors.New("node: Bind after Start")
	}
	if id < 0 || id >= f.n {
		return nil, fmt.Errorf("node: Bind id %d out of range [0,%d)", id, f.n)
	}
	if f.handlers[id] != nil {
		return nil, fmt.Errorf("node: node %d already bound", id)
	}
	f.handlers[id] = h
	f.bound++
	return fabConn{f: f, id: id}, nil
}

// Clock implements Network. The fabric's clocks are all views of the one
// shared virtual timeline.
func (f *Fabric) Clock(id int) Clock {
	return fabClock{f: f}
}

// Start implements Network: it arms the running/live counters to the
// bound-node count and launches the coordinator. The cluster must start
// exactly one goroutine per bound node after Start; each counts as running
// until its first Sleep.
func (f *Fabric) Start() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.started {
		return errors.New("node: fabric started twice")
	}
	f.started = true
	f.running = f.bound
	f.live = f.bound
	go f.dispatch()
	return nil
}

// Close implements Network: it marks the fabric closed, releases every
// blocked node (their Sleep/Pull calls return with ok=false / missing
// replies), and waits for the coordinator to exit. Idempotent.
func (f *Fabric) Close() error {
	f.mu.Lock()
	if !f.started {
		f.closed = true
		f.mu.Unlock()
		return nil
	}
	f.closed = true
	f.cond.Signal()
	f.mu.Unlock()
	<-f.done
	return nil
}

// Stats implements Network.
func (f *Fabric) Stats() Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// Err reports a coordinator-detected runtime bug (stall), nil otherwise.
func (f *Fabric) Err() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.err
}

// schedule enqueues fire at virtual time at. Caller holds f.mu.
func (f *Fabric) schedule(at float64, fire func()) {
	heap.Push(&f.events, event{at: at, seq: f.seq, fire: fire})
	f.seq++
}

// dispatch is the coordinator: pop-advance-fire, one event at a time,
// only while every live node is blocked.
func (f *Fabric) dispatch() {
	f.mu.Lock()
	for {
		for f.running > 0 && !f.closed {
			f.cond.Wait()
		}
		if f.closed {
			f.drain()
			break
		}
		if f.live == 0 {
			break
		}
		if len(f.events) == 0 {
			// Unreachable by construction; fail loudly, not silently.
			f.err = errStall
			f.closed = true
			f.drain()
			break
		}
		ev := heap.Pop(&f.events).(event)
		f.now = ev.at
		ev.fire()
	}
	f.mu.Unlock()
	close(f.done)
}

// drain fires every remaining event under closed state so that blocked
// nodes are released: wake and timeout closures run their release path,
// delivery closures no-op. Caller holds f.mu.
func (f *Fabric) drain() {
	for len(f.events) > 0 {
		ev := heap.Pop(&f.events).(event)
		ev.fire()
	}
}

// delay draws one message delay from the fault stream. Caller holds f.mu.
func (f *Fabric) delay() float64 {
	if f.faults.Latency <= 0 && f.faults.Reorder <= 0 {
		return 0
	}
	mean := f.faults.Latency
	if mean <= 0 {
		mean = reorderBaseDelay
	}
	var d float64
	if f.faults.Latency > 0 {
		d = f.frng.ExpFloat64() * f.faults.Latency
	}
	if f.faults.Reorder > 0 && f.frng.Bernoulli(f.faults.Reorder) {
		d += f.frng.ExpFloat64() * mean
	}
	return d
}

// reorderBaseDelay is the mean of the extra reorder delay when no base
// latency is configured (pure-reorder fault injection still needs a
// timescale to shuffle messages across).
const reorderBaseDelay = 0.5

// drop draws one drop decision from the fault stream. Caller holds f.mu.
func (f *Fabric) drop() bool {
	return f.faults.Drop > 0 && f.frng.Bernoulli(f.faults.Drop)
}

// fabClock is a node's view of the fabric's shared virtual timeline.
type fabClock struct {
	f *Fabric
}

// Sleep implements Clock: it schedules a wake event d units ahead, parks
// the caller, and lets the coordinator run.
func (c fabClock) Sleep(d float64) (float64, bool) {
	f := c.f
	f.mu.Lock()
	if f.closed {
		now := f.now
		f.mu.Unlock()
		return now, false
	}
	ch := make(chan struct{})
	f.schedule(f.now+d, func() {
		// Fires under f.mu: the sleeper becomes the one running goroutine.
		f.running++
		close(ch)
	})
	f.running--
	f.cond.Signal()
	f.mu.Unlock()
	<-ch
	f.mu.Lock()
	now := f.now
	ok := !f.closed
	f.mu.Unlock()
	return now, ok
}

// Done implements Clock: the node goroutine is finished for good.
func (c fabClock) Done() {
	f := c.f
	f.mu.Lock()
	f.running--
	f.live--
	f.cond.Signal()
	f.mu.Unlock()
}

// fabConn is node id's endpoint on the fabric.
type fabConn struct {
	f  *Fabric
	id int
}

// pullWait tracks one in-flight Pull: filled reply slots, the count still
// missing, and a latch so late replies and the stale timeout are no-ops.
type pullWait struct {
	replies   []PullReply
	remaining int
	done      bool
	ch        chan struct{}
}

// Pull implements Conn. Each request is delivered to the responder's
// handler after its (possibly zero) latency draw; the reply travels back
// with an independent draw. The requester wakes when all replies landed or
// at the timeout — a timeout event is always scheduled, which doubles as
// the release path when replies were dropped or the fabric closes.
func (c fabConn) Pull(peers []int, timeout float64) []PullReply {
	f := c.f
	f.mu.Lock()
	replies := make([]PullReply, len(peers))
	if f.closed {
		f.mu.Unlock()
		return replies
	}
	pw := &pullWait{replies: replies, remaining: len(peers), ch: make(chan struct{})}
	for i, p := range peers {
		f.stats.Requests++
		if f.drop() {
			// Lost request: the slot stays !OK and the requester waits out
			// the timeout — it has no way to know the message vanished.
			f.stats.Dropped++
			continue
		}
		i, p := i, p
		f.schedule(f.now+f.delay(), func() {
			// Request delivery. The handler is the responder's
			// always-responsive network layer: it reads atomically
			// published state, so invoking it here never wakes or blocks
			// the responder's protocol goroutine.
			if f.closed {
				return
			}
			resp := f.handlers[p](Message{Kind: KindPull, To: uint32(p), From: uint32(c.id)})
			if f.drop() {
				f.stats.Dropped++
				return
			}
			f.schedule(f.now+f.delay(), func() {
				// Reply delivery back to the requester.
				if f.closed || pw.done {
					return
				}
				f.stats.Responses++
				pw.replies[i] = PullReply{
					Opinion: population.Color(resp.Opinion),
					Decided: resp.Decided,
					OK:      true,
				}
				pw.remaining--
				if pw.remaining == 0 {
					pw.done = true
					f.running++
					close(pw.ch)
				}
			})
		})
	}
	// The timeout always exists: it wakes the requester when replies were
	// dropped, and it is the release valve during close-drain. When all
	// replies arrived first it fires as a stale no-op.
	f.schedule(f.now+timeout, func() {
		if pw.done {
			return
		}
		pw.done = true
		f.running++
		close(pw.ch)
	})
	f.running--
	f.cond.Signal()
	f.mu.Unlock()
	<-pw.ch
	return replies
}
