package node

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

func TestCodecRoundTrip(t *testing.T) {
	msgs := []Message{
		{Kind: KindPull, To: 3, From: 7, Seq: 1},
		{Kind: KindReply, To: 7, From: 3, Seq: 1, Opinion: 2, Decided: true},
		{Kind: KindReply, To: 0, From: 255, Seq: 1 << 60, Opinion: -1},
	}
	var buf bytes.Buffer
	for _, m := range msgs {
		if err := WriteMessage(&buf, m); err != nil {
			t.Fatalf("write: %v", err)
		}
	}
	for i, want := range msgs {
		got, err := ReadMessage(&buf)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("frame %d: got %+v, want %+v", i, got, want)
		}
	}
	if _, err := ReadMessage(&buf); err != io.EOF {
		t.Fatalf("after last frame: got %v, want EOF", err)
	}
}

func TestCodecRejects(t *testing.T) {
	valid := AppendMessage(nil, Message{Kind: KindReply, To: 1, From: 2, Seq: 3, Opinion: 4})

	// Truncated payload.
	if _, err := DecodeMessage(valid[4 : len(valid)-1]); !errors.Is(err, ErrFrameTruncated) {
		t.Errorf("truncated: got %v, want ErrFrameTruncated", err)
	}
	// Trailing bytes.
	if _, err := DecodeMessage(append(append([]byte(nil), valid[4:]...), 0)); !errors.Is(err, ErrFrameTrailing) {
		t.Errorf("trailing: got %v, want ErrFrameTrailing", err)
	}
	// Unknown kind.
	bad := append([]byte(nil), valid[4:]...)
	bad[0] = 99
	if _, err := DecodeMessage(bad); !errors.Is(err, ErrBadKind) {
		t.Errorf("bad kind: got %v, want ErrBadKind", err)
	}
	// Bad decided byte.
	bad = append([]byte(nil), valid[4:]...)
	bad[21] = 7
	if _, err := DecodeMessage(bad); err == nil {
		t.Error("bad decided byte: decode accepted it")
	}
	// Oversized length prefix is rejected before any allocation.
	big := binary.BigEndian.AppendUint32(nil, MaxFrame+1)
	if _, err := ReadMessage(bytes.NewReader(big)); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("oversized: got %v, want ErrFrameTooLarge", err)
	}
	// Truncated stream (prefix promises more than is there).
	short := AppendMessage(nil, Message{Kind: KindPull})[:10]
	if _, err := ReadMessage(bytes.NewReader(short)); err == nil {
		t.Error("short stream: read accepted it")
	}
}

// FuzzWireCodec drives the decoder with arbitrary frames: it must never
// panic, and everything it accepts must re-encode byte-identically
// (round-trip closure).
func FuzzWireCodec(f *testing.F) {
	f.Add(AppendMessage(nil, Message{Kind: KindPull, To: 1, From: 2, Seq: 3}))
	f.Add(AppendMessage(nil, Message{Kind: KindReply, To: 2, From: 1, Seq: 3, Opinion: -1, Decided: true}))
	f.Add([]byte{0, 0, 0, 22})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadMessage(bytes.NewReader(data))
		if err != nil {
			return
		}
		re := AppendMessage(nil, m)
		if !bytes.Equal(re, data[:len(re)]) {
			t.Fatalf("round trip drifted: decoded %+v, re-encoded % x, input % x", m, re, data[:len(re)])
		}
		m2, err := DecodeMessage(re[4:])
		if err != nil || m2 != m {
			t.Fatalf("re-decode: %+v, %v", m2, err)
		}
	})
}
