package node

import (
	"sync/atomic"

	"plurality/internal/population"
	"plurality/internal/protocols/dynamics"
	"plurality/internal/rng"
)

// Per-cluster rng stream layout. Node i draws every local decision — clock
// gaps, peer picks, rule randomness — from the single stream
// nodeStreamBase+i, far above the streams the simulator and the experiment
// harness claim, so a cluster and a simulation of the same seed never
// share draws.
const (
	nodeStreamBase = 1 << 21
	faultStream    = nodeStreamBase - 1
)

// Node is one live participant: a protocol loop with a local Poisson
// clock, plus an always-responsive handler serving its atomically
// published state to peers.
type Node struct {
	id   int
	n    int
	rule dynamics.Rule
	rng  *rng.RNG

	clock   Clock
	conn    Conn
	timeout float64
	maxTime float64

	// state packs (opinion << 1) | decided into one atomic word so the
	// handler always serves a consistent opinion/decided pair without
	// touching the protocol loop.
	state atomic.Int64

	gad      gadget
	onChange func(id int, old, next population.Color, t float64)

	peers   []int
	sampled []population.Color

	ticks int64
	last  float64
}

// nodeResult is one node's exit report.
type nodeResult struct {
	ticks    int64
	last     float64 // clock reading at the final activation
	halted   bool    // exited through the termination gadget
	timedOut bool    // exited at maxTime
	stopped  bool    // released by a closing network
}

func packState(op population.Color, decided bool) int64 {
	v := int64(op) << 1
	if decided {
		v |= 1
	}
	return v
}

func unpackState(v int64) (population.Color, bool) {
	return population.Color(v >> 1), v&1 == 1
}

// newNode wires one participant. The caller binds handle to the network
// before starting run.
func newNode(id, n int, rule dynamics.Rule, initial population.Color, seed uint64,
	timeout, maxTime float64, stableTarget, confirmTarget int,
	onChange func(id int, old, next population.Color, t float64)) *Node {
	s := rule.SampleCount()
	nd := &Node{
		id:       id,
		n:        n,
		rule:     rule,
		rng:      rng.At(seed, nodeStreamBase+id),
		timeout:  timeout,
		maxTime:  maxTime,
		onChange: onChange,
		peers:    make([]int, s),
		sampled:  make([]population.Color, s),
	}
	nd.gad = gadget{stableTarget: stableTarget, confirmTarget: confirmTarget}
	nd.state.Store(packState(initial, false))
	return nd
}

// handle serves one inbound pull. It runs on the transport's delivery
// path (the fabric coordinator or a TCP serve goroutine), reads only the
// packed atomic state, and never blocks.
func (nd *Node) handle(req Message) Message {
	op, decided := unpackState(nd.state.Load())
	return Message{
		Kind:    KindReply,
		To:      req.From,
		From:    uint32(nd.id),
		Seq:     req.Seq,
		Opinion: int32(op),
		Decided: decided,
	}
}

// run is the protocol loop: sleep an Exp(1) gap, pull s uniformly chosen
// peers (excluding self, matching the clique's sampling law), apply the
// rule, feed the termination gadget. It exits when the gadget halts, the
// clock passes maxTime, or the network shuts down.
func (nd *Node) run() nodeResult {
	defer nd.clock.Done()
	for {
		gap := nd.rng.ExpFloat64()
		t, ok := nd.clock.Sleep(gap)
		if !ok {
			return nodeResult{ticks: nd.ticks, last: nd.last, stopped: true}
		}
		if t > nd.maxTime {
			return nodeResult{ticks: nd.ticks, last: nd.last, timedOut: true}
		}
		nd.ticks++
		nd.last = t
		for i := range nd.peers {
			nd.peers[i] = nd.rng.IntnExcept(nd.n, nd.id)
		}
		replies := nd.conn.Pull(nd.peers, nd.timeout)
		own, _ := unpackState(nd.state.Load())
		complete := true
		for i, rep := range replies {
			if !rep.OK {
				complete = false
				break
			}
			nd.sampled[i] = rep.Opinion
		}
		if !complete {
			// A lost activation: no state change, no gadget progress —
			// the same shape as a tick spent waiting in the simulator's
			// delay extension.
			nd.gad.miss()
			continue
		}
		next := nd.rule.Next(nd.rng, own, nd.sampled)
		if next != own {
			nd.state.Store(packState(next, false))
			if nd.onChange != nil {
				nd.onChange(nd.id, own, next, t)
			}
		}
		quiet := next == own && own != population.None
		allDecided := quiet
		if quiet {
			for _, rep := range replies {
				if rep.Opinion != own {
					quiet = false
					allDecided = false
					break
				}
				if !rep.Decided {
					allDecided = false
				}
			}
		}
		decided, halt := nd.gad.observe(quiet, allDecided)
		nd.state.Store(packState(next, decided))
		if halt {
			return nodeResult{ticks: nd.ticks, last: nd.last, halted: true}
		}
	}
}
