package node

import (
	"context"
	"net"
	"runtime"
	"testing"
	"time"
)

// waitGoroutines retries until the goroutine count settles at or below
// bound (exits of finished goroutines lag their wg.Done), mirroring
// internal/service's SSE leak test.
func waitGoroutines(t *testing.T, bound int) {
	t.Helper()
	var g int
	for i := 0; i < 100; i++ {
		g = runtime.NumGoroutine()
		if g <= bound {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d alive, want <= %d", g, bound)
}

// TestClusterShutdownNoGoroutineLeak starts and stops 100-node fabric
// clusters — some to completion, some canceled mid-run — and asserts the
// goroutine count returns to baseline each round.
func TestClusterShutdownNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	rule := lookupRule(t, "two-choices")
	for round := 0; round < 3; round++ {
		// To completion.
		if _, err := Run(context.Background(), ClusterConfig{
			Rule:    rule,
			Counts:  []int64{60, 40},
			Seed:    uint64(round + 1),
			Network: NewFabric(100, uint64(round+1), Faults{}),
		}); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		// Canceled almost immediately: every node must still unwind.
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(time.Millisecond)
			cancel()
		}()
		Run(ctx, ClusterConfig{
			Rule:    rule,
			Counts:  []int64{50, 50},
			Seed:    uint64(round + 1),
			Network: NewFabric(100, uint64(round+1), Faults{Latency: 0.05, Drop: 0.02}),
		})
		waitGoroutines(t, before+3)
	}
}

// TestTCPShutdownClosesSockets runs a 100-node TCP cluster, then asserts
// goroutines return to baseline and the listener socket actually closed
// (a fresh dial must fail).
func TestTCPShutdownClosesSockets(t *testing.T) {
	before := runtime.NumGoroutine()
	mesh, err := NewTCPMesh([]string{"127.0.0.1:0"}, 0, 100, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	addr := mesh.Addr()
	res, err := Run(context.Background(), ClusterConfig{
		Rule:    lookupRule(t, "two-choices"),
		Counts:  []int64{60, 40},
		Seed:    2,
		MaxTime: 5000,
		Network: mesh,
	})
	if err != nil {
		t.Fatalf("tcp cluster: %v", err)
	}
	if !res.Done {
		t.Fatal("tcp cluster did not converge")
	}
	waitGoroutines(t, before+3)
	if c, err := net.DialTimeout("tcp", addr, 200*time.Millisecond); err == nil {
		c.Close()
		t.Fatalf("listener %s still accepting after Close", addr)
	}
}

// TestTCPCancelClosesEverything cancels a TCP cluster mid-run; sockets
// and goroutines must still unwind.
func TestTCPCancelClosesEverything(t *testing.T) {
	before := runtime.NumGoroutine()
	mesh, err := NewTCPMesh([]string{"127.0.0.1:0"}, 0, 100, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	addr := mesh.Addr()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	Run(ctx, ClusterConfig{
		Rule:    lookupRule(t, "voter"),
		Counts:  []int64{50, 50},
		Seed:    3,
		Network: mesh,
	})
	waitGoroutines(t, before+3)
	if c, err := net.DialTimeout("tcp", addr, 200*time.Millisecond); err == nil {
		c.Close()
		t.Fatalf("listener %s still accepting after cancel", addr)
	}
}
