package node

import (
	"os"
	"regexp"
	"strings"
	"testing"
)

// TestREADMENetQuickstartInSync: the README's "Running a real cluster"
// snippet is the command block scripts/net_quickstart.sh actually proves in
// CI (with $PORT1/$PORT2 standing in for the documented 9001/9002).
// Documented commands nobody runs rot; this test makes the README snippet
// executable by construction — the node-runtime counterpart of the serving
// quickstart gate in internal/service.
func TestREADMENetQuickstartInSync(t *testing.T) {
	script, err := os.ReadFile("../../scripts/net_quickstart.sh")
	if err != nil {
		t.Fatal(err)
	}
	const begin = "# --- quickstart begin ---\n"
	const end = "# --- quickstart end ---"
	s := string(script)
	i := strings.Index(s, begin)
	j := strings.Index(s, end)
	if i < 0 || j < 0 || j < i {
		t.Fatalf("net_quickstart.sh lacks the quickstart markers %q … %q", begin, end)
	}
	block := s[i+len(begin) : j]
	block = strings.ReplaceAll(block, "$PORT1", "9001")
	block = strings.ReplaceAll(block, "$PORT2", "9002")
	block = regexp.MustCompile(`(?m)^\s+`).ReplaceAllString(block, "")

	readme, err := os.ReadFile("../../README.md")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(readme), block) {
		t.Errorf("README.md cluster quickstart is out of sync with scripts/net_quickstart.sh; paste this into the \"Running a real cluster\" code block:\n%s",
			block)
	}
}
