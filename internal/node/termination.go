package node

import "math/bits"

// The termination gadget gives each node a purely local quiescence test,
// so a cluster can stop without any global view. It runs in two phases on
// top of the protocol's own samples (no extra messages):
//
//  1. decide — a "quiet" activation is one where the node kept its
//     opinion and every sampled peer answered with that same opinion.
//     stableTarget consecutive quiet activations flip the node's decided
//     flag (piggybacked on every reply it serves). Any loud activation —
//     an opinion change, a disagreeing sample, an undecided own state —
//     resets the run and revokes the flag.
//  2. confirm — once decided, confirmTarget further consecutive quiet
//     activations in which every sampled peer also reports decided let
//     the node halt for good.
//
// Soundness: while disagreement persists, a minority node's chance of a
// quiet run of length L decays like q^(sL) (s samples per activation, q
// the majority share), so with L = Θ(log n) premature halts are vanishing;
// once the cluster is unanimous, quiet runs are the only possibility and
// every rule fixes the unanimous color, so halting is absorbing. The
// cluster-level consensus measurement does not depend on the gadget — the
// collector observes opinion changes directly — so the gadget can only
// cost tail time, never bias the gated consensus-time distribution.
type gadget struct {
	stableTarget  int
	confirmTarget int

	stable  int
	confirm int
	decided bool
}

// defaultStableTarget scales the quiet-run requirement with log n so the
// premature-halt probability stays vanishing as clusters grow.
func defaultStableTarget(n int) int {
	if n < 2 {
		n = 2
	}
	return 3*bits.Len(uint(n)) + 10
}

// defaultConfirmTarget is the decided-peers confirmation run; it only
// bounds the shutdown tail, not safety, so a small constant suffices.
const defaultConfirmTarget = 8

// observe processes one completed activation. quiet reports an activation
// with no opinion change and unanimous agreeing samples; allDecided
// additionally reports that every sampled peer carried the decided flag.
// It returns the node's (possibly updated) decided flag and whether the
// node may halt.
func (g *gadget) observe(quiet, allDecided bool) (decided, halt bool) {
	if !quiet {
		g.stable, g.confirm, g.decided = 0, 0, false
		return false, false
	}
	g.stable++
	if g.stable >= g.stableTarget {
		g.decided = true
	}
	if g.decided && allDecided {
		g.confirm++
		if g.confirm >= g.confirmTarget {
			return true, true
		}
	} else {
		g.confirm = 0
	}
	return g.decided, false
}

// miss records an activation whose pull came back incomplete (drop or
// timeout). A missing reply carries no information either way — it is
// neither agreement (so it must not advance the counters) nor
// disagreement (so it must not reset them; under a d% drop rate a full
// reset would make a quiet run of Θ(log n) complete activations
// exponentially rare and stall termination). The activation is simply not
// counted.
func (g *gadget) miss() {}
