package node

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Wire format: a 4-byte big-endian length prefix followed by a fixed
// 22-byte payload — kind(1) to(4) from(4) seq(8) opinion(4) decided(1).
// Requests and replies share the layout so the codec is a single fixed
// frame; the length prefix exists to keep the stream self-describing and
// to let decode reject malformed frames instead of silently desyncing.
const (
	payloadLen = 22
	// MaxFrame is the largest frame length Decode accepts; anything larger
	// is a protocol violation (or a desynced stream) and is rejected before
	// allocation.
	MaxFrame = 64
)

// Codec errors, returned by DecodeMessage and ReadMessage. Wrapped errors
// carry the offending length so logs pinpoint the desync.
var (
	// ErrFrameTooLarge reports a length prefix above MaxFrame.
	ErrFrameTooLarge = errors.New("node: frame exceeds MaxFrame")
	// ErrFrameTruncated reports a payload shorter than the fixed layout.
	ErrFrameTruncated = errors.New("node: truncated frame")
	// ErrFrameTrailing reports extra bytes after the fixed layout.
	ErrFrameTrailing = errors.New("node: trailing bytes in frame")
	// ErrBadKind reports an unknown message kind byte.
	ErrBadKind = errors.New("node: unknown message kind")
)

// AppendMessage appends m's frame (length prefix + payload) to dst and
// returns the extended slice.
func AppendMessage(dst []byte, m Message) []byte {
	dst = binary.BigEndian.AppendUint32(dst, payloadLen)
	dst = append(dst, m.Kind)
	dst = binary.BigEndian.AppendUint32(dst, m.To)
	dst = binary.BigEndian.AppendUint32(dst, m.From)
	dst = binary.BigEndian.AppendUint64(dst, m.Seq)
	dst = binary.BigEndian.AppendUint32(dst, uint32(m.Opinion))
	if m.Decided {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	return dst
}

// DecodeMessage parses one frame payload (the bytes after the length
// prefix). It rejects truncated or oversized payloads, unknown kinds, and
// trailing bytes; it never panics on arbitrary input.
func DecodeMessage(payload []byte) (Message, error) {
	if len(payload) < payloadLen {
		return Message{}, fmt.Errorf("%w: %d bytes", ErrFrameTruncated, len(payload))
	}
	if len(payload) > payloadLen {
		return Message{}, fmt.Errorf("%w: %d bytes", ErrFrameTrailing, len(payload))
	}
	m := Message{
		Kind:    payload[0],
		To:      binary.BigEndian.Uint32(payload[1:5]),
		From:    binary.BigEndian.Uint32(payload[5:9]),
		Seq:     binary.BigEndian.Uint64(payload[9:17]),
		Opinion: int32(binary.BigEndian.Uint32(payload[17:21])),
	}
	switch payload[21] {
	case 0:
	case 1:
		m.Decided = true
	default:
		return Message{}, fmt.Errorf("node: bad decided byte %d", payload[21])
	}
	if m.Kind != KindPull && m.Kind != KindReply {
		return Message{}, fmt.Errorf("%w: %d", ErrBadKind, m.Kind)
	}
	return m, nil
}

// ReadMessage reads one length-prefixed frame from r. The length prefix is
// validated against MaxFrame before any payload allocation, so a desynced
// or hostile stream cannot force a large read.
func ReadMessage(r io.Reader) (Message, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Message{}, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return Message{}, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return Message{}, err
	}
	return DecodeMessage(payload)
}

// WriteMessage writes m as one length-prefixed frame to w.
func WriteMessage(w io.Writer, m Message) error {
	buf := AppendMessage(make([]byte, 0, 4+payloadLen), m)
	_, err := w.Write(buf)
	return err
}
