package node

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"plurality/internal/population"
	"plurality/internal/protocols/dynamics"
)

// DefaultPullTimeout is the pull timeout, in parallel-time units, used
// when ClusterConfig.Timeout is zero. It dwarfs the zero-latency fabric's
// instant delivery and comfortably covers the injected-latency and TCP
// settings shipped in this repo.
const DefaultPullTimeout = 8

// DefaultMaxTime mirrors the simulator's default parallel-time budget.
const DefaultMaxTime = 1e5

// ClusterConfig wires one cluster run.
type ClusterConfig struct {
	// Rule is the sampling dynamic every node runs (protocols.Lookup).
	Rule dynamics.Rule
	// Counts is the initial opinion distribution: Counts[c] nodes start
	// with color c, assigned in contiguous id blocks (the clique is
	// exchangeable, so block layout loses no generality).
	Counts []int64
	// Seed roots every per-node stream and the transport fault stream.
	Seed uint64
	// MaxTime is the parallel-time budget; 0 means DefaultMaxTime.
	MaxTime float64
	// Timeout is the per-pull reply timeout in parallel-time units;
	// 0 means DefaultPullTimeout.
	Timeout float64
	// StableTarget overrides the gadget's quiet-run length (0 = 3·log2 n + 10).
	StableTarget int
	// ConfirmTarget overrides the gadget's decided-confirmation run (0 = 8).
	ConfirmTarget int
	// Network is the transport instance serving this cluster.
	Network Network
	// Local selects which node ids this process hosts; nil hosts all of
	// them (the single-process case). Remote ids must be served by other
	// processes sharing the same transport mesh.
	Local func(id int) bool
}

// Result is the outcome of a cluster run, assembled from the local nodes'
// exit reports and the change collector.
type Result struct {
	// Done reports consensus among the locally hosted nodes: the
	// collector observed unanimity. When the process hosts all n nodes
	// this is global consensus, measured exactly like the simulator
	// (first instant the last dissenting opinion flipped).
	Done bool
	// Winner is the unanimous color when Done.
	Winner population.Color
	// ConsensusTime is the parallel time at which unanimity first held.
	ConsensusTime float64
	// Time is the latest activation time any local node observed — the
	// full runtime including the termination gadget's tail.
	Time float64
	// Ticks is the total number of node activations.
	Ticks int64
	// Undecided is the number of locally hosted nodes without an opinion
	// at exit (USD's undecided state).
	Undecided int64
	// Halted counts local nodes that exited through the termination
	// gadget; Decided counts those whose decided flag was set at exit.
	Halted int
	// Decided counts local nodes with the decided flag set at exit.
	Decided int
	// Messages is the number of pull requests issued; Responses the
	// replies delivered; Dropped the messages lost. Deterministic on the
	// in-process fabric.
	Messages int64
	// Responses is the number of pull replies delivered.
	Responses int64
	// Dropped is the number of messages lost in transit.
	Dropped int64
}

// collector tracks the locally hosted opinion census from OnChange
// callbacks, giving the cluster a ground-truth consensus measurement that
// does not depend on the termination gadget.
type collector struct {
	mu        sync.Mutex
	counts    map[population.Color]int64
	undecided int64
	total     int64
	done      bool
	when      float64
	winner    population.Color
}

func newCollector(initial []population.Color) *collector {
	c := &collector{counts: make(map[population.Color]int64)}
	for _, op := range initial {
		c.total++
		if op == population.None {
			c.undecided++
		} else {
			c.counts[op]++
		}
	}
	c.check(0)
	return c
}

// change records one opinion flip at parallel time t.
func (c *collector) change(old, next population.Color, t float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if old == population.None {
		c.undecided--
	} else {
		c.counts[old]--
	}
	if next == population.None {
		c.undecided++
	} else {
		c.counts[next]++
	}
	if !c.done {
		c.check(t)
	}
}

// check latches unanimity. Caller holds c.mu (or has exclusive access).
func (c *collector) check(t float64) {
	for col, cnt := range c.counts {
		if cnt == c.total {
			c.done = true
			c.when = t
			c.winner = col
			return
		}
	}
}

// snapshot returns the final census.
func (c *collector) snapshot() (done bool, when float64, winner population.Color, undecided int64, plurality population.Color) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var best int64 = -1
	for col, cnt := range c.counts {
		if cnt > best || (cnt == best && col < plurality) {
			best = cnt
			plurality = col
		}
	}
	return c.done, c.when, c.winner, c.undecided, plurality
}

// Run executes one cluster: bind every local node, start the transport,
// run the node goroutines to completion, and assemble the Result. The
// context cancels the run by closing the network; nodes then exit with
// ErrStopped semantics. A non-nil error is returned exactly when the
// locally hosted nodes did not reach consensus (time budget, cancellation,
// or transport failure), mirroring the simulator's Run contract.
func Run(ctx context.Context, cfg ClusterConfig) (Result, error) {
	if cfg.Rule == nil {
		return Result{}, errors.New("node: ClusterConfig.Rule is nil")
	}
	if cfg.Network == nil {
		return Result{}, errors.New("node: ClusterConfig.Network is nil")
	}
	var n int64
	for _, c := range cfg.Counts {
		if c < 0 {
			return Result{}, fmt.Errorf("node: negative count %d", c)
		}
		n += c
	}
	if n < 2 {
		return Result{}, fmt.Errorf("node: cluster needs at least 2 nodes, got %d", n)
	}
	if cfg.Rule.SampleCount() < 1 {
		return Result{}, errors.New("node: rule samples no peers")
	}
	maxTime := cfg.MaxTime
	if maxTime <= 0 {
		maxTime = DefaultMaxTime
	}
	timeout := cfg.Timeout
	if timeout <= 0 {
		timeout = DefaultPullTimeout
	}
	stable := cfg.StableTarget
	if stable <= 0 {
		stable = defaultStableTarget(int(n))
	}
	confirm := cfg.ConfirmTarget
	if confirm <= 0 {
		confirm = defaultConfirmTarget
	}

	// Initial opinions in contiguous blocks: ids [0,Counts[0]) get color
	// 0, the next block color 1, and so on.
	opinions := make([]population.Color, 0, n)
	for col, cnt := range cfg.Counts {
		for i := int64(0); i < cnt; i++ {
			opinions = append(opinions, population.Color(col))
		}
	}

	local := cfg.Local
	if local == nil {
		local = func(int) bool { return true }
	}
	var initial []population.Color
	var ids []int
	for id := 0; id < int(n); id++ {
		if local(id) {
			ids = append(ids, id)
			initial = append(initial, opinions[id])
		}
	}
	if len(ids) == 0 {
		return Result{}, errors.New("node: no locally hosted nodes")
	}

	coll := newCollector(initial)
	nodes := make([]*Node, len(ids))
	for i, id := range ids {
		nd := newNode(id, int(n), cfg.Rule, opinions[id], cfg.Seed,
			timeout, maxTime, stable, confirm, func(_ int, old, next population.Color, t float64) {
				coll.change(old, next, t)
			})
		conn, err := cfg.Network.Bind(id, nd.handle)
		if err != nil {
			return Result{}, fmt.Errorf("node: bind %d: %w", id, err)
		}
		nd.conn = conn
		nd.clock = cfg.Network.Clock(id)
		nodes[i] = nd
	}
	if err := cfg.Network.Start(); err != nil {
		return Result{}, fmt.Errorf("node: start network: %w", err)
	}
	stop := ctxCloser(ctx, cfg.Network)

	results := make([]nodeResult, len(nodes))
	var wg sync.WaitGroup
	wg.Add(len(nodes))
	for i, nd := range nodes {
		go func(i int, nd *Node) {
			defer wg.Done()
			results[i] = nd.run()
		}(i, nd)
	}
	wg.Wait()
	stop()
	cfg.Network.Close()

	var res Result
	done, when, winner, undecided, plur := coll.snapshot()
	res.Done = done
	res.ConsensusTime = when
	res.Undecided = undecided
	if done {
		res.Winner = winner
	} else {
		res.Winner = plur
	}
	var stopped, timedOut bool
	for i, nr := range results {
		res.Ticks += nr.ticks
		if nr.last > res.Time {
			res.Time = nr.last
		}
		if nr.halted {
			res.Halted++
		}
		if nr.stopped {
			stopped = true
		}
		if nr.timedOut {
			timedOut = true
		}
		if _, decided := unpackState(nodes[i].state.Load()); decided {
			res.Decided++
		}
	}
	st := cfg.Network.Stats()
	res.Messages = st.Requests
	res.Responses = st.Responses
	res.Dropped = st.Dropped

	if !res.Done {
		if ctx != nil && ctx.Err() != nil {
			return res, fmt.Errorf("cluster stopped at t=%.3f: %w", res.Time, dynamics.ErrStopped)
		}
		if stopped && !timedOut {
			return res, fmt.Errorf("cluster stopped at t=%.3f: %w", res.Time, dynamics.ErrStopped)
		}
		return res, fmt.Errorf("cluster reached t=%.3f without consensus: %w", res.Time, dynamics.ErrTimeLimit)
	}
	return res, nil
}
