// Package node is the networked runtime: plurality consensus as live
// message-passing processes instead of a centrally scheduled simulation.
// Every participant is a goroutine-backed Node running a registered
// sampling dynamic against its peers — a local Poisson clock (per-node
// exponential timer off a dedicated rng stream), pull-based neighbor
// sampling over a Transport, and a local termination gadget that detects
// consensus without any global view.
//
// Two transports ship. The in-process fabric (NewFabric) delivers messages
// through a conservative virtual-time coordinator: node goroutines block in
// Sleep/Pull, the coordinator advances the shared clock to the earliest
// pending event and dispatches exactly one event at a time, so a cluster is
// bit-deterministic for a fixed seed while still exchanging real
// request/response messages. Because every node draws unit-rate exponential
// clock gaps, the superposition of the n local clocks is exactly the
// simulator's rate-n Poisson process with uniform node choice — which is
// what the net-equivalence sweep (internal/exp) verifies with a KS gate
// against the simulator oracle. The TCP mesh (NewTCPMesh) runs the same
// node loop over length-prefixed frames on real sockets with wall-clock
// timers, and scales across processes.
package node

import (
	"context"

	"plurality/internal/population"
)

// Message kinds carried by the wire codec.
const (
	// KindPull is a pull request: "send me your current opinion".
	KindPull uint8 = 1
	// KindReply answers a pull with the responder's opinion and its
	// termination-gadget decided flag.
	KindReply uint8 = 2
)

// Message is the single wire unit of the runtime: pull requests and their
// replies share one fixed frame layout (see codec.go). Request fields are
// To/From/Seq; replies add Opinion and Decided.
type Message struct {
	// Kind is KindPull or KindReply.
	Kind uint8
	// To is the destination node id (multi-node processes demux on it).
	To uint32
	// From is the sending node id.
	From uint32
	// Seq matches a reply to its request on a shared connection.
	Seq uint64
	// Opinion is the responder's current color; -1 encodes the undecided
	// state (population.None). Meaningful on replies only.
	Opinion int32
	// Decided is the responder's termination-gadget flag: it has seen a
	// long unanimous run and considers its opinion final (revocable until
	// it halts). Meaningful on replies only.
	Decided bool
}

// PullReply is one slot of a completed Pull: the sampled opinion plus the
// responder's decided flag. OK is false when the request or its reply was
// dropped, timed out, or failed in transit — the slot then carries no
// opinion and the activation is lost, exactly like a tick spent waiting in
// the simulator's delay extension.
type PullReply struct {
	// Opinion is the sampled color (population.None for USD-undecided).
	Opinion population.Color
	// Decided is the responder's termination-gadget flag.
	Decided bool
	// OK reports whether the reply actually arrived.
	OK bool
}

// Handler answers one inbound request from a node's always-responsive
// network layer. It must not block: implementations read the node's
// atomically published state, never its protocol loop.
type Handler func(req Message) Message

// Conn is a node's bound endpoint for issuing pull requests.
type Conn interface {
	// Pull requests the current opinion of every listed peer concurrently
	// and blocks until each reply arrived or the timeout (in parallel-time
	// units) expired; replies[i] corresponds to peers[i]. Peers may repeat
	// (sampling is with replacement across activations, and a node may
	// draw the same peer twice).
	Pull(peers []int, timeout float64) []PullReply
}

// Network is a transport instance serving one cluster: nodes bind their
// request handlers, then Start begins delivery. Implementations also own
// the cluster's notion of time (Clock), because the in-process fabric runs
// on virtual time while the TCP mesh runs on scaled wall clock.
type Network interface {
	// Bind registers node id's request handler and returns its endpoint.
	// All Binds must precede Start.
	Bind(id int, h Handler) (Conn, error)
	// Clock returns node id's clock. Valid after Bind(id).
	Clock(id int) Clock
	// Start begins delivery and (for the fabric) time dispatch.
	Start() error
	// Close releases every blocked node and stops delivery; idempotent.
	Close() error
	// Stats reports message accounting; call after the cluster finished.
	Stats() Stats
}

// Stats is a transport's message accounting. On the deterministic
// in-process fabric every field is a pure function of the cluster seed,
// which is what lets CI baselines diff message counts.
type Stats struct {
	// Requests is the number of pull requests issued.
	Requests int64
	// Responses is the number of replies delivered back to a requester.
	Responses int64
	// Dropped is the number of messages lost: fault injection on the
	// fabric, timeouts and transport errors on TCP.
	Dropped int64
}

// Clock is a node's local time source. The fabric hands out virtual
// clocks driven by the event coordinator; the TCP mesh hands out scaled
// wall clocks.
type Clock interface {
	// Sleep blocks the caller for d units of parallel time and returns
	// the clock reading after waking; ok is false when the cluster is
	// shutting down and the node must exit.
	Sleep(d float64) (now float64, ok bool)
	// Done marks the caller permanently finished; it must be called
	// exactly once, after which the node may not touch the clock again.
	Done()
}

// ctxCloser closes a Network when ctx is canceled; the returned stop
// function ends the watch (idempotent).
func ctxCloser(ctx context.Context, n Network) (stop func()) {
	if ctx == nil || ctx.Done() == nil {
		return func() {}
	}
	quit := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			n.Close()
		case <-quit:
		}
	}()
	var once bool
	return func() {
		if !once {
			once = true
			close(quit)
		}
	}
}
