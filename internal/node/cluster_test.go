package node

import (
	"context"
	"errors"
	"net"
	"testing"
	"testing/quick"
	"time"

	"plurality/internal/population"
	"plurality/internal/protocols"
	"plurality/internal/protocols/dynamics"
)

func lookupRule(t testing.TB, spec string) dynamics.Rule {
	t.Helper()
	_, rule, err := protocols.Lookup(spec)
	if err != nil {
		t.Fatalf("lookup %s: %v", spec, err)
	}
	return rule
}

func runFabricCluster(t testing.TB, spec string, counts []int64, seed uint64, faults Faults) (Result, error) {
	t.Helper()
	var n int64
	for _, c := range counts {
		n += c
	}
	return Run(context.Background(), ClusterConfig{
		Rule:    lookupRule(t, spec),
		Counts:  counts,
		Seed:    seed,
		Network: NewFabric(int(n), seed, faults),
	})
}

func TestClusterConvergesCleanFabric(t *testing.T) {
	for _, spec := range []string{"two-choices", "3-majority", "usd"} {
		res, err := runFabricCluster(t, spec, []int64{40, 24}, 7, Faults{})
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		if !res.Done || res.Winner != 0 {
			t.Fatalf("%s: done=%v winner=%d, want majority win", spec, res.Done, res.Winner)
		}
		if res.Halted != 64 {
			t.Errorf("%s: %d/64 nodes halted through the gadget", spec, res.Halted)
		}
		if res.ConsensusTime <= 0 || res.Time < res.ConsensusTime {
			t.Errorf("%s: consensus %.3f, total %.3f", spec, res.ConsensusTime, res.Time)
		}
		if res.Messages <= 0 || res.Responses != res.Messages || res.Dropped != 0 {
			t.Errorf("%s: messages=%d responses=%d dropped=%d on a clean fabric",
				spec, res.Messages, res.Responses, res.Dropped)
		}
	}
}

func TestClusterConvergesLossyFabric(t *testing.T) {
	res, err := runFabricCluster(t, "two-choices", []int64{40, 24}, 3,
		Faults{Latency: 0.02, Drop: 0.05, Reorder: 0.1})
	if err != nil {
		t.Fatalf("lossy cluster: %v", err)
	}
	if !res.Done {
		t.Fatal("lossy cluster did not converge")
	}
	if res.Dropped == 0 {
		t.Error("drop injection at 5% produced no drops")
	}
	if res.Responses >= res.Messages {
		t.Errorf("responses %d not below requests %d under drops", res.Responses, res.Messages)
	}
}

// TestClusterDeterministic is the quick.Check determinism property: for
// any seed and any (bounded) fault mix, two runs of the same cluster are
// field-for-field identical, including message accounting.
func TestClusterDeterministic(t *testing.T) {
	property := func(seed uint64, latP, dropP, reoP uint8) bool {
		faults := Faults{
			Latency: float64(latP%50) / 100,  // 0 … 0.49 time units
			Drop:    float64(dropP%16) / 100, // 0 … 15%
			Reorder: float64(reoP%30) / 100,  // 0 … 29%
		}
		a, errA := runFabricCluster(t, "two-choices", []int64{24, 16}, seed, faults)
		b, errB := runFabricCluster(t, "two-choices", []int64{24, 16}, seed, faults)
		if (errA == nil) != (errB == nil) {
			return false
		}
		return a == b
	}
	cfg := &quick.Config{MaxCount: 12}
	if testing.Short() {
		cfg.MaxCount = 5
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestClusterUSDUndecidedAccounting(t *testing.T) {
	// USD passes through the undecided state; at exit the cluster must be
	// unanimous with zero undecided nodes.
	res, err := runFabricCluster(t, "usd", []int64{30, 18}, 5, Faults{})
	if err != nil {
		t.Fatalf("usd: %v", err)
	}
	if res.Undecided != 0 {
		t.Errorf("undecided=%d at consensus", res.Undecided)
	}
}

func TestClusterMaxTime(t *testing.T) {
	// Voter from a dead-even split with a tiny budget: the cluster must
	// report ErrTimeLimit, not hang and not halt.
	var n int64 = 40
	res, err := Run(context.Background(), ClusterConfig{
		Rule:    lookupRule(t, "voter"),
		Counts:  []int64{n / 2, n / 2},
		Seed:    1,
		MaxTime: 0.5,
		Network: NewFabric(int(n), 1, Faults{}),
	})
	if !errors.Is(err, dynamics.ErrTimeLimit) {
		t.Fatalf("got %v, want ErrTimeLimit", err)
	}
	if res.Done {
		t.Error("Done=true on a budget-limited run")
	}
}

func TestClusterContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	// An even voter split takes a long time at n=512; cancellation must
	// cut it short with ErrStopped semantics.
	res, err := Run(ctx, ClusterConfig{
		Rule:    lookupRule(t, "voter"),
		Counts:  []int64{256, 256},
		Seed:    1,
		Network: NewFabric(512, 1, Faults{}),
	})
	if err == nil {
		t.Fatalf("canceled run returned nil error (done=%v)", res.Done)
	}
	if !errors.Is(err, dynamics.ErrStopped) && !errors.Is(err, dynamics.ErrTimeLimit) {
		t.Fatalf("got %v, want ErrStopped", err)
	}
}

func TestClusterInitialUnanimity(t *testing.T) {
	res, err := runFabricCluster(t, "two-choices", []int64{16}, 1, Faults{})
	if err != nil {
		t.Fatalf("unanimous start: %v", err)
	}
	if !res.Done || res.ConsensusTime != 0 || res.Winner != 0 {
		t.Fatalf("unanimous start: done=%v t=%.3f winner=%d", res.Done, res.ConsensusTime, res.Winner)
	}
}

func TestClusterRejectsBadConfig(t *testing.T) {
	rule := lookupRule(t, "two-choices")
	cases := []ClusterConfig{
		{Counts: []int64{4, 4}, Network: NewFabric(8, 1, Faults{})},          // nil rule
		{Rule: rule, Counts: []int64{4, 4}},                                  // nil network
		{Rule: rule, Counts: []int64{1}, Network: NewFabric(1, 1, Faults{})}, // n < 2
		{Rule: rule, Counts: []int64{-1, 4}, Network: NewFabric(3, 1, Faults{})},
	}
	for i, cfg := range cases {
		if _, err := Run(context.Background(), cfg); err == nil {
			t.Errorf("case %d: bad config accepted", i)
		}
	}
}

func TestTCPClusterConverges(t *testing.T) {
	mesh, err := NewTCPMesh([]string{"127.0.0.1:0"}, 0, 48, 2*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), ClusterConfig{
		Rule:    lookupRule(t, "two-choices"),
		Counts:  []int64{30, 18},
		Seed:    9,
		MaxTime: 2000,
		Network: mesh,
	})
	if err != nil {
		t.Fatalf("tcp cluster: %v", err)
	}
	if !res.Done || res.Winner != 0 {
		t.Fatalf("tcp cluster: done=%v winner=%d", res.Done, res.Winner)
	}
	if res.Messages == 0 {
		t.Error("tcp cluster exchanged no messages")
	}
}

// TestTCPTwoProcessMesh exercises the multi-process demux path in one
// process: two meshes on distinct listeners, each hosting half the node
// ids, pulling across real sockets.
func TestTCPTwoProcessMesh(t *testing.T) {
	const n = 32
	// Reserve two concrete loopback addresses so both meshes can be built
	// with the full host list (the usual bind-then-close port pattern;
	// Go's listeners set SO_REUSEADDR).
	free := func() string {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		return l.Addr().String()
	}
	hosts := []string{free(), free()}
	lisA, err := NewTCPMesh(hosts, 0, n, 2*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	lisB, err := NewTCPMesh(hosts, 1, n, 2*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer lisA.Close()
	defer lisB.Close()

	counts := []int64{20, 12}
	rule := lookupRule(t, "two-choices")
	type out struct {
		res Result
		err error
	}
	results := make(chan out, 2)
	for i, mesh := range []*TCP{lisA, lisB} {
		local := i
		m := mesh
		go func() {
			res, err := Run(context.Background(), ClusterConfig{
				Rule:    rule,
				Counts:  counts,
				Seed:    13,
				MaxTime: 2000,
				Network: m,
				Local:   func(id int) bool { return id%2 == local },
			})
			m.Linger(150*time.Millisecond, 5*time.Second)
			results <- out{res, err}
		}()
	}
	var winners []population.Color
	for i := 0; i < 2; i++ {
		o := <-results
		if o.err != nil {
			t.Fatalf("process %d: %v", i, o.err)
		}
		if !o.res.Done {
			t.Fatalf("process %d: no local consensus", i)
		}
		winners = append(winners, o.res.Winner)
	}
	if winners[0] != winners[1] {
		t.Fatalf("split brain: winners %v", winners)
	}
	if winners[0] != 0 {
		t.Errorf("winner %d, want majority color 0", winners[0])
	}
}
