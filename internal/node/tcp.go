package node

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"plurality/internal/population"
)

// DefaultUnit is the wall-clock length of one parallel-time unit on the
// TCP mesh when the caller passes 0.
const DefaultUnit = 10 * time.Millisecond

// TCP is the socket transport: one listener per process, length-prefixed
// binary frames, per-peer-host connection reuse with pipelined
// request/reply matching, and graceful shutdown. Node id is hosted by
// process id % len(hosts); a process demuxes inbound requests to its
// local nodes by Message.To. Time is scaled wall clock (Unit per
// parallel-time unit), so TCP runs exercise the real asynchronous model —
// they are gated end-to-end (consensus reached), not distributionally.
type TCP struct {
	hosts []string
	local int
	n     int
	unit  time.Duration

	lis   net.Listener
	start time.Time

	mu       sync.Mutex
	handlers map[int]Handler
	conns    map[net.Conn]struct{}
	closed   bool

	peers []*peerConn

	stop chan struct{}

	requests  atomic.Int64
	responses atomic.Int64
	dropped   atomic.Int64

	lastInbound atomic.Int64 // unix nanos of the last inbound request
}

// peerConn is the reusable client side toward one peer process.
type peerConn struct {
	addr string

	mu      sync.Mutex // guards conn/pending lifecycle
	conn    net.Conn
	pending map[uint64]chan Message

	wmu sync.Mutex // serializes frame writes
	seq atomic.Uint64
}

// NewTCPMesh creates the socket transport for an n-node cluster spread
// over the processes at hosts; local is this process's index into hosts.
// The listener binds immediately on hosts[local] — pass a ":0" port to let
// the kernel pick one (Addr reports the bound address). unit 0 means
// DefaultUnit.
func NewTCPMesh(hosts []string, local, n int, unit time.Duration) (*TCP, error) {
	if len(hosts) == 0 {
		return nil, errors.New("node: tcp mesh needs at least one host")
	}
	if local < 0 || local >= len(hosts) {
		return nil, fmt.Errorf("node: local index %d out of range [0,%d)", local, len(hosts))
	}
	if unit <= 0 {
		unit = DefaultUnit
	}
	lis, err := net.Listen("tcp", hosts[local])
	if err != nil {
		return nil, fmt.Errorf("node: listen %s: %w", hosts[local], err)
	}
	t := &TCP{
		hosts:    append([]string(nil), hosts...),
		local:    local,
		n:        n,
		unit:     unit,
		lis:      lis,
		handlers: make(map[int]Handler),
		conns:    make(map[net.Conn]struct{}),
		peers:    make([]*peerConn, len(hosts)),
		stop:     make(chan struct{}),
	}
	t.hosts[local] = lis.Addr().String()
	for i, h := range t.hosts {
		t.peers[i] = &peerConn{addr: h, pending: make(map[uint64]chan Message)}
	}
	return t, nil
}

// Addr is the listener's bound address (useful with a ":0" listen spec).
func (t *TCP) Addr() string { return t.lis.Addr().String() }

// Owner maps a node id to the index of its hosting process.
func (t *TCP) Owner(id int) int { return id % len(t.hosts) }

// Bind implements Network.
func (t *TCP) Bind(id int, h Handler) (Conn, error) {
	if t.Owner(id) != t.local {
		return nil, fmt.Errorf("node: node %d is owned by host %d, not %d", id, t.Owner(id), t.local)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, dup := t.handlers[id]; dup {
		return nil, fmt.Errorf("node: node %d already bound", id)
	}
	t.handlers[id] = h
	return tcpConn{t: t, id: id}, nil
}

// Clock implements Network: scaled wall clock, shared shutdown signal.
func (t *TCP) Clock(id int) Clock {
	return &tcpClock{t: t}
}

// Start implements Network: it launches the accept loop. The listener is
// already bound (NewTCPMesh), so peers that started earlier can connect
// even before Start — their frames queue in the kernel until the serve
// loop drains them.
func (t *TCP) Start() error {
	t.start = time.Now()
	go t.acceptLoop()
	return nil
}

// Close implements Network: it stops the accept loop, closes every
// connection, and releases blocked clocks and pulls. Idempotent.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	close(t.stop)
	t.lis.Close()
	for c := range t.conns {
		c.Close()
	}
	t.mu.Unlock()
	for _, p := range t.peers {
		p.mu.Lock()
		if p.conn != nil {
			p.conn.Close()
			p.conn = nil
		}
		for seq, ch := range p.pending {
			close(ch)
			delete(p.pending, seq)
		}
		p.mu.Unlock()
	}
	return nil
}

// Stats implements Network.
func (t *TCP) Stats() Stats {
	return Stats{
		Requests:  t.requests.Load(),
		Responses: t.responses.Load(),
		Dropped:   t.dropped.Load(),
	}
}

// Linger keeps the process serving inbound requests after its local nodes
// halted, until the mesh has been idle for idle (or max elapsed). In a
// multi-process mesh a process that exits the moment its own nodes finish
// would refuse its peers' final confirmation pulls and stall their
// termination gadgets.
func (t *TCP) Linger(idle, max time.Duration) {
	deadline := time.Now().Add(max)
	t.lastInbound.CompareAndSwap(0, time.Now().UnixNano())
	for time.Now().Before(deadline) {
		last := time.Unix(0, t.lastInbound.Load())
		if time.Since(last) > idle {
			return
		}
		select {
		case <-t.stop:
			return
		case <-time.After(idle / 4):
		}
	}
}

func (t *TCP) acceptLoop() {
	for {
		c, err := t.lis.Accept()
		if err != nil {
			return
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			c.Close()
			return
		}
		t.conns[c] = struct{}{}
		t.mu.Unlock()
		go t.serve(c)
	}
}

// serve handles one inbound connection: read a request frame, demux to
// the local node's handler, write the reply. Replies for one connection
// are written sequentially by this goroutine, so no write lock is needed.
func (t *TCP) serve(c net.Conn) {
	defer func() {
		c.Close()
		t.mu.Lock()
		delete(t.conns, c)
		t.mu.Unlock()
	}()
	for {
		m, err := ReadMessage(c)
		if err != nil {
			return
		}
		if m.Kind != KindPull {
			return
		}
		t.lastInbound.Store(time.Now().UnixNano())
		t.mu.Lock()
		h := t.handlers[int(m.To)]
		t.mu.Unlock()
		if h == nil {
			// Not ours (or not bound yet): drop the request; the
			// requester times out on this slot.
			continue
		}
		if err := WriteMessage(c, h(m)); err != nil {
			return
		}
	}
}

// request sends one pull from node from to peer id and waits for its
// reply or deadline.
func (t *TCP) request(from, id int, deadline time.Time) (Message, bool) {
	p := t.peers[t.Owner(id)]
	seq := p.seq.Add(1)
	ch := make(chan Message, 1)

	p.mu.Lock()
	if p.conn == nil {
		select {
		case <-t.stop:
			p.mu.Unlock()
			return Message{}, false
		default:
		}
		c, err := net.DialTimeout("tcp", p.addr, time.Until(deadline))
		if err != nil {
			p.mu.Unlock()
			return Message{}, false
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			p.mu.Unlock()
			c.Close()
			return Message{}, false
		}
		t.conns[c] = struct{}{}
		t.mu.Unlock()
		p.conn = c
		go t.readReplies(p, c)
	}
	conn := p.conn
	p.pending[seq] = ch
	p.mu.Unlock()

	req := Message{Kind: KindPull, To: uint32(id), From: uint32(from), Seq: seq}
	p.wmu.Lock()
	err := WriteMessage(conn, req)
	p.wmu.Unlock()
	if err != nil {
		t.failPeer(p, conn)
		return Message{}, false
	}

	timer := time.NewTimer(time.Until(deadline))
	defer timer.Stop()
	select {
	case m, ok := <-ch:
		if !ok {
			return Message{}, false
		}
		return m, true
	case <-timer.C:
		p.mu.Lock()
		delete(p.pending, seq)
		p.mu.Unlock()
		return Message{}, false
	case <-t.stop:
		p.mu.Lock()
		delete(p.pending, seq)
		p.mu.Unlock()
		return Message{}, false
	}
}

// readReplies is the one reader goroutine for a dialed peer connection:
// it routes reply frames to their waiting request by Seq and fails all
// pending requests when the connection dies (the next request redials).
func (t *TCP) readReplies(p *peerConn, c net.Conn) {
	for {
		m, err := ReadMessage(c)
		if err != nil {
			t.failPeer(p, c)
			return
		}
		if m.Kind != KindReply {
			t.failPeer(p, c)
			return
		}
		p.mu.Lock()
		ch := p.pending[m.Seq]
		delete(p.pending, m.Seq)
		p.mu.Unlock()
		if ch != nil {
			ch <- m
		}
	}
}

// failPeer tears down one dialed connection, releases its waiters (their
// requests come back !OK and the next request redials), and drops the
// transport's bookkeeping entry.
func (t *TCP) failPeer(p *peerConn, c net.Conn) {
	c.Close()
	p.mu.Lock()
	if p.conn == c {
		p.conn = nil
		for seq, ch := range p.pending {
			close(ch)
			delete(p.pending, seq)
		}
	}
	p.mu.Unlock()
	t.mu.Lock()
	delete(t.conns, c)
	t.mu.Unlock()
}

// tcpConn is node id's endpoint on the mesh.
type tcpConn struct {
	t  *TCP
	id int
}

// Pull implements Conn: the requests go out concurrently, each with the
// shared deadline; slots whose reply misses the deadline come back !OK.
func (c tcpConn) Pull(peers []int, timeout float64) []PullReply {
	t := c.t
	replies := make([]PullReply, len(peers))
	deadline := time.Now().Add(time.Duration(timeout * float64(t.unit)))
	var wg sync.WaitGroup
	wg.Add(len(peers))
	for i, p := range peers {
		go func(i, p int) {
			defer wg.Done()
			t.requests.Add(1)
			m, ok := t.request(c.id, p, deadline)
			if !ok {
				t.dropped.Add(1)
				return
			}
			t.responses.Add(1)
			replies[i] = PullReply{Opinion: population.Color(m.Opinion), Decided: m.Decided, OK: true}
		}(i, p)
	}
	wg.Wait()
	return replies
}

// tcpClock scales wall clock into parallel time.
type tcpClock struct {
	t *TCP
}

// Sleep implements Clock.
func (c *tcpClock) Sleep(d float64) (float64, bool) {
	t := c.t
	timer := time.NewTimer(time.Duration(d * float64(t.unit)))
	defer timer.Stop()
	select {
	case <-timer.C:
		return float64(time.Since(t.start)) / float64(t.unit), true
	case <-t.stop:
		return float64(time.Since(t.start)) / float64(t.unit), false
	}
}

// Done implements Clock; the TCP mesh needs no liveness accounting.
func (c *tcpClock) Done() {}
