// Package sched implements the two asynchronous execution models of the
// paper plus the §4 response-delay extension.
//
// In the *continuous* model every node carries an independent Poisson clock
// with rate λ = 1 and acts whenever its clock ticks. In the *sequential*
// model a discrete step selects one node uniformly at random, and parallel
// time advances by 1/n per step. The paper (citing Mosk-Aoyama & Shah 2008)
// treats the two as run-time equivalent; experiment E11 verifies this on
// the actual protocol.
//
// Both engines produce the same Tick stream abstraction so protocols are
// written once and run under either model.
package sched

import (
	"container/heap"
	"fmt"

	"plurality/internal/rng"
)

// Tick is one activation of a node.
type Tick struct {
	// Node is the index of the activated node.
	Node int
	// Time is the parallel time at which the activation occurs:
	// steps/n for the sequential engine, the Poisson event time for the
	// continuous engine.
	Time float64
	// Seq is the global activation sequence number, starting at 0.
	Seq int64
}

// Scheduler produces an infinite stream of node activations.
type Scheduler interface {
	// Next returns the next activation. Time and Seq are non-decreasing.
	Next() Tick
	// N returns the number of nodes being scheduled.
	N() int
}

// Sequential is the paper's sequential asynchronous model: each step
// activates a node chosen uniformly at random and advances parallel time by
// 1/n.
type Sequential struct {
	n   int
	r   *rng.RNG
	seq int64
}

// NewSequential returns a sequential scheduler over n nodes driven by r.
func NewSequential(n int, r *rng.RNG) (*Sequential, error) {
	if n <= 0 {
		return nil, fmt.Errorf("sched: sequential scheduler needs n > 0, got %d", n)
	}
	return &Sequential{n: n, r: r}, nil
}

// N implements Scheduler.
func (s *Sequential) N() int { return s.n }

// Next implements Scheduler.
func (s *Sequential) Next() Tick {
	t := Tick{
		Node: s.r.Intn(s.n),
		Time: float64(s.seq) / float64(s.n),
		Seq:  s.seq,
	}
	s.seq++
	return t
}

// Poisson is the continuous asynchronous model: every node ticks according
// to an independent Poisson process with the configured rate; events are
// delivered in time order.
type Poisson struct {
	n    int
	rate float64
	r    *rng.RNG
	pq   eventHeap
	seq  int64
}

// NewPoisson returns a continuous-time scheduler over n nodes with
// per-node Poisson clocks of the given rate (the paper uses rate 1).
func NewPoisson(n int, rate float64, r *rng.RNG) (*Poisson, error) {
	if n <= 0 {
		return nil, fmt.Errorf("sched: poisson scheduler needs n > 0, got %d", n)
	}
	if rate <= 0 {
		return nil, fmt.Errorf("sched: poisson scheduler needs rate > 0, got %v", rate)
	}
	p := &Poisson{
		n:    n,
		rate: rate,
		r:    r,
		pq:   make(eventHeap, 0, n),
	}
	for u := 0; u < n; u++ {
		p.pq = append(p.pq, event{time: r.ExpFloat64() / rate, node: u})
	}
	heap.Init(&p.pq)
	return p, nil
}

// N implements Scheduler.
func (p *Poisson) N() int { return p.n }

// Next implements Scheduler.
func (p *Poisson) Next() Tick {
	ev := p.pq[0]
	t := Tick{Node: ev.node, Time: ev.time, Seq: p.seq}
	p.seq++
	p.pq[0].time = ev.time + p.r.ExpFloat64()/p.rate
	heap.Fix(&p.pq, 0)
	return t
}

type event struct {
	time float64
	node int
}

type eventHeap []event

func (h eventHeap) Len() int            { return len(h) }
func (h eventHeap) Less(i, j int) bool  { return h[i].time < h[j].time }
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// RunUntil drives s, invoking step for every tick, until either step
// returns false (the protocol reports completion) or Time exceeds maxTime.
// It returns the last tick delivered and whether the run stopped because
// step returned false.
func RunUntil(s Scheduler, maxTime float64, step func(Tick) bool) (last Tick, stopped bool) {
	for {
		t := s.Next()
		if t.Time > maxTime {
			return last, false
		}
		last = t
		if !step(t) {
			return last, true
		}
	}
}

// DelayModel samples the network transit delay of one request/response
// exchange, implementing the §4 extension. The paper's base model has zero
// delay; the extension draws delays from an exponential distribution with a
// constant (n-independent) parameter.
type DelayModel interface {
	// SampleDelay returns a non-negative delay.
	SampleDelay(r *rng.RNG) float64
}

// ZeroDelay is the paper's base model: responses arrive instantly.
type ZeroDelay struct{}

// SampleDelay implements DelayModel.
func (ZeroDelay) SampleDelay(*rng.RNG) float64 { return 0 }

// ExpDelay draws Exp(Rate) delays.
type ExpDelay struct {
	Rate float64
}

// SampleDelay implements DelayModel.
func (d ExpDelay) SampleDelay(r *rng.RNG) float64 { return r.ExpFloat64() / d.Rate }
