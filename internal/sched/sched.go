// Package sched implements the two asynchronous execution models of the
// paper plus the §4 response-delay extension.
//
// In the *continuous* model every node carries an independent Poisson clock
// with rate λ = 1 and acts whenever its clock ticks. In the *sequential*
// model a discrete step selects one node uniformly at random, and parallel
// time advances by 1/n per step. The paper (citing Mosk-Aoyama & Shah 2008)
// treats the two as run-time equivalent; experiment E11 verifies this on
// the actual protocol.
//
// All engines produce the same Tick stream abstraction so protocols are
// written once and run under either model. The continuous model has two
// engines: Poisson exploits superposition for O(1) work per tick, and
// HeapPoisson is the O(log n) per-node event-heap reference it is validated
// against. Hot loops should prefer the BatchScheduler interface (RunBatch),
// which delivers ticks in chunks and removes per-tick interface dispatch.
package sched

import (
	"container/heap"
	"fmt"

	"plurality/internal/rng"
)

// Tick is one activation of a node.
type Tick struct {
	// Node is the index of the activated node.
	Node int
	// Time is the parallel time at which the activation occurs:
	// steps/n for the sequential engine, the Poisson event time for the
	// continuous engine.
	Time float64
	// Seq is the global activation sequence number, starting at 0.
	Seq int64
}

// Scheduler produces an infinite stream of node activations.
type Scheduler interface {
	// Next returns the next activation. Time and Seq are non-decreasing.
	Next() Tick
	// N returns the number of nodes being scheduled.
	N() int
}

// BatchScheduler is a Scheduler that can deliver ticks in bulk. NextBatch
// fills buf with exactly the ticks that len(buf) successive Next calls
// would return, letting hot loops amortize the per-tick interface dispatch.
// All engines in this package implement it.
type BatchScheduler interface {
	Scheduler
	// NextBatch fills every element of buf with the next activations in
	// order.
	NextBatch(buf []Tick)
}

// TimeScheduler is a Scheduler whose activation times are generated
// independently of which node activates, letting exchangeable simulations —
// the count-collapsed occupancy engine, where node identities are
// irrelevant — consume the tick-time stream without paying for the per-tick
// node draw. NextTimes advances the schedule exactly as NextBatch would,
// except that the node choices are never drawn (so the engine's RNG stream
// diverges from NextBatch's after the first call; a run must stick to one
// access mode).
type TimeScheduler interface {
	Scheduler
	// NextTimes fills buf with the times of the next len(buf) activations.
	NextTimes(buf []float64)
}

// Sequential is the paper's sequential asynchronous model: each step
// activates a node chosen uniformly at random and advances parallel time by
// 1/n.
type Sequential struct {
	n   int
	r   *rng.RNG
	seq int64
}

// NewSequential returns a sequential scheduler over n nodes driven by r.
func NewSequential(n int, r *rng.RNG) (*Sequential, error) {
	if n <= 0 {
		return nil, fmt.Errorf("sched: sequential scheduler needs n > 0, got %d", n)
	}
	return &Sequential{n: n, r: r}, nil
}

// N implements Scheduler.
func (s *Sequential) N() int { return s.n }

// Next implements Scheduler.
func (s *Sequential) Next() Tick {
	t := Tick{
		Node: s.r.Intn(s.n),
		Time: float64(s.seq) / float64(s.n),
		Seq:  s.seq,
	}
	s.seq++
	return t
}

// NextBatch implements BatchScheduler.
func (s *Sequential) NextBatch(buf []Tick) {
	// Divide rather than multiply by a precomputed 1/n: the quotient must
	// be bit-identical to Next's.
	n := float64(s.n)
	for i := range buf {
		buf[i] = Tick{
			Node: s.r.Intn(s.n),
			Time: float64(s.seq) / n,
			Seq:  s.seq,
		}
		s.seq++
	}
}

// NextTimes implements TimeScheduler: sequential tick times are the
// deterministic grid seq/n, so no randomness is consumed at all.
func (s *Sequential) NextTimes(buf []float64) {
	n := float64(s.n)
	for i := range buf {
		buf[i] = float64(s.seq) / n
		s.seq++
	}
}

// Poisson is the continuous asynchronous model: every node ticks according
// to an independent Poisson process with the configured rate; events are
// delivered in time order.
//
// The engine exploits Poisson superposition: n independent rate-λ clocks
// are one global rate-nλ process whose events pick a node uniformly at
// random (Mosk-Aoyama & Shah 2008, the equivalence the paper cites). Each
// tick therefore costs O(1) — one exponential gap plus one uniform draw —
// independent of n, where the event-heap formulation (HeapPoisson) pays
// O(log n) heap maintenance per tick. The two engines draw from different
// points of the RNG stream, so tick-for-tick outputs differ for a fixed
// seed, but their distributions are identical; the package tests verify the
// statistical equivalence.
type Poisson struct {
	n        int
	rate     float64
	invTotal float64 // 1 / (n · rate), the mean global inter-event gap
	now      float64
	r        *rng.RNG
	seq      int64
}

// NewPoisson returns a continuous-time scheduler over n nodes with
// per-node Poisson clocks of the given rate (the paper uses rate 1).
func NewPoisson(n int, rate float64, r *rng.RNG) (*Poisson, error) {
	if n <= 0 {
		return nil, fmt.Errorf("sched: poisson scheduler needs n > 0, got %d", n)
	}
	if rate <= 0 {
		return nil, fmt.Errorf("sched: poisson scheduler needs rate > 0, got %v", rate)
	}
	return &Poisson{
		n:        n,
		rate:     rate,
		invTotal: 1 / (float64(n) * rate),
		r:        r,
	}, nil
}

// N implements Scheduler.
func (p *Poisson) N() int { return p.n }

// Next implements Scheduler.
func (p *Poisson) Next() Tick {
	p.now += p.r.ExpFloat64() * p.invTotal
	t := Tick{Node: p.r.Intn(p.n), Time: p.now, Seq: p.seq}
	p.seq++
	return t
}

// NextBatch implements BatchScheduler.
func (p *Poisson) NextBatch(buf []Tick) {
	now, r, invTotal, n := p.now, p.r, p.invTotal, p.n
	for i := range buf {
		now += r.ExpFloat64() * invTotal
		buf[i] = Tick{Node: r.Intn(n), Time: now, Seq: p.seq}
		p.seq++
	}
	p.now = now
}

// NextTimes implements TimeScheduler: one exponential gap per tick, no node
// draw.
func (p *Poisson) NextTimes(buf []float64) {
	now, r, invTotal := p.now, p.r, p.invTotal
	for i := range buf {
		now += r.ExpFloat64() * invTotal
		buf[i] = now
		p.seq++
	}
	p.now = now
}

// Rate returns the per-node Poisson clock rate.
func (p *Poisson) Rate() float64 { return p.rate }

// HeapPoisson is the event-heap formulation of the continuous model: every
// node keeps its own next-event time in a priority queue and each delivery
// pays O(log n) heap maintenance. It generates the same process as Poisson
// (see the equivalence tests) and is retained as the reference
// implementation the O(1) engine is validated against.
type HeapPoisson struct {
	n    int
	rate float64
	r    *rng.RNG
	pq   eventHeap
	seq  int64
}

// NewHeapPoisson returns the event-heap continuous-time scheduler.
func NewHeapPoisson(n int, rate float64, r *rng.RNG) (*HeapPoisson, error) {
	if n <= 0 {
		return nil, fmt.Errorf("sched: poisson scheduler needs n > 0, got %d", n)
	}
	if rate <= 0 {
		return nil, fmt.Errorf("sched: poisson scheduler needs rate > 0, got %v", rate)
	}
	p := &HeapPoisson{
		n:    n,
		rate: rate,
		r:    r,
		pq:   make(eventHeap, 0, n),
	}
	for u := 0; u < n; u++ {
		p.pq = append(p.pq, event{time: r.ExpFloat64() / rate, node: u})
	}
	heap.Init(&p.pq)
	return p, nil
}

// N implements Scheduler.
func (p *HeapPoisson) N() int { return p.n }

// Next implements Scheduler.
func (p *HeapPoisson) Next() Tick {
	ev := p.pq[0]
	t := Tick{Node: ev.node, Time: ev.time, Seq: p.seq}
	p.seq++
	p.pq[0].time = ev.time + p.r.ExpFloat64()/p.rate
	heap.Fix(&p.pq, 0)
	return t
}

// NextBatch implements BatchScheduler.
func (p *HeapPoisson) NextBatch(buf []Tick) {
	for i := range buf {
		buf[i] = p.Next()
	}
}

type event struct {
	time float64
	node int
}

type eventHeap []event

func (h eventHeap) Len() int            { return len(h) }
func (h eventHeap) Less(i, j int) bool  { return h[i].time < h[j].time }
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// RunUntil drives s, invoking step for every tick, until either step
// returns false (the protocol reports completion) or Time exceeds maxTime.
// It returns the last tick delivered and whether the run stopped because
// step returned false.
func RunUntil(s Scheduler, maxTime float64, step func(Tick) bool) (last Tick, stopped bool) {
	for {
		t := s.Next()
		if t.Time > maxTime {
			return last, false
		}
		last = t
		if !step(t) {
			return last, true
		}
	}
}

// BatchSize is the tick-chunk length used by RunBatch and the specialized
// protocol loops. Large enough to amortize per-batch overhead, small enough
// to stay resident in L1.
const BatchSize = 512

// RunBatch behaves exactly like RunUntil — same ticks in the same order,
// same stopping rule — but pulls ticks from s in BatchSize chunks when s
// implements BatchScheduler, amortizing the per-tick scheduler dispatch.
// Ticks generated beyond the stopping point are discarded; callers that
// share one RNG between the scheduler and the protocol should not rely on
// the scheduler's generator state after the run.
func RunBatch(s Scheduler, maxTime float64, step func(Tick) bool) (last Tick, stopped bool) {
	bs, ok := s.(BatchScheduler)
	if !ok {
		return RunUntil(s, maxTime, step)
	}
	buf := make([]Tick, BatchSize)
	for {
		bs.NextBatch(buf)
		for _, t := range buf {
			if t.Time > maxTime {
				return last, false
			}
			last = t
			if !step(t) {
				return last, true
			}
		}
	}
}

// DelayModel samples the network transit delay of one request/response
// exchange, implementing the §4 extension. The paper's base model has zero
// delay; the extension draws delays from an exponential distribution with a
// constant (n-independent) parameter.
type DelayModel interface {
	// SampleDelay returns a non-negative delay.
	SampleDelay(r *rng.RNG) float64
}

// ZeroDelay is the paper's base model: responses arrive instantly.
type ZeroDelay struct{}

// SampleDelay implements DelayModel.
func (ZeroDelay) SampleDelay(*rng.RNG) float64 { return 0 }

// ExpDelay draws Exp(Rate) delays.
type ExpDelay struct {
	Rate float64
}

// SampleDelay implements DelayModel.
func (d ExpDelay) SampleDelay(r *rng.RNG) float64 { return r.ExpFloat64() / d.Rate }

// LatencyModel samples the transit latency of one edge activation: when
// node u contacts node v, the response travels back over the edge {u, v}
// and arrives after the sampled latency, during which u blocks. This is the
// asynchronous edge-latency extension of Bankhamer, Berenbrink, Hahn,
// Kaaser, Kling & Nowak ("Fast Consensus Protocols in the Asynchronous
// Poisson Clock Model with Edge Latencies"): unlike DelayModel, which
// charges one node-local delay per communicating *step*, a LatencyModel is
// charged once per *edge* used, so a step that contacts two neighbors waits
// for the slower of the two responses.
type LatencyModel interface {
	// SampleLatency returns a non-negative latency for one activation of
	// the edge {u, v}. Implementations may ignore the endpoints (i.i.d.
	// latencies) or derive edge-dependent distributions from them. The
	// engines treat a (contract-violating) negative return as 0, so a bad
	// model can never shorten other blocking such as the §4 delay.
	SampleLatency(r *rng.RNG, u, v int) float64
}

// ExpLatency draws i.i.d. exponential edge latencies with the given mean,
// the distribution Bankhamer et al. analyze.
type ExpLatency struct {
	Mean float64
}

// SampleLatency implements LatencyModel.
func (m ExpLatency) SampleLatency(r *rng.RNG, _, _ int) float64 {
	return r.ExpFloat64() * m.Mean
}

// UniformLatency draws i.i.d. edge latencies uniformly from [Min, Max).
type UniformLatency struct {
	Min, Max float64
}

// SampleLatency implements LatencyModel.
func (m UniformLatency) SampleLatency(r *rng.RNG, _, _ int) float64 {
	return m.Min + (m.Max-m.Min)*r.Float64()
}

// MaxLatency returns the slower of two independent latency draws for the
// edges {u, v1} and {u, v2} — the time until both responses of a
// two-contact step (e.g. a Two-Choices activation) have arrived. Negative
// draws count as 0, per the LatencyModel contract.
func MaxLatency(m LatencyModel, r *rng.RNG, u, v1, v2 int) float64 {
	a := m.SampleLatency(r, u, v1)
	if b := m.SampleLatency(r, u, v2); b > a {
		a = b
	}
	if a < 0 {
		return 0
	}
	return a
}
