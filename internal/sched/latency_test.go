package sched

import (
	"math"
	"testing"

	"plurality/internal/rng"
)

func TestExpLatencyMean(t *testing.T) {
	r := rng.New(1)
	m := ExpLatency{Mean: 2.5}
	const draws = 200_000
	var sum float64
	for i := 0; i < draws; i++ {
		d := m.SampleLatency(r, 0, 1)
		if d < 0 {
			t.Fatalf("negative latency %v", d)
		}
		sum += d
	}
	got := sum / draws
	// Standard error is Mean/sqrt(draws) ≈ 0.006; 5σ gate.
	if math.Abs(got-2.5) > 0.03 {
		t.Fatalf("empirical mean %v, want ≈ 2.5", got)
	}
}

func TestUniformLatencyRangeAndMean(t *testing.T) {
	r := rng.New(2)
	m := UniformLatency{Min: 1, Max: 3}
	const draws = 200_000
	var sum float64
	for i := 0; i < draws; i++ {
		d := m.SampleLatency(r, 0, 1)
		if d < 1 || d >= 3 {
			t.Fatalf("latency %v outside [1, 3)", d)
		}
		sum += d
	}
	if got := sum / draws; math.Abs(got-2) > 0.01 {
		t.Fatalf("empirical mean %v, want ≈ 2", got)
	}
}

// negLatency violates the LatencyModel contract on purpose.
type negLatency struct{}

func (negLatency) SampleLatency(*rng.RNG, int, int) float64 { return -3 }

// TestMaxLatencyClampsNegative: contract-violating negative draws must
// count as 0 so they can never shorten other blocking.
func TestMaxLatencyClampsNegative(t *testing.T) {
	if got := MaxLatency(negLatency{}, rng.New(1), 0, 1, 2); got != 0 {
		t.Fatalf("MaxLatency of negative draws = %v, want 0", got)
	}
}

// MaxLatency must distribute like the max of two independent draws: for
// Exp(1) latencies, E[max] = 1 + 1/2 = 1.5.
func TestMaxLatencyDistribution(t *testing.T) {
	r := rng.New(3)
	m := ExpLatency{Mean: 1}
	const draws = 200_000
	var sum float64
	for i := 0; i < draws; i++ {
		sum += MaxLatency(m, r, 0, 1, 2)
	}
	if got := sum / draws; math.Abs(got-1.5) > 0.02 {
		t.Fatalf("E[max of two Exp(1)] = %v, want ≈ 1.5", got)
	}
}
