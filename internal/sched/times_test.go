package sched

import (
	"math"
	"testing"

	"plurality/internal/rng"
)

// TestSequentialNextTimesGrid: sequential tick times are the deterministic
// grid seq/n, identical to what Next would report, with no RNG consumed.
func TestSequentialNextTimesGrid(t *testing.T) {
	const n = 7
	r := rng.New(5)
	s, err := NewSequential(n, r)
	if err != nil {
		t.Fatal(err)
	}
	before := r.State()
	buf := make([]float64, 20)
	s.NextTimes(buf)
	if r.State() != before {
		t.Fatal("NextTimes consumed randomness on the sequential engine")
	}
	for i, got := range buf {
		if want := float64(i) / n; got != want {
			t.Fatalf("time[%d] = %v, want %v", i, got, want)
		}
	}
	// The seq counter advanced: the next Next picks up after the batch.
	if tick := s.Next(); tick.Seq != int64(len(buf)) || tick.Time != float64(len(buf))/n {
		t.Fatalf("Next after NextTimes = %+v", tick)
	}
}

// TestPoissonNextTimesLaw: the node-free time stream is the same rate-n
// superposition process Next generates — strictly increasing, with mean
// global gap 1/(n·rate) (checked to ~1% over 2e5 gaps).
func TestPoissonNextTimesLaw(t *testing.T) {
	const n, rate = 100, 2.0
	p, err := NewPoisson(n, rate, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Rate(); got != rate {
		t.Fatalf("Rate() = %v, want %v", got, rate)
	}
	buf := make([]float64, 1<<10)
	var prev, sum float64
	var gaps int
	for len := 0; len < 200; len++ {
		p.NextTimes(buf)
		for _, now := range buf {
			if now <= prev {
				t.Fatalf("times not strictly increasing: %v after %v", now, prev)
			}
			sum += now - prev
			prev = now
			gaps++
		}
	}
	mean := sum / float64(gaps)
	want := 1.0 / (n * rate)
	if math.Abs(mean-want)/want > 0.02 {
		t.Fatalf("mean global gap %.6g, want %.6g", mean, want)
	}
}
