package sched

import (
	"math"
	"testing"

	"plurality/internal/rng"
)

func TestNewSequentialValidation(t *testing.T) {
	if _, err := NewSequential(0, rng.New(1)); err == nil {
		t.Error("n=0 should fail")
	}
}

func TestSequentialTimeAdvances(t *testing.T) {
	s, err := NewSequential(10, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if s.N() != 10 {
		t.Fatalf("N = %d", s.N())
	}
	for i := 0; i < 100; i++ {
		tick := s.Next()
		if tick.Seq != int64(i) {
			t.Fatalf("seq = %d, want %d", tick.Seq, i)
		}
		if want := float64(i) / 10; tick.Time != want {
			t.Fatalf("time = %v, want %v", tick.Time, want)
		}
		if tick.Node < 0 || tick.Node >= 10 {
			t.Fatalf("node = %d out of range", tick.Node)
		}
	}
}

func TestSequentialUniformSelection(t *testing.T) {
	const n = 8
	s, err := NewSequential(n, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	const draws = 80000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[s.Next().Node]++
	}
	want := float64(draws) / n
	for u, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("node %d activated %d times, want ~%.0f", u, c, want)
		}
	}
}

func TestNewPoissonValidation(t *testing.T) {
	if _, err := NewPoisson(0, 1, rng.New(1)); err == nil {
		t.Error("n=0 should fail")
	}
	if _, err := NewPoisson(5, 0, rng.New(1)); err == nil {
		t.Error("rate=0 should fail")
	}
}

func TestPoissonTimeMonotone(t *testing.T) {
	p, err := NewPoisson(50, 1, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for i := 0; i < 5000; i++ {
		tick := p.Next()
		if tick.Time < prev {
			t.Fatalf("time went backwards: %v after %v", tick.Time, prev)
		}
		prev = tick.Time
		if tick.Seq != int64(i) {
			t.Fatalf("seq = %d, want %d", tick.Seq, i)
		}
	}
}

func TestPoissonPerNodeRate(t *testing.T) {
	// Over horizon T, each node should tick ~Poisson(rate*T) times.
	const (
		n       = 200
		rate    = 1.0
		horizon = 50.0
	)
	p, err := NewPoisson(n, rate, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, n)
	for {
		tick := p.Next()
		if tick.Time > horizon {
			break
		}
		counts[tick.Node]++
	}
	var sum, sumSq float64
	for _, c := range counts {
		sum += float64(c)
		sumSq += float64(c) * float64(c)
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-horizon)/horizon > 0.1 {
		t.Errorf("mean ticks = %.2f, want ~%.0f", mean, horizon)
	}
	// Poisson: variance ~ mean.
	if variance < horizon*0.6 || variance > horizon*1.6 {
		t.Errorf("tick variance = %.2f, want ~%.0f", variance, horizon)
	}
}

func TestPoissonRateScaling(t *testing.T) {
	const n, horizon = 100, 20.0
	p, err := NewPoisson(n, 3, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	var ticks int
	for {
		if p.Next().Time > horizon {
			break
		}
		ticks++
	}
	want := float64(n) * 3 * horizon
	if math.Abs(float64(ticks)-want)/want > 0.05 {
		t.Errorf("ticks = %d, want ~%.0f", ticks, want)
	}
}

func TestSequentialPoissonSameMeanThroughput(t *testing.T) {
	// Over a fixed parallel-time horizon, both engines deliver ~n·T ticks.
	const n, horizon = 300, 30.0
	seq, err := NewSequential(n, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	poi, err := NewPoisson(n, 1, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	count := func(s Scheduler) int {
		c := 0
		for {
			if s.Next().Time > horizon {
				return c
			}
			c++
		}
	}
	a, b := count(seq), count(poi)
	want := float64(n * horizon)
	if math.Abs(float64(a)-want)/want > 0.02 {
		t.Errorf("sequential ticks = %d, want ~%.0f", a, want)
	}
	if math.Abs(float64(b)-want)/want > 0.05 {
		t.Errorf("poisson ticks = %d, want ~%.0f", b, want)
	}
}

func TestRunUntilStopsOnTime(t *testing.T) {
	s, err := NewSequential(10, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	var ticks int
	last, stopped := RunUntil(s, 5.0, func(Tick) bool {
		ticks++
		return true
	})
	if stopped {
		t.Error("should have stopped on time, not on step")
	}
	// Ticks occur at times 0, 0.1, …; the tick at exactly t = 5.0 is
	// still delivered (RunUntil stops strictly beyond maxTime), so 51.
	if ticks != 51 {
		t.Errorf("delivered %d ticks through time 5 on n=10, want 51", ticks)
	}
	if last.Time > 5.0 {
		t.Errorf("last delivered tick at %v > maxTime", last.Time)
	}
}

func TestRunUntilStopsOnStep(t *testing.T) {
	s, err := NewSequential(10, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	var ticks int
	_, stopped := RunUntil(s, 1e9, func(Tick) bool {
		ticks++
		return ticks < 7
	})
	if !stopped {
		t.Error("should have stopped on step")
	}
	if ticks != 7 {
		t.Errorf("ticks = %d, want 7", ticks)
	}
}

func TestCouponCollectorTime(t *testing.T) {
	// The time until every node has ticked at least once concentrates
	// around ln n — this is the heart of the paper's Ω(log n) lower bound
	// on any asynchronous protocol. Generous tolerance band.
	for _, n := range []int{1000, 10000} {
		s, err := NewSequential(n, rng.New(9))
		if err != nil {
			t.Fatal(err)
		}
		seen := make([]bool, n)
		remaining := n
		var when float64
		for remaining > 0 {
			tick := s.Next()
			if !seen[tick.Node] {
				seen[tick.Node] = true
				remaining--
				when = tick.Time
			}
		}
		ln := math.Log(float64(n))
		if when < 0.5*ln || when > 3*ln {
			t.Errorf("n=%d: all-ticked time %.2f outside [%.2f, %.2f]", n, when, 0.5*ln, 3*ln)
		}
	}
}

func TestDelayModels(t *testing.T) {
	r := rng.New(10)
	if d := (ZeroDelay{}).SampleDelay(r); d != 0 {
		t.Fatalf("ZeroDelay sampled %v", d)
	}
	ed := ExpDelay{Rate: 2}
	const draws = 50000
	var sum float64
	for i := 0; i < draws; i++ {
		v := ed.SampleDelay(r)
		if v < 0 {
			t.Fatalf("negative delay %v", v)
		}
		sum += v
	}
	mean := sum / draws
	if math.Abs(mean-0.5) > 0.02 {
		t.Fatalf("ExpDelay(2) mean = %.4f, want ~0.5", mean)
	}
}

func TestSchedulersDeterministic(t *testing.T) {
	mk := func() []int {
		s, err := NewPoisson(20, 1, rng.New(11))
		if err != nil {
			t.Fatal(err)
		}
		var nodes []int
		for i := 0; i < 200; i++ {
			nodes = append(nodes, s.Next().Node)
		}
		return nodes
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("tick %d: %d != %d with identical seed", i, a[i], b[i])
		}
	}
}

func BenchmarkSequentialNext(b *testing.B) {
	s, err := NewSequential(1_000_000, rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Next()
	}
}

func BenchmarkPoissonNext(b *testing.B) {
	s, err := NewPoisson(1_000_000, 1, rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Next()
	}
}
