package sched

import (
	"math"
	"testing"

	"plurality/internal/rng"
	"plurality/internal/stats"
)

// engines lists every scheduler engine under its construction at (n, rate 1).
func engines(t *testing.T, n int, seed uint64) map[string]BatchScheduler {
	t.Helper()
	seq, err := NewSequential(n, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	poi, err := NewPoisson(n, 1, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	hp, err := NewHeapPoisson(n, 1, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return map[string]BatchScheduler{"sequential": seq, "poisson": poi, "heap-poisson": hp}
}

// ksStatistic and ksThreshold delegate to the shared implementations in
// internal/stats (also used by the dynamics-engine equivalence tests).
func ksStatistic(a, b []float64) float64          { return stats.KSStatistic(a, b) }
func ksThreshold(alpha float64, m, n int) float64 { return stats.KSThreshold(alpha, m, n) }

// perNodeGaps runs s for about total ticks and returns the pooled per-node
// inter-activation times in parallel time. In every engine these should be
// (asymptotically) i.i.d. Exp(1): exactly exponential under both Poisson
// engines, Geometric(1/n)/n under the sequential model.
func perNodeGaps(s BatchScheduler, total int) []float64 {
	n := s.N()
	lastSeen := make([]float64, n)
	seen := make([]bool, n)
	gaps := make([]float64, 0, total)
	buf := make([]Tick, BatchSize)
	for len(gaps) < total {
		s.NextBatch(buf)
		for _, tk := range buf {
			if seen[tk.Node] {
				gaps = append(gaps, tk.Time-lastSeen[tk.Node])
			}
			seen[tk.Node] = true
			lastSeen[tk.Node] = tk.Time
		}
	}
	return gaps[:total]
}

// TestInterActivationTimesEquivalent is the scheduler-equivalence test the
// paper's model-equivalence claim (via Mosk-Aoyama & Shah) rests on: the
// O(1) Poisson engine, the heap reference, and the sequential model must
// produce statistically indistinguishable per-node inter-activation times.
// Pairwise two-sample KS tests at α = 0.001; the runs are deterministic, so
// this cannot flake — it fails only if an engine's distribution is wrong.
func TestInterActivationTimesEquivalent(t *testing.T) {
	const n, samples = 1000, 40_000
	es := engines(t, n, 42)
	gaps := map[string][]float64{}
	for name, s := range es {
		gaps[name] = perNodeGaps(s, samples)
	}
	pairs := [][2]string{
		{"poisson", "heap-poisson"},
		{"poisson", "sequential"},
		{"heap-poisson", "sequential"},
	}
	for _, p := range pairs {
		a := append([]float64(nil), gaps[p[0]]...)
		b := append([]float64(nil), gaps[p[1]]...)
		d := ksStatistic(a, b)
		thresh := ksThreshold(0.001, len(a), len(b))
		// The sequential model's gaps live on the lattice {k/n}, which
		// biases the KS distance by O(1/n); widen the threshold by that
		// much for the mixed pairs.
		thresh += 1 / float64(n)
		if d > thresh {
			t.Errorf("%s vs %s: KS statistic %.4f > %.4f", p[0], p[1], d, thresh)
		}
	}
}

// TestGlobalGapExponential checks the O(1) engine's global inter-event gaps
// against the heap engine's: both must be Exp(n·rate).
func TestGlobalGapExponential(t *testing.T) {
	const n, samples = 500, 50_000
	collect := func(s Scheduler) []float64 {
		gaps := make([]float64, samples)
		prev := 0.0
		for i := range gaps {
			tk := s.Next()
			gaps[i] = tk.Time - prev
			prev = tk.Time
		}
		return gaps
	}
	poi, err := NewPoisson(n, 1, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	hp, err := NewHeapPoisson(n, 1, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	a, b := collect(poi), collect(hp)
	if d, thresh := ksStatistic(a, b), ksThreshold(0.001, samples, samples); d > thresh {
		t.Errorf("global gaps: KS statistic %.4f > %.4f", d, thresh)
	}
	// Sanity: the mean global gap is 1/(n·rate).
	var sum float64
	for _, g := range a {
		sum += g
	}
	if mean, want := sum/samples, 1/float64(n); math.Abs(mean-want)/want > 0.05 {
		t.Errorf("mean global gap %.6f, want ~%.6f", mean, want)
	}
}

// TestNodeMarginalsUniform checks every engine's node-choice marginal
// against the uniform distribution with a chi-square test.
func TestNodeMarginalsUniform(t *testing.T) {
	const n, draws = 64, 640_000
	for name, s := range engines(t, n, 99) {
		counts := make([]int64, n)
		buf := make([]Tick, BatchSize)
		for delivered := 0; delivered < draws; delivered += len(buf) {
			s.NextBatch(buf)
			for _, tk := range buf {
				counts[tk.Node]++
			}
		}
		var total int64
		for _, c := range counts {
			total += c
		}
		expect := float64(total) / n
		var chi2 float64
		for _, c := range counts {
			d := float64(c) - expect
			chi2 += d * d / expect
		}
		// χ² with n−1 dof: mean n−1, sd sqrt(2(n−1)); 5σ band.
		dof := float64(n - 1)
		if limit := dof + 5*math.Sqrt(2*dof); chi2 > limit {
			t.Errorf("%s: chi2 = %.1f > %.1f (non-uniform node marginal)", name, chi2, limit)
		}
	}
}

// TestNextBatchMatchesNext verifies NextBatch is tick-for-tick identical to
// repeated Next calls for every engine, including across odd batch sizes.
func TestNextBatchMatchesNext(t *testing.T) {
	const n, total = 37, 1000
	for name := range engines(t, n, 5) {
		one := engines(t, n, 5)[name]
		batched := engines(t, n, 5)[name]
		var fromNext, fromBatch []Tick
		for i := 0; i < total; i++ {
			fromNext = append(fromNext, one.Next())
		}
		for _, size := range []int{1, 3, 17, 100, 379, 500} {
			buf := make([]Tick, size)
			batched.NextBatch(buf)
			fromBatch = append(fromBatch, buf...)
		}
		for i := range fromBatch {
			if fromBatch[i] != fromNext[i] {
				t.Fatalf("%s: tick %d: batch %+v != next %+v", name, i, fromBatch[i], fromNext[i])
			}
		}
	}
}

// TestRunBatchMatchesRunUntil verifies the batched driver delivers exactly
// the ticks RunUntil would, under both stopping rules.
func TestRunBatchMatchesRunUntil(t *testing.T) {
	collect := func(run func(Scheduler, float64, func(Tick) bool) (Tick, bool), maxTime float64, stopAfter int) ([]Tick, Tick, bool) {
		s, err := NewPoisson(25, 1, rng.New(12))
		if err != nil {
			t.Fatal(err)
		}
		var ticks []Tick
		last, stopped := run(s, maxTime, func(tk Tick) bool {
			ticks = append(ticks, tk)
			return stopAfter <= 0 || len(ticks) < stopAfter
		})
		return ticks, last, stopped
	}
	for _, tc := range []struct {
		maxTime   float64
		stopAfter int
	}{{40, 0}, {1e9, 777}} {
		a, lastA, stopA := collect(RunUntil, tc.maxTime, tc.stopAfter)
		b, lastB, stopB := collect(RunBatch, tc.maxTime, tc.stopAfter)
		if len(a) != len(b) || lastA != lastB || stopA != stopB {
			t.Fatalf("maxTime=%v stopAfter=%d: RunUntil (%d ticks, %+v, %v) != RunBatch (%d ticks, %+v, %v)",
				tc.maxTime, tc.stopAfter, len(a), lastA, stopA, len(b), lastB, stopB)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("tick %d differs: %+v != %+v", i, a[i], b[i])
			}
		}
	}
}

func BenchmarkHeapPoissonNext(b *testing.B) {
	s, err := NewHeapPoisson(1_000_000, 1, rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Next()
	}
}

func BenchmarkPoissonNextBatch(b *testing.B) {
	s, err := NewPoisson(1_000_000, 1, rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]Tick, BatchSize)
	b.ResetTimer()
	for i := 0; i < b.N; i += len(buf) {
		s.NextBatch(buf)
	}
}
