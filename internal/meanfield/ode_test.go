package meanfield_test

// Characterization tests of the ODE side of the hybrid leap engine: the
// fluid limits induced by every registered protocol's flow law (fixed
// points, drift signs, mass conservation), the RK4 integrator's consensus
// approach and Voter stall, and the exactness of the histogram handoff
// round trip (StateFromCounts / State.Counts).

import (
	"math"
	"testing"
	"testing/quick"

	"plurality/internal/meanfield"
	"plurality/internal/occupancy"
	"plurality/internal/protocols"
)

// protocolDrift resolves a registry spec to the Drift of its flow law over
// k opinion colors, returning the bucket count (k+1 for undecided-state
// rules, whose hidden pool gets the last bucket).
func protocolDrift(t *testing.T, spec string, k int) (meanfield.Drift, int) {
	t.Helper()
	_, rule, err := protocols.Lookup(spec)
	if err != nil {
		t.Fatal(err)
	}
	// dynamics.Rule and occupancy.Rule are structurally identical.
	var or occupancy.Rule = rule
	buckets := k
	if ur, ok := or.(occupancy.Undecided); ok {
		or = ur.UndecidedRule(k)
		buckets = k + 1
	}
	kr, ok := or.(occupancy.Kerneled)
	if !ok {
		t.Fatalf("%s: no occupancy kernel", spec)
	}
	fk, ok := kr.OccupancyKernel().(occupancy.FlowKernel)
	if !ok {
		t.Fatalf("%s: kernel exposes no flow law", spec)
	}
	return meanfield.DriftFromFlows(buckets, fk.Flows), buckets
}

// leapableSpecs returns one representative spec per Leapable registry
// entry, so a newly registered protocol lands in these gates automatically.
func leapableSpecs(t *testing.T) []string {
	t.Helper()
	var specs []string
	for _, d := range protocols.Registry() {
		if !d.Leapable {
			continue
		}
		spec := d.Name
		if d.ParamName != "" {
			// Parameterized families pin their race representative.
			spec = d.RaceSpec
		}
		specs = append(specs, spec)
	}
	if len(specs) == 0 {
		t.Fatal("no leapable protocols registered")
	}
	return specs
}

// TestDriftFixedPoints: consensus corners are fixed points of every
// registered flow law (with an empty undecided pool where applicable), and
// the color-symmetric dynamics are also fixed exactly at the uniform tie.
func TestDriftFixedPoints(t *testing.T) {
	const k = 3
	for _, spec := range leapableSpecs(t) {
		drift, buckets := protocolDrift(t, spec, k)
		out := make([]float64, buckets)
		for c := 0; c < k; c++ {
			x := make([]float64, buckets)
			x[c] = 1
			drift(x, out)
			for d, v := range out {
				if math.Abs(v) > 1e-12 {
					t.Errorf("%s: consensus on %d: drift[%d] = %g, want 0", spec, c, d, v)
				}
			}
		}
		if buckets != k {
			continue // the uniform decided tie is not a USD fixed point
		}
		x := []float64{1.0 / 3, 1.0 / 3, 1.0 / 3}
		drift(x, out)
		for d, v := range out {
			if math.Abs(v) > 1e-12 {
				t.Errorf("%s: uniform tie: drift[%d] = %g, want 0", spec, d, v)
			}
		}
	}
}

// TestDriftMassConservation: every registered flow law's drift sums to zero
// — the fluid limit moves mass between buckets, never creates it.
func TestDriftMassConservation(t *testing.T) {
	const k = 3
	points := [][]float64{
		{0.5, 0.25, 0.25},
		{0.7, 0.2, 0.1},
		{0.34, 0.33, 0.33},
	}
	for _, spec := range leapableSpecs(t) {
		drift, buckets := protocolDrift(t, spec, k)
		out := make([]float64, buckets)
		for _, p := range points {
			x := make([]float64, buckets)
			copy(x, p)
			if buckets > k {
				// Move a fifth of the mass into the undecided pool.
				for c := 0; c < k; c++ {
					x[c] *= 0.8
				}
				x[k] = 0.2
			}
			drift(x, out)
			var sum float64
			for _, v := range out {
				sum += v
			}
			if math.Abs(sum) > 1e-12 {
				t.Errorf("%s at %v: drift sums to %g, want 0", spec, x, sum)
			}
		}
	}
}

// TestDriftAmplifiesPlurality: integrating each registered fluid limit from
// a biased start must widen the plurality's lead — the mean-field shadow of
// the protocols' plurality-wins guarantee. Voter's drift is identically
// zero (the martingale), so it must stall instead; the integrator's stall
// detection is exactly what lets the leap engine skip the ODE regime for
// drift-free dynamics.
func TestDriftAmplifiesPlurality(t *testing.T) {
	const k = 3
	for _, spec := range leapableSpecs(t) {
		drift, buckets := protocolDrift(t, spec, k)
		x := make([]float64, buckets)
		copy(x, []float64{0.5, 0.25, 0.25})
		st := meanfield.State{X: x}
		res, err := meanfield.Integrate(drift, &st, 10, meanfield.IntegrateConfig{})
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		if spec == "voter" {
			if !res.Stalled || res.Steps != 0 {
				t.Errorf("voter: res = %+v, want immediate stall", res)
			}
			continue
		}
		if res.Stalled {
			t.Errorf("%s: stalled at %v", spec, st.X)
		}
		if lead := st.X[0] - st.X[1]; lead <= 0.5-0.25 {
			t.Errorf("%s: plurality lead %g after T=%g, want > 0.25", spec, lead, st.T)
		}
		if st.X[0] <= st.X[1] || st.X[1] != st.X[2] {
			// The trailing colors start symmetric and the dynamics are
			// color-symmetric, so they must stay exactly tied.
			t.Errorf("%s: order violated: %v", spec, st.X)
		}
	}
}

// TestIntegrateApproachesConsensus drives the Two-Choices fluid limit until
// the trailing colors are all but extinct, checking the Stop hook fires and
// the winner holds essentially everything — the deterministic skeleton the
// leap engine's ODE regime rides on.
func TestIntegrateApproachesConsensus(t *testing.T) {
	drift, _ := protocolDrift(t, "two-choices", 3)
	st := meanfield.State{X: []float64{0.5, 0.25, 0.25}}
	res, err := meanfield.Integrate(drift, &st, 1e6, meanfield.IntegrateConfig{
		Stop: func(x []float64) bool {
			for _, f := range x {
				if f > 0 && f < 1e-9 {
					return true
				}
			}
			return false
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped || res.Stalled {
		t.Fatalf("res = %+v, want Stopped", res)
	}
	if st.X[0] < 1-1e-8 {
		t.Errorf("winner fraction %g after T=%g, want ~1", st.X[0], st.T)
	}
	if st.T <= 0 || res.Steps <= 0 {
		t.Errorf("no progress recorded: T=%g steps=%d", st.T, res.Steps)
	}
}

// TestStateCountsRoundTrip: importing any histogram and exporting it back
// at the same n must reproduce it bit for bit — the leap engine's ODE
// handoff cannot leak or invent nodes at either boundary.
func TestStateCountsRoundTrip(t *testing.T) {
	check := func(a, b, c, d uint16) bool {
		counts := []int64{int64(a), int64(b), int64(c), int64(d) + 1}
		var n int64
		for _, v := range counts {
			n += v
		}
		if n < 2 {
			return true
		}
		st, err := meanfield.StateFromCounts(counts, 1.5)
		if err != nil || st.T != 1.5 {
			return false
		}
		out := make([]int64, len(counts))
		if err := st.Counts(n, out); err != nil {
			return false
		}
		for i := range counts {
			if out[i] != counts[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestStateCountsRescale: exporting to a different n preserves the total
// exactly via largest-remainder rounding.
func TestStateCountsRescale(t *testing.T) {
	st, err := meanfield.StateFromCounts([]int64{1, 1, 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int64{2, 7, 100, 1_000_003} {
		out := make([]int64, 3)
		if err := st.Counts(n, out); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		var sum int64
		for _, v := range out {
			sum += v
		}
		if sum != n {
			t.Errorf("n=%d: exported total %d", n, sum)
		}
	}
}

// TestHandoffErrors pins the handoff contract violations.
func TestHandoffErrors(t *testing.T) {
	if _, err := meanfield.StateFromCounts(nil, 0); err == nil {
		t.Error("empty histogram: no error")
	}
	if _, err := meanfield.StateFromCounts([]int64{3, -1}, 0); err == nil {
		t.Error("negative count: no error")
	}
	if _, err := meanfield.StateFromCounts([]int64{0, 0}, 0); err == nil {
		t.Error("zero total: no error")
	}
	st := meanfield.State{X: []float64{0.5, 0.5}}
	if err := st.Counts(10, make([]int64, 3)); err == nil {
		t.Error("mismatched buffer: no error")
	}
	if err := st.Counts(0, make([]int64, 2)); err == nil {
		t.Error("n = 0: no error")
	}
	bad := meanfield.State{X: []float64{0.9, 0.9}}
	if err := bad.Counts(10, make([]int64, 2)); err == nil {
		t.Error("fractions summing above 1: no error")
	}
	nan := meanfield.State{X: []float64{math.NaN(), 0.5}}
	if err := nan.Counts(10, make([]int64, 2)); err == nil {
		t.Error("NaN fraction: no error")
	}
	if _, err := meanfield.Integrate(nil, &meanfield.State{X: []float64{1}}, 1, meanfield.IntegrateConfig{}); err == nil {
		t.Error("nil drift: no error")
	}
}
