// Package meanfield implements the deterministic mean-field (expected
// one-step) recurrences of the dynamics in this repository. They are the
// "theory side" the simulations are compared against in tests:
//
//   - Two-Choices: a node resamples its color to j with probability
//     (c_j/n)², so E[c'_j] = c_j·(1 − S₂) + n·(c_j/n)², with
//     S₂ = Σ_i (c_i/n)².
//   - 3-Majority: a node adopts color j with the probability that j wins a
//     majority among three uniform samples.
//   - OneExtraBit phase map: after one Two-Choices round plus full
//     Bit-Propagation, supports redistribute proportionally to c_j², i.e.
//     c'_j = n·c_j²/Σ_i c_i² — the quadratic amplification of §2.
//   - Endgame drift: with two colors and minority fraction m, asynchronous
//     Two-Choices gives dm/dt = −m(1−m)(1−2m), whose solution bounds the
//     §3.2 endgame time.
//
// All maps work on float64 fraction vectors and are exact in the n → ∞
// limit; finite-n simulations track them up to O(1/√n) sampling noise.
package meanfield

import (
	"errors"
	"fmt"
	"math"
)

// ErrBadFractions reports a vector that is not a probability distribution.
var ErrBadFractions = errors.New("meanfield: fractions must be non-negative and sum to ~1")

// checkFractions validates that fracs is a probability vector.
func checkFractions(fracs []float64) error {
	if len(fracs) == 0 {
		return ErrBadFractions
	}
	var sum float64
	for _, f := range fracs {
		if f < 0 || math.IsNaN(f) {
			return ErrBadFractions
		}
		sum += f
	}
	if math.Abs(sum-1) > 1e-9 {
		return fmt.Errorf("%w (sum = %v)", ErrBadFractions, sum)
	}
	return nil
}

// TwoChoicesStep applies one synchronous Two-Choices round to the color
// fraction vector: every node samples two colors from the current
// distribution and adopts on a match.
func TwoChoicesStep(fracs []float64) ([]float64, error) {
	if err := checkFractions(fracs); err != nil {
		return nil, err
	}
	var s2 float64
	for _, f := range fracs {
		s2 += f * f
	}
	out := make([]float64, len(fracs))
	for j, f := range fracs {
		out[j] = f*(1-s2) + f*f
	}
	return out, nil
}

// TwoChoicesRounds iterates TwoChoicesStep until the leading fraction
// reaches target (e.g. 0.999) and returns the number of rounds, or an error
// after maxRounds.
func TwoChoicesRounds(fracs []float64, target float64, maxRounds int) (int, error) {
	cur := append([]float64(nil), fracs...)
	for r := 0; r < maxRounds; r++ {
		if maxOf(cur) >= target {
			return r, nil
		}
		next, err := TwoChoicesStep(cur)
		if err != nil {
			return 0, err
		}
		cur = next
	}
	return 0, fmt.Errorf("meanfield: two-choices did not reach %v in %d rounds", target, maxRounds)
}

// ThreeMajorityStep applies one synchronous 3-Majority round: a node adopts
// color j if at least two of three uniform samples are j; with three
// distinct samples it adopts the first, which is j with probability f_j.
func ThreeMajorityStep(fracs []float64) ([]float64, error) {
	if err := checkFractions(fracs); err != nil {
		return nil, err
	}
	// P(adopt j) = P(≥2 of 3 samples are j)
	//            + P(first sample is j AND all three colors distinct).
	// P(≥2 samples j) = 3 f_j²(1−f_j) + f_j³.
	// P(s0=j, all distinct) = f_j · Σ_{b≠j} Σ_{c∉{j,b}} f_b f_c
	//                       = f_j · [(1−f_j)² − (S₂ − f_j²)].
	var s2 float64
	for _, f := range fracs {
		s2 += f * f
	}
	out := make([]float64, len(fracs))
	for j, f := range fracs {
		distinctFirst := f * ((1-f)*(1-f) - (s2 - f*f))
		out[j] = 3*f*f*(1-f) + f*f*f + distinctFirst
	}
	return out, nil
}

// OneExtraBitPhase applies the §2 phase map: supports redistribute
// proportionally to their squares (one Two-Choices round concentrated into
// bit-set nodes, then Bit-Propagation spreads exactly that distribution).
func OneExtraBitPhase(fracs []float64) ([]float64, error) {
	if err := checkFractions(fracs); err != nil {
		return nil, err
	}
	var s2 float64
	for _, f := range fracs {
		s2 += f * f
	}
	if s2 == 0 {
		return nil, ErrBadFractions
	}
	out := make([]float64, len(fracs))
	for j, f := range fracs {
		out[j] = f * f / s2
	}
	return out, nil
}

// OneExtraBitPhases iterates the phase map until the leading fraction
// reaches target and returns the phase count.
func OneExtraBitPhases(fracs []float64, target float64, maxPhases int) (int, error) {
	cur := append([]float64(nil), fracs...)
	for p := 0; p < maxPhases; p++ {
		if maxOf(cur) >= target {
			return p, nil
		}
		next, err := OneExtraBitPhase(cur)
		if err != nil {
			return 0, err
		}
		cur = next
	}
	return 0, fmt.Errorf("meanfield: onebit did not reach %v in %d phases", target, maxPhases)
}

// EndgameDrift is the two-color asynchronous Two-Choices drift: with
// minority fraction m, dm/dt = −m(1−m)(1−2m).
func EndgameDrift(m float64) float64 {
	return -m * (1 - m) * (1 - 2*m)
}

// EndgameTime integrates the endgame drift from minority fraction m0 down
// to mTarget with step dt, returning the elapsed (parallel) time. m0 must
// be below 1/2 — above it the plurality loses the drift race.
func EndgameTime(m0, mTarget, dt float64) (float64, error) {
	if m0 <= 0 || m0 >= 0.5 {
		return 0, fmt.Errorf("meanfield: endgame needs m0 in (0, 0.5), got %v", m0)
	}
	if mTarget <= 0 || mTarget >= m0 {
		return 0, fmt.Errorf("meanfield: need 0 < mTarget < m0, got %v", mTarget)
	}
	if dt <= 0 {
		return 0, fmt.Errorf("meanfield: dt = %v, want > 0", dt)
	}
	m, t := m0, 0.0
	for m > mTarget {
		m += dt * EndgameDrift(m)
		t += dt
		if t > 1e7 {
			return 0, errors.New("meanfield: endgame integration diverged")
		}
	}
	return t, nil
}

// VoterWinProbability is the classical voter-model martingale result: each
// color wins with probability equal to its initial fraction.
func VoterWinProbability(fracs []float64) ([]float64, error) {
	if err := checkFractions(fracs); err != nil {
		return nil, err
	}
	out := make([]float64, len(fracs))
	copy(out, fracs)
	return out, nil
}

func maxOf(xs []float64) float64 {
	m := xs[0]
	for _, v := range xs {
		if v > m {
			m = v
		}
	}
	return m
}
