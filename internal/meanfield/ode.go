// ODE limit and handoff state: the continuous-time mean-field side of the
// hybrid leap engine. A kerneled dynamic's per-activation flow law F_cd(x)
// (the probability that one activation moves a node from bucket c to bucket
// d, in the n → ∞ fraction limit) induces the fluid limit
//
//	dx_c/dτ = Σ_d (F_dc(x) − F_cd(x)),
//
// with τ the unit-rate parallel time (activations per node). Integrate
// advances a State along that field with classic RK4 under adaptive step
// control; StateFromCounts / State.Counts convert between the stochastic
// engines' integer histograms and the fluid fractions, with
// largest-remainder rounding so the round trip preserves the node total
// exactly.
package meanfield

import (
	"errors"
	"fmt"
	"math"
)

// Drift is a mean-field vector field on color fractions: it fills out
// (len(out) == len(x)) with dx/dτ at x, where τ is unit-rate parallel time
// (one expected activation per node per unit). Implementations must not
// retain either slice.
type Drift func(x, out []float64)

// DriftFromFlows lifts a per-activation flow law to its Drift: flows fills
// a k×k row-major matrix with F[c*k+d] = P(one activation moves a node
// from bucket c to bucket d) at fractions x, and the induced drift is the
// net flow dx_c/dτ = Σ_d (F_dc − F_cd). The k²-sized scratch is owned by
// the returned closure, so it is not safe for concurrent use.
func DriftFromFlows(k int, flows func(x, out []float64)) Drift {
	scratch := make([]float64, k*k)
	return func(x, out []float64) {
		flows(x, scratch)
		for c := 0; c < k; c++ {
			var net float64
			for d := 0; d < k; d++ {
				net += scratch[d*k+c] - scratch[c*k+d]
			}
			out[c] = net
		}
	}
}

// State is the fluid-limit handoff currency between the stochastic engines
// and the ODE integrator: a fraction vector plus the unit-rate parallel
// time it was reached at.
type State struct {
	// X is the color fraction vector (non-negative, summing to ~1).
	X []float64
	// T is the unit-rate parallel time of the state.
	T float64
}

// StateFromCounts imports an integer histogram as a fluid state at time t.
func StateFromCounts(counts []int64, t float64) (State, error) {
	if len(counts) == 0 {
		return State{}, errors.New("meanfield: empty histogram")
	}
	var n int64
	for c, v := range counts {
		if v < 0 {
			return State{}, fmt.Errorf("meanfield: negative count %d for color %d", v, c)
		}
		n += v
	}
	if n <= 0 {
		return State{}, errors.New("meanfield: histogram total 0")
	}
	x := make([]float64, len(counts))
	nf := float64(n)
	for c, v := range counts {
		x[c] = float64(v) / nf
	}
	return State{X: x, T: t}, nil
}

// Counts exports the state as an integer histogram over n nodes into out
// (len(out) == len(s.X)), using largest-remainder rounding: each bucket
// gets the floor of its expected count and the leftover nodes go to the
// buckets with the largest fractional remainders (lowest index on ties),
// so the exported histogram always sums to n exactly and a bucket at an
// exact integer fraction round-trips unchanged.
func (s *State) Counts(n int64, out []int64) error {
	if len(out) != len(s.X) {
		return fmt.Errorf("meanfield: counts buffer has %d buckets, state %d", len(out), len(s.X))
	}
	if n <= 0 {
		return fmt.Errorf("meanfield: n = %d, want > 0", n)
	}
	nf := float64(n)
	var assigned int64
	rem := make([]float64, len(s.X))
	for c, f := range s.X {
		if f < 0 || math.IsNaN(f) {
			return fmt.Errorf("meanfield: bad fraction %v for color %d", f, c)
		}
		exact := f * nf
		fl := math.Floor(exact)
		out[c] = int64(fl)
		rem[c] = exact - fl
		assigned += out[c]
	}
	// Distribute the leftover nodes by descending fractional remainder.
	// k is small, so the repeated max scan is cheaper than sorting.
	for assigned < n {
		best := -1
		for c, r := range rem {
			if r >= 0 && (best < 0 || r > rem[best]) {
				best = c
			}
		}
		if best < 0 {
			return errors.New("meanfield: fraction vector sums far below 1")
		}
		out[best]++
		rem[best] = -1
		assigned++
	}
	// A fraction vector summing above 1 (beyond rounding) would leave
	// assigned > n; trim from the largest remainders' complements is not
	// meaningful, so reject it instead of silently rescaling.
	if assigned > n {
		return errors.New("meanfield: fraction vector sums above 1")
	}
	return nil
}

// IntegrateConfig tunes Integrate. The zero value selects the defaults.
type IntegrateConfig struct {
	// Tol is the per-step relative-change budget driving the adaptive step
	// size: dτ is chosen so no bucket is expected to change by more than
	// Tol of its own mass in one step (default 1e-3).
	Tol float64
	// MaxStep caps dτ regardless of the drift (default 0.25).
	MaxStep float64
	// Stop, if non-nil, is evaluated on the state after every committed
	// step; returning true ends the integration (IntegrateResult.Stopped).
	Stop func(x []float64) bool
	// MaxSteps bounds the step count defensively (default 4 << 20).
	MaxSteps int
}

// IntegrateResult describes how an integration ended.
type IntegrateResult struct {
	// Steps is the number of committed RK4 steps.
	Steps int
	// Stopped reports that cfg.Stop ended the integration.
	Stopped bool
	// Stalled reports that the drift vanished (sup-norm below the stall
	// threshold) before maxT or Stop: the state sits on a fixed point of
	// the fluid limit (e.g. the Voter martingale, whose drift is
	// identically zero), so further integration cannot make progress.
	Stalled bool
}

// stallNorm is the drift sup-norm below which Integrate reports a fixed
// point. The built-in dynamics' drifts are Θ(x_c) away from consensus, so
// the threshold is only reachable on genuine fixed points (Voter
// everywhere; other dynamics exactly at consensus or symmetric ties).
const stallNorm = 1e-12

// Integrate advances s along d with classic RK4 until s.T reaches maxT,
// cfg.Stop fires, or the drift stalls. The step size adapts to the drift:
// no bucket is expected to move by more than cfg.Tol of its own mass per
// step. After each step the fractions are clamped non-negative and
// renormalized, bounding the drift of Σx away from 1 by rounding only.
func Integrate(d Drift, s *State, maxT float64, cfg IntegrateConfig) (IntegrateResult, error) {
	if d == nil {
		return IntegrateResult{}, errors.New("meanfield: nil drift")
	}
	if err := checkFractions(s.X); err != nil {
		return IntegrateResult{}, err
	}
	tol := cfg.Tol
	if tol <= 0 {
		tol = 1e-3
	}
	maxStep := cfg.MaxStep
	if maxStep <= 0 {
		maxStep = 0.25
	}
	maxSteps := cfg.MaxSteps
	if maxSteps <= 0 {
		maxSteps = 4 << 20
	}
	k := len(s.X)
	var (
		k1 = make([]float64, k)
		k2 = make([]float64, k)
		k3 = make([]float64, k)
		k4 = make([]float64, k)
		xt = make([]float64, k)
	)
	var res IntegrateResult
	for s.T < maxT {
		if res.Steps >= maxSteps {
			return res, fmt.Errorf("meanfield: integration exceeded %d steps", maxSteps)
		}
		d(s.X, k1)
		// Adaptive step: bound each bucket's expected relative change.
		var maxRel float64
		for c := 0; c < k; c++ {
			if s.X[c] <= 0 {
				continue
			}
			if rel := math.Abs(k1[c]) / s.X[c]; rel > maxRel {
				maxRel = rel
			}
		}
		var sup float64
		for c := 0; c < k; c++ {
			if a := math.Abs(k1[c]); a > sup {
				sup = a
			}
		}
		if sup < stallNorm {
			res.Stalled = true
			return res, nil
		}
		dt := maxStep
		if maxRel > 0 && tol/maxRel < dt {
			dt = tol / maxRel
		}
		if s.T+dt > maxT {
			dt = maxT - s.T
		}
		// Classic RK4.
		for c := 0; c < k; c++ {
			xt[c] = s.X[c] + 0.5*dt*k1[c]
		}
		d(xt, k2)
		for c := 0; c < k; c++ {
			xt[c] = s.X[c] + 0.5*dt*k2[c]
		}
		d(xt, k3)
		for c := 0; c < k; c++ {
			xt[c] = s.X[c] + dt*k3[c]
		}
		d(xt, k4)
		var sum float64
		for c := 0; c < k; c++ {
			v := s.X[c] + dt/6*(k1[c]+2*k2[c]+2*k3[c]+k4[c])
			if v < 0 {
				v = 0
			}
			s.X[c] = v
			sum += v
		}
		if sum <= 0 {
			return res, errors.New("meanfield: integration collapsed to the zero vector")
		}
		for c := 0; c < k; c++ {
			s.X[c] /= sum
		}
		s.T += dt
		res.Steps++
		if cfg.Stop != nil && cfg.Stop(s.X) {
			res.Stopped = true
			return res, nil
		}
	}
	return res, nil
}
