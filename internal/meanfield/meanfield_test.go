package meanfield_test

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"plurality/internal/graph"
	"plurality/internal/meanfield"
	"plurality/internal/population"
	"plurality/internal/protocols/dynamics"
	"plurality/internal/protocols/threemajority"
	"plurality/internal/protocols/twochoices"
	"plurality/internal/rng"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestCheckFractions(t *testing.T) {
	bad := [][]float64{
		nil,
		{0.5, 0.6},
		{-0.1, 1.1},
		{math.NaN(), 1},
	}
	for _, fracs := range bad {
		if _, err := meanfield.TwoChoicesStep(fracs); !errors.Is(err, meanfield.ErrBadFractions) {
			t.Errorf("fractions %v: err = %v, want meanfield.ErrBadFractions", fracs, err)
		}
	}
}

func TestTwoChoicesStepPreservesMass(t *testing.T) {
	check := func(a, b, c uint8) bool {
		total := float64(a) + float64(b) + float64(c) + 3
		fracs := []float64{(float64(a) + 1) / total, (float64(b) + 1) / total, (float64(c) + 1) / total}
		next, err := meanfield.TwoChoicesStep(fracs)
		if err != nil {
			return false
		}
		var sum float64
		for _, f := range next {
			if f < 0 {
				return false
			}
			sum += f
		}
		return almost(sum, 1, 1e-9)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTwoChoicesStepAmplifiesLeader(t *testing.T) {
	fracs := []float64{0.4, 0.3, 0.3}
	next, err := meanfield.TwoChoicesStep(fracs)
	if err != nil {
		t.Fatal(err)
	}
	if next[0] <= fracs[0] {
		t.Fatalf("leader did not grow: %v -> %v", fracs[0], next[0])
	}
	if next[1] >= fracs[1] {
		t.Fatalf("trailer did not shrink: %v -> %v", fracs[1], next[1])
	}
	// Ratio of leader to trailer must increase.
	if next[0]/next[1] <= fracs[0]/fracs[1] {
		t.Fatal("relative advantage did not grow")
	}
}

func TestTwoChoicesFixedPoints(t *testing.T) {
	// Unanimity is a fixed point.
	next, err := meanfield.TwoChoicesStep([]float64{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(next[0], 1, 1e-12) {
		t.Fatalf("unanimity not fixed: %v", next)
	}
	// The symmetric point is a fixed point too (unstable).
	sym := []float64{0.5, 0.5}
	next, err = meanfield.TwoChoicesStep(sym)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(next[0], 0.5, 1e-12) {
		t.Fatalf("symmetric point not fixed: %v", next)
	}
}

// TestTwoChoicesMapMatchesSimulation: the mean-field map must track a real
// synchronous Two-Choices run at large n, round by round.
func TestTwoChoicesMapMatchesSimulation(t *testing.T) {
	const n = 200000
	counts, err := population.BiasedCounts(n, 3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	pop, err := population.FromCounts(counts)
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.NewComplete(n)
	if err != nil {
		t.Fatal(err)
	}
	fracs := make([]float64, 3)
	for j := range fracs {
		fracs[j] = float64(counts[j]) / n
	}
	var worst float64
	_, err = dynamics.RunSync(pop, twochoices.Rule{}, dynamics.SyncConfig{
		Graph:     g,
		Rand:      rng.New(1),
		MaxRounds: 100000,
		OnRound: func(round int, p *population.Population) {
			next, stepErr := meanfield.TwoChoicesStep(fracs)
			if stepErr != nil {
				t.Error(stepErr)
				return
			}
			fracs = next
			for j := 0; j < 3; j++ {
				d := math.Abs(p.Fraction(population.Color(j)) - fracs[j])
				if d > worst {
					worst = d
				}
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// O(1/sqrt(n)) sampling noise accumulates over ~20 rounds; stay well
	// within a generous band.
	if worst > 0.02 {
		t.Fatalf("mean-field prediction deviated by %.4f from simulation", worst)
	}
}

// TestTwoChoicesRoundsPredictsE1Scale: the round counts the map predicts
// match the magnitudes measured in experiment E1.
func TestTwoChoicesRoundsPredictsE1Scale(t *testing.T) {
	const n = 8000
	counts, err := population.GapSqrtCounts(n, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	fracs := make([]float64, len(counts))
	for j, c := range counts {
		fracs[j] = float64(c) / n
	}
	rounds, err := meanfield.TwoChoicesRounds(fracs, 0.999, 10000)
	if err != nil {
		t.Fatal(err)
	}
	// E1 measured a median of 20 rounds at n=8000; the deterministic map
	// should land in the same ballpark.
	if rounds < 10 || rounds > 40 {
		t.Fatalf("mean-field rounds = %d, measured ~20", rounds)
	}
}

func TestTwoChoicesRoundsBudget(t *testing.T) {
	if _, err := meanfield.TwoChoicesRounds([]float64{0.5, 0.5}, 0.999, 50); err == nil {
		t.Fatal("symmetric start cannot converge deterministically")
	}
}

func TestThreeMajorityStepPreservesMass(t *testing.T) {
	fracs := []float64{0.5, 0.3, 0.2}
	next, err := meanfield.ThreeMajorityStep(fracs)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, f := range next {
		sum += f
	}
	if !almost(sum, 1, 1e-9) {
		t.Fatalf("mass not preserved: %v (sum %v)", next, sum)
	}
	if next[0] <= fracs[0] {
		t.Fatal("3-majority leader did not grow")
	}
}

func TestThreeMajorityTwoColorClosedForm(t *testing.T) {
	// With two colors the map reduces to the classical
	// f' = 3f² − 2f³ + P(distinct)·f with P(distinct) = 0, i.e.
	// f' = f²(3 − 2f).
	for _, f := range []float64{0.1, 0.4, 0.6, 0.9} {
		next, err := meanfield.ThreeMajorityStep([]float64{f, 1 - f})
		if err != nil {
			t.Fatal(err)
		}
		want := f * f * (3 - 2*f)
		if !almost(next[0], want, 1e-12) {
			t.Fatalf("f=%v: got %v, want %v", f, next[0], want)
		}
	}
}

// TestThreeMajorityMapMatchesSimulation mirrors the Two-Choices check.
func TestThreeMajorityMapMatchesSimulation(t *testing.T) {
	const n = 200000
	counts, err := population.BiasedCounts(n, 4, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	pop, err := population.FromCounts(counts)
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.NewComplete(n)
	if err != nil {
		t.Fatal(err)
	}
	fracs := make([]float64, 4)
	for j := range fracs {
		fracs[j] = float64(counts[j]) / n
	}
	var worst float64
	_, err = dynamics.RunSync(pop, threemajority.Rule{}, dynamics.SyncConfig{
		Graph:     g,
		Rand:      rng.New(2),
		MaxRounds: 100000,
		OnRound: func(round int, p *population.Population) {
			next, stepErr := meanfield.ThreeMajorityStep(fracs)
			if stepErr != nil {
				t.Error(stepErr)
				return
			}
			fracs = next
			for j := 0; j < 4; j++ {
				d := math.Abs(p.Fraction(population.Color(j)) - fracs[j])
				if d > worst {
					worst = d
				}
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if worst > 0.02 {
		t.Fatalf("mean-field prediction deviated by %.4f from simulation", worst)
	}
}

func TestOneExtraBitPhaseSquaresRatios(t *testing.T) {
	fracs := []float64{0.3, 0.2, 0.5}
	next, err := meanfield.OneExtraBitPhase(fracs)
	if err != nil {
		t.Fatal(err)
	}
	// Ratios square exactly under the map.
	gotRatio := next[2] / next[0]
	wantRatio := (fracs[2] / fracs[0]) * (fracs[2] / fracs[0])
	if !almost(gotRatio, wantRatio, 1e-12) {
		t.Fatalf("ratio %v, want %v", gotRatio, wantRatio)
	}
	var sum float64
	for _, f := range next {
		sum += f
	}
	if !almost(sum, 1, 1e-12) {
		t.Fatalf("mass not preserved: %v", next)
	}
}

func TestOneExtraBitPhasesLogLog(t *testing.T) {
	// Phase counts must grow doubly-logarithmically: going from
	// target-ratio r to r² costs one phase.
	mk := func(k int) []float64 {
		fracs := make([]float64, k)
		lead := 1.5 / (1.5 + float64(k-1))
		rest := 1.0 / (1.5 + float64(k-1))
		fracs[0] = lead
		for i := 1; i < k; i++ {
			fracs[i] = rest
		}
		// normalize exactly
		var sum float64
		for _, f := range fracs {
			sum += f
		}
		for i := range fracs {
			fracs[i] /= sum
		}
		return fracs
	}
	p4, err := meanfield.OneExtraBitPhases(mk(4), 0.999, 100)
	if err != nil {
		t.Fatal(err)
	}
	p256, err := meanfield.OneExtraBitPhases(mk(256), 0.999, 100)
	if err != nil {
		t.Fatal(err)
	}
	if p256 > p4+4 {
		t.Fatalf("phases grew too fast with k: %d -> %d", p4, p256)
	}
	// Doubly-logarithmic growth: 64x more colors may cost zero or very few
	// extra phases (ln k only enters under a log2), but never fewer.
	if p256 < p4 {
		t.Fatalf("more colors cannot need fewer phases: %d -> %d", p4, p256)
	}
}

func TestEndgameDriftSigns(t *testing.T) {
	if meanfield.EndgameDrift(0.1) >= 0 {
		t.Error("small minority must shrink")
	}
	if meanfield.EndgameDrift(0.5) != 0 {
		t.Error("symmetric point must be stationary")
	}
	if meanfield.EndgameDrift(0.9) <= 0 {
		t.Error("above 1/2 the 'minority' label flips; drift must be positive")
	}
}

func TestEndgameTimeMatchesE9Scale(t *testing.T) {
	// E9 measured consensus ~8.7-10.4 time units from m0 = 0.10 at
	// n = 1e4…1.6e5; the ODE to m = 1/n should land in the same ballpark.
	tm, err := meanfield.EndgameTime(0.10, 1.0/40000, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if tm < 5 || tm > 25 {
		t.Fatalf("ODE endgame time = %.1f, measured ~10", tm)
	}
}

func TestEndgameTimeValidation(t *testing.T) {
	if _, err := meanfield.EndgameTime(0.6, 0.01, 1e-3); err == nil {
		t.Error("m0 >= 0.5 should fail")
	}
	if _, err := meanfield.EndgameTime(0.1, 0.2, 1e-3); err == nil {
		t.Error("mTarget >= m0 should fail")
	}
	if _, err := meanfield.EndgameTime(0.1, 0.01, 0); err == nil {
		t.Error("dt = 0 should fail")
	}
}

func TestVoterWinProbability(t *testing.T) {
	fracs := []float64{0.25, 0.75}
	probs, err := meanfield.VoterWinProbability(fracs)
	if err != nil {
		t.Fatal(err)
	}
	if probs[0] != 0.25 || probs[1] != 0.75 {
		t.Fatalf("probs = %v", probs)
	}
	// This is exactly what the voter simulation measured in its own test
	// (TestVoterWinProbabilityProportional): ~25% wins for 25% support.
}
