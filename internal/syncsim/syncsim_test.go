package syncsim

import (
	"errors"
	"testing"

	"plurality/internal/population"
)

func TestRunStopsWhenDone(t *testing.T) {
	res, err := Run(100, func(r int) (bool, error) {
		return r == 4, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done || res.Rounds != 5 {
		t.Fatalf("res = %+v, want done after 5 rounds", res)
	}
}

func TestRunRoundLimit(t *testing.T) {
	res, err := Run(3, func(int) (bool, error) { return false, nil })
	if !errors.Is(err, ErrRoundLimit) {
		t.Fatalf("err = %v, want ErrRoundLimit", err)
	}
	if res.Done || res.Rounds != 3 {
		t.Fatalf("res = %+v", res)
	}
}

func TestRunPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	res, err := Run(10, func(r int) (bool, error) {
		if r == 2 {
			return false, boom
		}
		return false, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if res.Rounds != 3 {
		t.Fatalf("rounds = %d, want 3", res.Rounds)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(0, func(int) (bool, error) { return true, nil }); err == nil {
		t.Error("maxRounds=0 should fail")
	}
}

func TestBufferFreshCommitIsNoop(t *testing.T) {
	pop, err := population.FromCounts([]int64{3, 2})
	if err != nil {
		t.Fatal(err)
	}
	b := NewBuffer(pop)
	if changed := b.Commit(pop); changed != 0 {
		t.Fatalf("fresh buffer commit changed %d nodes", changed)
	}
	if pop.Count(0) != 3 || pop.Count(1) != 2 {
		t.Fatalf("counts disturbed: %v", pop.Counts())
	}
}

func TestBufferStageAndCommit(t *testing.T) {
	pop, err := population.FromCounts([]int64{3, 2})
	if err != nil {
		t.Fatal(err)
	}
	b := NewBuffer(pop)
	b.Stage(0, 1)  // change
	b.Stage(3, 1)  // already color 1 (nodes 3,4 hold color 1)
	b.StageKeep(1) // explicit keep
	changed := b.Commit(pop)
	if changed != 1 {
		t.Fatalf("changed = %d, want 1", changed)
	}
	if pop.Count(0) != 2 || pop.Count(1) != 3 {
		t.Fatalf("counts = %v", pop.Counts())
	}
}

func TestBufferSimultaneity(t *testing.T) {
	// A "swap all colors" round must read the frozen configuration: stage
	// everything first, commit once.
	pop, err := population.FromCounts([]int64{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	b := NewBuffer(pop)
	for u := 0; u < pop.N(); u++ {
		if pop.ColorOf(u) == 0 {
			b.Stage(u, 1)
		} else {
			b.Stage(u, 0)
		}
	}
	if changed := b.Commit(pop); changed != 4 {
		t.Fatalf("changed = %d, want 4", changed)
	}
	if pop.Count(0) != 2 || pop.Count(1) != 2 {
		t.Fatalf("swap distorted counts: %v", pop.Counts())
	}
}

func TestBufferResetDropsStagedUpdates(t *testing.T) {
	pop, err := population.FromCounts([]int64{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	b := NewBuffer(pop)
	b.Stage(0, 1)
	b.Reset()
	if changed := b.Commit(pop); changed != 0 {
		t.Fatalf("reset did not drop staged update: changed = %d", changed)
	}
}

func TestBufferReusableAcrossRounds(t *testing.T) {
	pop, err := population.FromCounts([]int64{4, 0})
	if err != nil {
		t.Fatal(err)
	}
	b := NewBuffer(pop)
	for round := 0; round < 4; round++ {
		b.Stage(round, 1)
		if changed := b.Commit(pop); changed != 1 {
			t.Fatalf("round %d: changed = %d, want 1", round, changed)
		}
	}
	if !pop.ConsensusOn(1) {
		t.Fatalf("counts = %v, want consensus on 1", pop.Counts())
	}
}
