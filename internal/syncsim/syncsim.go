// Package syncsim is the substrate for the paper's synchronous model
// (Theorems 1.1 and 1.2): protocols operate in discrete rounds, every node
// samples the *current* configuration, and all updates are applied
// simultaneously at the round boundary.
//
// The package provides the round loop and the double-buffered commit that
// guarantees simultaneity; protocols supply the per-node update rule.
package syncsim

import (
	"errors"
	"fmt"

	"plurality/internal/population"
)

// ErrRoundLimit reports that a protocol did not finish within the round
// budget.
var ErrRoundLimit = errors.New("syncsim: round limit exceeded")

// ErrStopped reports a run interrupted by its stop hook (context
// cancellation at the public layer) before completing.
var ErrStopped = errors.New("syncsim: run stopped")

// Result describes a completed synchronous run.
type Result struct {
	// Rounds is the number of rounds executed.
	Rounds int
	// Done reports whether the protocol signalled completion (as opposed
	// to exhausting the round budget).
	Done bool
}

// Run executes round(r) for r = 0, 1, … until it reports done or maxRounds
// is reached. A run that exhausts the budget returns ErrRoundLimit alongside
// the partial result so callers can still inspect progress.
func Run(maxRounds int, round func(r int) (done bool, err error)) (Result, error) {
	return RunStop(maxRounds, nil, round)
}

// RunStop is Run with an interruption hook: when stop is non-nil it is
// polled before every round, and a true return abandons the run with
// ErrStopped alongside the rounds completed so far. The round boundary is
// the natural interruption granularity of the synchronous model — a
// committed round is never torn apart.
func RunStop(maxRounds int, stop func() bool, round func(r int) (done bool, err error)) (Result, error) {
	if maxRounds <= 0 {
		return Result{}, fmt.Errorf("syncsim: maxRounds = %d, want > 0", maxRounds)
	}
	for r := 0; r < maxRounds; r++ {
		if stop != nil && stop() {
			return Result{Rounds: r}, ErrStopped
		}
		done, err := round(r)
		if err != nil {
			return Result{Rounds: r + 1}, err
		}
		if done {
			return Result{Rounds: r + 1, Done: true}, nil
		}
	}
	return Result{Rounds: maxRounds}, ErrRoundLimit
}

// Buffer is a reusable next-color buffer implementing the simultaneous
// update of the synchronous model: a round computes every node's next color
// against the frozen current population, then Commit applies them all.
type Buffer struct {
	next []population.Color
}

// NewBuffer returns a Buffer sized for pop with every node staged as
// unchanged.
func NewBuffer(pop *population.Population) *Buffer {
	b := &Buffer{}
	b.Fit(pop.N())
	return b
}

// Fit resizes the buffer to n nodes, reusing the backing array when its
// capacity suffices, and resets every node to "keep". It lets trial loops
// pool one Buffer across runs instead of allocating an O(n) slice per run.
func (b *Buffer) Fit(n int) {
	if cap(b.next) < n {
		b.next = make([]population.Color, n)
	}
	b.next = b.next[:n]
	b.Reset()
}

// Stage records node u's next color. Staging population.None means
// "keep the current color".
func (b *Buffer) Stage(u int, c population.Color) { b.next[u] = c }

// StageKeep marks node u as unchanged this round.
func (b *Buffer) StageKeep(u int) { b.next[u] = population.None }

// Slice exposes the staging slice directly (index u holds node u's staged
// color, population.None meaning "keep"). Hot round loops write through it
// to avoid a method call per node; the slice is valid until the next Commit
// or Reset.
func (b *Buffer) Slice() []population.Color { return b.next }

// Commit applies all staged colors to pop and resets the buffer for the
// next round, treating a staged population.None as "keep the current
// color" (the sparse-staging convention: only changed nodes need staging).
// It returns the number of nodes that changed color.
//
// Commit is only correct for rules without an undecided state: it can
// never move a node to None. A runner whose rule treats None as "go
// undecided" (Undecided-State Dynamics) must stage every node and use
// CommitAll instead — picking Commit there would silently turn every
// go-undecided decision into a keep.
func (b *Buffer) Commit(pop *population.Population) int {
	changed := 0
	for u, c := range b.next {
		if c == population.None {
			continue
		}
		if pop.ColorOf(u) != c {
			pop.SetColor(u, c)
			changed++
		}
		b.next[u] = population.None
	}
	return changed
}

// CommitAll applies every staged color literally: population.None commits
// the node to the *undecided* state (see population.SetColor) instead of
// meaning "keep". Used by rules with an undecided state, such as
// Undecided-State Dynamics, whose rounds stage every node explicitly. It
// returns the number of nodes that changed state.
func (b *Buffer) CommitAll(pop *population.Population) int {
	changed := 0
	for u, c := range b.next {
		if pop.ColorOf(u) != c {
			pop.SetColor(u, c)
			changed++
		}
		b.next[u] = population.None
	}
	return changed
}

// Reset clears all staged updates without applying them.
func (b *Buffer) Reset() {
	for i := range b.next {
		b.next[i] = population.None
	}
}
