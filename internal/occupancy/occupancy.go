// Package occupancy is the count-collapsed execution engine for memoryless
// sampling dynamics on the complete graph. On the clique these processes
// are fully exchangeable: which node holds which color is irrelevant, the
// configuration *is* the color histogram. The engine therefore simulates
// the k-dimensional occupancy (urn) process directly — O(k) memory instead
// of O(n), which is what lets exact simulations reach n = 10⁸–10⁹ — the
// same collapse that lets Becchetti et al. ("Plurality Consensus in the
// Gossip Model") and Bankhamer et al. ("Positive Aging Admits Fast
// Asynchronous Plurality Consensus") analyze these dynamics as urn chains.
//
// # Exactness
//
// The collapse is exact, not an approximation: under both asynchronous
// models every activation hits a uniformly random node (for the Poisson
// engines this follows from the memorylessness of exponential clocks), so
// the activated node's color is distributed by the histogram and the
// histogram evolves as a lumped Markov chain. The engine reproduces the
// per-node engines' distributions of consensus time, tick counts and
// winners — gated by the KS/chi-square equivalence tests in this package —
// while consuming the RNG differently, so fixed-seed trajectories differ
// between engines the way the Poisson and HeapPoisson schedulers differ.
//
// # Leap mode
//
// Rules that expose their count-level transition law (Kerneled: Voter,
// Two-Choices, 3-Majority) run transition by transition instead of tick by
// tick. Most activations are no-ops — Two-Choices near consensus changes
// the histogram once in Θ(n) ticks — and the time to the next *effective*
// activation is geometric in the per-tick effective probability p, so the
// engine draws the skip length in O(1) instead of walking the no-ops. The
// trick that keeps this exact end to end is that the *which tick is
// effective* process is independent of the *when do ticks happen* process:
// tick times are materialized lazily from Poisson order statistics (the
// tick budget inside MaxTime is one Poisson(n·rate·MaxTime) draw, the time
// of the m-th tick given the budget is a Beta order statistic; the
// sequential model's grid m/n is deterministic), costing O(1) RNG work per
// run rather than per tick.
//
// # Tick mode
//
// Rules without a kernel, churn injection, and the HeapPoisson reference
// scheduler run activation by activation: the activated node's color and
// the neighbor samples are drawn from the cumulative histogram in O(k),
// still O(k) memory, with tick times consumed from the scheduler.
package occupancy

import (
	"errors"
	"fmt"
	"math"

	"plurality/internal/population"
	"plurality/internal/rng"
	"plurality/internal/sched"
)

// Rule is the sampling dynamic the engine executes; it is structurally
// identical to dynamics.Rule (redeclared here so the dynamics package can
// depend on this one without a cycle).
type Rule interface {
	// Name identifies the rule in traces and errors.
	Name() string
	// SampleCount is the number of neighbor samples per activation.
	SampleCount() int
	// Next returns the node's next color given its own color and the
	// sampled colors; population.None keeps the own color.
	Next(r *rng.RNG, own population.Color, sampled []population.Color) population.Color
}

// ErrTimeLimit reports a run that did not reach consensus within MaxTime.
var ErrTimeLimit = errors.New("occupancy: time limit exceeded")

// Config configures a count-collapsed run.
type Config struct {
	// WithSelf selects the clique sampling mode: true draws neighbors from
	// all n nodes including the activated one (graph.Complete.WithSelf).
	WithSelf bool
	// Scheduler supplies the asynchronous time model. Leap mode reads only
	// its type and parameters (*sched.Sequential grid or *sched.Poisson
	// rate); tick mode consumes its tick stream. Required; its node count
	// must equal the histogram total.
	Scheduler sched.Scheduler
	// Rand drives all engine sampling. Required.
	Rand *rng.RNG
	// MaxTime bounds the run in parallel time. Required (> 0).
	MaxTime float64
	// Churn is the per-activation probability of a churn event (the node
	// is replaced by a fresh joiner with a uniformly random opinion).
	// Churn > 0 forces tick mode.
	Churn float64
	// ForceTick disables the leap fast path, used by the equivalence tests
	// to compare the two modes.
	ForceTick bool
}

// Result describes a completed count-collapsed run; it mirrors
// dynamics.AsyncResult.
type Result struct {
	// Time is the parallel time of the tick that completed consensus (or
	// of the last tick inside the budget).
	Time float64
	// Ticks is the number of activations delivered, skipped no-ops
	// included.
	Ticks int64
	// Done reports whether consensus was reached within MaxTime.
	Done bool
	// Winner is the consensus color if Done, else the current plurality.
	Winner population.Color
	// Churns is the number of churn events.
	Churns int64
}

// Run executes rule on the histogram until one color holds everything or
// MaxTime elapses. counts is mutated in place to the final histogram.
func Run(counts []int64, rule Rule, cfg Config) (Result, error) {
	var rn Runner
	return rn.Run(counts, rule, cfg)
}

// Runner reuses the engine's small scratch buffers across runs so trial
// loops are allocation-free. Not safe for concurrent use.
type Runner struct {
	sampled []population.Color
	times   []float64
	ticks   []sched.Tick
}

// Run is Runner's buffer-reusing equivalent of the package-level Run.
func (rn *Runner) Run(counts []int64, rule Rule, cfg Config) (Result, error) {
	n, err := validate(counts, rule, cfg)
	if err != nil {
		return Result{}, err
	}
	for c, v := range counts {
		if v == n {
			return Result{Done: true, Winner: population.Color(c)}, nil
		}
	}
	if !cfg.ForceTick && cfg.Churn == 0 {
		if kr, ok := rule.(Kerneled); ok {
			switch s := cfg.Scheduler.(type) {
			case *sched.Sequential:
				if budget, ok := sequentialBudget(cfg.MaxTime, n); ok {
					return runLeap(counts, kr.OccupancyKernel(), cfg, n, budget, true)
				}
			case *sched.Poisson:
				if lambda := float64(n) * s.Rate() * cfg.MaxTime; lambda < maxLeapBudget {
					budget := cfg.Rand.PoissonInt64(lambda)
					return runLeap(counts, kr.OccupancyKernel(), cfg, n, budget, false)
				}
			}
		}
	}
	return rn.runTick(counts, rule, cfg, n)
}

// maxLeapBudget bounds the tick budget leap mode will materialize as an
// int64 count. An effectively-unbounded MaxTime (n·rate·MaxTime beyond
// ~4.6e18 ticks) would overflow the counters, so such runs fall back to
// tick mode, which compares times instead of counting a budget — the same
// semantics the per-node engine has always had.
const maxLeapBudget = 1 << 62

func validate(counts []int64, rule Rule, cfg Config) (int64, error) {
	if rule == nil {
		return 0, errors.New("occupancy: nil rule")
	}
	if cfg.Scheduler == nil {
		return 0, errors.New("occupancy: nil scheduler")
	}
	if cfg.Rand == nil {
		return 0, errors.New("occupancy: nil rand")
	}
	if cfg.MaxTime <= 0 {
		return 0, fmt.Errorf("occupancy: MaxTime = %v, want > 0", cfg.MaxTime)
	}
	if cfg.Churn < 0 || cfg.Churn >= 1 {
		return 0, fmt.Errorf("occupancy: Churn = %v, want [0, 1)", cfg.Churn)
	}
	if rule.SampleCount() <= 0 {
		return 0, fmt.Errorf("occupancy: rule %s samples %d nodes, want > 0", rule.Name(), rule.SampleCount())
	}
	if len(counts) == 0 {
		return 0, errors.New("occupancy: empty histogram")
	}
	var n int64
	for c, v := range counts {
		if v < 0 {
			return 0, fmt.Errorf("occupancy: negative count %d for color %d", v, c)
		}
		n += v
	}
	if n < 2 {
		return 0, fmt.Errorf("occupancy: histogram total %d, want >= 2", n)
	}
	if int64(cfg.Scheduler.N()) != n {
		return 0, fmt.Errorf("occupancy: scheduler has %d nodes, histogram %d", cfg.Scheduler.N(), n)
	}
	return n, nil
}

// plurality returns the index of the largest count (lowest index on ties),
// matching population.Population.Plurality.
func plurality(counts []int64) population.Color {
	best := 0
	for c := 1; c < len(counts); c++ {
		if counts[c] > counts[best] {
			best = c
		}
	}
	return population.Color(best)
}

// --- leap mode -----------------------------------------------------------

// sequentialBudget returns the number of sequential-model ticks whose time
// m/n lies inside the MaxTime budget, matching the per-node engines' "stop
// at the first tick with Time > MaxTime" rule bit for bit (the comparison
// is carried out in the same float64 arithmetic). ok is false when the
// budget would overflow the int64 tick counters (the caller then falls
// back to tick mode).
func sequentialBudget(maxTime float64, n int64) (budget int64, ok bool) {
	nf := float64(n)
	if maxTime*nf >= maxLeapBudget {
		return 0, false
	}
	m := int64(maxTime * nf)
	for m > 0 && float64(m)/nf > maxTime {
		m--
	}
	for float64(m+1)/nf <= maxTime {
		m++
	}
	return m + 1, true // ticks are indexed from 0
}

// leapTimeAt materializes the parallel time of the m-th delivered tick
// (1-based), given the total tick budget inside MaxTime. Sequential ticks
// sit on the deterministic grid (m−1)/n. Poisson ticks are the arrival
// times of a rate-n·rate process: conditioned on budget arrivals in
// [0, MaxTime] they are sorted uniforms, so the m-th is a Beta(m,
// budget−m+1) order statistic — one O(1) draw instead of m exponential
// gaps.
func leapTimeAt(r *rng.RNG, m, budget, n int64, maxTime float64, sequential bool) float64 {
	if m <= 0 {
		return 0
	}
	if sequential {
		return float64(m-1) / float64(n)
	}
	ga := r.GammaFloat64(float64(m))
	gb := r.GammaFloat64(float64(budget-m) + 1)
	return maxTime * (ga / (ga + gb))
}

// runLeap executes the jump chain of the occupancy process: per iteration
// one geometric skip over the no-op activations and one kernel-sampled
// histogram transition. counts is mutated in place.
func runLeap(counts []int64, kern Kernel, cfg Config, n, budget int64, sequential bool) (Result, error) {
	r := cfg.Rand
	var ticks int64
	var res Result
	for {
		remaining := budget - ticks
		if remaining <= 0 {
			break
		}
		p := kern.EffectiveProb(counts, n, cfg.WithSelf)
		if !(p > 0) {
			// No transition can ever fire again (defensively guarded;
			// off-consensus histograms of the built-in kernels always
			// have p > 0): the rest of the budget is no-ops.
			break
		}
		var g int64
		if p >= 1 {
			g = 1
		} else {
			// Geometric(p) skip: the index offset of the next effective
			// activation. Computed in float64 so a microscopic p yields
			// +Inf and lands in the timeout branch instead of
			// overflowing.
			u := 1 - r.Float64() // (0, 1]
			gf := math.Floor(math.Log(u)/math.Log1p(-p)) + 1
			if !(gf >= 1) {
				gf = 1
			}
			if gf > float64(remaining) {
				break
			}
			g = int64(gf)
			if g > remaining {
				break
			}
		}
		ticks += g
		from, to := kern.SampleTransition(r, counts, n, cfg.WithSelf)
		if from == to {
			continue
		}
		counts[from]--
		counts[to]++
		if counts[to] == n {
			res.Done = true
			res.Winner = population.Color(to)
			res.Ticks = ticks
			res.Time = leapTimeAt(r, ticks, budget, n, cfg.MaxTime, sequential)
			return res, nil
		}
	}
	res.Ticks = budget
	res.Time = leapTimeAt(r, budget, budget, n, cfg.MaxTime, sequential)
	res.Winner = plurality(counts)
	return res, ErrTimeLimit
}

// --- tick mode -----------------------------------------------------------

// tickRun is the per-activation count-collapsed engine state.
type tickRun struct {
	counts   []int64
	n        int64
	k        int
	s        int
	withSelf bool
	churning bool
	churn    float64
	r        *rng.RNG
	rule     Rule
	sampled  []population.Color
	res      Result
	done     bool
}

// pick draws a color from the cumulative histogram over total nodes,
// with one node of color deduct excluded (population.None excludes
// nothing); this is exactly the law of a uniform draw over the clique
// neighborhood.
func (tr *tickRun) pick(total int64, deduct population.Color) population.Color {
	x := int64(tr.r.Uint64n(uint64(total)))
	for c, v := range tr.counts {
		if population.Color(c) == deduct {
			v--
		}
		if x < v {
			return population.Color(c)
		}
		x -= v
	}
	return population.Color(tr.k - 1)
}

// step executes one activation on the histogram.
func (tr *tickRun) step() {
	if tr.churning && tr.r.Bernoulli(tr.churn) {
		// Churn: the activated node (color ~ histogram) is replaced by a
		// fresh joiner with a uniformly random opinion.
		victim := tr.pick(tr.n, population.None)
		fresh := population.Color(tr.r.Intn(tr.k))
		tr.res.Churns++
		if fresh != victim {
			tr.counts[victim]--
			tr.counts[fresh]++
			if tr.counts[fresh] == tr.n {
				tr.done = true
				tr.res.Winner = fresh
			}
		}
		return
	}
	own := tr.pick(tr.n, population.None)
	for i := 0; i < tr.s; i++ {
		if tr.withSelf {
			tr.sampled[i] = tr.pick(tr.n, population.None)
		} else {
			tr.sampled[i] = tr.pick(tr.n-1, own)
		}
	}
	next := tr.rule.Next(tr.r, own, tr.sampled)
	if next != population.None && next != own {
		tr.counts[own]--
		tr.counts[next]++
		if tr.counts[next] == tr.n {
			tr.done = true
			tr.res.Winner = next
		}
	}
}

// runTick executes the activation-by-activation engine, consuming tick
// times from the scheduler in batches.
func (rn *Runner) runTick(counts []int64, rule Rule, cfg Config, n int64) (Result, error) {
	s := rule.SampleCount()
	if cap(rn.sampled) < s {
		rn.sampled = make([]population.Color, s)
	}
	tr := tickRun{
		counts:   counts,
		n:        n,
		k:        len(counts),
		s:        s,
		withSelf: cfg.WithSelf,
		churning: cfg.Churn > 0,
		churn:    cfg.Churn,
		r:        cfg.Rand,
		rule:     rule,
		sampled:  rn.sampled[:s],
	}
	var (
		ticks int64
		last  float64
	)
	finish := func(timedOut bool) (Result, error) {
		tr.res.Ticks = ticks
		tr.res.Time = last
		if tr.done {
			tr.res.Done = true
			return tr.res, nil
		}
		tr.res.Winner = plurality(counts)
		if timedOut {
			return tr.res, ErrTimeLimit
		}
		return tr.res, nil
	}

	switch sc := cfg.Scheduler.(type) {
	case sched.TimeScheduler:
		if cap(rn.times) < sched.BatchSize {
			rn.times = make([]float64, sched.BatchSize)
		}
		buf := rn.times[:sched.BatchSize]
		for {
			sc.NextTimes(buf)
			for _, now := range buf {
				if now > cfg.MaxTime {
					return finish(true)
				}
				ticks++
				last = now
				tr.step()
				if tr.done {
					return finish(false)
				}
			}
		}
	case sched.BatchScheduler:
		if cap(rn.ticks) < sched.BatchSize {
			rn.ticks = make([]sched.Tick, sched.BatchSize)
		}
		buf := rn.ticks[:sched.BatchSize]
		for {
			sc.NextBatch(buf)
			for _, t := range buf {
				if t.Time > cfg.MaxTime {
					return finish(true)
				}
				ticks++
				last = t.Time
				tr.step()
				if tr.done {
					return finish(false)
				}
			}
		}
	default:
		for {
			t := cfg.Scheduler.Next()
			if t.Time > cfg.MaxTime {
				return finish(true)
			}
			ticks++
			last = t.Time
			tr.step()
			if tr.done {
				return finish(false)
			}
		}
	}
}
