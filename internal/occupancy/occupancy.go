// Package occupancy is the count-collapsed execution engine for memoryless
// sampling dynamics on the complete graph. On the clique these processes
// are fully exchangeable: which node holds which color is irrelevant, the
// configuration *is* the color histogram. The engine therefore simulates
// the k-dimensional occupancy (urn) process directly — O(k) memory instead
// of O(n), which is what lets exact simulations reach n = 10⁸–10⁹ — the
// same collapse that lets Becchetti et al. ("Plurality Consensus in the
// Gossip Model") and Bankhamer et al. ("Positive Aging Admits Fast
// Asynchronous Plurality Consensus") analyze these dynamics as urn chains.
//
// # Exactness
//
// The collapse is exact, not an approximation: under both asynchronous
// models every activation hits a uniformly random node (for the Poisson
// engines this follows from the memorylessness of exponential clocks), so
// the activated node's color is distributed by the histogram and the
// histogram evolves as a lumped Markov chain. The engine reproduces the
// per-node engines' distributions of consensus time, tick counts and
// winners — gated by the KS/chi-square equivalence tests in this package —
// while consuming the RNG differently, so fixed-seed trajectories differ
// between engines the way the Poisson and HeapPoisson schedulers differ.
//
// # Leap mode
//
// Rules that expose their count-level transition law (Kerneled: Voter,
// Two-Choices, 3-Majority) run transition by transition instead of tick by
// tick. Most activations are no-ops — Two-Choices near consensus changes
// the histogram once in Θ(n) ticks — and the time to the next *effective*
// activation is geometric in the per-tick effective probability p, so the
// engine draws the skip length in O(1) instead of walking the no-ops. The
// trick that keeps this exact end to end is that the *which tick is
// effective* process is independent of the *when do ticks happen* process:
// tick times are materialized lazily from Poisson order statistics (the
// tick budget inside MaxTime is one Poisson(n·rate·MaxTime) draw, the time
// of the m-th tick given the budget is a Beta order statistic; the
// sequential model's grid m/n is deterministic), costing O(1) RNG work per
// run rather than per tick.
//
// # Tick mode
//
// Rules without a kernel, churn injection, and the HeapPoisson reference
// scheduler run activation by activation: the activated node's color and
// the neighbor samples are drawn from the cumulative histogram in O(k),
// still O(k) memory, with tick times consumed from the scheduler.
package occupancy

import (
	"errors"
	"fmt"
	"math"

	"plurality/internal/adversary"
	"plurality/internal/population"
	"plurality/internal/rng"
	"plurality/internal/sched"
)

// Rule is the sampling dynamic the engine executes; it is structurally
// identical to dynamics.Rule (redeclared here so the dynamics package can
// depend on this one without a cycle).
type Rule interface {
	// Name identifies the rule in traces and errors.
	Name() string
	// SampleCount is the number of neighbor samples per activation.
	SampleCount() int
	// Next returns the node's next color given its own color and the
	// sampled colors. Histogram buckets are the only valid colors here: a
	// rule whose per-node form returns population.None (go undecided) must
	// implement Undecided so the engine can give that state a bucket — a
	// None returned to the engine itself is a contract violation the tick
	// mode fails loudly on, because silently mapping it to "keep" would
	// diverge from the per-node engines' go-undecided semantics.
	Next(r *rng.RNG, own population.Color, sampled []population.Color) population.Color
}

// Undecided is implemented by rules with an undecided (population.None)
// state, such as Undecided-State Dynamics. A histogram cannot store None,
// so the engine appends one hidden bucket for the undecided holders and
// executes the histogram-convention rule returned by UndecidedRule, in
// which bucket k (the last) plays the undecided state. Plurality and
// winners are evaluated over the k opinion buckets only; the final
// undecided count is reported in Result.Undecided.
type Undecided interface {
	// UndecidedRule returns the rule over k+1 histogram buckets that is
	// distributionally identical to the per-node rule over k colors plus
	// None.
	UndecidedRule(k int) Rule
}

// ErrTimeLimit reports a run that did not reach consensus within MaxTime.
var ErrTimeLimit = errors.New("occupancy: time limit exceeded")

// ErrStopped reports a run interrupted by its Stop hook (context
// cancellation at the public layer) before consensus or MaxTime.
var ErrStopped = errors.New("occupancy: run stopped")

// Snapshot is one streamed observation of a running histogram, delivered to
// Config.OnObserve. Counts aliases engine-owned memory and is valid only
// for the duration of the callback; copy it to retain it.
type Snapshot struct {
	// Time is the parallel time of the activation that triggered the
	// snapshot.
	Time float64
	// Ticks is the number of activations delivered so far.
	Ticks int64
	// Counts is the current histogram over the opinion colors (hidden
	// buckets excluded).
	Counts []int64
	// Undecided is the current number of undecided (hidden-bucket) nodes;
	// 0 for rules without an undecided state.
	Undecided int64
}

// Config configures a count-collapsed run.
type Config struct {
	// WithSelf selects the clique sampling mode: true draws neighbors from
	// all n nodes including the activated one (graph.Complete.WithSelf).
	WithSelf bool
	// Scheduler supplies the asynchronous time model. Leap mode reads only
	// its type and parameters (*sched.Sequential grid or *sched.Poisson
	// rate); tick mode consumes its tick stream. Required; its node count
	// must equal the histogram total.
	Scheduler sched.Scheduler
	// Rand drives all engine sampling. Required.
	Rand *rng.RNG
	// MaxTime bounds the run in parallel time. Required (> 0).
	MaxTime float64
	// Churn is the per-activation probability of a churn event (the node
	// is replaced by a fresh joiner with a uniformly random opinion).
	// Churn > 0 forces tick mode.
	Churn float64
	// Undecided is the number of initially undecided (None-holding) nodes;
	// they occupy the hidden bucket the engine appends for rules
	// implementing the Undecided interface. Must be 0 for rules without an
	// undecided state.
	Undecided int64
	// ForceTick disables the leap fast path, used by the equivalence tests
	// to compare the two modes.
	ForceTick bool
	// Adversary, if non-nil, attacks the run: scheduling adversaries
	// redirect activations, corruption adversaries flip opinions at window
	// boundaries, Byzantine adversaries lie inside the sampling path. An
	// active adversary forces tick mode — corruption and biased sampling
	// break the exchangeability-preserving transition law the leap fast
	// path's geometric skips rely on. Per-node adversaries (delay-set) are
	// rejected: the histogram has no node identity to delay.
	Adversary *adversary.Adversary
	// Stop, if non-nil, is polled at a coarse stride (every batch in tick
	// mode, every stopCheckStride transitions in leap mode); returning true
	// abandons the run with ErrStopped and the progress made so far. The
	// hook must be cheap but need not be trivially so — it is never called
	// per activation.
	Stop func() bool
	// OnObserve, if set, streams periodic Snapshot observations every
	// ObserveInterval units of parallel time (an interval <= 0 observes
	// every activation). Observation needs materialized per-tick times, so
	// it forces tick mode — leap mode's lazily drawn order-statistic times
	// cannot be queried per transition without changing the RNG stream.
	ObserveInterval float64
	OnObserve       func(Snapshot)
}

// Result describes a completed count-collapsed run; it mirrors
// dynamics.AsyncResult.
type Result struct {
	// Time is the parallel time of the tick that completed consensus (or
	// of the last tick inside the budget).
	Time float64
	// Ticks is the number of activations delivered, skipped no-ops
	// included.
	Ticks int64
	// Done reports whether consensus was reached within MaxTime.
	Done bool
	// Winner is the consensus color if Done, else the current plurality
	// over the opinion colors (undecided nodes never win).
	Winner population.Color
	// Churns is the number of churn events.
	Churns int64
	// Undecided is the number of nodes left undecided when the run ended;
	// always 0 for rules without an undecided state.
	Undecided int64
	// Corruptions is the number of opinions the adversary rewrote:
	// corruption flips plus Byzantine lies.
	Corruptions int64
	// Biased is the number of activations the adversary redirected.
	Biased int64
}

// Run executes rule on the histogram until one color holds everything or
// MaxTime elapses. counts is mutated in place to the final histogram.
func Run(counts []int64, rule Rule, cfg Config) (Result, error) {
	var rn Runner
	return rn.Run(counts, rule, cfg)
}

// Runner reuses the engine's small scratch buffers across runs so trial
// loops are allocation-free. Not safe for concurrent use.
type Runner struct {
	sampled []population.Color
	times   []float64
	ticks   []sched.Tick
	hist    []int64
}

// Run is Runner's buffer-reusing equivalent of the package-level Run.
func (rn *Runner) Run(counts []int64, rule Rule, cfg Config) (Result, error) {
	if rule == nil {
		return Result{}, errors.New("occupancy: nil rule")
	}
	if ur, ok := rule.(Undecided); ok {
		return rn.runUndecided(counts, ur, cfg)
	}
	if cfg.Undecided != 0 {
		return Result{}, fmt.Errorf("occupancy: rule %s has no undecided state, but Undecided = %d", rule.Name(), cfg.Undecided)
	}
	return rn.exec(counts, rule, cfg, len(counts))
}

// runUndecided executes a rule with an undecided state: the k-color
// histogram gains one hidden bucket holding the undecided nodes, the run
// executes the histogram-convention rule on the extended histogram, and the
// opinion buckets are written back with the undecided count reported
// separately (winners and timeout pluralities never name the hidden
// bucket).
func (rn *Runner) runUndecided(counts []int64, ur Undecided, cfg Config) (Result, error) {
	if cfg.Undecided < 0 {
		return Result{}, fmt.Errorf("occupancy: Undecided = %d, want >= 0", cfg.Undecided)
	}
	var decided int64
	for _, v := range counts {
		decided += v
	}
	if decided <= 0 && cfg.Undecided > 0 {
		// All-undecided is an absorbing dead state: no node can ever seed
		// an opinion again, so the run could only burn its whole budget.
		return Result{}, errors.New("occupancy: undecided-state run needs at least one decided holder")
	}
	k := len(counts)
	if cap(rn.hist) < k+1 {
		rn.hist = make([]int64, k+1)
	}
	hist := rn.hist[:0]
	hist = append(hist, counts...)
	hist = append(hist, cfg.Undecided)
	res, err := rn.exec(hist, ur.UndecidedRule(k), cfg, k)
	copy(counts, hist[:k])
	res.Undecided = hist[k]
	if !res.Done {
		res.Winner = plurality(hist[:k])
	}
	return res, err
}

// exec is the engine core: counts may include hidden buckets beyond the
// colors opinion buckets (churn draws fresh opinions from the colors
// prefix only).
func (rn *Runner) exec(counts []int64, rule Rule, cfg Config, colors int) (Result, error) {
	n, err := validate(counts, rule, cfg)
	if err != nil {
		return Result{}, err
	}
	for c, v := range counts {
		if v == n {
			return Result{Done: true, Winner: population.Color(c)}, nil
		}
	}
	if !cfg.ForceTick && cfg.Churn == 0 && cfg.OnObserve == nil && cfg.Adversary == nil {
		if kr, ok := rule.(Kerneled); ok {
			switch s := cfg.Scheduler.(type) {
			case *sched.Sequential:
				if budget, ok := sequentialBudget(cfg.MaxTime, n); ok {
					return runLeap(counts, kr.OccupancyKernel(), cfg, n, budget, true)
				}
			case *sched.Poisson:
				if lambda := float64(n) * s.Rate() * cfg.MaxTime; lambda < maxLeapBudget {
					budget := cfg.Rand.PoissonInt64(lambda)
					return runLeap(counts, kr.OccupancyKernel(), cfg, n, budget, false)
				}
			}
		}
	}
	return rn.runTick(counts, rule, cfg, n, colors)
}

// maxLeapBudget bounds the tick budget leap mode will materialize as an
// int64 count. An effectively-unbounded MaxTime (n·rate·MaxTime beyond
// ~4.6e18 ticks) would overflow the counters, so such runs fall back to
// tick mode, which compares times instead of counting a budget — the same
// semantics the per-node engine has always had.
const maxLeapBudget = 1 << 62

func validate(counts []int64, rule Rule, cfg Config) (int64, error) {
	if rule == nil {
		return 0, errors.New("occupancy: nil rule")
	}
	if cfg.Scheduler == nil {
		return 0, errors.New("occupancy: nil scheduler")
	}
	if cfg.Rand == nil {
		return 0, errors.New("occupancy: nil rand")
	}
	if cfg.MaxTime <= 0 {
		return 0, fmt.Errorf("occupancy: MaxTime = %v, want > 0", cfg.MaxTime)
	}
	if cfg.Churn < 0 || cfg.Churn >= 1 {
		return 0, fmt.Errorf("occupancy: Churn = %v, want [0, 1)", cfg.Churn)
	}
	if rule.SampleCount() <= 0 {
		return 0, fmt.Errorf("occupancy: rule %s samples %d nodes, want > 0", rule.Name(), rule.SampleCount())
	}
	if len(counts) == 0 {
		return 0, errors.New("occupancy: empty histogram")
	}
	var n int64
	for c, v := range counts {
		if v < 0 {
			return 0, fmt.Errorf("occupancy: negative count %d for color %d", v, c)
		}
		n += v
	}
	if n < 2 {
		return 0, fmt.Errorf("occupancy: histogram total %d, want >= 2", n)
	}
	if int64(cfg.Scheduler.N()) != n {
		return 0, fmt.Errorf("occupancy: scheduler has %d nodes, histogram %d", cfg.Scheduler.N(), n)
	}
	if cfg.Adversary != nil && cfg.Adversary.Desc().PerNode {
		return 0, fmt.Errorf("occupancy: adversary %s needs node identity, which the count-collapsed engine does not track", cfg.Adversary.Desc().Name)
	}
	return n, nil
}

// plurality returns the index of the largest count (lowest index on ties),
// matching population.Population.Plurality.
func plurality(counts []int64) population.Color {
	best := 0
	for c := 1; c < len(counts); c++ {
		if counts[c] > counts[best] {
			best = c
		}
	}
	return population.Color(best)
}

// --- leap mode -----------------------------------------------------------

// sequentialBudget returns the number of sequential-model ticks whose time
// m/n lies inside the MaxTime budget, matching the per-node engines' "stop
// at the first tick with Time > MaxTime" rule bit for bit (the comparison
// is carried out in the same float64 arithmetic). ok is false when the
// budget would overflow the int64 tick counters (the caller then falls
// back to tick mode).
func sequentialBudget(maxTime float64, n int64) (budget int64, ok bool) {
	nf := float64(n)
	if maxTime*nf >= maxLeapBudget {
		return 0, false
	}
	m := int64(maxTime * nf)
	for m > 0 && float64(m)/nf > maxTime {
		m--
	}
	for float64(m+1)/nf <= maxTime {
		m++
	}
	return m + 1, true // ticks are indexed from 0
}

// leapTimeAt materializes the parallel time of the m-th delivered tick
// (1-based), given the total tick budget inside MaxTime. Sequential ticks
// sit on the deterministic grid (m−1)/n. Poisson ticks are the arrival
// times of a rate-n·rate process: conditioned on budget arrivals in
// [0, MaxTime] they are sorted uniforms, so the m-th is a Beta(m,
// budget−m+1) order statistic — one O(1) draw instead of m exponential
// gaps.
func leapTimeAt(r *rng.RNG, m, budget, n int64, maxTime float64, sequential bool) float64 {
	if m <= 0 {
		return 0
	}
	if sequential {
		return float64(m-1) / float64(n)
	}
	ga := r.GammaFloat64(float64(m))
	gb := r.GammaFloat64(float64(budget-m) + 1)
	return maxTime * (ga / (ga + gb))
}

// stopCheckStride is how many leap transitions (or non-batch ticks) pass
// between Stop polls: coarse enough that the poll never shows up in the hot
// loop, fine enough that cancellation lands within microseconds.
const stopCheckStride = 1024

// runLeap executes the jump chain of the occupancy process: per iteration
// one geometric skip over the no-op activations and one kernel-sampled
// histogram transition. counts is mutated in place.
func runLeap(counts []int64, kern Kernel, cfg Config, n, budget int64, sequential bool) (Result, error) {
	r := cfg.Rand
	var ticks int64
	var res Result
	stopCheck := 0
	for {
		if cfg.Stop != nil {
			if stopCheck--; stopCheck <= 0 {
				stopCheck = stopCheckStride
				if cfg.Stop() {
					res.Ticks = ticks
					res.Time = leapTimeAt(r, ticks, budget, n, cfg.MaxTime, sequential)
					res.Winner = plurality(counts)
					return res, ErrStopped
				}
			}
		}
		remaining := budget - ticks
		if remaining <= 0 {
			break
		}
		p := kern.EffectiveProb(counts, n, cfg.WithSelf)
		if !(p > 0) {
			// No transition can ever fire again (defensively guarded;
			// off-consensus histograms of the built-in kernels always
			// have p > 0): the rest of the budget is no-ops.
			break
		}
		var g int64
		if p >= 1 {
			g = 1
		} else {
			// Geometric(p) skip: the index offset of the next effective
			// activation. Computed in float64 so a microscopic p yields
			// +Inf and lands in the timeout branch instead of
			// overflowing.
			u := 1 - r.Float64() // (0, 1]
			gf := math.Floor(math.Log(u)/math.Log1p(-p)) + 1
			if !(gf >= 1) {
				gf = 1
			}
			if gf > float64(remaining) {
				break
			}
			g = int64(gf)
			if g > remaining {
				break
			}
		}
		ticks += g
		from, to := kern.SampleTransition(r, counts, n, cfg.WithSelf)
		if from == to {
			continue
		}
		counts[from]--
		counts[to]++
		if counts[to] == n {
			res.Done = true
			res.Winner = population.Color(to)
			res.Ticks = ticks
			res.Time = leapTimeAt(r, ticks, budget, n, cfg.MaxTime, sequential)
			return res, nil
		}
	}
	res.Ticks = budget
	res.Time = leapTimeAt(r, budget, budget, n, cfg.MaxTime, sequential)
	res.Winner = plurality(counts)
	return res, ErrTimeLimit
}

// --- tick mode -----------------------------------------------------------

// tickRun is the per-activation count-collapsed engine state. k is the
// number of histogram buckets; colors is the number of opinion colors
// (fewer than k when a hidden undecided bucket is appended) — churn's
// fresh joiners draw their opinion from the colors prefix only.
type tickRun struct {
	counts   []int64
	n        int64
	k        int
	colors   int
	s        int
	withSelf bool
	churning bool
	churn    float64
	r        *rng.RNG
	rule     Rule
	adv      *adversary.Adversary
	sampled  []population.Color
	res      Result
	done     bool
	badNone  bool

	// Streaming observation (Config.OnObserve): the next parallel time a
	// snapshot is due, starting at 0 so the first delivered activation is
	// always observed. lastEmit dedupes the guaranteed final snapshot
	// against a periodic one that already covered the closing tick; -1
	// means nothing was emitted yet, so even a run that ends before its
	// first activation closes the stream.
	observing   bool
	nextObserve float64
	observeGap  float64
	lastEmit    int64 // initialized to -1
	onObserve   func(Snapshot)
}

// emit delivers one Snapshot of the current histogram.
func (tr *tickRun) emit(now float64, ticks int64) {
	var und int64
	for _, v := range tr.counts[tr.colors:] {
		und += v
	}
	tr.lastEmit = ticks
	tr.onObserve(Snapshot{Time: now, Ticks: ticks, Counts: tr.counts[:tr.colors], Undecided: und})
}

// maybeObserve emits a Snapshot when the current activation crossed the
// next observation instant.
func (tr *tickRun) maybeObserve(now float64, ticks int64) {
	if !tr.observing || now < tr.nextObserve {
		return
	}
	tr.emit(now, ticks)
	tr.nextObserve = now + tr.observeGap
}

// finalObserve closes the stream with a snapshot of the state the run ended
// in (consensus, timeout or stop), unless the closing tick was already
// observed.
func (tr *tickRun) finalObserve(now float64, ticks int64) {
	if !tr.observing || tr.lastEmit == ticks {
		return
	}
	tr.emit(now, ticks)
}

// pick draws a color from the cumulative histogram over total nodes,
// with one node of color deduct excluded (population.None excludes
// nothing); this is exactly the law of a uniform draw over the clique
// neighborhood.
func (tr *tickRun) pick(total int64, deduct population.Color) population.Color {
	x := int64(tr.r.Uint64n(uint64(total)))
	for c, v := range tr.counts {
		if population.Color(c) == deduct {
			v--
		}
		if x < v {
			return population.Color(c)
		}
		x -= v
	}
	return population.Color(tr.k - 1)
}

// corrupt applies one corruption window's flips to the histogram when the
// activation at time now crossed a window boundary: up to the budget moves
// from the plurality opinion to the weakest surviving one. The move is
// gap-capped, so it can never complete a consensus itself.
func (tr *tickRun) corrupt(now float64) {
	if !tr.adv.CorruptionDue(now) {
		return
	}
	from, to, x := tr.adv.PlanFlips(tr.counts[:tr.colors], now)
	if x <= 0 {
		return
	}
	tr.counts[from] -= x
	tr.counts[to] += x
	tr.adv.NoteCorruptions(x)
}

// step executes one activation on the histogram at parallel time now.
func (tr *tickRun) step(now float64) {
	if tr.adv != nil {
		tr.corrupt(now)
	}
	if tr.churning && tr.r.Bernoulli(tr.churn) {
		// Churn: the activated node (color ~ histogram) is replaced by a
		// fresh joiner with a uniformly random opinion.
		victim := tr.pick(tr.n, population.None)
		fresh := population.Color(tr.r.Intn(tr.colors))
		tr.res.Churns++
		if fresh != victim {
			tr.counts[victim]--
			tr.counts[fresh]++
			if tr.counts[fresh] == tr.n {
				tr.done = true
				tr.res.Winner = fresh
			}
		}
		return
	}
	var own population.Color
	biased := false
	if tr.adv != nil {
		// Scheduling bias: the adversary redirects this activation onto a
		// node holding its (possibly lagged) minority pick, provided the
		// opinion is still alive in the live histogram.
		if c, ok := tr.adv.BiasColor(tr.counts[:tr.colors], now); ok && tr.counts[c] > 0 {
			own = c
			biased = true
			tr.adv.NoteBias()
		}
	}
	if !biased {
		own = tr.pick(tr.n, population.None)
	}
	for i := 0; i < tr.s; i++ {
		if tr.withSelf {
			tr.sampled[i] = tr.pick(tr.n, population.None)
		} else {
			tr.sampled[i] = tr.pick(tr.n-1, own)
		}
		if tr.adv != nil {
			// Byzantine sampling: with probability budget/n the sampled
			// node lies, reporting the minority opinion instead.
			if lie, ok := tr.adv.Lie(tr.counts[:tr.colors], tr.n, now); ok {
				tr.sampled[i] = lie
			}
		}
	}
	next := tr.rule.Next(tr.r, own, tr.sampled)
	if next == population.None {
		// See Rule: only a rule with an undeclared undecided state emits
		// None here; mapping it to "keep" would silently diverge from the
		// per-node engines.
		tr.badNone = true
		return
	}
	if next != own {
		tr.counts[own]--
		tr.counts[next]++
		if tr.counts[next] == tr.n {
			tr.done = true
			tr.res.Winner = next
		}
	}
}

// badNoneErr reports a rule that returned population.None to the
// histogram engine — an undecided state it never declared via Undecided.
func badNoneErr(rule Rule) error {
	return fmt.Errorf("occupancy: rule %s returned population.None; rules with an undecided state must implement occupancy.Undecided", rule.Name())
}

// runTick executes the activation-by-activation engine, consuming tick
// times from the scheduler in batches.
func (rn *Runner) runTick(counts []int64, rule Rule, cfg Config, n int64, colors int) (Result, error) {
	s := rule.SampleCount()
	if cap(rn.sampled) < s {
		rn.sampled = make([]population.Color, s)
	}
	tr := tickRun{
		counts:     counts,
		n:          n,
		k:          len(counts),
		colors:     colors,
		s:          s,
		withSelf:   cfg.WithSelf,
		churning:   cfg.Churn > 0,
		churn:      cfg.Churn,
		r:          cfg.Rand,
		rule:       rule,
		adv:        cfg.Adversary,
		sampled:    rn.sampled[:s],
		observing:  cfg.OnObserve != nil,
		observeGap: cfg.ObserveInterval,
		lastEmit:   -1,
		onObserve:  cfg.OnObserve,
	}
	var (
		ticks int64
		last  float64
	)
	finish := func(err error) (Result, error) {
		tr.res.Ticks = ticks
		tr.res.Time = last
		if tr.adv != nil {
			// Adversary counters survive every exit path — consensus,
			// timeout and cancellation alike, matching Churns.
			tr.res.Corruptions = tr.adv.Corruptions()
			tr.res.Biased = tr.adv.Biased()
		}
		tr.finalObserve(last, ticks)
		if tr.done {
			tr.res.Done = true
			return tr.res, nil
		}
		tr.res.Winner = plurality(counts)
		return tr.res, err
	}

	switch sc := cfg.Scheduler.(type) {
	case sched.TimeScheduler:
		if cap(rn.times) < sched.BatchSize {
			rn.times = make([]float64, sched.BatchSize)
		}
		buf := rn.times[:sched.BatchSize]
		for {
			if cfg.Stop != nil && cfg.Stop() {
				return finish(ErrStopped)
			}
			sc.NextTimes(buf)
			for _, now := range buf {
				if now > cfg.MaxTime {
					return finish(ErrTimeLimit)
				}
				ticks++
				last = now
				tr.step(now)
				if tr.badNone {
					return Result{}, badNoneErr(rule)
				}
				tr.maybeObserve(now, ticks)
				if tr.done {
					return finish(nil)
				}
			}
		}
	case sched.BatchScheduler:
		if cap(rn.ticks) < sched.BatchSize {
			rn.ticks = make([]sched.Tick, sched.BatchSize)
		}
		buf := rn.ticks[:sched.BatchSize]
		for {
			if cfg.Stop != nil && cfg.Stop() {
				return finish(ErrStopped)
			}
			sc.NextBatch(buf)
			for _, t := range buf {
				if t.Time > cfg.MaxTime {
					return finish(ErrTimeLimit)
				}
				ticks++
				last = t.Time
				tr.step(t.Time)
				if tr.badNone {
					return Result{}, badNoneErr(rule)
				}
				tr.maybeObserve(t.Time, ticks)
				if tr.done {
					return finish(nil)
				}
			}
		}
	default:
		stopCheck := 0
		for {
			if cfg.Stop != nil {
				if stopCheck--; stopCheck <= 0 {
					stopCheck = stopCheckStride
					if cfg.Stop() {
						return finish(ErrStopped)
					}
				}
			}
			t := cfg.Scheduler.Next()
			if t.Time > cfg.MaxTime {
				return finish(ErrTimeLimit)
			}
			ticks++
			last = t.Time
			tr.step(t.Time)
			if tr.badNone {
				return Result{}, badNoneErr(rule)
			}
			tr.maybeObserve(t.Time, ticks)
			if tr.done {
				return finish(nil)
			}
		}
	}
}
