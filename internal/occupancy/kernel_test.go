package occupancy

import (
	"math"
	"testing"

	"plurality/internal/population"
	"plurality/internal/rng"
)

// ruleFor reconstructs the three built-in rules locally (the protocol
// packages import this one, so the tests rebuild the update functions
// instead of importing them; each mirrors its package's Next verbatim).
type testRule struct {
	name string
	s    int
	next func(own population.Color, sampled []population.Color) population.Color
	kern Kernel
}

func builtinRules() []testRule {
	return []testRule{
		{
			name: "two-choices", s: 2, kern: TwoChoicesKernel{},
			next: func(own population.Color, sampled []population.Color) population.Color {
				if sampled[0] == sampled[1] {
					return sampled[0]
				}
				return own
			},
		},
		{
			name: "voter", s: 1, kern: VoterKernel{},
			next: func(_ population.Color, sampled []population.Color) population.Color {
				return sampled[0]
			},
		},
		{
			name: "3-majority", s: 3, kern: ThreeMajorityKernel{},
			next: func(_ population.Color, sampled []population.Color) population.Color {
				if sampled[0] == sampled[1] || sampled[0] == sampled[2] {
					return sampled[0]
				}
				if sampled[1] == sampled[2] {
					return sampled[1]
				}
				return sampled[0]
			},
		},
	}
}

// exactTransitionLaw enumerates every (own color, sample tuple) combination
// and returns the exact per-activation transition probabilities
// P[from][to] (from != to) plus the total effective probability. The three
// built-in rules are deterministic functions of their samples, so the
// enumeration is exact — this is the ground truth the closed-form kernels
// are checked against.
func exactTransitionLaw(counts []int64, withSelf bool, s int, next func(population.Color, []population.Color) population.Color) (p [][]float64, pEff float64) {
	k := len(counts)
	var n int64
	for _, v := range counts {
		n += v
	}
	nf := float64(n)
	p = make([][]float64, k)
	for i := range p {
		p[i] = make([]float64, k)
	}
	sampled := make([]population.Color, s)
	tuple := make([]int, s)
	for c := 0; c < k; c++ {
		if counts[c] == 0 {
			continue
		}
		pOwn := float64(counts[c]) / nf
		q := make([]float64, k)
		for d := 0; d < k; d++ {
			nd := float64(counts[d])
			if withSelf {
				q[d] = nd / nf
			} else {
				if d == c {
					nd--
				}
				q[d] = nd / (nf - 1)
			}
		}
		// Walk all k^s sample tuples.
		for i := range tuple {
			tuple[i] = 0
		}
		for {
			prob := pOwn
			for i, v := range tuple {
				prob *= q[v]
				sampled[i] = population.Color(v)
			}
			if prob > 0 {
				if d := next(population.Color(c), sampled); d != population.None && int(d) != c {
					p[c][d] += prob
					pEff += prob
				}
			}
			i := 0
			for ; i < s; i++ {
				tuple[i]++
				if tuple[i] < k {
					break
				}
				tuple[i] = 0
			}
			if i == s {
				break
			}
		}
	}
	return p, pEff
}

// TestKernelEffectiveProbExact checks every kernel's closed form against
// full enumeration of the rule on a spread of histograms, in both sampling
// modes.
func TestKernelEffectiveProbExact(t *testing.T) {
	histograms := [][]int64{
		{5, 3},
		{4, 3, 2},
		{10, 1, 1},
		{7, 7, 7},
		{1, 1, 2, 9},
		{25, 0, 3, 2}, // an empty color must not disturb the law
	}
	for _, tr := range builtinRules() {
		for _, counts := range histograms {
			for _, withSelf := range []bool{false, true} {
				_, wantEff := exactTransitionLaw(counts, withSelf, tr.s, tr.next)
				var n int64
				for _, v := range counts {
					n += v
				}
				gotEff := tr.kern.EffectiveProb(counts, n, withSelf)
				if math.Abs(gotEff-wantEff) > 1e-12 {
					t.Errorf("%s withSelf=%v counts=%v: EffectiveProb = %.15f, enumeration %.15f",
						tr.name, withSelf, counts, gotEff, wantEff)
				}
			}
		}
	}
}

// TestKernelTransitionDistribution checks SampleTransition's empirical
// (from, to) frequencies against the exact conditional law by chi-square at
// the 99.9th percentile. Deterministic seeds: a failure means a wrong
// kernel, not bad luck.
func TestKernelTransitionDistribution(t *testing.T) {
	counts := []int64{6, 3, 2, 1}
	var n int64
	for _, v := range counts {
		n += v
	}
	const draws = 200_000
	for _, tr := range builtinRules() {
		for _, withSelf := range []bool{false, true} {
			p, pEff := exactTransitionLaw(counts, withSelf, tr.s, tr.next)
			r := rng.New(99)
			k := len(counts)
			observed := make([]int, k*k)
			for i := 0; i < draws; i++ {
				from, to := tr.kern.SampleTransition(r, counts, n, withSelf)
				if from == to || from < 0 || to < 0 || from >= k || to >= k {
					t.Fatalf("%s: SampleTransition returned (%d, %d)", tr.name, from, to)
				}
				observed[from*k+to]++
			}
			var stat float64
			df := -1 // cells sum to draws, so one degree is lost
			for from := 0; from < k; from++ {
				for to := 0; to < k; to++ {
					expected := p[from][to] / pEff * draws
					if expected < 5 {
						if observed[from*k+to] > 0 && expected == 0 {
							t.Errorf("%s withSelf=%v: impossible transition (%d→%d) sampled %d times",
								tr.name, withSelf, from, to, observed[from*k+to])
						}
						continue
					}
					d := float64(observed[from*k+to]) - expected
					stat += d * d / expected
					df++
				}
			}
			if df < 1 {
				t.Fatalf("%s: degenerate chi-square setup", tr.name)
			}
			// Wilson–Hilferty 99.9th percentile approximation.
			z := 3.0902
			dff := float64(df)
			crit := dff * math.Pow(1-2/(9*dff)+z*math.Sqrt(2/(9*dff)), 3)
			if stat > crit {
				t.Errorf("%s withSelf=%v: transition chi-square %.1f > %.1f (df %d)",
					tr.name, withSelf, stat, crit, df)
			}
		}
	}
}
