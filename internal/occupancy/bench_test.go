package occupancy

import (
	"fmt"
	"testing"

	"plurality/internal/rng"
	"plurality/internal/sched"
)

// BenchmarkOccupancyLeap measures full Two-Choices consensus runs in leap
// mode (benchstat-comparable; the ns/tick metric counts every delivered
// activation, skipped no-ops included, which is the apples-to-apples figure
// against the per-node engine).
func BenchmarkOccupancyLeap(b *testing.B) {
	for _, n := range []int64{1_000_000, 100_000_000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var rn Runner
			var ticks int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				counts := []int64{2 * n / 5, n / 5, n / 5, n - 2*n/5 - 2*(n/5)}
				s, err := sched.NewPoisson(int(n), 1, rng.At(uint64(i), 0))
				if err != nil {
					b.Fatal(err)
				}
				res, err := rn.Run(counts, twoChoicesRule(), Config{
					Scheduler: s,
					Rand:      rng.At(uint64(i), 1),
					MaxTime:   1e6,
				})
				if err != nil {
					b.Fatal(err)
				}
				ticks += res.Ticks
			}
			b.StopTimer()
			if ticks > 0 {
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(ticks), "ns/tick")
				b.ReportMetric(float64(ticks)/float64(b.N), "ticks/run")
			}
		})
	}
}

// BenchmarkOccupancyTick measures the activation-by-activation engine over
// a fixed parallel-time budget (the run times out by design, so the figure
// is a pure per-tick cost).
func BenchmarkOccupancyTick(b *testing.B) {
	const n = 1_000_000
	b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
		var rn Runner
		var ticks int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			counts := []int64{400_000, 200_000, 200_000, 200_000}
			s, err := sched.NewPoisson(n, 1, rng.At(uint64(i), 0))
			if err != nil {
				b.Fatal(err)
			}
			res, _ := rn.Run(counts, twoChoicesRule(), Config{
				Scheduler: s,
				Rand:      rng.At(uint64(i), 1),
				MaxTime:   2, // ~2M ticks, far short of consensus
				ForceTick: true,
			})
			ticks += res.Ticks
		}
		b.StopTimer()
		if ticks > 0 {
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(ticks), "ns/tick")
		}
	})
}
