package occupancy

// The hybrid tau-leap/mean-field engine: the third simulation regime next
// to the exact jump chain (runLeap) and the per-activation tick mode. It
// trades exactness for scale — n = 10¹⁰–10¹² and beyond — by firing many
// transitions per step, switching between three regimes on the fly:
//
//   - exact: whenever any nonzero bucket is small (near absorption, a
//     freshly seeded undecided pool), the engine walks the jump chain of
//     the exact kernel, transition by transition with geometric skips —
//     the same law as the exact engine, so the endgame and other
//     small-count phases keep their full stochasticity.
//   - tau-leap: with all nonzero buckets of medium size, each step fires
//     every flow channel c→d as an independent Poisson(τ·F_cd) count, with
//     τ chosen so no bucket is expected to change by more than Eps of its
//     own mass (Cao–Gillespie style step control; negative excursions
//     reject the step and halve τ).
//   - ODE: once every nonzero bucket is so large that relative
//     fluctuations fall below ODETheta (1/√count ≤ θ), the histogram is
//     handed off to the internal/meanfield RK4 integrator and evolved
//     deterministically along the fluid limit dx_c/dτ = Σ_d (F_dc − F_cd)
//     until some bucket shrinks back into the stochastic band. Dynamics
//     whose drift vanishes (Voter's martingale) are detected as a stall
//     and stay in the tau-leap regime.
//
// Unlike the exact engine's Beta-order-statistic clock, the hybrid engine
// advances parallel time deterministically at the mean tick rate (g ticks
// take g/(n·rate) time): the added clock noise it discards is O(1/√ticks)
// of the elapsed time, far below the engine's own leaping error at every
// n the engine is meant for.

import (
	"errors"
	"fmt"
	"math"

	"plurality/internal/meanfield"
	"plurality/internal/population"
	"plurality/internal/rng"
	"plurality/internal/sched"
)

// Default error-budget knobs of the hybrid engine.
const (
	// DefaultLeapEps is the per-step relative-change budget of the
	// tau-leap regime: no bucket is expected to change by more than this
	// fraction of its own mass in one leap.
	DefaultLeapEps = 0.01
	// DefaultODETheta is the relative-fluctuation threshold of the
	// mean-field handoff: the ODE regime engages while every nonzero
	// bucket holds at least 1/θ² nodes (θ = 1e-4 ⇒ 10⁸ nodes).
	DefaultODETheta = 1e-4
	// DefaultExactCutoff is the bucket size below which the engine falls
	// back to the exact jump chain.
	DefaultExactCutoff = 1024
)

// LeapConfig carries the error-budget knobs of the hybrid engine. The zero
// value selects the defaults.
type LeapConfig struct {
	// Eps is the tau-leap relative-change budget per step, in (0, 0.5]
	// (0 = DefaultLeapEps). Smaller is more accurate and slower.
	Eps float64
	// ODETheta is the relative-fluctuation threshold of the ODE handoff
	// (0 = DefaultODETheta); a negative value disables the ODE regime
	// entirely, keeping the engine stochastic at every scale.
	ODETheta float64
	// ExactCutoff is the bucket size below which the exact jump chain
	// takes over (0 = DefaultExactCutoff; must be ≥ 2 otherwise).
	ExactCutoff int64
}

// Regime identifies one of the hybrid engine's execution regimes.
type Regime uint8

const (
	// RegimeExact is the exact jump chain (kernel transitions with
	// geometric skips).
	RegimeExact Regime = iota
	// RegimeLeap is the tau-leaping regime (Poisson channel counts).
	RegimeLeap
	// RegimeODE is the deterministic mean-field integration regime.
	RegimeODE
)

// String implements fmt.Stringer.
func (g Regime) String() string {
	switch g {
	case RegimeExact:
		return "exact"
	case RegimeLeap:
		return "leap"
	case RegimeODE:
		return "ode"
	default:
		return fmt.Sprintf("regime(%d)", uint8(g))
	}
}

// RegimeSwitch records one regime transition of a hybrid run, for
// diagnostics and the leap benchmark's machine-portable switch points.
type RegimeSwitch struct {
	// Ticks is the activation count at which the regime took over.
	Ticks int64
	// Time is the parallel time of the switch.
	Time float64
	// To is the regime entered.
	To Regime
}

// LeapResult extends Result with the hybrid engine's diagnostics.
type LeapResult struct {
	Result
	// LeapSteps is the number of committed tau-leap steps.
	LeapSteps int64
	// ExactTransitions is the number of exact jump-chain transitions.
	ExactTransitions int64
	// ODESteps is the number of committed RK4 steps.
	ODESteps int64
	// ODETime is the unit-rate parallel time covered by the ODE regime.
	ODETime float64
	// Switches lists the regime transitions in order, starting with the
	// initial regime at tick 0.
	Switches []RegimeSwitch
}

// RunLeap executes rule on the histogram with the hybrid
// tau-leap/mean-field engine until one color holds everything or MaxTime
// elapses. counts is mutated in place to the final histogram. The rule's
// kernel must implement FlowKernel; churn is not supported (use the exact
// engine), and the scheduler must be *sched.Sequential or *sched.Poisson
// (the engine consumes only its rate law). Config.OnObserve and
// Config.Stop work as in Run, with snapshots delivered at regime-step
// granularity.
func RunLeap(counts []int64, rule Rule, cfg Config, lc LeapConfig) (LeapResult, error) {
	var rn Runner
	return rn.RunLeap(counts, rule, cfg, lc)
}

// RunLeap is Runner's equivalent of the package-level RunLeap.
func (rn *Runner) RunLeap(counts []int64, rule Rule, cfg Config, lc LeapConfig) (LeapResult, error) {
	if rule == nil {
		return LeapResult{}, errors.New("occupancy: nil rule")
	}
	ur, undecided := rule.(Undecided)
	if !undecided {
		if cfg.Undecided != 0 {
			return LeapResult{}, fmt.Errorf("occupancy: rule %s has no undecided state, but Undecided = %d", rule.Name(), cfg.Undecided)
		}
		return rn.execLeapHybrid(counts, rule, cfg, len(counts), lc)
	}
	// Mirror runUndecided: one hidden bucket for the undecided holders.
	if cfg.Undecided < 0 {
		return LeapResult{}, fmt.Errorf("occupancy: Undecided = %d, want >= 0", cfg.Undecided)
	}
	var decided int64
	for _, v := range counts {
		decided += v
	}
	if decided <= 0 && cfg.Undecided > 0 {
		return LeapResult{}, errors.New("occupancy: undecided-state run needs at least one decided holder")
	}
	k := len(counts)
	if cap(rn.hist) < k+1 {
		rn.hist = make([]int64, k+1)
	}
	hist := rn.hist[:0]
	hist = append(hist, counts...)
	hist = append(hist, cfg.Undecided)
	res, err := rn.execLeapHybrid(hist, ur.UndecidedRule(k), cfg, k, lc)
	copy(counts, hist[:k])
	res.Undecided = hist[k]
	if !res.Done {
		res.Winner = plurality(hist[:k])
	}
	return res, err
}

// execLeapHybrid validates the configuration and runs the regime loop.
// counts may include hidden buckets beyond the colors opinion buckets.
func (rn *Runner) execLeapHybrid(counts []int64, rule Rule, cfg Config, colors int, lc LeapConfig) (LeapResult, error) {
	n, err := validate(counts, rule, cfg)
	if err != nil {
		return LeapResult{}, err
	}
	if cfg.Churn > 0 {
		return LeapResult{}, errors.New("occupancy: the leap engine does not support churn; use the exact engine")
	}
	var rate float64
	switch s := cfg.Scheduler.(type) {
	case *sched.Sequential:
		rate = 1
	case *sched.Poisson:
		rate = s.Rate()
	default:
		return LeapResult{}, fmt.Errorf("occupancy: the leap engine needs the Sequential or Poisson scheduler (an O(1) rate law), got %T", cfg.Scheduler)
	}
	kr, ok := rule.(Kerneled)
	if !ok {
		return LeapResult{}, fmt.Errorf("occupancy: rule %s has no occupancy kernel; the leap engine needs a FlowKernel", rule.Name())
	}
	fk, ok := kr.OccupancyKernel().(FlowKernel)
	if !ok {
		return LeapResult{}, fmt.Errorf("occupancy: rule %s's kernel exposes no flow law (occupancy.FlowKernel); the leap engine needs one", rule.Name())
	}
	eps := lc.Eps
	if eps == 0 {
		eps = DefaultLeapEps
	}
	if eps < 0 || eps > 0.5 || math.IsNaN(eps) {
		return LeapResult{}, fmt.Errorf("occupancy: leap Eps = %v, want (0, 0.5]", lc.Eps)
	}
	theta := lc.ODETheta
	if theta == 0 {
		theta = DefaultODETheta
	}
	if theta >= 1 || math.IsNaN(theta) {
		return LeapResult{}, fmt.Errorf("occupancy: leap ODETheta = %v, want < 1 (negative disables the ODE regime)", lc.ODETheta)
	}
	cutoff := lc.ExactCutoff
	if cutoff == 0 {
		cutoff = DefaultExactCutoff
	}
	if cutoff < 2 {
		return LeapResult{}, fmt.Errorf("occupancy: leap ExactCutoff = %d, want >= 2", lc.ExactCutoff)
	}
	tickRate := float64(n) * rate
	budgetF := cfg.MaxTime * tickRate
	if budgetF >= maxLeapBudget {
		return LeapResult{}, fmt.Errorf("occupancy: the leap engine's tick accounting cannot hold MaxTime = %v at n = %d (n·rate·MaxTime ≥ 2⁶²); reduce MaxTime", cfg.MaxTime, n)
	}
	for c, v := range counts {
		if v == n {
			return LeapResult{Result: Result{Done: true, Winner: population.Color(c)}}, nil
		}
	}
	k := len(counts)
	lr := &leapRun{
		counts:     counts,
		n:          n,
		k:          k,
		colors:     colors,
		withSelf:   cfg.WithSelf,
		r:          cfg.Rand,
		kern:       fk,
		eps:        eps,
		cutoff:     cutoff,
		odeOn:      theta > 0,
		tickRate:   tickRate,
		rate:       rate,
		budget:     int64(budgetF),
		stop:       cfg.Stop,
		x:          make([]float64, k),
		flows:      make([]float64, k*k),
		delta:      make([]int64, k),
		scratch:    make([]int64, k),
		observing:  cfg.OnObserve != nil,
		observeGap: cfg.ObserveInterval,
		lastEmit:   -1,
		onObserve:  cfg.OnObserve,
	}
	if lr.odeOn {
		lr.odeMinF = 1 / (theta * theta)
		if cf := float64(cutoff); lr.odeMinF < cf {
			lr.odeMinF = cf
		}
		lr.drift = meanfield.DriftFromFlows(k, fk.Flows)
	}
	return lr.run()
}

// leapRun is the per-run state of the hybrid engine.
type leapRun struct {
	counts   []int64
	n        int64
	k        int
	colors   int
	withSelf bool
	r        *rng.RNG
	kern     FlowKernel
	drift    meanfield.Drift

	eps     float64
	cutoff  int64
	odeOn   bool    // ODE regime enabled (and not stalled out)
	odeMinF float64 // min nonzero bucket count for the ODE regime

	tickRate float64 // ticks per unit of parallel time (n·rate)
	rate     float64 // per-node activation rate
	budget   int64   // total tick budget inside MaxTime
	ticks    int64
	stop     func() bool

	x       []float64 // fraction scratch
	flows   []float64 // k×k flow matrix scratch
	delta   []int64   // tau-leap per-bucket deltas
	scratch []int64   // ODE re-import staging

	res LeapResult

	observing   bool
	nextObserve float64
	observeGap  float64
	lastEmit    int64
	onObserve   func(Snapshot)
}

// exactChunkTransitions bounds one exact-regime chunk; the regime picker
// and the Stop hook run at chunk boundaries.
const exactChunkTransitions = 512

// minLeapTau is the smallest step the tau-leap regime accepts; anything
// finer is cheaper (and exacter) on the jump chain.
const minLeapTau = 16

// odeChunkTime bounds one ODE-regime chunk in unit-rate parallel time, so
// the Stop hook and the regime picker stay responsive even when the
// integrator could run to the time budget in one call.
const odeChunkTime = 256.0

// time is the parallel time implied by the deterministic mean tick rate.
func (lr *leapRun) time() float64 { return float64(lr.ticks) / lr.tickRate }

// run is the regime loop.
func (lr *leapRun) run() (LeapResult, error) {
	reg := lr.pickRegime()
	lr.note(reg)
	for {
		if lr.stop != nil && lr.stop() {
			return lr.finish(ErrStopped)
		}
		if lr.ticks >= lr.budget {
			return lr.finish(ErrTimeLimit)
		}
		var (
			done bool
			err  error
		)
		switch reg {
		case RegimeExact:
			done, err = lr.exactChunk()
		case RegimeLeap:
			done, err = lr.leapStep()
		default:
			done, err = lr.odeChunk()
		}
		if err != nil {
			return lr.finish(err)
		}
		if done {
			return lr.finishDone()
		}
		if next := lr.pickRegime(); next != reg {
			reg = next
			lr.note(reg)
		}
	}
}

// pickRegime selects the regime from the current bucket sizes: exact while
// any nonzero bucket is below the cutoff, ODE once every nonzero bucket is
// beyond the fluctuation threshold, tau-leap in between. Zero buckets are
// ignored — the flow laws keep them at zero (with the one exception of an
// undecided pool, which regrowing immediately re-triggers the exact
// regime via its small count).
func (lr *leapRun) pickRegime() Regime {
	var minC int64 = -1
	for _, v := range lr.counts {
		if v > 0 && (minC < 0 || v < minC) {
			minC = v
		}
	}
	if minC < lr.cutoff {
		return RegimeExact
	}
	if lr.odeOn && float64(minC) >= lr.odeMinF {
		return RegimeODE
	}
	return RegimeLeap
}

// note records a regime switch.
func (lr *leapRun) note(to Regime) {
	lr.res.Switches = append(lr.res.Switches, RegimeSwitch{Ticks: lr.ticks, Time: lr.time(), To: to})
}

// exactChunk walks up to exactChunkTransitions of the exact jump chain:
// per transition one geometric skip over the no-op activations and one
// kernel-sampled histogram move, with time advancing at the mean tick
// rate. Returns done on consensus; ErrTimeLimit when the skip runs past
// the tick budget.
func (lr *leapRun) exactChunk() (bool, error) {
	for i := 0; i < exactChunkTransitions; i++ {
		p := lr.kern.EffectiveProb(lr.counts, lr.n, lr.withSelf)
		if !(p > 0) {
			// No transition can ever fire again; the rest of the budget
			// is no-ops.
			lr.ticks = lr.budget
			return false, ErrTimeLimit
		}
		remaining := lr.budget - lr.ticks
		var g int64 = 1
		if p < 1 {
			u := 1 - lr.r.Float64() // (0, 1]
			gf := math.Floor(math.Log(u)/math.Log1p(-p)) + 1
			if !(gf >= 1) {
				gf = 1
			}
			if gf > float64(remaining) {
				lr.ticks = lr.budget
				return false, ErrTimeLimit
			}
			g = int64(gf)
			if g > remaining {
				lr.ticks = lr.budget
				return false, ErrTimeLimit
			}
		}
		lr.ticks += g
		from, to := lr.kern.SampleTransition(lr.r, lr.counts, lr.n, lr.withSelf)
		lr.res.ExactTransitions++
		if from != to {
			lr.counts[from]--
			lr.counts[to]++
			if lr.counts[to] == lr.n {
				return true, nil
			}
		}
		lr.maybeObserve()
	}
	return false, nil
}

// leapStep commits one tau-leap: every flow channel c→d fires an
// independent Poisson(τ·F_cd) transition count, with τ chosen so no
// bucket's expected change exceeds Eps of its mass (at least one node). A
// draw that would drive a bucket negative is rejected wholesale and τ
// halved. Steps finer than minLeapTau run on the exact jump chain instead.
func (lr *leapRun) leapStep() (bool, error) {
	nf := float64(lr.n)
	for c, v := range lr.counts {
		lr.x[c] = float64(v) / nf
	}
	lr.kern.Flows(lr.x, lr.flows)
	k := lr.k
	tauF := math.Inf(1)
	for c := 0; c < k; c++ {
		var act float64 // per-tick probability mass touching bucket c
		for d := 0; d < k; d++ {
			if d == c {
				continue
			}
			act += lr.flows[c*k+d] + lr.flows[d*k+c]
		}
		if act <= 0 {
			continue
		}
		b := lr.eps * float64(lr.counts[c])
		if b < 1 {
			b = 1
		}
		if lim := b / act; lim < tauF {
			tauF = lim
		}
	}
	if math.IsInf(tauF, 1) {
		// No channel carries flow: the fluid limit is frozen, but the
		// finite-n chain may not be (O(1/n) corrections); let the exact
		// chain decide.
		return lr.exactChunk()
	}
	tau := int64(tauF)
	if tau < minLeapTau {
		return lr.exactChunk()
	}
	if remaining := lr.budget - lr.ticks; tau > remaining {
		tau = remaining
	}
	for {
		clear(lr.delta)
		for c := 0; c < k; c++ {
			for d := 0; d < k; d++ {
				f := lr.flows[c*k+d]
				if f <= 0 {
					continue
				}
				m := lr.r.PoissonInt64(float64(tau) * f)
				lr.delta[c] -= m
				lr.delta[d] += m
			}
		}
		ok := true
		for c := 0; c < k; c++ {
			if lr.counts[c]+lr.delta[c] < 0 {
				ok = false
				break
			}
		}
		if ok {
			break
		}
		tau /= 2
		if tau < minLeapTau {
			// The step budget is too tight for leaping at all; the exact
			// chain makes guaranteed progress.
			return lr.exactChunk()
		}
	}
	for c := 0; c < k; c++ {
		lr.counts[c] += lr.delta[c]
	}
	lr.ticks += tau
	lr.res.LeapSteps++
	for c := 0; c < k; c++ {
		if lr.counts[c] == lr.n {
			return true, nil
		}
	}
	lr.maybeObserve()
	return false, nil
}

// odeChunk hands the histogram off to the mean-field integrator: export to
// fractions, integrate the flow-law drift until a bucket shrinks back into
// the stochastic band (or the chunk/time budget ends), and re-import with
// largest-remainder rounding. A stalled integration (vanishing drift — the
// Voter martingale) disables the ODE regime for the rest of the run.
func (lr *leapRun) odeChunk() (bool, error) {
	nf := float64(lr.n)
	for c, v := range lr.counts {
		lr.x[c] = float64(v) / nf
	}
	st := meanfield.State{X: lr.x}
	maxT := odeChunkTime
	if remT := float64(lr.budget-lr.ticks) / nf; remT < maxT {
		maxT = remT
	}
	if lr.observing && lr.observeGap > 0 {
		if g := lr.observeGap * lr.rate; g < maxT {
			maxT = g
		}
	}
	res, err := meanfield.Integrate(lr.drift, &st, maxT, meanfield.IntegrateConfig{
		Stop: func(x []float64) bool {
			for _, f := range x {
				if f > 0 && f*nf < lr.odeMinF {
					return true
				}
			}
			return false
		},
	})
	if err != nil {
		return false, fmt.Errorf("occupancy: mean-field handoff failed: %w", err)
	}
	if res.Stalled && res.Steps == 0 {
		// A drift-free dynamic (Voter) cannot make deterministic
		// progress; stay stochastic for the rest of the run.
		lr.odeOn = false
		return false, nil
	}
	if err := st.Counts(lr.n, lr.scratch); err != nil {
		return false, fmt.Errorf("occupancy: mean-field handoff failed: %w", err)
	}
	copy(lr.counts, lr.scratch)
	adv := int64(st.T*nf + 0.5)
	if lr.ticks+adv > lr.budget {
		adv = lr.budget - lr.ticks
	}
	lr.ticks += adv
	lr.res.ODESteps += int64(res.Steps)
	lr.res.ODETime += st.T
	if res.Stalled {
		lr.odeOn = false
	}
	for c := 0; c < lr.k; c++ {
		if lr.counts[c] == lr.n {
			return true, nil
		}
	}
	lr.maybeObserve()
	return false, nil
}

// emit delivers one Snapshot of the current histogram (hidden buckets
// folded into Undecided).
func (lr *leapRun) emit() {
	var und int64
	for _, v := range lr.counts[lr.colors:] {
		und += v
	}
	lr.lastEmit = lr.ticks
	lr.onObserve(Snapshot{Time: lr.time(), Ticks: lr.ticks, Counts: lr.counts[:lr.colors], Undecided: und})
}

// maybeObserve emits a Snapshot when the run crossed the next observation
// instant. Leap and ODE steps cover many activations, so observation lands
// at step granularity rather than on the exact instant.
func (lr *leapRun) maybeObserve() {
	if !lr.observing {
		return
	}
	if now := lr.time(); now >= lr.nextObserve {
		lr.emit()
		lr.nextObserve = now + lr.observeGap
	}
}

// finish closes a run that ended without consensus (timeout, stop).
func (lr *leapRun) finish(err error) (LeapResult, error) {
	lr.res.Ticks = lr.ticks
	lr.res.Time = lr.time()
	lr.res.Winner = plurality(lr.counts)
	if lr.observing && lr.lastEmit != lr.ticks {
		lr.emit()
	}
	return lr.res, err
}

// finishDone closes a run that reached consensus.
func (lr *leapRun) finishDone() (LeapResult, error) {
	lr.res.Ticks = lr.ticks
	lr.res.Time = lr.time()
	lr.res.Done = true
	for c, v := range lr.counts {
		if v == lr.n {
			lr.res.Winner = population.Color(c)
		}
	}
	if lr.observing && lr.lastEmit != lr.ticks {
		lr.emit()
	}
	return lr.res, nil
}

// Leapable reports whether rule can run on the hybrid leap engine: its
// kernel (after the hidden-bucket conversion for rules with an undecided
// state over k opinion colors) implements FlowKernel.
func Leapable(rule Rule, k int) bool {
	if ur, ok := rule.(Undecided); ok {
		rule = ur.UndecidedRule(k)
	}
	kr, ok := rule.(Kerneled)
	if !ok {
		return false
	}
	_, ok = kr.OccupancyKernel().(FlowKernel)
	return ok
}
