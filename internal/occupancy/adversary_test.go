package occupancy

import (
	"errors"
	"testing"

	"plurality/internal/adversary"
	"plurality/internal/rng"
)

func mkAdv(t *testing.T, spec adversary.Spec, seed uint64) *adversary.Adversary {
	t.Helper()
	adv, err := adversary.New(spec, seed)
	if err != nil {
		t.Fatal(err)
	}
	return adv
}

// TestStopPreservesPartialCounters: a tick-mode run interrupted by its Stop
// hook must report the churn and adversary interventions it already
// injected — partial results carry partial counters, they are not zeroed on
// the ErrStopped exit path.
func TestStopPreservesPartialCounters(t *testing.T) {
	counts := []int64{8000, 4000}
	polls := 0
	res, err := Run(counts, twoChoicesRule(), Config{
		Scheduler: mkSched(t, "poisson", 12000, 11),
		Rand:      rng.At(11, 1),
		MaxTime:   1e6,
		Churn:     0.3, // forces tick mode and fires fast
		Adversary: mkAdv(t, adversary.Spec{Name: "corrupt", Budget: 50}, 11),
		Stop: func() bool {
			// Late enough that a few corruption windows (CorruptWindow
			// apart in parallel time) have fired, early enough that the
			// high-churn run is nowhere near its MaxTime.
			polls++
			return polls > 100
		},
	})
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("err = %v, want ErrStopped", err)
	}
	if res.Ticks == 0 {
		t.Fatal("stopped run reports zero ticks; the Stop hook fired before any progress")
	}
	if res.Churns == 0 {
		t.Errorf("stopped run dropped its partial churn counter (ticks = %d)", res.Ticks)
	}
	if res.Corruptions == 0 {
		t.Errorf("stopped run dropped its partial corruption counter (ticks = %d, time = %v)", res.Ticks, res.Time)
	}
}

// TestAdversaryRejectsPerNode: the histogram has no node identity, so
// per-node adversaries (delay-set) must be rejected up front.
func TestAdversaryRejectsPerNode(t *testing.T) {
	counts := []int64{800, 400}
	_, err := Run(counts, twoChoicesRule(), Config{
		Scheduler: mkSched(t, "poisson", 1200, 3),
		Rand:      rng.At(3, 1),
		MaxTime:   100,
		Adversary: mkAdv(t, adversary.Spec{Name: "delay-set", Budget: 8}, 3),
	})
	if err == nil {
		t.Fatal("count-collapsed engine accepted a per-node adversary")
	}
}

// TestCorruptionDelaysConsensus: under a corruption budget the run still
// converges (small f) but records flips, and the winner remains the
// plurality — the no-resurrection cap keeps consensus absorbing.
func TestCorruptionDelaysConsensus(t *testing.T) {
	counts := []int64{800, 400}
	res, err := Run(counts, twoChoicesRule(), Config{
		Scheduler: mkSched(t, "poisson", 1200, 5),
		Rand:      rng.At(5, 1),
		MaxTime:   1e4,
		Adversary: mkAdv(t, adversary.Spec{Name: "corrupt", Budget: 4}, 5),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done || res.Winner != 0 {
		t.Fatalf("res = %+v, want convergence on the plurality", res)
	}
	if res.Corruptions == 0 {
		t.Fatal("corruption adversary ran without recording flips")
	}
}

// TestZeroBudgetBitIdentical: an inactive adversary is nil, installs no
// hooks, draws no randomness — the run is bit-identical to one that never
// mentioned an adversary.
func TestZeroBudgetBitIdentical(t *testing.T) {
	run := func(adv *adversary.Adversary) Result {
		counts := []int64{800, 400}
		res, err := Run(counts, twoChoicesRule(), Config{
			Scheduler: mkSched(t, "poisson", 1200, 9),
			Rand:      rng.At(9, 1),
			MaxTime:   1e4,
			Adversary: adv,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	clean := run(nil)
	zero := run(mkAdv(t, adversary.Spec{Name: "corrupt", Budget: 0}, 9))
	if clean != zero {
		t.Fatalf("zero-budget run diverged from the clean run:\n  clean: %+v\n  zero:  %+v", clean, zero)
	}
}
