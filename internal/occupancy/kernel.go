package occupancy

import (
	"plurality/internal/rng"
)

// Kernel is the histogram-level transition law of a memoryless rule on the
// complete graph: everything the leap engine needs to simulate the
// occupancy process one *effective* activation at a time. An activation is
// effective when it changes the color histogram; all other activations are
// no-ops the engine skips in bulk.
//
// Both methods see the live counts (summing to n) and the sampling mode of
// the clique (withSelf: neighbor draws include the activated node itself).
// Probabilities are computed in float64 — exact up to rounding, the same
// precision class as the Bernoulli/geometric draws of the per-node engines.
type Kernel interface {
	// EffectiveProb returns the probability that a single activation of a
	// uniformly random node changes the histogram.
	EffectiveProb(counts []int64, n int64, withSelf bool) float64
	// SampleTransition draws the (from, to) color pair of a histogram
	// change, conditioned on the activation being effective. from != to.
	SampleTransition(r *rng.RNG, counts []int64, n int64, withSelf bool) (from, to int)
}

// Kerneled is implemented by rules that expose their exact count-level
// transition law. A rule without a kernel still runs count-collapsed, just
// activation by activation instead of transition by transition.
type Kerneled interface {
	OccupancyKernel() Kernel
}

// FlowKernel is a Kernel that additionally exposes the full per-activation
// flow law in the n → ∞ fraction limit — what the hybrid leap engine needs
// to fire many transitions per step (tau-leaping) and to integrate the
// mean-field ODE. Flows fills out (len k·k, row-major over k = len(x)
// buckets) with
//
//	out[c*k+d] = lim P(one activation moves a node from bucket c to d)
//
// at fractions x, for c ≠ d; diagonal entries must be written as 0. The
// limit drops the O(1/n) self-exclusion corrections of the exact kernel,
// which is sound exactly where the leap engine runs: buckets below the
// exact-regime cutoff are simulated by the jump chain, never leapt.
type FlowKernel interface {
	Kernel
	Flows(x, out []float64)
}

// sumSquares returns Σ counts[c]² in float64 (exact up to rounding; the
// kernels only ever use it inside float64 probabilities).
func sumSquares(counts []int64) float64 {
	var a float64
	for _, v := range counts {
		f := float64(v)
		a += f * f
	}
	return a
}

// --- Two-Choices ---------------------------------------------------------

// TwoChoicesKernel is the count-level law of the Two-Choices rule: sample
// two neighbors with replacement, adopt their color iff they agree. With
// own color c and both samples d ≠ c the histogram moves one node from c to
// d; every other outcome is a no-op. Writing A = Σ n_d² and B = Σ n_d³, the
// per-activation effective probability is (A·n − B)/(n·(n−1)²) without
// self-sampling (the δ-correction for d = c cancels because d = c is never
// effective) and (A·n − B)/n³ with it.
type TwoChoicesKernel struct{}

// EffectiveProb implements Kernel.
func (TwoChoicesKernel) EffectiveProb(counts []int64, n int64, withSelf bool) float64 {
	var a, b float64
	for _, v := range counts {
		f := float64(v)
		f2 := f * f
		a += f2
		b += f2 * f
	}
	nf := float64(n)
	qden := nf - 1
	if withSelf {
		qden = nf
	}
	return (a*nf - b) / (nf * qden * qden)
}

// SampleTransition implements Kernel: (from, to) with probability
// proportional to n_from · n_to², to ≠ from. The weight total has the
// closed form A·n − B, so no extra scan is needed before the pick.
func (TwoChoicesKernel) SampleTransition(r *rng.RNG, counts []int64, n int64, withSelf bool) (from, to int) {
	var a, b float64
	for _, v := range counts {
		f := float64(v)
		f2 := f * f
		a += f2
		b += f2 * f
	}
	from = WeightedPick(r, a*float64(n)-b, counts, func(c int, f float64) float64 { return f * (a - f*f) })
	ff := float64(counts[from])
	to = WeightedPickExcept(r, a-ff*ff, counts, from, func(c int, f float64) float64 { return f * f })
	return from, to
}

// Flows implements FlowKernel: a node of color c moves to d when both
// samples hit d, so F_cd = x_c · x_d².
func (TwoChoicesKernel) Flows(x, out []float64) {
	k := len(x)
	for c := 0; c < k; c++ {
		for d := 0; d < k; d++ {
			if d == c {
				out[c*k+d] = 0
				continue
			}
			out[c*k+d] = x[c] * x[d] * x[d]
		}
	}
}

// --- Voter ---------------------------------------------------------------

// VoterKernel is the count-level law of the Voter rule: sample one neighbor
// and adopt its color unconditionally. The activation is effective iff the
// sample differs from the own color, which happens with total probability
// (n² − A)/(n(n−1)) without self-sampling and (n² − A)/n² with it.
type VoterKernel struct{}

// EffectiveProb implements Kernel.
func (VoterKernel) EffectiveProb(counts []int64, n int64, withSelf bool) float64 {
	a := sumSquares(counts)
	nf := float64(n)
	qden := nf - 1
	if withSelf {
		qden = nf
	}
	return (nf*nf - a) / (nf * qden)
}

// SampleTransition implements Kernel: (from, to) with probability
// proportional to n_from · n_to, to ≠ from.
func (VoterKernel) SampleTransition(r *rng.RNG, counts []int64, n int64, withSelf bool) (from, to int) {
	nf := float64(n)
	a := sumSquares(counts)
	from = WeightedPick(r, nf*nf-a, counts, func(c int, f float64) float64 { return f * (nf - f) })
	to = WeightedPickExcept(r, nf-float64(counts[from]), counts, from, func(c int, f float64) float64 { return f })
	return from, to
}

// Flows implements FlowKernel: a node of color c adopts the single sample,
// so F_cd = x_c · x_d. The flow matrix is symmetric — the Voter drift is
// identically zero (the martingale), which the leap engine's ODE regime
// detects as a stall and sidesteps.
func (VoterKernel) Flows(x, out []float64) {
	k := len(x)
	for c := 0; c < k; c++ {
		for d := 0; d < k; d++ {
			if d == c {
				out[c*k+d] = 0
				continue
			}
			out[c*k+d] = x[c] * x[d]
		}
	}
}

// --- 3-Majority ----------------------------------------------------------

// ThreeMajorityKernel is the count-level law of the 3-Majority rule: sample
// three neighbors with replacement, adopt the majority color among the
// samples, or the first sample when all three differ. Given the neighbor
// distribution q of an activated node, the adopted color is d with
// probability 3q_d²(1−q_d) + q_d³ + q_d[(1−q_d)² − (S₂ − q_d²)] where
// S₂ = Σ q_e² (the three terms: exactly two matches anywhere, all three
// match, first-sample tiebreak over three distinct colors).
type ThreeMajorityKernel struct{}

// threeMajAdopt returns P(adopted color = d) for a color with neighbor
// probability q under sample second moment s2. Rounding can push the
// all-distinct term slightly negative near consensus; the result is clamped
// at 0.
func threeMajAdopt(q, s2 float64) float64 {
	p := 3*q*q*(1-q) + q*q*q + q*((1-q)*(1-q)-(s2-q*q))
	if p < 0 {
		return 0
	}
	return p
}

// neighborLaw returns the neighbor probability of color d and the sample
// second moment S₂ for an activated node of color c, in either sampling
// mode. a is Σ n_e².
func neighborLaw(counts []int64, nf, a float64, c, d int, withSelf bool) (qd, s2 float64) {
	if withSelf {
		return float64(counts[d]) / nf, a / (nf * nf)
	}
	qden := nf - 1
	nd := float64(counts[d])
	if d == c {
		nd--
	}
	fc := float64(counts[c])
	return nd / qden, (a - 2*fc + 1) / (qden * qden)
}

// EffectiveProb implements Kernel.
func (ThreeMajorityKernel) EffectiveProb(counts []int64, n int64, withSelf bool) float64 {
	nf := float64(n)
	a := sumSquares(counts)
	var sum float64
	for c, v := range counts {
		if v == 0 {
			continue
		}
		qc, s2 := neighborLaw(counts, nf, a, c, c, withSelf)
		w := 1 - threeMajAdopt(qc, s2)
		if w > 0 {
			sum += float64(v) * w
		}
	}
	return sum / nf
}

// SampleTransition implements Kernel: own color c with probability
// proportional to n_c · P(adopt ≠ c), then the adopted color d ≠ c with
// probability proportional to P(adopt = d). Unlike the product-form
// kernels, the weight totals have no cheap closed form, so each stage
// evaluates its weights twice (total, then pick) — the price of keeping
// the kernel stateless and allocation-free; k is small, so the scan cost
// stays negligible against the per-transition RNG work.
func (ThreeMajorityKernel) SampleTransition(r *rng.RNG, counts []int64, n int64, withSelf bool) (from, to int) {
	nf := float64(n)
	a := sumSquares(counts)
	var total float64
	for c, v := range counts {
		if v == 0 {
			continue
		}
		qc, s2 := neighborLaw(counts, nf, a, c, c, withSelf)
		if w := 1 - threeMajAdopt(qc, s2); w > 0 {
			total += float64(v) * w
		}
	}
	from = WeightedPick(r, total, counts, func(c int, f float64) float64 {
		if f == 0 {
			return 0
		}
		qc, s2 := neighborLaw(counts, nf, a, c, c, withSelf)
		w := 1 - threeMajAdopt(qc, s2)
		if w < 0 {
			return 0
		}
		return f * w
	})
	var dTotal float64
	for d := range counts {
		if d == from {
			continue
		}
		qd, s2 := neighborLaw(counts, nf, a, from, d, withSelf)
		dTotal += threeMajAdopt(qd, s2)
	}
	to = WeightedPickExcept(r, dTotal, counts, from, func(d int, _ float64) float64 {
		qd, s2 := neighborLaw(counts, nf, a, from, d, withSelf)
		return threeMajAdopt(qd, s2)
	})
	return from, to
}

// Flows implements FlowKernel: in the fraction limit the neighbor law is x
// itself, so F_cd = x_c · threeMajAdopt(x_d, S₂) with S₂ = Σ x_e².
func (ThreeMajorityKernel) Flows(x, out []float64) {
	k := len(x)
	var s2 float64
	for _, f := range x {
		s2 += f * f
	}
	for c := 0; c < k; c++ {
		for d := 0; d < k; d++ {
			if d == c {
				out[c*k+d] = 0
				continue
			}
			out[c*k+d] = x[c] * threeMajAdopt(x[d], s2)
		}
	}
}

// --- weighted sampling helpers ------------------------------------------
// Exported so kernel implementations in the protocol packages (usd,
// jmajority) share the same rounding-drift handling as the built-ins.

// WeightedPick draws an index with probability proportional to weight(c,
// float64(counts[c])), given the precomputed total. Rounding drift is
// absorbed by returning the last positively weighted index when the scan
// runs past the end.
func WeightedPick(r *rng.RNG, total float64, counts []int64, weight func(c int, f float64) float64) int {
	x := r.Float64() * total
	last := 0
	for c := range counts {
		w := weight(c, float64(counts[c]))
		if w <= 0 {
			continue
		}
		if x < w {
			return c
		}
		x -= w
		last = c
	}
	return last
}

// WeightedPickExcept is WeightedPick over all indices but skip.
func WeightedPickExcept(r *rng.RNG, total float64, counts []int64, skip int, weight func(c int, f float64) float64) int {
	x := r.Float64() * total
	last := -1
	for c := range counts {
		if c == skip {
			continue
		}
		w := weight(c, float64(counts[c]))
		if w <= 0 {
			continue
		}
		if x < w {
			return c
		}
		x -= w
		last = c
	}
	if last >= 0 {
		return last
	}
	// Degenerate weights (all zero by rounding): fall back to any index
	// different from skip; callers guarantee k >= 2.
	if skip == 0 {
		return 1
	}
	return 0
}
