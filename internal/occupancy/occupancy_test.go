package occupancy

import (
	"errors"
	"strings"
	"testing"

	"plurality/internal/population"
	"plurality/internal/rng"
	"plurality/internal/sched"
	"plurality/internal/stats"
)

// dynRule adapts the locally rebuilt rules (see kernel_test.go) to the
// engine's Rule + Kerneled interfaces.
type dynRule struct{ tr testRule }

func (d dynRule) Name() string     { return d.tr.name }
func (d dynRule) SampleCount() int { return d.tr.s }
func (d dynRule) Next(_ *rng.RNG, own population.Color, sampled []population.Color) population.Color {
	return d.tr.next(own, sampled)
}
func (d dynRule) OccupancyKernel() Kernel { return d.tr.kern }

func mkSched(t testing.TB, model string, n int64, seed uint64) sched.Scheduler {
	t.Helper()
	var (
		s   sched.Scheduler
		err error
	)
	switch model {
	case "sequential":
		s, err = sched.NewSequential(int(n), rng.At(seed, 0))
	case "poisson":
		s, err = sched.NewPoisson(int(n), 1, rng.At(seed, 0))
	case "heap-poisson":
		s, err = sched.NewHeapPoisson(int(n), 1, rng.At(seed, 0))
	default:
		t.Fatalf("unknown model %q", model)
	}
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func twoChoicesRule() dynRule    { return dynRule{builtinRules()[0]} }
func voterRule() dynRule         { return dynRule{builtinRules()[1]} }
func threeMajorityRule() dynRule { return dynRule{builtinRules()[2]} }

func TestRunReachesConsensus(t *testing.T) {
	for _, model := range []string{"sequential", "poisson", "heap-poisson"} {
		for _, rule := range []Rule{twoChoicesRule(), voterRule(), threeMajorityRule()} {
			counts := []int64{600, 300, 300}
			res, err := Run(counts, rule, Config{
				Scheduler: mkSched(t, model, 1200, 7),
				Rand:      rng.At(7, 1),
				MaxTime:   1e6,
			})
			if err != nil {
				t.Fatalf("%s/%s: %v", model, rule.Name(), err)
			}
			if !res.Done || res.Ticks <= 0 || res.Time <= 0 {
				t.Fatalf("%s/%s: %+v", model, rule.Name(), res)
			}
			won := false
			for c, v := range counts {
				if v == 1200 && population.Color(c) == res.Winner {
					won = true
				} else if v != 0 {
					t.Fatalf("%s/%s: final histogram %v not a consensus", model, rule.Name(), counts)
				}
			}
			if !won {
				t.Fatalf("%s/%s: winner %d does not match histogram %v", model, rule.Name(), res.Winner, counts)
			}
		}
	}
}

func TestRunInitialConsensus(t *testing.T) {
	counts := []int64{0, 50, 0}
	res, err := Run(counts, twoChoicesRule(), Config{
		Scheduler: mkSched(t, "poisson", 50, 1),
		Rand:      rng.At(1, 1),
		MaxTime:   10,
	})
	if err != nil || !res.Done || res.Winner != 1 || res.Ticks != 0 {
		t.Fatalf("res = %+v, err = %v", res, err)
	}
}

func TestRunTimeout(t *testing.T) {
	for _, model := range []string{"sequential", "poisson"} {
		for _, force := range []bool{false, true} {
			counts := []int64{600, 600}
			res, err := Run(counts, twoChoicesRule(), Config{
				Scheduler: mkSched(t, model, 1200, 3),
				Rand:      rng.At(3, 1),
				MaxTime:   0.25, // ~300 ticks: far too few for consensus at n=1200
				ForceTick: force,
			})
			if !errors.Is(err, ErrTimeLimit) {
				t.Fatalf("%s force=%v: err = %v, want ErrTimeLimit", model, force, err)
			}
			if res.Done {
				t.Fatalf("%s force=%v: Done on a timeout: %+v", model, force, res)
			}
			if res.Ticks <= 0 || res.Time > 0.25 || res.Time < 0 {
				t.Fatalf("%s force=%v: implausible timeout bookkeeping %+v", model, force, res)
			}
			var total int64
			for _, v := range counts {
				total += v
			}
			if total != 1200 {
				t.Fatalf("%s force=%v: histogram no longer sums to n: %v", model, force, counts)
			}
		}
	}
}

// TestHugeMaxTimeFallsBackToTickMode: an effectively-unbounded MaxTime
// (n·MaxTime beyond the int64 tick counters) must not overflow the leap
// budget — the run falls back to tick mode and still converges, under both
// leapable time models.
func TestHugeMaxTimeFallsBackToTickMode(t *testing.T) {
	for _, model := range []string{"sequential", "poisson"} {
		counts := []int64{60, 40}
		res, err := Run(counts, twoChoicesRule(), Config{
			Scheduler: mkSched(t, model, 100, 21),
			Rand:      rng.At(21, 1),
			MaxTime:   1e18,
		})
		if err != nil {
			t.Fatalf("%s: %v", model, err)
		}
		if !res.Done || res.Ticks <= 0 || res.Time < 0 {
			t.Fatalf("%s: %+v", model, res)
		}
	}
}

func TestRunValidation(t *testing.T) {
	good := Config{Scheduler: mkSched(t, "sequential", 10, 1), Rand: rng.New(1), MaxTime: 1}
	cases := []struct {
		name   string
		counts []int64
		cfg    Config
	}{
		{"nil-rand", []int64{5, 5}, Config{Scheduler: good.Scheduler, MaxTime: 1}},
		{"nil-sched", []int64{5, 5}, Config{Rand: good.Rand, MaxTime: 1}},
		{"bad-maxtime", []int64{5, 5}, Config{Scheduler: good.Scheduler, Rand: good.Rand}},
		{"bad-churn", []int64{5, 5}, Config{Scheduler: good.Scheduler, Rand: good.Rand, MaxTime: 1, Churn: 1}},
		{"negative-count", []int64{11, -1}, good},
		{"empty", nil, good},
		{"sched-mismatch", []int64{5, 6}, good},
	}
	for _, tc := range cases {
		if _, err := Run(tc.counts, twoChoicesRule(), tc.cfg); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	run := func() Result {
		counts := []int64{500, 250, 250}
		res, err := Run(counts, threeMajorityRule(), Config{
			Scheduler: mkSched(t, "poisson", 1000, 11),
			Rand:      rng.At(11, 1),
			MaxTime:   1e6,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed diverged: %+v != %+v", a, b)
	}
}

// collectTimes runs trials independent occupancy runs and returns the
// consensus times and tick counts.
func collectTimes(t *testing.T, rule Rule, model string, counts []int64, trials int, seedBase uint64, forceTick bool) (times, ticks []float64) {
	t.Helper()
	var n int64
	for _, v := range counts {
		n += v
	}
	var rn Runner
	for i := 0; i < trials; i++ {
		cs := append([]int64(nil), counts...)
		seed := seedBase + uint64(i)
		res, err := rn.Run(cs, rule, Config{
			Scheduler: mkSched(t, model, n, seed),
			Rand:      rng.At(seed, 1),
			MaxTime:   1e6,
			ForceTick: forceTick,
		})
		if err != nil {
			t.Fatalf("trial %d: %v", i, err)
		}
		times = append(times, res.Time)
		ticks = append(ticks, float64(res.Ticks))
	}
	return times, ticks
}

// TestLeapMatchesTickDistribution is the in-package half of the
// distributional-equivalence gate: for every kerneled rule and both leapable
// time models, the leap engine's consensus-time and tick-count samples must
// be KS-indistinguishable from the tick engine's. Fixed seeds: a failure
// means the geometric skip, the kernel, or the order-statistic time
// materialization is wrong — not bad luck.
func TestLeapMatchesTickDistribution(t *testing.T) {
	const trials = 220
	counts := []int64{120, 60, 60}
	for _, model := range []string{"sequential", "poisson"} {
		for _, rule := range []Rule{twoChoicesRule(), voterRule(), threeMajorityRule()} {
			leapT, leapM := collectTimes(t, rule, model, counts, trials, 1000, false)
			tickT, tickM := collectTimes(t, rule, model, counts, trials, 5000, true)
			thresh := stats.KSThreshold(0.001, trials, trials) + 1.0/240
			if d := stats.KSStatistic(leapT, tickT); d > thresh {
				t.Errorf("%s/%s: consensus-time KS %.4f > %.4f", model, rule.Name(), d, thresh)
			}
			if d := stats.KSStatistic(leapM, tickM); d > thresh {
				t.Errorf("%s/%s: tick-count KS %.4f > %.4f", model, rule.Name(), d, thresh)
			}
		}
	}
}

// TestVoterWinnerMartingale exploits the Voter chain's exact invariant: the
// probability that color c wins equals its initial share, with no
// approximation. Chi-square of observed winners against n_c/n at the 99.9th
// percentile, for both engine modes.
func TestVoterWinnerMartingale(t *testing.T) {
	counts := []int64{100, 60, 40}
	const trials = 600
	for _, force := range []bool{false, true} {
		observed := make([]int, 3)
		var rn Runner
		for i := 0; i < trials; i++ {
			cs := append([]int64(nil), counts...)
			seed := 40_000 + uint64(i)
			res, err := rn.Run(cs, voterRule(), Config{
				Scheduler: mkSched(t, "sequential", 200, seed),
				Rand:      rng.At(seed, 1),
				MaxTime:   1e6,
				ForceTick: force,
			})
			if err != nil || !res.Done {
				t.Fatalf("trial %d: res=%+v err=%v", i, res, err)
			}
			observed[res.Winner]++
		}
		var stat float64
		for c, v := range counts {
			expected := float64(v) / 200 * trials
			d := float64(observed[c]) - expected
			stat += d * d / expected
		}
		// df = 2, 99.9th percentile = 13.8.
		if stat > 13.8 {
			t.Errorf("forceTick=%v: winner chi-square %.1f > 13.8 (observed %v, counts %v)",
				force, stat, observed, counts)
		}
	}
}

// noneRule emits population.None without declaring an undecided state —
// the contract violation the tick engine must fail loudly on instead of
// silently diverging from the per-node engines' go-undecided semantics.
type noneRule struct{}

func (noneRule) Name() string     { return "none-emitter" }
func (noneRule) SampleCount() int { return 1 }
func (noneRule) Next(*rng.RNG, population.Color, []population.Color) population.Color {
	return population.None
}

func TestTickModeRejectsUndeclaredNone(t *testing.T) {
	counts := []int64{5, 5}
	_, err := Run(counts, noneRule{}, Config{
		Scheduler: mkSched(t, "poisson", 10, 1),
		Rand:      rng.At(1, 1),
		MaxTime:   10,
	})
	if err == nil || !strings.Contains(err.Error(), "occupancy.Undecided") {
		t.Fatalf("err = %v, want the undeclared-None contract error", err)
	}
}

// TestRunnerZeroSteadyStateAllocs guards the O(k)-memory claim at the
// allocation level: with a warm Runner, neither engine mode may allocate
// anything beyond the per-run scheduler and RNG streams.
func TestRunnerZeroSteadyStateAllocs(t *testing.T) {
	for _, force := range []bool{false, true} {
		var rn Runner
		run := func() {
			counts := [4]int64{400, 200, 200, 200}
			s, err := sched.NewPoisson(1000, 1, rng.At(1, 0))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := rn.Run(counts[:], twoChoicesRule(), Config{
				Scheduler: s,
				Rand:      rng.At(1, 1),
				MaxTime:   1e6,
				ForceTick: force,
			}); err != nil {
				t.Fatal(err)
			}
		}
		run() // warm scratch buffers
		// Left per run: the scheduler, its RNG stream and the engine RNG
		// stream. Anything per tick or per transition would be thousands.
		if allocs := testing.AllocsPerRun(5, run); allocs > 8 {
			t.Errorf("forceTick=%v: steady-state run allocated %.0f objects, want <= 8", force, allocs)
		}
	}
}
