package occupancy

import (
	"errors"
	"strings"
	"testing"

	"plurality/internal/population"
	"plurality/internal/rng"
)

// bareKernel strips the flow law off a kernel: the embedded interface only
// promotes the Kernel methods, so the wrapper is Kerneled but not a
// FlowKernel.
type bareKernel struct{ Kernel }

type bareRule struct{ dynRule }

func (b bareRule) OccupancyKernel() Kernel { return bareKernel{b.dynRule.OccupancyKernel()} }

func TestRunLeapReachesConsensus(t *testing.T) {
	for _, model := range []string{"sequential", "poisson"} {
		for _, rule := range []Rule{twoChoicesRule(), voterRule(), threeMajorityRule()} {
			counts := []int64{600, 300, 300}
			res, err := RunLeap(counts, rule, Config{
				Scheduler: mkSched(t, model, 1200, 7),
				Rand:      rng.At(7, 1),
				MaxTime:   1e6,
			}, LeapConfig{})
			if err != nil {
				t.Fatalf("%s/%s: %v", model, rule.Name(), err)
			}
			if !res.Done || res.Ticks <= 0 || res.Time <= 0 {
				t.Fatalf("%s/%s: %+v", model, rule.Name(), res)
			}
			if len(res.Switches) == 0 || res.Switches[0].Ticks != 0 {
				t.Fatalf("%s/%s: missing initial regime record: %+v", model, rule.Name(), res.Switches)
			}
			won := false
			for c, v := range counts {
				if v == 1200 && population.Color(c) == res.Winner {
					won = true
				} else if v != 0 {
					t.Fatalf("%s/%s: final histogram %v not a consensus", model, rule.Name(), counts)
				}
			}
			if !won {
				t.Fatalf("%s/%s: winner %d does not match histogram %v", model, rule.Name(), res.Winner, counts)
			}
		}
	}
}

// TestRunLeapSmallNMatchesExactEngine: below the exact cutoff the hybrid
// engine IS the jump chain, so its regime bookkeeping must show a pure
// exact run.
func TestRunLeapSmallNMatchesExactEngine(t *testing.T) {
	counts := []int64{600, 400}
	res, err := RunLeap(counts, twoChoicesRule(), Config{
		Scheduler: mkSched(t, "sequential", 1000, 5),
		Rand:      rng.At(5, 1),
		MaxTime:   1e6,
	}, LeapConfig{})
	if err != nil || !res.Done {
		t.Fatalf("res = %+v, err = %v", res, err)
	}
	if res.LeapSteps != 0 || res.ODESteps != 0 || res.ExactTransitions == 0 {
		t.Fatalf("n below cutoff must run purely exact: %+v", res)
	}
	if len(res.Switches) != 1 || res.Switches[0].To != RegimeExact {
		t.Fatalf("switches = %+v, want a single exact record", res.Switches)
	}
}

// TestRunLeapUsesAllRegimes: a large biased run must hand off through all
// three regimes — ODE in the bulk, tau-leaping in the stochastic band,
// exact in the endgame — and still finish on a consensus histogram.
func TestRunLeapUsesAllRegimes(t *testing.T) {
	const n = 1_000_000_000
	counts := []int64{600_000_000, 400_000_000}
	res, err := RunLeap(counts, twoChoicesRule(), Config{
		Scheduler: mkSched(t, "sequential", n, 11),
		Rand:      rng.At(11, 1),
		MaxTime:   1e6,
	}, LeapConfig{ODETheta: 1e-3})
	if err != nil || !res.Done || res.Winner != 0 {
		t.Fatalf("res = %+v, err = %v", res, err)
	}
	if res.ODESteps == 0 || res.LeapSteps == 0 || res.ExactTransitions == 0 {
		t.Fatalf("expected all three regimes to fire: %+v", res)
	}
	if res.ODETime <= 0 {
		t.Fatalf("ODETime = %v, want > 0", res.ODETime)
	}
	if counts[0] != n || counts[1] != 0 {
		t.Fatalf("final histogram %v not a consensus at n", counts)
	}
	// Switch bookkeeping: monotone in ticks, first record at 0.
	for i, sw := range res.Switches {
		if i > 0 && sw.Ticks < res.Switches[i-1].Ticks {
			t.Fatalf("switch ticks not monotone: %+v", res.Switches)
		}
	}
}

// TestRunLeapHugeN is the tentpole acceptance scenario: completed consensus
// at n = 10¹² in seconds (the CI leap-smoke job times the committed
// baseline; this test only demands completion and a sane result).
func TestRunLeapHugeN(t *testing.T) {
	if testing.Short() {
		t.Skip("n = 1e12 run skipped in -short mode")
	}
	const n = 1_000_000_000_000
	counts := []int64{600_000_000_000, 400_000_000_000}
	res, err := RunLeap(counts, twoChoicesRule(), Config{
		Scheduler: mkSched(t, "sequential", n, 1),
		Rand:      rng.At(1, 1),
		MaxTime:   1e6,
	}, LeapConfig{})
	if err != nil || !res.Done || res.Winner != 0 {
		t.Fatalf("res = %+v, err = %v", res, err)
	}
	if counts[0] != n {
		t.Fatalf("final histogram %v not a consensus at n", counts)
	}
	if res.ODESteps == 0 {
		t.Fatalf("n = 1e12 must traverse the ODE regime: %+v", res)
	}
}

// TestRunLeapVoterStallsODE: the Voter drift is identically zero, so the
// ODE regime must detect the stall and disable itself instead of spinning,
// leaving the run to the stochastic regimes (which then hit the budget).
func TestRunLeapVoterStallsODE(t *testing.T) {
	counts := []int64{500_000, 500_000}
	res, err := RunLeap(counts, voterRule(), Config{
		Scheduler: mkSched(t, "sequential", 1_000_000, 3),
		Rand:      rng.At(3, 1),
		MaxTime:   2,
	}, LeapConfig{ODETheta: 1e-2})
	if !errors.Is(err, ErrTimeLimit) {
		t.Fatalf("err = %v, want ErrTimeLimit (Voter cannot finish in 2 time units)", err)
	}
	if res.ODESteps != 0 {
		t.Fatalf("stalled ODE must not commit steps: %+v", res)
	}
	if res.LeapSteps == 0 {
		t.Fatalf("run must fall back to tau-leaping after the stall: %+v", res)
	}
	var total int64
	for _, v := range counts {
		total += v
	}
	if total != 1_000_000 {
		t.Fatalf("histogram no longer sums to n: %v", counts)
	}
}

func TestRunLeapTimeout(t *testing.T) {
	counts := []int64{500_000, 500_000}
	res, err := RunLeap(counts, twoChoicesRule(), Config{
		Scheduler: mkSched(t, "poisson", 1_000_000, 9),
		Rand:      rng.At(9, 1),
		MaxTime:   0.25,
	}, LeapConfig{})
	if !errors.Is(err, ErrTimeLimit) {
		t.Fatalf("err = %v, want ErrTimeLimit", err)
	}
	if res.Done || res.Time < 0 || res.Time > 0.25+1e-9 {
		t.Fatalf("implausible timeout bookkeeping: %+v", res)
	}
	var total int64
	for _, v := range counts {
		total += v
	}
	if total != 1_000_000 {
		t.Fatalf("histogram no longer sums to n: %v", counts)
	}
}

func TestRunLeapStop(t *testing.T) {
	calls := 0
	counts := []int64{500_000, 500_000}
	_, err := RunLeap(counts, twoChoicesRule(), Config{
		Scheduler: mkSched(t, "sequential", 1_000_000, 13),
		Rand:      rng.At(13, 1),
		MaxTime:   1e6,
		Stop: func() bool {
			calls++
			return calls > 3
		},
	}, LeapConfig{})
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("err = %v, want ErrStopped", err)
	}
}

func TestRunLeapObserver(t *testing.T) {
	var snaps []Snapshot
	counts := []int64{600_000, 400_000}
	res, err := RunLeap(counts, twoChoicesRule(), Config{
		Scheduler:       mkSched(t, "sequential", 1_000_000, 17),
		Rand:            rng.At(17, 1),
		MaxTime:         1e6,
		ObserveInterval: 0.5,
		OnObserve: func(s Snapshot) {
			cp := s
			cp.Counts = append([]int64(nil), s.Counts...)
			snaps = append(snaps, cp)
		},
	}, LeapConfig{})
	if err != nil || !res.Done {
		t.Fatalf("res = %+v, err = %v", res, err)
	}
	if len(snaps) == 0 {
		t.Fatal("no snapshots delivered")
	}
	for i, s := range snaps {
		var total int64
		for _, v := range s.Counts {
			total += v
		}
		if total+s.Undecided != 1_000_000 {
			t.Fatalf("snapshot %d does not sum to n: %+v", i, s)
		}
		if i > 0 && (s.Ticks < snaps[i-1].Ticks || s.Time < snaps[i-1].Time) {
			t.Fatalf("snapshots not monotone: %+v then %+v", snaps[i-1], s)
		}
	}
	if last := snaps[len(snaps)-1]; last.Ticks != res.Ticks {
		t.Fatalf("final snapshot at ticks %d, run ended at %d", last.Ticks, res.Ticks)
	}
}

func TestRunLeapDeterministic(t *testing.T) {
	run := func() (LeapResult, []int64) {
		counts := []int64{6_000_000, 3_000_000, 1_000_000}
		res, err := RunLeap(counts, threeMajorityRule(), Config{
			Scheduler: mkSched(t, "poisson", 10_000_000, 21),
			Rand:      rng.At(21, 1),
			MaxTime:   1e6,
		}, LeapConfig{})
		if err != nil {
			t.Fatal(err)
		}
		return res, counts
	}
	r1, c1 := run()
	r2, c2 := run()
	if r1.Ticks != r2.Ticks || r1.Time != r2.Time || r1.Winner != r2.Winner ||
		r1.LeapSteps != r2.LeapSteps || r1.ExactTransitions != r2.ExactTransitions ||
		r1.ODESteps != r2.ODESteps {
		t.Fatalf("same seed diverged: %+v vs %+v", r1, r2)
	}
	for c := range c1 {
		if c1[c] != c2[c] {
			t.Fatalf("same seed diverged on histogram: %v vs %v", c1, c2)
		}
	}
}

func TestRunLeapValidation(t *testing.T) {
	mk := func() ([]int64, Config) {
		return []int64{600, 400}, Config{
			Scheduler: mkSched(t, "sequential", 1000, 1),
			Rand:      rng.At(1, 1),
			MaxTime:   10,
		}
	}
	t.Run("churn", func(t *testing.T) {
		counts, cfg := mk()
		cfg.Churn = 0.1
		if _, err := RunLeap(counts, twoChoicesRule(), cfg, LeapConfig{}); err == nil || !strings.Contains(err.Error(), "churn") {
			t.Fatalf("err = %v, want churn rejection", err)
		}
	})
	t.Run("heap-poisson", func(t *testing.T) {
		counts, cfg := mk()
		cfg.Scheduler = mkSched(t, "heap-poisson", 1000, 1)
		if _, err := RunLeap(counts, twoChoicesRule(), cfg, LeapConfig{}); err == nil || !strings.Contains(err.Error(), "scheduler") {
			t.Fatalf("err = %v, want scheduler rejection", err)
		}
	})
	t.Run("no-flow-kernel", func(t *testing.T) {
		counts, cfg := mk()
		if _, err := RunLeap(counts, bareRule{twoChoicesRule()}, cfg, LeapConfig{}); err == nil || !strings.Contains(err.Error(), "flow law") {
			t.Fatalf("err = %v, want flow-law rejection", err)
		}
	})
	t.Run("bad-eps", func(t *testing.T) {
		counts, cfg := mk()
		if _, err := RunLeap(counts, twoChoicesRule(), cfg, LeapConfig{Eps: 0.7}); err == nil || !strings.Contains(err.Error(), "Eps") {
			t.Fatalf("err = %v, want Eps rejection", err)
		}
	})
	t.Run("bad-cutoff", func(t *testing.T) {
		counts, cfg := mk()
		if _, err := RunLeap(counts, twoChoicesRule(), cfg, LeapConfig{ExactCutoff: 1}); err == nil || !strings.Contains(err.Error(), "ExactCutoff") {
			t.Fatalf("err = %v, want cutoff rejection", err)
		}
	})
	t.Run("undecided-on-plain-rule", func(t *testing.T) {
		counts, cfg := mk()
		cfg.Undecided = 5
		if _, err := RunLeap(counts, twoChoicesRule(), cfg, LeapConfig{}); err == nil || !strings.Contains(err.Error(), "undecided") {
			t.Fatalf("err = %v, want undecided rejection", err)
		}
	})
	t.Run("budget-overflow", func(t *testing.T) {
		counts, cfg := mk()
		cfg.MaxTime = 1e30
		if _, err := RunLeap(counts, twoChoicesRule(), cfg, LeapConfig{}); err == nil || !strings.Contains(err.Error(), "MaxTime") {
			t.Fatalf("err = %v, want budget rejection", err)
		}
	})
	t.Run("nil-rule", func(t *testing.T) {
		counts, cfg := mk()
		if _, err := RunLeap(counts, nil, cfg, LeapConfig{}); err == nil {
			t.Fatal("nil rule accepted")
		}
	})
}

// TestRunLeapODEDisabled: a negative ODETheta must keep the run fully
// stochastic regardless of scale.
func TestRunLeapODEDisabled(t *testing.T) {
	counts := []int64{6_000_000, 4_000_000}
	res, err := RunLeap(counts, twoChoicesRule(), Config{
		Scheduler: mkSched(t, "sequential", 10_000_000, 23),
		Rand:      rng.At(23, 1),
		MaxTime:   1e6,
	}, LeapConfig{ODETheta: -1})
	if err != nil || !res.Done {
		t.Fatalf("res = %+v, err = %v", res, err)
	}
	if res.ODESteps != 0 {
		t.Fatalf("ODE regime fired despite being disabled: %+v", res)
	}
	if res.LeapSteps == 0 {
		t.Fatalf("expected tau-leaping at n = 1e7: %+v", res)
	}
}

func TestLeapable(t *testing.T) {
	if !Leapable(twoChoicesRule(), 2) {
		t.Fatal("two-choices must be leapable")
	}
	if Leapable(bareRule{twoChoicesRule()}, 2) {
		t.Fatal("a rule without a flow law must not be leapable")
	}
}

// TestRunLeapInitialConsensus mirrors the exact engine's contract.
func TestRunLeapInitialConsensus(t *testing.T) {
	counts := []int64{0, 50, 0}
	res, err := RunLeap(counts, twoChoicesRule(), Config{
		Scheduler: mkSched(t, "poisson", 50, 1),
		Rand:      rng.At(1, 1),
		MaxTime:   10,
	}, LeapConfig{})
	if err != nil || !res.Done || res.Winner != 1 || res.Ticks != 0 {
		t.Fatalf("res = %+v, err = %v", res, err)
	}
}
