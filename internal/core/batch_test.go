package core

import (
	"testing"

	"plurality/internal/graph"
	"plurality/internal/population"
	"plurality/internal/rng"
	"plurality/internal/sched"
)

// nextOnly hides a scheduler's NextBatch so Run falls back to the per-tick
// path, letting tests compare the two drivers on identical tick streams.
type nextOnly struct{ s sched.Scheduler }

func (w nextOnly) Next() sched.Tick { return w.s.Next() }
func (w nextOnly) N() int           { return w.s.N() }

// TestBatchedRunMatchesPerTick pins down the batching refactor: for a fixed
// seed, Run must produce bit-identical results whether ticks are delivered
// one at a time or in batches, under every engine and under the probe/delay
// configurations that route through the general path.
func TestBatchedRunMatchesPerTick(t *testing.T) {
	const n = 600
	mkSched := map[string]func(r *rng.RNG) (sched.Scheduler, error){
		"sequential": func(r *rng.RNG) (sched.Scheduler, error) { return sched.NewSequential(n, r) },
		"poisson":    func(r *rng.RNG) (sched.Scheduler, error) { return sched.NewPoisson(n, 1, r) },
		"heap":       func(r *rng.RNG) (sched.Scheduler, error) { return sched.NewHeapPoisson(n, 1, r) },
	}
	variants := map[string]func(*Config){
		"base":   func(*Config) {},
		"probe":  func(cfg *Config) { cfg.ProbeInterval = 5; cfg.OnProbe = func(Probe) {} },
		"delay":  func(cfg *Config) { cfg.Delay = sched.ExpDelay{Rate: 4} },
		"faults": func(cfg *Config) { cfg.CrashFraction = 0.1; cfg.DesyncFraction = 0.1; cfg.DesyncSpread = 50 },
	}

	for schedName, mk := range mkSched {
		for varName, mutate := range variants {
			runOnce := func(batched bool) Result {
				counts, err := population.BiasedCounts(n, 4, 1)
				if err != nil {
					t.Fatal(err)
				}
				pop, err := population.FromCounts(counts)
				if err != nil {
					t.Fatal(err)
				}
				g, err := graph.NewComplete(n)
				if err != nil {
					t.Fatal(err)
				}
				s, err := mk(rng.At(77, 0))
				if err != nil {
					t.Fatal(err)
				}
				cfg := Config{Graph: g, Scheduler: s, Rand: rng.At(77, 1), MaxTime: 1e5}
				if !batched {
					cfg.Scheduler = nextOnly{s}
				}
				mutate(&cfg)
				res, err := Run(pop, cfg)
				if err != nil {
					t.Fatalf("%s/%s batched=%v: %v", schedName, varName, batched, err)
				}
				return res
			}
			if a, b := runOnce(false), runOnce(true); a != b {
				t.Errorf("%s/%s: per-tick result %+v != batched result %+v", schedName, varName, a, b)
			}
		}
	}
}

// TestSmallPopulations is the n < 20 regression suite: probing and fault
// injection on single-digit populations must not panic on degenerate
// quantile indices and must still reach consensus.
func TestSmallPopulations(t *testing.T) {
	for n := 4; n < 20; n++ {
		counts := make([]int64, 2)
		counts[0] = int64(n) - int64(n)/2
		counts[1] = int64(n) / 2
		pop, err := population.FromCounts(counts)
		if err != nil {
			t.Fatal(err)
		}
		g, err := graph.NewComplete(n)
		if err != nil {
			t.Fatal(err)
		}
		s, err := sched.NewPoisson(n, 1, rng.At(uint64(n), 0))
		if err != nil {
			t.Fatal(err)
		}
		probes := 0
		cfg := Config{
			Graph:          g,
			Scheduler:      s,
			Rand:           rng.At(uint64(n), 1),
			MaxTime:        1e6,
			DesyncFraction: 0.05,
			DesyncSpread:   3,
			ProbeInterval:  50,
			OnProbe: func(p Probe) {
				probes++
				if p.Spread90 < 0 || p.MaxAbsDev < 0 || p.Active < 0 {
					t.Errorf("n=%d: malformed probe %+v", n, p)
				}
			},
		}
		res, err := Run(pop, cfg)
		if err != nil {
			t.Errorf("n=%d: %v", n, err)
			continue
		}
		if !res.Done {
			t.Errorf("n=%d: no consensus: %+v", n, res)
		}
		if probes == 0 {
			t.Errorf("n=%d: probe never fired", n)
		}
	}
}

// TestDesyncAtLeastOneNode: a positive DesyncFraction must desynchronize at
// least one node even when fraction·n rounds down to zero.
func TestDesyncAtLeastOneNode(t *testing.T) {
	const n = 10
	counts := []int64{6, 4}
	pop, err := population.FromCounts(counts)
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.NewComplete(n)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.NewSequential(n, rng.At(3, 0))
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Graph: g, Scheduler: s, Rand: rng.At(3, 1), MaxTime: 1e5,
		DesyncFraction: 0.05, // 0.05·10 = 0.5 → rounds down to zero nodes
		DesyncSpread:   1000,
	}
	spec, err := Plan(cfg, n)
	if err != nil {
		t.Fatal(err)
	}
	var st state
	if err := st.reset(pop, cfg, spec); err != nil {
		t.Fatal(err)
	}
	desynced := 0
	for u := 0; u < n; u++ {
		if st.working[u] != 0 {
			desynced++
		}
	}
	if desynced != 1 {
		t.Errorf("desynced %d nodes, want exactly 1 (rounded up from 0.5)", desynced)
	}
}

func TestQuantileIndex(t *testing.T) {
	cases := []struct{ n, pct, want int }{
		{1, 5, 0}, {1, 95, 0},
		{3, 5, 0}, {3, 95, 2},
		{19, 5, 0}, {19, 95, 18},
		{100, 5, 5}, {100, 95, 95},
		{1, 100, 0}, // degenerate pct clamps instead of indexing past the end
		{5, 0, 0},
	}
	for _, c := range cases {
		if got := quantileIndex(c.n, c.pct); got != c.want {
			t.Errorf("quantileIndex(%d, %d) = %d, want %d", c.n, c.pct, got, c.want)
		}
	}
}
