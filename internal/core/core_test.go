package core

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"plurality/internal/graph"
	"plurality/internal/population"
	"plurality/internal/rng"
	"plurality/internal/sched"
)

func TestPlanDefaults(t *testing.T) {
	spec, err := Plan(Config{}, 100000)
	if err != nil {
		t.Fatal(err)
	}
	ln := math.Log(100000.0)
	wantDelta := int(math.Ceil(DefaultDeltaFactor * ln / math.Log(ln)))
	if spec.Delta != wantDelta {
		t.Errorf("Delta = %d, want %d", spec.Delta, wantDelta)
	}
	if spec.PhaseTicks != 7*spec.Delta {
		t.Errorf("PhaseTicks = %d, want 7*Delta = %d", spec.PhaseTicks, 7*spec.Delta)
	}
	if spec.Phases != int(math.Ceil(math.Log2(ln)))+DefaultPhaseSlack {
		t.Errorf("Phases = %d", spec.Phases)
	}
	if spec.Part1Ticks != spec.Phases*spec.PhaseTicks {
		t.Errorf("Part1Ticks = %d", spec.Part1Ticks)
	}
	if spec.EndgameTicks != int(math.Ceil(DefaultEndgameFactor*ln)) {
		t.Errorf("EndgameTicks = %d", spec.EndgameTicks)
	}
	if spec.GadgetSamples < 1 || spec.GadgetSamples > spec.Delta {
		t.Errorf("GadgetSamples = %d outside [1, Delta=%d]", spec.GadgetSamples, spec.Delta)
	}
}

func TestPlanLayoutInvariants(t *testing.T) {
	// Property: for any n, the instruction windows are ordered, disjoint
	// and contained in one phase.
	check := func(raw uint32) bool {
		n := int(raw%1_000_000) + 4
		spec, err := Plan(Config{}, n)
		if err != nil {
			return false
		}
		return spec.CommitOffset == 2*spec.Delta &&
			spec.BPStart == 3*spec.Delta &&
			spec.BPEnd == 4*spec.Delta &&
			spec.GadgetStart == 5*spec.Delta &&
			spec.GadgetStart+spec.GadgetSamples <= 6*spec.Delta &&
			spec.JumpOffset == spec.PhaseTicks-1 &&
			spec.JumpOffset >= spec.GadgetStart+spec.GadgetSamples &&
			0 < spec.CommitOffset &&
			spec.CommitOffset < spec.BPStart
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPlanOverridesAndErrors(t *testing.T) {
	if _, err := Plan(Config{}, 3); err == nil {
		t.Error("n=3 should fail")
	}
	if _, err := Plan(Config{Delta: 1}, 100); err == nil {
		t.Error("Delta=1 should fail")
	}
	if _, err := Plan(Config{Phases: -1}, 100); err == nil {
		t.Error("negative phases should fail")
	}
	spec, err := Plan(Config{Delta: 10, Phases: 3, GadgetSamples: 99, EndgameTicks: 7}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Delta != 10 || spec.Phases != 3 || spec.EndgameTicks != 7 {
		t.Fatalf("overrides ignored: %+v", spec)
	}
	if spec.GadgetSamples != 10 {
		t.Fatalf("GadgetSamples = %d, want clamped to Delta", spec.GadgetSamples)
	}
}

func TestPlanSkipPart1(t *testing.T) {
	spec, err := Plan(Config{SkipPart1: true}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Part1Ticks != 0 || spec.Phases != 0 {
		t.Fatalf("SkipPart1 spec = %+v", spec)
	}
}

// harness builds a ready-to-run config over the complete graph.
func harness(t *testing.T, n int, seed uint64) (graph.Graph, sched.Scheduler, *rng.RNG) {
	t.Helper()
	g, err := graph.NewComplete(n)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.NewSequential(n, rng.At(seed, 0))
	if err != nil {
		t.Fatal(err)
	}
	return g, s, rng.At(seed, 1)
}

func biasedPop(t *testing.T, n, k int, eps float64) *population.Population {
	t.Helper()
	counts, err := population.BiasedCounts(n, k, eps)
	if err != nil {
		t.Fatal(err)
	}
	pop, err := population.FromCounts(counts)
	if err != nil {
		t.Fatal(err)
	}
	return pop
}

func TestRunValidation(t *testing.T) {
	n := 100
	g, s, r := harness(t, n, 1)
	pop := biasedPop(t, n, 2, 1)
	tests := []struct {
		name string
		pop  *population.Population
		cfg  Config
	}{
		{name: "nil population", cfg: Config{Graph: g, Scheduler: s, Rand: r, MaxTime: 1}},
		{name: "nil graph", pop: pop, cfg: Config{Scheduler: s, Rand: r, MaxTime: 1}},
		{name: "nil scheduler", pop: pop, cfg: Config{Graph: g, Rand: r, MaxTime: 1}},
		{name: "nil rand", pop: pop, cfg: Config{Graph: g, Scheduler: s, MaxTime: 1}},
		{name: "zero time", pop: pop, cfg: Config{Graph: g, Scheduler: s, Rand: r}},
		{name: "bad crash fraction", pop: pop, cfg: Config{Graph: g, Scheduler: s, Rand: r, MaxTime: 1, CrashFraction: 1}},
		{name: "bad desync fraction", pop: pop, cfg: Config{Graph: g, Scheduler: s, Rand: r, MaxTime: 1, DesyncFraction: -0.1}},
		{name: "desync without spread", pop: pop, cfg: Config{Graph: g, Scheduler: s, Rand: r, MaxTime: 1, DesyncFraction: 0.1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Run(tt.pop, tt.cfg); err == nil {
				t.Error("want validation error")
			}
		})
	}
}

// TestConvergesToPlurality is the unit-scale version of experiment E6: with
// a (1+ε) multiplicative bias the protocol elects the plurality color.
func TestConvergesToPlurality(t *testing.T) {
	const n, k = 8000, 8
	wins := 0
	const trials = 3
	for trial := 0; trial < trials; trial++ {
		g, s, r := harness(t, n, uint64(100+trial))
		pop := biasedPop(t, n, k, 0.5)
		res, err := Run(pop, Config{
			Graph:     g,
			Scheduler: s,
			Rand:      r,
			MaxTime:   1e5,
		})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !res.Done {
			t.Fatalf("trial %d not done: %+v", trial, res)
		}
		if res.Winner == 0 {
			wins++
		}
		if res.Jumps == 0 {
			t.Error("sync gadget never jumped")
		}
	}
	if wins < trials {
		t.Fatalf("plurality won only %d/%d trials", wins, trials)
	}
}

func TestRunDeterministic(t *testing.T) {
	run := func() Result {
		const n = 2000
		g, s, r := harness(t, n, 7)
		pop := biasedPop(t, n, 4, 1)
		res, err := Run(pop, Config{Graph: g, Scheduler: s, Rand: r, MaxTime: 1e5})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("identical seeds diverged:\n%+v\n%+v", a, b)
	}
}

func TestAlreadyUnanimous(t *testing.T) {
	const n = 100
	g, s, r := harness(t, n, 8)
	pop, err := population.FromCounts([]int64{n})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(pop, Config{Graph: g, Scheduler: s, Rand: r, MaxTime: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done || res.Winner != 0 {
		t.Fatalf("res = %+v", res)
	}
}

func TestNoConsensusBudget(t *testing.T) {
	// A tiny time budget cannot finish; expect ErrNoConsensus.
	const n = 1000
	g, s, r := harness(t, n, 9)
	pop := biasedPop(t, n, 4, 0.5)
	res, err := Run(pop, Config{Graph: g, Scheduler: s, Rand: r, MaxTime: 2})
	if !errors.Is(err, ErrNoConsensus) {
		t.Fatalf("err = %v, want ErrNoConsensus", err)
	}
	if res.Done {
		t.Fatal("cannot be done in 2 time units")
	}
}

// TestSyncGadgetKeepsNodesSynchronized is the unit-scale version of
// experiment E7: with the gadget on, at every probe the fraction of poorly
// synchronized nodes (working time more than ∆ from the median) stays
// small.
func TestSyncGadgetKeepsNodesSynchronized(t *testing.T) {
	const n = 5000
	g, s, r := harness(t, n, 10)
	pop := biasedPop(t, n, 4, 0.5)
	var worstPoorFrac float64
	probes := 0
	_, err := Run(pop, Config{
		Graph:         g,
		Scheduler:     s,
		Rand:          r,
		MaxTime:       1e5,
		ProbeInterval: 5,
		OnProbe: func(p Probe) {
			probes++
			if p.Active == 0 {
				return
			}
			frac := float64(p.PoorlySynced) / float64(p.Active)
			if frac > worstPoorFrac {
				worstPoorFrac = frac
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if probes == 0 {
		t.Fatal("no probes delivered")
	}
	if worstPoorFrac > 0.10 {
		t.Fatalf("poorly synced fraction peaked at %.3f, want <= 0.10", worstPoorFrac)
	}
}

// TestSyncGadgetRecoversFromDesync: with o(n) nodes starting adversarially
// desynchronized by up to two whole phases, the gadget must pull them back
// into the bulk schedule and the protocol must still converge to the
// plurality — the paper's "poorly synchronized nodes" tolerance in action.
func TestSyncGadgetRecoversFromDesync(t *testing.T) {
	const n = 5000
	g, s, r := harness(t, n, 11)
	pop := biasedPop(t, n, 4, 1)
	spec, err := Plan(Config{}, n)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(pop, Config{
		Graph:          g,
		Scheduler:      s,
		Rand:           r,
		MaxTime:        1e5,
		DesyncFraction: 0.05,
		DesyncSpread:   2 * spec.PhaseTicks,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done || res.Winner != 0 {
		t.Fatalf("did not recover from desync: %+v", res)
	}
	if res.Jumps == 0 {
		t.Fatal("gadget never fired")
	}
}

// TestGadgetAblationDrifts: without the sync gadget the working-time spread
// grows with time; with it, the spread stays bounded. This is experiment
// E7's core comparison at unit scale.
func TestGadgetAblationDrifts(t *testing.T) {
	const n = 3000
	maxSpread := func(disable bool) int64 {
		g, s, r := harness(t, n, 12)
		pop := biasedPop(t, n, 2, 1)
		var worst int64
		cfg := Config{
			Graph:             g,
			Scheduler:         s,
			Rand:              r,
			MaxTime:           1e5,
			DisableSyncGadget: disable,
			Phases:            12, // long part 1 so drift has time to show
			ProbeInterval:     5,
			OnProbe: func(p Probe) {
				if p.Spread90 > worst {
					worst = p.Spread90
				}
			},
		}
		// Without the gadget consensus may still happen (two-choices is
		// robust for k=2); we only compare observed spreads.
		res, err := Run(pop, cfg)
		if err != nil && !errors.Is(err, ErrNoConsensus) {
			t.Fatal(err)
		}
		_ = res
		return worst
	}
	withGadget := maxSpread(false)
	withoutGadget := maxSpread(true)
	if withoutGadget <= withGadget {
		t.Fatalf("ablation: spread with gadget %d, without %d — gadget shows no benefit",
			withGadget, withoutGadget)
	}
}

// TestEndgameSafety is the unit-scale version of experiment E9: starting
// from c_1 ≥ (1−ε)n and running part 2 only, consensus must land before the
// first node halts.
func TestEndgameSafety(t *testing.T) {
	const n = 10000
	for trial := 0; trial < 3; trial++ {
		g, s, r := harness(t, n, uint64(200+trial))
		pop, err := population.FromCounts([]int64{int64(n) * 9 / 10, int64(n) / 10})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(pop, Config{
			Graph:     g,
			Scheduler: s,
			Rand:      r,
			MaxTime:   1e5,
			SkipPart1: true,
			RunToHalt: true,
		})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !res.Done || res.Winner != 0 {
			t.Fatalf("trial %d failed: %+v", trial, res)
		}
		if !res.EndgameSafe {
			t.Fatalf("trial %d: consensus at %.2f after first halt at %.2f",
				trial, res.ConsensusTime, res.FirstHaltTime)
		}
		if res.FirstHaltTime == 0 {
			t.Fatalf("trial %d: RunToHalt produced no halts", trial)
		}
	}
}

// TestCrashTolerance: with o(n) crashed nodes the live nodes still reach
// consensus on the plurality color.
func TestCrashTolerance(t *testing.T) {
	const n = 6000
	g, s, r := harness(t, n, 13)
	pop := biasedPop(t, n, 4, 1)
	res, err := Run(pop, Config{
		Graph:         g,
		Scheduler:     s,
		Rand:          r,
		MaxTime:       1e5,
		CrashFraction: 0.01,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done || res.Winner != 0 {
		t.Fatalf("crash run failed: %+v", res)
	}
	// Live consensus means overall count is at least (1-fraction)·n.
	if pop.Count(0) < int64(0.98*n) {
		t.Fatalf("live consensus but only %d/%d hold the winner", pop.Count(0), n)
	}
}

// TestResponseDelays is the unit-scale version of experiment E12: with
// Exp(θ) response delays the protocol still converges to the plurality,
// only a constant factor slower.
func TestResponseDelays(t *testing.T) {
	const n = 5000
	runWith := func(delay sched.DelayModel) Result {
		g, s, r := harness(t, n, 14)
		pop := biasedPop(t, n, 4, 1)
		res, err := Run(pop, Config{
			Graph:     g,
			Scheduler: s,
			Rand:      r,
			MaxTime:   1e5,
			Delay:     delay,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	instant := runWith(nil)
	delayed := runWith(sched.ExpDelay{Rate: 1})
	if !delayed.Done || delayed.Winner != 0 {
		t.Fatalf("delayed run failed: %+v", delayed)
	}
	if delayed.ConsensusTime <= instant.ConsensusTime {
		t.Fatalf("delays made the run faster? instant %.1f, delayed %.1f",
			instant.ConsensusTime, delayed.ConsensusTime)
	}
	// Constant-factor slowdown, not blowup.
	if delayed.ConsensusTime > 6*instant.ConsensusTime {
		t.Fatalf("delayed run %.1f >> instant %.1f — more than constant-factor slowdown",
			delayed.ConsensusTime, instant.ConsensusTime)
	}
}

// TestPoissonEngineAgrees is the unit-scale version of experiment E11: the
// sequential and continuous engines give comparable convergence times.
func TestPoissonEngineAgrees(t *testing.T) {
	const n = 4000
	runOn := func(mk func() (sched.Scheduler, error)) float64 {
		s, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		g, err := graph.NewComplete(n)
		if err != nil {
			t.Fatal(err)
		}
		pop := biasedPop(t, n, 4, 1)
		res, err := Run(pop, Config{
			Graph:     g,
			Scheduler: s,
			Rand:      rng.At(15, 1),
			MaxTime:   1e5,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Done {
			t.Fatal("not done")
		}
		return res.ConsensusTime
	}
	seqTime := runOn(func() (sched.Scheduler, error) { return sched.NewSequential(n, rng.At(15, 0)) })
	poiTime := runOn(func() (sched.Scheduler, error) { return sched.NewPoisson(n, 1, rng.At(15, 0)) })
	ratio := seqTime / poiTime
	if ratio < 0.5 || ratio > 2 {
		t.Fatalf("engines disagree: sequential %.1f vs poisson %.1f", seqTime, poiTime)
	}
}

func TestProbeFields(t *testing.T) {
	const n = 1000
	g, s, r := harness(t, n, 16)
	pop := biasedPop(t, n, 2, 1)
	var got []Probe
	_, err := Run(pop, Config{
		Graph:         g,
		Scheduler:     s,
		Rand:          r,
		MaxTime:       1e5,
		ProbeInterval: 10,
		OnProbe:       func(p Probe) { got = append(got, p) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("no probes")
	}
	first := got[0]
	if first.Active != n || first.Halted != 0 {
		t.Fatalf("first probe %+v", first)
	}
	for i, p := range got {
		if p.PluralityFraction <= 0 || p.PluralityFraction > 1 {
			t.Fatalf("probe %d: bad plurality fraction %v", i, p.PluralityFraction)
		}
		if p.Spread90 < 0 || p.MaxAbsDev < p.Spread90/2 {
			t.Fatalf("probe %d: inconsistent spreads %+v", i, p)
		}
		if i > 0 && p.Time <= got[i-1].Time {
			t.Fatalf("probe times not increasing")
		}
	}
	// Plurality support must grow over the run.
	if last := got[len(got)-1]; last.PluralityFraction <= first.PluralityFraction {
		t.Fatalf("plurality fraction did not grow: %.3f -> %.3f",
			first.PluralityFraction, last.PluralityFraction)
	}
}
