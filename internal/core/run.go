package core

import (
	"errors"
	"fmt"
	"sort"

	"plurality/internal/graph"
	"plurality/internal/population"
	"plurality/internal/sched"
)

// Run executes the asynchronous plurality-consensus protocol on pop until
// all live nodes agree, every node halts, or cfg.MaxTime elapses. The
// population is mutated in place.
func Run(pop *population.Population, cfg Config) (Result, error) {
	if err := validate(pop, cfg); err != nil {
		return Result{}, err
	}
	spec, err := Plan(cfg, pop.N())
	if err != nil {
		return Result{}, err
	}
	st, err := newState(pop, cfg, spec)
	if err != nil {
		return Result{}, err
	}

	last := st.run()
	st.res.Time = last.Time
	st.res.Ticks = last.Seq + 1
	st.res.EndgameSafe = st.res.Done &&
		(st.res.FirstHaltTime == 0 || st.res.ConsensusTime <= st.res.FirstHaltTime)
	if !st.res.Done {
		// Either the time budget ran out or every live node halted
		// without agreement; both are protocol failures.
		st.res.Winner = pop.Plurality()
		return st.res, fmt.Errorf("core: %w (budget %v)", ErrNoConsensus, cfg.MaxTime)
	}
	return st.res, nil
}

func validate(pop *population.Population, cfg Config) error {
	switch {
	case pop == nil:
		return errors.New("core: nil population")
	case cfg.Graph == nil:
		return errors.New("core: nil graph")
	case cfg.Scheduler == nil:
		return errors.New("core: nil scheduler")
	case cfg.Rand == nil:
		return errors.New("core: nil rand")
	case cfg.MaxTime <= 0:
		return fmt.Errorf("core: MaxTime = %v, want > 0", cfg.MaxTime)
	case cfg.Graph.N() != pop.N():
		return fmt.Errorf("core: graph has %d nodes, population %d", cfg.Graph.N(), pop.N())
	case cfg.Scheduler.N() != pop.N():
		return fmt.Errorf("core: scheduler has %d nodes, population %d", cfg.Scheduler.N(), pop.N())
	case cfg.CrashFraction < 0 || cfg.CrashFraction >= 1:
		return fmt.Errorf("core: CrashFraction = %v, want [0, 1)", cfg.CrashFraction)
	case cfg.ChurnRate < 0 || cfg.ChurnRate >= 1:
		return fmt.Errorf("core: ChurnRate = %v, want [0, 1)", cfg.ChurnRate)
	case cfg.DesyncFraction < 0 || cfg.DesyncFraction >= 1:
		return fmt.Errorf("core: DesyncFraction = %v, want [0, 1)", cfg.DesyncFraction)
	case cfg.DesyncFraction > 0 && cfg.DesyncSpread <= 0:
		return fmt.Errorf("core: DesyncFraction set but DesyncSpread = %d", cfg.DesyncSpread)
	}
	if cfg.CrashFraction > 0 {
		// Crashed nodes stay visible to sampling, which matches the
		// paper's model on the clique where every sample is one of n-1
		// interchangeable nodes. On a sparse topology the same rule can
		// leave a live node whose entire neighborhood crashed with no way
		// to ever change opinion, deadlocking the run with no error.
		// Reject the combination instead of silently sampling the dead.
		if _, ok := cfg.Graph.(graph.Complete); !ok {
			return fmt.Errorf("core: CrashFraction = %v requires the complete graph, got %T (crashed nodes remain sampled; a sparse neighborhood of crashed nodes would deadlock)", cfg.CrashFraction, cfg.Graph)
		}
	}
	return nil
}

// state is the mutable execution state of one run.
type state struct {
	cfg  Config
	spec Spec
	pop  *population.Population
	res  Result

	n int

	// Per-node protocol state.
	working      []int64            // schedule position
	real         []int64            // total ticks performed
	intermediate []population.Color // two-choices intermediate color
	bit          []bool             // the OneExtraBit memory bit
	halted       []bool             // finished part 2
	crashed      []bool             // failure injection: never acts
	busyUntil    []float64          // §4 delays: blocked until this time

	// Sync Gadget sample stores: samples[u*L+i] holds the i-th collected
	// real-time delta (sampled node's real time minus own real time at
	// collection), kept current implicitly because both sides advance by
	// one per own tick.
	samples     []int64
	sampleCount []int32
	medianBuf   []int64

	// Consensus bookkeeping over live (non-crashed) nodes.
	liveN      int64
	liveCounts []int64

	haltedCount int
	delaying    bool

	nextProbe float64
	probeBuf  []int64
}

func newState(pop *population.Population, cfg Config, spec Spec) (*state, error) {
	n := pop.N()
	st := &state{
		cfg:          cfg,
		spec:         spec,
		pop:          pop,
		n:            n,
		working:      make([]int64, n),
		real:         make([]int64, n),
		intermediate: make([]population.Color, n),
		bit:          make([]bool, n),
		halted:       make([]bool, n),
		samples:      make([]int64, n*spec.GadgetSamples),
		sampleCount:  make([]int32, n),
		medianBuf:    make([]int64, spec.GadgetSamples),
		liveCounts:   make([]int64, pop.K()),
	}
	for u := range st.intermediate {
		st.intermediate[u] = population.None
	}

	if _, instant := cfg.Delay.(sched.ZeroDelay); cfg.Delay != nil && !instant {
		st.delaying = true
	}
	if cfg.Latency != nil {
		st.delaying = true
	}
	if st.delaying {
		st.busyUntil = make([]float64, n)
	}

	if cfg.CrashFraction > 0 {
		st.crashed = make([]bool, n)
		// Crash a deterministic random subset of the requested size.
		target := int(cfg.CrashFraction * float64(n))
		perm := cfg.Rand.Perm(n)
		for i := 0; i < target; i++ {
			st.crashed[perm[i]] = true
		}
	}
	for u := 0; u < n; u++ {
		if st.crashed != nil && st.crashed[u] {
			continue
		}
		st.liveN++
		st.liveCounts[pop.ColorOf(u)]++
	}
	if st.liveN == 0 {
		return nil, errors.New("core: all nodes crashed")
	}

	if cfg.DesyncFraction > 0 {
		target := int(cfg.DesyncFraction * float64(n))
		// At small n (< 20 for the common 5–10% fractions) the requested
		// fraction can round down to zero nodes; honor the option by
		// desynchronizing at least one node.
		if target == 0 {
			target = 1
		}
		perm := cfg.Rand.Perm(n)
		for i := 0; i < target; i++ {
			u := perm[i]
			w := int64(cfg.Rand.Intn(cfg.DesyncSpread))
			st.working[u] = w
			st.real[u] = w
		}
	}

	// An initially unanimous (live) population is already done.
	for c, cnt := range st.liveCounts {
		if cnt == st.liveN {
			st.res.Done = true
			st.res.Winner = population.Color(c)
		}
	}

	st.nextProbe = 0
	if cfg.ProbeInterval < 0 {
		st.nextProbe = -1
	}
	return st, nil
}

// adopt switches node u to color c, maintaining live-node consensus
// bookkeeping. u must be live.
func (st *state) adopt(u int, c population.Color, now float64) {
	old := st.pop.ColorOf(u)
	if old == c {
		return
	}
	st.pop.SetColor(u, c)
	st.liveCounts[old]--
	st.liveCounts[c]++
	if st.liveCounts[c] == st.liveN && !st.res.Done {
		st.res.Done = true
		st.res.Winner = c
		st.res.ConsensusTime = now
	}
}

// block applies response blocking after a communicating step that
// contacted node v: the §4 per-step delay plus the per-edge latency of the
// Bankhamer et al. extension, composed additively when both are set.
func (st *state) block(u, v int, now float64) {
	if !st.delaying {
		return
	}
	var d float64
	if st.cfg.Latency != nil {
		// A negative draw counts as 0 (the LatencyModel contract), so it
		// cannot cancel out the §4 delay added below.
		if l := st.cfg.Latency.SampleLatency(st.cfg.Rand, u, v); l > 0 {
			d = l
		}
	}
	if st.cfg.Delay != nil {
		d += st.cfg.Delay.SampleDelay(st.cfg.Rand)
	}
	if d > 0 {
		st.busyUntil[u] = now + d
	}
}

// block2 is block for a step that contacted two nodes: the node waits for
// the slower of the two edge responses (plus the per-step delay).
func (st *state) block2(u, v1, v2 int, now float64) {
	if !st.delaying {
		return
	}
	var d float64
	if st.cfg.Latency != nil {
		d = sched.MaxLatency(st.cfg.Latency, st.cfg.Rand, u, v1, v2)
	}
	if st.cfg.Delay != nil {
		d += st.cfg.Delay.SampleDelay(st.cfg.Rand)
	}
	if d > 0 {
		st.busyUntil[u] = now + d
	}
}

// run drives the scheduler until the protocol reports completion or
// MaxTime elapses, returning the last delivered tick. When the scheduler
// supports batch delivery it pulls ticks in chunks and — in the common
// no-delay, no-probe case — dispatches them through a specialized loop with
// no per-tick closure or interface call; the general per-tick path is kept
// for delay models and probing. Both paths consume the protocol RNG
// identically, so results for a fixed seed do not depend on which one runs.
func (st *state) run() sched.Tick {
	bs, ok := st.cfg.Scheduler.(sched.BatchScheduler)
	if !ok {
		last, _ := sched.RunUntil(st.cfg.Scheduler, st.cfg.MaxTime, st.tick)
		return last
	}
	probing := st.nextProbe >= 0 && st.cfg.OnProbe != nil
	if st.delaying || probing {
		last, _ := sched.RunBatch(st.cfg.Scheduler, st.cfg.MaxTime, st.tick)
		return last
	}
	var last sched.Tick
	maxTime := st.cfg.MaxTime
	buf := make([]sched.Tick, sched.BatchSize)
	for {
		bs.NextBatch(buf)
		for _, t := range buf {
			if t.Time > maxTime {
				return last
			}
			last = t
			if !st.tickFast(t.Node, t.Time) {
				return last
			}
		}
	}
}

// tick handles one scheduler activation. It returns false once the run can
// stop: consensus reached, or every live node has halted.
func (st *state) tick(t sched.Tick) bool {
	if st.nextProbe >= 0 && t.Time >= st.nextProbe && st.cfg.OnProbe != nil {
		st.probe(t.Time)
	}

	u := t.Node
	if st.delaying && !st.halted[u] && (st.crashed == nil || !st.crashed[u]) && t.Time < st.busyUntil[u] {
		// Waiting for a response: the clock ticked but no protocol work
		// is performed. Real time deliberately does not advance either —
		// it counts ticks *performed*, so that under the §4 delay
		// extension real time stays proportional to schedule progress
		// and the Sync Gadget's real-time median remains a valid jump
		// target for working time.
		return st.keepGoing()
	}
	return st.tickFast(u, t.Time)
}

// tickFast is the delay- and probe-free activation body shared by both run
// paths.
func (st *state) tickFast(u int, now float64) bool {
	if st.halted[u] || (st.crashed != nil && st.crashed[u]) {
		return st.keepGoing()
	}
	if st.cfg.ChurnRate > 0 && st.cfg.Rand.Bernoulli(st.cfg.ChurnRate) {
		st.churn(u, now)
		return st.keepGoing()
	}
	st.real[u]++

	w := st.working[u]
	st.working[u] = w + 1

	if w >= int64(st.spec.Part1Ticks) {
		st.endgameTick(u, w, now)
		return st.keepGoing()
	}
	st.part1Tick(u, w, now)
	return st.keepGoing()
}

func (st *state) keepGoing() bool {
	if st.res.Done && !st.cfg.RunToHalt {
		return false
	}
	return st.haltedCount < int(st.liveN)
}

// part1Tick executes the schedule instruction at working time w (< Part1Ticks).
func (st *state) part1Tick(u int, w int64, now float64) {
	pos := int(w % int64(st.spec.PhaseTicks))
	switch {
	case pos == 0:
		// Two-Choices step: sample two nodes with replacement.
		va := st.cfg.Graph.Sample(st.cfg.Rand, u)
		vb := st.cfg.Graph.Sample(st.cfg.Rand, u)
		if a := st.pop.ColorOf(va); a == st.pop.ColorOf(vb) {
			st.intermediate[u] = a
		} else {
			st.intermediate[u] = population.None
		}
		st.block2(u, va, vb, now)

	case pos == st.spec.CommitOffset:
		// Commit step: adopt the intermediate color; the bit records
		// whether the node executed the adopt action.
		if c := st.intermediate[u]; c != population.None {
			st.adopt(u, c, now)
			st.bit[u] = true
		} else {
			st.bit[u] = false
		}
		st.intermediate[u] = population.None

	case pos >= st.spec.BPStart && pos < st.spec.BPEnd:
		// Bit-Propagation: bitless nodes pull until they hit a bit.
		if !st.bit[u] {
			v := st.cfg.Graph.Sample(st.cfg.Rand, u)
			if st.bit[v] {
				st.adopt(u, st.pop.ColorOf(v), now)
				st.bit[u] = true
			}
			st.block(u, v, now)
		}

	case !st.cfg.DisableSyncGadget && pos >= st.spec.GadgetStart && pos < st.spec.GadgetStart+st.spec.GadgetSamples:
		// Sync Gadget sampling: collect the neighbor's real time as a
		// delta against our own; the delta stays current as both real
		// times advance at rate one per own tick.
		v := st.cfg.Graph.Sample(st.cfg.Rand, u)
		if cnt := st.sampleCount[u]; int(cnt) < st.spec.GadgetSamples {
			st.samples[u*st.spec.GadgetSamples+int(cnt)] = st.real[v] - st.real[u]
			st.sampleCount[u] = cnt + 1
		}
		st.block(u, v, now)

	case !st.cfg.DisableSyncGadget && pos == st.spec.JumpOffset:
		st.jump(u, w)
	}
	// All other positions are do-nothing padding (tactical waiting).
}

// jump executes the Sync Gadget jump step: working time becomes the median
// of the collected real-time samples, brought current by adding the node's
// own real time.
func (st *state) jump(u int, w int64) {
	cnt := int(st.sampleCount[u])
	if cnt == 0 {
		return
	}
	buf := st.medianBuf[:cnt]
	copy(buf, st.samples[u*st.spec.GadgetSamples:u*st.spec.GadgetSamples+cnt])
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	median := buf[cnt/2]
	if cnt%2 == 0 {
		median = (buf[cnt/2-1] + buf[cnt/2]) / 2
	}
	target := median + st.real[u]
	if target < 0 {
		target = 0
	}
	adj := target - (w + 1)
	if adj < 0 {
		adj = -adj
	}
	if adj > st.res.MaxJumpAdjustment {
		st.res.MaxJumpAdjustment = adj
	}
	st.working[u] = target
	st.sampleCount[u] = 0
	st.res.Jumps++
}

// endgameTick executes part 2: asynchronous Two-Choices with immediate
// adoption, then halt after the per-node budget.
func (st *state) endgameTick(u int, w int64, now float64) {
	e := w - int64(st.spec.Part1Ticks)
	if e >= int64(st.spec.EndgameTicks) {
		st.halted[u] = true
		st.haltedCount++
		if st.res.FirstHaltTime == 0 {
			st.res.FirstHaltTime = now
		}
		return
	}
	va := st.cfg.Graph.Sample(st.cfg.Rand, u)
	vb := st.cfg.Graph.Sample(st.cfg.Rand, u)
	if a := st.pop.ColorOf(va); a == st.pop.ColorOf(vb) {
		st.adopt(u, a, now)
	}
	st.block2(u, va, vb, now)
}

// churn replaces node u with a fresh joiner: a uniformly random opinion,
// working and real time zero, and cleared protocol state (no bit, no
// intermediate, empty gadget sample store). The churned activation performs
// no protocol work; the Sync Gadget pulls the rejoined node back into the
// bulk schedule at its first jump, exactly as it repairs desynchronized
// nodes.
func (st *state) churn(u int, now float64) {
	st.adopt(u, population.Color(st.cfg.Rand.Intn(st.pop.K())), now)
	st.working[u] = 0
	st.real[u] = 0
	st.bit[u] = false
	st.intermediate[u] = population.None
	st.sampleCount[u] = 0
	st.res.Churns++
}

// probe emits a synchronization-quality snapshot and schedules the next one.
func (st *state) probe(now float64) {
	interval := st.cfg.ProbeInterval
	if interval == 0 {
		interval = 1
	}
	st.nextProbe = now + interval

	if cap(st.probeBuf) < st.n {
		st.probeBuf = make([]int64, 0, st.n)
	}
	buf := st.probeBuf[:0]
	halted := 0
	for u := 0; u < st.n; u++ {
		if st.crashed != nil && st.crashed[u] {
			continue
		}
		if st.halted[u] {
			halted++
			continue
		}
		buf = append(buf, st.working[u])
	}
	st.probeBuf = buf

	p := Probe{
		Time:              now,
		Active:            len(buf),
		Halted:            halted,
		PluralityFraction: st.pop.Fraction(st.pop.Plurality()),
	}
	if len(buf) > 0 {
		sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
		med := buf[len(buf)/2]
		q5 := buf[quantileIndex(len(buf), 5)]
		q95 := buf[quantileIndex(len(buf), 95)]
		p.MedianWorking = med
		p.Spread90 = q95 - q5
		maxDev := int64(0)
		poor := 0
		for _, w := range buf {
			d := w - med
			if d < 0 {
				d = -d
			}
			if d > maxDev {
				maxDev = d
			}
			if d > int64(st.spec.Delta) {
				poor++
			}
		}
		p.MaxAbsDev = maxDev
		p.PoorlySynced = poor
	}
	st.cfg.OnProbe(p)
}

// quantileIndex returns the index of the pct-th percentile in a sorted
// slice of length n > 0, clamped into [0, n-1]. The clamp matters for the
// small populations (n < 20) where n·pct/100 degenerates: without it a
// probe over very few active nodes could index one past the end.
func quantileIndex(n, pct int) int {
	i := n * pct / 100
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}
