package core

import (
	"errors"
	"fmt"
	"math"
	"slices"

	"plurality/internal/adversary"
	"plurality/internal/graph"
	"plurality/internal/population"
	"plurality/internal/sched"
)

// Per-node protocol flags, packed into one byte per node so the hot loop
// touches a single n-byte array instead of three n-byte bool slices.
const (
	// flagBit is the OneExtraBit memory bit.
	flagBit uint8 = 1 << iota
	// flagHalted marks a node that finished part 2.
	flagHalted
	// flagCrashed marks a failure-injected node that never acts.
	flagCrashed
)

// maxTimeInt32Safe bounds Config.MaxTime so per-node tick counters fit in
// int32: real time counts ticks performed, which concentrates around
// MaxTime per node (rate-1 clocks), so a 2^30 budget leaves a 2x margin
// below math.MaxInt32 that no realistic Poisson fluctuation crosses.
const maxTimeInt32Safe = 1 << 30

// Run executes the asynchronous plurality-consensus protocol on pop until
// all live nodes agree, every node halts, or cfg.MaxTime elapses. The
// population is mutated in place.
func Run(pop *population.Population, cfg Config) (Result, error) {
	return NewRunner().Run(pop, cfg)
}

// Runner executes protocol runs while reusing all per-run state buffers
// (about seven O(n) slices) across calls, so trial loops — in particular
// the parallel sweeps in internal/par — stop paying an allocation-and-zero
// cost per trial. A Runner is not safe for concurrent use; parallel drivers
// keep one per worker.
type Runner struct {
	st state
}

// NewRunner returns an empty Runner; buffers are grown on first use.
func NewRunner() *Runner { return &Runner{} }

// Run is Runner's buffer-reusing equivalent of the package-level Run. For a
// fixed seed the result is bit-identical to a fresh run: buffer reuse only
// changes where the state lives, never what the protocol draws.
func (rn *Runner) Run(pop *population.Population, cfg Config) (Result, error) {
	if err := validate(pop, cfg); err != nil {
		return Result{}, err
	}
	spec, err := Plan(cfg, pop.N())
	if err != nil {
		return Result{}, err
	}
	st := &rn.st
	if err := st.reset(pop, cfg, spec); err != nil {
		return Result{}, err
	}

	last := st.run()
	st.res.Time = last.Time
	st.res.Ticks = last.Seq + 1
	switch {
	case st.noTicks:
		// Stopped at a batch boundary before anything was delivered.
		st.res.Ticks = 0
	case st.interruptSeq >= 0:
		// The tick the stop poll fired on never applied.
		st.res.Ticks = st.interruptSeq
	}
	st.res.EndgameSafe = st.res.Done &&
		(st.res.FirstHaltTime == 0 || st.res.ConsensusTime <= st.res.FirstHaltTime)
	if cfg.OnObserve != nil {
		// Close the observation stream with the state the run ended in
		// (the per-tick observations fire at tick start, so the final
		// state is otherwise never seen).
		cfg.OnObserve(st.res.Time, st.res.Ticks)
	}
	if adv := cfg.Adversary; adv != nil {
		st.res.Corruptions = adv.Corruptions()
		st.res.Biased = adv.Biased()
	}
	if st.stopped {
		if !st.res.Done {
			st.res.Winner = pop.Plurality()
		}
		return st.res, fmt.Errorf("core: run stopped at time %v: %w", st.res.Time, ErrStopped)
	}
	if !st.res.Done {
		// Either the time budget ran out or every live node halted
		// without agreement; both are protocol failures.
		st.res.Winner = pop.Plurality()
		return st.res, fmt.Errorf("core: %w (budget %v)", ErrNoConsensus, cfg.MaxTime)
	}
	return st.res, nil
}

func validate(pop *population.Population, cfg Config) error {
	switch {
	case pop == nil:
		return errors.New("core: nil population")
	case cfg.Graph == nil:
		return errors.New("core: nil graph")
	case cfg.Scheduler == nil:
		return errors.New("core: nil scheduler")
	case cfg.Rand == nil:
		return errors.New("core: nil rand")
	case cfg.MaxTime <= 0:
		return fmt.Errorf("core: MaxTime = %v, want > 0", cfg.MaxTime)
	case cfg.MaxTime > maxTimeInt32Safe:
		return fmt.Errorf("core: MaxTime = %v exceeds %d, the bound that keeps per-node tick counters in int32", cfg.MaxTime, int64(maxTimeInt32Safe))
	case cfg.Graph.N() != pop.N():
		return fmt.Errorf("core: graph has %d nodes, population %d", cfg.Graph.N(), pop.N())
	case cfg.Scheduler.N() != pop.N():
		return fmt.Errorf("core: scheduler has %d nodes, population %d", cfg.Scheduler.N(), pop.N())
	case cfg.CrashFraction < 0 || cfg.CrashFraction >= 1:
		return fmt.Errorf("core: CrashFraction = %v, want [0, 1)", cfg.CrashFraction)
	case cfg.ChurnRate < 0 || cfg.ChurnRate >= 1:
		return fmt.Errorf("core: ChurnRate = %v, want [0, 1)", cfg.ChurnRate)
	case cfg.DesyncFraction < 0 || cfg.DesyncFraction >= 1:
		return fmt.Errorf("core: DesyncFraction = %v, want [0, 1)", cfg.DesyncFraction)
	case cfg.DesyncFraction > 0 && cfg.DesyncSpread <= 0:
		return fmt.Errorf("core: DesyncFraction set but DesyncSpread = %d", cfg.DesyncSpread)
	case cfg.DesyncSpread > math.MaxInt32:
		return fmt.Errorf("core: DesyncSpread = %d does not fit the int32 working-time representation", cfg.DesyncSpread)
	}
	if adv := cfg.Adversary; adv != nil && adv.Family() == adversary.FamilyByzantine {
		return fmt.Errorf("core: the %s adversary has no lying channel here — protocol samples carry bits and real times alongside colors; use the generic rule engines for Byzantine sampling", adv.Desc().Name)
	}
	if cfg.CrashFraction > 0 {
		// Crashed nodes stay visible to sampling, which matches the
		// paper's model on the clique where every sample is one of n-1
		// interchangeable nodes. On a sparse topology the same rule can
		// leave a live node whose entire neighborhood crashed with no way
		// to ever change opinion, deadlocking the run with no error.
		// Reject the combination instead of silently sampling the dead.
		if _, ok := cfg.Graph.(graph.Complete); !ok {
			return fmt.Errorf("core: CrashFraction = %v requires the complete graph, got %T (crashed nodes remain sampled; a sparse neighborhood of crashed nodes would deadlock)", cfg.CrashFraction, cfg.Graph)
		}
	}
	return nil
}

// state is the mutable execution state of one run.
type state struct {
	cfg  Config
	spec Spec
	pop  *population.Population
	res  Result

	n int

	// cliqueN > 0 marks cfg.Graph as graph.Complete over cliqueN nodes;
	// the hot loop then samples neighbors with direct RNG calls instead of
	// dispatching through the Graph interface. The draws are identical to
	// Complete.Sample's, so results do not depend on the devirtualization.
	cliqueN    int
	cliqueSelf bool

	// Per-node protocol state. Working and real time are int32: the
	// schedule is O(log n) ticks (bound-checked in Plan) and real time is
	// bounded by MaxTime (bound-checked in validate), so 32 bits halve the
	// cache traffic of the former int64 representation.
	working      []int32            // schedule position
	real         []int32            // total ticks performed
	intermediate []population.Color // two-choices intermediate color
	flags        []uint8            // flagBit | flagHalted | flagCrashed
	busyUntil    []float64          // §4 delays: blocked until this time

	// Sync Gadget sample stores: samples[u*L+i] holds the i-th collected
	// real-time delta (sampled node's real time minus own real time at
	// collection), kept current implicitly because both sides advance by
	// one per own tick.
	samples     []int32
	sampleCount []int32
	medianBuf   []int32

	// Consensus bookkeeping over live (non-crashed) nodes.
	liveN      int64
	liveCounts []int64

	haltedCount int
	delaying    bool
	crashing    bool

	// Stop-hook state: stopCheck counts ticks down to the next poll,
	// stopped records that the hook fired, and interruptSeq (-1 when
	// unset) the Seq of the tick the hook fired on — that tick never
	// applied, so Result.Ticks reports the activations delivered before
	// it. noTicks marks a batch-boundary stop before any delivery (the
	// zero-value tick's Seq+1 must not be reported).
	stopCheck    int
	stopped      bool
	noTicks      bool
	interruptSeq int64

	nextProbe   float64
	nextObserve float64
	probeBuf    []int32
	tickBuf     []sched.Tick
}

// grow returns buf resized to n and zeroed, reusing its backing array when
// the capacity suffices.
func grow[T int32 | uint8 | int64 | float64 | population.Color | sched.Tick](buf []T, n int) []T {
	if cap(buf) < n {
		return make([]T, n)
	}
	buf = buf[:n]
	clear(buf)
	return buf
}

// reset prepares the state for one run, reusing buffers from any previous
// run on the same Runner.
func (st *state) reset(pop *population.Population, cfg Config, spec Spec) error {
	n := pop.N()
	st.cfg = cfg
	st.spec = spec
	st.pop = pop
	st.res = Result{}
	st.n = n
	st.haltedCount = 0
	st.delaying = false
	st.crashing = cfg.CrashFraction > 0

	st.cliqueN = 0
	if g, ok := cfg.Graph.(graph.Complete); ok {
		st.cliqueN = g.Nodes
		st.cliqueSelf = g.WithSelf
	}

	st.working = grow(st.working, n)
	st.real = grow(st.real, n)
	st.intermediate = grow(st.intermediate, n)
	st.flags = grow(st.flags, n)
	st.samples = grow(st.samples, n*spec.GadgetSamples)
	st.sampleCount = grow(st.sampleCount, n)
	st.medianBuf = grow(st.medianBuf, spec.GadgetSamples)
	st.liveCounts = grow(st.liveCounts, pop.K())
	for u := range st.intermediate {
		st.intermediate[u] = population.None
	}

	if _, instant := cfg.Delay.(sched.ZeroDelay); cfg.Delay != nil && !instant {
		st.delaying = true
	}
	if cfg.Latency != nil {
		st.delaying = true
	}
	if st.delaying {
		st.busyUntil = grow(st.busyUntil, n)
	}

	if st.crashing {
		// Crash a deterministic random subset of the requested size.
		target := int(cfg.CrashFraction * float64(n))
		perm := cfg.Rand.Perm(n)
		for i := 0; i < target; i++ {
			st.flags[perm[i]] |= flagCrashed
		}
	}
	st.liveN = 0
	for u := 0; u < n; u++ {
		if st.flags[u]&flagCrashed != 0 {
			continue
		}
		st.liveN++
		st.liveCounts[pop.ColorOf(u)]++
	}
	if st.liveN == 0 {
		return errors.New("core: all nodes crashed")
	}

	if cfg.DesyncFraction > 0 {
		target := int(cfg.DesyncFraction * float64(n))
		// At small n (< 20 for the common 5–10% fractions) the requested
		// fraction can round down to zero nodes; honor the option by
		// desynchronizing at least one node.
		if target == 0 {
			target = 1
		}
		perm := cfg.Rand.Perm(n)
		for i := 0; i < target; i++ {
			u := perm[i]
			w := int32(cfg.Rand.Intn(cfg.DesyncSpread))
			st.working[u] = w
			st.real[u] = w
		}
	}

	// An initially unanimous (live) population is already done.
	for c, cnt := range st.liveCounts {
		if cnt == st.liveN {
			st.res.Done = true
			st.res.Winner = population.Color(c)
		}
	}

	if cfg.Adversary != nil {
		cfg.Adversary.InitVictims(n)
	}

	st.nextProbe = 0
	if cfg.ProbeInterval < 0 {
		st.nextProbe = -1
	}
	st.nextObserve = 0
	st.stopCheck = 0
	st.stopped = false
	st.noTicks = false
	st.interruptSeq = -1
	return nil
}

// sample returns a uniformly random neighbor of u. On the clique it issues
// the RNG draws directly (the same draws Complete.Sample makes), removing
// the per-call interface dispatch from the hot path.
func (st *state) sample(u int) int {
	if st.cliqueN > 0 {
		if st.cliqueSelf {
			return st.cfg.Rand.Intn(st.cliqueN)
		}
		return st.cfg.Rand.IntnExcept(st.cliqueN, u)
	}
	return st.cfg.Graph.Sample(st.cfg.Rand, u)
}

// adopt switches node u to color c, maintaining live-node consensus
// bookkeeping. u must be live.
func (st *state) adopt(u int, c population.Color, now float64) {
	old := st.pop.ColorOf(u)
	if old == c {
		return
	}
	st.pop.SetColor(u, c)
	st.liveCounts[old]--
	st.liveCounts[c]++
	if st.liveCounts[c] == st.liveN && !st.res.Done {
		st.res.Done = true
		st.res.Winner = c
		st.res.ConsensusTime = now
	}
}

// block applies response blocking after a communicating step that
// contacted node v: the §4 per-step delay plus the per-edge latency of the
// Bankhamer et al. extension, composed additively when both are set.
func (st *state) block(u, v int, now float64) {
	if !st.delaying {
		return
	}
	var d float64
	if st.cfg.Latency != nil {
		// A negative draw counts as 0 (the LatencyModel contract), so it
		// cannot cancel out the §4 delay added below.
		if l := st.cfg.Latency.SampleLatency(st.cfg.Rand, u, v); l > 0 {
			d = l
		}
	}
	if st.cfg.Delay != nil {
		d += st.cfg.Delay.SampleDelay(st.cfg.Rand)
	}
	if d > 0 {
		st.busyUntil[u] = now + d
	}
}

// block2 is block for a step that contacted two nodes: the node waits for
// the slower of the two edge responses (plus the per-step delay).
func (st *state) block2(u, v1, v2 int, now float64) {
	if !st.delaying {
		return
	}
	var d float64
	if st.cfg.Latency != nil {
		d = sched.MaxLatency(st.cfg.Latency, st.cfg.Rand, u, v1, v2)
	}
	if st.cfg.Delay != nil {
		d += st.cfg.Delay.SampleDelay(st.cfg.Rand)
	}
	if d > 0 {
		st.busyUntil[u] = now + d
	}
}

// run drives the scheduler until the protocol reports completion or
// MaxTime elapses, returning the last delivered tick. When the scheduler
// supports batch delivery it pulls ticks in chunks and — in the common
// no-delay, no-probe case — dispatches them through a specialized loop with
// no per-tick closure or interface call; the general per-tick path is kept
// for delay models and probing. Both paths consume the protocol RNG
// identically, so results for a fixed seed do not depend on which one runs.
func (st *state) run() sched.Tick {
	bs, ok := st.cfg.Scheduler.(sched.BatchScheduler)
	if !ok {
		last, _ := sched.RunUntil(st.cfg.Scheduler, st.cfg.MaxTime, st.tick)
		return last
	}
	probing := st.nextProbe >= 0 && st.cfg.OnProbe != nil
	if st.delaying || probing || st.cfg.OnObserve != nil {
		last, _ := sched.RunBatch(st.cfg.Scheduler, st.cfg.MaxTime, st.tick)
		return last
	}
	var last sched.Tick
	ran := false
	maxTime := st.cfg.MaxTime
	st.tickBuf = grow(st.tickBuf, sched.BatchSize)
	buf := st.tickBuf
	for {
		if st.cfg.Stop != nil && st.cfg.Stop() {
			st.stopped = true
			st.noTicks = !ran
			return last
		}
		bs.NextBatch(buf)
		for _, t := range buf {
			if t.Time > maxTime {
				return last
			}
			last = t
			if !st.tickFast(t.Node, t.Time) {
				return last
			}
		}
		ran = true
	}
}

// stopCheckStride is how many ticks pass between Stop polls on the general
// (per-tick) run path.
const stopCheckStride = 1024

// tick handles one scheduler activation. It returns false once the run can
// stop: consensus reached, or every live node has halted.
func (st *state) tick(t sched.Tick) bool {
	if st.cfg.Stop != nil {
		if st.stopCheck--; st.stopCheck <= 0 {
			st.stopCheck = stopCheckStride
			if st.cfg.Stop() {
				st.stopped = true
				st.interruptSeq = t.Seq
				return false
			}
		}
	}
	if st.nextProbe >= 0 && t.Time >= st.nextProbe && st.cfg.OnProbe != nil {
		st.probe(t.Time)
	}
	if st.cfg.OnObserve != nil && t.Time >= st.nextObserve {
		// Observed at tick start, before this activation applies: the
		// population reflects exactly t.Seq completed activations, so that
		// is the reported tick count (and the end-of-run observation in
		// Run, labeled with the full count, can never collide with it).
		st.cfg.OnObserve(t.Time, t.Seq)
		st.nextObserve = t.Time + st.cfg.ObserveInterval
	}

	u := t.Node
	if st.delaying && st.flags[u]&(flagHalted|flagCrashed) == 0 && t.Time < st.busyUntil[u] {
		// Waiting for a response: the clock ticked but no protocol work
		// is performed. Real time deliberately does not advance either —
		// it counts ticks *performed*, so that under the §4 delay
		// extension real time stays proportional to schedule progress
		// and the Sync Gadget's real-time median remains a valid jump
		// target for working time.
		return st.keepGoing()
	}
	return st.tickFast(u, t.Time)
}

// tickFast is the delay- and probe-free activation body shared by both run
// paths.
func (st *state) tickFast(u int, now float64) bool {
	if st.cfg.Adversary != nil {
		if u = st.adversaryTick(u, now); u < 0 {
			// The delay-set suppressed the activation.
			return st.keepGoing()
		}
	}
	if st.flags[u]&(flagHalted|flagCrashed) != 0 {
		return st.keepGoing()
	}
	if st.cfg.ChurnRate > 0 && st.cfg.Rand.Bernoulli(st.cfg.ChurnRate) {
		st.churn(u, now)
		return st.keepGoing()
	}
	st.real[u]++

	w := st.working[u]
	st.working[u] = w + 1

	if int(w) >= st.spec.Part1Ticks {
		st.endgameTick(u, w, now)
		return st.keepGoing()
	}
	st.part1Tick(u, w, now)
	return st.keepGoing()
}

// adversaryTick applies the adversary's per-activation powers: corruption
// windows first, then the scheduling families — delay-set suppression
// (returns -1: the tick is spent idle) or bias redirection onto a node
// holding the adversary's target opinion. Untouchable (halted or crashed)
// nodes are never redirect targets or corruption victims: they no longer
// execute the protocol, so flipping them could make consensus unreachable
// in a way the corruption model does not intend.
func (st *state) adversaryTick(u int, now float64) int {
	adv := st.cfg.Adversary
	st.corruptTick(now)
	if adv.Victim(u) {
		adv.NoteBias()
		return -1
	}
	if c, ok := adv.BiasColor(st.pop.CountsView(), now); ok {
		if v, found := adv.FindHolder(st.pop, c, st.untouchable); found {
			u = v
			adv.NoteBias()
		}
	}
	return u
}

// corruptTick materializes one corruption window (if due) through adopt, so
// live-node consensus bookkeeping stays exact.
func (st *state) corruptTick(now float64) {
	adv := st.cfg.Adversary
	if !adv.CorruptionDue(now) {
		return
	}
	from, to, x := adv.PlanFlips(st.pop.CountsView(), now)
	if x <= 0 {
		return
	}
	var done int64
	for i := int64(0); i < x; i++ {
		v, ok := adv.FindHolder(st.pop, from, st.untouchable)
		if !ok {
			break
		}
		st.adopt(v, to, now)
		done++
	}
	adv.NoteCorruptions(done)
}

// untouchable reports whether node u is off-limits to the adversary: halted
// and crashed nodes no longer execute the protocol.
func (st *state) untouchable(u int) bool {
	return st.flags[u]&(flagHalted|flagCrashed) != 0
}

func (st *state) keepGoing() bool {
	if st.res.Done && !st.cfg.RunToHalt {
		return false
	}
	return st.haltedCount < int(st.liveN)
}

// part1Tick executes the schedule instruction at working time w (< Part1Ticks).
func (st *state) part1Tick(u int, w int32, now float64) {
	pos := int(w) % st.spec.PhaseTicks
	switch {
	case pos == 0:
		// Two-Choices step: sample two nodes with replacement.
		va := st.sample(u)
		vb := st.sample(u)
		if a := st.pop.ColorOf(va); a == st.pop.ColorOf(vb) {
			st.intermediate[u] = a
		} else {
			st.intermediate[u] = population.None
		}
		st.block2(u, va, vb, now)

	case pos == st.spec.CommitOffset:
		// Commit step: adopt the intermediate color; the bit records
		// whether the node executed the adopt action.
		if c := st.intermediate[u]; c != population.None {
			st.adopt(u, c, now)
			st.flags[u] |= flagBit
		} else {
			st.flags[u] &^= flagBit
		}
		st.intermediate[u] = population.None

	case pos >= st.spec.BPStart && pos < st.spec.BPEnd:
		// Bit-Propagation: bitless nodes pull until they hit a bit.
		if st.flags[u]&flagBit == 0 {
			v := st.sample(u)
			if st.flags[v]&flagBit != 0 {
				st.adopt(u, st.pop.ColorOf(v), now)
				st.flags[u] |= flagBit
			}
			st.block(u, v, now)
		}

	case !st.cfg.DisableSyncGadget && pos >= st.spec.GadgetStart && pos < st.spec.GadgetStart+st.spec.GadgetSamples:
		// Sync Gadget sampling: collect the neighbor's real time as a
		// delta against our own; the delta stays current as both real
		// times advance at rate one per own tick.
		v := st.sample(u)
		if cnt := st.sampleCount[u]; int(cnt) < st.spec.GadgetSamples {
			st.samples[u*st.spec.GadgetSamples+int(cnt)] = st.real[v] - st.real[u]
			st.sampleCount[u] = cnt + 1
		}
		st.block(u, v, now)

	case !st.cfg.DisableSyncGadget && pos == st.spec.JumpOffset:
		st.jump(u, w)
	}
	// All other positions are do-nothing padding (tactical waiting).
}

// jump executes the Sync Gadget jump step: working time becomes the median
// of the collected real-time samples, brought current by adding the node's
// own real time.
func (st *state) jump(u int, w int32) {
	cnt := int(st.sampleCount[u])
	if cnt == 0 {
		return
	}
	buf := st.medianBuf[:cnt]
	copy(buf, st.samples[u*st.spec.GadgetSamples:u*st.spec.GadgetSamples+cnt])
	slices.Sort(buf)
	median := int64(buf[cnt/2])
	if cnt%2 == 0 {
		median = (int64(buf[cnt/2-1]) + int64(buf[cnt/2])) / 2
	}
	target := median + int64(st.real[u])
	if target < 0 {
		target = 0
	}
	adj := target - int64(w+1)
	if adj < 0 {
		adj = -adj
	}
	if adj > st.res.MaxJumpAdjustment {
		st.res.MaxJumpAdjustment = adj
	}
	st.working[u] = int32(target)
	st.sampleCount[u] = 0
	st.res.Jumps++
}

// endgameTick executes part 2: asynchronous Two-Choices with immediate
// adoption, then halt after the per-node budget.
func (st *state) endgameTick(u int, w int32, now float64) {
	e := int(w) - st.spec.Part1Ticks
	if e >= st.spec.EndgameTicks {
		st.flags[u] |= flagHalted
		st.haltedCount++
		if st.res.FirstHaltTime == 0 {
			st.res.FirstHaltTime = now
		}
		return
	}
	va := st.sample(u)
	vb := st.sample(u)
	if a := st.pop.ColorOf(va); a == st.pop.ColorOf(vb) {
		st.adopt(u, a, now)
	}
	st.block2(u, va, vb, now)
}

// churn replaces node u with a fresh joiner: a uniformly random opinion,
// working and real time zero, and cleared protocol state (no bit, no
// intermediate, empty gadget sample store). The churned activation performs
// no protocol work; the Sync Gadget pulls the rejoined node back into the
// bulk schedule at its first jump, exactly as it repairs desynchronized
// nodes.
func (st *state) churn(u int, now float64) {
	st.adopt(u, population.Color(st.cfg.Rand.Intn(st.pop.K())), now)
	st.working[u] = 0
	st.real[u] = 0
	st.flags[u] &^= flagBit
	st.intermediate[u] = population.None
	st.sampleCount[u] = 0
	st.res.Churns++
}

// probe emits a synchronization-quality snapshot and schedules the next one.
func (st *state) probe(now float64) {
	interval := st.cfg.ProbeInterval
	if interval == 0 {
		interval = 1
	}
	st.nextProbe = now + interval

	if cap(st.probeBuf) < st.n {
		st.probeBuf = make([]int32, 0, st.n)
	}
	buf := st.probeBuf[:0]
	halted := 0
	for u := 0; u < st.n; u++ {
		if st.flags[u]&flagCrashed != 0 {
			continue
		}
		if st.flags[u]&flagHalted != 0 {
			halted++
			continue
		}
		buf = append(buf, st.working[u])
	}
	st.probeBuf = buf

	p := Probe{
		Time:              now,
		Active:            len(buf),
		Halted:            halted,
		PluralityFraction: st.pop.Fraction(st.pop.Plurality()),
	}
	if len(buf) > 0 {
		slices.Sort(buf)
		med := buf[len(buf)/2]
		q5 := buf[quantileIndex(len(buf), 5)]
		q95 := buf[quantileIndex(len(buf), 95)]
		p.MedianWorking = int64(med)
		p.Spread90 = int64(q95) - int64(q5)
		maxDev := int32(0)
		poor := 0
		for _, w := range buf {
			d := w - med
			if d < 0 {
				d = -d
			}
			if d > maxDev {
				maxDev = d
			}
			if int(d) > st.spec.Delta {
				poor++
			}
		}
		p.MaxAbsDev = int64(maxDev)
		p.PoorlySynced = poor
	}
	st.cfg.OnProbe(p)
}

// quantileIndex returns the index of the pct-th percentile in a sorted
// slice of length n > 0, clamped into [0, n-1]. The clamp matters for the
// small populations (n < 20) where n·pct/100 degenerates: without it a
// probe over very few active nodes could index one past the end.
func quantileIndex(n, pct int) int {
	i := n * pct / 100
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}
