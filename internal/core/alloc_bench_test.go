package core

import (
	"fmt"
	"testing"

	"plurality/internal/graph"
	"plurality/internal/population"
	"plurality/internal/rng"
	"plurality/internal/sched"
)

// coreRunSetup builds the reusable pieces of a benchmark/allocation run.
func coreRunSetup(tb testing.TB, n int) (*population.Population, *population.Population, graph.Complete) {
	tb.Helper()
	counts, err := population.BiasedCounts(n, 4, 1)
	if err != nil {
		tb.Fatal(err)
	}
	base, err := population.FromCounts(counts)
	if err != nil {
		tb.Fatal(err)
	}
	g, err := graph.NewComplete(n)
	if err != nil {
		tb.Fatal(err)
	}
	return base, base.Clone(), g
}

// TestRunnerSteadyStateAllocs guards the zero-allocation contract of the
// batched hot loop: once a Runner's buffers are warm, a full run — millions
// of ticks — must allocate only the O(1) setup objects (scheduler, RNG
// streams, crash/desync permutations are absent here), nothing per tick.
func TestRunnerSteadyStateAllocs(t *testing.T) {
	const n = 2000
	base, pop, g := coreRunSetup(t, n)
	rn := NewRunner()
	run := func() {
		if err := pop.Reset(base); err != nil {
			t.Fatal(err)
		}
		s, err := sched.NewSequential(n, rng.At(1, 0))
		if err != nil {
			t.Fatal(err)
		}
		res, err := rn.Run(pop, Config{Graph: g, Scheduler: s, Rand: rng.At(1, 1), MaxTime: 1e5})
		if err != nil {
			t.Fatal(err)
		}
		if res.Ticks < int64(n) {
			t.Fatalf("suspiciously short run: %+v", res)
		}
	}
	run() // warm the Runner's buffers
	// The measured run delivers ~2M ticks; the only allocations left are
	// the per-run scheduler and its RNG streams. A per-tick allocation
	// (such as the sort.Slice closures the jump step used to make) would
	// blow through this bound by orders of magnitude.
	if allocs := testing.AllocsPerRun(3, run); allocs > 16 {
		t.Errorf("steady-state run allocated %.0f objects, want <= 16 (per-tick allocation leak)", allocs)
	}
}

// BenchmarkCoreRun measures full consensus runs of the core protocol on a
// warm Runner (benchstat-comparable; ns/tick is reported as a metric).
func BenchmarkCoreRun(b *testing.B) {
	for _, n := range []int{4096, 65536} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			base, pop, g := coreRunSetup(b, n)
			rn := NewRunner()
			var ticks int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := pop.Reset(base); err != nil {
					b.Fatal(err)
				}
				s, err := sched.NewPoisson(n, 1, rng.At(uint64(i), 0))
				if err != nil {
					b.Fatal(err)
				}
				res, err := rn.Run(pop, Config{Graph: g, Scheduler: s, Rand: rng.At(uint64(i), 1), MaxTime: 1e5})
				if err != nil {
					b.Fatal(err)
				}
				ticks += res.Ticks
			}
			b.StopTimer()
			if ticks > 0 {
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(ticks), "ns/tick")
				b.ReportMetric(float64(ticks)/float64(b.N), "ticks/run")
			}
		})
	}
}
