package core_test

import (
	"testing"

	"plurality"
	. "plurality/internal/core"
)

// TestRunGoldenBitIdentical pins the exact Result of fixed-seed runs across
// every execution path (sequential/poisson/heap schedulers, churn, crashes,
// desync, gadget ablation, endgame-only, run-to-halt, §4 delays, edge
// latencies). The values were captured from the pre-packing engine (commit
// cc07cd6, int64 state and interface-dispatched sampling); the int32/flags
// cache packing and the devirtualized clique sampling must not change a
// single bit of any of them, because they alter only the memory layout, not
// the sequence of RNG draws.
func TestRunGoldenBitIdentical(t *testing.T) {
	cases := []struct {
		name string
		n, k int
		eps  float64
		opts []plurality.Option
		want Result
	}{
		{
			"seq-default", 2000, 4, 1,
			[]plurality.Option{plurality.WithSeed(42)},
			Result{Done: true, Winner: 0, ConsensusTime: 1170.576, FirstHaltTime: 0, EndgameSafe: true, Time: 1170.576, Ticks: 2341153, Jumps: 8082, Churns: 0, MaxJumpAdjustment: 99},
		},
		{
			"poisson", 4000, 5, 0.8,
			[]plurality.Option{plurality.WithSeed(7), plurality.WithModel(plurality.Poisson)},
			Result{Done: true, Winner: 0, ConsensusTime: 1246.911054837703, FirstHaltTime: 0, EndgameSafe: true, Time: 1246.911054837703, Ticks: 4988997, Jumps: 16133, Churns: 0, MaxJumpAdjustment: 85},
		},
		{
			"heap-poisson", 1000, 3, 1,
			[]plurality.Option{plurality.WithSeed(9), plurality.WithModel(plurality.HeapPoisson)},
			Result{Done: true, Winner: 0, ConsensusTime: 1122.9101548491255, FirstHaltTime: 0, EndgameSafe: true, Time: 1122.9101548491255, Ticks: 1122708, Jumps: 4046, Churns: 0, MaxJumpAdjustment: 66},
		},
		{
			"churn", 1500, 4, 1,
			[]plurality.Option{plurality.WithSeed(5), plurality.WithModel(plurality.Poisson), plurality.WithChurn(0.0001)},
			Result{Done: true, Winner: 0, ConsensusTime: 1971.9814644487312, FirstHaltTime: 1823.6377582647344, EndgameSafe: false, Time: 1971.9814644487312, Ticks: 2960099, Jumps: 10709, Churns: 299, MaxJumpAdjustment: 1667},
		},
		{
			"crashes", 2000, 4, 1,
			[]plurality.Option{plurality.WithSeed(11), plurality.WithCrashes(0.05)},
			Result{Done: true, Winner: 0, ConsensusTime: 1183.947, FirstHaltTime: 0, EndgameSafe: true, Time: 1183.947, Ticks: 2367895, Jumps: 7673, Churns: 0, MaxJumpAdjustment: 70},
		},
		{
			"desync", 1200, 3, 1,
			[]plurality.Option{plurality.WithSeed(13), plurality.WithModel(plurality.Poisson), plurality.WithDesync(0.1, 200)},
			Result{Done: true, Winner: 0, ConsensusTime: 1154.3632149051443, FirstHaltTime: 0, EndgameSafe: true, Time: 1154.3632149051443, Ticks: 1386334, Jumps: 4941, Churns: 0, MaxJumpAdjustment: 199},
		},
		{
			"no-gadget", 1000, 3, 1,
			[]plurality.Option{plurality.WithSeed(17), plurality.WithoutSyncGadget()},
			Result{Done: true, Winner: 0, ConsensusTime: 863.161, FirstHaltTime: 0, EndgameSafe: true, Time: 863.161, Ticks: 863162, Jumps: 0, Churns: 0, MaxJumpAdjustment: 0},
		},
		{
			"run-to-halt", 800, 3, 1,
			[]plurality.Option{plurality.WithSeed(19), plurality.WithModel(plurality.Poisson), plurality.WithRunToHalt()},
			Result{Done: true, Winner: 0, ConsensusTime: 877.6618499838572, FirstHaltTime: 1757.204949487311, EndgameSafe: true, Time: 1852.235575680197, Ticks: 1480517, Jumps: 5677, Churns: 0, MaxJumpAdjustment: 98},
		},
		{
			"endgame-only", 3000, 4, 8,
			[]plurality.Option{plurality.WithSeed(23), plurality.WithEndgameOnly()},
			Result{Done: true, Winner: 0, ConsensusTime: 7.3053333333333335, FirstHaltTime: 0, EndgameSafe: true, Time: 7.3053333333333335, Ticks: 21917, Jumps: 0, Churns: 0, MaxJumpAdjustment: 0},
		},
		{
			"delay", 600, 3, 1,
			[]plurality.Option{plurality.WithSeed(29), plurality.WithModel(plurality.Poisson), plurality.WithResponseDelay(4)},
			Result{Done: true, Winner: 0, ConsensusTime: 842.3338805143817, FirstHaltTime: 0, EndgameSafe: true, Time: 842.3338805143817, Ticks: 505252, Jumps: 1803, Churns: 0, MaxJumpAdjustment: 52},
		},
		{
			"latency", 600, 3, 1,
			[]plurality.Option{plurality.WithSeed(31), plurality.WithModel(plurality.Poisson), plurality.WithEdgeLatency(plurality.ExpEdgeLatency(0.2))},
			Result{Done: true, Winner: 0, ConsensusTime: 816.4606332408868, FirstHaltTime: 0, EndgameSafe: true, Time: 816.4606332408868, Ticks: 489455, Jumps: 1807, Churns: 0, MaxJumpAdjustment: 53},
		},
		{
			"delay-latency", 500, 3, 1,
			[]plurality.Option{plurality.WithSeed(37), plurality.WithEdgeLatency(plurality.UniformEdgeLatency(0, 0.3)), plurality.WithResponseDelay(8)},
			Result{Done: true, Winner: 0, ConsensusTime: 1097.166, FirstHaltTime: 0, EndgameSafe: true, Time: 1097.166, Ticks: 548584, Jumps: 2008, Churns: 0, MaxJumpAdjustment: 56},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			counts, err := plurality.Biased(tc.n, tc.k, tc.eps)
			if err != nil {
				t.Fatal(err)
			}
			pop, err := plurality.NewPopulation(counts)
			if err != nil {
				t.Fatal(err)
			}
			got, err := plurality.RunCore(pop, tc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.want {
				t.Fatalf("result drifted from the pre-packing engine:\n got  %+v\n want %+v", got, tc.want)
			}
		})
	}
}
