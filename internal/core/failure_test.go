package core

import (
	"errors"
	"testing"
	"testing/quick"

	"plurality/internal/graph"
	"plurality/internal/population"
	"plurality/internal/rng"
	"plurality/internal/sched"
)

// TestCombinedAdversity stacks every supported failure mode at once —
// crashes, desynchronized nodes, and exponential response delays — and the
// protocol must still elect the plurality among live nodes.
func TestCombinedAdversity(t *testing.T) {
	const n = 6000
	spec, err := Plan(Config{}, n)
	if err != nil {
		t.Fatal(err)
	}
	g, s, r := harness(t, n, 400)
	pop := biasedPop(t, n, 4, 1)
	res, err := Run(pop, Config{
		Graph:          g,
		Scheduler:      s,
		Rand:           r,
		MaxTime:        1e5,
		CrashFraction:  0.01,
		DesyncFraction: 0.02,
		DesyncSpread:   spec.PhaseTicks,
		Delay:          sched.ExpDelay{Rate: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done || res.Winner != 0 {
		t.Fatalf("combined adversity broke the run: %+v", res)
	}
}

// TestCrashedNodesNeverChangeColor pins the failure-injection semantics:
// crashed nodes keep their initial color and remain sampleable.
func TestCrashedNodesNeverChangeColor(t *testing.T) {
	const n = 3000
	g, s, r := harness(t, n, 401)
	pop := biasedPop(t, n, 3, 1)
	res, err := Run(pop, Config{
		Graph:         g,
		Scheduler:     s,
		Rand:          r,
		MaxTime:       1e5,
		CrashFraction: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done {
		t.Fatalf("res = %+v", res)
	}
	// The winner holds all live nodes; only crashed nodes may differ. With
	// 5% crashed, at least 95% must hold the winner and the remainder must
	// equal exactly the crashed holdouts of other colors.
	winners := pop.Count(res.Winner)
	if winners < int64(0.95*n) {
		t.Fatalf("winner holds only %d/%d", winners, n)
	}
	if winners == int64(n) {
		t.Log("all crashed nodes happened to start with the winner color")
	}
}

// TestMassiveCrashFractionDrivesPluralityHigh: with 30% crashed nodes, live
// unanimity is structurally unreachable — crashed minority-color nodes keep
// re-infecting live samplers, which is exactly why the paper tolerates only
// o(n) failures. The protocol must still drive the plurality's support to
// (almost) everything the crash pattern allows.
func TestMassiveCrashFractionDrivesPluralityHigh(t *testing.T) {
	const (
		n         = 6000
		crashFrac = 0.30
	)
	g, s, r := harness(t, n, 402)
	pop := biasedPop(t, n, 2, 2)
	var best float64
	_, err := Run(pop, Config{
		Graph:         g,
		Scheduler:     s,
		Rand:          r,
		MaxTime:       2000,
		CrashFraction: crashFrac,
		ProbeInterval: 10,
		OnProbe: func(p Probe) {
			if p.PluralityFraction > best {
				best = p.PluralityFraction
			}
		},
	})
	if err != nil && !errors.Is(err, ErrNoConsensus) {
		t.Fatal(err)
	}
	// Ceiling: all live nodes (70%) plus the crashed nodes that started
	// with C1 (30% * 75%) = 92.5%. Require the protocol to get close.
	if best < 0.88 {
		t.Fatalf("plurality support peaked at %.3f, want >= 0.88 of the 0.925 ceiling", best)
	}
}

// TestJumpTargetTracksElapsedTime: after any jump, a node's working time
// must approximate the population's elapsed tick count — the gadget's whole
// purpose. We probe mid-run and compare the median working time against
// elapsed time.
func TestJumpTargetTracksElapsedTime(t *testing.T) {
	const n = 4000
	g, s, r := harness(t, n, 403)
	pop := biasedPop(t, n, 4, 1)
	spec, err := Plan(Config{}, n)
	if err != nil {
		t.Fatal(err)
	}
	var worstLag float64
	_, err = Run(pop, Config{
		Graph:         g,
		Scheduler:     s,
		Rand:          r,
		MaxTime:       1e5,
		ProbeInterval: 20,
		OnProbe: func(p Probe) {
			if p.Active == 0 || p.Time < 50 {
				return
			}
			lag := float64(p.MedianWorking) - p.Time
			if lag < 0 {
				lag = -lag
			}
			if lag > worstLag {
				worstLag = lag
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// The median working time should track elapsed time within a few
	// blocks even as jumps fire.
	if worstLag > 4*float64(spec.Delta) {
		t.Fatalf("median working time lagged elapsed time by %v (> 4 Delta = %d)", worstLag, 4*spec.Delta)
	}
}

// TestPlanMonotonicity: the schedule quantities grow with n as the theory
// prescribes (∆ and endgame grow, phase count grows slowly).
func TestPlanMonotonicity(t *testing.T) {
	check := func(a, b uint16) bool {
		n1 := int(a)%100000 + 16
		n2 := n1 * 4
		s1, err1 := Plan(Config{}, n1)
		s2, err2 := Plan(Config{}, n2)
		if err1 != nil || err2 != nil {
			return false
		}
		return s2.Delta >= s1.Delta &&
			s2.EndgameTicks > s1.EndgameTicks &&
			s2.Phases >= s1.Phases &&
			s2.GadgetSamples >= 1
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestRunToHaltCompletes: with RunToHalt the run continues past consensus
// until every live node halts, and halting times are consistent.
func TestRunToHaltCompletes(t *testing.T) {
	const n = 2000
	g, s, r := harness(t, n, 404)
	pop := biasedPop(t, n, 2, 2)
	res, err := Run(pop, Config{
		Graph:     g,
		Scheduler: s,
		Rand:      r,
		MaxTime:   1e5,
		RunToHalt: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done || res.FirstHaltTime == 0 {
		t.Fatalf("res = %+v", res)
	}
	if res.ConsensusTime > res.Time || res.FirstHaltTime > res.Time {
		t.Fatalf("inconsistent times: %+v", res)
	}
	if !res.EndgameSafe {
		t.Fatalf("endgame unsafe in a healthy run: consensus %.1f vs first halt %.1f",
			res.ConsensusTime, res.FirstHaltTime)
	}
}

// TestGadgetSamplesOverrideRespected: a tiny gadget sample count must
// degrade synchronization compared to the default — and both still complete
// on an easy instance.
func TestGadgetSamplesOverrideRespected(t *testing.T) {
	const n = 3000
	spread := func(gadgetSamples int) int64 {
		g, s, r := harness(t, n, 405)
		pop := biasedPop(t, n, 2, 2)
		var worst int64
		_, err := Run(pop, Config{
			Graph:         g,
			Scheduler:     s,
			Rand:          r,
			MaxTime:       1e5,
			GadgetSamples: gadgetSamples,
			Phases:        10,
			ProbeInterval: 10,
			OnProbe: func(p Probe) {
				if p.Spread90 > worst {
					worst = p.Spread90
				}
			},
		})
		if err != nil && !errors.Is(err, ErrNoConsensus) {
			t.Fatal(err)
		}
		return worst
	}
	tiny := spread(1)
	full := spread(0) // default
	if tiny <= full {
		t.Fatalf("L=1 spread (%d) not worse than default (%d)", tiny, full)
	}
}

// TestCoreOnPoissonWithDelays: the continuous engine combined with the §4
// delay extension — the most "real network"-like configuration — still
// elects the plurality.
func TestCoreOnPoissonWithDelays(t *testing.T) {
	const n = 3000
	g, err := graph.NewComplete(n)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.NewPoisson(n, 1, rng.At(406, 0))
	if err != nil {
		t.Fatal(err)
	}
	pop := biasedPop(t, n, 4, 1)
	res, err := Run(pop, Config{
		Graph:     g,
		Scheduler: s,
		Rand:      rng.At(406, 1),
		MaxTime:   1e5,
		Delay:     sched.ExpDelay{Rate: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done || res.Winner != 0 {
		t.Fatalf("res = %+v", res)
	}
}

// TestEveryColorCanWinFromSymmetry: with a perfectly uniform start the
// protocol still reaches *some* consensus (symmetry broken by randomness),
// and over seeds different colors win — no structural bias toward color 0.
func TestEveryColorCanWinFromSymmetry(t *testing.T) {
	// A uniform start is outside the theorem's biased regime: some seeds
	// legitimately fragment without consensus, so sample enough seeds that
	// several converge, then check the winners are not all the same color.
	const n = 2000
	winners := make(map[population.Color]bool)
	converged := 0
	for seed := uint64(0); seed < 20; seed++ {
		g, s, r := harness(t, n, 500+seed)
		counts, err := population.UniformCounts(n, 4)
		if err != nil {
			t.Fatal(err)
		}
		pop, err := population.FromCounts(counts)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(pop, Config{Graph: g, Scheduler: s, Rand: r, MaxTime: 1e5})
		if err != nil {
			// A uniform start can fragment; skip those seeds.
			if errors.Is(err, ErrNoConsensus) {
				continue
			}
			t.Fatal(err)
		}
		winners[res.Winner] = true
		converged++
	}
	if converged < 5 {
		t.Skipf("only %d/20 symmetric seeds converged; not enough samples", converged)
	}
	if len(winners) < 2 {
		t.Fatalf("only colors %v won across %d converged symmetric seeds — suspicious structural bias", winners, converged)
	}
}
