package core

import (
	"strings"
	"testing"

	"plurality/internal/graph"
	"plurality/internal/population"
	"plurality/internal/rng"
	"plurality/internal/sched"
)

// extHarness builds the common fixtures for the latency/churn extension
// tests.
func extHarness(t *testing.T, n int, seed uint64) (graph.Graph, sched.Scheduler, *rng.RNG) {
	t.Helper()
	g, err := graph.NewComplete(n)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.NewPoisson(n, 1, rng.At(seed, 0))
	if err != nil {
		t.Fatal(err)
	}
	return g, s, rng.At(seed, 1)
}

func extPop(t *testing.T, n, k int) *population.Population {
	t.Helper()
	counts, err := population.BiasedCounts(n, k, 1)
	if err != nil {
		t.Fatal(err)
	}
	pop, err := population.FromCounts(counts)
	if err != nil {
		t.Fatal(err)
	}
	return pop
}

// TestEdgeLatencySlowsConvergence: per-edge latencies block communicating
// steps, so consensus must still be reached but strictly later than with
// instant edges.
func TestEdgeLatencySlowsConvergence(t *testing.T) {
	const n = 1000
	run := func(lat sched.LatencyModel) Result {
		g, s, r := extHarness(t, n, 21)
		res, err := Run(extPop(t, n, 4), Config{
			Graph: g, Scheduler: s, Rand: r, MaxTime: 1e5,
			Latency: lat,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	instant := run(nil)
	slow := run(sched.ExpLatency{Mean: 2})
	if !instant.Done || !slow.Done {
		t.Fatalf("runs did not converge: %+v / %+v", instant, slow)
	}
	if slow.ConsensusTime <= instant.ConsensusTime {
		t.Fatalf("latency did not slow the run: %v (latent) vs %v (instant)",
			slow.ConsensusTime, instant.ConsensusTime)
	}
}

// TestEdgeLatencyDeterministic: the latency extension must preserve the
// fixed-seed reproducibility contract.
func TestEdgeLatencyDeterministic(t *testing.T) {
	const n = 500
	run := func() Result {
		g, s, r := extHarness(t, n, 33)
		res, err := Run(extPop(t, n, 3), Config{
			Graph: g, Scheduler: s, Rand: r, MaxTime: 1e5,
			Latency: sched.UniformLatency{Min: 0, Max: 2},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}

// TestChurnConvergesBelowThreshold: churn at a rate well below 1/n injects
// fresh random-opinion joiners yet the protocol still reaches consensus,
// and the events are counted.
func TestChurnConvergesBelowThreshold(t *testing.T) {
	const n = 1000
	g, s, r := extHarness(t, n, 5)
	res, err := Run(extPop(t, n, 4), Config{
		Graph: g, Scheduler: s, Rand: r, MaxTime: 1e5,
		ChurnRate: 0.1 / n,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done {
		t.Fatalf("churned run did not converge: %+v", res)
	}
	if res.Churns == 0 {
		t.Fatal("churn rate 1e-4 over a ~1e6-tick run should fire")
	}
}

// TestChurnResetsNodeState: after a churn event the node's working time
// restarts from zero, which the Sync Gadget then repairs — observable as a
// strictly positive jump count even when part 1 would otherwise be nearly
// synchronous.
func TestChurnResetsNodeState(t *testing.T) {
	const n = 400
	g, s, r := extHarness(t, n, 6)
	res, err := Run(extPop(t, n, 4), Config{
		Graph: g, Scheduler: s, Rand: r, MaxTime: 1e5,
		ChurnRate: 0.2 / n,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Churns == 0 || res.Jumps == 0 {
		t.Fatalf("expected churn events and gadget jumps: %+v", res)
	}
}

func TestChurnValidation(t *testing.T) {
	g, s, r := extHarness(t, 100, 1)
	for _, rate := range []float64{-0.1, 1, 1.5} {
		_, err := Run(extPop(t, 100, 2), Config{
			Graph: g, Scheduler: s, Rand: r, MaxTime: 1,
			ChurnRate: rate,
		})
		if err == nil || !strings.Contains(err.Error(), "ChurnRate") {
			t.Fatalf("ChurnRate %v: err = %v", rate, err)
		}
	}
}

// TestCrashRequiresCompleteGraph: crash injection on a sparse topology
// must be rejected — crashed nodes stay visible to sampling, and a sparse
// neighborhood of crashed nodes would deadlock the run silently.
func TestCrashRequiresCompleteGraph(t *testing.T) {
	const n = 100
	cyc, err := graph.NewCycle(n)
	if err != nil {
		t.Fatal(err)
	}
	_, s, r := extHarness(t, n, 2)
	_, err = Run(extPop(t, n, 2), Config{
		Graph: cyc, Scheduler: s, Rand: r, MaxTime: 1,
		CrashFraction: 0.1,
	})
	if err == nil || !strings.Contains(err.Error(), "complete graph") {
		t.Fatalf("crash on a cycle should be rejected, got %v", err)
	}

	// The same fraction on the complete graph stays valid.
	g, s2, r2 := extHarness(t, n, 2)
	if _, err := Run(extPop(t, n, 2), Config{
		Graph: g, Scheduler: s2, Rand: r2, MaxTime: 1e5,
		CrashFraction: 0.1,
	}); err != nil {
		t.Fatalf("crash on the clique should run: %v", err)
	}
}

// TestLatencyMatchesAcrossBatchAndPerTick extends the PR-1 batch/per-tick
// equivalence to the latency path (which always routes through the general
// loop): forcing RunBatch vs RunUntil must not change the result.
func TestLatencyBatchedDeterminism(t *testing.T) {
	const n = 300
	run := func(model func(r *rng.RNG) (sched.Scheduler, error)) Result {
		sr := rng.At(44, 0)
		s, err := model(sr)
		if err != nil {
			t.Fatal(err)
		}
		g, err := graph.NewComplete(n)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(extPop(t, n, 3), Config{
			Graph: g, Scheduler: s, Rand: rng.At(44, 1), MaxTime: 1e5,
			Latency: sched.ExpLatency{Mean: 1},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	batch := run(func(r *rng.RNG) (sched.Scheduler, error) { return sched.NewPoisson(n, 1, r) })
	perTick := run(func(r *rng.RNG) (sched.Scheduler, error) { return noBatch{mustPoisson(t, n, r)}, nil })
	if batch != perTick {
		t.Fatalf("batch vs per-tick diverged under latency:\n%+v\n%+v", batch, perTick)
	}
}

func mustPoisson(t *testing.T, n int, r *rng.RNG) *sched.Poisson {
	t.Helper()
	p, err := sched.NewPoisson(n, 1, r)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// noBatch strips the BatchScheduler interface so Run falls back to the
// per-tick path.
type noBatch struct{ *sched.Poisson }

func (n noBatch) Next() sched.Tick { return n.Poisson.Next() }
func (n noBatch) N() int           { return n.Poisson.N() }
