// Package core implements the paper's primary contribution (Theorem 1.3):
// an asynchronous plurality-consensus protocol that converges in Θ(log n)
// parallel time on the complete graph when the plurality color has a
// (1+ε)-multiplicative advantage and k = O(exp(log n / log log n)).
//
// # Protocol structure
//
// Every node runs a fixed *schedule* indexed by its working time (the
// number of protocol ticks it has executed, adjustable by jumps). Part 1
// consists of Phases phases of length 7∆ ticks each, where
// ∆ = Θ(log n / log log n) is the block length:
//
//	offset 0        — Two-Choices step: sample two nodes; if their colors
//	                  coincide, record that color as the intermediate color
//	                  (blocks 1–2 are otherwise do-nothing padding)
//	offset 2∆       — commit step: adopt the intermediate color if set and
//	                  set the bit to "adopted"; clear the intermediate
//	offsets [3∆,4∆) — Bit-Propagation: a bitless node samples once per
//	                  tick; on hitting a bit-set node it adopts that node's
//	                  color and sets its own bit
//	offsets [5∆,5∆+L) — Sync Gadget sampling: collect the real time of a
//	                  random node per tick (L = min(∆, ⌈log₂³log₂ n⌉));
//	                  samples are kept current by the node's own ticks
//	offset 7∆−1     — jump step: set the working time to the median of the
//	                  collected (current) real-time samples
//
// The do-nothing blocks are the paper's "tactical waiting": they give the
// (1−o(1)) well-synchronized nodes room to all pass a critical instruction
// before any of them reaches the next one. The Sync Gadget implements weak
// perpetual synchronization — after each phase all but o(n) nodes have
// working times within ∆ of each other.
//
// Part 2 (the endgame, §3.2) is plain asynchronous Two-Choices for
// EndgameTicks = Θ(log n) ticks per node, after which the node halts. The
// paper shows consensus on C_1 completes before the first node halts,
// w.h.p.; Result records both instants so experiments can verify it.
//
// # Constants
//
// The brief announcement specifies only the asymptotic orders of ∆, the
// phase count, the gadget length and the endgame length. The concrete
// factors here (DeltaFactor, PhaseSlack, EndgameFactor) are calibrated so
// the part-1 invariants hold at simulable n and are configurable for
// ablation studies (experiment E7 disables the gadget entirely).
package core

import (
	"errors"
	"fmt"
	"math"

	"plurality/internal/adversary"
	"plurality/internal/graph"
	"plurality/internal/population"
	"plurality/internal/rng"
	"plurality/internal/sched"
)

// Default schedule constants; see Config.
const (
	// DefaultDeltaFactor scales the block length ∆ = factor·ln n/ln ln n.
	// The factor is calibrated for simulable n: the Sync Gadget's jump
	// target is a median of GadgetSamples real-time samples whose spread
	// is Θ(√t); ∆ must dominate that estimator noise plus the √(7∆)
	// within-phase drift, which at n ≤ 10⁷ requires a larger constant
	// than the asymptotic regime suggests.
	DefaultDeltaFactor = 10.0
	// DefaultPhaseSlack is added to the ⌈log₂ ln n⌉ part-1 phase count.
	DefaultPhaseSlack = 4
	// DefaultEndgameFactor scales the per-node endgame tick count
	// EndgameTicks = factor·ln n.
	DefaultEndgameFactor = 6.0
)

// ErrNoConsensus reports a run that exhausted MaxTime (or halted all nodes)
// without reaching consensus.
var ErrNoConsensus = errors.New("core: no consensus within time budget")

// ErrStopped reports a run interrupted by its Stop hook (context
// cancellation at the public layer) before completing.
var ErrStopped = errors.New("core: run stopped")

// Config configures one protocol run.
type Config struct {
	// Graph is the communication topology; the paper analyzes the
	// complete graph. Required.
	Graph graph.Graph
	// Scheduler delivers asynchronous activations (sequential or Poisson
	// engine). Required; node count must match the population.
	Scheduler sched.Scheduler
	// Rand drives all protocol sampling. Required.
	Rand *rng.RNG
	// MaxTime bounds the run in parallel time. Required (> 0).
	MaxTime float64

	// Delta overrides the block length ∆. Zero selects
	// ⌈DeltaFactor·ln n / ln ln n⌉.
	Delta int
	// DeltaFactor overrides DefaultDeltaFactor when Delta is zero.
	DeltaFactor float64
	// Phases overrides the number of part-1 phases. Zero selects
	// ⌈log₂ ln n⌉ + DefaultPhaseSlack.
	Phases int
	// GadgetSamples overrides the Sync Gadget sampling length L. Zero
	// selects min(∆, ⌈(log₂ log₂ n)³⌉).
	GadgetSamples int
	// EndgameTicks overrides the per-node part-2 budget. Zero selects
	// ⌈DefaultEndgameFactor·ln n⌉.
	EndgameTicks int

	// DisableSyncGadget turns off gadget sampling and jumps — the
	// ablation of experiment E7.
	DisableSyncGadget bool
	// SkipPart1 starts every node directly in part 2 (the endgame),
	// which is how experiment E9 studies §3.2 in isolation: seed the
	// population with c_1 ≥ (1−ε)n and check consensus lands before the
	// first halt.
	SkipPart1 bool
	// RunToHalt keeps the run going after consensus until every live
	// node has halted (or MaxTime elapses), so FirstHaltTime and
	// EndgameSafe reflect the full §3.2 guarantee rather than stopping
	// at the consensus instant.
	RunToHalt bool
	// DesyncFraction, in [0, 1), marks that fraction of nodes as
	// initially poorly synchronized: each starts with working and real
	// time drawn uniformly from [0, DesyncSpread) instead of 0. The
	// paper tolerates o(n) such nodes; the Sync Gadget pulls them back
	// into the bulk schedule at their first jump. (Desynchronizing the
	// *whole* population shifts its real-time distribution permanently,
	// which is outside the paper's model — real times are the shared
	// clock the gadget's median estimates.)
	DesyncFraction float64
	// DesyncSpread is the desynchronization range in ticks; required
	// positive when DesyncFraction > 0.
	DesyncSpread int
	// CrashFraction, in [0, 1), marks that fraction of nodes as crashed:
	// they never act (their ticks are no-ops) but remain visible to
	// sampling. Consensus is then evaluated over the live nodes only.
	CrashFraction float64
	// Delay models response latency per communicating step (§4
	// extension): after any step that contacts another node, the node
	// blocks — making no schedule progress — until the response arrives.
	// nil means instant responses.
	Delay sched.DelayModel
	// Latency models per-edge message latency (the asynchronous
	// edge-latency extension after Bankhamer et al.): every edge used by a
	// communicating step incurs an independent latency draw and the node
	// blocks until the slowest contacted edge has responded. Unlike Delay
	// (one node-local draw per step), a two-contact step waits for the
	// maximum of two draws. nil means instant edges. Latency composes
	// additively with Delay when both are set.
	Latency sched.LatencyModel
	// ChurnRate, in [0, 1), is the probability that any given activation
	// is a churn event instead of a protocol step: the activated node is
	// replaced by a fresh joiner with a uniformly random opinion, working
	// and real time zero, and cleared protocol state. Since nodes activate
	// at rate ~1, this is also the per-node churn rate per unit parallel
	// time. Exact consensus stays reachable only while the steady-state
	// number of freshly churned nodes (≈ ChurnRate·n) is o(1) — keep
	// ChurnRate well below 1/n, or accept ErrNoConsensus as the outcome.
	// Halted nodes no longer activate and therefore no longer churn.
	ChurnRate float64

	// ProbeInterval is the period, in parallel time, of synchronization
	// probes delivered to OnProbe. Zero selects 1.0; negative disables
	// probing even if OnProbe is set.
	ProbeInterval float64
	// OnProbe observes periodic synchronization-quality snapshots.
	OnProbe func(Probe)

	// Adversary, if non-nil, attacks the run: scheduling adversaries
	// redirect or suppress activations and corruption adversaries flip
	// live, not-yet-halted nodes' opinions at window boundaries. Byzantine
	// adversaries are rejected — the protocol's samples carry bits and real
	// times alongside colors, so there is no single lying channel to
	// intercept (use the generic Rule engines for Byzantine sampling).
	// Instances are single-run: construct a fresh one per trial.
	Adversary *adversary.Adversary

	// Stop, if non-nil, is polled at a coarse stride (every tick batch or
	// stopCheckStride ticks); returning true abandons the run with
	// ErrStopped and the progress made so far.
	Stop func() bool
	// OnObserve, if set, is invoked every ObserveInterval units of parallel
	// time (an interval <= 0 observes every tick) with the current time and
	// delivered tick count. It is the streaming-observation hook of the
	// public layer, which reads the population histogram during the
	// callback; it is independent of the probe stream, so both can be
	// active with different periods.
	ObserveInterval float64
	OnObserve       func(now float64, ticks int64)
}

// Spec is the fully resolved schedule layout of a run. All quantities are
// in ticks of working time.
type Spec struct {
	// Delta is the block length ∆.
	Delta int
	// PhaseTicks is the length of one part-1 phase (7∆).
	PhaseTicks int
	// Phases is the number of part-1 phases.
	Phases int
	// CommitOffset is the in-phase offset of the commit step (2∆).
	CommitOffset int
	// BPStart and BPEnd delimit the Bit-Propagation window [3∆, 4∆).
	BPStart, BPEnd int
	// GadgetStart is the in-phase offset where gadget sampling begins
	// (5∆); GadgetSamples is its length L.
	GadgetStart   int
	GadgetSamples int
	// JumpOffset is the in-phase offset of the jump step (7∆−1).
	JumpOffset int
	// Part1Ticks is the first part-2 working time (Phases·PhaseTicks).
	Part1Ticks int
	// EndgameTicks is the per-node part-2 budget.
	EndgameTicks int
}

// Plan resolves the schedule for a population of n nodes under cfg,
// applying all defaults. It is exported so tests and the experiment
// harness can reason about the layout without running the protocol.
func Plan(cfg Config, n int) (Spec, error) {
	if n < 4 {
		return Spec{}, fmt.Errorf("core: need n >= 4 nodes, got %d", n)
	}
	ln := math.Log(float64(n))
	lnln := math.Log(ln)
	if lnln < 1 {
		lnln = 1
	}

	delta := cfg.Delta
	if delta == 0 {
		factor := cfg.DeltaFactor
		if factor == 0 {
			factor = DefaultDeltaFactor
		}
		delta = int(math.Ceil(factor * ln / lnln))
	}
	if delta < 2 {
		return Spec{}, fmt.Errorf("core: block length Delta = %d, want >= 2", delta)
	}

	phases := cfg.Phases
	if phases == 0 {
		phases = int(math.Ceil(math.Log2(ln))) + DefaultPhaseSlack
	}
	if phases < 1 {
		return Spec{}, fmt.Errorf("core: Phases = %d, want >= 1", phases)
	}

	gadget := cfg.GadgetSamples
	if gadget == 0 {
		l2 := math.Log2(float64(n))
		gadget = int(math.Ceil(math.Pow(math.Log2(l2), 3)))
	}
	if gadget > delta {
		gadget = delta
	}
	if gadget < 1 {
		return Spec{}, fmt.Errorf("core: GadgetSamples = %d, want >= 1", gadget)
	}

	endgame := cfg.EndgameTicks
	if endgame == 0 {
		endgame = int(math.Ceil(DefaultEndgameFactor * ln))
	}
	if endgame < 1 {
		return Spec{}, fmt.Errorf("core: EndgameTicks = %d, want >= 1", endgame)
	}

	s := Spec{
		Delta:         delta,
		PhaseTicks:    7 * delta,
		Phases:        phases,
		CommitOffset:  2 * delta,
		BPStart:       3 * delta,
		BPEnd:         4 * delta,
		GadgetStart:   5 * delta,
		GadgetSamples: gadget,
		JumpOffset:    7*delta - 1,
		EndgameTicks:  endgame,
	}
	s.Part1Ticks = phases * s.PhaseTicks
	if cfg.SkipPart1 {
		s.Phases = 0
		s.Part1Ticks = 0
	}
	// The run state stores working times as int32 (the schedule is
	// Θ(log n) ticks, so 32 bits are plentiful); reject override choices
	// that could push the schedule past that representation.
	if total := int64(phases)*int64(s.PhaseTicks) + int64(s.EndgameTicks); total > math.MaxInt32 {
		return Spec{}, fmt.Errorf("core: schedule of %d ticks exceeds the int32 working-time representation", total)
	}
	return s, nil
}

// Probe is a periodic synchronization-quality snapshot over the live,
// not-yet-halted nodes.
type Probe struct {
	// Time is the parallel time of the snapshot.
	Time float64
	// Active is the number of live, non-halted nodes observed.
	Active int
	// Halted is the number of nodes that finished part 2.
	Halted int
	// MedianWorking is the median working time.
	MedianWorking int64
	// Spread90 is the q95 − q5 working-time spread.
	Spread90 int64
	// MaxAbsDev is the maximum |workingTime − median|.
	MaxAbsDev int64
	// PoorlySynced counts nodes with |workingTime − median| > ∆ — the
	// paper requires this to stay o(n).
	PoorlySynced int
	// PluralityFraction is the support fraction of the current plurality
	// color (over all nodes, including crashed ones).
	PluralityFraction float64
}

// Result describes one completed run.
type Result struct {
	// Done reports whether all live nodes agreed on one color.
	Done bool
	// Winner is the consensus color if Done, else the current plurality.
	Winner population.Color
	// ConsensusTime is the parallel time at which consensus was reached
	// (valid when Done).
	ConsensusTime float64
	// FirstHaltTime is the parallel time the first node finished part 2;
	// zero if no node halted before the run ended.
	FirstHaltTime float64
	// EndgameSafe reports the §3.2 guarantee: consensus happened before
	// the first node halted.
	EndgameSafe bool
	// Time is the parallel time of the last delivered tick.
	Time float64
	// Ticks is the total number of delivered activations.
	Ticks int64
	// Jumps is the total number of executed Sync Gadget jumps.
	Jumps int64
	// Churns is the total number of churn events (node replacements).
	Churns int64
	// MaxJumpAdjustment is the largest |jump target − working time before
	// jump| observed, a measure of how hard the gadget had to work.
	MaxJumpAdjustment int64
	// Corruptions is the number of opinions the adversary rewrote.
	Corruptions int64
	// Biased is the number of activations the adversary redirected or
	// suppressed.
	Biased int64
}
