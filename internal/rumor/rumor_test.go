package rumor

import (
	"errors"
	"math"
	"testing"

	"plurality/internal/graph"
	"plurality/internal/rng"
	"plurality/internal/sched"
)

func completeGraph(t *testing.T, n int) graph.Graph {
	t.Helper()
	g, err := graph.NewComplete(n)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewStateValidation(t *testing.T) {
	if _, err := NewState(0, 0); err == nil {
		t.Error("n=0 should fail")
	}
	if _, err := NewState(5); err == nil {
		t.Error("no sources should fail")
	}
	if _, err := NewState(5, 7); err == nil {
		t.Error("out-of-range source should fail")
	}
	st, err := NewState(5, 1, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if st.Informed() != 2 || !st.IsInformed(1) || !st.IsInformed(3) || st.IsInformed(0) {
		t.Fatalf("state wrong: informed=%d", st.Informed())
	}
}

func TestStrategyString(t *testing.T) {
	if Push.String() != "push" || Pull.String() != "pull" || PushPull.String() != "push-pull" {
		t.Error("strategy names wrong")
	}
	if Strategy(9).String() != "strategy(9)" {
		t.Error("unknown strategy string wrong")
	}
}

func TestRunSyncInformsEveryone(t *testing.T) {
	tests := []struct {
		name     string
		strategy Strategy
	}{
		{name: "push", strategy: Push},
		{name: "pull", strategy: Pull},
		{name: "push-pull", strategy: PushPull},
	}
	const n = 2000
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			st, err := NewState(n, 0)
			if err != nil {
				t.Fatal(err)
			}
			res, err := RunSync(st, tt.strategy, completeGraph(t, n), rng.New(1), 1000)
			if err != nil {
				t.Fatal(err)
			}
			if st.Informed() != n {
				t.Fatalf("informed %d/%d", st.Informed(), n)
			}
			// Θ(log n) rounds with a modest constant.
			ln2 := math.Log2(float64(n))
			if float64(res.Rounds) < ln2/2 || float64(res.Rounds) > 6*ln2 {
				t.Fatalf("%s took %d rounds, want Θ(log2 n) ~ %.0f", tt.strategy, res.Rounds, ln2)
			}
			if len(res.History) != res.Rounds+1 {
				t.Fatalf("history length %d for %d rounds", len(res.History), res.Rounds)
			}
			for i := 1; i < len(res.History); i++ {
				if res.History[i] < res.History[i-1] {
					t.Fatal("informed count decreased")
				}
			}
		})
	}
}

func TestPushDoublesEarly(t *testing.T) {
	// In the exponential-growth phase, push grows the informed set by
	// ~2x per round (every informed node informs one other, few
	// collisions while the set is small).
	const n = 100000
	st, err := NewState(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunSync(st, Push, completeGraph(t, n), rng.New(2), 1000)
	if err != nil {
		t.Fatal(err)
	}
	// Check growth factors while below n/8.
	for i := 1; i < len(res.History); i++ {
		prev, cur := res.History[i-1], res.History[i]
		if cur > n/8 || prev < 32 {
			continue
		}
		factor := float64(cur) / float64(prev)
		if factor < 1.6 || factor > 2.05 {
			t.Fatalf("round %d: growth factor %.2f, want ~2 (history %v)", i, factor, res.History[:i+1])
		}
	}
}

func TestPullTailShrinksQuadratically(t *testing.T) {
	// Once a majority is informed, the uninformed fraction u satisfies
	// u' ≈ u² per pull round — the log log n endgame the paper's
	// Bit-Propagation length relies on.
	const n = 200000
	st, err := NewState(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunSync(st, Pull, completeGraph(t, n), rng.New(3), 1000)
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for i := 1; i < len(res.History); i++ {
		uPrev := 1 - float64(res.History[i-1])/n
		uCur := 1 - float64(res.History[i])/n
		if uPrev > 0.3 || uPrev < 0.001 {
			continue
		}
		pred := uPrev * uPrev
		if uCur > 3*pred+1e-9 || uCur < pred/3 {
			t.Fatalf("round %d: uninformed %.5f -> %.5f, predicted ~%.5f", i, uPrev, uCur, pred)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no rounds in the quadratic-shrink regime")
	}
}

func TestRunSyncBudget(t *testing.T) {
	st, err := NewState(1000, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, err = RunSync(st, Push, completeGraph(t, 1000), rng.New(4), 2)
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
}

func TestRunSyncValidation(t *testing.T) {
	st, err := NewState(10, 0)
	if err != nil {
		t.Fatal(err)
	}
	g := completeGraph(t, 10)
	if _, err := RunSync(nil, Push, g, rng.New(1), 10); err == nil {
		t.Error("nil state should fail")
	}
	if _, err := RunSync(st, Strategy(0), g, rng.New(1), 10); err == nil {
		t.Error("bad strategy should fail")
	}
	if _, err := RunSync(st, Push, completeGraph(t, 5), rng.New(1), 10); err == nil {
		t.Error("size mismatch should fail")
	}
	if _, err := RunSync(st, Push, g, rng.New(1), 0); err == nil {
		t.Error("zero budget should fail")
	}
	if _, err := RunSync(st, Push, g, nil, 10); err == nil {
		t.Error("nil rand should fail")
	}
}

func TestRunAsyncInformsEveryone(t *testing.T) {
	const n = 5000
	for _, strategy := range []Strategy{Push, Pull, PushPull} {
		st, err := NewState(n, 0)
		if err != nil {
			t.Fatal(err)
		}
		s, err := sched.NewSequential(n, rng.New(5))
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunAsync(st, strategy, completeGraph(t, n), s, rng.New(6), 1e5)
		if err != nil {
			t.Fatalf("%s: %v", strategy, err)
		}
		if st.Informed() != n {
			t.Fatalf("%s informed %d/%d", strategy, st.Informed(), n)
		}
		ln := math.Log(float64(n))
		if res.Time < ln/2 || res.Time > 10*ln {
			t.Fatalf("%s took %.1f time, want Θ(ln n) ~ %.1f", strategy, res.Time, ln)
		}
	}
}

func TestRunAsyncPushPullFasterThanEither(t *testing.T) {
	const n = 20000
	run := func(strategy Strategy) float64 {
		st, err := NewState(n, 0)
		if err != nil {
			t.Fatal(err)
		}
		s, err := sched.NewSequential(n, rng.New(7))
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunAsync(st, strategy, completeGraph(t, n), s, rng.New(8), 1e5)
		if err != nil {
			t.Fatal(err)
		}
		return res.Time
	}
	pp := run(PushPull)
	if push := run(Push); pp >= push {
		t.Fatalf("push-pull (%.1f) not faster than push (%.1f)", pp, push)
	}
	if pull := run(Pull); pp >= pull {
		t.Fatalf("push-pull (%.1f) not faster than pull (%.1f)", pp, pull)
	}
}

func TestRunAsyncValidation(t *testing.T) {
	st, err := NewState(10, 0)
	if err != nil {
		t.Fatal(err)
	}
	g := completeGraph(t, 10)
	s, err := sched.NewSequential(10, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunAsync(st, Push, g, nil, rng.New(1), 10); err == nil {
		t.Error("nil scheduler should fail")
	}
	if _, err := RunAsync(st, Push, g, s, rng.New(1), 0); err == nil {
		t.Error("zero budget should fail")
	}
	s5, err := sched.NewSequential(5, rng.New(10))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunAsync(st, Push, g, s5, rng.New(1), 10); err == nil {
		t.Error("scheduler size mismatch should fail")
	}
}

func TestRumorOnRingIsSlow(t *testing.T) {
	// On the cycle, rumor spreading is Θ(n), not Θ(log n) — a sanity
	// check that the topology abstraction actually matters.
	const n = 200
	g, err := graph.NewCycle(n)
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewState(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunSync(st, PushPull, g, rng.New(11), 10*n)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds < n/8 {
		t.Fatalf("cycle spread in %d rounds, expected Ω(n/8) = %d", res.Rounds, n/8)
	}
}

func BenchmarkPushPullSyncRound(b *testing.B) {
	const n = 100000
	g, err := graph.NewComplete(n)
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := NewState(n, 0)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := RunSync(st, PushPull, g, r, 1000); err != nil {
			b.Fatal(err)
		}
	}
}
