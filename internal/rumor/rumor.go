// Package rumor implements randomized rumor spreading (push, pull, and
// push-pull) on an arbitrary topology — the information-dissemination
// process the paper's §2 combines with Two-Choices: "we combine the
// two-choices process with the speed of broadcasting".
//
// The Bit-Propagation sub-phase of OneExtraBit and of the asynchronous core
// protocol is exactly the *pull* variant: uninformed (bitless) nodes sample
// until they hit an informed (bit-set) node. This package provides the
// standalone processes with both synchronous and asynchronous engines, and
// its tests pin down the growth behaviour the paper's phase lengths rely
// on: push and pull both inform all n nodes in Θ(log n) rounds, with pull's
// tail shrinking quadratically ((1−f)' = (1−f)², the log log n endgame).
package rumor

import (
	"errors"
	"fmt"

	"plurality/internal/graph"
	"plurality/internal/rng"
	"plurality/internal/sched"
)

// Strategy selects who initiates the exchange.
type Strategy int

const (
	// Push: informed nodes sample a neighbor and inform it.
	Push Strategy = iota + 1
	// Pull: uninformed nodes sample a neighbor and become informed if it
	// is.
	Pull
	// PushPull: both.
	PushPull
)

// String returns the strategy name.
func (s Strategy) String() string {
	switch s {
	case Push:
		return "push"
	case Pull:
		return "pull"
	case PushPull:
		return "push-pull"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// ErrBudget reports a run that did not inform every node in budget.
var ErrBudget = errors.New("rumor: budget exceeded before full dissemination")

// State is the informed/uninformed status of all nodes.
type State struct {
	informed []bool
	count    int
}

// NewState returns a state with exactly the given source nodes informed.
func NewState(n int, sources ...int) (*State, error) {
	if n <= 0 {
		return nil, fmt.Errorf("rumor: n = %d, want > 0", n)
	}
	if len(sources) == 0 {
		return nil, errors.New("rumor: need at least one source")
	}
	s := &State{informed: make([]bool, n)}
	for _, src := range sources {
		if src < 0 || src >= n {
			return nil, fmt.Errorf("rumor: source %d out of range", src)
		}
		if !s.informed[src] {
			s.informed[src] = true
			s.count++
		}
	}
	return s, nil
}

// N returns the number of nodes.
func (s *State) N() int { return len(s.informed) }

// Informed returns the number of informed nodes.
func (s *State) Informed() int { return s.count }

// IsInformed reports whether node u is informed.
func (s *State) IsInformed(u int) bool { return s.informed[u] }

// inform marks u informed.
func (s *State) inform(u int) {
	if !s.informed[u] {
		s.informed[u] = true
		s.count++
	}
}

// SyncResult describes a synchronous dissemination run.
type SyncResult struct {
	// Rounds until every node was informed.
	Rounds int
	// History[r] is the informed count after round r (History[0] is the
	// initial count).
	History []int
}

// RunSync spreads the rumor in synchronous rounds until everyone is
// informed or maxRounds elapse. Exchanges within a round all read the
// round-start state (simultaneous semantics).
func RunSync(st *State, strategy Strategy, g graph.Graph, r *rng.RNG, maxRounds int) (SyncResult, error) {
	if err := validate(st, strategy, g, r); err != nil {
		return SyncResult{}, err
	}
	if maxRounds <= 0 {
		return SyncResult{}, fmt.Errorf("rumor: maxRounds = %d, want > 0", maxRounds)
	}
	n := st.N()
	res := SyncResult{History: []int{st.Informed()}}
	frozen := make([]bool, n)
	newly := make([]int, 0, n)
	for round := 1; round <= maxRounds; round++ {
		copy(frozen, st.informed)
		newly = newly[:0]
		for u := 0; u < n; u++ {
			switch {
			case frozen[u] && (strategy == Push || strategy == PushPull):
				v := g.Sample(r, u)
				if !frozen[v] {
					newly = append(newly, v)
				}
			}
			if !frozen[u] && (strategy == Pull || strategy == PushPull) {
				v := g.Sample(r, u)
				if frozen[v] {
					newly = append(newly, u)
				}
			}
		}
		for _, u := range newly {
			st.inform(u)
		}
		res.History = append(res.History, st.Informed())
		if st.Informed() == n {
			res.Rounds = round
			return res, nil
		}
	}
	res.Rounds = maxRounds
	return res, fmt.Errorf("rumor: %d/%d informed after %d rounds: %w", st.Informed(), n, maxRounds, ErrBudget)
}

// AsyncResult describes an asynchronous dissemination run.
type AsyncResult struct {
	// Time is the parallel time at which the last node was informed.
	Time float64
	// Ticks is the number of activations consumed.
	Ticks int64
}

// RunAsync spreads the rumor under the given scheduler until everyone is
// informed or maxTime elapses. On each tick the activated node pushes
// and/or pulls once, per the strategy.
func RunAsync(st *State, strategy Strategy, g graph.Graph, s sched.Scheduler, r *rng.RNG, maxTime float64) (AsyncResult, error) {
	if err := validate(st, strategy, g, r); err != nil {
		return AsyncResult{}, err
	}
	if s == nil {
		return AsyncResult{}, errors.New("rumor: nil scheduler")
	}
	if s.N() != st.N() {
		return AsyncResult{}, fmt.Errorf("rumor: scheduler has %d nodes, state %d", s.N(), st.N())
	}
	if maxTime <= 0 {
		return AsyncResult{}, fmt.Errorf("rumor: maxTime = %v, want > 0", maxTime)
	}
	n := st.N()
	last, stopped := sched.RunUntil(s, maxTime, func(t sched.Tick) bool {
		u := t.Node
		if st.informed[u] && (strategy == Push || strategy == PushPull) {
			st.inform(g.Sample(r, u))
		}
		if !st.informed[u] && (strategy == Pull || strategy == PushPull) {
			if v := g.Sample(r, u); st.informed[v] {
				st.inform(u)
			}
		}
		return st.Informed() < n
	})
	res := AsyncResult{Time: last.Time, Ticks: last.Seq + 1}
	if !stopped {
		return res, fmt.Errorf("rumor: %d/%d informed by time %v: %w", st.Informed(), n, maxTime, ErrBudget)
	}
	return res, nil
}

func validate(st *State, strategy Strategy, g graph.Graph, r *rng.RNG) error {
	switch {
	case st == nil:
		return errors.New("rumor: nil state")
	case g == nil:
		return errors.New("rumor: nil graph")
	case r == nil:
		return errors.New("rumor: nil rand")
	case g.N() != st.N():
		return fmt.Errorf("rumor: graph has %d nodes, state %d", g.N(), st.N())
	case strategy != Push && strategy != Pull && strategy != PushPull:
		return fmt.Errorf("rumor: unknown strategy %d", strategy)
	}
	return nil
}
