package population

import (
	"testing"

	"plurality/internal/rng"
)

// recount recomputes the color histogram from the per-node vector,
// returning the per-color counts and the number of undecided (None) nodes.
func recount(p *Population) ([]int64, int64) {
	counts := make([]int64, p.K())
	var undecided int64
	for u := 0; u < p.N(); u++ {
		if c := p.ColorOf(u); c == None {
			undecided++
		} else {
			counts[c]++
		}
	}
	return counts, undecided
}

func countsEqual(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSetColorPreservesHistogramInvariant is the property test of the
// package's central invariant: after any sequence of SetColor mutations the
// cached counts must equal the histogram of the color vector. The
// count-collapsed engine leans on this — pop.Counts() is assumed to *be*
// the configuration.
func TestSetColorPreservesHistogramInvariant(t *testing.T) {
	r := rng.New(91)
	for trial := 0; trial < 50; trial++ {
		n := 2 + r.Intn(60)
		k := 1 + r.Intn(6)
		initial := make([]int64, k)
		initial[r.Intn(k)] = int64(n) // all nodes start on one random color
		p, err := FromCounts(initial)
		if err != nil {
			t.Fatal(err)
		}
		steps := r.Intn(400)
		for i := 0; i < steps; i++ {
			// Mix undecided transitions (USD's None state) into the walk:
			// roughly one mutation in five parks a node in the undecided
			// bucket instead of a color.
			c := Color(r.Intn(k))
			if r.Intn(5) == 0 {
				c = None
			}
			p.SetColor(r.Intn(n), c)
		}
		want, wantUnd := recount(p)
		if got := p.Counts(); !countsEqual(got, want) {
			t.Fatalf("trial %d: counts %v drifted from histogram %v after %d SetColor calls",
				trial, got, want, steps)
		}
		if got := p.Undecided(); got != wantUnd {
			t.Fatalf("trial %d: undecided bucket %d drifted from histogram %d", trial, got, wantUnd)
		}
		total := p.Undecided()
		for _, v := range p.Counts() {
			total += v
		}
		if total != int64(n) {
			t.Fatalf("trial %d: holders + undecided = %d no longer sum to n=%d (counts %v)",
				trial, total, n, p.Counts())
		}
	}
}

func TestSetCounts(t *testing.T) {
	p, err := FromCounts([]int64{4, 3, 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.SetCounts([]int64{10, 0, 0}); err != nil {
		t.Fatal(err)
	}
	if !p.ConsensusOn(0) {
		t.Fatalf("SetCounts did not rewrite the colors: counts %v", p.Counts())
	}
	if got, want := p.Counts(), mustRecount(t, p); !countsEqual(got, want) {
		t.Fatalf("counts %v inconsistent with histogram %v", got, want)
	}
	if err := p.SetCounts([]int64{2, 3, 5}); err != nil {
		t.Fatal(err)
	}
	if got, want := p.Counts(), mustRecount(t, p); !countsEqual(got, want) {
		t.Fatalf("counts %v inconsistent with histogram %v", got, want)
	}

	for _, bad := range [][]int64{
		{10},         // wrong k
		{4, 3, 2},    // wrong total
		{11, 0, -1},  // negative
		{4, 3, 3, 0}, // wrong k (extra color)
		{0, 0, 0},    // zero total
	} {
		if err := p.SetCounts(bad); err == nil {
			t.Errorf("SetCounts(%v): no error", bad)
		}
	}
	// Failed calls must not have corrupted the state.
	if got, want := p.Counts(), mustRecount(t, p); !countsEqual(got, want) {
		t.Fatalf("after rejected SetCounts: counts %v inconsistent with histogram %v", got, want)
	}
}

// mustRecount recomputes the histogram and fails if any node is undecided
// (for tests of the fully decided write-back path).
func mustRecount(t *testing.T, p *Population) []int64 {
	t.Helper()
	counts, undecided := recount(p)
	if undecided != 0 {
		t.Fatalf("unexpected undecided nodes: %d", undecided)
	}
	return counts
}

func TestSetCountsUndecided(t *testing.T) {
	p, err := FromCounts([]int64{4, 3, 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.SetCountsUndecided([]int64{5, 2, 0}, 3); err != nil {
		t.Fatal(err)
	}
	want, wantUnd := recount(p)
	if got := p.Counts(); !countsEqual(got, want) || p.Undecided() != wantUnd || wantUnd != 3 {
		t.Fatalf("counts %v (undecided %d) inconsistent with histogram %v (undecided %d)",
			got, p.Undecided(), want, wantUnd)
	}
	if p.IsUnanimous() {
		t.Fatal("population with undecided nodes cannot be unanimous")
	}
	if got := p.Count(None); got != 3 {
		t.Fatalf("Count(None) = %d, want 3", got)
	}
	for _, bad := range []struct {
		counts    []int64
		undecided int64
	}{
		{[]int64{5, 2, 0}, 4},  // wrong total
		{[]int64{5, 2, 0}, -1}, // negative undecided
		{[]int64{10, 0, 0}, 1}, // wrong total
	} {
		if err := p.SetCountsUndecided(bad.counts, bad.undecided); err == nil {
			t.Errorf("SetCountsUndecided(%v, %d): no error", bad.counts, bad.undecided)
		}
	}
}
