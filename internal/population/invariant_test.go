package population

import (
	"testing"

	"plurality/internal/rng"
)

// recount recomputes the color histogram from the per-node vector.
func recount(p *Population) []int64 {
	counts := make([]int64, p.K())
	for u := 0; u < p.N(); u++ {
		counts[p.ColorOf(u)]++
	}
	return counts
}

func countsEqual(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSetColorPreservesHistogramInvariant is the property test of the
// package's central invariant: after any sequence of SetColor mutations the
// cached counts must equal the histogram of the color vector. The
// count-collapsed engine leans on this — pop.Counts() is assumed to *be*
// the configuration.
func TestSetColorPreservesHistogramInvariant(t *testing.T) {
	r := rng.New(91)
	for trial := 0; trial < 50; trial++ {
		n := 2 + r.Intn(60)
		k := 1 + r.Intn(6)
		initial := make([]int64, k)
		initial[r.Intn(k)] = int64(n) // all nodes start on one random color
		p, err := FromCounts(initial)
		if err != nil {
			t.Fatal(err)
		}
		steps := r.Intn(400)
		for i := 0; i < steps; i++ {
			p.SetColor(r.Intn(n), Color(r.Intn(k)))
		}
		if got, want := p.Counts(), recount(p); !countsEqual(got, want) {
			t.Fatalf("trial %d: counts %v drifted from histogram %v after %d SetColor calls",
				trial, got, want, steps)
		}
		var total int64
		for _, v := range p.Counts() {
			total += v
		}
		if total != int64(n) {
			t.Fatalf("trial %d: counts %v no longer sum to n=%d", trial, p.Counts(), n)
		}
	}
}

func TestSetCounts(t *testing.T) {
	p, err := FromCounts([]int64{4, 3, 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.SetCounts([]int64{10, 0, 0}); err != nil {
		t.Fatal(err)
	}
	if !p.ConsensusOn(0) {
		t.Fatalf("SetCounts did not rewrite the colors: counts %v", p.Counts())
	}
	if got, want := p.Counts(), recount(p); !countsEqual(got, want) {
		t.Fatalf("counts %v inconsistent with histogram %v", got, want)
	}
	if err := p.SetCounts([]int64{2, 3, 5}); err != nil {
		t.Fatal(err)
	}
	if got, want := p.Counts(), recount(p); !countsEqual(got, want) {
		t.Fatalf("counts %v inconsistent with histogram %v", got, want)
	}

	for _, bad := range [][]int64{
		{10},         // wrong k
		{4, 3, 2},    // wrong total
		{11, 0, -1},  // negative
		{4, 3, 3, 0}, // wrong k (extra color)
		{0, 0, 0},    // zero total
	} {
		if err := p.SetCounts(bad); err == nil {
			t.Errorf("SetCounts(%v): no error", bad)
		}
	}
	// Failed calls must not have corrupted the state.
	if got, want := p.Counts(), recount(p); !countsEqual(got, want) {
		t.Fatalf("after rejected SetCounts: counts %v inconsistent with histogram %v", got, want)
	}
}
