// Package population tracks the opinion (color) of every node together with
// live per-color counts, and provides the initial-distribution workloads
// used throughout the paper's theorems:
//
//   - Biased: c_1 = (1+ε)·c_2 with the rest split evenly (Theorem 1.3)
//   - GapSqrt: c_1 − c_2 = z·sqrt(n·ln n), c_2 = … = c_k (Theorem 1.1)
//   - GapSqrtPolylog: c_1 − c_2 = z·sqrt(n)·ln^{3/2} n (Theorem 1.2)
//   - TinyGap: c_1 − c_2 = z·sqrt(n) (the "C_2 wins with constant
//     probability" regime)
//
// A Population maintains the invariant that counts always equal the
// histogram of the color vector; SetColor is the only mutation point.
// Nodes may also hold no opinion at all — the undecided state of
// Undecided-State Dynamics, stored as None and tracked in a separate
// undecided bucket so that holders + undecided always equals n.
package population

import (
	"fmt"
	"math"

	"plurality/internal/rng"
)

// Color identifies an opinion. Valid colors are 0 … K()-1; None marks a node
// with no opinion — used both as a protocol intermediate and as the stored
// undecided state of Undecided-State Dynamics (see SetColor).
type Color int32

// None is the absence of a color.
const None Color = -1

// Population is the opinion state of n nodes over k colors, plus the
// number of nodes currently undecided (holding None).
type Population struct {
	colors    []Color
	counts    []int64
	undecided int64
}

// New creates a population of n nodes over k colors, all initially holding
// color 0.
func New(n, k int) (*Population, error) {
	if n <= 0 {
		return nil, fmt.Errorf("population: n = %d, want > 0", n)
	}
	if k <= 0 {
		return nil, fmt.Errorf("population: k = %d, want > 0", k)
	}
	p := &Population{
		colors: make([]Color, n),
		counts: make([]int64, k),
	}
	p.counts[0] = int64(n)
	return p, nil
}

// FromCounts creates a population whose color histogram equals counts,
// assigning colors to node indices in contiguous blocks (node order is
// irrelevant to clique protocols; use Shuffle for spatial topologies).
func FromCounts(counts []int64) (*Population, error) {
	if len(counts) == 0 {
		return nil, fmt.Errorf("population: empty counts")
	}
	var n int64
	for c, v := range counts {
		if v < 0 {
			return nil, fmt.Errorf("population: negative count %d for color %d", v, c)
		}
		n += v
	}
	if n == 0 {
		return nil, fmt.Errorf("population: zero total count")
	}
	p := &Population{
		colors: make([]Color, n),
		counts: make([]int64, len(counts)),
	}
	copy(p.counts, counts)
	i := 0
	for c, v := range counts {
		for j := int64(0); j < v; j++ {
			p.colors[i] = Color(c)
			i++
		}
	}
	return p, nil
}

// N returns the number of nodes.
func (p *Population) N() int { return len(p.colors) }

// K returns the number of colors.
func (p *Population) K() int { return len(p.counts) }

// ColorOf returns node u's current color.
func (p *Population) ColorOf(u int) Color { return p.colors[u] }

// SetColor changes node u's color to c, maintaining the invariant that
// counts plus the undecided bucket always equal the histogram of the color
// vector. c may be None: the node moves to the undecided state
// (Undecided-State Dynamics), leaving every per-color count untouched.
func (p *Population) SetColor(u int, c Color) {
	old := p.colors[u]
	if old == c {
		return
	}
	if old == None {
		p.undecided--
	} else {
		p.counts[old]--
	}
	if c == None {
		p.undecided++
	} else {
		p.counts[c]++
	}
	p.colors[u] = c
}

// Count returns the number of nodes holding color c; Count(None) returns
// the number of undecided nodes.
func (p *Population) Count(c Color) int64 {
	if c == None {
		return p.undecided
	}
	return p.counts[c]
}

// Undecided returns the number of nodes currently holding no opinion.
func (p *Population) Undecided() int64 { return p.undecided }

// Counts returns a copy of the per-color histogram.
func (p *Population) Counts() []int64 {
	out := make([]int64, len(p.counts))
	copy(out, p.counts)
	return out
}

// CountsView returns the live per-color histogram without copying. The
// slice aliases the population's internal state: callers must treat it as
// read-only and must not retain it across mutations. It exists for per-tick
// consumers (the adversary hooks) where Counts' copy would allocate on the
// hot loop.
func (p *Population) CountsView() []int64 { return p.counts }

// Fraction returns the fraction of nodes holding color c.
func (p *Population) Fraction(c Color) float64 {
	return float64(p.counts[c]) / float64(len(p.colors))
}

// TopTwo returns the colors with the largest and second-largest support and
// their counts. Ties are broken by lower color index. For k = 1 the second
// color is None with count 0.
func (p *Population) TopTwo() (first Color, firstCount int64, second Color, secondCount int64) {
	first, second = 0, None
	firstCount = p.counts[0]
	for c := 1; c < len(p.counts); c++ {
		switch v := p.counts[c]; {
		case v > firstCount:
			second, secondCount = first, firstCount
			first, firstCount = Color(c), v
		case second == None || v > secondCount:
			second, secondCount = Color(c), v
		}
	}
	return first, firstCount, second, secondCount
}

// Plurality returns the color with the largest support.
func (p *Population) Plurality() Color {
	first, _, _, _ := p.TopTwo()
	return first
}

// Bias returns c_1 − c_2, the additive advantage of the plurality color.
func (p *Population) Bias() int64 {
	_, c1, _, c2 := p.TopTwo()
	return c1 - c2
}

// IsUnanimous reports whether every node holds the same color.
func (p *Population) IsUnanimous() bool {
	_, c1, _, _ := p.TopTwo()
	return c1 == int64(len(p.colors))
}

// ConsensusOn reports whether every node holds color c.
func (p *Population) ConsensusOn(c Color) bool {
	return p.counts[c] == int64(len(p.colors))
}

// SetCounts overwrites the population in place so its histogram equals
// counts, assigning colors to node indices in contiguous blocks exactly as
// FromCounts does. It is how the count-collapsed occupancy engine writes a
// finished run back into per-node form: on the clique, which node holds
// which color is irrelevant, only the histogram matters. The shape (n, k)
// must match.
func (p *Population) SetCounts(counts []int64) error {
	return p.SetCountsUndecided(counts, 0)
}

// SetCountsUndecided is SetCounts for populations with undecided nodes
// (Undecided-State Dynamics): counts[c] nodes hold color c, the trailing
// undecided nodes hold None, and counts total plus undecided must equal n.
func (p *Population) SetCountsUndecided(counts []int64, undecided int64) error {
	if len(counts) != len(p.counts) {
		return fmt.Errorf("population: SetCounts got %d colors, want %d", len(counts), len(p.counts))
	}
	if undecided < 0 {
		return fmt.Errorf("population: SetCounts negative undecided count %d", undecided)
	}
	n := undecided
	for c, v := range counts {
		if v < 0 {
			return fmt.Errorf("population: SetCounts negative count %d for color %d", v, c)
		}
		n += v
	}
	if n != int64(len(p.colors)) {
		return fmt.Errorf("population: SetCounts total %d, want %d", n, len(p.colors))
	}
	copy(p.counts, counts)
	p.undecided = undecided
	i := 0
	for c, v := range counts {
		for j := int64(0); j < v; j++ {
			p.colors[i] = Color(c)
			i++
		}
	}
	for ; i < len(p.colors); i++ {
		p.colors[i] = None
	}
	return nil
}

// Shuffle permutes which node holds which color, uniformly at random,
// preserving the histogram. Needed when the topology is not the clique.
func (p *Population) Shuffle(r *rng.RNG) {
	r.Shuffle(len(p.colors), func(i, j int) {
		p.colors[i], p.colors[j] = p.colors[j], p.colors[i]
	})
}

// Clone returns a deep copy.
func (p *Population) Clone() *Population {
	cp := &Population{
		colors:    make([]Color, len(p.colors)),
		counts:    make([]int64, len(p.counts)),
		undecided: p.undecided,
	}
	copy(cp.colors, p.colors)
	copy(cp.counts, p.counts)
	return cp
}

// Reset overwrites this population's state from src, which must have the
// same n and k. It lets trial loops reuse allocations.
func (p *Population) Reset(src *Population) error {
	if len(p.colors) != len(src.colors) || len(p.counts) != len(src.counts) {
		return fmt.Errorf("population: Reset shape mismatch")
	}
	copy(p.colors, src.colors)
	copy(p.counts, src.counts)
	p.undecided = src.undecided
	return nil
}

// --- Workload generators ------------------------------------------------

// BiasedCounts builds the Theorem 1.3 workload: the plurality color holds
// (1+eps) times the support of each other color, which share the remainder
// evenly. eps must be positive, k ≥ 2, and n large enough that every color
// is non-empty.
func BiasedCounts(n, k int, eps float64) ([]int64, error) {
	if k < 2 {
		return nil, fmt.Errorf("population: BiasedCounts k = %d, want >= 2", k)
	}
	if eps <= 0 {
		return nil, fmt.Errorf("population: BiasedCounts eps = %v, want > 0", eps)
	}
	if n < 2*k {
		return nil, fmt.Errorf("population: BiasedCounts n = %d too small for k = %d", n, k)
	}
	// c1 = (1+eps)·c, others = c with c = n / (k-1+1+eps).
	c := float64(n) / (float64(k-1) + 1 + eps)
	counts := make([]int64, k)
	counts[0] = int64(math.Round((1 + eps) * c))
	rest := int64(n) - counts[0]
	base := rest / int64(k-1)
	extra := int(rest % int64(k-1))
	for i := 1; i < k; i++ {
		counts[i] = base
		// Give the rounding remainder to the last colors; the runner-up
		// support is then base+1 at most, preserving c_1's margin.
		if i >= k-extra {
			counts[i]++
		}
	}
	if counts[0] <= counts[1] {
		return nil, fmt.Errorf("population: BiasedCounts produced no bias (n=%d k=%d eps=%v)", n, k, eps)
	}
	return counts, nil
}

// GapCounts builds a workload with a prescribed additive gap: the runner-up
// colors all share c_2 and the plurality color holds c_2 + gap. It returns
// an error if the gap cannot be realized.
func GapCounts(n, k int, gap int64) ([]int64, error) {
	if k < 2 {
		return nil, fmt.Errorf("population: GapCounts k = %d, want >= 2", k)
	}
	if gap < 0 || gap >= int64(n) {
		return nil, fmt.Errorf("population: GapCounts gap = %d out of range for n = %d", gap, n)
	}
	c2 := (int64(n) - gap) / int64(k)
	if c2 <= 0 {
		return nil, fmt.Errorf("population: GapCounts n = %d too small for k = %d, gap = %d", n, k, gap)
	}
	counts := make([]int64, k)
	counts[0] = c2 + gap
	for i := 1; i < k; i++ {
		counts[i] = c2
	}
	// Distribute rounding remainder to the plurality color so the gap is
	// at least the requested one.
	var total int64
	for _, v := range counts {
		total += v
	}
	counts[0] += int64(n) - total
	return counts, nil
}

// GapSqrtCounts builds the Theorem 1.1 workload:
// c_1 − c_2 = z·sqrt(n·ln n), c_2 = … = c_k.
func GapSqrtCounts(n, k int, z float64) ([]int64, error) {
	gap := int64(math.Ceil(z * math.Sqrt(float64(n)*math.Log(float64(n)))))
	return GapCounts(n, k, gap)
}

// GapSqrtPolylogCounts builds the Theorem 1.2 workload:
// c_1 − c_2 = z·sqrt(n)·ln^{3/2} n, c_2 = … = c_k.
func GapSqrtPolylogCounts(n, k int, z float64) ([]int64, error) {
	ln := math.Log(float64(n))
	gap := int64(math.Ceil(z * math.Sqrt(float64(n)) * math.Pow(ln, 1.5)))
	return GapCounts(n, k, gap)
}

// TinyGapCounts builds the negative-result workload of Theorem 1.1:
// c_1 − c_2 = z·sqrt(n), below the threshold needed for C_1 to win w.h.p.
func TinyGapCounts(n, k int, z float64) ([]int64, error) {
	gap := int64(math.Ceil(z * math.Sqrt(float64(n))))
	return GapCounts(n, k, gap)
}

// UniformCounts splits n nodes over k colors as evenly as possible, with
// color 0 receiving the remainder (so TopTwo stays deterministic).
func UniformCounts(n, k int) ([]int64, error) {
	if k <= 0 || n < k {
		return nil, fmt.Errorf("population: UniformCounts n = %d, k = %d", n, k)
	}
	counts := make([]int64, k)
	base := int64(n / k)
	for i := range counts {
		counts[i] = base
	}
	counts[0] += int64(n % k)
	return counts, nil
}

// ZipfCounts assigns supports proportional to the Zipf(s) weights over k
// colors, a skewed workload used in examples. Every color receives at
// least one node.
func ZipfCounts(n, k int, s float64) ([]int64, error) {
	if k <= 0 || n < k {
		return nil, fmt.Errorf("population: ZipfCounts n = %d, k = %d", n, k)
	}
	var norm float64
	for i := 1; i <= k; i++ {
		norm += math.Pow(float64(i), -s)
	}
	counts := make([]int64, k)
	var total int64
	for i := range counts {
		counts[i] = int64(math.Floor(float64(n) * math.Pow(float64(i+1), -s) / norm))
		if counts[i] == 0 {
			counts[i] = 1
		}
		total += counts[i]
	}
	// Fix the rounding drift on the head color (it is the largest).
	counts[0] += int64(n) - total
	if counts[0] <= 0 {
		return nil, fmt.Errorf("population: ZipfCounts infeasible for n = %d, k = %d, s = %v", n, k, s)
	}
	return counts, nil
}
