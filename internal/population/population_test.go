package population

import (
	"math"
	"testing"
	"testing/quick"

	"plurality/internal/rng"
)

func sum(counts []int64) int64 {
	var s int64
	for _, v := range counts {
		s += v
	}
	return s
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 2); err == nil {
		t.Error("n=0 should fail")
	}
	if _, err := New(5, 0); err == nil {
		t.Error("k=0 should fail")
	}
	p, err := New(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if p.N() != 5 || p.K() != 3 || p.Count(0) != 5 {
		t.Fatalf("unexpected initial state: n=%d k=%d c0=%d", p.N(), p.K(), p.Count(0))
	}
}

func TestFromCountsValidation(t *testing.T) {
	if _, err := FromCounts(nil); err == nil {
		t.Error("empty counts should fail")
	}
	if _, err := FromCounts([]int64{2, -1}); err == nil {
		t.Error("negative count should fail")
	}
	if _, err := FromCounts([]int64{0, 0}); err == nil {
		t.Error("zero total should fail")
	}
}

func TestFromCountsHistogram(t *testing.T) {
	counts := []int64{3, 0, 2}
	p, err := FromCounts(counts)
	if err != nil {
		t.Fatal(err)
	}
	if p.N() != 5 || p.K() != 3 {
		t.Fatalf("n=%d k=%d", p.N(), p.K())
	}
	got := make([]int64, 3)
	for u := 0; u < p.N(); u++ {
		got[p.ColorOf(u)]++
	}
	for c := range counts {
		if got[c] != counts[c] || p.Count(Color(c)) != counts[c] {
			t.Fatalf("color %d: histogram %d, Count %d, want %d", c, got[c], p.Count(Color(c)), counts[c])
		}
	}
}

func TestFromCountsDoesNotAliasInput(t *testing.T) {
	counts := []int64{2, 2}
	p, err := FromCounts(counts)
	if err != nil {
		t.Fatal(err)
	}
	counts[0] = 99
	if p.Count(0) != 2 {
		t.Fatal("population aliased caller's counts slice")
	}
}

func TestSetColorMaintainsCounts(t *testing.T) {
	p, err := FromCounts([]int64{3, 1})
	if err != nil {
		t.Fatal(err)
	}
	p.SetColor(0, 1)
	if p.Count(0) != 2 || p.Count(1) != 2 {
		t.Fatalf("counts after move: %v", p.Counts())
	}
	// No-op move.
	p.SetColor(0, 1)
	if p.Count(0) != 2 || p.Count(1) != 2 {
		t.Fatalf("counts after no-op: %v", p.Counts())
	}
}

func TestCountInvariantUnderRandomMutation(t *testing.T) {
	// Property: after arbitrary SetColor sequences, counts match the
	// histogram of colors and sum to n.
	p, err := FromCounts([]int64{10, 10, 10})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(1)
	check := func(steps uint8) bool {
		for i := 0; i < int(steps); i++ {
			p.SetColor(r.Intn(p.N()), Color(r.Intn(p.K())))
		}
		hist := make([]int64, p.K())
		for u := 0; u < p.N(); u++ {
			hist[p.ColorOf(u)]++
		}
		for c := 0; c < p.K(); c++ {
			if hist[c] != p.Count(Color(c)) {
				return false
			}
		}
		return sum(p.Counts()) == int64(p.N())
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTopTwo(t *testing.T) {
	tests := []struct {
		name       string
		counts     []int64
		wantFirst  Color
		wantC1     int64
		wantSecond Color
		wantC2     int64
	}{
		{name: "distinct", counts: []int64{5, 9, 2}, wantFirst: 1, wantC1: 9, wantSecond: 0, wantC2: 5},
		{name: "tie breaks low", counts: []int64{4, 4, 1}, wantFirst: 0, wantC1: 4, wantSecond: 1, wantC2: 4},
		{name: "plurality last", counts: []int64{1, 2, 7}, wantFirst: 2, wantC1: 7, wantSecond: 1, wantC2: 2},
		{name: "empty colors", counts: []int64{3, 0, 0}, wantFirst: 0, wantC1: 3, wantSecond: 1, wantC2: 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p, err := FromCounts(tt.counts)
			if err != nil {
				t.Fatal(err)
			}
			f, c1, s, c2 := p.TopTwo()
			if f != tt.wantFirst || c1 != tt.wantC1 || s != tt.wantSecond || c2 != tt.wantC2 {
				t.Fatalf("TopTwo = (%d,%d,%d,%d), want (%d,%d,%d,%d)",
					f, c1, s, c2, tt.wantFirst, tt.wantC1, tt.wantSecond, tt.wantC2)
			}
		})
	}
}

func TestTopTwoSingleColor(t *testing.T) {
	p, err := FromCounts([]int64{4})
	if err != nil {
		t.Fatal(err)
	}
	f, c1, s, c2 := p.TopTwo()
	if f != 0 || c1 != 4 || s != None || c2 != 0 {
		t.Fatalf("TopTwo = (%d,%d,%d,%d)", f, c1, s, c2)
	}
}

func TestBiasAndConsensus(t *testing.T) {
	p, err := FromCounts([]int64{7, 3})
	if err != nil {
		t.Fatal(err)
	}
	if p.Bias() != 4 {
		t.Fatalf("Bias = %d, want 4", p.Bias())
	}
	if p.IsUnanimous() {
		t.Error("should not be unanimous")
	}
	for u := 0; u < p.N(); u++ {
		p.SetColor(u, 0)
	}
	if !p.IsUnanimous() || !p.ConsensusOn(0) || p.ConsensusOn(1) {
		t.Error("consensus detection wrong after forcing color 0")
	}
	if p.Plurality() != 0 {
		t.Error("plurality should be 0")
	}
}

func TestFraction(t *testing.T) {
	p, err := FromCounts([]int64{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Fraction(1); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("Fraction(1) = %v", got)
	}
}

func TestShufflePreservesHistogram(t *testing.T) {
	p, err := FromCounts([]int64{5, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	before := p.Counts()
	p.Shuffle(rng.New(2))
	after := p.Counts()
	for c := range before {
		if before[c] != after[c] {
			t.Fatalf("histogram changed: %v -> %v", before, after)
		}
	}
	hist := make([]int64, p.K())
	for u := 0; u < p.N(); u++ {
		hist[p.ColorOf(u)]++
	}
	for c := range hist {
		if hist[c] != after[c] {
			t.Fatal("counts out of sync with colors after shuffle")
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	p, err := FromCounts([]int64{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	q := p.Clone()
	q.SetColor(0, 1)
	if p.Count(1) != 2 || q.Count(1) != 3 {
		t.Fatal("clone not independent")
	}
}

func TestReset(t *testing.T) {
	src, err := FromCounts([]int64{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	p := src.Clone()
	p.SetColor(0, 1)
	if err := p.Reset(src); err != nil {
		t.Fatal(err)
	}
	if p.Count(0) != 2 || p.ColorOf(0) != 0 {
		t.Fatal("reset did not restore state")
	}
	other, err := FromCounts([]int64{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Reset(other); err == nil {
		t.Error("shape mismatch should fail")
	}
}

func TestBiasedCounts(t *testing.T) {
	tests := []struct {
		name string
		n, k int
		eps  float64
	}{
		{name: "small", n: 1000, k: 4, eps: 0.5},
		{name: "many colors", n: 100000, k: 64, eps: 0.1},
		{name: "two colors", n: 10000, k: 2, eps: 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			counts, err := BiasedCounts(tt.n, tt.k, tt.eps)
			if err != nil {
				t.Fatal(err)
			}
			if got := sum(counts); got != int64(tt.n) {
				t.Fatalf("total = %d, want %d", got, tt.n)
			}
			var maxRest int64
			for _, v := range counts[1:] {
				if v > maxRest {
					maxRest = v
				}
				if v <= 0 {
					t.Fatalf("empty minority color: %v", counts)
				}
			}
			ratio := float64(counts[0]) / float64(maxRest)
			// Allow rounding slack of one node per color.
			if ratio < 1+tt.eps-2*float64(tt.k)/float64(tt.n)-0.01 {
				t.Fatalf("ratio %.4f < 1+eps = %.4f (counts %v...)", ratio, 1+tt.eps, counts[:min(4, len(counts))])
			}
		})
	}
}

func TestBiasedCountsValidation(t *testing.T) {
	if _, err := BiasedCounts(100, 1, 0.5); err == nil {
		t.Error("k=1 should fail")
	}
	if _, err := BiasedCounts(100, 4, 0); err == nil {
		t.Error("eps=0 should fail")
	}
	if _, err := BiasedCounts(5, 4, 0.5); err == nil {
		t.Error("tiny n should fail")
	}
}

func TestGapCountsFamilies(t *testing.T) {
	const n, k = 100000, 8
	type gen func(n, k int, z float64) ([]int64, error)
	ln := math.Log(float64(n))
	tests := []struct {
		name    string
		make    gen
		wantGap float64
	}{
		{name: "GapSqrt", make: GapSqrtCounts, wantGap: math.Sqrt(float64(n) * ln)},
		{name: "GapSqrtPolylog", make: GapSqrtPolylogCounts, wantGap: math.Sqrt(float64(n)) * math.Pow(ln, 1.5)},
		{name: "TinyGap", make: TinyGapCounts, wantGap: math.Sqrt(float64(n))},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			counts, err := tt.make(n, k, 1)
			if err != nil {
				t.Fatal(err)
			}
			if got := sum(counts); got != n {
				t.Fatalf("total = %d", got)
			}
			gap := counts[0] - counts[1]
			if float64(gap) < tt.wantGap || float64(gap) > tt.wantGap+float64(k)+1 {
				t.Fatalf("gap = %d, want ~%.0f", gap, tt.wantGap)
			}
			for i := 2; i < k; i++ {
				if counts[i] != counts[1] {
					t.Fatalf("runner-up counts unequal: %v", counts)
				}
			}
		})
	}
}

func TestGapCountsValidation(t *testing.T) {
	if _, err := GapCounts(100, 1, 5); err == nil {
		t.Error("k=1 should fail")
	}
	if _, err := GapCounts(100, 4, -1); err == nil {
		t.Error("negative gap should fail")
	}
	if _, err := GapCounts(100, 4, 100); err == nil {
		t.Error("gap >= n should fail")
	}
	if _, err := GapCounts(10, 20, 1); err == nil {
		t.Error("k > n should fail")
	}
}

func TestUniformCounts(t *testing.T) {
	counts, err := UniformCounts(10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if sum(counts) != 10 {
		t.Fatalf("total = %d", sum(counts))
	}
	if counts[0] != 4 || counts[1] != 3 || counts[2] != 3 {
		t.Fatalf("counts = %v", counts)
	}
	if _, err := UniformCounts(2, 3); err == nil {
		t.Error("n < k should fail")
	}
}

func TestZipfCounts(t *testing.T) {
	counts, err := ZipfCounts(10000, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sum(counts) != 10000 {
		t.Fatalf("total = %d", sum(counts))
	}
	for i := 1; i < len(counts); i++ {
		if counts[i] > counts[i-1] {
			t.Fatalf("zipf counts not non-increasing: %v", counts)
		}
		if counts[i] <= 0 {
			t.Fatalf("empty color: %v", counts)
		}
	}
	if _, err := ZipfCounts(2, 5, 1); err == nil {
		t.Error("n < k should fail")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
