// Package rng provides a small, fast, deterministic pseudo-random number
// generator used by every simulator in this repository.
//
// The generator is xoshiro256** (Blackman & Vigna) seeded through SplitMix64,
// the combination recommended by the xoshiro authors. It is deterministic
// across platforms and Go versions, which the experiment harness relies on:
// every experiment table in EXPERIMENTS.md is regenerated from fixed seeds.
//
// RNG values are not safe for concurrent use; simulators that run trials in
// parallel derive one independent stream per trial via At or Jump.
package rng

import (
	"math"
	"math/bits"
)

// RNG is a xoshiro256** pseudo-random number generator.
// The zero value is not usable; construct instances with New.
type RNG struct {
	s [4]uint64

	// spare holds a cached second output of the Box-Muller transform
	// for NormFloat64.
	spare    float64
	hasSpare bool
}

// New returns a generator deterministically seeded from seed.
// Distinct seeds yield (for all practical purposes) independent streams.
func New(seed uint64) *RNG {
	var r RNG
	sm := seed
	for i := range r.s {
		sm, r.s[i] = splitMix64(sm)
	}
	// xoshiro256** must not be seeded with the all-zero state. SplitMix64
	// cannot produce four zero outputs in a row, but guard regardless.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return &r
}

// At returns the i-th derived stream of the generator family identified by
// seed. It is the canonical way to give each trial (or each node) its own
// independent generator: At(seed, i) and At(seed, j) are decorrelated for
// i != j because the pair is mixed through SplitMix64 before seeding.
func At(seed uint64, i int) *RNG {
	sm := seed ^ 0x632be59bd9b4e019
	sm, a := splitMix64(sm + uint64(i)*0x9e3779b97f4a7c15)
	_, b := splitMix64(sm)
	return New(a ^ (b << 1))
}

// splitMix64 advances a SplitMix64 state and returns (nextState, output).
func splitMix64(state uint64) (uint64, uint64) {
	state += 0x9e3779b97f4a7c15
	z := state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return state, z ^ (z >> 31)
}

// Uint64 returns a uniformly distributed 64-bit value and advances the state.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9

	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64n returns a uniform value in [0, n) using Lemire's multiply-shift
// rejection method. n must be positive.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with n == 0")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	// Lemire: multiply a 64-bit uniform by n and keep the high word,
	// rejecting the small biased region of the low word.
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// Intn returns a uniform int in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// IntnExcept returns a uniform int in [0, n) \ {except}. n must be at least 2
// and except must lie in [0, n). It is the "sample a neighbor on the clique"
// primitive: one draw from [0, n-1) remapped around the excluded index.
func (r *RNG) IntnExcept(n, except int) int {
	if n < 2 {
		panic("rng: IntnExcept with n < 2")
	}
	v := int(r.Uint64n(uint64(n - 1)))
	if v >= except {
		v++
	}
	return v
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) * 0x1p-53
}

// Bool returns true with probability 1/2.
func (r *RNG) Bool() bool { return r.Uint64()>>63 == 1 }

// Bernoulli returns true with probability p (clamped to [0, 1]).
func (r *RNG) Bernoulli(p float64) bool { return r.Float64() < p }

// ExpFloat64 returns an exponentially distributed value with rate 1
// (mean 1), via inversion of the CDF.
func (r *RNG) ExpFloat64() float64 {
	// 1 - Float64() is in (0, 1], so Log never sees zero.
	return -math.Log(1 - r.Float64())
}

// NormFloat64 returns a standard normal value using the Box-Muller
// transform with caching of the second variate.
func (r *RNG) NormFloat64() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	var u float64
	for u == 0 {
		u = r.Float64()
	}
	v := r.Float64()
	mag := math.Sqrt(-2 * math.Log(u))
	r.spare = mag * math.Sin(2*math.Pi*v)
	r.hasSpare = true
	return mag * math.Cos(2*math.Pi*v)
}

// GammaFloat64 returns a Gamma(alpha, 1)-distributed value for alpha > 0
// using the Marsaglia–Tsang squeeze-rejection method (alpha >= 1) with the
// standard U^(1/alpha) boost for alpha < 1. The sampler is exact up to
// float64 evaluation of the acceptance test. Erlang(k) waiting times — the
// sum of k unit exponentials — are GammaFloat64(k), which is how the
// count-collapsed simulation engine materializes the elapsed time of k
// Poisson-clock ticks in O(1).
func (r *RNG) GammaFloat64(alpha float64) float64 {
	if alpha <= 0 || math.IsNaN(alpha) {
		panic("rng: GammaFloat64 with alpha <= 0")
	}
	boost := 1.0
	if alpha < 1 {
		// Gamma(a) = Gamma(a+1) · U^(1/a).
		var u float64
		for u == 0 {
			u = r.Float64()
		}
		boost = math.Pow(u, 1/alpha)
		alpha++
	}
	d := alpha - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := r.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64()
		if u == 0 {
			continue
		}
		x2 := x * x
		if u < 1-0.0331*x2*x2 {
			return boost * d * v
		}
		if math.Log(u) < 0.5*x2+d*(1-v+math.Log(v)) {
			return boost * d * v
		}
	}
}

// PoissonInt64 returns a Poisson(lambda)-distributed count. Small rates use
// Knuth's product-of-uniforms inversion; larger rates use Hörmann's PTRS
// transformed-rejection sampler, which is exact (up to float64 evaluation of
// the acceptance test) for arbitrarily large lambda. The count-collapsed
// engine uses it to draw the number of scheduler ticks that land inside a
// parallel-time budget without generating them individually.
func (r *RNG) PoissonInt64(lambda float64) int64 {
	switch {
	case math.IsNaN(lambda) || lambda < 0:
		panic("rng: PoissonInt64 with lambda < 0")
	case lambda == 0:
		return 0
	case lambda < 30:
		// Knuth: count uniforms until their product drops below e^-lambda.
		limit := math.Exp(-lambda)
		var k int64
		p := r.Float64()
		for p > limit {
			k++
			p *= r.Float64()
		}
		return k
	default:
		return r.poissonPTRS(lambda)
	}
}

// poissonPTRS is the PTRS transformed-rejection Poisson sampler of Hörmann
// (1993), valid for lambda >= 10.
func (r *RNG) poissonPTRS(lambda float64) int64 {
	logLambda := math.Log(lambda)
	b := 0.931 + 2.53*math.Sqrt(lambda)
	a := -0.059 + 0.02483*b
	invAlpha := 1.1239 + 1.1328/(b-3.4)
	vr := 0.9277 - 3.6224/(b-2)
	for {
		u := r.Float64() - 0.5
		v := r.Float64()
		us := 0.5 - math.Abs(u)
		k := math.Floor((2*a/us+b)*u + lambda + 0.43)
		if us >= 0.07 && v <= vr {
			return int64(k)
		}
		if k < 0 || (us < 0.013 && v > us) {
			continue
		}
		lg, _ := math.Lgamma(k + 1)
		if math.Log(v*invAlpha/(a/(us*us)+b)) <= k*logLambda-lambda-lg {
			return int64(k)
		}
	}
}

// Perm returns a uniformly random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle randomizes the order of n elements using the provided swap
// function (Fisher-Yates).
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, r.Intn(i+1))
	}
}

// Jump advances the generator by 2^128 steps, equivalent to 2^128 calls to
// Uint64. Repeated Jump calls partition one seed's sequence into long
// non-overlapping sub-streams, an alternative to At for deriving per-node
// generators.
func (r *RNG) Jump() {
	jump := [4]uint64{
		0x180ec6d33cfd0aba, 0xd5a61266f0c9392c,
		0xa9582618e03fc9aa, 0x39abdc4529b1661c,
	}
	var s0, s1, s2, s3 uint64
	for _, j := range jump {
		for b := 0; b < 64; b++ {
			if j&(1<<uint(b)) != 0 {
				s0 ^= r.s[0]
				s1 ^= r.s[1]
				s2 ^= r.s[2]
				s3 ^= r.s[3]
			}
			r.Uint64()
		}
	}
	r.s = [4]uint64{s0, s1, s2, s3}
	r.hasSpare = false
}

// Clone returns an independent copy of the generator in its current state.
// The copy and the original produce identical subsequent streams.
func (r *RNG) Clone() *RNG {
	cp := *r
	return &cp
}

// State returns the current 256-bit generator state, for test determinism
// assertions.
func (r *RNG) State() [4]uint64 { return r.s }
