package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("draw %d: generators with equal seeds diverged: %d != %d", i, got, want)
		}
	}
}

func TestNewDistinctSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 produced %d identical draws out of 100", same)
	}
}

func TestNewZeroSeedUsable(t *testing.T) {
	r := New(0)
	if r.s == [4]uint64{} {
		t.Fatal("zero seed produced all-zero state")
	}
	if a, b := r.Uint64(), r.Uint64(); a == 0 && b == 0 {
		t.Fatal("zero-seeded generator emits zeros")
	}
}

func TestAtStreamsIndependent(t *testing.T) {
	const seed = 7
	a := At(seed, 0)
	b := At(seed, 1)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams 0 and 1 collided on %d of 1000 draws", same)
	}
}

func TestAtDeterministic(t *testing.T) {
	if got, want := At(9, 3).Uint64(), At(9, 3).Uint64(); got != want {
		t.Fatalf("At(9,3) not deterministic: %d != %d", got, want)
	}
}

func TestUint64nRange(t *testing.T) {
	r := New(3)
	for _, n := range []uint64{1, 2, 3, 7, 64, 100, 1 << 40} {
		for i := 0; i < 200; i++ {
			if v := r.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestUint64nUniform(t *testing.T) {
	// Chi-square-style tolerance check over 10 buckets.
	r := New(11)
	const n, draws = 10, 100000
	var counts [n]int
	for i := 0; i < draws; i++ {
		counts[r.Uint64n(n)]++
	}
	want := float64(draws) / n
	for b, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: count %d deviates from expected %.0f by more than 5 sigma", b, c, want)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnExcept(t *testing.T) {
	r := New(5)
	const n = 7
	for except := 0; except < n; except++ {
		seen := make(map[int]int)
		for i := 0; i < 7000; i++ {
			v := r.IntnExcept(n, except)
			if v == except {
				t.Fatalf("IntnExcept(%d, %d) returned the excluded value", n, except)
			}
			if v < 0 || v >= n {
				t.Fatalf("IntnExcept(%d, %d) = %d out of range", n, except, v)
			}
			seen[v]++
		}
		if len(seen) != n-1 {
			t.Fatalf("IntnExcept(%d, %d) covered %d values, want %d", n, except, len(seen), n-1)
		}
	}
}

func TestIntnExceptUniform(t *testing.T) {
	r := New(17)
	const n, draws = 5, 40000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.IntnExcept(n, 2)]++
	}
	want := float64(draws) / (n - 1)
	for v, c := range counts {
		if v == 2 {
			continue
		}
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("value %d: count %d deviates from %.0f", v, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(8)
	for i := 0; i < 100000; i++ {
		if v := r.Float64(); v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(13)
	const draws = 200000
	var sum float64
	for i := 0; i < draws; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("ExpFloat64() = %v negative", v)
		}
		sum += v
	}
	mean := sum / draws
	if math.Abs(mean-1) > 0.02 {
		t.Fatalf("ExpFloat64 mean = %.4f, want ~1", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(21)
	const draws = 200000
	var sum, sumSq float64
	for i := 0; i < draws; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / draws
	variance := sumSq/draws - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("NormFloat64 mean = %.4f, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("NormFloat64 variance = %.4f, want ~1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(2)
	check := func(n uint8) bool {
		size := int(n%64) + 1
		p := r.Perm(size)
		if len(p) != size {
			return false
		}
		seen := make([]bool, size)
		for _, v := range p {
			if v < 0 || v >= size || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	r := New(4)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	var sum int
	for _, v := range xs {
		sum += v
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	var got int
	for _, v := range xs {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed element sum: %d != %d", got, sum)
	}
}

func TestJumpDecorrelates(t *testing.T) {
	a := New(99)
	b := a.Clone()
	b.Jump()
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("jumped stream collided on %d of 1000 draws", same)
	}
}

func TestCloneReproduces(t *testing.T) {
	a := New(123)
	a.Uint64()
	b := a.Clone()
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("clone diverged from original")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	r := New(31)
	const draws = 100000
	hits := 0
	for i := 0; i < draws; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	rate := float64(hits) / draws
	if math.Abs(rate-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) rate = %.4f", rate)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64()
	}
	_ = sink
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink = r.Intn(1_000_003)
	}
	_ = sink
}
