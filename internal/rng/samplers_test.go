package rng

import (
	"math"
	"testing"
)

// --- Uint64n Lemire-rejection edge cases --------------------------------

func TestUint64nOne(t *testing.T) {
	r := New(5)
	for i := 0; i < 1000; i++ {
		if v := r.Uint64n(1); v != 0 {
			t.Fatalf("Uint64n(1) = %d, want 0", v)
		}
	}
}

func TestUint64nPowersOfTwo(t *testing.T) {
	// The mask fast path must stay in range and keep every bit live: over
	// many draws each admissible bit of the result should flip at least
	// once (a masking bug that pins a bit would fail this).
	r := New(17)
	for _, shift := range []uint{1, 3, 16, 31, 32, 62, 63} {
		n := uint64(1) << shift
		var or, and uint64 = 0, ^uint64(0)
		for i := 0; i < 4096; i++ {
			v := r.Uint64n(n)
			if v >= n {
				t.Fatalf("Uint64n(2^%d) = %d out of range", shift, v)
			}
			or |= v
			and &= v
		}
		if or != n-1 {
			t.Errorf("Uint64n(2^%d): OR of 4096 draws = %#x, want all low bits %#x", shift, or, n-1)
		}
		if and != 0 {
			t.Errorf("Uint64n(2^%d): AND of 4096 draws = %#x, want 0", shift, and)
		}
	}
}

func TestUint64nNearMaxUint64(t *testing.T) {
	// n close to 2^64 exercises the Lemire rejection branch where the
	// acceptance threshold (-n mod n) is nearly the whole word: the sampler
	// must terminate, stay in range, and still cover the high end.
	r := New(23)
	for _, n := range []uint64{
		math.MaxUint64,     // 2^64 - 1
		math.MaxUint64 - 1, // 2^64 - 2
		1<<63 + 1,          // just past the largest power of two
		1<<63 + 12345,
	} {
		var max uint64
		var sum float64
		const draws = 20000
		for i := 0; i < draws; i++ {
			v := r.Uint64n(n)
			if v >= n {
				t.Fatalf("Uint64n(%d) = %d out of range", n, v)
			}
			if v > max {
				max = v
			}
			sum += float64(v)
		}
		// The mean of Uniform[0, n) is n/2; with 2e4 draws the sample mean
		// concentrates within ~1% (sigma/sqrt(draws) ~ 0.2% of n).
		mean := sum / draws
		if rel := math.Abs(mean-float64(n)/2) / float64(n); rel > 0.01 {
			t.Errorf("Uint64n(%d): mean %.3g deviates %.2f%% from n/2", n, mean, rel*100)
		}
		if float64(max) < 0.999*float64(n) {
			t.Errorf("Uint64n(%d): max of %d draws = %d never approached n", n, draws, max)
		}
	}
}

func TestUint64nZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	New(1).Uint64n(0)
}

// --- GammaFloat64 --------------------------------------------------------

func TestGammaFloat64Moments(t *testing.T) {
	// Gamma(alpha, 1) has mean alpha and variance alpha; check both within
	// generous multiples of the standard error across shape regimes
	// (boosted alpha < 1, the squeeze path, and very large alpha where the
	// count-collapsed engine draws Erlang waiting times).
	r := New(31)
	for _, alpha := range []float64{0.5, 1, 2.5, 30, 1e4} {
		const draws = 30000
		var sum, sumSq float64
		for i := 0; i < draws; i++ {
			v := r.GammaFloat64(alpha)
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("GammaFloat64(%g) = %v", alpha, v)
			}
			sum += v
			sumSq += v * v
		}
		mean := sum / draws
		varc := sumSq/draws - mean*mean
		seMean := math.Sqrt(alpha / draws)
		if d := math.Abs(mean - alpha); d > 6*seMean {
			t.Errorf("GammaFloat64(%g): mean %.4f, want %.4f +/- %.4f", alpha, mean, alpha, 6*seMean)
		}
		if varc < 0.8*alpha || varc > 1.2*alpha {
			t.Errorf("GammaFloat64(%g): variance %.4f, want ~%.4f", alpha, varc, alpha)
		}
	}
}

func TestGammaFloat64ExponentialShape(t *testing.T) {
	// Gamma(1) is Exp(1): P(X > 1) = 1/e.
	r := New(37)
	const draws = 50000
	over := 0
	for i := 0; i < draws; i++ {
		if r.GammaFloat64(1) > 1 {
			over++
		}
	}
	got := float64(over) / draws
	want := math.Exp(-1)
	if math.Abs(got-want) > 0.01 {
		t.Errorf("P(Gamma(1) > 1) = %.4f, want %.4f", got, want)
	}
}

func TestGammaFloat64Panics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("GammaFloat64(0) did not panic")
		}
	}()
	New(1).GammaFloat64(0)
}

// --- PoissonInt64 --------------------------------------------------------

func TestPoissonInt64Moments(t *testing.T) {
	// Poisson(lambda) has mean and variance lambda; cover the Knuth
	// inversion branch, the PTRS branch, and a large rate of the order the
	// count-collapsed engine draws for tick budgets.
	r := New(41)
	for _, lambda := range []float64{0.5, 5, 29.5, 30, 1000, 1e6} {
		const draws = 20000
		var sum, sumSq float64
		for i := 0; i < draws; i++ {
			v := r.PoissonInt64(lambda)
			if v < 0 {
				t.Fatalf("PoissonInt64(%g) = %d", lambda, v)
			}
			f := float64(v)
			sum += f
			sumSq += f * f
		}
		mean := sum / draws
		varc := sumSq/draws - mean*mean
		seMean := math.Sqrt(lambda / draws)
		if d := math.Abs(mean - lambda); d > 6*seMean {
			t.Errorf("PoissonInt64(%g): mean %.4f, want %.4f +/- %.4f", lambda, mean, lambda, 6*seMean)
		}
		if varc < 0.85*lambda || varc > 1.15*lambda {
			t.Errorf("PoissonInt64(%g): variance %.1f, want ~%.1f", lambda, varc, lambda)
		}
	}
}

func TestPoissonInt64SmallRatePMF(t *testing.T) {
	// Chi-square of the empirical pmf against Poisson(3) over bins 0..11.
	r := New(43)
	const lambda, draws = 3.0, 40000
	const bins = 12
	var observed [bins]int
	for i := 0; i < draws; i++ {
		v := r.PoissonInt64(lambda)
		if v < bins {
			observed[v]++
		}
	}
	pmf := math.Exp(-lambda)
	var stat float64
	for k := 0; k < bins; k++ {
		expected := pmf * draws
		if expected > 5 {
			d := float64(observed[k]) - expected
			stat += d * d / expected
		}
		pmf *= lambda / float64(k+1)
	}
	// ~10 effective bins; chi-square 99.9th percentile at df=10 is ~29.6.
	if stat > 29.6 {
		t.Errorf("PoissonInt64(3) pmf chi-square = %.1f, want < 29.6 (observed %v)", stat, observed)
	}
}

func TestPoissonInt64Edges(t *testing.T) {
	r := New(47)
	if v := r.PoissonInt64(0); v != 0 {
		t.Fatalf("PoissonInt64(0) = %d, want 0", v)
	}
	// A huge rate must return a plausible count without overflow: within
	// 10 standard deviations of the mean.
	const lambda = 1e12
	v := float64(r.PoissonInt64(lambda))
	if math.Abs(v-lambda) > 10*math.Sqrt(lambda) {
		t.Fatalf("PoissonInt64(1e12) = %.0f, want within 10 sigma of 1e12", v)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("PoissonInt64(-1) did not panic")
		}
	}()
	r.PoissonInt64(-1)
}

func TestSamplersDeterministic(t *testing.T) {
	a, b := New(53), New(53)
	for i := 0; i < 100; i++ {
		if ga, gb := a.GammaFloat64(7), b.GammaFloat64(7); ga != gb {
			t.Fatalf("GammaFloat64 diverged at draw %d", i)
		}
		if pa, pb := a.PoissonInt64(100), b.PoissonInt64(100); pa != pb {
			t.Fatalf("PoissonInt64 diverged at draw %d", i)
		}
	}
}
