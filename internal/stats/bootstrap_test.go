package stats

import (
	"testing"

	"plurality/internal/rng"
)

func TestBootstrapMeanCIBracketsMean(t *testing.T) {
	r := rng.New(1)
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = 10 + 3*r.NormFloat64()
	}
	mean := Mean(xs)
	lo, hi, err := BootstrapMeanCI(xs, 0.95, 2000, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if !(lo <= mean && mean <= hi) {
		t.Fatalf("CI [%v, %v] does not bracket mean %v", lo, hi, mean)
	}
	// The normal-theory half-width is ≈ 1.96·3/√200 ≈ 0.42; the bootstrap
	// interval should land in the same ballpark.
	if hi-lo < 0.2 || hi-lo > 1.2 {
		t.Fatalf("CI width %v implausible for σ=3, n=200", hi-lo)
	}
}

func TestBootstrapMeanCIDeterministic(t *testing.T) {
	xs := []float64{1, 5, 2, 8, 3, 9, 4}
	lo1, hi1, err := BootstrapMeanCI(xs, 0.9, 500, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	lo2, hi2, err := BootstrapMeanCI(xs, 0.9, 500, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if lo1 != lo2 || hi1 != hi2 {
		t.Fatalf("same RNG state gave [%v, %v] then [%v, %v]", lo1, hi1, lo2, hi2)
	}
}

func TestBootstrapMeanCIEdgeCases(t *testing.T) {
	if _, _, err := BootstrapMeanCI(nil, 0.95, 100, rng.New(1)); err == nil {
		t.Fatal("empty sample should fail")
	}
	lo, hi, err := BootstrapMeanCI([]float64{4}, 0.95, 100, rng.New(1))
	if err != nil || lo != 4 || hi != 4 {
		t.Fatalf("singleton: [%v, %v], %v; want degenerate [4, 4]", lo, hi, err)
	}
	if _, _, err := BootstrapMeanCI([]float64{1, 2}, 0, 100, rng.New(1)); err == nil {
		t.Fatal("confidence 0 should fail")
	}
	if _, _, err := BootstrapMeanCI([]float64{1, 2}, 1, 100, rng.New(1)); err == nil {
		t.Fatal("confidence 1 should fail")
	}
	if _, _, err := BootstrapMeanCI([]float64{1, 2}, 0.95, 1, rng.New(1)); err == nil {
		t.Fatal("1 resample should fail")
	}
}
