// Package stats provides the summary statistics and curve-fitting helpers
// the experiment harness uses to turn raw simulation measurements into the
// growth-shape checks recorded in EXPERIMENTS.md: means with confidence
// intervals, quantiles, and least-squares fits against linear, logarithmic
// and power-law models.
package stats

import (
	"errors"
	"math"
	"sort"

	"plurality/internal/rng"
)

// ErrInsufficientData reports a computation that needs more samples than it
// was given.
var ErrInsufficientData = errors.New("stats: insufficient data")

// Summary holds the first and second moments plus extremes of a sample.
type Summary struct {
	N      int
	Mean   float64
	Var    float64 // unbiased sample variance
	Std    float64
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes a Summary of xs. It returns ErrInsufficientData for an
// empty sample; variance is reported as 0 for singletons.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrInsufficientData
	}
	s := Summary{
		N:   len(xs),
		Min: xs[0],
		Max: xs[0],
	}
	var sum float64
	for _, x := range xs {
		sum += x
		s.Min = math.Min(s.Min, x)
		s.Max = math.Max(s.Max, x)
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Var = ss / float64(s.N-1)
		s.Std = math.Sqrt(s.Var)
	}
	s.Median = Quantile(xs, 0.5)
	return s, nil
}

// Quantile returns the q-quantile of xs (0 ≤ q ≤ 1) using linear
// interpolation between order statistics. It copies and sorts internally.
// Quantile of an empty slice is NaN.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

// Quantiles returns the quantiles of xs at each q in qs, sharing one sort.
func Quantiles(xs []float64, qs ...float64) []float64 {
	out := make([]float64, len(qs))
	if len(xs) == 0 {
		for i := range out {
			out[i] = math.NaN()
		}
		return out
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	for i, q := range qs {
		out[i] = quantileSorted(sorted, q)
	}
	return out
}

func quantileSorted(sorted []float64, q float64) float64 {
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 0.5-quantile of xs.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Mean returns the arithmetic mean of xs, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// MeanCI95 returns the sample mean and the half-width of its normal-theory
// 95% confidence interval.
func MeanCI95(xs []float64) (mean, half float64, err error) {
	s, err := Summarize(xs)
	if err != nil {
		return 0, 0, err
	}
	if s.N < 2 {
		return s.Mean, math.Inf(1), nil
	}
	return s.Mean, 1.96 * s.Std / math.Sqrt(float64(s.N)), nil
}

// BootstrapMeanCI returns a percentile-bootstrap confidence interval for
// the mean of xs at the given confidence level (e.g. 0.95), from resamples
// resampled means drawn with r. It is deterministic given r's state, which
// is how the experiment harness keeps its JSON artifacts reproducible. A
// singleton sample yields the degenerate interval [x, x]; an empty sample
// is ErrInsufficientData.
func BootstrapMeanCI(xs []float64, conf float64, resamples int, r *rng.RNG) (lo, hi float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrInsufficientData
	}
	if conf <= 0 || conf >= 1 {
		return 0, 0, errors.New("stats: BootstrapMeanCI confidence must be in (0, 1)")
	}
	if resamples < 2 {
		return 0, 0, errors.New("stats: BootstrapMeanCI needs at least 2 resamples")
	}
	if len(xs) == 1 {
		return xs[0], xs[0], nil
	}
	n := len(xs)
	means := make([]float64, resamples)
	for b := range means {
		var sum float64
		for i := 0; i < n; i++ {
			sum += xs[r.Intn(n)]
		}
		means[b] = sum / float64(n)
	}
	sort.Float64s(means)
	alpha := (1 - conf) / 2
	return quantileSorted(means, alpha), quantileSorted(means, 1-alpha), nil
}

// Fit is the result of a least-squares regression y ≈ Slope·f(x) + Intercept,
// where f is the identity for LinearFit, log for LogFit, and the whole fit is
// performed in log-log space for PowerFit (where Slope is the exponent).
type Fit struct {
	Slope     float64
	Intercept float64
	R2        float64
}

// LinearFit performs ordinary least squares of y against x.
func LinearFit(x, y []float64) (Fit, error) {
	if len(x) != len(y) {
		return Fit{}, errors.New("stats: LinearFit length mismatch")
	}
	if len(x) < 2 {
		return Fit{}, ErrInsufficientData
	}
	n := float64(len(x))
	var sx, sy, sxx, sxy, syy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
		syy += y[i] * y[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return Fit{}, errors.New("stats: LinearFit degenerate x values")
	}
	slope := (n*sxy - sx*sy) / den
	intercept := (sy - slope*sx) / n

	// Coefficient of determination.
	meanY := sy / n
	var ssRes, ssTot float64
	for i := range x {
		pred := slope*x[i] + intercept
		ssRes += (y[i] - pred) * (y[i] - pred)
		ssTot += (y[i] - meanY) * (y[i] - meanY)
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return Fit{Slope: slope, Intercept: intercept, R2: r2}, nil
}

// LogFit fits y ≈ Slope·ln(x) + Intercept. All x must be positive.
func LogFit(x, y []float64) (Fit, error) {
	lx := make([]float64, len(x))
	for i, v := range x {
		if v <= 0 {
			return Fit{}, errors.New("stats: LogFit needs positive x")
		}
		lx[i] = math.Log(v)
	}
	return LinearFit(lx, y)
}

// PowerFit fits y ≈ C·x^Slope by regressing ln(y) on ln(x); the returned
// Intercept is ln(C). All x and y must be positive.
func PowerFit(x, y []float64) (Fit, error) {
	if len(x) != len(y) {
		return Fit{}, errors.New("stats: PowerFit length mismatch")
	}
	lx := make([]float64, len(x))
	ly := make([]float64, len(y))
	for i := range x {
		if x[i] <= 0 || y[i] <= 0 {
			return Fit{}, errors.New("stats: PowerFit needs positive data")
		}
		lx[i] = math.Log(x[i])
		ly[i] = math.Log(y[i])
	}
	return LinearFit(lx, ly)
}

// KSStatistic returns the two-sample Kolmogorov–Smirnov statistic
// sup_x |F_a(x) − F_b(x)|. Both slices are sorted in place. It is the
// shared backbone of the engine-equivalence tests (scheduler engines,
// per-node vs count-collapsed dynamics). Ties are handled correctly for
// discrete data — both ECDFs are advanced past every copy of the current
// value before their difference is taken, so two identical samples yield
// exactly 0 (a mid-tie evaluation would instead report the tie mass).
func KSStatistic(a, b []float64) float64 {
	sort.Float64s(a)
	sort.Float64s(b)
	var i, j int
	var d float64
	for i < len(a) && j < len(b) {
		x := math.Min(a[i], b[j])
		for i < len(a) && a[i] == x {
			i++
		}
		for j < len(b) && b[j] == x {
			j++
		}
		diff := math.Abs(float64(i)/float64(len(a)) - float64(j)/float64(len(b)))
		if diff > d {
			d = diff
		}
	}
	return d
}

// KSThreshold is the two-sample KS rejection threshold at significance
// alpha for sample sizes m and n: c(alpha)·sqrt((m+n)/(m·n)) with
// c(alpha) = sqrt(−ln(alpha/2)/2).
func KSThreshold(alpha float64, m, n int) float64 {
	c := math.Sqrt(-math.Log(alpha/2) / 2)
	return c * math.Sqrt(float64(m+n)/float64(m)/float64(n))
}

// ChiSquare returns the chi-square statistic of observed counts against
// expected counts. Entries with expected ≤ 0 are skipped.
func ChiSquare(observed []int, expected []float64) float64 {
	var stat float64
	for i := range observed {
		if i >= len(expected) || expected[i] <= 0 {
			continue
		}
		d := float64(observed[i]) - expected[i]
		stat += d * d / expected[i]
	}
	return stat
}

// ChiSquareCritical95 approximates the 95th percentile of the chi-square
// distribution with df degrees of freedom, using the Wilson-Hilferty cube
// approximation. Accurate to a few percent for df ≥ 2, which suffices for
// the generous statistical gates used in tests.
func ChiSquareCritical95(df int) float64 {
	if df <= 0 {
		return 0
	}
	const z95 = 1.6448536269514722
	d := float64(df)
	t := 1 - 2/(9*d) + z95*math.Sqrt(2/(9*d))
	return d * t * t * t
}
