package stats

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSummarize(t *testing.T) {
	tests := []struct {
		name       string
		give       []float64
		wantMean   float64
		wantVar    float64
		wantMin    float64
		wantMax    float64
		wantMedian float64
	}{
		{
			name:       "simple",
			give:       []float64{1, 2, 3, 4, 5},
			wantMean:   3,
			wantVar:    2.5,
			wantMin:    1,
			wantMax:    5,
			wantMedian: 3,
		},
		{
			name:       "singleton",
			give:       []float64{7},
			wantMean:   7,
			wantVar:    0,
			wantMin:    7,
			wantMax:    7,
			wantMedian: 7,
		},
		{
			name:       "negative values",
			give:       []float64{-2, 0, 2},
			wantMean:   0,
			wantVar:    4,
			wantMin:    -2,
			wantMax:    2,
			wantMedian: 0,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s, err := Summarize(tt.give)
			if err != nil {
				t.Fatal(err)
			}
			if !almostEqual(s.Mean, tt.wantMean, 1e-12) {
				t.Errorf("Mean = %v, want %v", s.Mean, tt.wantMean)
			}
			if !almostEqual(s.Var, tt.wantVar, 1e-12) {
				t.Errorf("Var = %v, want %v", s.Var, tt.wantVar)
			}
			if s.Min != tt.wantMin || s.Max != tt.wantMax {
				t.Errorf("Min/Max = %v/%v, want %v/%v", s.Min, s.Max, tt.wantMin, tt.wantMax)
			}
			if !almostEqual(s.Median, tt.wantMedian, 1e-12) {
				t.Errorf("Median = %v, want %v", s.Median, tt.wantMedian)
			}
		})
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if _, err := Summarize(nil); !errors.Is(err, ErrInsufficientData) {
		t.Fatalf("err = %v, want ErrInsufficientData", err)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2} // unsorted on purpose
	tests := []struct {
		q    float64
		want float64
	}{
		{q: 0, want: 1},
		{q: 1, want: 4},
		{q: 0.5, want: 2.5},
		{q: 0.25, want: 1.75},
		{q: -0.5, want: 1},
		{q: 2, want: 4},
	}
	for _, tt := range tests {
		if got := Quantile(xs, tt.q); !almostEqual(got, tt.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("Quantile(nil) should be NaN")
	}
}

func TestQuantilesConsistentWithQuantile(t *testing.T) {
	xs := []float64{9, 1, 7, 3, 5}
	qs := []float64{0.1, 0.5, 0.9}
	got := Quantiles(xs, qs...)
	for i, q := range qs {
		if want := Quantile(xs, q); !almostEqual(got[i], want, 1e-12) {
			t.Errorf("Quantiles[%d] = %v, want %v", i, got[i], want)
		}
	}
}

func TestQuantileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestQuantileWithinBounds(t *testing.T) {
	check := func(raw []float64, q float64) bool {
		if len(raw) == 0 {
			return true
		}
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		qq := math.Abs(math.Mod(q, 1))
		v := Quantile(raw, qq)
		lo, hi := raw[0], raw[0]
		for _, x := range raw {
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
		}
		return v >= lo-1e-9 && v <= hi+1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMeanCI95(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i % 2) // mean 0.5, std ~0.5
	}
	mean, half, err := MeanCI95(xs)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(mean, 0.5, 1e-12) {
		t.Errorf("mean = %v", mean)
	}
	wantHalf := 1.96 * 0.50251890762960605 / 10 // std of alternating 0/1 sample
	if !almostEqual(half, wantHalf, 1e-9) {
		t.Errorf("half = %v, want %v", half, wantHalf)
	}
}

func TestMeanCI95Singleton(t *testing.T) {
	_, half, err := MeanCI95([]float64{3})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(half, 1) {
		t.Fatalf("singleton CI half-width = %v, want +Inf", half)
	}
}

func TestLinearFitExact(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{5, 7, 9, 11} // y = 2x + 3
	fit, err := LinearFit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(fit.Slope, 2, 1e-9) || !almostEqual(fit.Intercept, 3, 1e-9) {
		t.Fatalf("fit = %+v, want slope 2 intercept 3", fit)
	}
	if !almostEqual(fit.R2, 1, 1e-9) {
		t.Fatalf("R2 = %v, want 1", fit.R2)
	}
}

func TestLinearFitErrors(t *testing.T) {
	if _, err := LinearFit([]float64{1}, []float64{2, 3}); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := LinearFit([]float64{1}, []float64{1}); !errors.Is(err, ErrInsufficientData) {
		t.Errorf("single point: err = %v, want ErrInsufficientData", err)
	}
	if _, err := LinearFit([]float64{2, 2}, []float64{1, 5}); err == nil {
		t.Error("degenerate x should fail")
	}
}

func TestLogFitRecoversLogCurve(t *testing.T) {
	// y = 4·ln(x) + 1
	var x, y []float64
	for _, v := range []float64{2, 4, 8, 16, 32, 64} {
		x = append(x, v)
		y = append(y, 4*math.Log(v)+1)
	}
	fit, err := LogFit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(fit.Slope, 4, 1e-9) || !almostEqual(fit.Intercept, 1, 1e-9) {
		t.Fatalf("fit = %+v, want slope 4 intercept 1", fit)
	}
}

func TestLogFitRejectsNonPositive(t *testing.T) {
	if _, err := LogFit([]float64{0, 1}, []float64{1, 2}); err == nil {
		t.Error("LogFit with x=0 should fail")
	}
}

func TestPowerFitRecoversExponent(t *testing.T) {
	// y = 3·x^1.5
	var x, y []float64
	for _, v := range []float64{1, 2, 4, 8, 16} {
		x = append(x, v)
		y = append(y, 3*math.Pow(v, 1.5))
	}
	fit, err := PowerFit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(fit.Slope, 1.5, 1e-9) {
		t.Fatalf("exponent = %v, want 1.5", fit.Slope)
	}
	if !almostEqual(math.Exp(fit.Intercept), 3, 1e-6) {
		t.Fatalf("constant = %v, want 3", math.Exp(fit.Intercept))
	}
}

func TestPowerFitRejectsNonPositive(t *testing.T) {
	if _, err := PowerFit([]float64{1, 2}, []float64{0, 2}); err == nil {
		t.Error("PowerFit with y=0 should fail")
	}
	if _, err := PowerFit([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should fail")
	}
}

func TestChiSquare(t *testing.T) {
	obs := []int{10, 20, 30}
	exp := []float64{20, 20, 20}
	// (100 + 0 + 100) / 20 = 10
	if got := ChiSquare(obs, exp); !almostEqual(got, 10, 1e-12) {
		t.Fatalf("ChiSquare = %v, want 10", got)
	}
	// Expected zero entries are skipped.
	if got := ChiSquare([]int{5}, []float64{0}); got != 0 {
		t.Fatalf("ChiSquare with zero expected = %v, want 0", got)
	}
}

func TestChiSquareCritical95KnownValues(t *testing.T) {
	// Reference values of the chi-square 95th percentile.
	tests := []struct {
		df   int
		want float64
	}{
		{df: 1, want: 3.841},
		{df: 5, want: 11.070},
		{df: 10, want: 18.307},
		{df: 50, want: 67.505},
	}
	for _, tt := range tests {
		got := ChiSquareCritical95(tt.df)
		if math.Abs(got-tt.want)/tt.want > 0.05 {
			t.Errorf("df=%d: got %.3f, want ~%.3f", tt.df, got, tt.want)
		}
	}
	if ChiSquareCritical95(0) != 0 {
		t.Error("df=0 should give 0")
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); !almostEqual(got, 2, 1e-12) {
		t.Errorf("Mean = %v, want 2", got)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) should be NaN")
	}
}

func TestMedianMatchesQuantile(t *testing.T) {
	xs := []float64{1, 9, 4}
	if Median(xs) != Quantile(xs, 0.5) {
		t.Error("Median disagrees with Quantile(0.5)")
	}
}

func TestKSStatistic(t *testing.T) {
	cases := []struct {
		name string
		a, b []float64
		want float64
	}{
		{"identical-singletons", []float64{1}, []float64{1}, 0},
		{"identical-discrete", []float64{1, 1, 2, 2, 3}, []float64{1, 1, 2, 2, 3}, 0},
		{"disjoint", []float64{1, 2, 3}, []float64{10, 11, 12}, 1},
		{"half-shift", []float64{1, 2}, []float64{2, 3}, 0.5},
		{"tie-cluster", []float64{1, 1, 1, 2}, []float64{1, 2, 2, 2}, 0.5},
	}
	for _, c := range cases {
		if got := KSStatistic(append([]float64(nil), c.a...), append([]float64(nil), c.b...)); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%s: KSStatistic = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestKSThreshold(t *testing.T) {
	// c(0.05) = 1.3581; threshold for m = n = 100 is c*sqrt(2/100).
	got := KSThreshold(0.05, 100, 100)
	want := 1.3581015157406195 * math.Sqrt(0.02)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("KSThreshold(0.05,100,100) = %v, want %v", got, want)
	}
	if KSThreshold(0.001, 50, 50) <= got {
		t.Error("stricter alpha must raise the threshold")
	}
}
