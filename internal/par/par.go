// Package par is the shared parallel-trial driver: it shards independent,
// deterministic jobs (simulation trials, benchmark repetitions) across a
// bounded worker pool. Callers derive each job's randomness from its index,
// so results are independent of scheduling and worker count.
package par

import (
	"fmt"
	"runtime"
	"sync"
)

// ForEach runs fn(0) … fn(jobs-1) on up to workers goroutines and blocks
// until all complete. workers <= 0 selects GOMAXPROCS. Every job runs even
// if an earlier one fails; the lowest-index error is returned.
func ForEach(workers, jobs int, fn func(i int) error) error {
	if jobs <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > jobs {
		workers = jobs
	}

	errs := make([]error, jobs)
	if workers == 1 {
		// Inline on the caller's goroutine: same semantics, no overhead,
		// and panics keep their natural stack.
		for i := 0; i < jobs; i++ {
			errs[i] = fn(i)
		}
		return firstError(errs)
	}

	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				errs[i] = fn(i)
			}
		}()
	}
	for i := 0; i < jobs; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return firstError(errs)
}

func firstError(errs []error) error {
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("job %d: %w", i, err)
		}
	}
	return nil
}
