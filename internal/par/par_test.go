package par

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
)

func TestForEachRunsEveryJob(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 100} {
		const jobs = 37
		var hits [jobs]int32
		if err := ForEach(workers, jobs, func(i int) error {
			atomic.AddInt32(&hits[i], 1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: job %d ran %d times", workers, i, h)
			}
		}
	}
}

func TestForEachLowestIndexErrorWins(t *testing.T) {
	boom := errors.New("boom")
	var ran int32
	err := ForEach(4, 20, func(i int) error {
		atomic.AddInt32(&ran, 1)
		if i == 3 || i == 11 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if !strings.Contains(err.Error(), "job 3") {
		t.Fatalf("err = %v, want lowest-index job 3", err)
	}
	if ran != 20 {
		t.Fatalf("ran %d jobs, want all 20 despite the error", ran)
	}
}

func TestForEachZeroJobs(t *testing.T) {
	if err := ForEach(4, 0, func(int) error { t.Fatal("should not run"); return nil }); err != nil {
		t.Fatal(err)
	}
}
