package lumped_test

import (
	"errors"
	"testing"

	"plurality/internal/graph"
	"plurality/internal/lumped"
	"plurality/internal/occupancy"
	"plurality/internal/population"
	"plurality/internal/protocols/dynamics"
	"plurality/internal/protocols/threemajority"
	"plurality/internal/protocols/twochoices"
	"plurality/internal/protocols/usd"
	"plurality/internal/protocols/voter"
	"plurality/internal/rng"
	"plurality/internal/sched"
	"plurality/internal/stats"
)

// buildPop assigns the per-class color rows of m into a fresh per-node
// population laid out on the Classed graph's contiguous class ranges.
func buildPop(t *testing.T, classes []graph.Class, m [][]int64) *population.Population {
	t.Helper()
	var n int64
	for _, cl := range classes {
		n += cl.Count
	}
	k := len(m[0])
	pop, err := population.New(int(n), k)
	if err != nil {
		t.Fatal(err)
	}
	u := 0
	for a := range classes {
		for c := 0; c < k; c++ {
			for i := int64(0); i < m[a][c]; i++ {
				pop.SetColor(u, population.Color(c))
				u++
			}
		}
	}
	if u != int(n) {
		t.Fatalf("matrix rows sum to %d nodes, classes to %d", u, n)
	}
	return pop
}

func flat(m [][]int64) []int64 {
	var out []int64
	for _, row := range m {
		out = append(out, row...)
	}
	return out
}

func poisson(t *testing.T, n int64, seed uint64) sched.Scheduler {
	t.Helper()
	s, err := sched.NewPoisson(int(n), 1, rng.At(seed, 0))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// lumpedTimes collects consensus-time and tick-count samples from the
// lumped engine on the given class partition.
func lumpedTimes(t *testing.T, classes []graph.Class, m [][]int64, rule occupancy.Rule, trials int, seedBase uint64, forceMatrix bool) (times, ticks []float64) {
	t.Helper()
	var n int64
	for _, cl := range classes {
		n += cl.Count
	}
	var rn lumped.Runner
	for i := 0; i < trials; i++ {
		seed := seedBase + uint64(i)
		cnt := flat(m)
		res, err := rn.Run(cnt, nil, rule, lumped.Config{
			Classes:     classes,
			Scheduler:   poisson(t, n, seed),
			Rand:        rng.At(seed, 1),
			MaxTime:     1e6,
			ForceMatrix: forceMatrix,
		})
		if err != nil {
			t.Fatalf("trial %d: %v", i, err)
		}
		if !res.Done {
			t.Fatalf("trial %d did not converge", i)
		}
		times = append(times, res.Time)
		ticks = append(ticks, float64(res.Ticks))
	}
	return times, ticks
}

// perNodeTimes collects the per-node oracle's samples on the same annealed
// topology and initial matrix.
func perNodeTimes(t *testing.T, g graph.Classed, m [][]int64, rule dynamics.Rule, trials int, seedBase uint64) (times, ticks []float64) {
	t.Helper()
	classes := g.Classes()
	for i := 0; i < trials; i++ {
		seed := seedBase + uint64(i)
		pop := buildPop(t, classes, m)
		res, err := dynamics.RunAsync(pop, rule, dynamics.AsyncConfig{
			Graph:     g,
			Scheduler: poisson(t, int64(g.N()), seed),
			Rand:      rng.At(seed, 1),
			MaxTime:   1e6,
			Engine:    dynamics.EnginePerNode,
		})
		if err != nil {
			t.Fatalf("trial %d: %v", i, err)
		}
		if !res.Done {
			t.Fatalf("trial %d did not converge", i)
		}
		times = append(times, res.Time)
		ticks = append(ticks, float64(res.Ticks))
		if i == 0 && !pop.IsUnanimous() {
			t.Fatal("per-node run finished non-unanimous")
		}
	}
	return times, ticks
}

func ksGate(t *testing.T, label string, a, b []float64, trials int) {
	t.Helper()
	thresh := stats.KSThreshold(0.001, trials, trials) + 1.0/240
	if d := stats.KSStatistic(a, b); d > thresh {
		t.Errorf("%s: KS %.4f > %.4f", label, d, thresh)
	}
}

// TestLumpedMatchesPerNodeRegular is the acceptance gate for the lumped
// collapse on the vertex-transitive families: on the annealed forms of the
// cycle (d=2), torus (d=4) and random regular graph (d=8), the lumped
// engine's consensus-time and tick-count distributions must be
// KS-indistinguishable from the per-node engine running on the same
// annealed topology. Fixed seeds: a failure means the collapse or the
// delegation is wrong, not bad luck.
func TestLumpedMatchesPerNodeRegular(t *testing.T) {
	const trials = 200
	const n = 192
	m := [][]int64{{120, 72}}
	for _, d := range []int{2, 4, 8} {
		g, err := graph.NewAnnealedRegular(n, d)
		if err != nil {
			t.Fatal(err)
		}
		rule := twochoices.Rule{}
		lt, lm := lumpedTimes(t, g.Classes(), m, rule, trials, 9000+uint64(d), false)
		pt, pm := perNodeTimes(t, g, m, rule, trials, 4000+uint64(d))
		ksGate(t, "annealed regular times", lt, pt, trials)
		ksGate(t, "annealed regular ticks", lm, pm, trials)
	}
}

// TestLumpedMatchesPerNodeMultiClass gates the matrix path: on a two-class
// annealed configuration model (the lumped form of a degree-partitioned
// G(n,p)), the (class × color) engine must match the per-node engine on
// the same topology for every rule family it hosts.
func TestLumpedMatchesPerNodeMultiClass(t *testing.T) {
	const trials = 200
	classes := []graph.Class{{Degree: 3, Count: 96}, {Degree: 9, Count: 96}}
	g, err := graph.NewAnnealed(classes)
	if err != nil {
		t.Fatal(err)
	}
	m := [][]int64{{60, 36}, {56, 40}}
	for _, tc := range []struct {
		name string
		rule interface {
			Name() string
			SampleCount() int
			Next(*rng.RNG, population.Color, []population.Color) population.Color
		}
	}{
		{"two-choices", twochoices.Rule{}},
		{"voter", voter.Rule{}},
		{"3-majority", threemajority.Rule{}},
	} {
		lt, lm := lumpedTimes(t, classes, m, tc.rule, trials, 17000, false)
		pt, pm := perNodeTimes(t, g, m, tc.rule, trials, 23000)
		ksGate(t, tc.name+" times", lt, pt, trials)
		ksGate(t, tc.name+" ticks", lm, pm, trials)
	}
}

// TestSingleClassDelegationMatchesMatrix compares the two lumped paths on
// the same single-class input: the occupancy delegation (closed-form
// kernels, geometric skips) and the forced matrix engine must be
// distribution-identical.
func TestSingleClassDelegationMatchesMatrix(t *testing.T) {
	const trials = 200
	classes := []graph.Class{{Degree: 4, Count: 240}}
	m := [][]int64{{150, 90}}
	for _, rule := range []occupancy.Rule{twochoices.Rule{}, voter.Rule{}} {
		dt, dm := lumpedTimes(t, classes, m, rule, trials, 31000, false)
		mt, mm := lumpedTimes(t, classes, m, rule, trials, 37000, true)
		ksGate(t, rule.Name()+" times", dt, mt, trials)
		ksGate(t, rule.Name()+" ticks", dm, mm, trials)
	}
}

// TestLumpedUSDUndecidedColumn runs Undecided-State Dynamics through the
// matrix path: the hidden undecided column must track per-class undecided
// counts, preserve row sums, and match the per-node USD engine's
// consensus-time distribution on the same two-class annealed topology.
func TestLumpedUSDUndecidedColumn(t *testing.T) {
	const trials = 150
	classes := []graph.Class{{Degree: 2, Count: 80}, {Degree: 6, Count: 80}}
	g, err := graph.NewAnnealed(classes)
	if err != nil {
		t.Fatal(err)
	}
	m := [][]int64{{50, 30}, {46, 34}}
	rule := usd.Rule{}

	var rn lumped.Runner
	var times []float64
	for i := 0; i < trials; i++ {
		seed := 41000 + uint64(i)
		cnt := flat(m)
		und := make([]int64, len(classes))
		res, err := rn.Run(cnt, und, rule, lumped.Config{
			Classes:   classes,
			Scheduler: poisson(t, int64(g.N()), seed),
			Rand:      rng.At(seed, 1),
			MaxTime:   1e6,
		})
		if err != nil {
			t.Fatalf("trial %d: %v", i, err)
		}
		if !res.Done {
			t.Fatalf("trial %d did not converge", i)
		}
		for a, cl := range classes {
			var row int64
			for c := 0; c < 2; c++ {
				row += cnt[a*2+c]
			}
			if row+und[a] != cl.Count {
				t.Fatalf("trial %d: class %d row %d + undecided %d != count %d", i, a, row, und[a], cl.Count)
			}
		}
		times = append(times, res.Time)
	}
	pt, _ := perNodeTimes(t, g, m, rule, trials, 43000)
	ksGate(t, "usd times", times, pt, trials)
}

// TestLumpedChurn: churn events must keep the class partition invariant
// (joiners stay in their node's class) while perturbing the matrix.
func TestLumpedChurn(t *testing.T) {
	classes := []graph.Class{{Degree: 3, Count: 60}, {Degree: 5, Count: 60}}
	m := flat([][]int64{{40, 20}, {30, 30}})
	res, err := lumped.Run(m, nil, voter.Rule{}, lumped.Config{
		Classes:   classes,
		Scheduler: poisson(t, 120, 7),
		Rand:      rng.At(7, 1),
		MaxTime:   200,
		Churn:     0.05,
	})
	if err != nil && !errors.Is(err, occupancy.ErrTimeLimit) {
		t.Fatal(err)
	}
	if res.Churns == 0 {
		t.Error("no churn events at rate 0.05")
	}
	for a, cl := range classes {
		row := m[a*2] + m[a*2+1]
		if row != cl.Count {
			t.Errorf("class %d row %d != count %d after churn", a, row, cl.Count)
		}
	}
}

// TestLumpedDeterministic: identical seeds must give identical results.
func TestLumpedDeterministic(t *testing.T) {
	classes := []graph.Class{{Degree: 2, Count: 50}, {Degree: 4, Count: 50}}
	run := func() occupancy.Result {
		m := flat([][]int64{{30, 20}, {25, 25}})
		res, err := lumped.Run(m, nil, twochoices.Rule{}, lumped.Config{
			Classes:   classes,
			Scheduler: poisson(t, 100, 99),
			Rand:      rng.At(99, 1),
			MaxTime:   1e6,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed diverged: %+v != %+v", a, b)
	}
}

// TestLumpedObserveAndStop covers the streaming observer and the stop hook
// on the matrix path.
func TestLumpedObserveAndStop(t *testing.T) {
	classes := []graph.Class{{Degree: 2, Count: 60}, {Degree: 4, Count: 60}}
	var snaps int
	var lastTime float64
	m := flat([][]int64{{40, 20}, {30, 30}})
	res, err := lumped.Run(m, nil, twochoices.Rule{}, lumped.Config{
		Classes:         classes,
		Scheduler:       poisson(t, 120, 11),
		Rand:            rng.At(11, 1),
		MaxTime:         1e6,
		ObserveInterval: 0.5,
		OnObserve: func(s occupancy.Snapshot) {
			if s.Time < lastTime {
				t.Errorf("snapshot times regressed: %v after %v", s.Time, lastTime)
			}
			lastTime = s.Time
			var tot int64
			for _, v := range s.Counts {
				tot += v
			}
			if tot+s.Undecided != 120 {
				t.Errorf("snapshot counts sum to %d", tot+s.Undecided)
			}
			snaps++
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if snaps == 0 {
		t.Error("no snapshots delivered")
	}
	if !res.Done {
		t.Error("run did not converge")
	}

	m = flat([][]int64{{40, 20}, {30, 30}})
	_, err = lumped.Run(m, nil, twochoices.Rule{}, lumped.Config{
		Classes:   classes,
		Scheduler: poisson(t, 120, 12),
		Rand:      rng.At(12, 1),
		MaxTime:   1e6,
		Stop:      func() bool { return true },
	})
	if !errors.Is(err, occupancy.ErrStopped) {
		t.Fatalf("stop hook: err = %v, want ErrStopped", err)
	}
}

// TestLumpedValidation covers the input contract.
func TestLumpedValidation(t *testing.T) {
	classes := []graph.Class{{Degree: 2, Count: 10}, {Degree: 4, Count: 10}}
	good := func() lumped.Config {
		return lumped.Config{
			Classes:   classes,
			Scheduler: poisson(t, 20, 1),
			Rand:      rng.At(1, 1),
			MaxTime:   100,
		}
	}
	ok := flat([][]int64{{6, 4}, {5, 5}})
	for _, tc := range []struct {
		name string
		m    []int64
		und  []int64
		rule occupancy.Rule
		mut  func(*lumped.Config)
	}{
		{name: "nil rule", m: ok, rule: nil},
		{name: "no classes", m: ok, rule: voter.Rule{}, mut: func(c *lumped.Config) { c.Classes = nil }},
		{name: "matrix shape", m: ok[:3], rule: voter.Rule{}},
		{name: "negative count", m: []int64{-1, 11, 5, 5}, rule: voter.Rule{}},
		{name: "row sum mismatch", m: []int64{6, 5, 5, 5}, rule: voter.Rule{}},
		{name: "undecided without rule", m: []int64{6, 3, 5, 5}, und: []int64{1, 0}, rule: voter.Rule{}},
		{name: "undecided length", m: ok, und: []int64{0}, rule: usd.Rule{}},
		{name: "nil scheduler", m: ok, rule: voter.Rule{}, mut: func(c *lumped.Config) { c.Scheduler = nil }},
		{name: "scheduler size", m: ok, rule: voter.Rule{}, mut: func(c *lumped.Config) { c.Scheduler = poisson(t, 21, 1) }},
		{name: "nil rand", m: ok, rule: voter.Rule{}, mut: func(c *lumped.Config) { c.Rand = nil }},
		{name: "max time", m: ok, rule: voter.Rule{}, mut: func(c *lumped.Config) { c.MaxTime = 0 }},
		{name: "churn range", m: ok, rule: voter.Rule{}, mut: func(c *lumped.Config) { c.Churn = 1 }},
	} {
		cfg := good()
		if tc.mut != nil {
			tc.mut(&cfg)
		}
		mm := append([]int64(nil), tc.m...)
		if _, err := lumped.Run(mm, tc.und, tc.rule, cfg); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

// TestLumpedAlreadyUnanimous: a matrix already at consensus returns Done
// without consuming the scheduler.
func TestLumpedAlreadyUnanimous(t *testing.T) {
	classes := []graph.Class{{Degree: 2, Count: 10}, {Degree: 4, Count: 10}}
	m := flat([][]int64{{10, 0}, {10, 0}})
	res, err := lumped.Run(m, nil, voter.Rule{}, lumped.Config{
		Classes:     classes,
		Scheduler:   poisson(t, 20, 3),
		Rand:        rng.At(3, 1),
		MaxTime:     100,
		ForceMatrix: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done || res.Winner != 0 || res.Ticks != 0 {
		t.Fatalf("unexpected result %+v", res)
	}
}
