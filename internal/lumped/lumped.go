// Package lumped is the degree-class count-collapsed engine for annealed
// (configuration-model) topologies. Where the occupancy engine collapses
// clique runs to a k-color histogram, this engine collapses runs on any
// graph.Classed topology to a (degree-class × color) count matrix: annealed
// sampling makes nodes exchangeable within a degree class, so the matrix
// evolves as a lumped Markov chain and O(D·k) state replaces O(n) nodes —
// the degree-class mean-field treatment standard since
// Fountoulakis–Panagiotou-style analyses of majority dynamics on random
// graphs.
//
// # Exactness
//
// The collapse is exact for annealed topologies, not an approximation. The
// activated node is uniform, so its class is drawn proportional to class
// node counts and its color proportional to the class row. The sampled
// neighbor follows a uniformly random half-edge of the activated node to a
// fresh partner, so its color is c with probability
//
//	(W[c] − deg_a·[c = own]) / (W − deg_a)
//
// where W[c] is the half-edge mass Σ_b deg_b·M[b][c] of color c, W the
// total mass, and deg_a the activated class's degree (the activated node's
// own half-edges are excluded from the pool). Both laws depend on the
// matrix alone. The KS equivalence tests in this package and the
// topology-equivalence sweep gate the collapse against per-node runs on
// the same annealed graphs.
//
// # Single-class delegation
//
// A single degree class — the annealed form of every vertex-transitive
// d-regular topology: cycles (d=2), tori (d=4), random d-regular graphs —
// degenerates to the clique's uniform-except-self sampling law
// independently of d, so those runs delegate directly to the occupancy
// engine and inherit its closed-form kernels and geometric skips over
// no-op activations. Multi-class partitions (degree-partitioned G(n,p))
// run activation by activation on the matrix in O(D + k) per tick.
package lumped

import (
	"errors"
	"fmt"

	"plurality/internal/graph"
	"plurality/internal/occupancy"
	"plurality/internal/population"
	"plurality/internal/rng"
	"plurality/internal/sched"
)

// Config configures a lumped run. The engine reuses the occupancy package's
// Rule/Undecided/Snapshot/Result contracts and error sentinels
// (occupancy.ErrTimeLimit, occupancy.ErrStopped): it is the same
// count-collapse idea with the class dimension added.
type Config struct {
	// Classes is the degree-class partition (graph.Classed.Classes()).
	// Required; class counts must match the matrix row sums.
	Classes []graph.Class
	// Scheduler supplies the asynchronous time model; its node count must
	// equal the class total. Required.
	Scheduler sched.Scheduler
	// Rand drives all engine sampling. Required.
	Rand *rng.RNG
	// MaxTime bounds the run in parallel time. Required (> 0).
	MaxTime float64
	// Churn is the per-activation probability of a churn event: the
	// activated node is replaced by a fresh joiner with a uniformly random
	// opinion. The joiner occupies the same graph position, so it stays in
	// the same degree class.
	Churn float64
	// Stop, OnObserve and ObserveInterval follow occupancy.Config.
	Stop            func() bool
	ObserveInterval float64
	OnObserve       func(occupancy.Snapshot)
	// ForceMatrix disables the single-class delegation to the occupancy
	// engine, used by the equivalence tests to compare the two paths.
	ForceMatrix bool
}

// Run executes rule on the (class × color) count matrix m — row-major, one
// row of k color counts per class, mutated in place to the final matrix.
// und, when non-nil, holds the per-class undecided counts for rules
// implementing occupancy.Undecided and is mutated to the final per-class
// undecided counts; it must be nil or all-zero for other rules.
func Run(m, und []int64, rule occupancy.Rule, cfg Config) (occupancy.Result, error) {
	var rn Runner
	return rn.Run(m, und, rule, cfg)
}

// Runner reuses the engine's scratch buffers across runs so trial loops are
// allocation-free in steady state. Not safe for concurrent use.
type Runner struct {
	occ      occupancy.Runner
	ext      []int64
	w        []int64
	colTot   []int64
	classTot []int64
	deg      []int64
	sampled  []population.Color
	times    []float64
	ticks    []sched.Tick
}

// Run is Runner's buffer-reusing equivalent of the package-level Run.
func (rn *Runner) Run(m, und []int64, rule occupancy.Rule, cfg Config) (occupancy.Result, error) {
	if rule == nil {
		return occupancy.Result{}, errors.New("lumped: nil rule")
	}
	D := len(cfg.Classes)
	if D == 0 {
		return occupancy.Result{}, errors.New("lumped: no degree classes")
	}
	if len(m) == 0 || len(m)%D != 0 {
		return occupancy.Result{}, fmt.Errorf("lumped: matrix of %d counts does not factor into %d class rows", len(m), D)
	}
	k := len(m) / D
	if und != nil && len(und) != D {
		return occupancy.Result{}, fmt.Errorf("lumped: %d undecided classes, want %d", len(und), D)
	}
	var undTotal int64
	for a := range und {
		if und[a] < 0 {
			return occupancy.Result{}, fmt.Errorf("lumped: negative undecided count %d for class %d", und[a], a)
		}
		undTotal += und[a]
	}
	var n int64
	for a, cl := range cfg.Classes {
		if cl.Degree < 1 || cl.Count < 1 {
			return occupancy.Result{}, fmt.Errorf("lumped: class %d = %+v, want degree >= 1 and count >= 1", a, cl)
		}
		var row int64
		for c := 0; c < k; c++ {
			if m[a*k+c] < 0 {
				return occupancy.Result{}, fmt.Errorf("lumped: negative count %d for class %d color %d", m[a*k+c], a, c)
			}
			row += m[a*k+c]
		}
		if und != nil {
			row += und[a]
		}
		if row != cl.Count {
			return occupancy.Result{}, fmt.Errorf("lumped: class %d row sums to %d, want class count %d", a, row, cl.Count)
		}
		n += cl.Count
	}
	if n < 2 {
		return occupancy.Result{}, fmt.Errorf("lumped: class total %d, want >= 2", n)
	}
	if cfg.Scheduler == nil {
		return occupancy.Result{}, errors.New("lumped: nil scheduler")
	}
	if int64(cfg.Scheduler.N()) != n {
		return occupancy.Result{}, fmt.Errorf("lumped: scheduler has %d nodes, classes total %d", cfg.Scheduler.N(), n)
	}
	if cfg.Rand == nil {
		return occupancy.Result{}, errors.New("lumped: nil rand")
	}
	if cfg.MaxTime <= 0 {
		return occupancy.Result{}, fmt.Errorf("lumped: MaxTime = %v, want > 0", cfg.MaxTime)
	}
	if cfg.Churn < 0 || cfg.Churn >= 1 {
		return occupancy.Result{}, fmt.Errorf("lumped: Churn = %v, want [0, 1)", cfg.Churn)
	}
	if rule.SampleCount() <= 0 {
		return occupancy.Result{}, fmt.Errorf("lumped: rule %s samples %d nodes, want > 0", rule.Name(), rule.SampleCount())
	}
	ur, hasUndecided := rule.(occupancy.Undecided)
	if !hasUndecided && undTotal != 0 {
		return occupancy.Result{}, fmt.Errorf("lumped: rule %s has no undecided state, but %d nodes are undecided", rule.Name(), undTotal)
	}
	if hasUndecided && undTotal == n {
		// Absorbing dead state, mirroring the occupancy engine's check.
		return occupancy.Result{}, errors.New("lumped: undecided-state run needs at least one decided holder")
	}

	// Single-class delegation: the annealed regular model samples uniformly
	// over the n−1 other nodes — exactly the clique without self-sampling —
	// so the run collapses all the way to the occupancy engine (closed-form
	// kernels, geometric no-op skips).
	if D == 1 && !cfg.ForceMatrix {
		occCfg := occupancy.Config{
			Scheduler:       cfg.Scheduler,
			Rand:            cfg.Rand,
			MaxTime:         cfg.MaxTime,
			Churn:           cfg.Churn,
			Stop:            cfg.Stop,
			ObserveInterval: cfg.ObserveInterval,
			OnObserve:       cfg.OnObserve,
		}
		if und != nil {
			occCfg.Undecided = und[0]
		}
		res, err := rn.occ.Run(m, rule, occCfg)
		if und != nil {
			und[0] = res.Undecided
		}
		return res, err
	}

	// Matrix path. Rules with an undecided state get one hidden color
	// column (index k) holding the per-class undecided counts, and execute
	// the histogram-convention rule.
	cols, colors := k, k
	work := m
	execRule := rule
	if hasUndecided {
		cols = k + 1
		execRule = ur.UndecidedRule(k)
		if cap(rn.ext) < D*cols {
			rn.ext = make([]int64, D*cols)
		}
		work = rn.ext[:D*cols]
		for a := 0; a < D; a++ {
			copy(work[a*cols:], m[a*k:(a+1)*k])
			work[a*cols+k] = und[a]
		}
	}
	res, err := rn.runMatrix(work, execRule, cfg, n, cols, colors)
	if hasUndecided {
		res.Undecided = 0
		for a := 0; a < D; a++ {
			copy(m[a*k:(a+1)*k], work[a*cols:a*cols+k])
			und[a] = work[a*cols+k]
			res.Undecided += und[a]
		}
	}
	return res, err
}

// matrixRun is the multi-class per-activation engine state; cols counts the
// matrix columns (colors plus the hidden undecided column when present).
type matrixRun struct {
	m        []int64
	deg      []int64 // per-class degree
	classTot []int64 // per-class node count (constant through a run)
	w        []int64 // per-color half-edge mass Σ_a deg_a·m[a][c]
	colTot   []int64 // per-color node count Σ_a m[a][c]
	totW     int64
	n        int64
	D        int
	cols     int
	colors   int
	s        int
	churning bool
	churn    float64
	r        *rng.RNG
	rule     occupancy.Rule
	sampled  []population.Color
	res      occupancy.Result
	done     bool
	badNone  bool

	observing   bool
	nextObserve float64
	observeGap  float64
	lastEmit    int64 // initialized to -1
	onObserve   func(occupancy.Snapshot)
}

// pickNode draws the activated node's (class, color) under the
// uniform-node law: class proportional to node count, color within the
// class row.
func (mr *matrixRun) pickNode() (a, c int) {
	x := int64(mr.r.Uint64n(uint64(mr.n)))
	a = mr.D - 1
	for i, t := range mr.classTot {
		if x < t {
			a = i
			break
		}
		x -= t
	}
	row := mr.m[a*mr.cols : (a+1)*mr.cols]
	for j, v := range row {
		if x < v {
			return a, j
		}
		x -= v
	}
	return a, mr.cols - 1
}

// pickSample draws one sampled neighbor's color for an activation in a
// class of degree da holding own: the followed half-edge lands on color c
// with probability (w[c] − da·[c = own]) / (totW − da).
func (mr *matrixRun) pickSample(da int64, own int) population.Color {
	x := int64(mr.r.Uint64n(uint64(mr.totW - da)))
	for c, v := range mr.w {
		if c == own {
			v -= da
		}
		if x < v {
			return population.Color(c)
		}
		x -= v
	}
	return population.Color(mr.cols - 1)
}

// move transfers one node of class a from color `from` to color `to`,
// maintaining the mass and column totals and the consensus flag.
func (mr *matrixRun) move(a, from, to int) {
	if from == to {
		return
	}
	da := mr.deg[a]
	mr.m[a*mr.cols+from]--
	mr.m[a*mr.cols+to]++
	mr.w[from] -= da
	mr.w[to] += da
	mr.colTot[from]--
	mr.colTot[to]++
	if to < mr.colors && mr.colTot[to] == mr.n {
		mr.done = true
		mr.res.Winner = population.Color(to)
	}
}

// step executes one activation on the matrix.
func (mr *matrixRun) step() {
	if mr.churning && mr.r.Bernoulli(mr.churn) {
		a, victim := mr.pickNode()
		fresh := mr.r.Intn(mr.colors)
		mr.res.Churns++
		mr.move(a, victim, fresh)
		return
	}
	a, own := mr.pickNode()
	da := mr.deg[a]
	for i := 0; i < mr.s; i++ {
		mr.sampled[i] = mr.pickSample(da, own)
	}
	next := mr.rule.Next(mr.r, population.Color(own), mr.sampled)
	if next == population.None {
		// Same contract as the occupancy engine: an undeclared undecided
		// state must fail loudly, not silently map to "keep".
		mr.badNone = true
		return
	}
	mr.move(a, own, int(next))
}

// emit delivers one Snapshot of the current column totals.
func (mr *matrixRun) emit(now float64, ticks int64) {
	var und int64
	for _, v := range mr.colTot[mr.colors:] {
		und += v
	}
	mr.lastEmit = ticks
	mr.onObserve(occupancy.Snapshot{Time: now, Ticks: ticks, Counts: mr.colTot[:mr.colors], Undecided: und})
}

func (mr *matrixRun) maybeObserve(now float64, ticks int64) {
	if !mr.observing || now < mr.nextObserve {
		return
	}
	mr.emit(now, ticks)
	mr.nextObserve = now + mr.observeGap
}

func (mr *matrixRun) finalObserve(now float64, ticks int64) {
	if !mr.observing || mr.lastEmit == ticks {
		return
	}
	mr.emit(now, ticks)
}

// plurality returns the index of the largest count (lowest index on ties),
// matching population.Population.Plurality.
func plurality(counts []int64) population.Color {
	best := 0
	for c := 1; c < len(counts); c++ {
		if counts[c] > counts[best] {
			best = c
		}
	}
	return population.Color(best)
}

// stopCheckStride mirrors the occupancy engine: Stop polls happen once per
// batch (or per stride on the generic path), never per activation.
const stopCheckStride = 1024

// runMatrix executes the per-activation matrix engine, consuming tick times
// from the scheduler in batches; it mirrors the occupancy engine's tick
// mode with the class dimension added.
func (rn *Runner) runMatrix(m []int64, rule occupancy.Rule, cfg Config, n int64, cols, colors int) (occupancy.Result, error) {
	D := len(cfg.Classes)
	s := rule.SampleCount()
	if cap(rn.sampled) < s {
		rn.sampled = make([]population.Color, s)
	}
	if cap(rn.w) < cols {
		rn.w = make([]int64, cols)
	}
	if cap(rn.colTot) < cols {
		rn.colTot = make([]int64, cols)
	}
	if cap(rn.classTot) < D {
		rn.classTot = make([]int64, D)
	}
	if cap(rn.deg) < D {
		rn.deg = make([]int64, D)
	}
	mr := matrixRun{
		m:          m,
		deg:        rn.deg[:D],
		classTot:   rn.classTot[:D],
		w:          rn.w[:cols],
		colTot:     rn.colTot[:cols],
		n:          n,
		D:          D,
		cols:       cols,
		colors:     colors,
		s:          s,
		churning:   cfg.Churn > 0,
		churn:      cfg.Churn,
		r:          cfg.Rand,
		rule:       rule,
		sampled:    rn.sampled[:s],
		observing:  cfg.OnObserve != nil,
		observeGap: cfg.ObserveInterval,
		lastEmit:   -1,
		onObserve:  cfg.OnObserve,
	}
	for c := 0; c < cols; c++ {
		mr.w[c] = 0
		mr.colTot[c] = 0
	}
	for a, cl := range cfg.Classes {
		mr.deg[a] = int64(cl.Degree)
		mr.classTot[a] = cl.Count
		mr.totW += int64(cl.Degree) * cl.Count
		for c := 0; c < cols; c++ {
			mr.w[c] += int64(cl.Degree) * m[a*cols+c]
			mr.colTot[c] += m[a*cols+c]
		}
	}
	for c := 0; c < colors; c++ {
		if mr.colTot[c] == n {
			return occupancy.Result{Done: true, Winner: population.Color(c)}, nil
		}
	}

	var (
		ticks int64
		last  float64
	)
	finish := func(err error) (occupancy.Result, error) {
		mr.res.Ticks = ticks
		mr.res.Time = last
		mr.finalObserve(last, ticks)
		if mr.done {
			mr.res.Done = true
			return mr.res, nil
		}
		mr.res.Winner = plurality(mr.colTot[:colors])
		return mr.res, err
	}
	badNoneErr := func() error {
		return fmt.Errorf("lumped: rule %s returned population.None; rules with an undecided state must implement occupancy.Undecided", rule.Name())
	}

	switch sc := cfg.Scheduler.(type) {
	case sched.TimeScheduler:
		if cap(rn.times) < sched.BatchSize {
			rn.times = make([]float64, sched.BatchSize)
		}
		buf := rn.times[:sched.BatchSize]
		for {
			if cfg.Stop != nil && cfg.Stop() {
				return finish(occupancy.ErrStopped)
			}
			sc.NextTimes(buf)
			for _, now := range buf {
				if now > cfg.MaxTime {
					return finish(occupancy.ErrTimeLimit)
				}
				ticks++
				last = now
				mr.step()
				if mr.badNone {
					return occupancy.Result{}, badNoneErr()
				}
				mr.maybeObserve(now, ticks)
				if mr.done {
					return finish(nil)
				}
			}
		}
	case sched.BatchScheduler:
		if cap(rn.ticks) < sched.BatchSize {
			rn.ticks = make([]sched.Tick, sched.BatchSize)
		}
		buf := rn.ticks[:sched.BatchSize]
		for {
			if cfg.Stop != nil && cfg.Stop() {
				return finish(occupancy.ErrStopped)
			}
			sc.NextBatch(buf)
			for _, t := range buf {
				if t.Time > cfg.MaxTime {
					return finish(occupancy.ErrTimeLimit)
				}
				ticks++
				last = t.Time
				mr.step()
				if mr.badNone {
					return occupancy.Result{}, badNoneErr()
				}
				mr.maybeObserve(t.Time, ticks)
				if mr.done {
					return finish(nil)
				}
			}
		}
	default:
		stopCheck := 0
		for {
			if cfg.Stop != nil {
				if stopCheck--; stopCheck <= 0 {
					stopCheck = stopCheckStride
					if cfg.Stop() {
						return finish(occupancy.ErrStopped)
					}
				}
			}
			t := cfg.Scheduler.Next()
			if t.Time > cfg.MaxTime {
				return finish(occupancy.ErrTimeLimit)
			}
			ticks++
			last = t.Time
			mr.step()
			if mr.badNone {
				return occupancy.Result{}, badNoneErr()
			}
			mr.maybeObserve(t.Time, ticks)
			if mr.done {
				return finish(nil)
			}
		}
	}
}
