// Package protocols is the first-class registry of the sampling-dynamics
// family: every memoryless protocol the engines can execute — Two-Choices,
// Voter, 3-Majority, Undecided-State Dynamics, parameterized j-Majority —
// is one Descriptor here, and every layer that needs to resolve a protocol
// by name (the public Run wrappers, the experiment harness's protocol
// axis, both CLIs, the README protocol table) resolves it through Lookup
// instead of maintaining its own enumeration. Adding a protocol is one
// entry in registry() plus its rule package; the engines, the sweep
// compiler, the protocol-race sweep and the docs table pick it up from
// there.
//
// The descriptor also owns the cross-cutting validation that used to live
// in the public wrappers — the O(k)-memory guards of the histogram
// (counts) entry points — so a new protocol cannot silently skip them.
package protocols

import (
	"fmt"
	"strconv"
	"strings"

	"plurality/internal/protocols/dynamics"
	"plurality/internal/protocols/jmajority"
	"plurality/internal/protocols/threemajority"
	"plurality/internal/protocols/twochoices"
	"plurality/internal/protocols/usd"
	"plurality/internal/protocols/voter"
)

// Descriptor describes one registered protocol family: the metadata every
// layer renders (names, one-line rule, source paper) plus the hooks the
// engines resolve (rule construction, validation).
type Descriptor struct {
	// Name is the canonical registry name, e.g. "two-choices".
	Name string
	// Aliases are alternate spellings Lookup accepts, e.g. "three-majority"
	// for "3-majority".
	Aliases []string
	// Param documents the ":<param>" suffix of parameterized families
	// ("" for parameterless ones), e.g. "j, the sample size".
	Param string
	// ParamName is the short placeholder the renderers use for the
	// parameter ("j" → "j-majority:<j>"); "" for parameterless families.
	ParamName string
	// Samples is the per-activation sample count as displayed in tables
	// ("j" for parameterized families).
	Samples string
	// Summary is the one-line update rule for listings and the README
	// protocol table.
	Summary string
	// Source is the paper the rule comes from.
	Source string
	// RaceSpec is the spec the protocol-race sweep runs for this family;
	// parameterized families pin a representative instance.
	RaceSpec string
	// PluralityWins reports whether the dynamic drives the initial
	// plurality to win w.h.p. under a (1+ε) bias — the protocol-race
	// sweep's plurality-wins gate covers exactly these protocols (Voter's
	// winner is the martingale draw, so it is exempt).
	PluralityWins bool
	// Kerneled reports whether the rule exposes an exact occupancy kernel,
	// letting count-collapsed runs leap over no-op activations.
	Kerneled bool
	// Leapable reports whether the rule's kernel also exposes the
	// closed-form flow law (occupancy.FlowKernel) that the hybrid
	// tau-leap/mean-field engine needs — the n ≥ 10¹⁰ regime.
	Leapable bool
	// Undecided reports whether the rule uses the undecided (None) state.
	Undecided bool

	// rule materializes the per-node update rule; param is the raw text
	// after ":" in the lookup spec ("" when absent).
	rule func(param string) (dynamics.Rule, error)
}

// Rule materializes the family's update rule for the given parameter text
// ("" for parameterless families).
func (d Descriptor) Rule(param string) (dynamics.Rule, error) {
	return d.rule(param)
}

// noParam wraps a fixed rule as a parameterless family constructor.
func noParam(name string, rule dynamics.Rule) func(string) (dynamics.Rule, error) {
	return func(param string) (dynamics.Rule, error) {
		if param != "" {
			return nil, fmt.Errorf("protocols: %s takes no parameter, got %q", name, param)
		}
		return rule, nil
	}
}

// registry returns every registered protocol family, in presentation
// order. Registering a protocol here is the single step that exposes it to
// the public RunDynamic entry points, the experiment harness's protocol
// axis, the protocol-race sweep, both CLIs and the README table.
func registry() []Descriptor {
	return []Descriptor{
		{
			Name:          "two-choices",
			Samples:       "2",
			Summary:       "adopt the sampled color iff both samples agree",
			Source:        "Cooper, Elsässer & Radzik (ICALP '14); Theorem 1.1 of the source paper",
			RaceSpec:      "two-choices",
			PluralityWins: true,
			Kerneled:      true,
			Leapable:      true,
			rule:          noParam("two-choices", twochoices.Rule{}),
		},
		{
			Name:     "voter",
			Samples:  "1",
			Summary:  "adopt the sampled color unconditionally",
			Source:   "classic Voter model (Holley & Liggett '75)",
			RaceSpec: "voter",
			// The winner is the martingale draw — each color wins with
			// probability proportional to its initial support — so no
			// plurality guarantee.
			Kerneled: true,
			Leapable: true,
			rule:     noParam("voter", voter.Rule{}),
		},
		{
			Name:          "3-majority",
			Aliases:       []string{"three-majority"},
			Samples:       "3",
			Summary:       "adopt the majority of three samples, first sample on three-way ties",
			Source:        "Becchetti et al. (SODA '16)",
			RaceSpec:      "3-majority",
			PluralityWins: true,
			Kerneled:      true,
			Leapable:      true,
			rule:          noParam("3-majority", threemajority.Rule{}),
		},
		{
			Name:          "usd",
			Aliases:       []string{"undecided-state", "undecided"},
			Samples:       "1",
			Summary:       "undecided nodes adopt the sampled opinion; disagreeing nodes go undecided",
			Source:        "Becchetti, Clementi, Natale, Pasquale & Silvestri (SODA '15)",
			RaceSpec:      "usd",
			PluralityWins: true,
			Kerneled:      true,
			Leapable:      true,
			Undecided:     true,
			rule:          noParam("usd", usd.Rule{}),
		},
		{
			Name:          "j-majority",
			Aliases:       []string{"jmajority", "jmaj"},
			Param:         fmt.Sprintf("j, the sample size (1 ≤ j ≤ %d); j=1 is Voter, j=3 is 3-Majority", jmajority.MaxJ),
			ParamName:     "j",
			Samples:       "j",
			Summary:       "adopt the most frequent of j samples, uniform tie-break",
			Source:        "h-majority family (Becchetti et al.; Ghaffari & Parter)",
			RaceSpec:      "j-majority:5",
			PluralityWins: true,
			Kerneled:      true,
			Leapable:      true,
			rule: func(param string) (dynamics.Rule, error) {
				if param == "" {
					return nil, fmt.Errorf("protocols: j-majority needs a sample size, e.g. %q", "j-majority:3")
				}
				j, err := strconv.Atoi(param)
				if err != nil {
					return nil, fmt.Errorf("protocols: bad j-majority parameter %q: %v", param, err)
				}
				r, err := jmajority.New(j)
				if err != nil {
					return nil, err
				}
				return r, nil
			},
		},
	}
}

// descriptors is the registry materialized once at init; the resolution
// helpers below read it so per-cell sweep validation does not rebuild the
// slice on every lookup.
var descriptors = registry()

// Registry returns every registered protocol family, in presentation
// order. The slice is a copy; descriptors themselves are immutable values.
func Registry() []Descriptor {
	out := make([]Descriptor, len(descriptors))
	copy(out, descriptors)
	return out
}

// Names returns the canonical names in presentation order.
func Names() []string {
	names := make([]string, len(descriptors))
	for i, d := range descriptors {
		names[i] = d.Name
	}
	return names
}

// ByName resolves a family by canonical name or alias (no parameter).
func ByName(name string) (Descriptor, bool) {
	for _, d := range descriptors {
		if d.Name == name {
			return d, true
		}
		for _, a := range d.Aliases {
			if a == name {
				return d, true
			}
		}
	}
	return Descriptor{}, false
}

// Lookup resolves a protocol spec — "name" or "name:param" — to its
// descriptor and a materialized rule. It is the single resolution point
// the public wrappers, the sweep compiler and the CLIs share.
func Lookup(spec string) (Descriptor, dynamics.Rule, error) {
	name, param, _ := strings.Cut(spec, ":")
	d, ok := ByName(name)
	if !ok {
		return Descriptor{}, nil, fmt.Errorf("protocols: unknown protocol %q (registered: %s)",
			name, strings.Join(Names(), ", "))
	}
	rule, err := d.Rule(param)
	if err != nil {
		return Descriptor{}, nil, err
	}
	return d, rule, nil
}

// ValidateCounts enforces the shared contract of every histogram (counts)
// entry point — the O(k)-memory API that exists for populations too large
// to materialize per node. The guards live on the descriptor so a newly
// registered protocol cannot silently skip them: counts must be
// non-negative with a total of at least 2 that fits the scheduler's node
// index, and the O(n)-state HeapPoisson scheduler is rejected outright.
// It returns the histogram total.
func (d Descriptor) ValidateCounts(counts []int64, heapPoisson bool) (int64, error) {
	var n int64
	for _, v := range counts {
		if v < 0 {
			return 0, fmt.Errorf("plurality: negative count %d", v)
		}
		n += v
	}
	if n < 2 {
		return 0, fmt.Errorf("plurality: histogram total %d, want >= 2", n)
	}
	if n != int64(int(n)) {
		return 0, fmt.Errorf("plurality: histogram total %d overflows the scheduler's node index", n)
	}
	if heapPoisson {
		// The event-heap reference scheduler keeps one pending event per
		// node — O(n) state, which would silently break the counts API's
		// O(k)-memory contract at exactly the sizes it exists for.
		return 0, fmt.Errorf("plurality: counts runs promise O(k) memory, but the HeapPoisson scheduler is O(n); use Poisson (the same process) or Sequential")
	}
	return n, nil
}

// MarkdownTable renders the registry as the README's protocol table; a
// test keeps the committed README in sync with it, so the table is
// generated from the registry rather than maintained by hand.
func MarkdownTable() string {
	var b strings.Builder
	b.WriteString("| Protocol | Samples | Rule | Plurality guarantee | Engines | Source |\n")
	b.WriteString("|---|---|---|---|---|---|\n")
	for _, d := range descriptors {
		name := "`" + d.Name + "`"
		if d.ParamName != "" {
			name = "`" + d.Name + ":<" + d.ParamName + ">`"
		}
		plur := "—"
		if d.PluralityWins {
			plur = "yes"
		}
		engines := "sync · async · counts"
		if d.Kerneled {
			engines += " (skip kernel)"
		}
		if d.Leapable {
			engines += " · leap"
		}
		fmt.Fprintf(&b, "| %s | %s | %s | %s | %s | %s |\n",
			name, d.Samples, d.Summary, plur, engines, d.Source)
	}
	return b.String()
}
