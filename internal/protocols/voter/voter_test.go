package voter

import (
	"testing"

	"plurality/internal/graph"
	"plurality/internal/population"
	"plurality/internal/protocols/dynamics"
	"plurality/internal/rng"
	"plurality/internal/sched"
)

func TestRuleBasics(t *testing.T) {
	r := Rule{}
	if r.Name() != "voter" || r.SampleCount() != 1 {
		t.Fatalf("Name=%q SampleCount=%d", r.Name(), r.SampleCount())
	}
	if got := r.Next(nil, 5, []population.Color{2}); got != 2 {
		t.Fatalf("Next = %d, want 2", got)
	}
}

func TestAsyncVoterConverges(t *testing.T) {
	const n = 400
	pop, err := population.FromCounts([]int64{n / 2, n / 2})
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.NewComplete(n)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.NewSequential(n, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := dynamics.RunAsync(pop, Rule{}, dynamics.AsyncConfig{
		Graph:     g,
		Scheduler: s,
		Rand:      rng.New(2),
		MaxTime:   1e7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done || !pop.ConsensusOn(res.Winner) {
		t.Fatalf("voter failed to converge: %+v", res)
	}
}

// TestVoterWinProbabilityProportional verifies the classic property that
// voter elects each color with probability ~ its initial fraction — which
// is exactly why it is *not* a plurality-consensus protocol under weak bias.
func TestVoterWinProbabilityProportional(t *testing.T) {
	const (
		n      = 120
		trials = 400
	)
	winsZero := 0
	for trial := 0; trial < trials; trial++ {
		pop, err := population.FromCounts([]int64{n / 4, 3 * n / 4})
		if err != nil {
			t.Fatal(err)
		}
		g, err := graph.NewComplete(n)
		if err != nil {
			t.Fatal(err)
		}
		s, err := sched.NewSequential(n, rng.At(10, trial))
		if err != nil {
			t.Fatal(err)
		}
		res, err := dynamics.RunAsync(pop, Rule{}, dynamics.AsyncConfig{
			Graph:     g,
			Scheduler: s,
			Rand:      rng.At(11, trial),
			MaxTime:   1e7,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Winner == 0 {
			winsZero++
		}
	}
	rate := float64(winsZero) / trials
	// True win probability is 1/4; allow a generous statistical band.
	if rate < 0.15 || rate > 0.35 {
		t.Fatalf("color 0 (25%% support) won %.1f%% of runs, want ~25%%", 100*rate)
	}
}
