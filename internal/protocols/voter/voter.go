// Package voter implements the classic Voter dynamic: on activation a node
// samples one node uniformly at random and adopts its color unconditionally.
//
// Voter reaches consensus on the clique in Θ(n) parallel time in
// expectation but offers no plurality guarantee — the winner is each color
// with probability proportional to its initial support. It serves as the
// naive baseline the Two-Choices family is measured against.
package voter

import (
	"plurality/internal/occupancy"
	"plurality/internal/population"
	"plurality/internal/protocols/dynamics"
	"plurality/internal/rng"
)

// Rule is the Voter update rule.
type Rule struct{}

var (
	_ dynamics.Rule      = Rule{}
	_ occupancy.Kerneled = Rule{}
)

// OccupancyKernel implements occupancy.Kerneled: the exact count-level
// transition law that lets the count-collapsed engine leap over no-op
// activations on the clique.
func (Rule) OccupancyKernel() occupancy.Kernel { return occupancy.VoterKernel{} }

// Name implements dynamics.Rule.
func (Rule) Name() string { return "voter" }

// SampleCount implements dynamics.Rule.
func (Rule) SampleCount() int { return 1 }

// Next implements dynamics.Rule: adopt the sampled color.
func (Rule) Next(_ *rng.RNG, _ population.Color, sampled []population.Color) population.Color {
	return sampled[0]
}
