package jmajority

import (
	"math"
	"testing"

	"plurality/internal/occupancy"
	"plurality/internal/population"
	"plurality/internal/rng"
)

// majorityLaw enumerates every (own color, sample tuple) combination and
// returns the exact per-activation transition probabilities P[from][to]
// (from != to) plus the total effective probability. The rule's only
// randomness is the uniform tie-break, whose law is known per tuple (1/ties
// for each tied-top color), so the enumeration is exact — the ground truth
// the DP kernel is checked against.
func majorityLaw(counts []int64, withSelf bool, j int) (p [][]float64, pEff float64) {
	k := len(counts)
	var n int64
	for _, v := range counts {
		n += v
	}
	nf := float64(n)
	p = make([][]float64, k)
	for i := range p {
		p[i] = make([]float64, k)
	}
	tuple := make([]int, j)
	occ := make([]int, k)
	for c := 0; c < k; c++ {
		if counts[c] == 0 {
			continue
		}
		pOwn := float64(counts[c]) / nf
		q := make([]float64, k)
		for d := 0; d < k; d++ {
			nd := float64(counts[d])
			if withSelf {
				q[d] = nd / nf
			} else {
				if d == c {
					nd--
				}
				q[d] = nd / (nf - 1)
			}
		}
		for i := range tuple {
			tuple[i] = 0
		}
		for {
			prob := pOwn
			for i := range occ {
				occ[i] = 0
			}
			for _, v := range tuple {
				prob *= q[v]
				occ[v]++
			}
			if prob > 0 {
				best, ties := 0, 0
				for _, v := range occ {
					switch {
					case v > best:
						best, ties = v, 1
					case v == best && v > 0:
						ties++
					}
				}
				for d, v := range occ {
					if v == best && d != c {
						p[c][d] += prob / float64(ties)
						pEff += prob / float64(ties)
					}
				}
			}
			i := 0
			for ; i < j; i++ {
				tuple[i]++
				if tuple[i] < k {
					break
				}
				tuple[i] = 0
			}
			if i == j {
				break
			}
		}
	}
	return p, pEff
}

func testHistograms() [][]int64 {
	return [][]int64{
		{5, 3},
		{4, 3, 2},
		{10, 1, 1},
		{7, 7, 7},
		{1, 1, 2, 9},
		{25, 0, 3, 2}, // an empty color must not disturb the law
	}
}

func TestNewValidation(t *testing.T) {
	for _, j := range []int{0, -1, MaxJ + 1} {
		if _, err := New(j); err == nil {
			t.Errorf("New(%d): no error", j)
		}
	}
	r, err := New(5)
	if err != nil || r.J != 5 || r.SampleCount() != 5 || r.Name() != "j-majority:5" {
		t.Fatalf("New(5) = %+v, %v", r, err)
	}
}

// TestKernelEffectiveProbExact checks the DP kernel against full
// enumeration of the rule for a spread of sample sizes, histograms and
// sampling modes.
func TestKernelEffectiveProbExact(t *testing.T) {
	for _, j := range []int{1, 2, 3, 4, 5} {
		kern := &Kernel{J: j}
		for _, counts := range testHistograms() {
			for _, withSelf := range []bool{false, true} {
				_, wantEff := majorityLaw(counts, withSelf, j)
				var n int64
				for _, v := range counts {
					n += v
				}
				gotEff := kern.EffectiveProb(counts, n, withSelf)
				if math.Abs(gotEff-wantEff) > 1e-12 {
					t.Errorf("j=%d withSelf=%v counts=%v: EffectiveProb = %.15f, enumeration %.15f",
						j, withSelf, counts, gotEff, wantEff)
				}
			}
		}
	}
}

// TestKernelReproducesVoterAnd3Majority pins the family's anchor points at
// the kernel level: j = 1 must equal the Voter kernel and j = 3 the
// 3-Majority kernel exactly (the built-in's first-sample tie-break is
// uniform over the tied colors by exchangeability).
func TestKernelReproducesVoterAnd3Majority(t *testing.T) {
	for _, counts := range testHistograms() {
		var n int64
		for _, v := range counts {
			n += v
		}
		for _, withSelf := range []bool{false, true} {
			j1 := (&Kernel{J: 1}).EffectiveProb(counts, n, withSelf)
			voter := occupancy.VoterKernel{}.EffectiveProb(counts, n, withSelf)
			if math.Abs(j1-voter) > 1e-12 {
				t.Errorf("withSelf=%v counts=%v: j=1 EffectiveProb %.15f != voter %.15f",
					withSelf, counts, j1, voter)
			}
			j3 := (&Kernel{J: 3}).EffectiveProb(counts, n, withSelf)
			maj := occupancy.ThreeMajorityKernel{}.EffectiveProb(counts, n, withSelf)
			if math.Abs(j3-maj) > 1e-12 {
				t.Errorf("withSelf=%v counts=%v: j=3 EffectiveProb %.15f != 3-majority %.15f",
					withSelf, counts, j3, maj)
			}
		}
	}
}

// TestKernelTransitionDistribution checks SampleTransition's empirical
// (from, to) frequencies against the exact conditional law by chi-square at
// the 99.9th percentile. Deterministic seeds: a failure means a wrong
// kernel, not bad luck.
func TestKernelTransitionDistribution(t *testing.T) {
	counts := []int64{6, 3, 2, 1}
	var n int64
	for _, v := range counts {
		n += v
	}
	const draws = 120_000
	k := len(counts)
	for _, j := range []int{2, 4} {
		kern := &Kernel{J: j}
		for _, withSelf := range []bool{false, true} {
			p, pEff := majorityLaw(counts, withSelf, j)
			r := rng.New(99)
			observed := make([]int, k*k)
			for i := 0; i < draws; i++ {
				from, to := kern.SampleTransition(r, counts, n, withSelf)
				if from == to || from < 0 || to < 0 || from >= k || to >= k {
					t.Fatalf("j=%d: SampleTransition returned (%d, %d)", j, from, to)
				}
				observed[from*k+to]++
			}
			var stat float64
			df := -1 // cells sum to draws, so one degree is lost
			for from := 0; from < k; from++ {
				for to := 0; to < k; to++ {
					expected := p[from][to] / pEff * draws
					if expected < 5 {
						if observed[from*k+to] > 0 && expected == 0 {
							t.Errorf("j=%d withSelf=%v: impossible transition (%d→%d) sampled %d times",
								j, withSelf, from, to, observed[from*k+to])
						}
						continue
					}
					d := float64(observed[from*k+to]) - expected
					stat += d * d / expected
					df++
				}
			}
			if df < 1 {
				t.Fatalf("j=%d: degenerate chi-square setup", j)
			}
			// Wilson–Hilferty 99.9th percentile approximation.
			z := 3.0902
			dff := float64(df)
			crit := dff * math.Pow(1-2/(9*dff)+z*math.Sqrt(2/(9*dff)), 3)
			if stat > crit {
				t.Errorf("j=%d withSelf=%v: transition chi-square %.1f > %.1f (df %d)",
					j, withSelf, stat, crit, df)
			}
		}
	}
}

// TestNextMajorityAndTies: deterministic majorities are adopted; the j=1
// rule is Voter; two-way ties break uniformly (chi-square on one degree).
func TestNextMajorityAndTies(t *testing.T) {
	r := rng.New(42)
	if got := (Rule{J: 3}).Next(r, 5, []population.Color{1, 2, 1}); got != 1 {
		t.Fatalf("majority {1,2,1}: got %d, want 1", got)
	}
	if got := (Rule{J: 1}).Next(r, 5, []population.Color{3}); got != 3 {
		t.Fatalf("j=1: got %d, want the sample", got)
	}
	const draws = 20000
	var first int
	for i := 0; i < draws; i++ {
		switch got := (Rule{J: 2}).Next(r, 5, []population.Color{0, 1}); got {
		case 0:
			first++
		case 1:
		default:
			t.Fatalf("tie-break returned %d", got)
		}
	}
	d := float64(first) - draws/2
	if stat := d * d / (draws / 4); stat > 10.83 { // chi-square df=1, 99.9th pct
		t.Fatalf("tie-break biased: %d/%d heads (chi-square %.1f)", first, draws, stat)
	}
}
