// Package jmajority implements the parameterized j-Majority dynamic: on
// activation a node samples j nodes uniformly at random with replacement
// and adopts the most frequent color among the samples, breaking ties
// uniformly at random among the tied colors.
//
// The sample size turns "which rule?" into a sweepable axis of the
// h-majority family studied in the gossip-model plurality-consensus
// literature (Becchetti et al.; Ghaffari & Parter): j = 1 is exactly the
// Voter dynamic, and j = 3 is distributionally identical to 3-Majority —
// the built-in's first-sample tie-break is uniform over the three tied
// colors by exchangeability of i.i.d. samples — while larger j buys
// stronger drift toward the plurality at a higher per-step sample cost.
//
// The count-level transition law has no product closed form for general j,
// so Kernel evaluates it exactly with a multinomial dynamic program over
// the sample composition (O(k²·j²) per adoption probability); it is
// verified against full enumeration of the rule like the built-in kernels.
package jmajority

import (
	"fmt"

	"plurality/internal/occupancy"
	"plurality/internal/population"
	"plurality/internal/protocols/dynamics"
	"plurality/internal/rng"
)

// MaxJ bounds the sample size: the kernel's DP tables and the per-node
// O(j²) majority scan stay cheap, and factorials up to MaxJ! remain exact
// in float64.
const MaxJ = 16

// Rule is the j-Majority update rule for a fixed sample size J.
type Rule struct {
	// J is the number of samples per activation (1 ≤ J ≤ MaxJ).
	J int
}

var (
	_ dynamics.Rule      = Rule{}
	_ occupancy.Kerneled = Rule{}
)

// New validates the sample size and returns the rule.
func New(j int) (Rule, error) {
	if j < 1 || j > MaxJ {
		return Rule{}, fmt.Errorf("jmajority: j = %d, want 1 <= j <= %d", j, MaxJ)
	}
	return Rule{J: j}, nil
}

// Name implements dynamics.Rule.
func (r Rule) Name() string { return fmt.Sprintf("j-majority:%d", r.J) }

// SampleCount implements dynamics.Rule.
func (r Rule) SampleCount() int { return r.J }

// Next implements dynamics.Rule: adopt the most frequent sampled color,
// ties broken uniformly at random (reservoir selection over the tied-top
// colors, so no per-call allocation).
func (Rule) Next(r *rng.RNG, _ population.Color, sampled []population.Color) population.Color {
	best := population.None
	bestCnt, ties := 0, 0
	for i := 0; i < len(sampled); i++ {
		c := sampled[i]
		dup := false
		for l := 0; l < i; l++ {
			if sampled[l] == c {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		cnt := 1
		for l := i + 1; l < len(sampled); l++ {
			if sampled[l] == c {
				cnt++
			}
		}
		switch {
		case cnt > bestCnt:
			best, bestCnt, ties = c, cnt, 1
		case cnt == bestCnt:
			ties++
			if r.Intn(ties) == 0 {
				best = c
			}
		}
	}
	return best
}

// OccupancyKernel implements occupancy.Kerneled. The kernel carries DP
// scratch, so each run gets a fresh instance.
func (r Rule) OccupancyKernel() occupancy.Kernel { return &Kernel{J: r.J} }

// Kernel is the exact count-level law of j-Majority. For an activated node
// with neighbor distribution q, the probability that color d is adopted is
//
//	P(A = d) = Σ_{m≥1} Σ_{t≥0} P(X_d = m, t other colors at m, rest < m) / (t+1)
//
// with X ~ Multinomial(j, q); the inner probability is evaluated by a
// dynamic program over the non-d colors that tracks (samples used, number
// of colors tied at m), carrying the multinomial weight q_e^x/x! per color
// so the composition count never has to be enumerated.
type Kernel struct {
	// J is the sample size.
	J int

	q        []float64 // neighbor law scratch
	g, gNext []float64 // DP tables, flattened (s, t)
	fact     []float64 // factorials 0! … J!
}

// init sizes the scratch for k colors (idempotent).
func (kn *Kernel) init(k int) {
	if len(kn.fact) == kn.J+1 && cap(kn.q) >= k {
		kn.q = kn.q[:k]
		return
	}
	kn.fact = make([]float64, kn.J+1)
	kn.fact[0] = 1
	for i := 1; i <= kn.J; i++ {
		kn.fact[i] = kn.fact[i-1] * float64(i)
	}
	size := (kn.J + 1) * (kn.J + 1)
	kn.g = make([]float64, size)
	kn.gNext = make([]float64, size)
	kn.q = make([]float64, k)
}

// neighborLaw fills kn.q with the sampling distribution seen by an
// activated node of color c (the clique's uniform draw, with or without
// the node itself).
func (kn *Kernel) neighborLaw(counts []int64, n int64, c int, withSelf bool) {
	nf := float64(n)
	if withSelf {
		for d, v := range counts {
			kn.q[d] = float64(v) / nf
		}
		return
	}
	for d, v := range counts {
		nd := float64(v)
		if d == c {
			nd--
		}
		kn.q[d] = nd / (nf - 1)
	}
}

// adoptProb returns P(adopted color = d) under the current kn.q.
func (kn *Kernel) adoptProb(d int) float64 {
	j := kn.J
	qd := kn.q[d]
	if qd <= 0 {
		return 0
	}
	var p float64
	qdPow := 1.0 // q_d^m, maintained incrementally
	for m := 1; m <= j; m++ {
		qdPow *= qd
		rest := j - m
		// tMax bounds the tie count: each tied color consumes m samples.
		tMax := 0
		if m > 0 {
			tMax = rest / m
		}
		width := tMax + 1
		// g[s*width+t]: Σ Π q_e^{x_e}/x_e! over assignments to the colors
		// processed so far with Σx = s, t colors at exactly m, all ≤ m.
		g := kn.g[:(rest+1)*width]
		for i := range g {
			g[i] = 0
		}
		g[0] = 1
		for e := range kn.q {
			if e == d || kn.q[e] <= 0 {
				continue
			}
			next := kn.gNext[:(rest+1)*width]
			for i := range next {
				next[i] = 0
			}
			qePow := 1.0
			for x := 0; x <= m && x <= rest; x++ {
				w := qePow / kn.fact[x]
				for s := 0; s+x <= rest; s++ {
					for t := 0; t <= tMax; t++ {
						v := g[s*width+t]
						if v == 0 {
							continue
						}
						nt := t
						if x == m {
							nt++
						}
						if nt > tMax {
							continue
						}
						next[(s+x)*width+nt] += v * w
					}
				}
				qePow *= kn.q[e]
			}
			copy(g, next)
		}
		base := kn.fact[j] / kn.fact[m] * qdPow
		for t := 0; t <= tMax; t++ {
			p += base * g[rest*width+t] / float64(t+1)
		}
	}
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// Flows implements occupancy.FlowKernel: in the fraction limit the
// neighbor law seen by every node is x itself (self-exclusion is an O(1/n)
// correction), so the adoption probability of color d is the same DP
// evaluated at q = x regardless of the mover's color, and
// F_cd = x_c · P(adopt = d). One DP pass per destination color, shared
// across all sources.
func (kn *Kernel) Flows(x, out []float64) {
	k := len(x)
	kn.init(k)
	copy(kn.q, x)
	for d := 0; d < k; d++ {
		p := kn.adoptProb(d)
		for c := 0; c < k; c++ {
			if c == d {
				out[c*k+d] = 0
				continue
			}
			out[c*k+d] = x[c] * p
		}
	}
}

// EffectiveProb implements occupancy.Kernel.
func (kn *Kernel) EffectiveProb(counts []int64, n int64, withSelf bool) float64 {
	kn.init(len(counts))
	nf := float64(n)
	var sum float64
	for c, v := range counts {
		if v == 0 {
			continue
		}
		kn.neighborLaw(counts, n, c, withSelf)
		if w := 1 - kn.adoptProb(c); w > 0 {
			sum += float64(v) * w
		}
	}
	return sum / nf
}

// SampleTransition implements occupancy.Kernel: own color c with
// probability proportional to n_c · P(adopt ≠ c), then the adopted color
// d ≠ c with probability proportional to P(adopt = d). Like the 3-Majority
// built-in, each stage evaluates its weights twice (total, then pick) to
// stay allocation-free beyond the kernel's own scratch.
func (kn *Kernel) SampleTransition(r *rng.RNG, counts []int64, n int64, withSelf bool) (from, to int) {
	kn.init(len(counts))
	leaveWeight := func(c int, f float64) float64 {
		if f == 0 {
			return 0
		}
		kn.neighborLaw(counts, n, c, withSelf)
		w := 1 - kn.adoptProb(c)
		if w < 0 {
			return 0
		}
		return f * w
	}
	var total float64
	for c, v := range counts {
		total += leaveWeight(c, float64(v))
	}
	from = occupancy.WeightedPick(r, total, counts, leaveWeight)
	kn.neighborLaw(counts, n, from, withSelf)
	var dTotal float64
	for d := range counts {
		if d == from {
			continue
		}
		dTotal += kn.adoptProb(d)
	}
	to = occupancy.WeightedPickExcept(r, dTotal, counts, from, func(d int, _ float64) float64 {
		return kn.adoptProb(d)
	})
	return from, to
}
