package protocols

import (
	"os"
	"strings"
	"testing"
)

func TestLookupResolvesCanonicalNamesAndAliases(t *testing.T) {
	for _, spec := range []string{
		"two-choices", "voter", "3-majority", "three-majority",
		"usd", "undecided-state", "undecided",
		"j-majority:3", "jmajority:5", "jmaj:1",
	} {
		d, rule, err := Lookup(spec)
		if err != nil {
			t.Errorf("Lookup(%q): %v", spec, err)
			continue
		}
		if rule == nil || d.Name == "" {
			t.Errorf("Lookup(%q) = %+v, nil rule", spec, d)
		}
		if rule.SampleCount() <= 0 {
			t.Errorf("Lookup(%q): rule samples %d nodes", spec, rule.SampleCount())
		}
	}
}

func TestLookupErrors(t *testing.T) {
	for _, spec := range []string{
		"",               // no name
		"nope",           // unregistered
		"voter:2",        // parameterless family with a parameter
		"j-majority",     // missing required parameter
		"j-majority:x",   // non-numeric parameter
		"j-majority:0",   // out of range
		"j-majority:999", // out of range
	} {
		if _, _, err := Lookup(spec); err == nil {
			t.Errorf("Lookup(%q): no error", spec)
		}
	}
}

// TestDescriptorIntegrity pins the registry's structural invariants: names
// and aliases are unique, every descriptor is fully documented, and every
// race spec resolves (the protocol-race sweep is built from them).
func TestDescriptorIntegrity(t *testing.T) {
	seen := map[string]bool{}
	for _, d := range Registry() {
		for _, name := range append([]string{d.Name}, d.Aliases...) {
			if seen[name] {
				t.Errorf("duplicate registered name %q", name)
			}
			seen[name] = true
		}
		if d.Summary == "" || d.Source == "" || d.Samples == "" {
			t.Errorf("%s: incomplete descriptor metadata: %+v", d.Name, d)
		}
		if (d.Param == "") != (d.ParamName == "") {
			t.Errorf("%s: Param and ParamName must be set together: %q / %q", d.Name, d.Param, d.ParamName)
		}
		if _, _, err := Lookup(d.RaceSpec); err != nil {
			t.Errorf("%s: race spec %q does not resolve: %v", d.Name, d.RaceSpec, err)
		}
		if _, ok := ByName(d.Name); !ok {
			t.Errorf("ByName(%q) failed", d.Name)
		}
	}
	if len(Names()) != len(Registry()) {
		t.Errorf("Names() returned %d entries for %d descriptors", len(Names()), len(Registry()))
	}
}

// TestValidateCounts pins the O(k)-memory guards every histogram entry
// point shares — they live on the descriptor so new protocols cannot skip
// them.
func TestValidateCounts(t *testing.T) {
	d, _, err := Lookup("two-choices")
	if err != nil {
		t.Fatal(err)
	}
	if n, err := d.ValidateCounts([]int64{600, 400}, false); err != nil || n != 1000 {
		t.Fatalf("good counts: n=%d err=%v", n, err)
	}
	cases := []struct {
		name   string
		counts []int64
		heap   bool
	}{
		{"negative", []int64{5, -1}, false},
		{"tiny total", []int64{1, 0}, false},
		{"heap-poisson", []int64{600, 400}, true},
	}
	for _, tc := range cases {
		if _, err := d.ValidateCounts(tc.counts, tc.heap); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
}

// TestREADMEProtocolTableInSync: the README's protocol table is generated
// from the registry; a registry change without the regenerated table is a
// doc bug this test catches.
func TestREADMEProtocolTableInSync(t *testing.T) {
	readme, err := os.ReadFile("../../README.md")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(readme), MarkdownTable()) {
		t.Errorf("README.md protocol table is out of sync with the registry; paste this over it:\n%s",
			MarkdownTable())
	}
}
