// Package threemajority implements the 3-Majority dynamic: on activation a
// node samples three nodes uniformly at random with replacement and adopts
// the majority color among the three samples; if all three differ it adopts
// the first sample.
//
// 3-Majority is the per-step-cheaper cousin of Two-Choices (it always moves,
// never stalls) studied in the plurality-consensus literature the paper
// builds on (e.g. Becchetti et al., Ghaffari & Parter); it is included as a
// comparison baseline for the experiment harness.
package threemajority

import (
	"plurality/internal/occupancy"
	"plurality/internal/population"
	"plurality/internal/protocols/dynamics"
	"plurality/internal/rng"
)

// Rule is the 3-Majority update rule.
type Rule struct{}

var (
	_ dynamics.Rule      = Rule{}
	_ occupancy.Kerneled = Rule{}
)

// OccupancyKernel implements occupancy.Kerneled: the exact count-level
// transition law that lets the count-collapsed engine leap over no-op
// activations on the clique.
func (Rule) OccupancyKernel() occupancy.Kernel { return occupancy.ThreeMajorityKernel{} }

// Name implements dynamics.Rule.
func (Rule) Name() string { return "3-majority" }

// SampleCount implements dynamics.Rule.
func (Rule) SampleCount() int { return 3 }

// Next implements dynamics.Rule: adopt the majority among the three
// samples; with three distinct samples, adopt the first.
func (Rule) Next(_ *rng.RNG, _ population.Color, sampled []population.Color) population.Color {
	if sampled[0] == sampled[1] || sampled[0] == sampled[2] {
		return sampled[0]
	}
	if sampled[1] == sampled[2] {
		return sampled[1]
	}
	return sampled[0]
}
