package threemajority

import (
	"testing"

	"plurality/internal/graph"
	"plurality/internal/population"
	"plurality/internal/protocols/dynamics"
	"plurality/internal/rng"
)

func TestRuleBasics(t *testing.T) {
	r := Rule{}
	if r.Name() != "3-majority" || r.SampleCount() != 3 {
		t.Fatalf("Name=%q SampleCount=%d", r.Name(), r.SampleCount())
	}
}

func TestNext(t *testing.T) {
	r := Rule{}
	tests := []struct {
		name    string
		sampled []population.Color
		want    population.Color
	}{
		{name: "all equal", sampled: []population.Color{4, 4, 4}, want: 4},
		{name: "first pair", sampled: []population.Color{2, 2, 5}, want: 2},
		{name: "outer pair", sampled: []population.Color{2, 5, 2}, want: 2},
		{name: "last pair", sampled: []population.Color{5, 2, 2}, want: 2},
		{name: "all distinct takes first", sampled: []population.Color{7, 8, 9}, want: 7},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := r.Next(nil, 0, tt.sampled); got != tt.want {
				t.Fatalf("Next(%v) = %d, want %d", tt.sampled, got, tt.want)
			}
		})
	}
}

func TestSyncThreeMajorityConvergesToPlurality(t *testing.T) {
	const n, k = 3000, 5
	counts, err := population.BiasedCounts(n, k, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	wins := 0
	const trials = 5
	for trial := 0; trial < trials; trial++ {
		pop, err := population.FromCounts(counts)
		if err != nil {
			t.Fatal(err)
		}
		g, err := graph.NewComplete(n)
		if err != nil {
			t.Fatal(err)
		}
		res, err := dynamics.RunSync(pop, Rule{}, dynamics.SyncConfig{
			Graph:     g,
			Rand:      rng.At(20, trial),
			MaxRounds: 100000,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Winner == 0 {
			wins++
		}
	}
	if wins < trials-1 {
		t.Fatalf("plurality won only %d/%d trials", wins, trials)
	}
}
