// Package twochoices implements the Two-Choices plurality dynamic of
// Cooper, Elsässer & Radzik (ICALP '14), the protocol analyzed by
// Theorem 1.1 of the paper: on activation a node samples two nodes
// uniformly at random with replacement and adopts their color if — and only
// if — the two sampled colors coincide.
//
// On the complete graph with initial bias c_1 − c_2 ≥ z·sqrt(n·ln n) the
// dynamic converges to the plurality color within O(n/c_1 · log n)
// synchronous rounds w.h.p., but needs Ω(n/c_1) rounds on the equal-runner-up
// instance — the Ω(k) barrier the paper's OneExtraBit and asynchronous
// protocols are built to beat.
package twochoices

import (
	"plurality/internal/occupancy"
	"plurality/internal/population"
	"plurality/internal/protocols/dynamics"
	"plurality/internal/rng"
)

// Rule is the Two-Choices update rule.
type Rule struct{}

var (
	_ dynamics.Rule      = Rule{}
	_ occupancy.Kerneled = Rule{}
)

// OccupancyKernel implements occupancy.Kerneled: the exact count-level
// transition law that lets the count-collapsed engine leap over no-op
// activations on the clique.
func (Rule) OccupancyKernel() occupancy.Kernel { return occupancy.TwoChoicesKernel{} }

// Name implements dynamics.Rule.
func (Rule) Name() string { return "two-choices" }

// SampleCount implements dynamics.Rule.
func (Rule) SampleCount() int { return 2 }

// Next implements dynamics.Rule: adopt the sampled color iff both samples
// agree.
func (Rule) Next(_ *rng.RNG, own population.Color, sampled []population.Color) population.Color {
	if sampled[0] == sampled[1] {
		return sampled[0]
	}
	return own
}
