package twochoices

import (
	"testing"

	"plurality/internal/graph"
	"plurality/internal/population"
	"plurality/internal/protocols/dynamics"
	"plurality/internal/rng"
	"plurality/internal/sched"
)

func TestRuleBasics(t *testing.T) {
	r := Rule{}
	if r.Name() != "two-choices" || r.SampleCount() != 2 {
		t.Fatalf("Name=%q SampleCount=%d", r.Name(), r.SampleCount())
	}
}

func TestNext(t *testing.T) {
	r := Rule{}
	tests := []struct {
		name    string
		own     population.Color
		sampled []population.Color
		want    population.Color
	}{
		{name: "agree adopt", own: 0, sampled: []population.Color{2, 2}, want: 2},
		{name: "agree own color", own: 1, sampled: []population.Color{1, 1}, want: 1},
		{name: "disagree keep", own: 0, sampled: []population.Color{1, 2}, want: 0},
		{name: "half agree keep", own: 3, sampled: []population.Color{3, 2}, want: 3},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := r.Next(nil, tt.own, tt.sampled); got != tt.want {
				t.Fatalf("Next(%d, %v) = %d, want %d", tt.own, tt.sampled, got, tt.want)
			}
		})
	}
}

// TestSyncConvergesToPluralityWithTheoremBias is the unit-scale version of
// experiment E1: with bias c_1 − c_2 = z·sqrt(n·ln n), synchronous
// Two-Choices converges to the plurality color.
func TestSyncConvergesToPluralityWithTheoremBias(t *testing.T) {
	const n, k = 4000, 4
	counts, err := population.GapSqrtCounts(n, k, 2)
	if err != nil {
		t.Fatal(err)
	}
	wins := 0
	const trials = 5
	for trial := 0; trial < trials; trial++ {
		pop, err := population.FromCounts(counts)
		if err != nil {
			t.Fatal(err)
		}
		g, err := graph.NewComplete(n)
		if err != nil {
			t.Fatal(err)
		}
		res, err := dynamics.RunSync(pop, Rule{}, dynamics.SyncConfig{
			Graph:     g,
			Rand:      rng.At(100, trial),
			MaxRounds: 100000,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Winner == 0 {
			wins++
		}
	}
	if wins < trials-1 {
		t.Fatalf("plurality won only %d/%d trials with theorem-level bias", wins, trials)
	}
}

// TestAsyncConverges checks the asynchronous (sequential-model) variant
// reaches consensus on the plurality color under a strong bias.
func TestAsyncConverges(t *testing.T) {
	const n = 3000
	counts, err := population.BiasedCounts(n, 3, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	pop, err := population.FromCounts(counts)
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.NewComplete(n)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.NewSequential(n, rng.New(200))
	if err != nil {
		t.Fatal(err)
	}
	res, err := dynamics.RunAsync(pop, Rule{}, dynamics.AsyncConfig{
		Graph:     g,
		Scheduler: s,
		Rand:      rng.New(201),
		MaxTime:   1e6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done || res.Winner != 0 {
		t.Fatalf("async two-choices failed: %+v", res)
	}
}

// TestTwoColorsNoBiasStillConverges: with k=2 and an even split the dynamic
// must still reach *some* consensus (symmetry broken by randomness).
func TestTwoColorsNoBiasStillConverges(t *testing.T) {
	const n = 1000
	pop, err := population.FromCounts([]int64{n / 2, n / 2})
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.NewComplete(n)
	if err != nil {
		t.Fatal(err)
	}
	res, err := dynamics.RunSync(pop, Rule{}, dynamics.SyncConfig{
		Graph:     g,
		Rand:      rng.New(300),
		MaxRounds: 100000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !pop.ConsensusOn(res.Winner) {
		t.Fatalf("no consensus: %v", pop.Counts())
	}
}
