// Package usd implements Undecided-State Dynamics (Becchetti, Clementi,
// Natale, Pasquale & Silvestri, "Plurality Consensus in the Gossip Model"):
// on activation a node samples one node uniformly at random. An undecided
// node adopts the sampled opinion (staying undecided when the sample is
// undecided too); a decided node that samples a *different* decided opinion
// drops to the undecided state, and keeps its opinion otherwise.
//
// The undecided state is the dynamic's whole trick: a color can only
// recruit nodes that are undecided, and minority colors bleed into the
// undecided pool faster than the plurality does, so the plurality wins in
// O(md·log n) rounds w.h.p. (md the monochromatic distance of the initial
// configuration) with much weaker bias requirements than 3-Majority. It is
// the canonical baseline between Voter and Two-Choices in the
// plurality-consensus literature the paper builds on.
//
// Per node the state is the current color or population.None (undecided);
// count-collapsed runs append one hidden histogram bucket for the
// undecided holders (see occupancy.Undecided) with an exact kernel, so the
// dynamic runs at n = 10⁸ like the kerneled built-ins.
package usd

import (
	"plurality/internal/occupancy"
	"plurality/internal/population"
	"plurality/internal/protocols/dynamics"
	"plurality/internal/rng"
)

// Rule is the per-node Undecided-State Dynamics update rule; undecided
// nodes hold population.None, and returning population.None from Next
// moves the activated node to the undecided state.
type Rule struct{}

var (
	_ dynamics.Rule       = Rule{}
	_ occupancy.Undecided = Rule{}
)

// Name implements dynamics.Rule.
func (Rule) Name() string { return "usd" }

// SampleCount implements dynamics.Rule.
func (Rule) SampleCount() int { return 1 }

// Next implements dynamics.Rule: an undecided node adopts the sampled
// opinion; a decided node keeps its opinion unless the sample is a
// different decided opinion, in which case it goes undecided.
func (Rule) Next(_ *rng.RNG, own population.Color, sampled []population.Color) population.Color {
	s := sampled[0]
	if own == population.None {
		if s != population.None {
			return s
		}
		return own
	}
	if s == population.None || s == own {
		return own
	}
	return population.None
}

// UndecidedRule implements occupancy.Undecided: the histogram-convention
// form of the rule, in which bucket k plays the undecided state.
func (Rule) UndecidedRule(k int) occupancy.Rule { return HistRule{Colors: k} }

// HistRule is the count-collapsed form of Undecided-State Dynamics: it
// operates on k+1 histogram buckets where bucket Colors (the last) holds
// the undecided nodes, because a histogram cannot store population.None.
// It is distributionally identical to Rule; the occupancy engine installs
// it via Rule's UndecidedRule hook.
type HistRule struct {
	// Colors is the number of opinion colors k; bucket index Colors is the
	// undecided state.
	Colors int
}

var (
	_ occupancy.Rule     = HistRule{}
	_ occupancy.Kerneled = HistRule{}
)

// Name implements occupancy.Rule.
func (HistRule) Name() string { return "usd" }

// SampleCount implements occupancy.Rule.
func (HistRule) SampleCount() int { return 1 }

// Next implements occupancy.Rule under the bucket convention.
func (h HistRule) Next(_ *rng.RNG, own population.Color, sampled []population.Color) population.Color {
	und := population.Color(h.Colors)
	s := sampled[0]
	if own == und {
		if s != und {
			return s
		}
		return own
	}
	if s == und || s == own {
		return own
	}
	return und
}

// OccupancyKernel implements occupancy.Kerneled: the exact count-level
// transition law that lets the count-collapsed engine leap over no-op
// activations on the clique.
func (HistRule) OccupancyKernel() occupancy.Kernel { return Kernel{} }

// Kernel is the count-level law of Undecided-State Dynamics on k+1 buckets
// (the last one undecided). Writing D = Σ n_c over the decided colors,
// S₂ = Σ n_c² and u for the undecided count, the effective transitions are
//
//	c → undecided  with weight n_c·(D − n_c)  (decided node samples a
//	                different decided opinion), and
//	undecided → d  with weight u·n_d          (undecided node samples a
//	                decided opinion),
//
// for a total effective probability of (D² − S₂ + u·D)/(n·(n−1)) without
// self-sampling and (D² − S₂ + u·D)/n² with it — the numerators coincide
// because excluding the activated node removes only same-color (c = d)
// pairings, which are never effective.
type Kernel struct{}

// decidedMoments returns D and S₂ over the decided buckets.
func decidedMoments(counts []int64) (d, s2 float64) {
	for _, v := range counts[:len(counts)-1] {
		f := float64(v)
		d += f
		s2 += f * f
	}
	return d, s2
}

// Flows implements occupancy.FlowKernel on the k+1-bucket convention: with
// decided mass D = Σ x_c and undecided fraction u, a decided color c bleeds
// into the undecided pool at F_{c,und} = x_c·(D − x_c) and the pool refills
// decided colors at F_{und,d} = u·x_d; decided-to-decided flow is zero (a
// disagreeing node always passes through the undecided state).
func (Kernel) Flows(x, out []float64) {
	k := len(x)
	und := k - 1
	var d float64
	for _, f := range x[:und] {
		d += f
	}
	u := x[und]
	for c := 0; c < k; c++ {
		for e := 0; e < k; e++ {
			out[c*k+e] = 0
		}
	}
	for c := 0; c < und; c++ {
		out[c*k+und] = x[c] * (d - x[c])
		out[und*k+c] = u * x[c]
	}
}

// EffectiveProb implements occupancy.Kernel.
func (Kernel) EffectiveProb(counts []int64, n int64, withSelf bool) float64 {
	d, s2 := decidedMoments(counts)
	u := float64(counts[len(counts)-1])
	nf := float64(n)
	qden := nf - 1
	if withSelf {
		qden = nf
	}
	return (d*d - s2 + u*d) / (nf * qden)
}

// SampleTransition implements occupancy.Kernel: the source is a decided
// color c with weight n_c·(D − n_c) or the undecided bucket with weight
// u·D; a decided source always sinks into the undecided bucket, an
// undecided source sinks into decided color d with weight n_d.
func (Kernel) SampleTransition(r *rng.RNG, counts []int64, n int64, withSelf bool) (from, to int) {
	und := len(counts) - 1
	d, s2 := decidedMoments(counts)
	u := float64(counts[und])
	from = occupancy.WeightedPick(r, d*d-s2+u*d, counts, func(c int, f float64) float64 {
		if c == und {
			return f * d
		}
		return f * (d - f)
	})
	if from != und {
		return from, und
	}
	to = occupancy.WeightedPickExcept(r, d, counts, und, func(_ int, f float64) float64 { return f })
	return from, to
}
