package usd

import (
	"math"
	"testing"

	"plurality/internal/graph"
	"plurality/internal/occupancy"
	"plurality/internal/population"
	"plurality/internal/protocols/dynamics"
	"plurality/internal/rng"
	"plurality/internal/sched"
)

// exactLaw enumerates the law of one USD activation on the k+1-bucket
// histogram (last bucket undecided): the per-pair transition probabilities
// P[from][to] plus the total effective probability. USD samples a single
// node and is deterministic given the sample, so the enumeration is exact —
// the ground truth the closed-form kernel is checked against.
func exactLaw(counts []int64, withSelf bool) (p [][]float64, pEff float64) {
	b := len(counts)
	var n int64
	for _, v := range counts {
		n += v
	}
	nf := float64(n)
	rule := HistRule{Colors: b - 1}
	p = make([][]float64, b)
	for i := range p {
		p[i] = make([]float64, b)
	}
	sampled := make([]population.Color, 1)
	for c := 0; c < b; c++ {
		if counts[c] == 0 {
			continue
		}
		pOwn := float64(counts[c]) / nf
		for d := 0; d < b; d++ {
			nd := float64(counts[d])
			var q float64
			if withSelf {
				q = nd / nf
			} else {
				if d == c {
					nd--
				}
				q = nd / (nf - 1)
			}
			if q <= 0 {
				continue
			}
			sampled[0] = population.Color(d)
			if next := rule.Next(nil, population.Color(c), sampled); int(next) != c {
				p[c][next] += pOwn * q
				pEff += pOwn * q
			}
		}
	}
	return p, pEff
}

// histograms are (k decided buckets, undecided last); they cover empty
// colors, empty and dominant undecided pools.
func testHistograms() [][]int64 {
	return [][]int64{
		{5, 3, 0},
		{4, 3, 2, 6},
		{10, 1, 1, 0},
		{7, 0, 3, 5},
		{1, 1, 2, 9, 4},
		{2, 0, 0, 29},
	}
}

// TestKernelEffectiveProbExact checks the kernel's closed form against full
// enumeration of the rule on a spread of histograms, in both sampling
// modes — the same gate the built-in kernels pass.
func TestKernelEffectiveProbExact(t *testing.T) {
	for _, counts := range testHistograms() {
		for _, withSelf := range []bool{false, true} {
			_, wantEff := exactLaw(counts, withSelf)
			var n int64
			for _, v := range counts {
				n += v
			}
			gotEff := Kernel{}.EffectiveProb(counts, n, withSelf)
			if math.Abs(gotEff-wantEff) > 1e-12 {
				t.Errorf("withSelf=%v counts=%v: EffectiveProb = %.15f, enumeration %.15f",
					withSelf, counts, gotEff, wantEff)
			}
		}
	}
}

// TestKernelTransitionDistribution checks SampleTransition's empirical
// (from, to) frequencies against the exact conditional law by chi-square at
// the 99.9th percentile. Deterministic seeds: a failure means a wrong
// kernel, not bad luck.
func TestKernelTransitionDistribution(t *testing.T) {
	counts := []int64{6, 3, 2, 4} // 3 colors + 4 undecided
	var n int64
	for _, v := range counts {
		n += v
	}
	const draws = 200_000
	b := len(counts)
	for _, withSelf := range []bool{false, true} {
		p, pEff := exactLaw(counts, withSelf)
		r := rng.New(99)
		observed := make([]int, b*b)
		for i := 0; i < draws; i++ {
			from, to := Kernel{}.SampleTransition(r, counts, n, withSelf)
			if from == to || from < 0 || to < 0 || from >= b || to >= b {
				t.Fatalf("SampleTransition returned (%d, %d)", from, to)
			}
			observed[from*b+to]++
		}
		var stat float64
		df := -1 // cells sum to draws, so one degree is lost
		for from := 0; from < b; from++ {
			for to := 0; to < b; to++ {
				expected := p[from][to] / pEff * draws
				if expected < 5 {
					if observed[from*b+to] > 0 && expected == 0 {
						t.Errorf("withSelf=%v: impossible transition (%d→%d) sampled %d times",
							withSelf, from, to, observed[from*b+to])
					}
					continue
				}
				d := float64(observed[from*b+to]) - expected
				stat += d * d / expected
				df++
			}
		}
		if df < 1 {
			t.Fatalf("degenerate chi-square setup")
		}
		// Wilson–Hilferty 99.9th percentile approximation.
		z := 3.0902
		dff := float64(df)
		crit := dff * math.Pow(1-2/(9*dff)+z*math.Sqrt(2/(9*dff)), 3)
		if stat > crit {
			t.Errorf("withSelf=%v: transition chi-square %.1f > %.1f (df %d)", withSelf, stat, crit, df)
		}
	}
}

// TestHistRuleMatchesPerNodeRule: the bucket-convention rule must be the
// per-node rule under the mapping None ↔ bucket k, for every (own, sample)
// pair.
func TestHistRuleMatchesPerNodeRule(t *testing.T) {
	const k = 3
	hist := HistRule{Colors: k}
	toBucket := func(c population.Color) population.Color {
		if c == population.None {
			return k
		}
		return c
	}
	states := []population.Color{0, 1, 2, population.None}
	for _, own := range states {
		for _, s := range states {
			got := hist.Next(nil, toBucket(own), []population.Color{toBucket(s)})
			want := toBucket(Rule{}.Next(nil, own, []population.Color{s}))
			if got != want {
				t.Errorf("own=%d sample=%d: hist rule %d, per-node rule maps to %d", own, s, got, want)
			}
		}
	}
}

// TestKernelWalkConservesHistogram applies the kernel's transitions
// directly and checks the conservation invariant the histogram engines
// lean on: holders + undecided == n after every single transition.
func TestKernelWalkConservesHistogram(t *testing.T) {
	counts := []int64{40, 30, 20, 10}
	var n int64
	for _, v := range counts {
		n += v
	}
	r := rng.New(7)
	for step := 0; step < 5000; step++ {
		from, to := Kernel{}.SampleTransition(r, counts, n, false)
		counts[from]--
		counts[to]++
		var total int64
		for _, v := range counts {
			if v < 0 {
				t.Fatalf("step %d: negative bucket after (%d→%d): %v", step, from, to, counts)
			}
			total += v
		}
		if total != n {
			t.Fatalf("step %d: histogram total %d != n=%d after (%d→%d): %v", step, total, n, from, to, counts)
		}
		if counts[from] == 0 && from != len(counts)-1 {
			// A color can die; the walk continues regardless.
			continue
		}
	}
}

// TestPerNodeConservesHistogram is the per-node half of the conservation
// property: across every delivered tick of a USD run (the OnTick observer
// forces the per-node engine), holders + undecided must equal n, and the
// cached counts must stay consistent with the color vector.
func TestPerNodeConservesHistogram(t *testing.T) {
	const n = 300
	pop, err := population.FromCounts([]int64{150, 90, 60})
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.NewComplete(n)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.NewPoisson(n, 1, rng.At(5, 0))
	if err != nil {
		t.Fatal(err)
	}
	sawUndecided := false
	res, err := dynamics.RunAsync(pop, Rule{}, dynamics.AsyncConfig{
		Graph:     g,
		Scheduler: s,
		Rand:      rng.At(5, 1),
		MaxTime:   1e6,
		OnTick: func(_ sched.Tick, p *population.Population) {
			total := p.Undecided()
			for c := 0; c < p.K(); c++ {
				total += p.Count(population.Color(c))
			}
			if total != n {
				t.Fatalf("holders + undecided = %d != n = %d mid-run", total, n)
			}
			if p.Undecided() > 0 {
				sawUndecided = true
			}
		},
	})
	if err != nil || !res.Done {
		t.Fatalf("res = %+v, err = %v", res, err)
	}
	if !sawUndecided {
		t.Fatal("USD run never parked a node in the undecided state")
	}
	if res.Undecided != 0 || pop.Undecided() != 0 {
		t.Fatalf("consensus with undecided nodes left: %+v, pop undecided %d", res, pop.Undecided())
	}
	if !pop.ConsensusOn(res.Winner) {
		t.Fatalf("winner %d is not the consensus color; counts %v", res.Winner, pop.Counts())
	}
}

// TestPerNodeSyncConverges: the synchronous engine commits staged None
// states literally (syncsim.CommitAll), so sync USD runs work end to end.
func TestPerNodeSyncConverges(t *testing.T) {
	pop, err := population.FromCounts([]int64{60, 30, 30})
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.NewComplete(120)
	if err != nil {
		t.Fatal(err)
	}
	res, err := dynamics.RunSync(pop, Rule{}, dynamics.SyncConfig{
		Graph:     g,
		Rand:      rng.New(9),
		MaxRounds: 100000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done || res.Undecided != 0 || !pop.ConsensusOn(res.Winner) {
		t.Fatalf("res = %+v, counts %v, undecided %d", res, pop.Counts(), pop.Undecided())
	}
}

// TestOccupancyRunConverges: the count-collapsed engine (leap and tick
// modes) drives USD to consensus on the plurality under bias, ending with
// an empty undecided pool and a conserved histogram.
func TestOccupancyRunConverges(t *testing.T) {
	for _, force := range []bool{false, true} {
		counts := []int64{600, 300, 300}
		s, err := sched.NewPoisson(1200, 1, rng.At(11, 0))
		if err != nil {
			t.Fatal(err)
		}
		res, err := occupancy.Run(counts, Rule{}, occupancy.Config{
			Scheduler: s,
			Rand:      rng.At(11, 1),
			MaxTime:   1e6,
			ForceTick: force,
		})
		if err != nil {
			t.Fatalf("force=%v: %v", force, err)
		}
		if !res.Done || res.Undecided != 0 {
			t.Fatalf("force=%v: %+v", force, res)
		}
		var total int64
		for c, v := range counts {
			total += v
			if v != 0 && population.Color(c) != res.Winner {
				t.Fatalf("force=%v: final histogram %v not a consensus on %d", force, counts, res.Winner)
			}
		}
		if total != 1200 {
			t.Fatalf("force=%v: histogram total %d != 1200", force, total)
		}
	}
}

// TestOccupancyRunInitialUndecided: Config.Undecided seeds the hidden
// bucket; the run still converges and conserves holders + undecided == n.
func TestOccupancyRunInitialUndecided(t *testing.T) {
	counts := []int64{500, 250}
	s, err := sched.NewPoisson(1000, 1, rng.At(3, 0))
	if err != nil {
		t.Fatal(err)
	}
	res, err := occupancy.Run(counts, Rule{}, occupancy.Config{
		Scheduler: s,
		Rand:      rng.At(3, 1),
		MaxTime:   1e6,
		Undecided: 250,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done || res.Undecided != 0 || counts[res.Winner] != 1000 {
		t.Fatalf("res = %+v, counts %v", res, counts)
	}
}

// TestOccupancyRejectsAllUndecided: a start without a single decided
// holder is an absorbing dead state and must be rejected, as must a
// negative undecided count and an undecided count on a rule without an
// undecided state.
func TestOccupancyRejectsBadUndecided(t *testing.T) {
	mk := func(n int) sched.Scheduler {
		s, err := sched.NewPoisson(n, 1, rng.At(1, 0))
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	if _, err := occupancy.Run([]int64{0, 0}, Rule{}, occupancy.Config{
		Scheduler: mk(10), Rand: rng.At(1, 1), MaxTime: 1, Undecided: 10,
	}); err == nil {
		t.Error("all-undecided start: no error")
	}
	if _, err := occupancy.Run([]int64{5, 5}, Rule{}, occupancy.Config{
		Scheduler: mk(10), Rand: rng.At(1, 1), MaxTime: 1, Undecided: -1,
	}); err == nil {
		t.Error("negative undecided: no error")
	}
}
