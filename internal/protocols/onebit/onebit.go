// Package onebit implements OneExtraBit, the synchronous plurality-consensus
// protocol of §2 of the paper (Theorem 1.2), which augments Two-Choices with
// one extra bit of memory per node and push-pull style Bit-Propagation.
//
// The protocol proceeds in phases. Each phase consists of:
//
//  1. One Two-Choices round: every node samples two nodes uniformly at
//     random with replacement; if their colors coincide the node adopts that
//     color *and sets its bit* — so right after this round the number of
//     bit-set nodes of color C_j concentrates around c_j²/n, quadratically
//     favouring the plurality.
//  2. Θ(log k + log log n) Bit-Propagation rounds: every bitless node
//     samples one node per round; upon sampling a bit-set node it adopts
//     that node's color and sets its own bit. This spreads the (quadratically
//     biased) post-Two-Choices distribution to the whole graph while — by
//     the Pólya-urn argument of §3.1 — essentially preserving it.
//  3. Bits are cleared and the next phase begins.
//
// Per phase the relative advantage squares, c'_1/c'_j ≥ (1−o(1))·(c_1/c_j)²,
// so O(log(c_1/(c_1−c_2)) + log log n) phases suffice — the run time of
// Theorem 1.2 — compared to Two-Choices' Ω(k) barrier.
package onebit

import (
	"errors"
	"fmt"
	"math"

	"plurality/internal/graph"
	"plurality/internal/population"
	"plurality/internal/rng"
)

// ErrPhaseLimit reports a run that exhausted its phase budget before
// reaching consensus.
var ErrPhaseLimit = errors.New("onebit: phase limit exceeded")

// ErrStopped reports a run interrupted by its Stop hook (context
// cancellation at the public layer) before consensus or the phase budget.
var ErrStopped = errors.New("onebit: run stopped")

// PhaseInfo is delivered to the OnPhase observer after each phase.
type PhaseInfo struct {
	// Phase is the zero-based phase index.
	Phase int
	// BitsAfterTwoChoices is the number of bit-set nodes right after the
	// Two-Choices round (concentrates around Σ c_j²/n).
	BitsAfterTwoChoices int
	// BitsAfterPropagation is the number of bit-set nodes at the end of
	// the Bit-Propagation sub-phase (close to n when the sub-phase length
	// is sufficient).
	BitsAfterPropagation int
	// Counts is the color histogram at the end of the phase.
	Counts []int64
}

// Config configures a OneExtraBit run.
type Config struct {
	// Graph is the communication topology. Required.
	Graph graph.Graph
	// Rand drives all sampling. Required.
	Rand *rng.RNG
	// MaxPhases bounds the run. Required (> 0).
	MaxPhases int
	// PropagationRounds is the length of the Bit-Propagation sub-phase.
	// Zero selects the theorem schedule ⌈log₂k + log₂log₂n⌉ + 4.
	PropagationRounds int
	// OnPhase, if set, observes each completed phase.
	OnPhase func(PhaseInfo)
	// Stop, if non-nil, is polled at every synchronous round boundary;
	// returning true abandons the run with ErrStopped and the progress made
	// so far.
	Stop func() bool
}

// Result describes a completed run.
type Result struct {
	// Phases executed (including the final, possibly partial one).
	Phases int
	// Rounds is the total number of synchronous rounds across all
	// sub-phases.
	Rounds int
	// Done reports whether consensus was reached.
	Done bool
	// Winner is the consensus color if Done, else the current plurality.
	Winner population.Color
}

// DefaultPropagationRounds returns the theorem-prescribed Bit-Propagation
// sub-phase length for n nodes and k colors: the pull process needs
// ~log₂ k rounds to take the bit-set fraction from 1/k to 1/2 and
// ~log₂ log₂ n more to absorb the stragglers, plus constant slack.
func DefaultPropagationRounds(n, k int) int {
	if n < 2 {
		return 1
	}
	lk := math.Log2(float64(k))
	if lk < 0 {
		lk = 0
	}
	lln := math.Log2(math.Log2(float64(n)) + 1)
	if lln < 0 {
		lln = 0
	}
	return int(math.Ceil(lk+lln)) + 4
}

// Run executes OneExtraBit on pop until consensus or cfg.MaxPhases.
func Run(pop *population.Population, cfg Config) (Result, error) {
	var rn Runner
	return rn.Run(pop, cfg)
}

// Runner executes OneExtraBit runs while reusing the three O(n) staging
// buffers (bit, next bit, next color) across calls, so trial loops stop
// paying an allocation-and-zero cost per run. Not safe for concurrent use.
type Runner struct {
	bit       []bool
	nextBit   []bool
	nextColor []population.Color
}

// grow returns buf resized to n and zeroed, reusing its backing array when
// the capacity suffices.
func grow[T bool | population.Color](buf []T, n int) []T {
	if cap(buf) < n {
		return make([]T, n)
	}
	buf = buf[:n]
	clear(buf)
	return buf
}

// Run is Runner's buffer-reusing equivalent of the package-level Run;
// results for a fixed seed are bit-identical.
func (rn *Runner) Run(pop *population.Population, cfg Config) (Result, error) {
	if err := validate(pop, cfg); err != nil {
		return Result{}, err
	}
	if pop.IsUnanimous() {
		return Result{Done: true, Winner: pop.Plurality()}, nil
	}

	n := pop.N()
	propRounds := cfg.PropagationRounds
	if propRounds == 0 {
		propRounds = DefaultPropagationRounds(n, pop.K())
	}

	rn.bit = grow(rn.bit, n)
	rn.nextBit = grow(rn.nextBit, n)
	rn.nextColor = grow(rn.nextColor, n)
	var (
		bit       = rn.bit
		nextBit   = rn.nextBit
		nextColor = rn.nextColor
		res       Result
	)

	for phase := 0; phase < cfg.MaxPhases; phase++ {
		if cfg.Stop != nil && cfg.Stop() {
			return stopResult(res, pop)
		}
		res.Phases = phase + 1
		info := PhaseInfo{Phase: phase}

		// Sub-phase 1: one Two-Choices round. The bit records whether the
		// node executed the adopt action (its two samples coincided).
		for u := 0; u < n; u++ {
			a := pop.ColorOf(cfg.Graph.Sample(cfg.Rand, u))
			b := pop.ColorOf(cfg.Graph.Sample(cfg.Rand, u))
			if a == b {
				nextColor[u] = a
				nextBit[u] = true
			} else {
				nextColor[u] = population.None
				nextBit[u] = false
			}
		}
		commit(pop, nextColor, bit, nextBit)
		res.Rounds++
		for u := 0; u < n; u++ {
			if bit[u] {
				info.BitsAfterTwoChoices++
			}
		}
		if pop.IsUnanimous() {
			finishPhase(cfg, &info, pop, bit)
			return finish(res, pop), nil
		}

		// Sub-phase 2: Bit-Propagation. Bitless nodes pull one sample per
		// round and join the bit-set crowd when they hit it.
		for round := 0; round < propRounds; round++ {
			if cfg.Stop != nil && cfg.Stop() {
				return stopResult(res, pop)
			}
			for u := 0; u < n; u++ {
				nextColor[u] = population.None
				nextBit[u] = bit[u]
				if bit[u] {
					continue
				}
				v := cfg.Graph.Sample(cfg.Rand, u)
				if bit[v] {
					nextColor[u] = pop.ColorOf(v)
					nextBit[u] = true
				}
			}
			commit(pop, nextColor, bit, nextBit)
			res.Rounds++
			if pop.IsUnanimous() {
				finishPhase(cfg, &info, pop, bit)
				return finish(res, pop), nil
			}
		}

		finishPhase(cfg, &info, pop, bit)
	}
	res.Winner = pop.Plurality()
	return res, fmt.Errorf("onebit: no consensus after %d phases: %w", cfg.MaxPhases, ErrPhaseLimit)
}

// commit applies the staged colors and bits simultaneously (the synchronous
// model's round boundary).
func commit(pop *population.Population, nextColor []population.Color, bit, nextBit []bool) {
	for u := range nextColor {
		if c := nextColor[u]; c != population.None {
			pop.SetColor(u, c)
		}
		bit[u] = nextBit[u]
	}
}

// finishPhase reports the phase to the observer and clears all bits
// (sub-phase 3, the cleanup step).
func finishPhase(cfg Config, info *PhaseInfo, pop *population.Population, bit []bool) {
	for u := range bit {
		if bit[u] {
			info.BitsAfterPropagation++
		}
		bit[u] = false
	}
	if cfg.OnPhase != nil {
		info.Counts = pop.Counts()
		cfg.OnPhase(*info)
	}
}

func finish(res Result, pop *population.Population) Result {
	res.Done = true
	res.Winner = pop.Plurality()
	return res
}

// stopResult reports an interrupted run: the progress so far plus the
// current plurality, alongside ErrStopped.
func stopResult(res Result, pop *population.Population) (Result, error) {
	res.Winner = pop.Plurality()
	return res, fmt.Errorf("onebit: stopped after %d phases: %w", res.Phases, ErrStopped)
}

func validate(pop *population.Population, cfg Config) error {
	switch {
	case pop == nil:
		return errors.New("onebit: nil population")
	case cfg.Graph == nil:
		return errors.New("onebit: nil graph")
	case cfg.Rand == nil:
		return errors.New("onebit: nil rand")
	case cfg.MaxPhases <= 0:
		return fmt.Errorf("onebit: MaxPhases = %d, want > 0", cfg.MaxPhases)
	case cfg.PropagationRounds < 0:
		return fmt.Errorf("onebit: PropagationRounds = %d, want >= 0", cfg.PropagationRounds)
	case cfg.Graph.N() != pop.N():
		return fmt.Errorf("onebit: graph has %d nodes, population %d", cfg.Graph.N(), pop.N())
	}
	return nil
}
