package onebit

import (
	"errors"
	"math"
	"testing"

	"plurality/internal/graph"
	"plurality/internal/population"
	"plurality/internal/rng"
)

func mustComplete(t *testing.T, n int) graph.Graph {
	t.Helper()
	g, err := graph.NewComplete(n)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestValidation(t *testing.T) {
	pop, err := population.FromCounts([]int64{5, 5})
	if err != nil {
		t.Fatal(err)
	}
	g := mustComplete(t, 10)
	r := rng.New(1)
	tests := []struct {
		name string
		pop  *population.Population
		cfg  Config
	}{
		{name: "nil population", cfg: Config{Graph: g, Rand: r, MaxPhases: 1}},
		{name: "nil graph", pop: pop, cfg: Config{Rand: r, MaxPhases: 1}},
		{name: "nil rand", pop: pop, cfg: Config{Graph: g, MaxPhases: 1}},
		{name: "zero phases", pop: pop, cfg: Config{Graph: g, Rand: r}},
		{name: "negative propagation", pop: pop, cfg: Config{Graph: g, Rand: r, MaxPhases: 1, PropagationRounds: -1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Run(tt.pop, tt.cfg); err == nil {
				t.Error("want validation error")
			}
		})
	}
}

func TestDefaultPropagationRounds(t *testing.T) {
	tests := []struct {
		n, k    int
		atLeast int
		atMost  int
	}{
		{n: 1000, k: 2, atLeast: 5, atMost: 12},
		{n: 1 << 20, k: 64, atLeast: 10, atMost: 18},
		{n: 1, k: 1, atLeast: 1, atMost: 1},
	}
	for _, tt := range tests {
		got := DefaultPropagationRounds(tt.n, tt.k)
		if got < tt.atLeast || got > tt.atMost {
			t.Errorf("DefaultPropagationRounds(%d, %d) = %d, want in [%d, %d]",
				tt.n, tt.k, got, tt.atLeast, tt.atMost)
		}
	}
	// Monotone-ish in k: more colors need more propagation.
	if DefaultPropagationRounds(1<<20, 256) <= DefaultPropagationRounds(1<<20, 2) {
		t.Error("propagation rounds should grow with k")
	}
}

func TestAlreadyUnanimous(t *testing.T) {
	pop, err := population.FromCounts([]int64{10})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(pop, Config{Graph: mustComplete(t, 10), Rand: rng.New(2), MaxPhases: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done || res.Phases != 0 || res.Winner != 0 {
		t.Fatalf("res = %+v", res)
	}
}

// TestConvergesWithTheoremBias is the unit-scale version of experiment E4:
// with bias z·sqrt(n)·log^{3/2} n, OneExtraBit elects the plurality color in
// few phases even with many colors.
func TestConvergesWithTheoremBias(t *testing.T) {
	const n, k = 20000, 16
	counts, err := population.GapSqrtPolylogCounts(n, k, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	wins := 0
	const trials = 5
	for trial := 0; trial < trials; trial++ {
		pop, err := population.FromCounts(counts)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(pop, Config{
			Graph:     mustComplete(t, n),
			Rand:      rng.At(30, trial),
			MaxPhases: 60,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Done {
			t.Fatalf("trial %d did not converge: %+v", trial, res)
		}
		if res.Winner == 0 {
			wins++
		}
	}
	if wins < trials-1 {
		t.Fatalf("plurality won %d/%d trials", wins, trials)
	}
}

// TestBeatsLinearPhaseGrowthInK: the phase count must stay polylogarithmic
// as k grows — the whole point of the extra bit (Theorem 1.2 vs the Ω(k)
// lower bound of Theorem 1.1).
func TestBeatsLinearPhaseGrowthInK(t *testing.T) {
	const n = 30000
	phasesAt := func(k int) int {
		counts, err := population.GapSqrtPolylogCounts(n, k, 0.6)
		if err != nil {
			t.Fatal(err)
		}
		pop, err := population.FromCounts(counts)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(pop, Config{
			Graph:     mustComplete(t, n),
			Rand:      rng.New(uint64(40 + k)),
			MaxPhases: 200,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Phases
	}
	p4 := phasesAt(4)
	p64 := phasesAt(64)
	// 16x more colors must cost far less than 16x more phases.
	if p64 > 4*p4+4 {
		t.Fatalf("phases grew too fast with k: k=4 -> %d, k=64 -> %d", p4, p64)
	}
}

// TestQuadraticBiasAmplification is the unit-scale version of experiment E5:
// across one phase, c'_1/c'_2 should be roughly (c_1/c_2)² (up to
// concentration slack), as claimed in §2 of the paper.
func TestQuadraticBiasAmplification(t *testing.T) {
	const n, k = 200000, 4
	counts, err := population.BiasedCounts(n, k, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	pop, err := population.FromCounts(counts)
	if err != nil {
		t.Fatal(err)
	}
	startRatio := float64(counts[0]) / float64(counts[1])

	var firstPhase *PhaseInfo
	_, err = Run(pop, Config{
		Graph:     mustComplete(t, n),
		Rand:      rng.New(50),
		MaxPhases: 1,
		OnPhase: func(info PhaseInfo) {
			if info.Phase == 0 {
				cp := info
				firstPhase = &cp
			}
		},
	})
	// One phase cannot reach consensus; only the phase budget error is
	// acceptable here.
	if err != nil && !errors.Is(err, ErrPhaseLimit) {
		t.Fatal(err)
	}
	if firstPhase == nil {
		t.Fatal("phase observer never fired")
	}

	var endRunnerUp int64
	for _, c := range firstPhase.Counts[1:] {
		if c > endRunnerUp {
			endRunnerUp = c
		}
	}
	endRatio := float64(firstPhase.Counts[0]) / float64(endRunnerUp)
	wantRatio := startRatio * startRatio
	if endRatio < wantRatio*0.8 || endRatio > wantRatio*1.3 {
		t.Fatalf("one-phase amplification %.3f -> %.3f, want ~%.3f (quadratic)",
			startRatio, endRatio, wantRatio)
	}
}

// TestBitCountsMatchTheory checks the §2 claim that right after the
// Two-Choices round the number of bit-set nodes concentrates around
// Σ c_j²/n, and that propagation then sets (almost) all bits.
func TestBitCountsMatchTheory(t *testing.T) {
	const n, k = 100000, 8
	counts, err := population.UniformCounts(n, k)
	if err != nil {
		t.Fatal(err)
	}
	pop, err := population.FromCounts(counts)
	if err != nil {
		t.Fatal(err)
	}
	var infos []PhaseInfo
	_, err = Run(pop, Config{
		Graph:     mustComplete(t, n),
		Rand:      rng.New(60),
		MaxPhases: 1,
		OnPhase:   func(info PhaseInfo) { infos = append(infos, info) },
	})
	if err != nil && !errors.Is(err, ErrPhaseLimit) {
		t.Fatal(err)
	}
	if len(infos) != 1 {
		t.Fatalf("got %d phase infos", len(infos))
	}
	var wantBits float64
	for _, c := range counts {
		wantBits += float64(c) * float64(c) / float64(n)
	}
	got := float64(infos[0].BitsAfterTwoChoices)
	if math.Abs(got-wantBits)/wantBits > 0.10 {
		t.Errorf("bits after two-choices = %.0f, want ~%.0f", got, wantBits)
	}
	if frac := float64(infos[0].BitsAfterPropagation) / n; frac < 0.99 {
		t.Errorf("bits after propagation cover only %.2f%% of nodes", 100*frac)
	}
}

func TestPhaseLimit(t *testing.T) {
	// One phase with zero propagation rounds cannot finish a 50/50 split
	// of 1000 nodes.
	pop, err := population.FromCounts([]int64{500, 500})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(pop, Config{
		Graph:             mustComplete(t, 1000),
		Rand:              rng.New(70),
		MaxPhases:         1,
		PropagationRounds: 1,
	})
	if !errors.Is(err, ErrPhaseLimit) {
		t.Fatalf("err = %v, want ErrPhaseLimit", err)
	}
	if res.Done {
		t.Fatal("cannot be done after one starved phase")
	}
	if res.Phases != 1 || res.Rounds != 2 {
		t.Fatalf("res = %+v, want 1 phase / 2 rounds", res)
	}
}

func TestRoundsAccounting(t *testing.T) {
	const n = 2000
	counts, err := population.BiasedCounts(n, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	pop, err := population.FromCounts(counts)
	if err != nil {
		t.Fatal(err)
	}
	const propRounds = 6
	res, err := Run(pop, Config{
		Graph:             mustComplete(t, n),
		Rand:              rng.New(80),
		MaxPhases:         100,
		PropagationRounds: propRounds,
	})
	if err != nil {
		t.Fatal(err)
	}
	maxRounds := res.Phases * (1 + propRounds)
	minRounds := (res.Phases - 1) * (1 + propRounds)
	if res.Rounds > maxRounds || res.Rounds <= minRounds {
		t.Fatalf("rounds = %d outside (%d, %d] for %d phases", res.Rounds, minRounds, maxRounds, res.Phases)
	}
}
