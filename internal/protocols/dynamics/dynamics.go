// Package dynamics is the shared execution engine for memoryless sampling
// dynamics: protocols where a node's next opinion is a function of its own
// opinion and a fixed number of uniformly sampled neighbor opinions.
// Two-Choices, Voter and 3-Majority are all rules in this family.
//
// The engine runs a rule under either communication model of the paper:
//
//   - RunSync: the synchronous model — discrete rounds, all nodes sample the
//     frozen current configuration and update simultaneously (Theorem 1.1's
//     setting).
//   - RunAsync: the asynchronous model — a sched.Scheduler delivers ticks
//     and the ticking node updates immediately, optionally with exponential
//     response delays (§4 extension).
package dynamics

import (
	"errors"
	"fmt"

	"plurality/internal/adversary"
	"plurality/internal/graph"
	"plurality/internal/lumped"
	"plurality/internal/occupancy"
	"plurality/internal/population"
	"plurality/internal/rng"
	"plurality/internal/sched"
	"plurality/internal/syncsim"
)

// ErrTimeLimit reports an asynchronous run that did not reach consensus
// within its time budget.
var ErrTimeLimit = errors.New("dynamics: time limit exceeded")

// ErrStopped reports a run interrupted by its Stop hook (context
// cancellation at the public layer) before consensus or its budget.
var ErrStopped = errors.New("dynamics: run stopped")

// Snapshot is one streamed observation of a running configuration — the
// shared currency of the engines' OnSnapshot hooks. It is the occupancy
// engine's snapshot type re-exported so per-node and count-collapsed runs
// deliver identical observations.
type Snapshot = occupancy.Snapshot

// Runner executes dynamics runs while pooling the per-run scratch state —
// the neighbor-sample buffer, the per-node pending-update slice of blocking
// runs, the synchronous staging buffer and the count-collapsed engine's
// histogram scratch — so trial loops stop paying an allocation-and-zero
// cost per run. A Runner is not safe for concurrent use; parallel drivers
// keep one per worker. Buffer reuse cannot change results: every buffer is
// (re)initialized before the run consumes it.
type Runner struct {
	sampled []population.Color
	pending []pendingUpdate
	buf     *syncsim.Buffer
	snap    []int64
	occ     occupancy.Runner
	lum     lumped.Runner
	lumpM   []int64
	lumpU   []int64
}

// Rule is one sampling dynamic. Implementations must be stateless: the
// engine may call Next concurrently for distinct trials.
type Rule interface {
	// Name identifies the rule in traces and tables.
	Name() string
	// SampleCount is the number of neighbor samples the rule consumes per
	// activation.
	SampleCount() int
	// Next returns the node's next color given its own color and the
	// sampled colors (len == SampleCount()). Returning own keeps the
	// opinion; returning population.None moves the node to the *undecided*
	// state (Undecided-State Dynamics — such rules also see None in own
	// and sampled, and should implement occupancy.Undecided so the
	// count-collapsed engine can represent the extra state). r is
	// available for randomized tie-breaking.
	Next(r *rng.RNG, own population.Color, sampled []population.Color) population.Color
}

// SyncConfig configures a synchronous run.
type SyncConfig struct {
	// Graph is the communication topology. Required.
	Graph graph.Graph
	// Rand drives all sampling. Required.
	Rand *rng.RNG
	// MaxRounds bounds the run. Required (> 0).
	MaxRounds int
	// OnRound, if set, observes the population after each committed round.
	OnRound func(round int, pop *population.Population)
	// Stop, if non-nil, is polled at every round boundary; returning true
	// abandons the run with ErrStopped and the rounds completed so far.
	Stop func() bool
	// Adversary, if non-nil, attacks the run: corruption adversaries flip
	// opinions after every committed round, Byzantine adversaries lie
	// inside the frozen-round sampling. Scheduling adversaries are
	// rejected — synchronous rounds have no activation order to bias.
	Adversary *adversary.Adversary
}

// SyncResult describes a completed synchronous run.
type SyncResult struct {
	// Rounds executed (including the final one).
	Rounds int
	// Done reports whether consensus was reached within MaxRounds.
	Done bool
	// Winner is the consensus color if Done, else the current plurality.
	Winner population.Color
	// Undecided is the number of nodes USD's undecided state holds when
	// the run ends; always 0 for rules without an undecided state.
	Undecided int64
	// Corruptions is the number of opinions the adversary rewrote:
	// corruption flips plus Byzantine lies.
	Corruptions int64
	// Biased is the number of activations the adversary redirected or
	// suppressed; always 0 for synchronous runs.
	Biased int64
}

// RunSync executes the rule in the synchronous model until consensus or
// MaxRounds. On round exhaustion it returns the partial result together
// with ErrTimeLimit-compatible syncsim.ErrRoundLimit.
func RunSync(pop *population.Population, rule Rule, cfg SyncConfig) (SyncResult, error) {
	var rn Runner
	return rn.RunSync(pop, rule, cfg)
}

// RunSync is Runner's scratch-pooling equivalent of the package-level
// RunSync; results for a fixed seed are bit-identical.
func (rn *Runner) RunSync(pop *population.Population, rule Rule, cfg SyncConfig) (SyncResult, error) {
	if err := validateSync(pop, rule, cfg); err != nil {
		return SyncResult{}, err
	}
	if pop.IsUnanimous() {
		return SyncResult{Done: true, Winner: pop.Plurality()}, nil
	}
	var (
		n       = pop.N()
		s       = rule.SampleCount()
		buf     = rn.syncBuffer(pop)
		sampled = rn.sampleBuffer(s)
		adv     = cfg.Adversary
	)
	res, err := syncsim.RunStop(cfg.MaxRounds, cfg.Stop, func(round int) (bool, error) {
		// Byzantine lies sample the frozen start-of-round histogram, like
		// every honest sample this round.
		var frozen []int64
		if adv != nil {
			frozen = rn.snapCounts(pop)
		}
		// Stage through the buffer's backing slice directly: one bounds
		// check instead of a method call per node on the hot loop. Every
		// node is staged, so the literal CommitAll applies: a staged None
		// commits the node to the undecided state (USD) rather than
		// meaning "keep" — rules without an undecided state never stage
		// it.
		next := buf.Slice()
		for u := 0; u < n; u++ {
			for i := 0; i < s; i++ {
				sampled[i] = pop.ColorOf(cfg.Graph.Sample(cfg.Rand, u))
				if adv != nil {
					if lie, ok := adv.Lie(frozen, int64(n), float64(round)); ok {
						sampled[i] = lie
					}
				}
			}
			next[u] = rule.Next(cfg.Rand, pop.ColorOf(u), sampled)
		}
		buf.CommitAll(pop)
		if adv != nil {
			corruptPopulation(adv, pop, float64(round), true, nil)
		}
		if cfg.OnRound != nil {
			cfg.OnRound(round, pop)
		}
		return pop.IsUnanimous(), nil
	})
	out := SyncResult{
		Rounds:    res.Rounds,
		Done:      res.Done,
		Winner:    pop.Plurality(),
		Undecided: pop.Undecided(),
	}
	if adv != nil {
		out.Corruptions = adv.Corruptions()
		out.Biased = adv.Biased()
	}
	if errors.Is(err, syncsim.ErrRoundLimit) {
		return out, fmt.Errorf("dynamics: %s did not converge in %d rounds: %w", rule.Name(), cfg.MaxRounds, ErrTimeLimit)
	}
	if errors.Is(err, syncsim.ErrStopped) {
		return out, fmt.Errorf("dynamics: %s stopped after %d rounds: %w", rule.Name(), out.Rounds, ErrStopped)
	}
	return out, err
}

// syncBuffer returns the pooled synchronous staging buffer resized for pop.
func (rn *Runner) syncBuffer(pop *population.Population) *syncsim.Buffer {
	if rn.buf == nil {
		rn.buf = syncsim.NewBuffer(pop)
		return rn.buf
	}
	rn.buf.Fit(pop.N())
	return rn.buf
}

// sampleBuffer returns the pooled neighbor-sample buffer with capacity for
// s samples.
func (rn *Runner) sampleBuffer(s int) []population.Color {
	if cap(rn.sampled) < s {
		rn.sampled = make([]population.Color, s)
	}
	return rn.sampled[:s]
}

func validateSync(pop *population.Population, rule Rule, cfg SyncConfig) error {
	switch {
	case pop == nil:
		return errors.New("dynamics: nil population")
	case rule == nil:
		return errors.New("dynamics: nil rule")
	case cfg.Graph == nil:
		return errors.New("dynamics: nil graph")
	case cfg.Rand == nil:
		return errors.New("dynamics: nil rand")
	case cfg.MaxRounds <= 0:
		return fmt.Errorf("dynamics: MaxRounds = %d, want > 0", cfg.MaxRounds)
	case cfg.Graph.N() != pop.N():
		return fmt.Errorf("dynamics: graph has %d nodes, population %d", cfg.Graph.N(), pop.N())
	case rule.SampleCount() <= 0:
		return fmt.Errorf("dynamics: rule %s samples %d nodes, want > 0", rule.Name(), rule.SampleCount())
	}
	if adv := cfg.Adversary; adv != nil && adv.Family() == adversary.FamilyScheduling {
		return fmt.Errorf("dynamics: scheduling adversary %s needs asynchronous activations; synchronous rounds have no activation order to bias", adv.Desc().Name)
	}
	return validateUndecided(pop, rule)
}

// snapCounts fills the pooled histogram scratch with pop's current decided
// counts — the frozen view synchronous Byzantine lies sample.
func (rn *Runner) snapCounts(pop *population.Population) []int64 {
	k := pop.K()
	if cap(rn.snap) < k {
		rn.snap = make([]int64, k)
	}
	buf := rn.snap[:k]
	copy(buf, pop.CountsView())
	return buf
}

// corruptPopulation materializes one corruption window on a per-node
// population: plan against the decided histogram, then flip concrete
// plurality holders to the minority opinion. everyRound skips the
// parallel-time window accounting (synchronous runs corrupt once per
// committed round). skip, when non-nil, excludes nodes the caller considers
// untouchable.
func corruptPopulation(adv *adversary.Adversary, pop *population.Population, now float64, everyRound bool, skip func(int) bool) {
	if adv.Family() != adversary.FamilyCorruption {
		return
	}
	if !everyRound && !adv.CorruptionDue(now) {
		return
	}
	from, to, x := adv.PlanFlips(pop.CountsView(), now)
	if x <= 0 {
		return
	}
	var done int64
	for i := int64(0); i < x; i++ {
		u, ok := adv.FindHolder(pop, from, skip)
		if !ok {
			break
		}
		pop.SetColor(u, to)
		done++
	}
	adv.NoteCorruptions(done)
}

// validateUndecided rejects populations holding undecided (None) nodes
// under rules without an undecided state: such a rule has no defined
// semantics for None samples — it would adopt the "color" and the run
// could absorb into an undetectable all-undecided state.
func validateUndecided(pop *population.Population, rule Rule) error {
	if u := pop.Undecided(); u > 0 {
		if _, ok := rule.(occupancy.Undecided); !ok {
			return fmt.Errorf("dynamics: population holds %d undecided nodes, but rule %s has no undecided state", u, rule.Name())
		}
	}
	return nil
}

// Engine selects RunAsync's execution strategy.
type Engine int

const (
	// EngineAuto (the default) picks a count-collapsed engine whenever the
	// run is collapsible — the occupancy engine on the complete graph, the
	// degree-class lumped engine on annealed configuration-model topologies
	// (graph.Classed); both additionally need no response delays, no edge
	// latencies, no per-tick observer (and the lumped engine no adversary) —
	// and the per-node engine otherwise. The collapsed engines are
	// distributionally equivalent to the per-node engine (the collapses are
	// exact) but consume the RNG differently, so fixed-seed trajectories
	// differ between them.
	EngineAuto Engine = iota
	// EnginePerNode forces the per-node simulation.
	EnginePerNode
	// EngineOccupancy requires count-collapsed execution — the occupancy
	// engine on the clique or the lumped engine on a graph.Classed topology;
	// RunAsync fails with a descriptive error if the configuration is not
	// collapsible.
	EngineOccupancy
	// EngineLeap requires the hybrid tau-leap/mean-field engine: the
	// count-collapsed histogram advanced many transitions per step, with
	// automatic handoff to the mean-field ODE in the fluctuation-free bulk
	// and automatic fallback to the exact jump chain near small buckets.
	// Approximate by design (error budget via AsyncConfig.Leap) and built
	// for n beyond the exact engine's reach (10¹⁰–10¹²⁺); it needs a
	// collapsible churn-free run, a FlowKernel-ed rule and a
	// Sequential/Poisson scheduler.
	EngineLeap
)

// LeapAutoN is the histogram total from which EngineAuto escalates counts
// runs to the hybrid leap engine (when the rule and scheduler support it):
// beyond the exact engine's practical ceiling, so sub-threshold behavior is
// unchanged.
const LeapAutoN int64 = 10_000_000_000

// String implements fmt.Stringer.
func (e Engine) String() string {
	switch e {
	case EngineAuto:
		return "auto"
	case EnginePerNode:
		return "per-node"
	case EngineOccupancy:
		return "occupancy"
	case EngineLeap:
		return "leap"
	default:
		return fmt.Sprintf("engine(%d)", int(e))
	}
}

// AsyncConfig configures an asynchronous run.
type AsyncConfig struct {
	// Graph is the communication topology. Required.
	Graph graph.Graph
	// Scheduler delivers node activations. Required; its node count must
	// match the population.
	Scheduler sched.Scheduler
	// Rand drives neighbor sampling (it may be the same generator that
	// drives the scheduler). Required.
	Rand *rng.RNG
	// MaxTime bounds the run in parallel time. Required (> 0).
	MaxTime float64
	// Delay models response latency; nil means the paper's base model
	// (instant responses).
	Delay sched.DelayModel
	// Latency models per-edge message latency (the Bankhamer et al.
	// edge-latency extension): each neighbor sampled by an activation
	// costs an independent latency draw on the used edge and the decided
	// update applies only once the slowest response has arrived, the node
	// blocking meanwhile. Composes additively with Delay. nil means
	// instant edges.
	Latency sched.LatencyModel
	// Churn, in [0, 1), is the probability that an activation is a churn
	// event: the node is replaced by a fresh joiner holding a uniformly
	// random opinion instead of executing the rule. Exact consensus stays
	// reachable only while Churn·n is o(1).
	Churn float64
	// OnTick, if set, observes every delivered tick (after the node's
	// action). Setting it forces the per-node engine.
	OnTick func(t sched.Tick, pop *population.Population)
	// Engine selects the execution strategy (default EngineAuto).
	Engine Engine
	// Leap carries the error-budget knobs of the hybrid leap engine
	// (EngineLeap, or EngineAuto runs escalated past LeapAutoN); the zero
	// value selects the occupancy package's defaults. Ignored by the exact
	// engines.
	Leap occupancy.LeapConfig
	// Stop, if non-nil, is polled at a coarse stride (per tick batch);
	// returning true abandons the run with ErrStopped and the progress made
	// so far.
	Stop func() bool
	// OnSnapshot, if set, streams periodic histogram Snapshots every
	// ObserveInterval units of parallel time (an interval <= 0 observes
	// every activation). Unlike OnTick it does not block the count-collapse:
	// collapsed runs deliver the same snapshots from the occupancy engine,
	// where observation forces tick mode. Snapshot.Counts aliases
	// engine-owned memory and is only valid during the callback.
	ObserveInterval float64
	OnSnapshot      func(Snapshot)
	// Adversary, if non-nil, attacks the run: scheduling adversaries
	// redirect or suppress activations, corruption adversaries flip
	// opinions at parallel-time window boundaries, Byzantine adversaries
	// lie inside the sampling path. Collapsed runs execute it in the
	// occupancy engine's exact tick mode; the hybrid leap engine cannot
	// honor it (corruption breaks the exchangeability-preserving flow
	// laws), so EngineLeap rejects a non-nil adversary and EngineAuto never
	// escalates adversarial runs past LeapAutoN.
	Adversary *adversary.Adversary
}

// AsyncResult describes a completed asynchronous run.
type AsyncResult struct {
	// Time is the parallel time of the tick that completed consensus (or
	// of the last tick before the budget ran out).
	Time float64
	// Ticks is the number of activations delivered.
	Ticks int64
	// Done reports whether consensus was reached within MaxTime.
	Done bool
	// Winner is the consensus color if Done, else the current plurality.
	Winner population.Color
	// Churns is the total number of churn events (node replacements).
	Churns int64
	// Undecided is the number of nodes USD's undecided state holds when
	// the run ends; always 0 for rules without an undecided state.
	Undecided int64
	// Corruptions is the number of opinions the adversary rewrote:
	// corruption flips plus Byzantine lies.
	Corruptions int64
	// Biased is the number of activations the adversary redirected or
	// suppressed.
	Biased int64
}

// pendingUpdate is a decided but not yet applied opinion change, waiting for
// its response delay to elapse.
type pendingUpdate struct {
	readyAt float64
	next    population.Color
	waiting bool
}

// RunAsync executes the rule in the asynchronous model until consensus or
// MaxTime of parallel time. With a non-nil Delay, a tick either issues a
// request (sampling neighbor states at request time) or — once the response
// has arrived — applies the decided update; ticks that land while a response
// is in flight are spent waiting, exactly the "node blocks for its response"
// reading of the paper's §4 extension.
func RunAsync(pop *population.Population, rule Rule, cfg AsyncConfig) (AsyncResult, error) {
	var rn Runner
	return rn.RunAsync(pop, rule, cfg)
}

// stopCheckStride is how many per-node ticks pass between Stop polls on the
// general (non-batch-aligned) path.
const stopCheckStride = 1024

// RunAsync is Runner's scratch-pooling equivalent of the package-level
// RunAsync; results for a fixed seed are bit-identical.
func (rn *Runner) RunAsync(pop *population.Population, rule Rule, cfg AsyncConfig) (AsyncResult, error) {
	if err := validateAsync(pop, rule, cfg); err != nil {
		return AsyncResult{}, err
	}
	if pop.IsUnanimous() {
		return AsyncResult{Done: true, Winner: pop.Plurality()}, nil
	}

	// Count-collapsed fast paths. On the clique the configuration is the
	// color histogram, so the run executes on k counts instead of n nodes
	// (O(k) state, and kerneled rules leap over no-op activations entirely).
	// On annealed configuration-model topologies (graph.Classed) the
	// configuration is the (degree-class × color) count matrix, so the run
	// executes on D·k counts in the lumped engine. Both collapses are exact;
	// see the occupancy and lumped packages' equivalence gates.
	if cfg.Engine != EnginePerNode {
		blocker := collapseBlocker(cfg)
		if blocker == "" {
			return rn.runCollapsed(pop, rule, cfg)
		}
		if cfg.Engine == EngineLeap {
			return AsyncResult{}, fmt.Errorf("dynamics: the %s engine needs a count-collapsible run, but %s", cfg.Engine, blocker)
		}
		if lumpedBlocker := lumpBlocker(cfg); lumpedBlocker == "" {
			return rn.runLumped(pop, rule, cfg)
		} else if cfg.Engine == EngineOccupancy {
			return AsyncResult{}, fmt.Errorf("dynamics: the %s engine needs a count-collapsed run, but %s, and %s", cfg.Engine, blocker, lumpedBlocker)
		}
	}
	var (
		n        = pop.N()
		s        = rule.SampleCount()
		sampled  = rn.sampleBuffer(s)
		pending  []pendingUpdate
		delaying = cfg.Delay != nil
		latent   = cfg.Latency != nil
		churning = cfg.Churn > 0
	)
	if delaying {
		if _, instant := cfg.Delay.(sched.ZeroDelay); instant {
			delaying = false
		}
	}
	// blocking selects the request/response execution path: an activation
	// issues a request (sampling neighbor states at request time) and the
	// decided update applies only once every response has arrived.
	blocking := delaying || latent
	if blocking {
		if cap(rn.pending) < n {
			rn.pending = make([]pendingUpdate, n)
		}
		pending = rn.pending[:n]
		clear(pending)
	}

	var res AsyncResult
	apply := func(u int, next population.Color) {
		if next == pop.ColorOf(u) {
			return
		}
		// next == None moves the node to the undecided state (USD).
		pop.SetColor(u, next)
		if next != population.None && pop.Count(next) == int64(n) {
			res.Done = true
		}
	}

	// Fast path for the paper's base model: no delays, no latencies, no
	// churn and no observer. Ticks are pulled in batches and handled
	// inline, so the only per-tick dynamic dispatch left is the rule
	// itself. (Stop stays compatible with it — one poll per batch — but
	// snapshot observation needs the per-tick time check of the general
	// path.)
	if bs, ok := cfg.Scheduler.(sched.BatchScheduler); ok && !blocking && !churning && cfg.OnTick == nil && cfg.OnSnapshot == nil && cfg.Adversary == nil {
		// Devirtualize the dominant topology: a concrete *graph.Adjacency
		// receiver lets the CSR Sample inline into the loop, removing the
		// interface dispatch per neighbor draw. Same draws, same results.
		csr, _ := cfg.Graph.(*graph.Adjacency)
		var last sched.Tick
		ran := false
		batch := make([]sched.Tick, sched.BatchSize)
		for !res.Done {
			if cfg.Stop != nil && cfg.Stop() {
				res.Time = last.Time
				if ran {
					res.Ticks = last.Seq + 1
				}
				res.Winner = pop.Plurality()
				res.Undecided = pop.Undecided()
				return res, fmt.Errorf("dynamics: %s stopped at time %v: %w", rule.Name(), res.Time, ErrStopped)
			}
			bs.NextBatch(batch)
			for _, t := range batch {
				if t.Time > cfg.MaxTime {
					res.Time = last.Time
					res.Ticks = last.Seq + 1
					res.Winner = pop.Plurality()
					res.Undecided = pop.Undecided()
					return res, fmt.Errorf("dynamics: %s did not converge by time %v: %w", rule.Name(), cfg.MaxTime, ErrTimeLimit)
				}
				last = t
				u := t.Node
				if csr != nil {
					for i := 0; i < s; i++ {
						sampled[i] = pop.ColorOf(csr.Sample(cfg.Rand, u))
					}
				} else {
					for i := 0; i < s; i++ {
						sampled[i] = pop.ColorOf(cfg.Graph.Sample(cfg.Rand, u))
					}
				}
				apply(u, rule.Next(cfg.Rand, pop.ColorOf(u), sampled))
				if res.Done {
					break
				}
			}
			ran = true
		}
		res.Time = last.Time
		res.Ticks = last.Seq + 1
		res.Winner = pop.Plurality()
		res.Undecided = pop.Undecided()
		return res, nil
	}

	var (
		observing   = cfg.OnSnapshot != nil
		nextObserve float64
		lastEmit    int64 = -1 // Seq+1 of the last emitted snapshot (-1 = none)
		stopCheck   int
		interrupted bool
		adv         = cfg.Adversary
	)
	if adv != nil {
		adv.InitVictims(n)
	}
	last, stopped := sched.RunBatch(cfg.Scheduler, cfg.MaxTime, func(t sched.Tick) bool {
		if cfg.Stop != nil {
			if stopCheck--; stopCheck <= 0 {
				stopCheck = stopCheckStride
				if cfg.Stop() {
					interrupted = true
					return false
				}
			}
		}
		u := t.Node
		suppressed := false
		if adv != nil {
			corruptPopulation(adv, pop, t.Time, false, nil)
			if adv.Victim(u) {
				adv.NoteBias()
				suppressed = true
			} else if c, ok := adv.BiasColor(pop.CountsView(), t.Time); ok {
				if v, found := adv.FindHolder(pop, c, nil); found {
					u = v
					adv.NoteBias()
				}
			}
		}
		switch {
		case suppressed:
			// The delay-set suppressed this activation; the tick is spent
			// idle, exactly like a tick landing mid-response-wait.
		case blocking && pending[u].waiting && t.Time >= pending[u].readyAt:
			// Response has arrived: apply the decided update.
			apply(u, pending[u].next)
			pending[u].waiting = false
		case blocking && pending[u].waiting:
			// Still waiting for the response; the tick is spent idle.
		case churning && cfg.Rand.Bernoulli(cfg.Churn):
			// Churn event: a fresh joiner with a random opinion replaces
			// the node instead of executing the rule.
			apply(u, population.Color(cfg.Rand.Intn(pop.K())))
			res.Churns++
		default:
			// The per-edge latency of the slowest sampled neighbor gates
			// when the decided update can apply.
			var lat float64
			for i := 0; i < s; i++ {
				v := cfg.Graph.Sample(cfg.Rand, u)
				sampled[i] = pop.ColorOf(v)
				if adv != nil {
					if lie, ok := adv.Lie(pop.CountsView(), int64(n), t.Time); ok {
						sampled[i] = lie
					}
				}
				if latent {
					if l := cfg.Latency.SampleLatency(cfg.Rand, u, v); l > lat {
						lat = l
					}
				}
			}
			next := rule.Next(cfg.Rand, pop.ColorOf(u), sampled)
			if !blocking {
				apply(u, next)
				break
			}
			d := lat
			if delaying {
				d += cfg.Delay.SampleDelay(cfg.Rand)
			}
			if d <= 0 {
				apply(u, next)
				break
			}
			pending[u] = pendingUpdate{readyAt: t.Time + d, next: next, waiting: true}
		}
		if cfg.OnTick != nil {
			cfg.OnTick(t, pop)
		}
		if observing && t.Time >= nextObserve {
			lastEmit = t.Seq + 1
			rn.emitSnapshot(cfg.OnSnapshot, pop, t.Time, lastEmit)
			nextObserve = t.Time + cfg.ObserveInterval
		}
		return !res.Done
	})

	res.Time = last.Time
	res.Ticks = last.Seq + 1
	if interrupted {
		// The tick on which the stop poll fired never applied; it is not a
		// delivered activation.
		res.Ticks = last.Seq
	}
	res.Winner = pop.Plurality()
	res.Undecided = pop.Undecided()
	if adv != nil {
		res.Corruptions = adv.Corruptions()
		res.Biased = adv.Biased()
	}
	if observing && lastEmit != res.Ticks {
		// Close the stream with the state the run ended in.
		rn.emitSnapshot(cfg.OnSnapshot, pop, res.Time, res.Ticks)
	}
	if interrupted {
		return res, fmt.Errorf("dynamics: %s stopped at time %v: %w", rule.Name(), res.Time, ErrStopped)
	}
	if !stopped {
		return res, fmt.Errorf("dynamics: %s did not converge by time %v: %w", rule.Name(), cfg.MaxTime, ErrTimeLimit)
	}
	return res, nil
}

// emitSnapshot delivers one per-node-engine snapshot, reusing the pooled
// histogram scratch (the callback must not retain Counts).
func (rn *Runner) emitSnapshot(fn func(Snapshot), pop *population.Population, now float64, ticks int64) {
	k := pop.K()
	if cap(rn.snap) < k {
		rn.snap = make([]int64, k)
	}
	buf := rn.snap[:k]
	for c := 0; c < k; c++ {
		buf[c] = pop.Count(population.Color(c))
	}
	fn(Snapshot{Time: now, Ticks: ticks, Counts: buf, Undecided: pop.Undecided()})
}

// collapseBlocker reports why the run cannot execute count-collapsed; ""
// means it can. Churn composes fine (a churn event is itself a histogram
// transition), and so does an undecided state when the rule declares it
// (occupancy.Undecided gives it a histogram bucket; undecided populations
// under other rules are already rejected by validateUndecided); per-node
// pending state — delays, latencies — and per-tick population observers do
// not.
func collapseBlocker(cfg AsyncConfig) string {
	if _, ok := cfg.Graph.(graph.Complete); !ok {
		return fmt.Sprintf("topology %T is not the complete graph", cfg.Graph)
	}
	if cfg.OnTick != nil {
		return "an OnTick observer needs the per-node population"
	}
	if cfg.Latency != nil {
		return "edge latencies need per-node pending state"
	}
	if cfg.Delay != nil {
		if _, zero := cfg.Delay.(sched.ZeroDelay); !zero {
			return "response delays need per-node pending state"
		}
	}
	if cfg.Adversary != nil && cfg.Adversary.Desc().PerNode {
		return fmt.Sprintf("adversary %s targets individual nodes, which the count-collapsed engine does not track", cfg.Adversary.Desc().Name)
	}
	return ""
}

// runCollapsed executes the run on the color histogram and writes the final
// histogram back into pop (on the clique, which node ends up with which
// color carries no information). Rules with an undecided state carry it in
// the hidden bucket the occupancy engine appends (occupancy.Undecided).
func (rn *Runner) runCollapsed(pop *population.Population, rule Rule, cfg AsyncConfig) (AsyncResult, error) {
	g := cfg.Graph.(graph.Complete)
	counts := pop.Counts()
	occCfg := occupancy.Config{
		WithSelf:        g.WithSelf,
		Scheduler:       cfg.Scheduler,
		Rand:            cfg.Rand,
		MaxTime:         cfg.MaxTime,
		Churn:           cfg.Churn,
		Undecided:       pop.Undecided(),
		Stop:            cfg.Stop,
		ObserveInterval: cfg.ObserveInterval,
		OnObserve:       cfg.OnSnapshot,
		Adversary:       cfg.Adversary,
	}
	var (
		res occupancy.Result
		err error
	)
	if cfg.Engine == EngineLeap {
		var lres occupancy.LeapResult
		lres, err = rn.occ.RunLeap(counts, rule, occCfg, cfg.Leap)
		res = lres.Result
	} else {
		res, err = rn.occ.Run(counts, rule, occCfg)
	}
	if err != nil && !errors.Is(err, occupancy.ErrTimeLimit) && !errors.Is(err, occupancy.ErrStopped) {
		// A hard error means the run never executed: surface it and leave
		// the population untouched (a write-back of the zero-valued result
		// would only mask the cause with a shape error).
		return AsyncResult{}, err
	}
	if serr := pop.SetCountsUndecided(counts, res.Undecided); serr != nil {
		return AsyncResult{}, serr
	}
	return collapsedResult(res, err, rule, cfg.MaxTime)
}

// lumpBlocker reports why the run cannot execute degree-class lumped; ""
// means it can. The lumped collapse needs a topology that reports a lumpable
// symmetry (graph.Classed — annealed configuration models, where nodes are
// exchangeable within a degree class) and, like the clique collapse, no
// per-node pending state or per-tick observer. Adversaries additionally
// block it outright: bias and corruption target concrete nodes or exploit
// the clique histogram, neither of which the class matrix represents.
func lumpBlocker(cfg AsyncConfig) string {
	if _, ok := cfg.Graph.(graph.Classed); !ok {
		return fmt.Sprintf("topology %T does not report a lumpable degree-class symmetry (graph.Classed)", cfg.Graph)
	}
	if cfg.OnTick != nil {
		return "an OnTick observer needs the per-node population"
	}
	if cfg.Latency != nil {
		return "edge latencies need per-node pending state"
	}
	if cfg.Delay != nil {
		if _, zero := cfg.Delay.(sched.ZeroDelay); !zero {
			return "response delays need per-node pending state"
		}
	}
	if cfg.Adversary != nil {
		return fmt.Sprintf("adversary %s needs the per-node engine on non-complete topologies", cfg.Adversary.Desc().Name)
	}
	return ""
}

// runLumped executes the run on the (degree-class × color) count matrix of a
// graph.Classed topology and writes the final matrix back into pop. Annealed
// sampling makes nodes exchangeable within a degree class, so which node of a
// class holds which color carries no information; the write-back lays each
// class range out color-major (decided colors ascending, undecided last),
// mirroring population.FromCounts's block convention.
func (rn *Runner) runLumped(pop *population.Population, rule Rule, cfg AsyncConfig) (AsyncResult, error) {
	classes := cfg.Graph.(graph.Classed).Classes()
	D := len(classes)
	k := pop.K()
	if cap(rn.lumpM) < D*k {
		rn.lumpM = make([]int64, D*k)
	}
	m := rn.lumpM[:D*k]
	clear(m)
	var und []int64
	if _, ok := rule.(occupancy.Undecided); ok {
		if cap(rn.lumpU) < D {
			rn.lumpU = make([]int64, D)
		}
		und = rn.lumpU[:D]
		clear(und)
	}
	u := 0
	for a, cl := range classes {
		for i := int64(0); i < cl.Count; i++ {
			// validateAsync already rejected undecided holders under rules
			// without an undecided state, so c == None implies und != nil.
			if c := pop.ColorOf(u); c == population.None {
				und[a]++
			} else {
				m[a*k+int(c)]++
			}
			u++
		}
	}
	res, err := rn.lum.Run(m, und, rule, lumped.Config{
		Classes:         classes,
		Scheduler:       cfg.Scheduler,
		Rand:            cfg.Rand,
		MaxTime:         cfg.MaxTime,
		Churn:           cfg.Churn,
		Stop:            cfg.Stop,
		ObserveInterval: cfg.ObserveInterval,
		OnObserve:       cfg.OnSnapshot,
	})
	if err != nil && !errors.Is(err, occupancy.ErrTimeLimit) && !errors.Is(err, occupancy.ErrStopped) {
		// A hard error means the run never executed: surface it and leave
		// the population untouched.
		return AsyncResult{}, err
	}
	u = 0
	for a := range classes {
		for c := 0; c < k; c++ {
			for i := int64(0); i < m[a*k+c]; i++ {
				pop.SetColor(u, population.Color(c))
				u++
			}
		}
		if und != nil {
			for i := int64(0); i < und[a]; i++ {
				pop.SetColor(u, population.None)
				u++
			}
		}
	}
	return collapsedResult(res, err, rule, cfg.MaxTime)
}

// RunAsyncCounts executes rule directly on a color histogram with the
// count-collapsed occupancy engine — the O(k)-memory entry point for
// populations too large to materialize per node (n = 10⁸–10⁹). counts is
// mutated in place to the final histogram. cfg.Graph may be nil (the
// complete graph on the histogram total is implied) or a graph.Complete
// whose node count matches; everything collapseBlocker rejects is an error
// here, as is EnginePerNode.
func RunAsyncCounts(counts []int64, rule Rule, cfg AsyncConfig) (AsyncResult, error) {
	var rn Runner
	return rn.RunAsyncCounts(counts, rule, cfg)
}

// RunAsyncCounts is Runner's scratch-pooling equivalent of the
// package-level RunAsyncCounts; results for a fixed seed are bit-identical.
func (rn *Runner) RunAsyncCounts(counts []int64, rule Rule, cfg AsyncConfig) (AsyncResult, error) {
	if rule == nil {
		return AsyncResult{}, errors.New("dynamics: nil rule")
	}
	if cfg.Engine == EnginePerNode {
		return AsyncResult{}, errors.New("dynamics: counts runs are count-collapsed by definition; materialize a Population for the per-node engine")
	}
	if cfg.Engine < EngineAuto || cfg.Engine > EngineLeap {
		return AsyncResult{}, fmt.Errorf("dynamics: unknown engine %d", cfg.Engine)
	}
	withSelf := false
	if cfg.Graph != nil {
		if cl, ok := cfg.Graph.(graph.Classed); ok {
			return rn.runLumpedCounts(counts, rule, cfg, cl)
		}
		g, ok := cfg.Graph.(graph.Complete)
		if !ok {
			return AsyncResult{}, fmt.Errorf("dynamics: counts runs need the complete graph or a degree-class lumpable (graph.Classed) topology, got %T", cfg.Graph)
		}
		var n int64
		for _, v := range counts {
			n += v
		}
		if int64(g.N()) != n {
			return AsyncResult{}, fmt.Errorf("dynamics: graph has %d nodes, histogram %d", g.N(), n)
		}
		withSelf = g.WithSelf
	}
	if cfg.OnTick != nil || cfg.Latency != nil || cfg.Delay != nil {
		return AsyncResult{}, errors.New("dynamics: counts runs support neither delays, latencies nor OnTick observers (per-node state)")
	}
	if adv := cfg.Adversary; adv != nil {
		if cfg.Engine == EngineLeap {
			return AsyncResult{}, errLeapAdversary(adv)
		}
		if adv.Desc().PerNode {
			return AsyncResult{}, fmt.Errorf("dynamics: adversary %s targets individual nodes, which counts runs do not track", adv.Desc().Name)
		}
	}
	occCfg := occupancy.Config{
		WithSelf:        withSelf,
		Scheduler:       cfg.Scheduler,
		Rand:            cfg.Rand,
		MaxTime:         cfg.MaxTime,
		Churn:           cfg.Churn,
		Stop:            cfg.Stop,
		ObserveInterval: cfg.ObserveInterval,
		OnObserve:       cfg.OnSnapshot,
		Adversary:       cfg.Adversary,
	}
	if cfg.Engine == EngineLeap || autoLeap(counts, rule, cfg) {
		lres, err := rn.occ.RunLeap(counts, rule, occCfg, cfg.Leap)
		return collapsedResult(lres.Result, err, rule, cfg.MaxTime)
	}
	res, err := rn.occ.Run(counts, rule, occCfg)
	return collapsedResult(res, err, rule, cfg.MaxTime)
}

// runLumpedCounts executes a counts run on a graph.Classed topology: the
// histogram is split into the (degree-class × color) matrix along the
// canonical color-major node layout (population.FromCounts's blocks
// intersected with the contiguous class ranges), run in the lumped engine,
// and the final matrix folded back into counts. Always exact — the hybrid
// leap engine's flow laws are clique-only, so EngineLeap is rejected and
// EngineAuto never escalates lumped runs past LeapAutoN.
func (rn *Runner) runLumpedCounts(counts []int64, rule Rule, cfg AsyncConfig, g graph.Classed) (AsyncResult, error) {
	if cfg.Engine == EngineLeap {
		return AsyncResult{}, fmt.Errorf("dynamics: the leap engine needs the complete graph, got %T", cfg.Graph)
	}
	if cfg.OnTick != nil || cfg.Latency != nil || cfg.Delay != nil {
		return AsyncResult{}, errors.New("dynamics: counts runs support neither delays, latencies nor OnTick observers (per-node state)")
	}
	if adv := cfg.Adversary; adv != nil {
		return AsyncResult{}, fmt.Errorf("dynamics: adversary %s needs the per-node or clique-collapsed engine; the lumped engine cannot honor adversaries", adv.Desc().Name)
	}
	var n int64
	for c, v := range counts {
		if v < 0 {
			return AsyncResult{}, fmt.Errorf("dynamics: negative count %d for color %d", v, c)
		}
		n += v
	}
	if int64(g.N()) != n {
		return AsyncResult{}, fmt.Errorf("dynamics: graph has %d nodes, histogram %d", g.N(), n)
	}
	classes := g.Classes()
	D := len(classes)
	k := len(counts)
	if cap(rn.lumpM) < D*k {
		rn.lumpM = make([]int64, D*k)
	}
	m := rn.lumpM[:D*k]
	clear(m)
	// Color c's block covers nodes [cStart, cStart+counts[c]); class a's
	// range covers [aStart, aStart+classes[a].Count); each matrix cell is
	// the overlap of the two intervals.
	var cStart int64
	for c, v := range counts {
		cEnd := cStart + v
		var aStart int64
		for a, cl := range classes {
			aEnd := aStart + cl.Count
			if o := min(cEnd, aEnd) - max(cStart, aStart); o > 0 {
				m[a*k+c] = o
			}
			aStart = aEnd
		}
		cStart = cEnd
	}
	res, err := rn.lum.Run(m, nil, rule, lumped.Config{
		Classes:         classes,
		Scheduler:       cfg.Scheduler,
		Rand:            cfg.Rand,
		MaxTime:         cfg.MaxTime,
		Churn:           cfg.Churn,
		Stop:            cfg.Stop,
		ObserveInterval: cfg.ObserveInterval,
		OnObserve:       cfg.OnSnapshot,
	})
	if err != nil && !errors.Is(err, occupancy.ErrTimeLimit) && !errors.Is(err, occupancy.ErrStopped) {
		return AsyncResult{}, err
	}
	for c := range counts {
		counts[c] = 0
	}
	for a := 0; a < D; a++ {
		for c := 0; c < k; c++ {
			counts[c] += m[a*k+c]
		}
	}
	return collapsedResult(res, err, rule, cfg.MaxTime)
}

// autoLeap reports whether an EngineAuto counts run escalates to the hybrid
// leap engine: histogram total at least LeapAutoN — past the exact engine's
// practical ceiling — with every leap precondition met (no churn, a
// FlowKernel-ed rule, a Sequential or Poisson scheduler). Sub-threshold or
// ineligible runs keep the exact engine, so existing behavior is unchanged.
func autoLeap(counts []int64, rule Rule, cfg AsyncConfig) bool {
	if cfg.Engine != EngineAuto || cfg.Churn != 0 || cfg.Adversary != nil {
		return false
	}
	var n int64
	for _, v := range counts {
		n += v
	}
	if n < LeapAutoN {
		return false
	}
	switch cfg.Scheduler.(type) {
	case *sched.Sequential, *sched.Poisson:
	default:
		return false
	}
	return occupancy.Leapable(rule, len(counts))
}

// collapsedResult maps an occupancy result and error onto the package's
// AsyncResult and sentinel conventions.
func collapsedResult(res occupancy.Result, err error, rule Rule, maxTime float64) (AsyncResult, error) {
	out := AsyncResult{
		Time:        res.Time,
		Ticks:       res.Ticks,
		Done:        res.Done,
		Winner:      res.Winner,
		Churns:      res.Churns,
		Undecided:   res.Undecided,
		Corruptions: res.Corruptions,
		Biased:      res.Biased,
	}
	if errors.Is(err, occupancy.ErrTimeLimit) {
		return out, fmt.Errorf("dynamics: %s did not converge by time %v: %w", rule.Name(), maxTime, ErrTimeLimit)
	}
	if errors.Is(err, occupancy.ErrStopped) {
		return out, fmt.Errorf("dynamics: %s stopped at time %v: %w", rule.Name(), res.Time, ErrStopped)
	}
	return out, err
}

func validateAsync(pop *population.Population, rule Rule, cfg AsyncConfig) error {
	switch {
	case pop == nil:
		return errors.New("dynamics: nil population")
	case rule == nil:
		return errors.New("dynamics: nil rule")
	case cfg.Graph == nil:
		return errors.New("dynamics: nil graph")
	case cfg.Scheduler == nil:
		return errors.New("dynamics: nil scheduler")
	case cfg.Rand == nil:
		return errors.New("dynamics: nil rand")
	case cfg.MaxTime <= 0:
		return fmt.Errorf("dynamics: MaxTime = %v, want > 0", cfg.MaxTime)
	case cfg.Graph.N() != pop.N():
		return fmt.Errorf("dynamics: graph has %d nodes, population %d", cfg.Graph.N(), pop.N())
	case cfg.Scheduler.N() != pop.N():
		return fmt.Errorf("dynamics: scheduler has %d nodes, population %d", cfg.Scheduler.N(), pop.N())
	case cfg.Churn < 0 || cfg.Churn >= 1:
		return fmt.Errorf("dynamics: Churn = %v, want [0, 1)", cfg.Churn)
	case rule.SampleCount() <= 0:
		return fmt.Errorf("dynamics: rule %s samples %d nodes, want > 0", rule.Name(), rule.SampleCount())
	case cfg.Engine < EngineAuto || cfg.Engine > EngineLeap:
		return fmt.Errorf("dynamics: unknown engine %d", cfg.Engine)
	}
	if cfg.Adversary != nil && cfg.Engine == EngineLeap {
		return errLeapAdversary(cfg.Adversary)
	}
	return validateUndecided(pop, rule)
}

// errLeapAdversary is the shared rejection for adversarial leap runs: the
// hybrid engine's flow laws assume an unattacked, exchangeability-preserving
// trajectory, so adversaries require an exact engine.
func errLeapAdversary(adv *adversary.Adversary) error {
	return fmt.Errorf("dynamics: the leap engine cannot honor adversary %s; corruption and bias break its exchangeability-preserving flow laws — use an exact engine", adv.Desc().Name)
}
