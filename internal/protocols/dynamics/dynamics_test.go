package dynamics

import (
	"errors"
	"testing"

	"plurality/internal/graph"
	"plurality/internal/population"
	"plurality/internal/rng"
	"plurality/internal/sched"
)

// adoptFirst is a trivial rule for engine testing: always adopt the sample.
type adoptFirst struct{}

func (adoptFirst) Name() string     { return "adopt-first" }
func (adoptFirst) SampleCount() int { return 1 }
func (adoptFirst) Next(_ *rng.RNG, _ population.Color, s []population.Color) population.Color {
	return s[0]
}

// keepOwn never changes opinion; runs can never converge from a split start.
type keepOwn struct{}

func (keepOwn) Name() string     { return "keep-own" }
func (keepOwn) SampleCount() int { return 1 }
func (keepOwn) Next(_ *rng.RNG, own population.Color, _ []population.Color) population.Color {
	return own
}

func completeGraph(t *testing.T, n int) graph.Graph {
	t.Helper()
	g, err := graph.NewComplete(n)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func mustPop(t *testing.T, counts ...int64) *population.Population {
	t.Helper()
	p, err := population.FromCounts(counts)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRunSyncValidation(t *testing.T) {
	pop := mustPop(t, 5, 5)
	g := completeGraph(t, 10)
	r := rng.New(1)
	tests := []struct {
		name string
		pop  *population.Population
		rule Rule
		cfg  SyncConfig
	}{
		{name: "nil population", rule: adoptFirst{}, cfg: SyncConfig{Graph: g, Rand: r, MaxRounds: 1}},
		{name: "nil rule", pop: pop, cfg: SyncConfig{Graph: g, Rand: r, MaxRounds: 1}},
		{name: "nil graph", pop: pop, rule: adoptFirst{}, cfg: SyncConfig{Rand: r, MaxRounds: 1}},
		{name: "nil rand", pop: pop, rule: adoptFirst{}, cfg: SyncConfig{Graph: g, MaxRounds: 1}},
		{name: "zero rounds", pop: pop, rule: adoptFirst{}, cfg: SyncConfig{Graph: g, Rand: r}},
		{
			name: "size mismatch",
			pop:  mustPop(t, 3, 3),
			rule: adoptFirst{},
			cfg:  SyncConfig{Graph: g, Rand: r, MaxRounds: 1},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := RunSync(tt.pop, tt.rule, tt.cfg); err == nil {
				t.Error("want validation error")
			}
		})
	}
}

func TestRunSyncAlreadyUnanimous(t *testing.T) {
	pop := mustPop(t, 10)
	res, err := RunSync(pop, adoptFirst{}, SyncConfig{
		Graph:     completeGraph(t, 10),
		Rand:      rng.New(2),
		MaxRounds: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done || res.Rounds != 0 || res.Winner != 0 {
		t.Fatalf("res = %+v", res)
	}
}

func TestRunSyncConverges(t *testing.T) {
	// adopt-first is the synchronous Voter dynamic; on a small clique it
	// converges quickly.
	pop := mustPop(t, 20, 20)
	res, err := RunSync(pop, adoptFirst{}, SyncConfig{
		Graph:     completeGraph(t, 40),
		Rand:      rng.New(3),
		MaxRounds: 10000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done {
		t.Fatalf("did not converge: %+v", res)
	}
	if !pop.ConsensusOn(res.Winner) {
		t.Fatalf("winner %d is not the consensus color; counts %v", res.Winner, pop.Counts())
	}
}

func TestRunSyncRoundLimit(t *testing.T) {
	pop := mustPop(t, 5, 5)
	res, err := RunSync(pop, keepOwn{}, SyncConfig{
		Graph:     completeGraph(t, 10),
		Rand:      rng.New(4),
		MaxRounds: 7,
	})
	if !errors.Is(err, ErrTimeLimit) {
		t.Fatalf("err = %v, want ErrTimeLimit", err)
	}
	if res.Done || res.Rounds != 7 {
		t.Fatalf("res = %+v", res)
	}
}

func TestRunSyncOnRoundObserves(t *testing.T) {
	pop := mustPop(t, 5, 5)
	var rounds []int
	_, err := RunSync(pop, keepOwn{}, SyncConfig{
		Graph:     completeGraph(t, 10),
		Rand:      rng.New(5),
		MaxRounds: 3,
		OnRound: func(r int, p *population.Population) {
			rounds = append(rounds, r)
			if p.N() != 10 {
				t.Errorf("observer got wrong population")
			}
		},
	})
	if !errors.Is(err, ErrTimeLimit) {
		t.Fatal(err)
	}
	if len(rounds) != 3 || rounds[0] != 0 || rounds[2] != 2 {
		t.Fatalf("observed rounds %v", rounds)
	}
}

func TestRunSyncSimultaneousSemantics(t *testing.T) {
	// With the keep-own rule nothing may ever change, regardless of
	// sampling — a regression guard for buffer handling.
	pop := mustPop(t, 3, 7)
	_, err := RunSync(pop, keepOwn{}, SyncConfig{
		Graph:     completeGraph(t, 10),
		Rand:      rng.New(6),
		MaxRounds: 5,
	})
	if !errors.Is(err, ErrTimeLimit) {
		t.Fatal(err)
	}
	if pop.Count(0) != 3 || pop.Count(1) != 7 {
		t.Fatalf("keep-own changed counts: %v", pop.Counts())
	}
}

func newSeqScheduler(t *testing.T, n int, seed uint64) sched.Scheduler {
	t.Helper()
	s, err := sched.NewSequential(n, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRunAsyncValidation(t *testing.T) {
	pop := mustPop(t, 5, 5)
	g := completeGraph(t, 10)
	s := newSeqScheduler(t, 10, 1)
	r := rng.New(1)
	tests := []struct {
		name string
		pop  *population.Population
		rule Rule
		cfg  AsyncConfig
	}{
		{name: "nil population", rule: adoptFirst{}, cfg: AsyncConfig{Graph: g, Scheduler: s, Rand: r, MaxTime: 1}},
		{name: "nil rule", pop: pop, cfg: AsyncConfig{Graph: g, Scheduler: s, Rand: r, MaxTime: 1}},
		{name: "nil graph", pop: pop, rule: adoptFirst{}, cfg: AsyncConfig{Scheduler: s, Rand: r, MaxTime: 1}},
		{name: "nil scheduler", pop: pop, rule: adoptFirst{}, cfg: AsyncConfig{Graph: g, Rand: r, MaxTime: 1}},
		{name: "nil rand", pop: pop, rule: adoptFirst{}, cfg: AsyncConfig{Graph: g, Scheduler: s, MaxTime: 1}},
		{name: "zero time", pop: pop, rule: adoptFirst{}, cfg: AsyncConfig{Graph: g, Scheduler: s, Rand: r}},
		{
			name: "scheduler mismatch",
			pop:  mustPop(t, 3, 3),
			rule: adoptFirst{},
			cfg: AsyncConfig{
				Graph: completeGraph(t, 6), Scheduler: s, Rand: r, MaxTime: 1,
			},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := RunAsync(tt.pop, tt.rule, tt.cfg); err == nil {
				t.Error("want validation error")
			}
		})
	}
}

func TestRunAsyncConverges(t *testing.T) {
	pop := mustPop(t, 30, 30)
	res, err := RunAsync(pop, adoptFirst{}, AsyncConfig{
		Graph:     completeGraph(t, 60),
		Scheduler: newSeqScheduler(t, 60, 7),
		Rand:      rng.New(8),
		MaxTime:   1e6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done {
		t.Fatalf("did not converge: %+v", res)
	}
	if !pop.ConsensusOn(res.Winner) {
		t.Fatalf("winner %d not consensus; counts %v", res.Winner, pop.Counts())
	}
	if res.Ticks <= 0 || res.Time < 0 {
		t.Fatalf("bogus accounting: %+v", res)
	}
}

func TestRunAsyncTimeLimit(t *testing.T) {
	pop := mustPop(t, 5, 5)
	res, err := RunAsync(pop, keepOwn{}, AsyncConfig{
		Graph:     completeGraph(t, 10),
		Scheduler: newSeqScheduler(t, 10, 9),
		Rand:      rng.New(10),
		MaxTime:   3,
	})
	if !errors.Is(err, ErrTimeLimit) {
		t.Fatalf("err = %v, want ErrTimeLimit", err)
	}
	if res.Done {
		t.Fatal("keep-own cannot converge")
	}
	if res.Time > 3 {
		t.Fatalf("res.Time = %v beyond budget", res.Time)
	}
}

func TestRunAsyncAlreadyUnanimous(t *testing.T) {
	pop := mustPop(t, 10)
	res, err := RunAsync(pop, adoptFirst{}, AsyncConfig{
		Graph:     completeGraph(t, 10),
		Scheduler: newSeqScheduler(t, 10, 11),
		Rand:      rng.New(11),
		MaxTime:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done || res.Winner != 0 {
		t.Fatalf("res = %+v", res)
	}
}

func TestRunAsyncWithDelaysStillConverges(t *testing.T) {
	pop := mustPop(t, 30, 30)
	res, err := RunAsync(pop, adoptFirst{}, AsyncConfig{
		Graph:     completeGraph(t, 60),
		Scheduler: newSeqScheduler(t, 60, 12),
		Rand:      rng.New(13),
		MaxTime:   1e6,
		Delay:     sched.ExpDelay{Rate: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done || !pop.ConsensusOn(res.Winner) {
		t.Fatalf("delayed run failed: %+v, counts %v", res, pop.Counts())
	}
}

func TestRunAsyncDelaysSlowConvergence(t *testing.T) {
	// With Exp(0.2) delays (mean 5) every opinion change costs extra
	// waiting ticks, so convergence takes strictly more parallel time than
	// the instant-response run on the same seeds.
	run := func(delay sched.DelayModel) float64 {
		pop := mustPop(t, 50, 50)
		res, err := RunAsync(pop, adoptFirst{}, AsyncConfig{
			Graph:     completeGraph(t, 100),
			Scheduler: newSeqScheduler(t, 100, 14),
			Rand:      rng.New(15),
			MaxTime:   1e6,
			Delay:     delay,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Time
	}
	instant := run(nil)
	delayed := run(sched.ExpDelay{Rate: 0.2})
	if delayed <= instant {
		t.Fatalf("delayed run (%.2f) not slower than instant (%.2f)", delayed, instant)
	}
}

func TestRunAsyncZeroDelayMatchesNil(t *testing.T) {
	run := func(delay sched.DelayModel) (float64, population.Color) {
		pop := mustPop(t, 20, 20)
		res, err := RunAsync(pop, adoptFirst{}, AsyncConfig{
			Graph:     completeGraph(t, 40),
			Scheduler: newSeqScheduler(t, 40, 16),
			Rand:      rng.New(17),
			MaxTime:   1e6,
			Delay:     delay,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Time, res.Winner
	}
	t1, w1 := run(nil)
	t2, w2 := run(sched.ZeroDelay{})
	if t1 != t2 || w1 != w2 {
		t.Fatalf("ZeroDelay diverged from nil delay: (%v,%v) vs (%v,%v)", t1, w1, t2, w2)
	}
}

func TestRunAsyncDeterministic(t *testing.T) {
	run := func() AsyncResult {
		pop := mustPop(t, 25, 25)
		res, err := RunAsync(pop, adoptFirst{}, AsyncConfig{
			Graph:     completeGraph(t, 50),
			Scheduler: newSeqScheduler(t, 50, 18),
			Rand:      rng.New(19),
			MaxTime:   1e6,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("identical seeds diverged: %+v vs %+v", a, b)
	}
}

func TestRunAsyncOnTickObserves(t *testing.T) {
	pop := mustPop(t, 5, 5)
	var ticks int
	_, err := RunAsync(pop, keepOwn{}, AsyncConfig{
		Graph:     completeGraph(t, 10),
		Scheduler: newSeqScheduler(t, 10, 20),
		Rand:      rng.New(21),
		MaxTime:   1,
		OnTick:    func(sched.Tick, *population.Population) { ticks++ },
	})
	if !errors.Is(err, ErrTimeLimit) {
		t.Fatal(err)
	}
	if ticks != 11 { // times 0, 0.1, …, 1.0
		t.Fatalf("observed %d ticks, want 11", ticks)
	}
}
