package dynamics_test

import (
	"strings"
	"testing"

	"plurality/internal/adversary"
	"plurality/internal/graph"
	"plurality/internal/population"
	dynamics "plurality/internal/protocols/dynamics"
	"plurality/internal/protocols/twochoices"
	"plurality/internal/rng"
	"plurality/internal/sched"
)

// annealedTwoClass builds the canonical multi-class lumpable fixture: a
// two-class annealed configuration model with a matching population laid out
// in color-major blocks (population.FromCounts's convention).
func annealedTwoClass(t *testing.T) (*graph.Annealed, *population.Population) {
	t.Helper()
	g, err := graph.NewAnnealed([]graph.Class{{Degree: 3, Count: 60}, {Degree: 9, Count: 60}})
	if err != nil {
		t.Fatal(err)
	}
	pop, err := population.FromCounts([]int64{75, 45})
	if err != nil {
		t.Fatal(err)
	}
	return g, pop
}

func classedCfg(t *testing.T, g graph.Graph, seed uint64, e dynamics.Engine) dynamics.AsyncConfig {
	t.Helper()
	s, err := sched.NewPoisson(g.N(), 1, rng.At(seed, 0))
	if err != nil {
		t.Fatal(err)
	}
	return dynamics.AsyncConfig{
		Graph:     g,
		Scheduler: s,
		Rand:      rng.At(seed, 1),
		MaxTime:   1e6,
		Engine:    e,
	}
}

// TestRunAsyncAutoSelectsLumpedOnClassed: on a graph.Classed topology,
// EngineAuto must route to the lumped engine — pinned by fixed-seed
// trajectory identity with EngineOccupancy (which requires the collapsed
// path): same seed, same Ticks/Time/Winner, and a fully unanimous write-back.
func TestRunAsyncAutoSelectsLumpedOnClassed(t *testing.T) {
	g, popAuto := annealedTwoClass(t)
	_, popOcc := annealedTwoClass(t)
	const seed = 71
	resAuto, err := dynamics.RunAsync(popAuto, twochoices.Rule{}, classedCfg(t, g, seed, dynamics.EngineAuto))
	if err != nil {
		t.Fatal(err)
	}
	resOcc, err := dynamics.RunAsync(popOcc, twochoices.Rule{}, classedCfg(t, g, seed, dynamics.EngineOccupancy))
	if err != nil {
		t.Fatal(err)
	}
	if !resAuto.Done || !resOcc.Done {
		t.Fatalf("runs did not converge: auto %+v, occupancy %+v", resAuto, resOcc)
	}
	if resAuto != resOcc {
		t.Errorf("EngineAuto did not take the lumped path: auto %+v != occupancy %+v", resAuto, resOcc)
	}
	if !popAuto.IsUnanimous() || popAuto.Plurality() != resAuto.Winner {
		t.Errorf("write-back: population plurality %v unanimous=%v, want winner %v unanimous",
			popAuto.Plurality(), popAuto.IsUnanimous(), resAuto.Winner)
	}
}

// TestRunAsyncOccupancyRejectsQuenchedGraph: quenched topologies advertise no
// lumpable symmetry, so forcing count-collapsed execution on them must fail
// with an error naming both missing collapses.
func TestRunAsyncOccupancyRejectsQuenchedGraph(t *testing.T) {
	g, err := graph.NewCycle(100)
	if err != nil {
		t.Fatal(err)
	}
	pop, err := population.FromCounts([]int64{60, 40})
	if err != nil {
		t.Fatal(err)
	}
	_, err = dynamics.RunAsync(pop, twochoices.Rule{}, classedCfg(t, g, 3, dynamics.EngineOccupancy))
	if err == nil || !strings.Contains(err.Error(), "lumpable") {
		t.Errorf("err = %v, want a not-lumpable rejection", err)
	}
	// EngineAuto on the same quenched run silently falls back per-node.
	_, err = dynamics.RunAsync(pop, twochoices.Rule{}, classedCfg(t, g, 3, dynamics.EngineAuto))
	if err != nil {
		t.Errorf("EngineAuto on a quenched cycle: %v", err)
	}
}

// TestRunAsyncClassedAdversaryFallsBackPerNode: the lumped engine cannot
// honor adversaries, so an adversarial run on a Classed topology must fall
// back to the per-node engine under EngineAuto and fail under
// EngineOccupancy.
func TestRunAsyncClassedAdversaryFallsBackPerNode(t *testing.T) {
	mk := func(e dynamics.Engine) (*population.Population, dynamics.AsyncConfig) {
		g, pop := annealedTwoClass(t)
		cfg := classedCfg(t, g, 5, e)
		adv, err := adversary.New(adversary.Spec{Name: "corrupt", Budget: 2}, 5)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Adversary = adv
		return pop, cfg
	}
	pop, cfg := mk(dynamics.EngineAuto)
	res, err := dynamics.RunAsync(pop, twochoices.Rule{}, cfg)
	if err != nil || !res.Done {
		t.Fatalf("adversarial EngineAuto run on Classed graph: res = %+v, err = %v", res, err)
	}
	if res.Corruptions == 0 {
		t.Error("adversary never acted; the run did not execute per-node with the adversary installed")
	}
	pop, cfg = mk(dynamics.EngineOccupancy)
	_, err = dynamics.RunAsync(pop, twochoices.Rule{}, cfg)
	if err == nil || !strings.Contains(err.Error(), "adversary") {
		t.Errorf("err = %v, want an adversary rejection", err)
	}
}

// TestRunAsyncCountsClassed: a counts run on a Classed topology must execute
// in the lumped engine via the canonical color-major block split — pinned by
// fixed-seed identity with the population entry point on the same annealed
// graph, seed and FromCounts layout — and fold the matrix back into counts.
func TestRunAsyncCountsClassed(t *testing.T) {
	g, pop := annealedTwoClass(t)
	const seed = 29
	counts := []int64{75, 45}
	resCounts, err := dynamics.RunAsyncCounts(counts, twochoices.Rule{}, classedCfg(t, g, seed, dynamics.EngineAuto))
	if err != nil {
		t.Fatal(err)
	}
	resPop, err := dynamics.RunAsync(pop, twochoices.Rule{}, classedCfg(t, g, seed, dynamics.EngineOccupancy))
	if err != nil {
		t.Fatal(err)
	}
	if resCounts != resPop {
		t.Errorf("counts run diverged from population run: %+v != %+v", resCounts, resPop)
	}
	var n int64
	for _, v := range counts {
		n += v
	}
	if n != 120 {
		t.Errorf("final histogram sums to %d, want 120", n)
	}
	if counts[resCounts.Winner] != 120 {
		t.Errorf("winner %v holds %d of 120 nodes", resCounts.Winner, counts[resCounts.Winner])
	}
}

// TestRunAsyncCountsClassedRejections: the lumped counts path inherits every
// count-collapse restriction — no leap engine, no per-node pending state, no
// adversaries, and the class total must match the histogram.
func TestRunAsyncCountsClassedRejections(t *testing.T) {
	g, _ := annealedTwoClass(t)
	base := func() dynamics.AsyncConfig { return classedCfg(t, g, 7, dynamics.EngineAuto) }

	cfg := base()
	cfg.Engine = dynamics.EngineLeap
	if _, err := dynamics.RunAsyncCounts([]int64{75, 45}, twochoices.Rule{}, cfg); err == nil {
		t.Error("EngineLeap on a Classed counts run should fail")
	}

	cfg = base()
	cfg.Delay = sched.ExpDelay{Rate: 1}
	if _, err := dynamics.RunAsyncCounts([]int64{75, 45}, twochoices.Rule{}, cfg); err == nil {
		t.Error("delays on a Classed counts run should fail")
	}

	cfg = base()
	adv, err := adversary.New(adversary.Spec{Name: "corrupt", Budget: 2}, 7)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Adversary = adv
	if _, err := dynamics.RunAsyncCounts([]int64{75, 45}, twochoices.Rule{}, cfg); err == nil {
		t.Error("an adversary on a Classed counts run should fail")
	}

	if _, err := dynamics.RunAsyncCounts([]int64{75, 44}, twochoices.Rule{}, base()); err == nil {
		t.Error("histogram/class-total mismatch should fail")
	}
}
