package dynamics_test

import (
	"strings"
	"testing"

	"plurality/internal/graph"
	"plurality/internal/population"
	dynamics "plurality/internal/protocols/dynamics"
	"plurality/internal/protocols/twochoices"
	"plurality/internal/protocols/usd"
	"plurality/internal/rng"
	"plurality/internal/sched"
)

func asyncFixtures(t *testing.T, n int, seed uint64) (*population.Population, dynamics.AsyncConfig) {
	t.Helper()
	counts, err := population.BiasedCounts(n, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	pop, err := population.FromCounts(counts)
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.NewComplete(n)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.NewPoisson(n, 1, rng.At(seed, 0))
	if err != nil {
		t.Fatal(err)
	}
	return pop, dynamics.AsyncConfig{Graph: g, Scheduler: s, Rand: rng.At(seed, 1), MaxTime: 1e5}
}

// TestAsyncEdgeLatencySlows: with per-edge latencies every decided update
// waits for the slowest sampled edge, so consensus arrives later than with
// instant edges but still arrives.
func TestAsyncEdgeLatencySlows(t *testing.T) {
	const n = 2000
	pop, cfg := asyncFixtures(t, n, 9)
	instant, err := dynamics.RunAsync(pop, twochoices.Rule{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pop2, cfg2 := asyncFixtures(t, n, 9)
	cfg2.Latency = sched.ExpLatency{Mean: 2}
	latent, err := dynamics.RunAsync(pop2, twochoices.Rule{}, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if !instant.Done || !latent.Done {
		t.Fatalf("runs did not converge: %+v / %+v", instant, latent)
	}
	if latent.Time <= instant.Time {
		t.Fatalf("latency did not slow consensus: %v vs %v", latent.Time, instant.Time)
	}
}

func TestAsyncLatencyDeterministic(t *testing.T) {
	run := func() dynamics.AsyncResult {
		pop, cfg := asyncFixtures(t, 800, 17)
		cfg.Latency = sched.UniformLatency{Min: 0.5, Max: 1.5}
		res, err := dynamics.RunAsync(pop, twochoices.Rule{}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}

// TestAsyncChurn: churn events replace opinions with uniform draws and are
// counted; at rates well below 1/n the dynamic still converges.
func TestAsyncChurn(t *testing.T) {
	const n = 2000
	pop, cfg := asyncFixtures(t, n, 4)
	cfg.Churn = 0.5 / n
	res, err := dynamics.RunAsync(pop, twochoices.Rule{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done {
		t.Fatalf("churned run did not converge: %+v", res)
	}
	if res.Churns == 0 {
		t.Fatal("churn never fired")
	}
}

func TestAsyncChurnValidation(t *testing.T) {
	pop, cfg := asyncFixtures(t, 100, 1)
	cfg.Churn = 1
	_, err := dynamics.RunAsync(pop, twochoices.Rule{}, cfg)
	if err == nil || !strings.Contains(err.Error(), "Churn") {
		t.Fatalf("err = %v", err)
	}
}

// TestUndecidedPopulationNeedsUndecidedRule: a population holding
// undecided (None) nodes is only runnable under a rule with an undecided
// state — a rule like Two-Choices would adopt None as a color and the run
// could absorb into an undetectable all-undecided state, so both engines
// must reject the combination at validation.
func TestUndecidedPopulationNeedsUndecidedRule(t *testing.T) {
	mkPop := func() *population.Population {
		pop, err := population.FromCounts([]int64{50, 50})
		if err != nil {
			t.Fatal(err)
		}
		if err := pop.SetCountsUndecided([]int64{30, 30}, 40); err != nil {
			t.Fatal(err)
		}
		return pop
	}
	g, err := graph.NewComplete(100)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.NewPoisson(100, 1, rng.At(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	_, err = dynamics.RunAsync(mkPop(), twochoices.Rule{}, dynamics.AsyncConfig{
		Graph: g, Scheduler: s, Rand: rng.At(1, 1), MaxTime: 10,
	})
	if err == nil || !strings.Contains(err.Error(), "undecided") {
		t.Errorf("async: err = %v, want undecided-state validation error", err)
	}
	_, err = dynamics.RunSync(mkPop(), twochoices.Rule{}, dynamics.SyncConfig{
		Graph: g, Rand: rng.At(1, 1), MaxRounds: 10,
	})
	if err == nil || !strings.Contains(err.Error(), "undecided") {
		t.Errorf("sync: err = %v, want undecided-state validation error", err)
	}
	// USD itself accepts the same population (and converges).
	res, err := dynamics.RunAsync(mkPop(), usd.Rule{}, dynamics.AsyncConfig{
		Graph: g, Scheduler: s, Rand: rng.At(1, 1), MaxTime: 1e6,
	})
	if err != nil || !res.Done {
		t.Errorf("usd on a partly undecided population: res = %+v, err = %v", res, err)
	}
}

// TestAllUndecidedStartSurfacesOccupancyError: a USD population with no
// decided holder is an absorbing dead state; the collapsed path must
// surface the occupancy engine's informative error rather than masking it
// with a write-back shape error.
func TestAllUndecidedStartSurfacesOccupancyError(t *testing.T) {
	pop, err := population.FromCounts([]int64{50, 50})
	if err != nil {
		t.Fatal(err)
	}
	if err := pop.SetCountsUndecided([]int64{0, 0}, 100); err != nil {
		t.Fatal(err)
	}
	g, err := graph.NewComplete(100)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.NewPoisson(100, 1, rng.At(2, 0))
	if err != nil {
		t.Fatal(err)
	}
	_, err = dynamics.RunAsync(pop, usd.Rule{}, dynamics.AsyncConfig{
		Graph: g, Scheduler: s, Rand: rng.At(2, 1), MaxTime: 10,
	})
	if err == nil || !strings.Contains(err.Error(), "decided holder") {
		t.Errorf("err = %v, want the occupancy engine's decided-holder error", err)
	}
	if pop.Undecided() != 100 {
		t.Errorf("failed run mutated the population: undecided %d", pop.Undecided())
	}
}

// TestAsyncLatencyWithDelayComposes: edge latency and the §4 per-step
// delay add; the combined run must be slower than with either alone.
func TestAsyncLatencyWithDelayComposes(t *testing.T) {
	const n = 2000
	runWith := func(lat sched.LatencyModel, delay sched.DelayModel) float64 {
		pop, cfg := asyncFixtures(t, n, 12)
		cfg.Latency = lat
		cfg.Delay = delay
		res, err := dynamics.RunAsync(pop, twochoices.Rule{}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Done {
			t.Fatalf("did not converge: %+v", res)
		}
		return res.Time
	}
	latOnly := runWith(sched.ExpLatency{Mean: 1}, nil)
	both := runWith(sched.ExpLatency{Mean: 1}, sched.ExpDelay{Rate: 1})
	if both <= latOnly {
		t.Fatalf("delay on top of latency did not slow the run: %v vs %v", both, latOnly)
	}
}
