// Package urn implements the Pólya urn process the paper uses to analyze
// the Bit-Propagation sub-phase (§3.1): balls of k colors, each draw picks a
// ball with probability proportional to its color's count and returns it
// together with a fixed number of additional balls of the same color.
//
// The key property — the one the paper's martingale argument rests on — is
// that the vector of color *fractions* is a martingale: its expectation is
// preserved by every step, so the color distribution among bit-set nodes at
// the end of Bit-Propagation matches (in expectation, and tightly
// concentrated) the distribution right after the Two-Choices step.
// Experiment E10 checks both the pure urn and the embedded protocol
// sub-phase against this property.
package urn

import (
	"fmt"

	"plurality/internal/rng"
)

// Urn is a k-color Pólya urn.
type Urn struct {
	counts []int64
	total  int64
}

// New creates an urn with the given initial ball counts. At least one count
// must be positive and none may be negative.
func New(counts []int64) (*Urn, error) {
	if len(counts) == 0 {
		return nil, fmt.Errorf("urn: empty counts")
	}
	u := &Urn{counts: make([]int64, len(counts))}
	for c, v := range counts {
		if v < 0 {
			return nil, fmt.Errorf("urn: negative count %d for color %d", v, c)
		}
		u.counts[c] = v
		u.total += v
	}
	if u.total == 0 {
		return nil, fmt.Errorf("urn: urn must start non-empty")
	}
	return u, nil
}

// K returns the number of colors.
func (u *Urn) K() int { return len(u.counts) }

// Total returns the current number of balls.
func (u *Urn) Total() int64 { return u.total }

// Count returns the number of balls of color c.
func (u *Urn) Count(c int) int64 { return u.counts[c] }

// Counts returns a copy of the per-color ball counts.
func (u *Urn) Counts() []int64 {
	out := make([]int64, len(u.counts))
	copy(out, u.counts)
	return out
}

// Fractions returns the per-color fractions of the urn contents.
func (u *Urn) Fractions() []float64 {
	out := make([]float64, len(u.counts))
	for c, v := range u.counts {
		out[c] = float64(v) / float64(u.total)
	}
	return out
}

// Draw samples a color with probability proportional to its count, without
// modifying the urn.
func (u *Urn) Draw(r *rng.RNG) int {
	target := int64(r.Uint64n(uint64(u.total)))
	for c, v := range u.counts {
		if target < v {
			return c
		}
		target -= v
	}
	// Unreachable while the invariant total == sum(counts) holds.
	return len(u.counts) - 1
}

// Step performs one Pólya reinforcement step: draw a color and add
// reinforcement extra balls of that color. It returns the drawn color.
// reinforcement must be non-negative.
func (u *Urn) Step(r *rng.RNG, reinforcement int64) (int, error) {
	if reinforcement < 0 {
		return 0, fmt.Errorf("urn: negative reinforcement %d", reinforcement)
	}
	c := u.Draw(r)
	u.counts[c] += reinforcement
	u.total += reinforcement
	return c, nil
}

// Run performs steps reinforcement steps and returns the number of draws of
// each color.
func (u *Urn) Run(r *rng.RNG, steps int, reinforcement int64) ([]int64, error) {
	drawn := make([]int64, len(u.counts))
	for i := 0; i < steps; i++ {
		c, err := u.Step(r, reinforcement)
		if err != nil {
			return nil, err
		}
		drawn[c]++
	}
	return drawn, nil
}

// Clone returns an independent copy of the urn.
func (u *Urn) Clone() *Urn {
	cp := &Urn{
		counts: make([]int64, len(u.counts)),
		total:  u.total,
	}
	copy(cp.counts, u.counts)
	return cp
}

// MartingaleDrift measures how far the urn's color-fraction vector moves
// over a run: it returns the maximum over colors of |endFrac − startFrac|.
// For a Pólya urn the fractions form a martingale, so over repeated trials
// the *average* drift per color is near zero even though individual runs
// wander; tests aggregate this statistic over trials.
func MartingaleDrift(start, end []float64) float64 {
	var worst float64
	for c := range start {
		d := end[c] - start[c]
		if d < 0 {
			d = -d
		}
		if d > worst {
			worst = d
		}
	}
	return worst
}
