package urn

import (
	"math"
	"testing"
	"testing/quick"

	"plurality/internal/rng"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("empty counts should fail")
	}
	if _, err := New([]int64{1, -1}); err == nil {
		t.Error("negative count should fail")
	}
	if _, err := New([]int64{0, 0}); err == nil {
		t.Error("empty urn should fail")
	}
}

func TestAccessors(t *testing.T) {
	u, err := New([]int64{2, 3, 5})
	if err != nil {
		t.Fatal(err)
	}
	if u.K() != 3 || u.Total() != 10 || u.Count(2) != 5 {
		t.Fatalf("K=%d Total=%d Count(2)=%d", u.K(), u.Total(), u.Count(2))
	}
	fr := u.Fractions()
	if math.Abs(fr[0]-0.2) > 1e-12 || math.Abs(fr[2]-0.5) > 1e-12 {
		t.Fatalf("fractions = %v", fr)
	}
	counts := u.Counts()
	counts[0] = 99
	if u.Count(0) != 2 {
		t.Fatal("Counts aliases internal state")
	}
}

func TestDrawProportional(t *testing.T) {
	u, err := New([]int64{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(1)
	const draws = 40000
	var ones int
	for i := 0; i < draws; i++ {
		if u.Draw(r) == 1 {
			ones++
		}
	}
	got := float64(ones) / draws
	if math.Abs(got-0.75) > 0.01 {
		t.Fatalf("P(color 1) = %.4f, want ~0.75", got)
	}
}

func TestDrawNeverPicksEmptyColor(t *testing.T) {
	u, err := New([]int64{5, 0, 5})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(2)
	for i := 0; i < 5000; i++ {
		if u.Draw(r) == 1 {
			t.Fatal("drew a color with zero balls")
		}
	}
}

func TestStepReinforces(t *testing.T) {
	u, err := New([]int64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(3)
	c, err := u.Step(r, 4)
	if err != nil {
		t.Fatal(err)
	}
	if u.Total() != 6 {
		t.Fatalf("total = %d, want 6", u.Total())
	}
	if u.Count(c) != 5 {
		t.Fatalf("drawn color count = %d, want 5", u.Count(c))
	}
	if _, err := u.Step(r, -1); err == nil {
		t.Error("negative reinforcement should fail")
	}
}

func TestRunConservation(t *testing.T) {
	// Property: after any run, total == initial + steps·reinforcement and
	// counts stay non-negative.
	check := func(a, b uint8, steps uint8) bool {
		counts := []int64{int64(a) + 1, int64(b)}
		u, err := New(counts)
		if err != nil {
			return false
		}
		start := u.Total()
		r := rng.New(uint64(a)<<16 | uint64(b)<<8 | uint64(steps))
		drawn, err := u.Run(r, int(steps), 2)
		if err != nil {
			return false
		}
		var totalDrawn int64
		for _, d := range drawn {
			totalDrawn += d
		}
		if totalDrawn != int64(steps) {
			return false
		}
		return u.Total() == start+2*int64(steps) && u.Count(0) >= 0 && u.Count(1) >= 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFractionMartingale(t *testing.T) {
	// The expected fraction of each color is invariant: averaging the final
	// fraction over many trials recovers the initial fraction.
	const (
		trials = 2000
		steps  = 200
	)
	initial := []int64{30, 10, 60}
	var sumFinal [3]float64
	for trial := 0; trial < trials; trial++ {
		u, err := New(initial)
		if err != nil {
			t.Fatal(err)
		}
		r := rng.At(42, trial)
		if _, err := u.Run(r, steps, 1); err != nil {
			t.Fatal(err)
		}
		for c, f := range u.Fractions() {
			sumFinal[c] += f
		}
	}
	for c, want := range []float64{0.3, 0.1, 0.6} {
		got := sumFinal[c] / trials
		if math.Abs(got-want) > 0.02 {
			t.Errorf("color %d: mean final fraction %.4f, want ~%.2f", c, got, want)
		}
	}
}

func TestLargeUrnFractionsConcentrate(t *testing.T) {
	// With a large initial urn the fraction drift over a short run is small
	// in every single trial — this is the concentration the paper leans on
	// when Bit-Propagation grows the bit-set node count from ~n/k to n.
	initial := []int64{60000, 30000, 10000}
	u, err := New(initial)
	if err != nil {
		t.Fatal(err)
	}
	start := u.Fractions()
	r := rng.New(7)
	if _, err := u.Run(r, 5000, 1); err != nil {
		t.Fatal(err)
	}
	if drift := MartingaleDrift(start, u.Fractions()); drift > 0.01 {
		t.Fatalf("fraction drift %.4f > 0.01 on large urn", drift)
	}
}

func TestCloneIndependent(t *testing.T) {
	u, err := New([]int64{5, 5})
	if err != nil {
		t.Fatal(err)
	}
	cp := u.Clone()
	r := rng.New(8)
	if _, err := cp.Step(r, 3); err != nil {
		t.Fatal(err)
	}
	if u.Total() != 10 {
		t.Fatal("clone mutated original")
	}
	if cp.Total() != 13 {
		t.Fatal("clone step had no effect")
	}
}

func TestMartingaleDrift(t *testing.T) {
	got := MartingaleDrift([]float64{0.5, 0.3, 0.2}, []float64{0.45, 0.38, 0.17})
	if math.Abs(got-0.08) > 1e-12 {
		t.Fatalf("drift = %v, want 0.08", got)
	}
	if MartingaleDrift(nil, nil) != 0 {
		t.Error("empty drift should be 0")
	}
}

func BenchmarkUrnStep(b *testing.B) {
	u, err := New([]int64{1000, 2000, 3000, 4000})
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := u.Step(r, 1); err != nil {
			b.Fatal(err)
		}
	}
}
