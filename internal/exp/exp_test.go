package exp

import (
	"strings"
	"testing"
)

func TestScenarioValidate(t *testing.T) {
	valid := Scenario{
		Protocol: "core", N: 64, K: 3,
		Bias: "biased", BiasParam: 1,
		Topology: "complete", Model: "sequential",
	}
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid scenario rejected: %v", err)
	}

	cases := []struct {
		name   string
		mutate func(*Scenario)
		want   string
	}{
		{"bad protocol", func(s *Scenario) { s.Protocol = "gossip" }, "unknown protocol"},
		{"bad n", func(s *Scenario) { s.N = 2 }, "n ="},
		{"bad k", func(s *Scenario) { s.K = 1 }, "k ="},
		{"bad bias", func(s *Scenario) { s.Bias = "lopsided" }, "unknown bias"},
		{"bad topology", func(s *Scenario) { s.Topology = "hypercube" }, "unknown topology"},
		{"non-square torus", func(s *Scenario) { s.Topology = "torus"; s.N = 60 }, "square"},
		{"gnp without p", func(s *Scenario) { s.Topology = "gnp" }, "gnp"},
		{"bad model", func(s *Scenario) { s.Model = "round-robin" }, "unknown model"},
		{"crash on dynamics", func(s *Scenario) { s.Protocol = "voter"; s.Crash = 0.1 }, "crash injection"},
		{"crash on cycle", func(s *Scenario) { s.Topology = "cycle"; s.Crash = 0.1 }, "complete topology"},
		{"bad churn", func(s *Scenario) { s.Churn = 1.5 }, "churn"},
		{"bad crash", func(s *Scenario) { s.Crash = 1.5 }, "crash"},
		{"negative delay", func(s *Scenario) { s.DelayRate = -1 }, "delayRate"},
		{"negative maxtime", func(s *Scenario) { s.MaxTime = -5 }, "maxTime"},
		{"bad bias param", func(s *Scenario) { s.BiasParam = 0 }, "bias"},
		{"bad latency", func(s *Scenario) { s.Latency = "gaussian:1" }, "latency"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sc := valid
			tc.mutate(&sc)
			err := sc.Validate()
			if err == nil {
				t.Fatalf("scenario %+v should be invalid", sc)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestParseLatency(t *testing.T) {
	for _, s := range []string{"", "none"} {
		m, err := parseLatency(s)
		if err != nil || m != nil {
			t.Fatalf("parseLatency(%q) = %v, %v; want nil, nil", s, m, err)
		}
	}
	for _, s := range []string{"exp:1", "exp:0.5", "uniform:0:2", "uniform:1:3"} {
		m, err := parseLatency(s)
		if err != nil || m == nil {
			t.Fatalf("parseLatency(%q) = %v, %v; want model, nil", s, m, err)
		}
	}
	for _, s := range []string{"exp", "exp:0", "exp:-1", "exp:x", "uniform:2:1", "uniform:1", "pareto:2"} {
		if _, err := parseLatency(s); err == nil {
			t.Fatalf("parseLatency(%q) should fail", s)
		}
	}
}

func TestRunScenarioDeterministic(t *testing.T) {
	sc := Scenario{
		Protocol: "core", N: 300, K: 3,
		Bias: "biased", BiasParam: 1,
		Topology: "complete", Model: "poisson",
	}
	a, err := RunScenario(sc, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunScenario(sc, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
	if !a.Done || !a.Win {
		t.Fatalf("biased core run should end in a plurality win: %+v", a)
	}
	c, err := RunScenario(sc, 8)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Fatalf("distinct seeds produced identical trials: %+v", a)
	}
}

func TestRunScenarioEveryProtocol(t *testing.T) {
	for _, proto := range []string{"core", "two-choices", "three-majority", "voter"} {
		sc := Scenario{
			Protocol: proto, N: 200, K: 2,
			Bias: "biased", BiasParam: 2,
			Topology: "complete", Model: "sequential",
		}
		tr, err := RunScenario(sc, 3)
		if err != nil {
			t.Fatalf("%s: %v", proto, err)
		}
		if !tr.Done || tr.Ticks == 0 {
			t.Fatalf("%s: %+v", proto, tr)
		}
	}
}

func TestRunScenarioTimeoutIsNotAnError(t *testing.T) {
	sc := Scenario{
		Protocol: "voter", N: 400, K: 2,
		Bias:     "uniform",
		Topology: "cycle", Model: "sequential",
		// A cycle voter needs Θ(n²) time; 1 unit cannot suffice.
		MaxTime: 1,
	}
	tr, err := RunScenario(sc, 1)
	if err != nil {
		t.Fatalf("timeout should be a recorded failure, not an error: %v", err)
	}
	if tr.Done {
		t.Fatalf("voter on a 400-cycle cannot converge in 1 time unit: %+v", tr)
	}
}

func TestRunScenarioSpatialTopologies(t *testing.T) {
	for _, topo := range []struct {
		name  string
		param float64
		n     int
	}{
		{"torus", 0, 64}, {"gnp", 0.2, 100}, {"cycle", 0, 64},
	} {
		sc := Scenario{
			Protocol: "voter", N: topo.n, K: 2,
			Bias: "biased", BiasParam: 4,
			Topology: topo.name, TopologyParam: topo.param,
			Model: "sequential",
		}
		tr, err := RunScenario(sc, 5)
		if err != nil {
			t.Fatalf("%s: %v", topo.name, err)
		}
		if !tr.Done {
			t.Fatalf("%s: voter with overwhelming bias should converge: %+v", topo.name, tr)
		}
	}
}

func TestRunScenarioChurnCounted(t *testing.T) {
	sc := Scenario{
		Protocol: "core", N: 300, K: 3,
		Bias: "biased", BiasParam: 1,
		Topology: "complete", Model: "poisson",
		Churn: 0.0005,
	}
	tr, err := RunScenario(sc, 11)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Churns == 0 {
		t.Fatalf("churn rate 5e-4 over a full run should fire at least once: %+v", tr)
	}
}

// TestRunScenarioCorePerNodeEngine: the redundant engine "per-node" on the
// core protocol (which always runs per node) stays runnable — the strict
// Job validation layer must not reject the no-op spelling Scenario.Validate
// accepts.
func TestRunScenarioCorePerNodeEngine(t *testing.T) {
	sc := Scenario{Protocol: "core", N: 600, K: 2, Bias: "biased", BiasParam: 1,
		Topology: "complete", Model: "sequential", Engine: "per-node"}
	tr, err := RunScenario(sc, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Done {
		t.Fatalf("trial = %+v, want Done", tr)
	}
}
