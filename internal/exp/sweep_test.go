package exp

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func baseScenario() Scenario {
	return Scenario{
		Protocol: "core", N: 200, K: 3,
		Bias: "biased", BiasParam: 1,
		Topology: "complete", Model: "sequential",
	}
}

func TestCompileCartesianProduct(t *testing.T) {
	s := Sweep{
		Name: "t",
		Base: baseScenario(),
		Axes: []Axis{
			{Name: "n", Values: []string{"100", "200", "400"}},
			{Name: "k", Values: []string{"2", "4"}},
		},
		Trials: 1,
	}
	cells, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 6 {
		t.Fatalf("got %d cells, want 6", len(cells))
	}
	first, last := cells[0], cells[5]
	if first.Label != "n=100,k=2" || first.Scenario.N != 100 || first.Scenario.K != 2 {
		t.Fatalf("first cell: %+v", first)
	}
	if last.Label != "n=400,k=4" || last.Scenario.N != 400 || last.Scenario.K != 4 {
		t.Fatalf("last cell: %+v", last)
	}
	if first.Params["n"] != "100" || first.Params["k"] != "2" {
		t.Fatalf("params: %+v", first.Params)
	}
}

func TestCompileChurnPerN(t *testing.T) {
	s := Sweep{
		Name: "t",
		Base: baseScenario(),
		Axes: []Axis{
			{Name: "n", Values: []string{"100", "1000"}},
			{Name: "churn", Values: []string{"0.5/n"}},
		},
		Trials: 1,
	}
	cells, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if got := cells[0].Scenario.Churn; got != 0.005 {
		t.Fatalf("churn at n=100: %v, want 0.005", got)
	}
	if got := cells[1].Scenario.Churn; got != 0.0005 {
		t.Fatalf("churn at n=1000: %v, want 0.0005", got)
	}
}

func TestCompileRejectsBadCells(t *testing.T) {
	cases := []Sweep{
		// Unknown axis name.
		{Base: baseScenario(), Axes: []Axis{{Name: "temperature", Values: []string{"1"}}}, Trials: 1},
		// Bad value for a known axis.
		{Base: baseScenario(), Axes: []Axis{{Name: "n", Values: []string{"many"}}}, Trials: 1},
		// Axis with no values.
		{Base: baseScenario(), Axes: []Axis{{Name: "n", Values: nil}}, Trials: 1},
		// Crash on a sparse topology must fail at compile time.
		{Base: baseScenario(), Axes: []Axis{
			{Name: "topology", Values: []string{"cycle"}},
			{Name: "crash", Values: []string{"0.1"}},
		}, Trials: 1},
		// A bias parameter the workload constructor rejects must fail at
		// compile time too, not mid-run.
		{Base: baseScenario(), Axes: []Axis{
			{Name: "bias", Values: []string{"biased:0"}},
		}, Trials: 1},
		// No trials.
		{Base: baseScenario(), Trials: 0},
	}
	for i, s := range cases {
		if _, err := s.Compile(); err == nil {
			t.Errorf("case %d should fail to compile", i)
		}
	}
}

func TestSweepRunAggregates(t *testing.T) {
	s := Sweep{
		Name: "t",
		Base: baseScenario(),
		Axes: []Axis{
			{Name: "n", Values: []string{"100", "300"}},
		},
		Trials: 4,
		Seed:   5,
	}
	var log bytes.Buffer
	rep, err := s.Run(Options{Workers: 2, Log: &log})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != SchemaVersion || rep.Sweep != "t" || len(rep.Cells) != 2 {
		t.Fatalf("report: %+v", rep)
	}
	for _, c := range rep.Cells {
		if c.Trials != 4 || c.Failures != 0 {
			t.Fatalf("cell %q: %+v", c.Label, c)
		}
		if !(c.Min <= c.Q10 && c.Q10 <= c.Median && c.Median <= c.Q90 && c.Q90 <= c.Max) {
			t.Fatalf("cell %q quantiles out of order: %+v", c.Label, c)
		}
		if !(c.CILo <= c.Mean && c.Mean <= c.CIHi) {
			t.Fatalf("cell %q CI does not bracket the mean: %+v", c.Label, c)
		}
		if c.MeanTicks <= 0 || c.PluralityWins == 0 {
			t.Fatalf("cell %q: %+v", c.Label, c)
		}
	}
	if !strings.Contains(log.String(), "n=100") {
		t.Fatalf("progress log missing cell line:\n%s", log.String())
	}
}

// TestSweepRunDeterministicAcrossWorkers is the harness's reproducibility
// contract: the Report is a pure function of the Sweep value, independent
// of parallelism.
func TestSweepRunDeterministicAcrossWorkers(t *testing.T) {
	s := Sweep{
		Name:   "t",
		Base:   baseScenario(),
		Axes:   []Axis{{Name: "n", Values: []string{"100", "200"}}},
		Trials: 3,
		Seed:   9,
	}
	one, err := s.Run(Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	four, err := s.Run(Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(one)
	b, _ := json.Marshal(four)
	if !bytes.Equal(a, b) {
		t.Fatalf("worker count changed the report:\n%s\nvs\n%s", a, b)
	}
}

func TestSweepRunRecordsTimeouts(t *testing.T) {
	s := Sweep{
		Name: "t",
		Base: Scenario{
			Protocol: "voter", N: 400, K: 2,
			Bias: "uniform", Topology: "cycle", Model: "sequential",
			MaxTime: 1,
		},
		Axes:   []Axis{{Name: "n", Values: []string{"400"}}},
		Trials: 2,
		Seed:   1,
	}
	rep, err := s.Run(Options{})
	if err != nil {
		t.Fatal(err)
	}
	c := rep.Cells[0]
	if c.Failures != 2 || c.Mean != 0 {
		t.Fatalf("all-timeout cell should report failures with zeroed stats: %+v", c)
	}
}
