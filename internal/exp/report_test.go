package exp

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func mkReport(cells ...CellResult) *Report {
	return &Report{Schema: SchemaVersion, Sweep: "t", Cells: cells}
}

func cell(label string, mean, ciLo, ciHi float64, trials, failures int) CellResult {
	return CellResult{
		Label: label, Params: map[string]string{},
		Trials: trials, Failures: failures,
		Mean: mean, CILo: ciLo, CIHi: ciHi,
	}
}

func TestCompareClean(t *testing.T) {
	base := mkReport(cell("n=100", 50, 48, 52, 5, 0))
	cur := mkReport(cell("n=100", 51, 49, 53, 5, 0))
	if regs := Compare(cur, base, 0.25); len(regs) != 0 {
		t.Fatalf("unexpected regressions: %v", regs)
	}
}

func TestCompareFlagsMeanRegression(t *testing.T) {
	base := mkReport(cell("n=100", 50, 48, 52, 5, 0))
	cur := mkReport(cell("n=100", 80, 75, 85, 5, 0))
	regs := Compare(cur, base, 0.25)
	if len(regs) != 1 || !strings.Contains(regs[0], "exceeds baseline") {
		t.Fatalf("regressions: %v", regs)
	}
}

// Within the tolerance band, or with overlapping CIs, a slower mean is not
// a regression — both conditions must hold to flag.
func TestCompareToleranceAndCIBothRequired(t *testing.T) {
	base := mkReport(cell("n=100", 50, 48, 52, 5, 0))
	// 10% slower: inside the 25% band even though CIs are disjoint.
	inBand := mkReport(cell("n=100", 55, 54, 56, 5, 0))
	if regs := Compare(inBand, base, 0.25); len(regs) != 0 {
		t.Fatalf("in-band slowdown flagged: %v", regs)
	}
	// 60% slower but with a CI overlapping the baseline's: noisy, not flagged.
	noisy := mkReport(cell("n=100", 80, 51, 109, 5, 0))
	if regs := Compare(noisy, base, 0.25); len(regs) != 0 {
		t.Fatalf("CI-overlapping slowdown flagged: %v", regs)
	}
}

// TestCompareFailureRateNotCount: a run with fewer trials (a -trials
// override) must still flag a cell whose failure *rate* regressed, and a
// proportionally equal rate must not flag.
func TestCompareFailureRateNotCount(t *testing.T) {
	base := mkReport(cell("n=100", 50, 48, 52, 5, 2)) // 40% fail
	worse := mkReport(cell("n=100", 0, 0, 0, 2, 2))   // 100% fail, but count ties baseline
	regs := Compare(worse, base, 0.25)
	if len(regs) != 1 || !strings.Contains(regs[0], "trials failed") {
		t.Fatalf("total convergence loss not flagged: %v", regs)
	}
	same := mkReport(cell("n=100", 50, 48, 52, 10, 4)) // 40% fail again
	if regs := Compare(same, base, 0.25); len(regs) != 0 {
		t.Fatalf("equal failure rate flagged: %v", regs)
	}
}

func TestCompareFlagsMissingCellAndNewFailures(t *testing.T) {
	base := mkReport(
		cell("n=100", 50, 48, 52, 5, 0),
		cell("n=200", 60, 58, 62, 5, 0),
	)
	cur := mkReport(cell("n=100", 50, 48, 52, 5, 2))
	regs := Compare(cur, base, 0.25)
	if len(regs) != 2 {
		t.Fatalf("want missing-cell + failure regressions, got: %v", regs)
	}
	joined := strings.Join(regs, "\n")
	if !strings.Contains(joined, "missing") || !strings.Contains(joined, "trials failed") {
		t.Fatalf("regressions: %v", regs)
	}
}

func TestCompareIgnoresNewCellsAndImprovements(t *testing.T) {
	base := mkReport(cell("n=100", 50, 48, 52, 5, 0))
	cur := mkReport(
		cell("n=100", 20, 19, 21, 5, 0), // faster: fine
		cell("n=400", 90, 88, 92, 5, 0), // new grid point: fine
	)
	if regs := Compare(cur, base, 0.25); len(regs) != 0 {
		t.Fatalf("unexpected regressions: %v", regs)
	}
}

func TestCompareSchemaMismatch(t *testing.T) {
	base := mkReport()
	cur := mkReport()
	cur.Schema = "plurality-exp/v0"
	if regs := Compare(cur, base, 0.25); len(regs) != 1 || !strings.Contains(regs[0], "schema") {
		t.Fatalf("regressions: %v", regs)
	}
}

// TestCompareSmokeFullMismatch: diffing a full-grid run against a smoke
// baseline must produce one clear diagnostic, not per-cell noise.
func TestCompareSmokeFullMismatch(t *testing.T) {
	base := mkReport(cell("n=256", 50, 48, 52, 5, 0))
	base.Smoke = true
	cur := mkReport(cell("n=8192", 90, 88, 92, 12, 0))
	regs := Compare(cur, base, 0.25)
	if len(regs) != 1 || !strings.Contains(regs[0], "grid mismatch") {
		t.Fatalf("regressions: %v", regs)
	}
}

func TestBundleRoundTrip(t *testing.T) {
	b := NewBundle()
	b.Reports["t"] = mkReport(cell("n=100", 50, 48, 52, 5, 0))
	path := filepath.Join(t.TempDir(), "bundle.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	got, err := LoadBundle(path)
	if err != nil {
		t.Fatal(err)
	}
	rep := got.Reports["t"]
	if rep == nil || rep.Cells[0].Label != "n=100" || rep.Cells[0].Mean != 50 {
		t.Fatalf("round trip lost data: %+v", got)
	}
}

func TestLoadBundleRejectsBadSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bundle.json")
	if err := os.WriteFile(path, []byte(`{"schema":"something-else","reports":{}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBundle(path); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("err = %v", err)
	}
	bad := `{"schema":"` + BundleSchemaVersion + `","reports":{"x":{"schema":"nope"}}}`
	if err := os.WriteFile(path, []byte(bad), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBundle(path); err == nil {
		t.Fatal("bad report schema should fail")
	}
}

func TestReportGateHelpers(t *testing.T) {
	r := mkReport()
	r.addGate("a", true, "fine")
	r.addGate("b", false, "broke: %d", 7)
	failed := r.FailedGates()
	if len(failed) != 1 || !strings.Contains(failed[0], "broke: 7") {
		t.Fatalf("failed gates: %v", failed)
	}
}

func TestNamedRegistry(t *testing.T) {
	names := Named()
	if len(names) != 11 {
		t.Fatalf("want 11 named sweeps, got %d", len(names))
	}
	for _, want := range []string{"logn-scaling", "engine-equivalence", "scale", "leap-budget", "protocol-race", "latency", "churn", "topology", "topology-equivalence", "adversary-threshold", "net-equivalence"} {
		ns, ok := NamedByName(want)
		if !ok {
			t.Fatalf("missing named sweep %q", want)
		}
		for _, smoke := range []bool{true, false} {
			sw := ns.Build(smoke, 1, 0)
			if sw.Trials <= 0 {
				t.Fatalf("%s smoke=%v: trials %d", want, smoke, sw.Trials)
			}
			if _, err := sw.Compile(); err != nil {
				t.Fatalf("%s smoke=%v does not compile: %v", want, smoke, err)
			}
		}
		if sw := ns.Build(true, 1, 2); sw.Trials != 2 {
			t.Fatalf("%s: trial override ignored", want)
		}
	}
	if _, ok := NamedByName("nope"); ok {
		t.Fatal("unknown sweep resolved")
	}
}

// TestNamedGatesOnTinyRun executes the cheapest named sweep end to end with
// overridden trials so the gate plumbing is covered by go test.
func TestNamedGatesOnTinyRun(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	ns, _ := NamedByName("topology")
	sw := ns.Build(true, 1, 2)
	rep, err := sw.Run(Options{})
	if err != nil {
		t.Fatal(err)
	}
	ns.Check(rep)
	if len(rep.Gates) == 0 {
		t.Fatal("check added no gates")
	}
	for _, g := range rep.Gates {
		if !g.Pass {
			t.Errorf("gate %s failed: %s", g.Name, g.Detail)
		}
	}
}
