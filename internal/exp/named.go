package exp

import (
	"fmt"

	"plurality"
	"plurality/internal/stats"
)

// NamedSweep is a registered sweep: a grid builder (full and down-scaled
// smoke variants) plus an optional Check that turns the expected result
// shape into gates recorded on the report.
type NamedSweep struct {
	// Name is the -sweep identifier.
	Name string
	// Description is one line for listings and EXPERIMENTS.md.
	Description string
	// Build materializes the grid. smoke selects the CI-sized variant;
	// trials overrides the per-cell trial count when positive.
	Build func(smoke bool, seed uint64, trials int) Sweep
	// Check appends statistical gates to the executed report; nil means
	// no gates beyond baseline comparison.
	Check func(rep *Report)
}

// Named returns every registered sweep, in presentation order.
func Named() []NamedSweep {
	return []NamedSweep{lognScaling(), engineEquivalence(), scaleSweep(), leapBudget(), protocolRace(), latencySweep(), churnSweep(), topologySweep(), topologyEquivalence(), adversaryThreshold(), netEquivalence()}
}

// NamedByName resolves one registered sweep.
func NamedByName(name string) (NamedSweep, bool) {
	for _, ns := range Named() {
		if ns.Name == name {
			return ns, true
		}
	}
	return NamedSweep{}, false
}

func pickTrials(trials, def int) int {
	if trials > 0 {
		return trials
	}
	return def
}

// agreeCell reports whether two cells' consensus-time statistics agree:
// overlapping bootstrap CIs, with a relative-band fallback for the
// occasional narrow-CI draw. It is the shared equivalence test of the
// engine-equivalence and topology-equivalence sweeps.
func agreeCell(a, b *CellResult) (bool, float64) {
	overlap := a.CILo <= b.CIHi && b.CILo <= a.CIHi
	rel := (a.Mean - b.Mean) / a.Mean
	if rel < 0 {
		rel = -rel
	}
	return overlap || rel <= 0.35, rel
}

// lognScaling is the paper's headline claim (Theorem 1.3) as a regression
// test: consensus time of the core protocol on the clique must grow like
// log n. The gate fits mean consensus time against ln n and requires both a
// high coefficient of determination and a stable slope across the lower and
// upper halves of the grid — a superlogarithmic trend bends the fit and
// breaks the half-slope ratio.
func lognScaling() NamedSweep {
	return NamedSweep{
		Name:        "logn-scaling",
		Description: "core protocol consensus time vs n on the clique; fits T(n) ~ a·ln n + b and gates on fit quality and slope stability (Theorem 1.3)",
		Build: func(smoke bool, seed uint64, trials int) Sweep {
			// Consensus time is quantized to phase boundaries (7∆ each), so
			// the log n trend only emerges once trial noise is averaged
			// down; the grids trade n-range against trials accordingly.
			ns := []string{"8192", "16384", "32768", "65536", "131072", "262144"}
			def := 12
			if smoke {
				ns = []string{"256", "512", "1024", "2048", "4096", "8192", "16384"}
				def = 24
			}
			return Sweep{
				Name: "logn-scaling",
				Base: Scenario{
					Protocol: "core", K: 4,
					Bias: "biased", BiasParam: 1,
					Topology: "complete", Model: "poisson",
				},
				Axes:   []Axis{{Name: "n", Values: ns}},
				Trials: pickTrials(trials, def),
				Seed:   seed,
			}
		},
		Check: func(rep *Report) {
			gateAllConverged(rep)
			var ns, means []float64
			for _, c := range rep.Cells {
				if c.Trials-c.Failures == 0 {
					continue
				}
				ns = append(ns, float64(c.N))
				means = append(means, c.Mean)
			}
			fit, err := stats.LogFit(ns, means)
			if err != nil {
				rep.addGate("logn-fit", false, "fit failed: %v", err)
				return
			}
			rep.addGate("logn-fit", fit.R2 >= 0.85 && fit.Slope > 0,
				"T(n) ~ %.2f·ln n + %.2f, R2 = %.4f (want R2 >= 0.85, slope > 0)", fit.Slope, fit.Intercept, fit.R2)
			if len(ns) < 4 {
				rep.addGate("logn-slope-stable", false, "only %d converged cells, need >= 4", len(ns))
				return
			}
			mid := len(ns) / 2
			lower, errL := stats.LogFit(ns[:mid+1], means[:mid+1])
			upper, errU := stats.LogFit(ns[mid:], means[mid:])
			if errL != nil || errU != nil {
				rep.addGate("logn-slope-stable", false, "half fits failed: %v / %v", errL, errU)
				return
			}
			ratio := upper.Slope / lower.Slope
			rep.addGate("logn-slope-stable", ratio >= 0.4 && ratio <= 2.5,
				"half-grid slopes %.2f (lower) vs %.2f (upper), ratio %.2f (want in [0.4, 2.5])",
				lower.Slope, upper.Slope, ratio)
		},
	}
}

// engineEquivalence runs the same Two-Choices grid under the per-node, the
// count-collapsed occupancy, and the hybrid leap engine. The collapse is
// exact, so at every n the first two engines' consensus-time statistics
// must agree — a live, sweep-level restatement of the package-level KS
// equivalence gates that also catches a silently diverging engine in CI.
// The leap engine is approximate by design; its cells gate against the
// occupancy cells under the same agreement band, pinning the leaping error
// at sizes where the exact law is available.
func engineEquivalence() NamedSweep {
	return NamedSweep{
		Name:        "engine-equivalence",
		Description: "Two-Choices consensus time under the per-node vs the count-collapsed occupancy vs the hybrid leap engine; gates on convergence, on per-node/occupancy agreeing (the collapse is exact) and on leap staying within the same band of occupancy",
		Build: func(smoke bool, seed uint64, trials int) Sweep {
			ns := []string{"65536", "262144", "1048576"}
			def := 10
			if smoke {
				ns = []string{"4096", "16384", "65536"}
				def = 8
			}
			return Sweep{
				Name: "engine-equivalence",
				Base: Scenario{
					Protocol: "two-choices", K: 4,
					Bias: "biased", BiasParam: 1,
					Topology: "complete", Model: "poisson",
				},
				Axes: []Axis{
					{Name: "n", Values: ns},
					{Name: "engine", Values: []string{"per-node", "occupancy", "leap"}},
				},
				Trials: pickTrials(trials, def),
				Seed:   seed,
			}
		},
		Check: func(rep *Report) {
			gateAllConverged(rep)
			agree, leapAgree := true, true
			detail, leapDetail := "", ""
			seen := map[string]bool{}
			for _, c := range rep.Cells {
				nv := c.Params["n"]
				if seen[nv] {
					continue
				}
				seen[nv] = true
				var per, occ, leap *CellResult
				for i := range rep.Cells {
					cc := &rep.Cells[i]
					if cc.Params["n"] != nv {
						continue
					}
					switch cc.Params["engine"] {
					case "per-node":
						per = cc
					case "occupancy":
						occ = cc
					case "leap":
						leap = cc
					}
				}
				if per == nil || occ == nil || per.Trials == per.Failures || occ.Trials == occ.Failures {
					agree = false
					detail += fmt.Sprintf(" n=%s: missing or unconverged engine cell;", nv)
					continue
				}
				if ok, rel := agreeCell(per, occ); !ok {
					agree = false
					detail += fmt.Sprintf(" n=%s: per-node mean %.2f vs occupancy %.2f (rel %.2f, disjoint CIs);",
						nv, per.Mean, occ.Mean, rel)
				}
				if leap == nil || leap.Trials == leap.Failures {
					leapAgree = false
					leapDetail += fmt.Sprintf(" n=%s: missing or unconverged leap cell;", nv)
				} else if ok, rel := agreeCell(occ, leap); !ok {
					leapAgree = false
					leapDetail += fmt.Sprintf(" n=%s: occupancy mean %.2f vs leap %.2f (rel %.2f, disjoint CIs);",
						nv, occ.Mean, leap.Mean, rel)
				}
			}
			rep.addGate("engines-agree", agree, "per-node and occupancy statistics agree at every n;%s", detail)
			rep.addGate("leap-agrees", leapAgree, "leap statistics stay within the agreement band of occupancy at every n;%s", leapDetail)
		},
	}
}

// scaleSweep is the workload only the count-collapsed engine can carry: the
// occupancy engine at population sizes far beyond what O(n) simulation
// reaches, up to n = 10⁸ in the full grid (O(k) memory per cell). It keeps
// the Θ(log n) shape of Theorem-1.3-adjacent dynamics observable at scale.
func scaleSweep() NamedSweep {
	return NamedSweep{
		Name:        "scale",
		Description: "count-collapsed occupancy engine at n up to 1e8 (O(k) memory; per-node engines stop near 1e6); gates on convergence, plurality wins, and consensus time growing with n",
		Build: func(smoke bool, seed uint64, trials int) Sweep {
			ns := []string{"1000000", "10000000", "100000000"}
			def := 4
			if smoke {
				ns = []string{"262144", "1048576", "4194304"}
			}
			return Sweep{
				Name: "scale",
				Base: Scenario{
					Protocol: "two-choices", K: 4,
					Bias: "biased", BiasParam: 1,
					Topology: "complete", Model: "poisson",
					Engine: "occupancy",
				},
				Axes:   []Axis{{Name: "n", Values: ns}},
				Trials: pickTrials(trials, def),
				Seed:   seed,
			}
		},
		Check: func(rep *Report) {
			gateAllConverged(rep)
			wins := true
			detail := ""
			for _, c := range rep.Cells {
				if conv := c.Trials - c.Failures; conv > 0 && c.PluralityWins < conv {
					wins = false
					detail += fmt.Sprintf(" %q: %d/%d;", c.Label, c.PluralityWins, conv)
				}
			}
			rep.addGate("plurality-wins", wins, "plurality color won every converged trial;%s", detail)
			if len(rep.Cells) >= 2 {
				first, last := rep.Cells[0], rep.Cells[len(rep.Cells)-1]
				if first.Trials-first.Failures > 0 && last.Trials-last.Failures > 0 {
					rep.addGate("time-grows", last.Mean > first.Mean,
						"mean consensus time %.2f at n=%d vs %.2f at n=%d (want growth with n)",
						last.Mean, last.N, first.Mean, first.N)
				} else {
					rep.addGate("time-grows", false, "first or last cell unconverged")
				}
			}
		},
	}
}

// leapBudget sweeps the hybrid engine's tau-leap error budget: the same
// biased instance under eps from loose to tight must converge, let the
// plurality win, and agree on mean consensus time across budgets — the
// knob trades steps for accuracy, not for a different answer.
func leapBudget() NamedSweep {
	const tightest = "leap:0.002"
	return NamedSweep{
		Name:        "leap-budget",
		Description: "hybrid leap engine across tau-leap error budgets (engine leap:<eps>) on one biased clique instance; gates on convergence, plurality wins, and budget-invariant consensus times",
		Build: func(smoke bool, seed uint64, trials int) Sweep {
			n, def := "1000000000", 8
			if smoke {
				n, def = "10000000", 8
			}
			return Sweep{
				Name: "leap-budget",
				Base: Scenario{
					Protocol: "two-choices", K: 4,
					Bias: "biased", BiasParam: 1,
					Topology: "complete", Model: "poisson",
				},
				Axes: []Axis{
					{Name: "n", Values: []string{n}},
					{Name: "engine", Values: []string{"leap:0.05", "leap:0.01", tightest}},
				},
				Trials: pickTrials(trials, def),
				Seed:   seed,
			}
		},
		Check: func(rep *Report) {
			gateAllConverged(rep)
			wins := true
			detail := ""
			for _, c := range rep.Cells {
				if conv := c.Trials - c.Failures; conv > 0 && c.PluralityWins < conv {
					wins = false
					detail += fmt.Sprintf(" %q: %d/%d;", c.Label, c.PluralityWins, conv)
				}
			}
			rep.addGate("plurality-wins", wins, "plurality color won every converged trial;%s", detail)
			ref := cellByParam(rep, "engine", tightest)
			if ref == nil || ref.Trials == ref.Failures {
				rep.addGate("budget-invariant", false, "tightest-budget cell missing/unconverged")
				return
			}
			invariant := true
			detail = ""
			for _, c := range rep.Cells {
				if c.Params["engine"] == tightest || c.Trials == c.Failures {
					continue
				}
				overlap := c.CILo <= ref.CIHi && ref.CILo <= c.CIHi
				rel := (c.Mean - ref.Mean) / ref.Mean
				if rel < 0 {
					rel = -rel
				}
				if !overlap && rel > 0.35 {
					invariant = false
					detail += fmt.Sprintf(" %q: mean %.2f vs %.2f at %s (rel %.2f, disjoint CIs);",
						c.Label, c.Mean, ref.Mean, tightest, rel)
				}
			}
			rep.addGate("budget-invariant", invariant,
				"mean consensus time agrees with the tightest budget across eps;%s", detail)
		},
	}
}

// protocolRace runs every registered sampling dynamic on one biased
// instance — the registry's race specs form the protocol axis, so a newly
// registered protocol joins the race (and its gates) automatically. Gates:
// every cell converges; every protocol with a plurality guarantee lets the
// plurality win every converged trial (Voter is exempt — its winner is the
// martingale draw); and Two-Choices beats Voter on mean consensus time
// (drift versus a lazy random walk).
func protocolRace() NamedSweep {
	var specs []string
	plur := map[string]bool{}
	for _, d := range plurality.Protocols() {
		specs = append(specs, d.RaceSpec)
		plur[d.RaceSpec] = d.PluralityWins
	}
	return NamedSweep{
		Name:        "protocol-race",
		Description: "every registered sampling dynamic on one biased clique instance; gates on convergence, plurality wins (where guaranteed), and Two-Choices beating Voter",
		Build: func(smoke bool, seed uint64, trials int) Sweep {
			n, def := "8192", 8
			if smoke {
				n, def = "2048", 8
			}
			return Sweep{
				Name: "protocol-race",
				Base: Scenario{
					K:    4,
					Bias: "biased", BiasParam: 1,
					Topology: "complete", Model: "poisson",
				},
				Axes: []Axis{
					{Name: "n", Values: []string{n}},
					{Name: "protocol", Values: specs},
				},
				Trials: pickTrials(trials, def),
				Seed:   seed,
			}
		},
		Check: func(rep *Report) {
			gateAllConverged(rep)
			wins := true
			detail := ""
			for _, c := range rep.Cells {
				if !plur[c.Params["protocol"]] {
					continue
				}
				if conv := c.Trials - c.Failures; conv > 0 && c.PluralityWins < conv {
					wins = false
					detail += fmt.Sprintf(" %q: %d/%d;", c.Label, c.PluralityWins, conv)
				}
			}
			rep.addGate("plurality-wins", wins,
				"plurality color won every converged trial of every plurality-guaranteeing protocol;%s", detail)
			tc := cellByParam(rep, "protocol", "two-choices")
			vt := cellByParam(rep, "protocol", "voter")
			if tc == nil || vt == nil || tc.Trials == tc.Failures || vt.Trials == vt.Failures {
				rep.addGate("two-choices-beats-voter", false, "two-choices or voter cell missing/unconverged")
				return
			}
			rep.addGate("two-choices-beats-voter", tc.Mean <= vt.Mean,
				"mean(two-choices) = %.2f vs mean(voter) = %.2f (want two-choices <= voter)", tc.Mean, vt.Mean)
		},
	}
}

// latencySweep exercises the Bankhamer et al. edge-latency extension on the
// core protocol: exponential and uniform per-edge latencies of growing mean
// must slow convergence monotonically from the instant-edge baseline, and
// every cell must still converge.
func latencySweep() NamedSweep {
	return NamedSweep{
		Name:        "latency",
		Description: "core protocol under per-edge exponential/uniform latencies (Bankhamer et al. model); gates on convergence and on latency slowing the run",
		Build: func(smoke bool, seed uint64, trials int) Sweep {
			n, def := "16384", 8
			if smoke {
				n, def = "1024", 5
			}
			return Sweep{
				Name: "latency",
				Base: Scenario{
					Protocol: "core", K: 4,
					Bias: "biased", BiasParam: 1,
					Topology: "complete", Model: "poisson",
				},
				Axes: []Axis{
					{Name: "n", Values: []string{n}},
					{Name: "latency", Values: []string{"none", "exp:0.5", "exp:1", "exp:2", "uniform:0:2"}},
				},
				Trials: pickTrials(trials, def),
				Seed:   seed,
			}
		},
		Check: func(rep *Report) {
			gateAllConverged(rep)
			base := cellByParam(rep, "latency", "none")
			slow := cellByParam(rep, "latency", "exp:2")
			if base == nil || slow == nil || base.Trials == base.Failures || slow.Trials == slow.Failures {
				rep.addGate("latency-slows", false, "baseline or exp:2 cell missing/unconverged")
				return
			}
			rep.addGate("latency-slows", slow.Mean > base.Mean,
				"mean(exp:2) = %.2f vs mean(none) = %.2f (want slower)", slow.Mean, base.Mean)
		},
	}
}

// churnSweep injects node churn at rates around the 1/n consensus
// threshold: fresh joiners with random opinions and reset schedules must be
// absorbed by the Sync Gadget and the endgame without losing convergence.
func churnSweep() NamedSweep {
	return NamedSweep{
		Name:        "churn",
		Description: "core protocol under node churn (leave/join with fresh random opinions) at rates scaled to 1/n; gates on convergence and on churn actually firing",
		Build: func(smoke bool, seed uint64, trials int) Sweep {
			n, def := "8192", 8
			if smoke {
				n, def = "1024", 5
			}
			return Sweep{
				Name: "churn",
				Base: Scenario{
					Protocol: "core", K: 4,
					Bias: "biased", BiasParam: 1,
					Topology: "complete", Model: "poisson",
				},
				Axes: []Axis{
					{Name: "n", Values: []string{n}},
					{Name: "churn", Values: []string{"0", "0.1/n", "0.25/n", "0.5/n"}},
				},
				Trials: pickTrials(trials, def),
				Seed:   seed,
			}
		},
		Check: func(rep *Report) {
			gateAllConverged(rep)
			fired := true
			detail := ""
			for _, c := range rep.Cells {
				if c.Params["churn"] != "0" && c.Churns == 0 {
					fired = false
					detail += fmt.Sprintf(" %q injected no churn;", c.Label)
				}
			}
			rep.addGate("churn-fires", fired, "every churn>0 cell injected events;%s", detail)
		},
	}
}

// topologySweep runs the Two-Choices dynamic beyond the paper's clique:
// torus and Erdős–Rényi substrates. The clique must stay the fastest
// substrate and every topology must still reach consensus.
func topologySweep() NamedSweep {
	return NamedSweep{
		Name:        "topology",
		Description: "Two-Choices dynamic on complete/torus/G(n,p) substrates; gates on convergence and on the clique being fastest",
		Build: func(smoke bool, seed uint64, trials int) Sweep {
			n, def := "16384", 8
			if smoke {
				n, def = "1024", 5
			}
			return Sweep{
				Name: "topology",
				Base: Scenario{
					Protocol: "two-choices", K: 4,
					Bias: "biased", BiasParam: 1,
					Topology: "complete", Model: "poisson",
				},
				Axes: []Axis{
					{Name: "n", Values: []string{n}},
					{Name: "topology", Values: []string{"complete", "torus", "gnp:0.01", "gnp:0.05", "random-regular:8"}},
				},
				Trials: pickTrials(trials, def),
				Seed:   seed,
			}
		},
		Check: func(rep *Report) {
			gateAllConverged(rep)
			clique := cellByParam(rep, "topology", "complete")
			torus := cellByParam(rep, "topology", "torus")
			if clique == nil || torus == nil || clique.Trials == clique.Failures || torus.Trials == torus.Failures {
				rep.addGate("clique-fastest", false, "complete or torus cell missing/unconverged")
				return
			}
			rep.addGate("clique-fastest", clique.Mean <= torus.Mean,
				"mean(complete) = %.2f vs mean(torus) = %.2f (want clique <= torus)", clique.Mean, torus.Mean)
		},
	}
}

// topologyEquivalence is the CI gate for the degree-class lumped engine: the
// same Two-Choices instance on annealed configuration-model topologies under
// the per-node engine (which simulates the annealed sampling law node by
// node) versus engine auto (which collapses to the lumped count matrix). The
// lumping is exact, so the two executions are draws from the same law and
// their consensus-time statistics must agree at every degree. A quenched
// random-regular cell rides along to pin the mean-field approximation: on an
// expander the quenched run must stay near its annealed counterpart.
func topologyEquivalence() NamedSweep {
	annealed := []string{"annealed:2", "annealed:4", "annealed:8"}
	return NamedSweep{
		Name:        "topology-equivalence",
		Description: "Two-Choices on annealed regular topologies under the per-node vs the degree-class lumped engine (auto), plus a quenched random-regular control; gates on convergence, per-node/lumped agreement per degree (the lumping is exact), and quenched d=8 staying near its annealed law",
		Build: func(smoke bool, seed uint64, trials int) Sweep {
			n, def := "4096", 10
			if smoke {
				n, def = "1024", 6
			}
			return Sweep{
				Name: "topology-equivalence",
				Base: Scenario{
					Protocol: "two-choices", K: 4,
					Bias: "biased", BiasParam: 1,
					Topology: "complete", Model: "poisson",
				},
				Axes: []Axis{
					{Name: "n", Values: []string{n}},
					{Name: "topology", Values: append(append([]string{}, annealed...), "random-regular:8")},
					{Name: "engine", Values: []string{"per-node", "auto"}},
				},
				Trials: pickTrials(trials, def),
				Seed:   seed,
			}
		},
		Check: func(rep *Report) {
			gateAllConverged(rep)
			cell := func(topo, engine string) *CellResult {
				for i := range rep.Cells {
					c := &rep.Cells[i]
					if c.Params["topology"] == topo && c.Params["engine"] == engine {
						return c
					}
				}
				return nil
			}
			exact, detail := true, ""
			for _, topo := range annealed {
				per, auto := cell(topo, "per-node"), cell(topo, "auto")
				if per == nil || auto == nil || per.Trials == per.Failures || auto.Trials == auto.Failures {
					exact = false
					detail += fmt.Sprintf(" %s: missing or unconverged cell;", topo)
					continue
				}
				if ok, rel := agreeCell(per, auto); !ok {
					exact = false
					detail += fmt.Sprintf(" %s: per-node mean %.2f vs lumped %.2f (rel %.2f, disjoint CIs);",
						topo, per.Mean, auto.Mean, rel)
				}
			}
			rep.addGate("lumping-exact", exact,
				"per-node and lumped statistics agree on every annealed degree;%s", detail)
			quench, ann := cell("random-regular:8", "per-node"), cell("annealed:8", "auto")
			if quench == nil || ann == nil || quench.Trials == quench.Failures || ann.Trials == ann.Failures {
				rep.addGate("mean-field-approx", false, "quenched random-regular:8 or annealed:8 cell missing/unconverged")
				return
			}
			rel := (quench.Mean - ann.Mean) / ann.Mean
			if rel < 0 {
				rel = -rel
			}
			// The quenched 8-regular graph is an expander, but its fixed
			// wiring is a genuinely different (slower) process — about 1.7×
			// the annealed consensus time at these sizes. The gate is a
			// control, not an exactness claim: the quenched run must stay
			// within 2× of its annealed law.
			rep.addGate("mean-field-approx", rel <= 1.0,
				"quenched random-regular:8 mean %.2f vs annealed:8 lumped mean %.2f (rel %.2f, want <= 1.0)",
				quench.Mean, ann.Mean, rel)
		},
	}
}

// adversaryThreshold drives the corruption adversary's budget f across the
// √n threshold on Two-Choices: with f = n^0.3 flips per window the protocol
// repairs corrupted nodes faster than the adversary plants them and the
// plurality survives almost every trial, while f = 4√n re-seeds more minority
// opinions per window than an endgame can absorb and consensus never closes.
// Survival is strict — the run converged AND the initial plurality won — so
// the gates pin the survive/fail phase transition to straddle the √n scaling
// at every n, with a zero-budget control that must be indistinguishable from
// a clean run.
func adversaryThreshold() NamedSweep {
	survival := func(c *CellResult) float64 {
		if c.Trials == 0 {
			return 0
		}
		return float64(c.PluralityWins) / float64(c.Trials)
	}
	return NamedSweep{
		Name:        "adversary-threshold",
		Description: "Two-Choices under the corruption adversary: consensus survival vs budget f across n; gates on the survive/fail transition straddling sqrt(n) (f=n^0.3 survives, f=4sqrt(n) fails) plus a zero-budget control",
		Build: func(smoke bool, seed uint64, trials int) Sweep {
			def, maxTime := 20, 120.0
			if smoke {
				def, maxTime = 8, 80.0
			}
			return Sweep{
				Name: "adversary-threshold",
				Base: Scenario{
					Protocol: "two-choices", K: 2,
					Bias: "biased", BiasParam: 1,
					Topology: "complete", Model: "poisson",
					Engine:    "occupancy",
					Adversary: "corrupt",
					MaxTime:   maxTime,
				},
				Axes: []Axis{
					{Name: "n", Values: []string{"1024", "4096", "16384"}},
					{Name: "budget", Values: []string{"0", "n^0.3", "4sqrt(n)"}},
				},
				Trials: pickTrials(trials, def),
				Seed:   seed,
			}
		},
		Check: func(rep *Report) {
			// No all-converged gate here: the f = 4√n cells are supposed to
			// exhaust their budget — that is the failure side of the
			// transition the sweep exists to demonstrate.
			clean, cleanDetail := true, ""
			survive, surviveDetail := true, ""
			fail, failDetail := true, ""
			fired, firedDetail := true, ""
			for i := range rep.Cells {
				c := &rep.Cells[i]
				s := survival(c)
				switch c.Params["budget"] {
				case "0":
					if c.Failures > 0 || c.PluralityWins < c.Trials || c.Corruptions != 0 {
						clean = false
						cleanDetail += fmt.Sprintf(" %q: wins %d/%d, failures %d, corruptions %d;",
							c.Label, c.PluralityWins, c.Trials, c.Failures, c.Corruptions)
					}
					continue
				case "n^0.3":
					if s < 0.95 {
						survive = false
						surviveDetail += fmt.Sprintf(" %q: survival %.2f;", c.Label, s)
					}
				case "4sqrt(n)":
					if s > 0.2 {
						fail = false
						failDetail += fmt.Sprintf(" %q: survival %.2f;", c.Label, s)
					}
				}
				if c.Corruptions == 0 {
					fired = false
					firedDetail += fmt.Sprintf(" %q injected no corruption;", c.Label)
				}
			}
			rep.addGate("zero-budget-clean", clean,
				"budget=0 cells converge, win and stay uncorrupted;%s", cleanDetail)
			rep.addGate("survives-below-threshold", survive,
				"survival >= 0.95 at f = n^0.3 for every n;%s", surviveDetail)
			rep.addGate("fails-above-threshold", fail,
				"survival <= 0.2 at f = 4sqrt(n) for every n;%s", failDetail)
			rep.addGate("corruption-fires", fired,
				"every budget>0 cell recorded corruption flips;%s", firedDetail)
		},
	}
}

// netEquivalence is the oracle gate for the networked node runtime: the
// same (protocol, n) instance on the simulator's Poisson engine versus real
// goroutine-backed node processes exchanging pull messages over the
// deterministic in-process transport. Per-node Exp(1) clocks superpose to
// the simulator's rate-n Poisson process with a uniformly random activating
// node, and zero-fault message delivery reproduces the simulator's
// atomic-sample semantics, so the two consensus-time distributions are
// draws from the same law — the gate requires the two-sample KS statistic
// below the alpha = 0.01 rejection threshold for every (protocol, n) pair.
// Fixed-seed CI runs are deterministic on both sides, so the gate cannot
// flake. TCP cells stay out of the grid (wall-clock sockets would serialize
// the sweep); the tcp runtime is covered by its own unit tests and the
// quickstart script.
func netEquivalence() NamedSweep {
	return NamedSweep{
		Name:        "net-equivalence",
		Description: "Two-Choices and USD on the simulator vs the networked node runtime (one process per node, pull messages); gates on convergence, per-(protocol, n) KS agreement of the consensus-time distributions, and message flow",
		Build: func(smoke bool, seed uint64, trials int) Sweep {
			ns, def := []string{"256", "1024", "4096"}, 48
			if smoke {
				ns, def = []string{"256", "1024"}, 30
			}
			return Sweep{
				Name: "net-equivalence",
				Base: Scenario{
					K: 2, Bias: "biased", BiasParam: 1,
					Topology: "complete", Model: "poisson",
				},
				Axes: []Axis{
					{Name: "protocol", Values: []string{"two-choices", "usd"}},
					{Name: "n", Values: ns},
					{Name: "runtime", Values: []string{"sim", "node"}},
				},
				Trials:    pickTrials(trials, def),
				Seed:      seed,
				KeepTimes: true,
			}
		},
		Check: func(rep *Report) {
			gateAllConverged(rep)
			simCell := func(protocol, n string) *CellResult {
				for i := range rep.Cells {
					c := &rep.Cells[i]
					if c.Params["runtime"] == "sim" && c.Params["protocol"] == protocol && c.Params["n"] == n {
						return c
					}
				}
				return nil
			}
			match, matchDetail := true, ""
			flow, flowDetail := true, ""
			for i := range rep.Cells {
				c := &rep.Cells[i]
				if c.Params["runtime"] != "node" {
					continue
				}
				if c.Messages == 0 {
					flow = false
					flowDetail += fmt.Sprintf(" %q exchanged no messages;", c.Label)
				}
				sim := simCell(c.Params["protocol"], c.Params["n"])
				if sim == nil || len(sim.Times) == 0 || len(c.Times) == 0 {
					match = false
					matchDetail += fmt.Sprintf(" %q: missing sim sibling or no recorded times;", c.Label)
					continue
				}
				// KSStatistic sorts in place; hand it copies so the
				// report's recorded samples stay untouched.
				a := append([]float64(nil), sim.Times...)
				b := append([]float64(nil), c.Times...)
				d := stats.KSStatistic(a, b)
				thr := stats.KSThreshold(0.01, len(a), len(b))
				if d > thr {
					match = false
					matchDetail += fmt.Sprintf(" %s n=%s: KS %.3f > threshold %.3f (sim mean %.2f vs node mean %.2f);",
						c.Params["protocol"], c.Params["n"], d, thr, sim.Mean, c.Mean)
				}
			}
			rep.addGate("distribution-match", match,
				"node consensus-time distribution KS-matches the simulator for every (protocol, n);%s", matchDetail)
			rep.addGate("messages-flow", flow,
				"every node cell exchanged pull messages;%s", flowDetail)
		},
	}
}

// gateAllConverged records the universal gate: no cell may lose trials to
// the time budget.
func gateAllConverged(rep *Report) {
	failed := 0
	detail := ""
	for _, c := range rep.Cells {
		if c.Failures > 0 {
			failed++
			detail += fmt.Sprintf(" %q: %d/%d;", c.Label, c.Failures, c.Trials)
		}
	}
	rep.addGate("all-converged", failed == 0, "cells with timed-out trials: %d;%s", failed, detail)
}

// cellByParam returns the first cell whose axis param matches, or nil.
func cellByParam(rep *Report, name, value string) *CellResult {
	for i := range rep.Cells {
		if rep.Cells[i].Params[name] == value {
			return &rep.Cells[i]
		}
	}
	return nil
}
