package exp

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// SchemaVersion tags every Report so baseline comparison can refuse
// artifacts written by an incompatible harness. Bump it only on breaking
// changes to the JSON shape; additive fields keep the version.
const SchemaVersion = "plurality-exp/v1"

// BundleSchemaVersion tags the multi-sweep artifact file (the BENCH_exp
// family).
const BundleSchemaVersion = "plurality-exp-bundle/v1"

// CellResult is the aggregated outcome of one sweep cell. All time
// statistics are parallel-time consensus instants over the converged trials
// only.
type CellResult struct {
	Label         string            `json:"label"`
	Params        map[string]string `json:"params"`
	N             int               `json:"n"`
	Trials        int               `json:"trials"`
	Failures      int               `json:"failures"`
	PluralityWins int               `json:"pluralityWins"`
	Churns        int64             `json:"churns,omitempty"`
	// Corruptions and Biased total the adversary's interventions across all
	// trials (including failed ones): opinions rewritten, and activations
	// redirected or suppressed. Additive fields, so SchemaVersion holds.
	Corruptions int64   `json:"corruptions,omitempty"`
	Biased      int64   `json:"biased,omitempty"`
	Mean        float64 `json:"mean"`
	Median      float64 `json:"median"`
	Min         float64 `json:"min"`
	Q10         float64 `json:"q10"`
	Q90         float64 `json:"q90"`
	Max         float64 `json:"max"`
	// CILo and CIHi bound the 95% percentile-bootstrap confidence
	// interval of the mean.
	CILo float64 `json:"ciLo"`
	CIHi float64 `json:"ciHi"`
	// MeanTicks is the mean number of delivered activations, the
	// simulation-cost counterpart of Mean.
	MeanTicks float64 `json:"meanTicks"`
	// Times, present when the sweep sets KeepTimes, lists every converged
	// trial's consensus time in ascending order — the raw sample behind
	// the distributional (KS) gates. Additive field, so SchemaVersion
	// holds.
	Times []float64 `json:"times,omitempty"`
	// Messages totals the pull requests exchanged across all trials of a
	// node-runtime cell (runtime = node / node-tcp); 0, and absent, for
	// simulator cells. Additive field, so SchemaVersion holds.
	Messages int64 `json:"messages,omitempty"`
}

// Gate is one named statistical check a sweep ran over its own results.
type Gate struct {
	Name   string `json:"name"`
	Pass   bool   `json:"pass"`
	Detail string `json:"detail"`
}

// Report is the JSON artifact of one executed sweep.
type Report struct {
	Schema string       `json:"schema"`
	Sweep  string       `json:"sweep"`
	Smoke  bool         `json:"smoke,omitempty"`
	Seed   uint64       `json:"seed"`
	Trials int          `json:"trials"`
	Base   Scenario     `json:"base"`
	Axes   []Axis       `json:"axes"`
	Cells  []CellResult `json:"cells"`
	Gates  []Gate       `json:"gates,omitempty"`
}

// Cell returns the cell with the given label, or nil.
func (r *Report) Cell(label string) *CellResult {
	for i := range r.Cells {
		if r.Cells[i].Label == label {
			return &r.Cells[i]
		}
	}
	return nil
}

// FailedGates returns the names of gates that did not pass.
func (r *Report) FailedGates() []string {
	var out []string
	for _, g := range r.Gates {
		if !g.Pass {
			out = append(out, fmt.Sprintf("%s: %s", g.Name, g.Detail))
		}
	}
	return out
}

// addGate records one gate outcome.
func (r *Report) addGate(name string, pass bool, format string, args ...any) {
	r.Gates = append(r.Gates, Gate{Name: name, Pass: pass, Detail: fmt.Sprintf(format, args...)})
}

// Bundle is the multi-sweep artifact file: one Report per named sweep,
// keyed by sweep name. BENCH_exp.json and BENCH_exp_baseline.json are
// Bundles.
type Bundle struct {
	Schema  string             `json:"schema"`
	Reports map[string]*Report `json:"reports"`
}

// NewBundle returns an empty bundle with the current schema tag.
func NewBundle() *Bundle {
	return &Bundle{Schema: BundleSchemaVersion, Reports: map[string]*Report{}}
}

// WriteJSON serializes the bundle with stable indentation.
func (b *Bundle) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// LoadBundle reads a bundle artifact and checks its schema tags.
func LoadBundle(path string) (*Bundle, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Bundle
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("exp: %s: %w", path, err)
	}
	if b.Schema != BundleSchemaVersion {
		return nil, fmt.Errorf("exp: %s: schema %q, want %q", path, b.Schema, BundleSchemaVersion)
	}
	for name, rep := range b.Reports {
		if rep == nil {
			return nil, fmt.Errorf("exp: %s: report %q is null", path, name)
		}
		if rep.Schema != SchemaVersion {
			return nil, fmt.Errorf("exp: %s: report %q has schema %q, want %q", path, name, rep.Schema, SchemaVersion)
		}
	}
	return &b, nil
}

// Compare diffs a current report against a baseline within a relative
// tolerance band and returns one description per regression (empty means
// clean). A cell regresses when
//
//   - it disappeared from the current report,
//   - a larger fraction of its trials fails than in the baseline, or
//   - its mean consensus time exceeds the baseline mean by more than rel
//     AND the bootstrap confidence intervals are disjoint (both conditions,
//     so neither noise inside the band nor overlapping CIs flag).
//
// Cells the baseline does not know (new grid points) are ignored —
// extending a sweep is not a regression. Improvements are never flagged.
func Compare(cur, base *Report, rel float64) []string {
	var regressions []string
	if cur.Schema != base.Schema {
		return []string{fmt.Sprintf("schema mismatch: current %q vs baseline %q", cur.Schema, base.Schema)}
	}
	if cur.Smoke != base.Smoke {
		// Smoke and full grids share some cells but differ in sizes and
		// trial counts; one clear diagnostic beats a pile of per-cell
		// "missing from current run" regressions.
		return []string{fmt.Sprintf("grid mismatch: current smoke=%v vs baseline smoke=%v — compare like against like", cur.Smoke, base.Smoke)}
	}
	for _, bc := range base.Cells {
		cc := cur.Cell(bc.Label)
		if cc == nil {
			regressions = append(regressions, fmt.Sprintf("cell %q: present in baseline, missing from current run", bc.Label))
			continue
		}
		// Compare failure *rates*, not counts: a -trials override must not
		// let a convergence-loss regression hide behind a smaller absolute
		// failure count (cross-multiplied to stay in integers).
		if cc.Trials > 0 && bc.Trials > 0 && cc.Failures*bc.Trials > bc.Failures*cc.Trials {
			regressions = append(regressions, fmt.Sprintf("cell %q: %d/%d trials failed (baseline %d/%d)",
				bc.Label, cc.Failures, cc.Trials, bc.Failures, bc.Trials))
			continue
		}
		converged := bc.Trials - bc.Failures
		if converged == 0 {
			continue // baseline has no statistics to regress against
		}
		if cc.Mean > bc.Mean*(1+rel) && cc.CILo > bc.CIHi {
			regressions = append(regressions, fmt.Sprintf(
				"cell %q: mean %.2f exceeds baseline %.2f by more than %.0f%% (CI [%.2f, %.2f] vs baseline [%.2f, %.2f])",
				bc.Label, cc.Mean, bc.Mean, rel*100, cc.CILo, cc.CIHi, bc.CILo, bc.CIHi))
		}
	}
	return regressions
}
