package exp

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"plurality"
	"plurality/internal/par"
	"plurality/internal/rng"
	"plurality/internal/stats"
)

// Axis grids one scenario dimension. Values are the textual forms the axis
// applies to the base scenario (see applyAxis for the per-axis syntax);
// keeping them strings makes sweeps declarative and the JSON artifact
// self-describing.
type Axis struct {
	// Name selects the scenario field: "n", "k", "protocol", "bias",
	// "topology", "model", "engine", "crash", "churn", "latency", "delay",
	// "maxtime", "adversary", "budget" or "runtime".
	Name string `json:"name"`
	// Values are the grid points, applied textually.
	Values []string `json:"values"`
}

// Sweep is a base scenario times a grid: the cartesian product of all axis
// values, each run Trials times.
type Sweep struct {
	// Name identifies the sweep in artifacts and CI.
	Name string `json:"name"`
	// Base is the scenario every cell starts from.
	Base Scenario `json:"base"`
	// Axes are applied in order; later axes may reference fields set by
	// earlier ones (e.g. a "churn" value of "0.25/n" divides by the n the
	// preceding "n" axis chose).
	Axes []Axis `json:"axes"`
	// Trials is the number of independent runs per cell.
	Trials int `json:"trials"`
	// Seed is the root of every random stream the sweep consumes.
	Seed uint64 `json:"seed"`
	// KeepTimes records every converged trial's consensus time (sorted
	// ascending) on its CellResult, so distributional gates — the
	// net-equivalence KS test — can run on the report instead of
	// re-executing cells. Off by default to keep artifacts small.
	KeepTimes bool `json:"keepTimes,omitempty"`
}

// Cell is one grid point of a compiled sweep.
type Cell struct {
	// Label is the canonical "axis=value" form, comma-joined in axis
	// order; baseline comparison matches cells by it.
	Label string
	// Params maps axis name to the applied value.
	Params map[string]string
	// Scenario is the fully resolved configuration.
	Scenario Scenario
}

// applyAxis patches one scenario field from its textual axis value.
func applyAxis(sc *Scenario, name, value string) error {
	bad := func(err error) error {
		return fmt.Errorf("exp: axis %s: bad value %q: %v", name, value, err)
	}
	switch name {
	case "n":
		v, err := strconv.Atoi(value)
		if err != nil {
			return bad(err)
		}
		sc.N = v
	case "k":
		v, err := strconv.Atoi(value)
		if err != nil {
			return bad(err)
		}
		sc.K = v
	case "protocol":
		sc.Protocol = value
	case "model":
		sc.Model = value
	case "engine":
		sc.Engine = value
	case "bias":
		// "<profile>" or "<profile>:<param>".
		profile, param, has := strings.Cut(value, ":")
		sc.Bias = profile
		sc.BiasParam = 0
		if has {
			v, err := strconv.ParseFloat(param, 64)
			if err != nil {
				return bad(err)
			}
			sc.BiasParam = v
		}
	case "topology":
		// "complete" | "cycle" | "torus" | "gnp:<p>" | "random-regular:<d>"
		// | "annealed:<d>" | "annealed-gnp:<p>".
		topo, param, has := strings.Cut(value, ":")
		sc.Topology = topo
		sc.TopologyParam = 0
		if has {
			v, err := strconv.ParseFloat(param, 64)
			if err != nil {
				return bad(err)
			}
			sc.TopologyParam = v
		}
	case "crash":
		v, err := strconv.ParseFloat(value, 64)
		if err != nil {
			return bad(err)
		}
		sc.Crash = v
	case "churn":
		// Plain rate, or "<coef>/n" for rates scaled to the cell's
		// population (churn must stay ~1/n for exact consensus, so grids
		// are naturally expressed in that unit).
		if coef, ok := strings.CutSuffix(value, "/n"); ok {
			v, err := strconv.ParseFloat(coef, 64)
			if err != nil {
				return bad(err)
			}
			if sc.N <= 0 {
				return fmt.Errorf("exp: axis churn: %q needs n set before the churn axis", value)
			}
			sc.Churn = v / float64(sc.N)
			return nil
		}
		v, err := strconv.ParseFloat(value, 64)
		if err != nil {
			return bad(err)
		}
		sc.Churn = v
	case "latency":
		sc.Latency = value
	case "adversary":
		sc.Adversary = value
	case "runtime":
		sc.Runtime = value
	case "budget":
		// Symbolic forms ("n^0.3", "4sqrt(n)") resolve against the cell's
		// final n at Validate/run time, not here, so the budget axis may
		// precede the n axis; the value is stored textually.
		sc.Budget = value
	case "delay":
		v, err := strconv.ParseFloat(value, 64)
		if err != nil {
			return bad(err)
		}
		sc.DelayRate = v
	case "maxtime":
		v, err := strconv.ParseFloat(value, 64)
		if err != nil {
			return bad(err)
		}
		sc.MaxTime = v
	default:
		return fmt.Errorf("exp: unknown axis %q", name)
	}
	return nil
}

// Compile expands the sweep into its cells — the cartesian product of all
// axis values over the base scenario — validating every cell eagerly so a
// bad grid point fails before any simulation runs.
func (s Sweep) Compile() ([]Cell, error) {
	if s.Trials <= 0 {
		return nil, fmt.Errorf("exp: sweep %s: trials = %d, want > 0", s.Name, s.Trials)
	}
	for _, ax := range s.Axes {
		if len(ax.Values) == 0 {
			return nil, fmt.Errorf("exp: sweep %s: axis %s has no values", s.Name, ax.Name)
		}
	}
	cells := []Cell{{Scenario: s.Base, Params: map[string]string{}}}
	for _, ax := range s.Axes {
		grown := make([]Cell, 0, len(cells)*len(ax.Values))
		for _, c := range cells {
			for _, v := range ax.Values {
				sc := c.Scenario
				if err := applyAxis(&sc, ax.Name, v); err != nil {
					return nil, fmt.Errorf("exp: sweep %s: %w", s.Name, err)
				}
				params := make(map[string]string, len(c.Params)+1)
				for k, pv := range c.Params {
					params[k] = pv
				}
				params[ax.Name] = v
				label := ax.Name + "=" + v
				if c.Label != "" {
					label = c.Label + "," + label
				}
				grown = append(grown, Cell{Label: label, Params: params, Scenario: sc})
			}
		}
		cells = grown
	}
	for _, c := range cells {
		if err := c.Scenario.Validate(); err != nil {
			return nil, fmt.Errorf("exp: sweep %s cell %q: %w", s.Name, c.Label, err)
		}
	}
	return cells, nil
}

// Options configures sweep execution.
type Options struct {
	// Workers bounds the worker pool; 0 selects GOMAXPROCS.
	Workers int
	// Log, if non-nil, receives one progress line per completed cell.
	Log io.Writer
	// Context, if non-nil, cancels the sweep: expiry or cancellation is
	// honored inside every simulation's engine loop (the CLI -timeout flag
	// lands here). nil means context.Background().
	Context context.Context
}

// bootstrapResamples is the resample count behind every cell's confidence
// interval; 2000 keeps the percentile endpoints stable to ~1%.
const bootstrapResamples = 2000

// Run compiles and executes the sweep: all cells × trials are flattened
// into one job list on the shared worker pool (so a slow cell cannot
// serialize the grid), then aggregated into per-cell statistics. Trial t of
// cell i runs under seed TrialSeed(At(Seed, i), t); the Report is a pure
// function of the Sweep value.
func (s Sweep) Run(opt Options) (*Report, error) {
	cells, err := s.Compile()
	if err != nil {
		return nil, err
	}
	trials := make([][]Trial, len(cells))
	for i := range trials {
		trials[i] = make([]Trial, s.Trials)
	}
	ctx := opt.Context
	if ctx == nil {
		ctx = context.Background()
	}
	jobs := len(cells) * s.Trials
	err = par.ForEach(opt.Workers, jobs, func(j int) error {
		ci, t := j/s.Trials, j%s.Trials
		cellSeed := rng.At(s.Seed, ci).Uint64()
		tr, err := RunScenarioCtx(ctx, cells[ci].Scenario, plurality.TrialSeed(cellSeed, t))
		if err != nil {
			return fmt.Errorf("cell %q trial %d: %w", cells[ci].Label, t, err)
		}
		trials[ci][t] = tr
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("exp: sweep %s: %w", s.Name, err)
	}

	rep := &Report{
		Schema: SchemaVersion,
		Sweep:  s.Name,
		Seed:   s.Seed,
		Trials: s.Trials,
		Base:   s.Base,
		Axes:   s.Axes,
		Cells:  make([]CellResult, len(cells)),
	}
	for i, c := range cells {
		rep.Cells[i] = summarizeCell(c, trials[i], s.KeepTimes, rng.At(s.Seed, bootstrapStream+i))
		if opt.Log != nil {
			cr := rep.Cells[i]
			fmt.Fprintf(opt.Log, "  %-40s mean=%9.2f  ci=[%.2f, %.2f]  median=%9.2f  fail=%d/%d\n",
				cr.Label, cr.Mean, cr.CILo, cr.CIHi, cr.Median, cr.Failures, cr.Trials)
		}
	}
	return rep, nil
}

// bootstrapStream offsets the per-cell bootstrap RNG streams away from the
// per-cell trial-seed streams.
const bootstrapStream = 1 << 20

// summarizeCell aggregates one cell's trials. Statistics cover converged
// trials only; a cell whose every trial timed out reports zeros with
// Failures == Trials. keepTimes additionally records the converged times,
// sorted ascending, on the result.
func summarizeCell(c Cell, trials []Trial, keepTimes bool, bootRNG *rng.RNG) CellResult {
	cr := CellResult{
		Label:  c.Label,
		Params: c.Params,
		N:      c.Scenario.N,
		Trials: len(trials),
	}
	var times []float64
	var ticks float64
	for _, t := range trials {
		cr.Churns += t.Churns
		cr.Corruptions += t.Corruptions
		cr.Biased += t.Biased
		cr.Messages += t.Messages
		if !t.Done {
			cr.Failures++
			continue
		}
		times = append(times, t.Time)
		ticks += float64(t.Ticks)
		if t.Win {
			cr.PluralityWins++
		}
	}
	if len(times) == 0 {
		return cr
	}
	cr.Mean = stats.Mean(times)
	qs := stats.Quantiles(times, 0, 0.1, 0.5, 0.9, 1)
	cr.Min, cr.Q10, cr.Median, cr.Q90, cr.Max = qs[0], qs[1], qs[2], qs[3], qs[4]
	cr.MeanTicks = ticks / float64(len(times))
	lo, hi, err := stats.BootstrapMeanCI(times, 0.95, bootstrapResamples, bootRNG)
	if err == nil {
		cr.CILo, cr.CIHi = lo, hi
	}
	if keepTimes {
		sorted := append([]float64(nil), times...)
		sort.Float64s(sorted)
		cr.Times = sorted
	}
	return cr
}
