package exp

import (
	"math"
	"strings"
	"testing"
)

// TestScenarioTopologyValidation pins the declaration-time rules of the new
// topology families: integer degrees, the configuration model's parity
// constraint, the G(n,p) isolated-node guard, and which topologies each
// count-collapsed engine admits.
func TestScenarioTopologyValidation(t *testing.T) {
	base := Scenario{
		Protocol: "two-choices", N: 1000, K: 3,
		Bias: "biased", BiasParam: 1,
		Topology: "complete", Model: "poisson",
	}
	ok := []Scenario{
		func() Scenario { s := base; s.Topology = "random-regular"; s.TopologyParam = 8; return s }(),
		func() Scenario { s := base; s.Topology = "annealed"; s.TopologyParam = 3; return s }(),
		func() Scenario { s := base; s.Topology = "annealed-gnp"; s.TopologyParam = 0.05; return s }(),
		func() Scenario {
			s := base
			s.Topology, s.TopologyParam, s.Engine = "annealed", 4, "occupancy"
			return s
		}(),
		func() Scenario {
			s := base
			s.Topology, s.TopologyParam, s.Engine = "annealed-gnp", 0.05, "occupancy"
			return s
		}(),
	}
	for i, s := range ok {
		if err := s.Validate(); err != nil {
			t.Errorf("scenario %d rejected: %v (%+v)", i, err, s)
		}
	}
	bad := []struct {
		name   string
		mutate func(*Scenario)
		want   string
	}{
		{"fractional degree", func(s *Scenario) { s.Topology = "random-regular"; s.TopologyParam = 2.5 }, "integer degree"},
		{"zero degree", func(s *Scenario) { s.Topology = "annealed"; s.TopologyParam = 0 }, "integer degree"},
		{"degree >= n", func(s *Scenario) { s.Topology = "annealed"; s.TopologyParam = 1000 }, "d < n"},
		{"odd n*d", func(s *Scenario) { s.N = 999; s.Topology = "random-regular"; s.TopologyParam = 3 }, "even"},
		{"sparse gnp", func(s *Scenario) { s.Topology = "gnp"; s.TopologyParam = 0.0001 }, "isolated-node"},
		{"sparse annealed-gnp", func(s *Scenario) { s.Topology = "annealed-gnp"; s.TopologyParam = 0.0001 }, "isolated-node"},
		{"occupancy on quenched regular", func(s *Scenario) {
			s.Topology, s.TopologyParam, s.Engine = "random-regular", 8, "occupancy"
		}, "count-collapsible"},
		{"leap on annealed", func(s *Scenario) {
			s.Topology, s.TopologyParam, s.Engine = "annealed", 4, "leap"
		}, "complete topology"},
		{"adversary on lumped", func(s *Scenario) {
			s.Topology, s.TopologyParam, s.Engine = "annealed", 4, "occupancy"
			s.Adversary, s.Budget = "corrupt", "5"
		}, "lumped"},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			sc := base
			tc.mutate(&sc)
			err := sc.Validate()
			if err == nil {
				t.Fatalf("scenario %+v should be invalid", sc)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestRunScenarioAnnealedCountsPath: an annealed cell under engine occupancy
// runs count-collapsed on the lumped engine (no population), deterministically,
// and lands on the same time scale as the per-node simulation of the same law.
func TestRunScenarioAnnealedCountsPath(t *testing.T) {
	sc := Scenario{
		Protocol: "two-choices", N: 2000, K: 3,
		Bias: "biased", BiasParam: 1,
		Topology: "annealed", TopologyParam: 8,
		Model:  "poisson",
		Engine: "occupancy",
	}
	lumped, err := RunScenario(sc, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !lumped.Done || !lumped.Win || lumped.Ticks <= 0 || lumped.Time <= 0 {
		t.Fatalf("lumped trial = %+v", lumped)
	}
	again, err := RunScenario(sc, 7)
	if err != nil {
		t.Fatal(err)
	}
	if lumped != again {
		t.Fatalf("same seed diverged: %+v vs %+v", lumped, again)
	}
	sc.Engine = "per-node"
	per, err := RunScenario(sc, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !per.Done {
		t.Fatalf("per-node trial = %+v", per)
	}
	if rel := math.Abs(per.Time-lumped.Time) / per.Time; rel > 0.5 {
		t.Fatalf("per-node time %.2f vs lumped %.2f (rel %.2f)", per.Time, lumped.Time, rel)
	}

	// The multi-class lumped path: annealed G(n,p) partitions nodes by
	// degree, and churn must thread through the matrix engine.
	sc = Scenario{
		Protocol: "two-choices", N: 1500, K: 3,
		Bias: "biased", BiasParam: 1,
		Topology: "annealed-gnp", TopologyParam: 0.01,
		Model:  "poisson",
		Engine: "occupancy",
		Churn:  0.3 / 1500,
	}
	tr, err := RunScenario(sc, 9)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Done || tr.Churns == 0 {
		t.Fatalf("annealed-gnp churned trial = %+v", tr)
	}
}

// TestRunScenarioQuenchedRegular: the quenched configuration-model topology
// runs per node with a fresh graph sample per trial seed.
func TestRunScenarioQuenchedRegular(t *testing.T) {
	sc := Scenario{
		Protocol: "two-choices", N: 512, K: 3,
		Bias: "biased", BiasParam: 2,
		Topology: "random-regular", TopologyParam: 8,
		Model: "sequential",
	}
	tr, err := RunScenario(sc, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Done {
		t.Fatalf("trial = %+v, want Done", tr)
	}
	again, err := RunScenario(sc, 5)
	if err != nil {
		t.Fatal(err)
	}
	if tr != again {
		t.Fatalf("same seed diverged: %+v vs %+v", tr, again)
	}
}

// TestTopologyEquivalenceSweepGates executes the topology-equivalence sweep
// at smoke scale so its gate logic is covered: on a healthy engine every gate
// must be present and passing.
func TestTopologyEquivalenceSweepGates(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	ns, ok := NamedByName("topology-equivalence")
	if !ok {
		t.Fatal("missing named sweep topology-equivalence")
	}
	sw := ns.Build(true, 1, 4)
	rep, err := sw.Run(Options{})
	if err != nil {
		t.Fatal(err)
	}
	ns.Check(rep)
	seen := map[string]bool{}
	for _, g := range rep.Gates {
		seen[g.Name] = true
		if !g.Pass {
			t.Errorf("gate %s failed: %s", g.Name, g.Detail)
		}
	}
	for _, g := range []string{"all-converged", "lumping-exact", "mean-field-approx"} {
		if !seen[g] {
			t.Errorf("gate %s never ran", g)
		}
	}
}

// TestTopologyEquivalenceGateCatchesDivergence feeds the check a doctored
// report to prove the lumping-exact and mean-field gates bite.
func TestTopologyEquivalenceGateCatchesDivergence(t *testing.T) {
	ns, _ := NamedByName("topology-equivalence")
	rep := &Report{
		Schema: SchemaVersion,
		Cells: []CellResult{
			{Label: "a", Params: map[string]string{"topology": "annealed:2", "engine": "per-node"},
				N: 100, Trials: 4, Mean: 10, CILo: 9, CIHi: 11},
			{Label: "b", Params: map[string]string{"topology": "annealed:2", "engine": "auto"},
				N: 100, Trials: 4, Mean: 30, CILo: 28, CIHi: 32},
		},
	}
	ns.Check(rep)
	exact, meanField := true, true
	for _, g := range rep.Gates {
		switch g.Name {
		case "lumping-exact":
			exact = g.Pass
		case "mean-field-approx":
			meanField = g.Pass
		}
	}
	if exact {
		t.Fatal("lumping-exact passed on a 3x divergence with disjoint CIs")
	}
	if meanField {
		t.Fatal("mean-field-approx passed with no quenched cell in the report")
	}
}
