// Package exp is the declarative experiment engine: a Scenario describes
// one fully specified simulation (protocol, population size and bias
// profile, topology, scheduler model, failure/latency/churn injection), a
// Sweep grids Scenarios over any set of axes, and Run executes the
// resulting cells × trials on the shared parallel-trial pool, aggregating
// per-cell statistics (mean/median/quantiles plus bootstrap confidence
// intervals) into a schema-stable JSON Report.
//
// The package exists so the question "how does consensus time react to
// <axis>?" is a declaration, not a hand-written loop: named sweeps (see
// named.go) cover the paper's Θ(log n) scaling claim, the Bankhamer et al.
// edge-latency extension, node churn, and restricted topologies, each with
// statistical gates that turn the expected shape into an executable
// regression test. Compare diffs two Reports within tolerance bands, which
// is how CI keeps the committed baseline honest.
//
// Everything is deterministic given the sweep seed: scenario RNG streams,
// trial sharding, topology construction and bootstrap resampling all derive
// from it, so a Report is a pure function of (Sweep, seed) and baseline
// diffs are meaningful across machines.
package exp

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"

	"plurality"
	"plurality/internal/rng"
)

// Scenario is one fully specified simulation configuration. The zero value
// is not runnable; Validate reports what is missing. String-typed fields
// keep the struct declarative (axes patch them textually) and make the JSON
// artifact self-describing.
type Scenario struct {
	// Protocol selects the runner: "core" (the paper's Theorem 1.3
	// protocol) or any registered sampling dynamic resolved through the
	// protocol registry — "two-choices", "voter", "3-majority", "usd",
	// "j-majority:<j>" and their aliases (plurality.Protocols lists them).
	Protocol string `json:"protocol"`
	// N is the number of nodes; K the number of colors.
	N int `json:"n"`
	K int `json:"k"`
	// Bias names the initial-distribution workload: "biased" (c1 =
	// (1+param)·c2, Theorem 1.3's regime), "gapsqrt", "tinygap", "zipf"
	// or "uniform". BiasParam is its parameter (ε, z or the Zipf
	// exponent; ignored for "uniform").
	Bias      string  `json:"bias"`
	BiasParam float64 `json:"biasParam,omitempty"`
	// Topology names the communication graph: "complete", "cycle",
	// "torus" (requires square N), "gnp" with TopologyParam = p,
	// "random-regular" with TopologyParam = d (a quenched configuration-model
	// sample per trial), or the annealed mean-field counterparts "annealed"
	// (d-regular, TopologyParam = d) and "annealed-gnp" (the
	// degree-partitioned annealed G(n,p), TopologyParam = p). Annealed
	// topologies report their degree-class symmetry, so dynamics cells on
	// them collapse to the O(classes × colors) lumped engine.
	Topology      string  `json:"topology"`
	TopologyParam float64 `json:"topologyParam,omitempty"`
	// Model selects the scheduler engine: "sequential", "poisson" or
	// "heap-poisson".
	Model string `json:"model"`
	// Crash is the crashed-node fraction (core protocol on the complete
	// graph only; see core.Config.CrashFraction).
	Crash float64 `json:"crash,omitempty"`
	// Churn is the per-activation churn probability (see WithChurn).
	Churn float64 `json:"churn,omitempty"`
	// Latency encodes the edge-latency model: "" or "none" (instant
	// edges), "exp:<mean>" or "uniform:<lo>:<hi>".
	Latency string `json:"latency,omitempty"`
	// DelayRate, when positive, enables the §4 per-step Exp(rate)
	// response delay.
	DelayRate float64 `json:"delayRate,omitempty"`
	// MaxTime bounds the run in parallel time; 0 selects the library
	// default.
	MaxTime float64 `json:"maxTime,omitempty"`
	// Engine selects the dynamics execution engine: "" or "auto"
	// (count-collapse whenever possible), "per-node" (force the O(n)
	// simulation), "occupancy" (require a count-collapsed engine: O(k)
	// occupancy on the complete topology, the O(classes × colors) lumped
	// engine on annealed topologies; no latency/delay, dynamics protocols
	// only), or
	// "leap" / "leap:<eps>" (the hybrid tau-leap/mean-field engine with an
	// optional explicit per-step error budget; occupancy's constraints plus
	// no churn and a flow-law protocol). With "occupancy" and "leap" the
	// harness never materializes a per-node population at all — cells run
	// on the histogram — which is what lets the scale sweep reach n = 10⁸
	// and the leap cells go further still.
	Engine string `json:"engine,omitempty"`
	// Adversary names a registered adversary ("minority-bias", "delay-set",
	// "late:<lag>", "corrupt", "byzantine"; plurality.Adversaries lists
	// them). "" and "none" run adversary-free; so does any name with a zero
	// Budget, bit-identically to the clean run.
	Adversary string `json:"adversary,omitempty"`
	// Budget is the adversary's power f as text: a plain integer, or the
	// symbolic forms "n^<p>" and "<c>sqrt(n)" which resolve against the
	// cell's N — threshold sweeps express f in the scaling unit the theory
	// speaks, exactly as the churn axis's "<coef>/n" form does for rates.
	Budget string `json:"budget,omitempty"`
	// Runtime selects the execution substrate: "" or "sim" (the simulator
	// engines, the default), "node" (the networked node runtime on the
	// deterministic in-process transport: one goroutine per node, local
	// Poisson clocks, pull messages), or "node-tcp" (the same runtime over
	// real loopback TCP sockets). The node runtimes execute registered
	// dynamics on the clique under the poisson model only — every
	// simulator-side injection axis is rejected at Validate; see
	// validateRuntime.
	Runtime string `json:"runtime,omitempty"`
}

// Trial is the outcome of one scenario execution.
type Trial struct {
	// Done reports whether consensus was reached within the time budget.
	Done bool
	// Time is the parallel time at which consensus completed (valid when
	// Done).
	Time float64
	// Ticks is the number of delivered activations.
	Ticks int64
	// Win reports whether the initial plurality color won (valid when
	// Done).
	Win bool
	// Churns is the number of churn events injected.
	Churns int64
	// Corruptions is the number of opinions the adversary rewrote
	// (corruption flips plus Byzantine lies).
	Corruptions int64
	// Biased is the number of activations the adversary redirected or
	// suppressed.
	Biased int64
	// Messages is the number of pull requests exchanged when the trial ran
	// on the node runtime; 0 for simulator trials (the engines deliver
	// samples without materializing messages).
	Messages int64
}

// Validate checks that the scenario names a runnable configuration.
func (sc Scenario) Validate() error {
	if sc.Protocol != "core" {
		// Any registered sampling dynamic is a valid protocol; resolving
		// the spec here validates parameterized families eagerly (the
		// Compile contract), before any simulation runs.
		if _, err := plurality.LookupProtocol(sc.Protocol); err != nil {
			return fmt.Errorf("exp: protocol %q: %w", sc.Protocol, err)
		}
	}
	if sc.N < 4 {
		return fmt.Errorf("exp: n = %d, want >= 4", sc.N)
	}
	if sc.K < 2 {
		return fmt.Errorf("exp: k = %d, want >= 2", sc.K)
	}
	switch sc.Bias {
	case "biased", "gapsqrt", "tinygap", "zipf", "uniform":
		// Materialize the histogram so a bad bias parameter fails here —
		// Compile promises eager per-cell validation, and the workload
		// constructors hold the per-profile parameter rules.
		if _, err := sc.counts(); err != nil {
			return fmt.Errorf("exp: bias %s:%v: %w", sc.Bias, sc.BiasParam, err)
		}
	default:
		return fmt.Errorf("exp: unknown bias profile %q", sc.Bias)
	}
	switch sc.Topology {
	case "complete", "cycle":
	case "torus":
		side := int(math.Round(math.Sqrt(float64(sc.N))))
		if side*side != sc.N {
			return fmt.Errorf("exp: torus topology needs a square n, got %d", sc.N)
		}
	case "gnp", "annealed-gnp":
		if sc.TopologyParam <= 0 || sc.TopologyParam > 1 {
			return fmt.Errorf("exp: %s topology needs p in (0, 1], got %v", sc.Topology, sc.TopologyParam)
		}
		// NewGNP patches isolated nodes with one extra uniform edge so the
		// sampling contract (Degree >= 1) holds. Below (n-1)p = 1 those
		// patch edges dominate the graph and the cell no longer measures
		// G(n,p); reject at declaration time, mirroring the crash-injection
		// guard above.
		if float64(sc.N-1)*sc.TopologyParam < 1 {
			return fmt.Errorf("exp: %s topology with (n-1)p = %.3f < 1 is mostly isolated-node patch edges, not G(n,p); raise p or n",
				sc.Topology, float64(sc.N-1)*sc.TopologyParam)
		}
	case "random-regular", "annealed":
		d := int(sc.TopologyParam)
		if float64(d) != sc.TopologyParam || d < 1 {
			return fmt.Errorf("exp: %s topology needs an integer degree d >= 1, got %v", sc.Topology, sc.TopologyParam)
		}
		if d >= sc.N {
			return fmt.Errorf("exp: %s topology needs d < n, got d=%d n=%d", sc.Topology, d, sc.N)
		}
		if sc.Topology == "random-regular" && sc.N*d%2 != 0 {
			return fmt.Errorf("exp: random-regular topology needs n·d even, got n=%d d=%d", sc.N, d)
		}
	default:
		return fmt.Errorf("exp: unknown topology %q", sc.Topology)
	}
	switch sc.Model {
	case "sequential", "poisson", "heap-poisson":
	default:
		return fmt.Errorf("exp: unknown model %q", sc.Model)
	}
	if err := sc.validateRuntime(); err != nil {
		return err
	}
	if sc.Crash > 0 {
		// Mirror the core engine's rule at declaration time so a sweep
		// cell cannot silently sample crashed neighbors: crash injection
		// is defined only for the core protocol on the complete graph.
		if sc.Protocol != "core" {
			return fmt.Errorf("exp: crash injection is only defined for the core protocol, not %q", sc.Protocol)
		}
		if sc.Topology != "complete" {
			return fmt.Errorf("exp: crash injection requires the complete topology, not %q (crashed nodes remain sampled)", sc.Topology)
		}
	}
	if sc.Crash < 0 || sc.Crash >= 1 {
		return fmt.Errorf("exp: crash = %v, want [0, 1)", sc.Crash)
	}
	if sc.Churn < 0 || sc.Churn >= 1 {
		return fmt.Errorf("exp: churn = %v, want [0, 1)", sc.Churn)
	}
	if sc.DelayRate < 0 {
		return fmt.Errorf("exp: delayRate = %v, want >= 0", sc.DelayRate)
	}
	if sc.MaxTime < 0 {
		return fmt.Errorf("exp: maxTime = %v, want >= 0 (0 selects the default budget)", sc.MaxTime)
	}
	if _, err := parseLatency(sc.Latency); err != nil {
		return err
	}
	engine, _, err := sc.engineSpec()
	if err != nil {
		return err
	}
	switch engine {
	case "", "auto", "per-node":
	case "occupancy", "leap":
		// Mirror the engines' collapsibility contract at declaration time.
		switch {
		case sc.Protocol == "core":
			return fmt.Errorf("exp: engine %s is undefined for the core protocol (its working-time schedule is per-node state)", engine)
		case sc.Model == "heap-poisson":
			return fmt.Errorf("exp: engine %s with the heap-poisson scheduler would allocate O(n) event state; use poisson (the same process)", engine)
		case engine == "leap" && sc.Topology != "complete":
			return fmt.Errorf("exp: engine leap requires the complete topology, not %q", sc.Topology)
		case sc.Topology != "complete" && sc.Topology != "annealed" && sc.Topology != "annealed-gnp":
			// Quenched topologies carry per-node wiring that no count
			// collapse can represent; only the clique (occupancy engine) and
			// the annealed configuration models (lumped engine) collapse.
			return fmt.Errorf("exp: engine %s requires a count-collapsible topology (complete, annealed, annealed-gnp), not %q", engine, sc.Topology)
		case sc.Latency != "" && sc.Latency != "none":
			return fmt.Errorf("exp: engine %s cannot model edge latencies (per-node pending state)", engine)
		case sc.DelayRate > 0:
			return fmt.Errorf("exp: engine %s cannot model response delays (per-node pending state)", engine)
		}
		if engine == "leap" {
			if sc.Churn > 0 {
				return fmt.Errorf("exp: the leap engine does not support churn; use engine occupancy")
			}
			if d, err := plurality.LookupProtocol(sc.Protocol); err == nil && !d.Leapable {
				return fmt.Errorf("exp: protocol %q exposes no flow law; the leap engine needs one", sc.Protocol)
			}
		}
	default:
		return fmt.Errorf("exp: unknown engine %q", sc.Engine)
	}
	if err := sc.validateAdversary(engine); err != nil {
		return err
	}
	return nil
}

// nodeRuntime reports whether the scenario runs on the networked node
// runtime rather than a simulator engine.
func (sc Scenario) nodeRuntime() bool {
	return sc.Runtime == "node" || sc.Runtime == "node-tcp"
}

// validateRuntime mirrors Job.Validate's node-runtime option mapping at
// declaration time: real node processes execute registered dynamics on the
// clique under per-node Poisson clocks and nothing else, so every
// simulator-side injection axis fails the cell at Compile rather than
// mid-grid.
func (sc Scenario) validateRuntime() error {
	switch sc.Runtime {
	case "", "sim":
		return nil
	case "node", "node-tcp":
	default:
		return fmt.Errorf("exp: unknown runtime %q (want sim, node or node-tcp)", sc.Runtime)
	}
	if sc.Protocol == "core" {
		return fmt.Errorf("exp: runtime %s cannot execute the core protocol (its bit phases are not a registered message dynamic)", sc.Runtime)
	}
	if sc.Topology != "complete" {
		return fmt.Errorf("exp: runtime %s requires the complete topology, not %q (live nodes sample peers uniformly)", sc.Runtime, sc.Topology)
	}
	if sc.Model != "poisson" {
		return fmt.Errorf("exp: runtime %s requires the poisson model, not %q (each node runs a local Exp(1) clock)", sc.Runtime, sc.Model)
	}
	if sc.Engine != "" && sc.Engine != "auto" {
		return fmt.Errorf("exp: runtime %s runs one process per node; engine %q does not apply", sc.Runtime, sc.Engine)
	}
	switch {
	case sc.Crash > 0:
		return fmt.Errorf("exp: runtime %s does not support crash injection", sc.Runtime)
	case sc.Churn > 0:
		return fmt.Errorf("exp: runtime %s does not support churn", sc.Runtime)
	case sc.DelayRate > 0:
		return fmt.Errorf("exp: runtime %s does not support response delays (use the transport's own fault injection)", sc.Runtime)
	case sc.Latency != "" && sc.Latency != "none":
		return fmt.Errorf("exp: runtime %s does not support edge latencies (use the transport's own fault injection)", sc.Runtime)
	case sc.Adversary != "" && sc.Adversary != "none":
		return fmt.Errorf("exp: runtime %s does not support adversaries", sc.Runtime)
	}
	// One goroutine (plus timers and message events) per node: bound n so a
	// mistyped axis cannot ask the scheduler for millions of processes.
	const maxNodes = 1 << 16
	if sc.N > maxNodes {
		return fmt.Errorf("exp: runtime %s runs one process per node; n = %d exceeds the %d-node bound", sc.Runtime, sc.N, maxNodes)
	}
	return nil
}

// validateAdversary mirrors Job.Validate's adversary capability matrix at
// declaration time, so a sweep cell that pairs an adversary with an engine
// that cannot host it fails at Compile rather than mid-grid.
func (sc Scenario) validateAdversary(engine string) error {
	spec, err := sc.adversarySpec()
	if err != nil {
		return err
	}
	if !spec.Active() {
		return nil
	}
	desc, ok := spec.Descriptor()
	if !ok {
		return fmt.Errorf("exp: unknown adversary %q", sc.Adversary)
	}
	if sc.Protocol == "core" && desc.Family == plurality.AdversaryByzantine {
		return fmt.Errorf("exp: adversary %s cannot lie to the core protocol (its samples carry bits and real times, not just colors)", desc.Name)
	}
	if engine == "leap" {
		return fmt.Errorf("exp: the leap engine cannot host adversaries (tau-leap batches have no per-event hooks); use engine occupancy or per-node")
	}
	if engine == "occupancy" && desc.PerNode {
		return fmt.Errorf("exp: adversary %s needs per-node identity, which the count-collapsed engine does not track; use engine per-node", desc.Name)
	}
	if engine == "occupancy" && sc.Topology != "complete" {
		return fmt.Errorf("exp: adversary %s cannot run on the degree-class lumped engine (topology %q); use engine per-node", desc.Name, sc.Topology)
	}
	return nil
}

// adversarySpec resolves the Adversary/Budget pair into a budgeted spec
// ready for WithAdversary. The inactive spec (no name, or zero budget) is
// returned for adversary-free scenarios.
func (sc Scenario) adversarySpec() (plurality.AdversarySpec, error) {
	spec, err := plurality.ParseAdversary(sc.Adversary)
	if err != nil {
		return plurality.AdversarySpec{}, fmt.Errorf("exp: adversary %q: %w", sc.Adversary, err)
	}
	budget, err := parseBudget(sc.Budget, sc.N)
	if err != nil {
		return plurality.AdversarySpec{}, err
	}
	if budget > 0 && (spec.Name == "" || spec.Name == "none") {
		return plurality.AdversarySpec{}, fmt.Errorf("exp: budget %q set with no adversary to spend it", sc.Budget)
	}
	spec.Budget = budget
	if err := spec.Validate(); err != nil {
		return plurality.AdversarySpec{}, fmt.Errorf("exp: adversary %q: %w", sc.Adversary, err)
	}
	return spec, nil
}

// parseBudget decodes a Scenario.Budget string into the concrete budget f.
// Besides plain integers it accepts "n^<p>" and "<c>sqrt(n)" (coefficient
// optional), both rounded to the nearest integer after resolving against n;
// "" and "0" mean no budget.
func parseBudget(s string, n int) (int64, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "0" {
		return 0, nil
	}
	bad := func(why string) error {
		return fmt.Errorf("exp: budget %q: %s", s, why)
	}
	symbolic := func(v float64) (int64, error) {
		if n <= 0 {
			return 0, bad("symbolic form needs n set first")
		}
		if math.IsNaN(v) || v < 0 {
			return 0, bad("resolves to a negative or undefined budget")
		}
		return int64(math.Round(v)), nil
	}
	if p, ok := strings.CutPrefix(s, "n^"); ok {
		pow, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return 0, bad("bad exponent")
		}
		return symbolic(math.Pow(float64(n), pow))
	}
	if coef, ok := strings.CutSuffix(s, "sqrt(n)"); ok {
		coef = strings.TrimSuffix(strings.TrimSpace(coef), "*")
		c := 1.0
		if coef != "" {
			v, err := strconv.ParseFloat(coef, 64)
			if err != nil {
				return 0, bad("bad coefficient")
			}
			c = v
		}
		return symbolic(c * math.Sqrt(float64(n)))
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil || v < 0 {
		return 0, bad("want a non-negative integer, \"n^<p>\" or \"<c>sqrt(n)\"")
	}
	return v, nil
}

// engineSpec splits Scenario.Engine into the engine name and — for the
// "leap:<eps>" spelling — the explicit tau-leap error budget (0 means the
// engine default).
func (sc Scenario) engineSpec() (engine string, leapEps float64, err error) {
	if eps, ok := strings.CutPrefix(sc.Engine, "leap:"); ok {
		v, perr := strconv.ParseFloat(eps, 64)
		if perr != nil || math.IsNaN(v) || v <= 0 || v > 0.5 {
			return "", 0, fmt.Errorf("exp: leap engine budget %q, want a number in (0, 0.5]", eps)
		}
		return "leap", v, nil
	}
	return sc.Engine, 0, nil
}

// parseLatency decodes a Scenario.Latency string into an edge-latency
// model; "" and "none" mean nil (instant edges).
func parseLatency(s string) (plurality.EdgeLatency, error) {
	if s == "" || s == "none" {
		return nil, nil
	}
	parts := strings.Split(s, ":")
	switch parts[0] {
	case "exp":
		if len(parts) != 2 {
			return nil, fmt.Errorf("exp: latency %q, want exp:<mean>", s)
		}
		mean, err := strconv.ParseFloat(parts[1], 64)
		if err != nil || mean <= 0 {
			return nil, fmt.Errorf("exp: latency %q has bad mean", s)
		}
		return plurality.ExpEdgeLatency(mean), nil
	case "uniform":
		if len(parts) != 3 {
			return nil, fmt.Errorf("exp: latency %q, want uniform:<lo>:<hi>", s)
		}
		lo, err1 := strconv.ParseFloat(parts[1], 64)
		hi, err2 := strconv.ParseFloat(parts[2], 64)
		if err1 != nil || err2 != nil || lo < 0 || hi <= lo {
			return nil, fmt.Errorf("exp: latency %q has bad bounds", s)
		}
		return plurality.UniformEdgeLatency(lo, hi), nil
	default:
		return nil, fmt.Errorf("exp: unknown latency model %q", s)
	}
}

// counts materializes the scenario's initial color histogram.
func (sc Scenario) counts() ([]int64, error) {
	switch sc.Bias {
	case "biased":
		return plurality.Biased(sc.N, sc.K, sc.BiasParam)
	case "gapsqrt":
		return plurality.GapSqrt(sc.N, sc.K, sc.BiasParam)
	case "tinygap":
		return plurality.TinyGap(sc.N, sc.K, sc.BiasParam)
	case "zipf":
		return plurality.Zipf(sc.N, sc.K, sc.BiasParam)
	case "uniform":
		return plurality.Uniform(sc.N, sc.K)
	default:
		return nil, fmt.Errorf("exp: unknown bias profile %q", sc.Bias)
	}
}

// graph materializes the scenario's topology. Randomized topologies derive
// their seed from the trial seed, so distinct trials see independent graph
// samples while the whole run stays deterministic.
func (sc Scenario) graph(seed uint64) (plurality.Graph, error) {
	switch sc.Topology {
	case "complete":
		return plurality.CompleteGraph(sc.N)
	case "cycle":
		return plurality.CycleGraph(sc.N)
	case "torus":
		side := int(math.Round(math.Sqrt(float64(sc.N))))
		return plurality.TorusGraph(side, side)
	case "gnp":
		return plurality.RandomGraph(sc.N, sc.TopologyParam, rng.At(seed, graphStream).Uint64())
	case "random-regular":
		return plurality.RandomRegularGraph(sc.N, int(sc.TopologyParam), rng.At(seed, graphStream).Uint64())
	case "annealed":
		// The annealed regular model has no quenched wiring to sample, so
		// the graph is seed-free and identical across trials.
		return plurality.AnnealedRegularGraph(sc.N, int(sc.TopologyParam))
	case "annealed-gnp":
		g, err := plurality.RandomGraph(sc.N, sc.TopologyParam, rng.At(seed, graphStream).Uint64())
		if err != nil {
			return nil, err
		}
		return plurality.AnnealedGraph(g)
	default:
		return nil, fmt.Errorf("exp: unknown topology %q", sc.Topology)
	}
}

// Derived-stream indices for the per-trial seed. The library runners
// consume streams 0 and 1 of each seed, so the harness claims high indices
// for its own draws.
const (
	shuffleStream = 1 << 10
	graphStream   = 1<<10 + 1
)

// model maps the scenario's scheduler name to the public option value.
func (sc Scenario) model() (plurality.Model, error) {
	switch sc.Model {
	case "sequential":
		return plurality.Sequential, nil
	case "poisson":
		return plurality.Poisson, nil
	case "heap-poisson":
		return plurality.HeapPoisson, nil
	default:
		return 0, fmt.Errorf("exp: unknown model %q", sc.Model)
	}
}

// RunScenario executes one trial of the scenario under the given seed with
// a background context; see RunScenarioCtx.
func RunScenario(sc Scenario, seed uint64) (Trial, error) {
	return RunScenarioCtx(context.Background(), sc, seed)
}

// RunScenarioCtx executes one trial of the scenario under the given seed
// through the Job API, honoring ctx inside every engine loop (the CLI's
// -timeout flag lands here). A run that exhausts its time budget is not an
// error: it returns a Trial with Done == false so sweeps can record the
// failure rate. Cancellation and invalid configurations abort.
func RunScenarioCtx(ctx context.Context, sc Scenario, seed uint64) (Trial, error) {
	if err := sc.Validate(); err != nil {
		return Trial{}, err
	}
	counts, err := sc.counts()
	if err != nil {
		return Trial{}, err
	}
	if sc.nodeRuntime() {
		// Networked cells run real node processes through the public
		// Cluster path; like the counts path they never shuffle a
		// population (the clique is exchangeable, so block placement is
		// statistically irrelevant).
		return runNodeScenario(ctx, sc, counts, seed)
	}
	if engine, _, _ := sc.engineSpec(); engine == "occupancy" || engine == "leap" {
		// The count-collapsed cells never materialize a population: O(k)
		// memory regardless of n, so a 10⁸-node cell costs as much as a
		// 10³-node one. Node placement is irrelevant on the clique, hence
		// no Shuffle either.
		return runCountsScenario(ctx, sc, counts, seed)
	}
	pop, err := plurality.NewPopulation(counts)
	if err != nil {
		return Trial{}, err
	}
	// The workloads designate the most frequent color (lowest index on
	// ties) as the plurality; Shuffle below permutes holders, not counts.
	plurColor := pop.Plurality()
	// FromCounts assigns colors in contiguous index blocks, which spatial
	// topologies would read as adversarially clustered opinions; shuffle
	// so every topology starts from a uniformly random placement.
	pop.Shuffle(rng.At(seed, shuffleStream))

	g, err := sc.graph(seed)
	if err != nil {
		return Trial{}, err
	}
	m, err := sc.model()
	if err != nil {
		return Trial{}, err
	}
	lat, err := parseLatency(sc.Latency)
	if err != nil {
		return Trial{}, err
	}

	opts := []plurality.Option{
		plurality.WithSeed(seed),
		plurality.WithModel(m),
		plurality.WithGraph(g),
	}
	if sc.MaxTime > 0 {
		opts = append(opts, plurality.WithMaxTime(sc.MaxTime))
	}
	if sc.Crash > 0 {
		opts = append(opts, plurality.WithCrashes(sc.Crash))
	}
	if sc.Churn > 0 {
		opts = append(opts, plurality.WithChurn(sc.Churn))
	}
	if lat != nil {
		opts = append(opts, plurality.WithEdgeLatency(lat))
	}
	if sc.DelayRate > 0 {
		opts = append(opts, plurality.WithResponseDelay(sc.DelayRate))
	}
	if adv, err := sc.adversarySpec(); err != nil {
		return Trial{}, err
	} else if adv.Active() {
		opts = append(opts, plurality.WithAdversary(adv))
	}
	if sc.Engine == "per-node" && sc.Protocol != "core" {
		// The core protocol always runs per node (Scenario.Validate accepts
		// the redundant engine spelling for it, as it always has); the
		// strict Job layer would reject the no-op option.
		opts = append(opts, plurality.WithEngine(plurality.EnginePerNode))
	}

	// The shuffled placement matters on spatial topologies, so the job
	// runs on the prepared population (RunOn) rather than from its bound
	// counts; fixed-seed results are bit-identical to the legacy RunX
	// calls, which share the same execution layer.
	job, err := plurality.NewJob(sc.Protocol, counts, opts...)
	if err != nil {
		return Trial{}, err
	}
	rep, err := job.RunOn(ctx, pop)
	return trialFromReport(sc, rep, plurColor, err)
}

// nodeTCPUnit is the simulated-time unit for runtime=node-tcp cells: 2ms of
// wall clock per time unit keeps a smoke cell inside CI budgets while still
// exercising real sockets end to end.
const nodeTCPUnit = 2 * time.Millisecond

// runNodeScenario executes one trial on the networked node runtime: one
// goroutine-backed process per node, pulling opinions over the scenario's
// transport ("node" = the deterministic in-process fabric, "node-tcp" =
// loopback TCP). The trial's Time is the cluster's consensus instant — the
// same observable the simulator reports — not the longer halting tail the
// termination gadget adds after it.
func runNodeScenario(ctx context.Context, sc Scenario, counts []int64, seed uint64) (Trial, error) {
	// The workloads designate the most frequent color (lowest index on
	// ties) as the plurality, same rule as Population.Plurality.
	plurColor := plurality.Color(0)
	for c := 1; c < len(counts); c++ {
		if counts[c] > counts[plurColor] {
			plurColor = plurality.Color(c)
		}
	}
	var transport plurality.Transport
	if sc.Runtime == "node-tcp" {
		transport = plurality.NewTCPTransport(nodeTCPUnit)
	} else {
		transport = plurality.NewChanTransport()
	}
	opts := []plurality.Option{
		plurality.WithSeed(seed),
		plurality.WithModel(plurality.Poisson),
		plurality.WithTransport(transport),
	}
	if sc.MaxTime > 0 {
		opts = append(opts, plurality.WithMaxTime(sc.MaxTime))
	}
	job, err := plurality.NewJob(sc.Protocol, counts, opts...)
	if err != nil {
		return Trial{}, err
	}
	rep, err := job.Run(ctx)
	return trialFromReport(sc, rep, plurColor, err)
}

// runCountsScenario executes one count-collapsed trial (occupancy or leap
// engine) directly on the color histogram.
func runCountsScenario(ctx context.Context, sc Scenario, counts []int64, seed uint64) (Trial, error) {
	// The workloads designate the most frequent color (lowest index on
	// ties) as the plurality, same rule as Population.Plurality.
	plurColor := plurality.Color(0)
	for c := 1; c < len(counts); c++ {
		if counts[c] > counts[plurColor] {
			plurColor = plurality.Color(c)
		}
	}
	m, err := sc.model()
	if err != nil {
		return Trial{}, err
	}
	engine, leapEps, err := sc.engineSpec()
	if err != nil {
		return Trial{}, err
	}
	engOpt := plurality.EngineOccupancy
	if engine == "leap" {
		engOpt = plurality.EngineLeap
	}
	opts := []plurality.Option{
		plurality.WithSeed(seed),
		plurality.WithModel(m),
		plurality.WithEngine(engOpt),
	}
	if sc.Topology != "complete" {
		// Annealed topologies collapse to the degree-class lumped engine;
		// the counts run needs the graph to read the class structure, but
		// still no per-node population.
		g, err := sc.graph(seed)
		if err != nil {
			return Trial{}, err
		}
		opts = append(opts, plurality.WithGraph(g))
	}
	if leapEps > 0 {
		opts = append(opts, plurality.WithLeapEpsilon(leapEps))
	}
	if sc.MaxTime > 0 {
		opts = append(opts, plurality.WithMaxTime(sc.MaxTime))
	}
	if sc.Churn > 0 {
		opts = append(opts, plurality.WithChurn(sc.Churn))
	}
	if adv, err := sc.adversarySpec(); err != nil {
		return Trial{}, err
	} else if adv.Active() {
		opts = append(opts, plurality.WithAdversary(adv))
	}
	job, err := plurality.NewJob(sc.Protocol, counts, opts...)
	if err != nil {
		return Trial{}, err
	}
	rep, err := job.Run(ctx)
	return trialFromReport(sc, rep, plurColor, err)
}

// trialFromReport maps a Job report onto the harness's Trial, tolerating
// the convergence-failure sentinels (a timed-out cell is data, not an
// error) while surfacing cancellation and configuration errors.
func trialFromReport(sc Scenario, rep plurality.Report, plurColor plurality.Color, err error) (Trial, error) {
	tr := Trial{
		Done:        rep.Converged,
		Time:        rep.Time,
		Ticks:       rep.Ticks,
		Win:         rep.Converged && rep.Winner == plurColor,
		Churns:      rep.Churns,
		Corruptions: rep.Corruptions,
		Biased:      rep.Biased,
		Messages:    rep.Messages,
	}
	if sc.Protocol == "core" || sc.nodeRuntime() {
		// The core protocol and the node runtime report the consensus
		// instant separately from the run's total time (the node runtime's
		// total includes the termination gadget's halting tail); the
		// harness has always recorded the former.
		tr.Time = rep.ConsensusTime
	}
	if err != nil && !errors.Is(err, plurality.ErrNoConsensus) && !errors.Is(err, plurality.ErrTimeLimit) {
		// Even a hard stop (cancellation) returns the partial trial next to
		// the error: the engines preserve their injection counters on every
		// exit path, and dropping them here would lose that work.
		return tr, err
	}
	return tr, nil
}
