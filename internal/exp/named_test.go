package exp

import (
	"fmt"
	"math"
	"strings"
	"testing"
)

// synthCell fabricates a converged cell for gate-logic tests.
func synthCell(n int, params map[string]string, mean float64) CellResult {
	return CellResult{
		Label:  fmt.Sprintf("n=%d", n),
		Params: params,
		N:      n,
		Trials: 5,
		Mean:   mean, Median: mean,
		CILo: mean * 0.95, CIHi: mean * 1.05,
	}
}

// TestLogNGatesOnSyntheticShapes: the Θ(log n) gate must accept clean
// logarithmic growth and reject linear (superlogarithmic) growth.
func TestLogNGatesOnSyntheticShapes(t *testing.T) {
	ns, _ := NamedByName("logn-scaling")
	mk := func(f func(n float64) float64) *Report {
		rep := &Report{Schema: SchemaVersion, Sweep: "logn-scaling"}
		for _, n := range []int{256, 512, 1024, 2048, 4096, 8192, 16384} {
			rep.Cells = append(rep.Cells, synthCell(n, map[string]string{"n": fmt.Sprint(n)}, f(float64(n))))
		}
		return rep
	}

	logShaped := mk(func(n float64) float64 { return 100*math.Log(n) + 50 })
	ns.Check(logShaped)
	for _, g := range logShaped.Gates {
		if !g.Pass {
			t.Errorf("log-shaped data failed gate %s: %s", g.Name, g.Detail)
		}
	}

	linShaped := mk(func(n float64) float64 { return n })
	ns.Check(linShaped)
	if failed := linShaped.FailedGates(); len(failed) == 0 {
		t.Errorf("linear growth passed every log n gate: %+v", linShaped.Gates)
	}
}

func TestLogNGatesDegenerateReports(t *testing.T) {
	ns, _ := NamedByName("logn-scaling")
	// All-failed cells: no fit possible.
	rep := &Report{Schema: SchemaVersion}
	rep.Cells = []CellResult{{Label: "n=256", Trials: 5, Failures: 5}}
	ns.Check(rep)
	if len(rep.FailedGates()) == 0 {
		t.Error("unfittable report passed")
	}
	// Too few points for the half-slope check.
	rep2 := &Report{Schema: SchemaVersion}
	for _, n := range []int{256, 512} {
		rep2.Cells = append(rep2.Cells, synthCell(n, nil, 100*math.Log(float64(n))))
	}
	ns.Check(rep2)
	found := false
	for _, g := range rep2.Gates {
		if g.Name == "logn-slope-stable" && !g.Pass {
			found = true
		}
	}
	if !found {
		t.Errorf("2-point report should fail slope stability: %+v", rep2.Gates)
	}
}

func TestLatencyGateOnSyntheticReports(t *testing.T) {
	ns, _ := NamedByName("latency")
	mk := func(none, slow float64) *Report {
		return &Report{Schema: SchemaVersion, Cells: []CellResult{
			synthCell(1024, map[string]string{"latency": "none"}, none),
			synthCell(1024, map[string]string{"latency": "exp:2"}, slow),
		}}
	}
	good := mk(100, 150)
	ns.Check(good)
	if len(good.FailedGates()) != 0 {
		t.Errorf("monotone latency report failed: %v", good.FailedGates())
	}
	bad := mk(150, 100)
	ns.Check(bad)
	if len(bad.FailedGates()) == 0 {
		t.Error("latency speeding the run up should fail the gate")
	}
	// Missing baseline cell.
	missing := &Report{Schema: SchemaVersion, Cells: []CellResult{
		synthCell(1024, map[string]string{"latency": "exp:2"}, 100),
	}}
	ns.Check(missing)
	if len(missing.FailedGates()) == 0 {
		t.Error("report without the instant-edge cell should fail")
	}
}

func TestChurnGateOnSyntheticReports(t *testing.T) {
	ns, _ := NamedByName("churn")
	silent := synthCell(1024, map[string]string{"churn": "0.5/n"}, 100)
	silent.Churns = 0
	rep := &Report{Schema: SchemaVersion, Cells: []CellResult{
		synthCell(1024, map[string]string{"churn": "0"}, 90),
		silent,
	}}
	ns.Check(rep)
	failed := strings.Join(rep.FailedGates(), "\n")
	if !strings.Contains(failed, "churn-fires") {
		t.Errorf("silent churn cell should fail churn-fires: %+v", rep.Gates)
	}

	fired := synthCell(1024, map[string]string{"churn": "0.5/n"}, 100)
	fired.Churns = 12
	rep2 := &Report{Schema: SchemaVersion, Cells: []CellResult{
		synthCell(1024, map[string]string{"churn": "0"}, 90),
		fired,
	}}
	ns.Check(rep2)
	if len(rep2.FailedGates()) != 0 {
		t.Errorf("firing churn report failed: %v", rep2.FailedGates())
	}
}

// TestProtocolRaceGatesOnSyntheticReports: the plurality-wins gate must
// exempt Voter (its winner is the martingale draw) while holding every
// guaranteed protocol to a perfect score, and the race must fail when
// Two-Choices is slower than Voter.
func TestProtocolRaceGatesOnSyntheticReports(t *testing.T) {
	ns, _ := NamedByName("protocol-race")
	mk := func(tcMean, voterMean float64, usdWins int) *Report {
		tc := synthCell(2048, map[string]string{"protocol": "two-choices"}, tcMean)
		tc.PluralityWins = tc.Trials
		vt := synthCell(2048, map[string]string{"protocol": "voter"}, voterMean)
		vt.PluralityWins = 2 // martingale: no guarantee, must not fail the gate
		us := synthCell(2048, map[string]string{"protocol": "usd"}, tcMean*2)
		us.PluralityWins = usdWins
		return &Report{Schema: SchemaVersion, Cells: []CellResult{tc, vt, us}}
	}
	good := mk(30, 2000, 5)
	ns.Check(good)
	if failed := good.FailedGates(); len(failed) != 0 {
		t.Errorf("healthy race failed: %v", failed)
	}
	slowTC := mk(3000, 2000, 5)
	ns.Check(slowTC)
	if failed := strings.Join(slowTC.FailedGates(), "\n"); !strings.Contains(failed, "two-choices-beats-voter") {
		t.Errorf("slow two-choices should fail the race: %+v", slowTC.Gates)
	}
	usdLoses := mk(30, 2000, 4)
	ns.Check(usdLoses)
	if failed := strings.Join(usdLoses.FailedGates(), "\n"); !strings.Contains(failed, "plurality-wins") {
		t.Errorf("USD losing a trial should fail plurality-wins: %+v", usdLoses.Gates)
	}
}

func TestTopologyGateOnSyntheticReports(t *testing.T) {
	ns, _ := NamedByName("topology")
	rep := &Report{Schema: SchemaVersion, Cells: []CellResult{
		synthCell(1024, map[string]string{"topology": "complete"}, 200),
		synthCell(1024, map[string]string{"topology": "torus"}, 100),
	}}
	ns.Check(rep)
	failed := strings.Join(rep.FailedGates(), "\n")
	if !strings.Contains(failed, "clique-fastest") {
		t.Errorf("torus beating the clique should fail: %+v", rep.Gates)
	}
}

func TestAllConvergedGateDetailsFailures(t *testing.T) {
	rep := &Report{Schema: SchemaVersion, Cells: []CellResult{
		{Label: "n=256", Trials: 5, Failures: 2},
	}}
	gateAllConverged(rep)
	if len(rep.Gates) != 1 || rep.Gates[0].Pass || !strings.Contains(rep.Gates[0].Detail, "n=256") {
		t.Fatalf("gates: %+v", rep.Gates)
	}
}

// TestApplyAxisCoverage exercises every axis and the error paths not hit by
// the compile tests.
func TestApplyAxisCoverage(t *testing.T) {
	sc := baseScenario()
	good := []struct{ name, value string }{
		{"protocol", "voter"},
		{"model", "heap-poisson"},
		{"bias", "zipf:1.2"},
		{"bias", "uniform"},
		{"topology", "gnp:0.3"},
		{"crash", "0.05"},
		{"churn", "0.001"},
		{"latency", "exp:1"},
		{"delay", "2"},
		{"maxtime", "500"},
	}
	for _, c := range good {
		if err := applyAxis(&sc, c.name, c.value); err != nil {
			t.Errorf("applyAxis(%s, %s): %v", c.name, c.value, err)
		}
	}
	if sc.DelayRate != 2 || sc.MaxTime != 500 || sc.Crash != 0.05 || sc.TopologyParam != 0.3 {
		t.Fatalf("scenario after axes: %+v", sc)
	}
	bad := []struct{ name, value string }{
		{"n", "x"}, {"k", "x"}, {"bias", "zipf:x"}, {"topology", "gnp:x"},
		{"crash", "x"}, {"churn", "x"}, {"churn", "x/n"}, {"delay", "x"},
		{"maxtime", "x"}, {"flux", "1"},
	}
	for _, c := range bad {
		if err := applyAxis(&sc, c.name, c.value); err == nil {
			t.Errorf("applyAxis(%s, %s) should fail", c.name, c.value)
		}
	}
	// churn "/n" before n is set.
	empty := Scenario{}
	if err := applyAxis(&empty, "churn", "0.5/n"); err == nil {
		t.Error("churn/n without n should fail")
	}
}

// TestScenarioCountsProfiles covers every bias-profile constructor.
func TestScenarioCountsProfiles(t *testing.T) {
	for _, bias := range []struct {
		name  string
		param float64
	}{
		{"biased", 1}, {"gapsqrt", 1}, {"tinygap", 1}, {"zipf", 1.1}, {"uniform", 0},
	} {
		sc := Scenario{N: 1000, K: 4, Bias: bias.name, BiasParam: bias.param}
		counts, err := sc.counts()
		if err != nil {
			t.Fatalf("%s: %v", bias.name, err)
		}
		var total int64
		for _, c := range counts {
			total += c
		}
		if total != 1000 || len(counts) != 4 {
			t.Fatalf("%s: counts %v", bias.name, counts)
		}
	}
}
