package exp

import (
	"strings"
	"testing"
)

func nodeScenario() Scenario {
	return Scenario{
		Protocol: "two-choices", N: 64, K: 2,
		Bias: "biased", BiasParam: 1,
		Topology: "complete", Model: "poisson",
		Runtime: "node",
	}
}

func TestScenarioValidateRuntime(t *testing.T) {
	if err := nodeScenario().Validate(); err != nil {
		t.Fatalf("baseline node scenario invalid: %v", err)
	}
	for _, rt := range []string{"", "sim"} {
		sc := nodeScenario()
		sc.Runtime = rt
		if err := sc.Validate(); err != nil {
			t.Errorf("runtime %q: %v", rt, err)
		}
	}
	cases := []struct {
		name string
		mut  func(*Scenario)
		want string
	}{
		{"unknown", func(sc *Scenario) { sc.Runtime = "cloud" }, "unknown runtime"},
		{"core", func(sc *Scenario) { sc.Protocol = "core" }, "core protocol"},
		{"topology", func(sc *Scenario) { sc.Topology = "cycle" }, "complete topology"},
		{"model", func(sc *Scenario) { sc.Model = "sequential" }, "poisson model"},
		{"engine", func(sc *Scenario) { sc.Engine = "occupancy" }, "does not apply"},
		{"churn", func(sc *Scenario) { sc.Churn = 0.001 }, "churn"},
		{"delay", func(sc *Scenario) { sc.DelayRate = 0.5 }, "response delays"},
		{"latency", func(sc *Scenario) { sc.Latency = "exp:0.1" }, "edge latencies"},
		{"adversary", func(sc *Scenario) { sc.Adversary = "corrupt" }, "adversaries"},
		{"too-big", func(sc *Scenario) { sc.N = 1 << 17 }, "bound"},
	}
	for _, tc := range cases {
		sc := nodeScenario()
		tc.mut(&sc)
		err := sc.Validate()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v does not mention %q", tc.name, err, tc.want)
		}
	}
	// Crash pairs only with the core protocol, which the runtime rejects
	// first — exercise the crash arm via the tcp runtime name too.
	sc := nodeScenario()
	sc.Runtime = "node-tcp"
	sc.Crash = 0.1
	if err := sc.Validate(); err == nil || !strings.Contains(err.Error(), "crash") {
		t.Errorf("crash on node-tcp: got %v", err)
	}
}

func TestApplyAxisRuntime(t *testing.T) {
	sc := nodeScenario()
	if err := applyAxis(&sc, "runtime", "sim"); err != nil {
		t.Fatal(err)
	}
	if sc.Runtime != "sim" {
		t.Fatalf("runtime = %q", sc.Runtime)
	}
}

func TestRunScenarioNodeRuntime(t *testing.T) {
	a, err := RunScenario(nodeScenario(), 11)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Done || !a.Win {
		t.Fatalf("node trial: done=%v win=%v", a.Done, a.Win)
	}
	if a.Time <= 0 || a.Ticks <= 0 {
		t.Fatalf("node trial: time=%v ticks=%d", a.Time, a.Ticks)
	}
	if a.Messages == 0 {
		t.Fatal("node trial exchanged no messages")
	}
	b, err := RunScenario(nodeScenario(), 11)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("node trial drifted under a fixed seed:\n%+v\n%+v", a, b)
	}
}

func TestRunScenarioNodeTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("real sockets and wall-clock timers")
	}
	sc := nodeScenario()
	sc.Runtime = "node-tcp"
	sc.N = 32
	sc.MaxTime = 2000
	tr, err := RunScenario(sc, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Done || tr.Messages == 0 {
		t.Fatalf("node-tcp trial: done=%v messages=%d", tr.Done, tr.Messages)
	}
}

// TestSweepKeepTimes pins the KeepTimes contract: the per-trial consensus
// times land on the cell sorted ascending, and stay absent otherwise.
func TestSweepKeepTimes(t *testing.T) {
	base := Scenario{
		Protocol: "two-choices", N: 128, K: 2,
		Bias: "biased", BiasParam: 1,
		Topology: "complete", Model: "poisson",
	}
	sw := Sweep{Name: "kt", Base: base, Trials: 4, Seed: 9, KeepTimes: true}
	rep, err := sw.Run(Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	c := rep.Cells[0]
	if len(c.Times) != c.Trials-c.Failures {
		t.Fatalf("kept %d times for %d converged trials", len(c.Times), c.Trials-c.Failures)
	}
	for i := 1; i < len(c.Times); i++ {
		if c.Times[i] < c.Times[i-1] {
			t.Fatalf("times not sorted: %v", c.Times)
		}
	}
	sw.KeepTimes = false
	rep, err = sw.Run(Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cells[0].Times != nil {
		t.Fatalf("times recorded without KeepTimes: %v", rep.Cells[0].Times)
	}
}

// synthetic net-equivalence report: one sim/node pair per protocol at one n.
func synthNetReport(nodeTimes []float64, nodeMessages int64) *Report {
	simTimes := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	rep := &Report{Schema: SchemaVersion, Sweep: "net-equivalence"}
	mk := func(runtime string, times []float64, msgs int64) CellResult {
		c := synthCell(256, map[string]string{
			"protocol": "two-choices", "n": "256", "runtime": runtime,
		}, 4)
		c.Label = "protocol=two-choices,n=256,runtime=" + runtime
		c.Times = times
		c.Messages = msgs
		return c
	}
	rep.Cells = append(rep.Cells, mk("sim", simTimes, 0), mk("node", nodeTimes, nodeMessages))
	return rep
}

func TestNetEquivalenceGatesOnSyntheticReports(t *testing.T) {
	ns, ok := NamedByName("net-equivalence")
	if !ok {
		t.Fatal("net-equivalence not registered")
	}
	gate := func(rep *Report, name string) Gate {
		t.Helper()
		for _, g := range rep.Gates {
			if g.Name == name {
				return g
			}
		}
		t.Fatalf("gate %q missing (have %v)", name, rep.Gates)
		return Gate{}
	}

	// Same distribution, messages flowing: both gates pass.
	rep := synthNetReport([]float64{1, 2, 3, 4, 5, 6, 7, 8}, 4096)
	ns.Check(rep)
	if g := gate(rep, "distribution-match"); !g.Pass {
		t.Errorf("identical samples rejected: %s", g.Detail)
	}
	if g := gate(rep, "messages-flow"); !g.Pass {
		t.Errorf("messages-flow failed with messages set: %s", g.Detail)
	}

	// A grossly shifted node distribution must fail the KS gate.
	rep = synthNetReport([]float64{101, 102, 103, 104, 105, 106, 107, 108}, 4096)
	ns.Check(rep)
	if g := gate(rep, "distribution-match"); g.Pass {
		t.Error("shifted distribution passed the KS gate")
	}

	// No recorded times (KeepTimes lost) must fail loudly, not silently pass.
	rep = synthNetReport(nil, 4096)
	ns.Check(rep)
	if g := gate(rep, "distribution-match"); g.Pass {
		t.Error("missing times passed the KS gate")
	}

	// A node cell with zero messages fails the flow gate.
	rep = synthNetReport([]float64{1, 2, 3, 4, 5, 6, 7, 8}, 0)
	ns.Check(rep)
	if g := gate(rep, "messages-flow"); g.Pass {
		t.Error("zero-message node cell passed the flow gate")
	}
}
