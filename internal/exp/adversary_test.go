package exp

import (
	"fmt"
	"strings"
	"testing"
)

func TestParseBudget(t *testing.T) {
	for _, tc := range []struct {
		in      string
		n       int
		want    int64
		wantErr bool
	}{
		{in: "", n: 100, want: 0},
		{in: "0", n: 100, want: 0},
		{in: "17", n: 100, want: 17},
		{in: " 17 ", n: 100, want: 17},
		{in: "sqrt(n)", n: 1024, want: 32},
		{in: "4sqrt(n)", n: 1024, want: 128},
		{in: "4*sqrt(n)", n: 1024, want: 128},
		{in: "0.5sqrt(n)", n: 1024, want: 16},
		{in: "n^0.5", n: 1024, want: 32},
		{in: "n^0.3", n: 1024, want: 8},
		{in: "n^1", n: 50, want: 50},
		{in: "-3", n: 100, wantErr: true},
		{in: "x", n: 100, wantErr: true},
		{in: "n^x", n: 100, wantErr: true},
		{in: "xsqrt(n)", n: 100, wantErr: true},
		{in: "sqrt(n)", n: 0, wantErr: true}, // symbolic form needs n
		{in: "n^0.3", n: 0, wantErr: true},
		{in: "-1sqrt(n)", n: 100, wantErr: true},
	} {
		got, err := parseBudget(tc.in, tc.n)
		if tc.wantErr {
			if err == nil {
				t.Errorf("parseBudget(%q, %d) = %d, want error", tc.in, tc.n, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseBudget(%q, %d): %v", tc.in, tc.n, err)
			continue
		}
		if got != tc.want {
			t.Errorf("parseBudget(%q, %d) = %d, want %d", tc.in, tc.n, got, tc.want)
		}
	}
}

func advScenario() Scenario {
	return Scenario{
		Protocol: "two-choices", N: 1024, K: 2,
		Bias: "biased", BiasParam: 1,
		Topology: "complete", Model: "poisson",
		MaxTime: 60,
	}
}

func TestScenarioValidateAdversary(t *testing.T) {
	for _, tc := range []struct {
		name    string
		mutate  func(*Scenario)
		wantErr string
	}{
		{name: "clean", mutate: func(sc *Scenario) {}},
		{name: "corrupt ok", mutate: func(sc *Scenario) { sc.Adversary = "corrupt"; sc.Budget = "8" }},
		{name: "symbolic budget ok", mutate: func(sc *Scenario) { sc.Adversary = "corrupt"; sc.Budget = "n^0.3" }},
		{name: "alias ok", mutate: func(sc *Scenario) { sc.Adversary = "liar"; sc.Budget = "4sqrt(n)" }},
		{name: "zero budget inactive ok", mutate: func(sc *Scenario) { sc.Adversary = "corrupt"; sc.Budget = "0" }},
		{name: "occupancy + corrupt ok", mutate: func(sc *Scenario) {
			sc.Engine = "occupancy"
			sc.Adversary = "corrupt"
			sc.Budget = "8"
		}},
		{name: "unknown adversary", mutate: func(sc *Scenario) { sc.Adversary = "bogus"; sc.Budget = "8" }, wantErr: "unknown adversary"},
		{name: "budget without adversary", mutate: func(sc *Scenario) { sc.Budget = "8" }, wantErr: "no adversary"},
		{name: "bad budget", mutate: func(sc *Scenario) { sc.Adversary = "corrupt"; sc.Budget = "x" }, wantErr: "budget"},
		{name: "core + byzantine", mutate: func(sc *Scenario) {
			sc.Protocol = "core"
			sc.Adversary = "byzantine"
			sc.Budget = "8"
		}, wantErr: "lie"},
		{name: "leap + adversary", mutate: func(sc *Scenario) {
			sc.Engine = "leap"
			sc.Adversary = "corrupt"
			sc.Budget = "8"
		}, wantErr: "leap engine cannot host"},
		{name: "occupancy + per-node adversary", mutate: func(sc *Scenario) {
			sc.Engine = "occupancy"
			sc.Adversary = "delay-set"
			sc.Budget = "8"
		}, wantErr: "per-node"},
		{name: "late without lag", mutate: func(sc *Scenario) { sc.Adversary = "late"; sc.Budget = "8" }, wantErr: "lag"},
	} {
		sc := advScenario()
		tc.mutate(&sc)
		err := sc.Validate()
		if tc.wantErr == "" {
			if err != nil {
				t.Errorf("%s: Validate: %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: Validate = %v, want error containing %q", tc.name, err, tc.wantErr)
		}
	}
}

func TestApplyAxisAdversary(t *testing.T) {
	sc := advScenario()
	if err := applyAxis(&sc, "adversary", "corrupt"); err != nil {
		t.Fatal(err)
	}
	if err := applyAxis(&sc, "budget", "4sqrt(n)"); err != nil {
		t.Fatal(err)
	}
	if sc.Adversary != "corrupt" || sc.Budget != "4sqrt(n)" {
		t.Fatalf("axes did not land: %+v", sc)
	}
	// Symbolic budgets resolve at Validate time against the final n, so a
	// budget axis ahead of the n axis is fine.
	empty := Scenario{}
	if err := applyAxis(&empty, "budget", "4sqrt(n)"); err != nil {
		t.Fatalf("budget axis before n: %v", err)
	}
}

// TestRunScenarioAdversaryCounted: an adversarial scenario records its
// interventions in the Trial, and the zero-budget spelling matches the
// clean run bit for bit.
func TestRunScenarioAdversaryCounted(t *testing.T) {
	sc := advScenario()
	sc.Adversary, sc.Budget = "corrupt", "6"
	tr, err := RunScenario(sc, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Done || tr.Corruptions == 0 {
		t.Fatalf("adversarial trial = %+v, want convergence with recorded corruptions", tr)
	}

	clean := advScenario()
	cleanTr, err := RunScenario(clean, 5)
	if err != nil {
		t.Fatal(err)
	}
	zero := advScenario()
	zero.Adversary, zero.Budget = "corrupt", "0"
	zeroTr, err := RunScenario(zero, 5)
	if err != nil {
		t.Fatal(err)
	}
	if cleanTr != zeroTr {
		t.Fatalf("zero-budget scenario diverged from clean:\n  clean: %+v\n  zero:  %+v", cleanTr, zeroTr)
	}
}

// TestAdversaryThresholdGatesOnSyntheticReports exercises the sweep's gate
// logic against fabricated survival shapes.
func TestAdversaryThresholdGatesOnSyntheticReports(t *testing.T) {
	ns, ok := NamedByName("adversary-threshold")
	if !ok {
		t.Fatal("adversary-threshold is not registered")
	}
	cell := func(n int, budget string, wins, fails int, corruptions int64) CellResult {
		return CellResult{
			Label:         fmt.Sprintf("n=%d,budget=%s", n, budget),
			Params:        map[string]string{"n": fmt.Sprint(n), "budget": budget},
			N:             n,
			Trials:        10,
			Failures:      fails,
			PluralityWins: wins,
			Corruptions:   corruptions,
		}
	}
	mk := func(cells ...CellResult) *Report {
		return &Report{Schema: SchemaVersion, Sweep: "adversary-threshold", Cells: cells}
	}
	pass := mk(
		cell(1024, "0", 10, 0, 0),
		cell(1024, "n^0.3", 10, 0, 40),
		cell(1024, "4sqrt(n)", 0, 10, 900),
	)
	ns.Check(pass)
	if failed := pass.FailedGates(); len(failed) != 0 {
		t.Fatalf("phase-transition shape failed gates: %v", failed)
	}
	for name, rep := range map[string]*Report{
		"corrupted control":  mk(cell(1024, "0", 10, 0, 3), cell(1024, "n^0.3", 10, 0, 40), cell(1024, "4sqrt(n)", 0, 10, 900)),
		"survive side dies":  mk(cell(1024, "0", 10, 0, 0), cell(1024, "n^0.3", 5, 5, 40), cell(1024, "4sqrt(n)", 0, 10, 900)),
		"fail side survives": mk(cell(1024, "0", 10, 0, 0), cell(1024, "n^0.3", 10, 0, 40), cell(1024, "4sqrt(n)", 9, 1, 900)),
		"silent adversary":   mk(cell(1024, "0", 10, 0, 0), cell(1024, "n^0.3", 10, 0, 0), cell(1024, "4sqrt(n)", 0, 10, 900)),
	} {
		rep := rep
		ns.Check(rep)
		if failed := rep.FailedGates(); len(failed) == 0 {
			t.Errorf("%s: expected a gate failure, got none", name)
		}
	}
}
