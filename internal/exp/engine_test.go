package exp

import (
	"math"
	"testing"
)

func TestScenarioEngineValidation(t *testing.T) {
	base := Scenario{
		Protocol: "two-choices", N: 1000, K: 3,
		Bias: "biased", BiasParam: 1,
		Topology: "complete", Model: "poisson",
	}
	ok := base
	for _, e := range []string{"", "auto", "per-node", "occupancy", "leap", "leap:0.05", "leap:0.002"} {
		ok.Engine = e
		if err := ok.Validate(); err != nil {
			t.Errorf("engine %q: %v", e, err)
		}
	}
	bad := []Scenario{
		func() Scenario { s := base; s.Engine = "warp"; return s }(),
		func() Scenario { s := base; s.Engine = "occupancy"; s.Protocol = "core"; return s }(),
		func() Scenario { s := base; s.Engine = "occupancy"; s.Topology = "cycle"; return s }(),
		func() Scenario { s := base; s.Engine = "occupancy"; s.Latency = "exp:1"; return s }(),
		func() Scenario { s := base; s.Engine = "occupancy"; s.DelayRate = 2; return s }(),
		func() Scenario { s := base; s.Engine = "leap:0"; return s }(),
		func() Scenario { s := base; s.Engine = "leap:0.9"; return s }(),
		func() Scenario { s := base; s.Engine = "leap:lots"; return s }(),
		func() Scenario { s := base; s.Engine = "leap"; s.Topology = "cycle"; return s }(),
		func() Scenario { s := base; s.Engine = "leap"; s.Churn = 0.001; return s }(),
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad scenario %d validated: %+v", i, s)
		}
	}
}

// TestRunScenarioCountsPath: the occupancy cells run on the histogram
// without a population; the trial must still report a plausible consensus,
// and churn must thread through.
func TestRunScenarioCountsPath(t *testing.T) {
	sc := Scenario{
		Protocol: "two-choices", N: 5000, K: 4,
		Bias: "biased", BiasParam: 1,
		Topology: "complete", Model: "poisson",
		Engine: "occupancy",
	}
	tr, err := RunScenario(sc, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Done || !tr.Win || tr.Ticks <= 0 || tr.Time <= 0 {
		t.Fatalf("trial = %+v", tr)
	}

	sc.Churn = 0.3 / float64(sc.N)
	tr2, err := RunScenario(sc, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !tr2.Done || tr2.Churns == 0 {
		t.Fatalf("churned trial = %+v", tr2)
	}
}

// TestRunScenarioLeapPath: the hybrid leap engine runs a scenario trial end
// to end, both at the default budget and with an explicit leap:<eps> spec,
// and lands on the same time scale as the exact occupancy engine.
func TestRunScenarioLeapPath(t *testing.T) {
	sc := Scenario{
		Protocol: "two-choices", N: 200_000, K: 4,
		Bias: "biased", BiasParam: 1,
		Topology: "complete", Model: "poisson",
		Engine: "occupancy",
	}
	exact, err := RunScenario(sc, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range []string{"leap", "leap:0.05"} {
		sc.Engine = e
		tr, err := RunScenario(sc, 7)
		if err != nil {
			t.Fatal(err)
		}
		if !tr.Done || !tr.Win || tr.Ticks <= 0 || tr.Time <= 0 {
			t.Fatalf("engine %q: trial = %+v", e, tr)
		}
		if rel := math.Abs(tr.Time-exact.Time) / exact.Time; rel > 0.5 {
			t.Fatalf("engine %q: time %.2f vs exact %.2f (rel %.2f)", e, tr.Time, exact.Time, rel)
		}
	}
}

// TestEngineSweepGates executes the engine-equivalence and scale sweeps end
// to end at reduced trial counts so their gate logic is covered by go test:
// every gate must be present and passing on a healthy engine.
func TestEngineSweepGates(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	wantGates := map[string][]string{
		"engine-equivalence": {"all-converged", "engines-agree", "leap-agrees"},
		"scale":              {"all-converged", "plurality-wins", "time-grows"},
		"leap-budget":        {"all-converged", "plurality-wins", "budget-invariant"},
	}
	for name, gates := range wantGates {
		ns, ok := NamedByName(name)
		if !ok {
			t.Fatalf("missing named sweep %q", name)
		}
		sw := ns.Build(true, 1, 3)
		rep, err := sw.Run(Options{})
		if err != nil {
			t.Fatal(err)
		}
		ns.Check(rep)
		seen := map[string]bool{}
		for _, g := range rep.Gates {
			seen[g.Name] = true
			if !g.Pass {
				t.Errorf("%s gate %s failed: %s", name, g.Name, g.Detail)
			}
		}
		for _, g := range gates {
			if !seen[g] {
				t.Errorf("%s: gate %s never ran", name, g)
			}
		}
	}
}

// TestEngineSweepGatesCatchDivergence feeds the engine-equivalence check a
// doctored report to prove the gate actually bites.
func TestEngineSweepGatesCatchDivergence(t *testing.T) {
	ns, _ := NamedByName("engine-equivalence")
	rep := &Report{
		Schema: SchemaVersion,
		Cells: []CellResult{
			{Label: "n=100,engine=per-node", Params: map[string]string{"n": "100", "engine": "per-node"},
				N: 100, Trials: 4, Mean: 10, CILo: 9, CIHi: 11},
			{Label: "n=100,engine=occupancy", Params: map[string]string{"n": "100", "engine": "occupancy"},
				N: 100, Trials: 4, Mean: 30, CILo: 28, CIHi: 32},
		},
	}
	ns.Check(rep)
	agreed, leapAgreed := true, true
	for _, g := range rep.Gates {
		switch g.Name {
		case "engines-agree":
			agreed = g.Pass
		case "leap-agrees":
			leapAgreed = g.Pass
		}
	}
	if agreed {
		t.Fatal("engines-agree passed on a 3x divergence with disjoint CIs")
	}
	if leapAgreed {
		t.Fatal("leap-agrees passed with no leap cell in the report")
	}

	budget, _ := NamedByName("leap-budget")
	biased := &Report{
		Schema: SchemaVersion,
		Cells: []CellResult{
			{Label: "engine=leap:0.05", Params: map[string]string{"engine": "leap:0.05"},
				N: 100, Trials: 4, Mean: 40, CILo: 38, CIHi: 42, PluralityWins: 4},
			{Label: "engine=leap:0.002", Params: map[string]string{"engine": "leap:0.002"},
				N: 100, Trials: 4, Mean: 10, CILo: 9, CIHi: 11, PluralityWins: 4},
		},
	}
	budget.Check(biased)
	invariant := true
	for _, g := range biased.Gates {
		if g.Name == "budget-invariant" {
			invariant = g.Pass
		}
	}
	if invariant {
		t.Fatal("budget-invariant passed on a 4x loose-budget divergence")
	}

	scale, _ := NamedByName("scale")
	shrink := &Report{
		Schema: SchemaVersion,
		Cells: []CellResult{
			{Label: "n=1000", Params: map[string]string{"n": "1000"}, N: 1000, Trials: 3, Mean: 20},
			{Label: "n=8000", Params: map[string]string{"n": "8000"}, N: 8000, Trials: 3, Mean: 5},
		},
	}
	scale.Check(shrink)
	grows := true
	for _, g := range shrink.Gates {
		if g.Name == "time-grows" {
			grows = g.Pass
		}
	}
	if grows {
		t.Fatal("time-grows passed on shrinking consensus time")
	}
}

// TestEngineAxisGrid: the engine axis grids like any other axis and the
// per-engine trials of the same scenario agree on the time scale.
func TestEngineAxisGrid(t *testing.T) {
	sw := Sweep{
		Name: "engine-grid",
		Base: Scenario{
			Protocol: "two-choices", N: 2000, K: 3,
			Bias: "biased", BiasParam: 1,
			Topology: "complete", Model: "sequential",
		},
		Axes:   []Axis{{Name: "engine", Values: []string{"per-node", "occupancy"}}},
		Trials: 6,
		Seed:   3,
	}
	rep, err := sw.Run(Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cells) != 2 {
		t.Fatalf("cells: %d", len(rep.Cells))
	}
	per, occ := rep.Cells[0], rep.Cells[1]
	if per.Failures != 0 || occ.Failures != 0 {
		t.Fatalf("failures: %+v / %+v", per, occ)
	}
	if rel := math.Abs(per.Mean-occ.Mean) / per.Mean; rel > 0.5 {
		t.Fatalf("engines disagree wildly: per-node %.2f vs occupancy %.2f", per.Mean, occ.Mean)
	}
}
