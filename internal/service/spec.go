// Package service is the consensus-as-a-service layer behind cmd/pluralityd:
// an HTTP daemon over the public Job/Report API. It accepts JSON job specs,
// validates them through the same Job.Validate path the library uses,
// executes them on a bounded worker pool with queue backpressure (429 +
// Retry-After when the queue is full), dedupes and caches completed results
// keyed by the canonicalized spec (runs are deterministic given the seed, so
// a cache hit is byte-identical to the original execution), streams live
// Snapshot trajectories over Server-Sent Events by bridging WithObserver,
// and supports cancellation wired into the context hooks every engine
// honors.
//
// The HTTP contract — endpoints, JSON schemas, SSE events, error codes,
// backpressure semantics — is documented in docs/API.md; the endpoint table
// there is generated from this package's route registry (Routes/APITable)
// and a drift test keeps the two in sync, mirroring the api.txt gate on the
// library surface.
package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"plurality"
)

// JobSpec is the JSON body of POST /v1/jobs: a declarative protocol run.
// Zero-valued optional fields select the library defaults and are omitted
// from the canonical cache key representation only after normalization, so
// equivalent spellings of the same run dedupe onto one cache entry.
type JobSpec struct {
	// Protocol is the job spec resolved by plurality.NewJob: "core",
	// "onebit", or any registry spec such as "two-choices", "usd" or
	// "j-majority:5".
	Protocol string `json:"protocol"`
	// Counts is the initial color histogram; counts[i] nodes start with
	// color i.
	Counts []int64 `json:"counts"`
	// Seed roots the run's determinism; 0 selects the library default (1).
	Seed uint64 `json:"seed,omitempty"`
	// Model is the communication model: "sequential" (default), "poisson",
	// "heap-poisson" or "synchronous".
	Model string `json:"model,omitempty"`
	// Engine selects the dynamics execution engine: "auto" (default),
	// "per-node", "occupancy" or "leap".
	Engine string `json:"engine,omitempty"`
	// MaxTime bounds asynchronous runs in parallel time (0 = library
	// default).
	MaxTime float64 `json:"maxTime,omitempty"`
	// MaxRounds bounds synchronous runs (0 = library default).
	MaxRounds int `json:"maxRounds,omitempty"`
	// MaxPhases bounds OneExtraBit runs in phases (0 = legacy derivation).
	MaxPhases int `json:"maxPhases,omitempty"`
	// Churn is the per-activation churn probability (0 = none).
	Churn float64 `json:"churn,omitempty"`
	// ResponseDelay is the §4 Exp(rate) response-delay extension (0 = none).
	ResponseDelay float64 `json:"responseDelay,omitempty"`
	// LeapEpsilon is the leap engine's tau-leap error budget (0 = default).
	LeapEpsilon float64 `json:"leapEpsilon,omitempty"`
	// ODEThreshold is the leap engine's mean-field handoff threshold
	// (0 = default; -1 disables the ODE regime).
	ODEThreshold float64 `json:"odeThreshold,omitempty"`
	// Adversary names a registered adversary ("minority-bias", "delay-set",
	// "late", "corrupt", "byzantine" or an alias; "" and "none" mean no
	// adversary). Budget is its power f per window — a zero budget
	// deactivates the adversary entirely, so the pair normalizes away and
	// the run shares its cache entry with the clean spelling. AdversaryLag
	// is the observation lag ℓ required by the lag-parameterized
	// adversaries ("late").
	Adversary    string  `json:"adversary,omitempty"`
	Budget       int64   `json:"budget,omitempty"`
	AdversaryLag float64 `json:"adversaryLag,omitempty"`
	// Trials fans the job out as Job.Trials(ctx, Trials) deterministic
	// pooled trials (0 and 1 both mean a single Job.Run).
	Trials int `json:"trials,omitempty"`
	// ObserveInterval enables SSE streaming: snapshots are published every
	// ObserveInterval units of parallel time (rounds/phases for synchronous
	// runners) to GET /v1/jobs/{id}/stream subscribers. Streaming jobs are
	// single-run (Trials must be 0 or 1). Note that observation is part of
	// the cache key: on the count-collapsed engine an observed run executes
	// tick-by-tick, which draws a different (identically distributed) RNG
	// stream than an unobserved one.
	ObserveInterval float64 `json:"observeInterval,omitempty"`
	// CancelOnDisconnect cancels the job's context when its last SSE
	// subscriber disconnects (after at least one connected) — the
	// live-trajectory-only mode. It is a lifecycle knob, not part of the
	// run, and is excluded from the cache key.
	CancelOnDisconnect bool `json:"cancelOnDisconnect,omitempty"`
}

// specModels maps the wire model names onto the library enum.
var specModels = map[string]plurality.Model{
	"sequential":   plurality.Sequential,
	"poisson":      plurality.Poisson,
	"heap-poisson": plurality.HeapPoisson,
	"synchronous":  plurality.Synchronous,
}

// specEngines maps the wire engine names onto the library enum.
var specEngines = map[string]plurality.Engine{
	"auto":      plurality.EngineAuto,
	"per-node":  plurality.EnginePerNode,
	"occupancy": plurality.EngineOccupancy,
	"leap":      plurality.EngineLeap,
}

// normalize fills the defaults that do not change the run (seed, trials,
// model/engine names) so equivalent spellings share one canonical key, and
// validates the service-level constraints the library cannot see.
func (sp JobSpec) normalize() (JobSpec, error) {
	if sp.Seed == 0 {
		sp.Seed = 1 // the library default seed
	}
	if sp.Trials == 0 {
		sp.Trials = 1
	}
	if sp.Trials < 0 {
		return sp, fmt.Errorf("trials = %d, want >= 0", sp.Trials)
	}
	if sp.Model == "" {
		sp.Model = "sequential"
	}
	if _, ok := specModels[sp.Model]; !ok {
		return sp, fmt.Errorf("unknown model %q (sequential, poisson, heap-poisson, synchronous)", sp.Model)
	}
	if sp.Engine == "" {
		sp.Engine = "auto"
	}
	if _, ok := specEngines[sp.Engine]; !ok {
		return sp, fmt.Errorf("unknown engine %q (auto, per-node, occupancy, leap)", sp.Engine)
	}
	if sp.ObserveInterval < 0 {
		return sp, fmt.Errorf("observeInterval = %v, want >= 0", sp.ObserveInterval)
	}
	spec, err := sp.adversarySpec()
	if err != nil {
		return sp, err
	}
	if !spec.Active() {
		// An inactive adversary (no name, "none", or a zero budget) is
		// bit-identical to the clean run, so all three fields normalize away
		// and both spellings share one cache entry.
		sp.Adversary, sp.Budget, sp.AdversaryLag = "", 0, 0
	} else {
		// Canonicalize aliases ("liar" → "byzantine") and fold an inline lag
		// ("late:2") into the field form for the same reason.
		sp.Adversary = spec.Name
		sp.AdversaryLag = spec.Lag
	}
	if sp.ObserveInterval > 0 && sp.Trials > 1 {
		return sp, fmt.Errorf("streaming jobs are single-run: observeInterval > 0 needs trials <= 1, got %d", sp.Trials)
	}
	if sp.CancelOnDisconnect && sp.ObserveInterval <= 0 {
		return sp, fmt.Errorf("cancelOnDisconnect needs a streaming job (observeInterval > 0)")
	}
	return sp, nil
}

// options compiles the spec into library options, applying only the fields
// the spec sets so Job.Validate's ignored-option rejection stays exact. The
// observer is bound later by the executing task (it owns the snapshot
// fan-out).
func (sp JobSpec) options() []plurality.Option {
	opts := []plurality.Option{
		plurality.WithSeed(sp.Seed),
		plurality.WithModel(specModels[sp.Model]),
	}
	if sp.Engine != "auto" {
		opts = append(opts, plurality.WithEngine(specEngines[sp.Engine]))
	}
	if sp.MaxTime > 0 {
		opts = append(opts, plurality.WithMaxTime(sp.MaxTime))
	}
	if sp.MaxRounds > 0 {
		opts = append(opts, plurality.WithMaxRounds(sp.MaxRounds))
	}
	if sp.MaxPhases > 0 {
		opts = append(opts, plurality.WithMaxPhases(sp.MaxPhases))
	}
	if sp.Churn > 0 {
		opts = append(opts, plurality.WithChurn(sp.Churn))
	}
	if sp.ResponseDelay > 0 {
		opts = append(opts, plurality.WithResponseDelay(sp.ResponseDelay))
	}
	if sp.LeapEpsilon != 0 {
		opts = append(opts, plurality.WithLeapEpsilon(sp.LeapEpsilon))
	}
	if sp.ODEThreshold != 0 {
		theta := sp.ODEThreshold
		if theta < 0 {
			theta = 0 // the public "disable the ODE regime" encoding
		}
		opts = append(opts, plurality.WithODEThreshold(theta))
	}
	if spec, err := sp.adversarySpec(); err == nil && spec.Active() {
		// normalize already vetted the spec; an error here cannot happen on
		// a normalized JobSpec.
		opts = append(opts, plurality.WithAdversary(spec))
	}
	return opts
}

// adversarySpec assembles the spec's adversary fields into a library
// AdversarySpec, resolving the name against the registry.
func (sp JobSpec) adversarySpec() (plurality.AdversarySpec, error) {
	spec, err := plurality.ParseAdversary(sp.Adversary)
	if err != nil {
		return plurality.AdversarySpec{}, err
	}
	spec.Budget = sp.Budget
	if sp.AdversaryLag != 0 {
		if spec.Lag != 0 {
			return plurality.AdversarySpec{}, fmt.Errorf("adversary %q already carries a lag; drop the adversaryLag field", sp.Adversary)
		}
		spec.Lag = sp.AdversaryLag
	}
	if err := spec.Validate(); err != nil {
		return plurality.AdversarySpec{}, err
	}
	if sp.Budget > 0 && !spec.Active() {
		return plurality.AdversarySpec{}, fmt.Errorf("budget = %d set with no adversary to spend it", sp.Budget)
	}
	return spec, nil
}

// compile normalizes the spec and binds it through plurality.NewJob — the
// exact validation path library callers get, so the daemon rejects
// everything the library would (ignored options included) before anything
// is queued. observe is the streaming fan-out bound as the job's
// WithObserver callback when the spec requests observation; it may be nil
// only for specs with ObserveInterval == 0.
func (sp JobSpec) compile(observe func(plurality.Snapshot)) (JobSpec, *plurality.Job, error) {
	norm, err := sp.normalize()
	if err != nil {
		return norm, nil, err
	}
	opts := norm.options()
	if norm.ObserveInterval > 0 {
		opts = append(opts, plurality.WithObserver(norm.ObserveInterval, observe))
	}
	job, err := plurality.NewJob(norm.Protocol, norm.Counts, opts...)
	if err != nil {
		return norm, nil, err
	}
	return norm, job, nil
}

// Key returns the canonical cache key of the spec: a SHA-256 over the
// normalized spec with lifecycle-only fields (CancelOnDisconnect) zeroed,
// so any two submissions that would execute the identical deterministic run
// dedupe onto one cache entry. The key is stable across processes and
// appears in job statuses as "sha256:<hex>".
func (sp JobSpec) Key() (string, error) {
	norm, err := sp.normalize()
	if err != nil {
		return "", err
	}
	norm.CancelOnDisconnect = false
	blob, err := json.Marshal(norm)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(blob)
	return "sha256:" + hex.EncodeToString(sum[:]), nil
}
