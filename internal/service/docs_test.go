package service

import (
	"os"
	"regexp"
	"strings"
	"testing"
)

// TestAPIDocEndpointTable: docs/API.md's endpoint table is the byte-exact
// render of the route registry, bracketed by generated-table markers. A
// route change without the regenerated table is a doc bug this test
// catches — the docs/mux counterpart of the README protocol-table gate.
func TestAPIDocEndpointTable(t *testing.T) {
	doc, err := os.ReadFile("../../docs/API.md")
	if err != nil {
		t.Fatal(err)
	}
	const begin = "<!-- BEGIN GENERATED ENDPOINT TABLE (internal/service.APITable) -->\n"
	const end = "<!-- END GENERATED ENDPOINT TABLE -->"
	s := string(doc)
	i := strings.Index(s, begin)
	j := strings.Index(s, end)
	if i < 0 || j < 0 || j < i {
		t.Fatalf("docs/API.md lacks the generated-table markers %q … %q", begin, end)
	}
	got := s[i+len(begin) : j]
	if got != APITable() {
		t.Errorf("docs/API.md endpoint table is out of sync with the route registry; paste this between the markers:\n%s",
			APITable())
	}
}

// TestREADMEServeQuickstartInSync: the README's serving quickstart is the
// command block scripts/serve_quickstart.sh actually proves in CI (with
// $ADDR standing in for localhost:8080). Documented commands nobody runs
// rot; this test makes the README snippet executable by construction.
func TestREADMEServeQuickstartInSync(t *testing.T) {
	script, err := os.ReadFile("../../scripts/serve_quickstart.sh")
	if err != nil {
		t.Fatal(err)
	}
	const begin = "# --- quickstart begin ---\n"
	const end = "# --- quickstart end ---"
	s := string(script)
	i := strings.Index(s, begin)
	j := strings.Index(s, end)
	if i < 0 || j < 0 || j < i {
		t.Fatalf("serve_quickstart.sh lacks the quickstart markers %q … %q", begin, end)
	}
	block := s[i+len(begin) : j]
	block = strings.ReplaceAll(block, "$ADDR", "localhost:8080")
	block = regexp.MustCompile(`(?m)^\s+`).ReplaceAllString(block, "")

	readme, err := os.ReadFile("../../README.md")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(readme), block) {
		t.Errorf("README.md serving quickstart is out of sync with scripts/serve_quickstart.sh; paste this into the serving section's code block:\n%s",
			block)
	}
}
