package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"plurality"
)

// Config sizes the daemon; zero values select the defaults.
type Config struct {
	// Workers is the execution pool size (default runtime.GOMAXPROCS(0)).
	Workers int
	// QueueDepth bounds the pending-job queue; submissions beyond it are
	// rejected with 429 + Retry-After (default 64).
	QueueDepth int
	// CacheSize bounds the completed-report LRU in entries (default 256;
	// negative disables caching).
	CacheSize int
	// Logger receives structured request and lifecycle logs (default
	// slog.Default()).
	Logger *slog.Logger
}

// Server is the consensus-as-a-service daemon state: the bounded worker
// pool, the job table, the completed-report LRU and the metrics. Create one
// with New, expose Handler over HTTP, and Close it to cancel every running
// job and reap the workers.
type Server struct {
	cfg     Config
	log     *slog.Logger
	metrics *metrics

	baseCtx    context.Context
	cancelBase context.CancelCauseFunc
	wg         sync.WaitGroup
	queue      chan *task

	mu     sync.Mutex
	jobs   map[string]*task
	order  []*task          // submission order, for listing
	byKey  map[string]*task // in-flight dedupe: canonical key -> live task
	cache  *lru
	nextID atomic.Int64
}

// New builds a Server and starts its worker pool.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	switch {
	case cfg.CacheSize == 0:
		cfg.CacheSize = 256
	case cfg.CacheSize < 0:
		cfg.CacheSize = 0
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	ctx, cancel := context.WithCancelCause(context.Background())
	s := &Server{
		cfg:        cfg,
		log:        cfg.Logger,
		metrics:    newMetrics(),
		baseCtx:    ctx,
		cancelBase: cancel,
		queue:      make(chan *task, cfg.QueueDepth),
		jobs:       map[string]*task{},
		byKey:      map[string]*task{},
		cache:      newLRU(cfg.CacheSize),
	}
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// Close cancels every queued and running job (cause: daemon shutdown) and
// waits for the workers to exit. The handler keeps answering reads
// afterwards; submissions land in a queue nobody drains.
func (s *Server) Close() {
	s.cancelBase(errShutdown)
	s.wg.Wait()
}

// worker executes queued tasks until shutdown, then drains the queue so no
// submitter waits on a job that will never run.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.baseCtx.Done():
			for {
				select {
				case t := <-s.queue:
					t.finish(StateCanceled, nil, errShutdown.Error())
					s.settle(t, StateCanceled)
				default:
					return
				}
			}
		case t := <-s.queue:
			s.runTask(t)
		}
	}
}

// runTask executes one job end to end: run (or fan out trials), classify
// the outcome, store the deterministic terminal body, cache done results
// and update the metrics.
func (s *Server) runTask(t *task) {
	if t.ctx.Err() != nil {
		// Canceled while still queued (DELETE or disconnect).
		t.finish(StateCanceled, nil, context.Cause(t.ctx).Error())
		s.settle(t, StateCanceled)
		return
	}
	start := time.Now()
	s.metrics.running.Add(1)
	t.mu.Lock()
	t.state = StateRunning
	t.mu.Unlock()

	var (
		reports []plurality.Report
		err     error
	)
	if t.spec.Trials > 1 {
		reports, err = t.job.Trials(t.ctx, t.spec.Trials)
	} else {
		var rep plurality.Report
		rep, err = t.job.Run(t.ctx)
		reports = []plurality.Report{rep}
	}
	bodies := make([]ReportBody, len(reports))
	for i, rep := range reports {
		bodies[i] = reportBody(rep)
	}

	state := StateDone
	errText := ""
	switch {
	case err == nil:
	case errors.Is(err, plurality.ErrNoConsensus) || errors.Is(err, plurality.ErrTimeLimit) ||
		errors.Is(err, plurality.ErrPhaseLimit):
		// Deterministic budget exhaustion: terminal, reproducible and
		// therefore cacheable, with Converged=false reports.
		errText = err.Error()
	case t.ctx.Err() != nil ||
		errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		// The run error wraps the cancellation cause (DELETE, stream
		// disconnect, shutdown), which the library surfaces through
		// context.Cause rather than context.Canceled itself.
		state = StateCanceled
		errText = err.Error()
	default:
		state = StateFailed
		errText = err.Error()
	}
	s.metrics.running.Add(-1)
	s.metrics.observeLatency(time.Since(start))
	t.finish(state, bodies, errText)
	s.settle(t, state)
	s.log.Info("job finished",
		"id", t.id, "state", string(state), "protocol", t.spec.Protocol,
		"n", t.job.N(), "trials", t.spec.Trials,
		"seconds", time.Since(start).Seconds(), "err", errText)
}

// settle moves a terminal task out of the in-flight dedupe table, caches
// done results and bumps the lifecycle counters.
func (s *Server) settle(t *task, state JobState) {
	s.mu.Lock()
	if s.byKey[t.key] == t {
		delete(s.byKey, t.key)
	}
	if state == StateDone {
		s.cache.Add(t.key, t.terminalBody())
	}
	s.mu.Unlock()
	switch state {
	case StateDone:
		s.metrics.completed.Add(1)
	case StateCanceled:
		s.metrics.canceled.Add(1)
	case StateFailed:
		s.metrics.failed.Add(1)
	}
}

// Handler assembles the daemon's HTTP surface from the route registry
// (Routes) wrapped in structured request logging. Construction panics on a
// registry entry without a handler — the registry and the mux cannot
// drift apart silently.
func (s *Server) Handler() http.Handler {
	handlers := map[string]http.HandlerFunc{
		"POST /v1/jobs":            s.handleSubmit,
		"GET /v1/jobs":             s.handleList,
		"GET /v1/jobs/{id}":        s.handleGet,
		"GET /v1/jobs/{id}/stream": s.handleStream,
		"DELETE /v1/jobs/{id}":     s.handleDelete,
		"GET /v1/protocols":        s.handleProtocols,
		"GET /v1/metrics":          s.handleMetrics,
		"GET /v1/healthz":          s.handleHealthz,
	}
	mux := http.NewServeMux()
	registered := 0
	for _, r := range Routes() {
		pattern := r.Method + " " + r.Pattern
		h, ok := handlers[pattern]
		if !ok {
			panic(fmt.Sprintf("service: route %q has no handler", pattern))
		}
		mux.HandleFunc(pattern, h)
		registered++
	}
	if registered != len(handlers) {
		panic("service: handler not listed in the route registry")
	}
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, http.StatusNotFound, "not_found", "unknown endpoint; see docs/API.md")
	})
	return s.logging(mux)
}

// logging wraps the mux in structured request logging: one Info line per
// request with method, path, status, bytes and duration.
func (s *Server) logging(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(rec, r)
		s.log.Info("request",
			"method", r.Method, "path", r.URL.Path, "status", rec.status,
			"bytes", rec.bytes, "seconds", time.Since(start).Seconds())
	})
}

// statusRecorder captures the response status and size for the request log
// while passing Flush through for SSE.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	n, err := r.ResponseWriter.Write(p)
	r.bytes += int64(n)
	return n, err
}

func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// --- handlers -------------------------------------------------------------

// handleSubmit is POST /v1/jobs: validate, dedupe, cache-check, enqueue —
// or bounce with 429 + Retry-After when the queue is full.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var spec JobSpec
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "invalid_json", err.Error())
		return
	}
	key, err := spec.Key()
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid_spec", err.Error())
		return
	}

	// Fast path under the lock: replay a cached completion byte-identically
	// or join the in-flight job for the same canonical spec.
	s.mu.Lock()
	if body, ok := s.cache.Get(key); ok {
		s.mu.Unlock()
		s.metrics.submitted.Add(1)
		s.metrics.cacheHits.Add(1)
		w.Header().Set("X-Cache", "hit")
		writeBody(w, http.StatusOK, body)
		return
	}
	if live, ok := s.byKey[key]; ok {
		s.mu.Unlock()
		s.metrics.submitted.Add(1)
		w.Header().Set("X-Cache", "inflight")
		writeJSON(w, http.StatusAccepted, live.status())
		return
	}
	s.mu.Unlock()

	// Compile outside the lock; the validation path is the library's own
	// (Job.Validate), so structured 400s carry the exact library message.
	t := &task{key: key, subs: map[chan streamEvent]struct{}{}, done: make(chan struct{})}
	t.spec, t.job, err = spec.compile(t.publish)
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid_spec", err.Error())
		return
	}
	t.id = "j" + strconv.FormatInt(s.nextID.Add(1), 10)
	t.state = StateQueued

	s.mu.Lock()
	// Re-check under the lock: another submitter may have won the race for
	// the same key while we compiled.
	if body, ok := s.cache.Get(key); ok {
		s.mu.Unlock()
		s.metrics.submitted.Add(1)
		s.metrics.cacheHits.Add(1)
		w.Header().Set("X-Cache", "hit")
		writeBody(w, http.StatusOK, body)
		return
	}
	if live, ok := s.byKey[key]; ok {
		s.mu.Unlock()
		s.metrics.submitted.Add(1)
		w.Header().Set("X-Cache", "inflight")
		writeJSON(w, http.StatusAccepted, live.status())
		return
	}
	// The cancelable context is created only on the enqueue path (and
	// released again on rejection) so bounced submissions do not accumulate
	// child contexts on the daemon's base context.
	t.ctx, t.cancel = context.WithCancelCause(s.baseCtx)
	select {
	case s.queue <- t:
		s.jobs[t.id] = t
		s.order = append(s.order, t)
		s.byKey[key] = t
		s.mu.Unlock()
		s.metrics.submitted.Add(1)
		s.metrics.cacheMiss.Add(1)
		writeJSON(w, http.StatusAccepted, t.status())
	default:
		s.mu.Unlock()
		t.cancel(errors.New("service: submission rejected"))
		s.metrics.rejected.Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "queue_full",
			fmt.Sprintf("job queue is full (%d pending); retry after the Retry-After delay", cap(s.queue)))
	}
}

// handleList is GET /v1/jobs.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	tasks := make([]*task, len(s.order))
	copy(tasks, s.order)
	s.mu.Unlock()
	statuses := make([]JobStatus, 0, len(tasks))
	for i := len(tasks) - 1; i >= 0; i-- { // most recent first
		statuses = append(statuses, tasks[i].status())
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": statuses})
}

// lookup resolves {id} or answers 404.
func (s *Server) lookup(w http.ResponseWriter, r *http.Request) (*task, bool) {
	id := r.PathValue("id")
	s.mu.Lock()
	t, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "not_found", fmt.Sprintf("unknown job %q", id))
		return nil, false
	}
	return t, true
}

// handleGet is GET /v1/jobs/{id}. Terminal jobs answer with the stored
// body, byte-identical across repeated reads and to cached replays.
func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	t, ok := s.lookup(w, r)
	if !ok {
		return
	}
	if body := t.terminalBody(); body != nil {
		writeBody(w, http.StatusOK, body)
		return
	}
	writeJSON(w, http.StatusOK, t.status())
}

// handleDelete is DELETE /v1/jobs/{id}: cancel the job's context. The
// engine loops poll it inside their hot paths, so running jobs stop within
// one poll stride; queued jobs are reaped when a worker picks them up.
func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	t, ok := s.lookup(w, r)
	if !ok {
		return
	}
	t.cancel(fmt.Errorf("service: job %s canceled by DELETE", t.id))
	writeJSON(w, http.StatusOK, t.status())
}

// handleStream is GET /v1/jobs/{id}/stream: the SSE bridge over
// WithObserver. Each connected client gets every published snapshot (up to
// its buffer; the stream is a live view, not a durable log) and a final
// "report" event carrying the terminal JobStatus. Client disconnects
// detach the subscriber; for cancelOnDisconnect jobs the last detach
// cancels the job's context.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	t, ok := s.lookup(w, r)
	if !ok {
		return
	}
	if t.spec.ObserveInterval <= 0 {
		writeError(w, http.StatusConflict, "not_streaming",
			fmt.Sprintf("job %s was not submitted with observeInterval > 0", t.id))
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "internal", "response writer cannot stream")
		return
	}
	ch := t.subscribe()
	defer t.unsubscribe(ch)
	s.metrics.streams.Add(1)
	defer s.metrics.streams.Add(-1)

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	seq := 0
	emit := func(ev streamEvent) bool {
		seq++
		if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", seq, ev.name, ev.data); err != nil {
			return false
		}
		flusher.Flush()
		return true
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, open := <-ch:
			if !open {
				// Terminal: the task stored its deterministic body before
				// closing the channel; emit the closing report event.
				emit(streamEvent{name: "report", data: t.terminalBody()})
				return
			}
			if !emit(ev) {
				return
			}
		}
	}
}

// protocolInfo is one /v1/protocols entry, mirroring the registry
// descriptor.
type protocolInfo struct {
	Name          string   `json:"name"`
	Aliases       []string `json:"aliases,omitempty"`
	Param         string   `json:"param,omitempty"`
	Samples       string   `json:"samples"`
	Summary       string   `json:"summary"`
	Source        string   `json:"source"`
	PluralityWins bool     `json:"pluralityWins"`
	Kerneled      bool     `json:"kerneled"`
	Leapable      bool     `json:"leapable"`
	Undecided     bool     `json:"undecided"`
}

// handleProtocols is GET /v1/protocols, rendered from the same registry
// that drives every other protocol resolution in the repo.
func (s *Server) handleProtocols(w http.ResponseWriter, r *http.Request) {
	var infos []protocolInfo
	for _, d := range plurality.Protocols() {
		infos = append(infos, protocolInfo{
			Name:          d.Name,
			Aliases:       d.Aliases,
			Param:         d.Param,
			Samples:       d.Samples,
			Summary:       d.Summary,
			Source:        d.Source,
			PluralityWins: d.PluralityWins,
			Kerneled:      d.Kerneled,
			Leapable:      d.Leapable,
			Undecided:     d.Undecided,
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{"protocols": infos})
}

// handleMetrics is GET /v1/metrics.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	cacheLen := s.cache.Len()
	s.mu.Unlock()
	writeJSON(w, http.StatusOK,
		s.metrics.snapshot(s.cfg.Workers, len(s.queue), cap(s.queue), cacheLen, s.cfg.CacheSize))
}

// handleHealthz is GET /v1/healthz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// --- wire helpers ---------------------------------------------------------

// errorBody is the structured error envelope every non-2xx response uses.
type errorBody struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

// marshalJSON is the single marshaling path for deterministic bodies.
func marshalJSON(v any) ([]byte, error) { return json.Marshal(v) }

func writeBody(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
	if len(body) == 0 || body[len(body)-1] != '\n' {
		w.Write([]byte("\n"))
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	body, err := marshalJSON(v)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "internal", err.Error())
		return
	}
	writeBody(w, status, body)
}

func writeError(w http.ResponseWriter, status int, code, msg string) {
	var e errorBody
	e.Error.Code = code
	e.Error.Message = msg
	body, _ := marshalJSON(e)
	writeBody(w, status, body)
}
