package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"
)

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	name string
	data string
}

// readEvents consumes SSE frames from r until the stream ends or max events
// arrive.
func readEvents(t *testing.T, r *bufio.Reader, max int) []sseEvent {
	t.Helper()
	var events []sseEvent
	var cur sseEvent
	for len(events) < max {
		line, err := r.ReadString('\n')
		if err != nil {
			return events
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		case line == "" && cur.name != "":
			events = append(events, cur)
			cur = sseEvent{}
		}
	}
	return events
}

// openStream subscribes to a job's SSE stream with a cancelable request.
func openStream(t *testing.T, url, id string) (context.CancelFunc, *http.Response) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/v1/jobs/"+id+"/stream", nil)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	return cancel, resp
}

// TestStreamSnapshotsAndTerminalReport: a streaming job delivers snapshot
// events with monotone time and live counts, then closes with a "report"
// event whose payload is the job's terminal status.
func TestStreamSnapshotsAndTerminalReport(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})

	// Park a blocker on the single worker so the streaming job stays
	// queued until the subscriber is connected — otherwise a fast run can
	// finish before the stream opens and deliver only the report event.
	_, blockerBody := post(t, ts, slowSpec(20))
	var blocker JobStatus
	if err := json.Unmarshal(blockerBody, &blocker); err != nil {
		t.Fatal(err)
	}

	sp := fastSpec(21)
	sp.ObserveInterval = 0.25
	_, body := post(t, ts, sp)
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if !st.Streaming {
		t.Fatalf("streaming flag not set: %s", body)
	}

	cancel, resp := openStream(t, ts.URL, st.ID)
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+blocker.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if dresp, err := http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	} else {
		dresp.Body.Close()
	}
	defer cancel()
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}

	events := readEvents(t, bufio.NewReader(resp.Body), 10_000)
	if len(events) < 2 {
		t.Fatalf("got %d events, want snapshots plus a report", len(events))
	}
	last := events[len(events)-1]
	if last.name != "report" {
		t.Fatalf("last event = %q, want report", last.name)
	}
	var final JobStatus
	if err := json.Unmarshal([]byte(last.data), &final); err != nil {
		t.Fatalf("report payload: %v in %s", err, last.data)
	}
	if final.State != StateDone || len(final.Reports) != 1 {
		t.Fatalf("report payload: %s", last.data)
	}

	prev := -1.0
	for _, ev := range events[:len(events)-1] {
		if ev.name != "snapshot" {
			t.Fatalf("mid-stream event %q", ev.name)
		}
		var snap SnapshotBody
		if err := json.Unmarshal([]byte(ev.data), &snap); err != nil {
			t.Fatalf("snapshot payload: %v in %s", err, ev.data)
		}
		if snap.Time < prev {
			t.Fatalf("snapshot time went backwards: %v after %v", snap.Time, prev)
		}
		prev = snap.Time
		if len(snap.Counts) != 2 {
			t.Fatalf("snapshot counts: %v", snap.Counts)
		}
	}

	// The terminal report event matches GET /v1/jobs/{id} byte-for-byte
	// (modulo the trailing newline writeBody appends on the HTTP path).
	_, getBody := get(t, ts, "/v1/jobs/"+st.ID)
	if !bytes.Equal(bytes.TrimRight(getBody, "\n"), []byte(last.data)) {
		t.Fatalf("SSE report != GET body:\n%s\nvs\n%s", last.data, getBody)
	}
}

// TestStreamOnTerminalJobReplaysReport: subscribing after completion still
// yields the terminal report event immediately.
func TestStreamOnTerminalJobReplaysReport(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	sp := fastSpec(22)
	sp.ObserveInterval = 0.5
	_, body := post(t, ts, sp)
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	waitState(t, ts, st.ID, StateDone, 30*time.Second)

	cancel, resp := openStream(t, ts.URL, st.ID)
	defer cancel()
	defer resp.Body.Close()
	events := readEvents(t, bufio.NewReader(resp.Body), 10)
	if len(events) != 1 || events[0].name != "report" {
		t.Fatalf("late subscriber events: %+v", events)
	}
}

// TestStreamNonStreamingJobConflicts: jobs without observeInterval have no
// stream.
func TestStreamNonStreamingJobConflicts(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	_, body := post(t, ts, fastSpec(23))
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	resp, body := get(t, ts, "/v1/jobs/"+st.ID+"/stream")
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("status %d, want 409: %s", resp.StatusCode, body)
	}
	var e errorBody
	if err := json.Unmarshal(body, &e); err != nil || e.Error.Code != "not_streaming" {
		t.Fatalf("409 body: %s", body)
	}
}

// TestDisconnectCancelsJobAndLeaksNothing is satellite 4's contract: for a
// cancelOnDisconnect job, dropping the SSE connection must cancel the job
// context promptly — the engine loop stops mid-run — and the daemon must
// not leak goroutines.
func TestDisconnectCancelsJobAndLeaksNothing(t *testing.T) {
	before := runtime.NumGoroutine()

	// Managed by hand (not t.Cleanup) so the teardown happens before the
	// goroutine-count comparison.
	s := New(Config{Workers: 1, QueueDepth: 4, Logger: quietLogger()})
	ts := httptest.NewServer(s.Handler())

	sp := slowSpec(24)
	sp.ObserveInterval = 0.05 // dense snapshots: the run is observably live
	sp.CancelOnDisconnect = true
	_, body := post(t, ts, sp)
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}

	cancel, resp := openStream(t, ts.URL, st.ID)
	r := bufio.NewReader(resp.Body)
	// Wait until the run is demonstrably inside the engine loop: at least
	// one snapshot arrived.
	if events := readEvents(t, r, 1); len(events) != 1 || events[0].name != "snapshot" {
		t.Fatalf("first event: %+v", events)
	}

	// Drop the connection.
	start := time.Now()
	cancel()
	resp.Body.Close()

	canceled, _ := waitState(t, ts, st.ID, StateCanceled, 10*time.Second)
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("disconnect-cancel took %v, want prompt", elapsed)
	}
	if !strings.Contains(canceled.Error, "disconnected") {
		t.Fatalf("canceled error = %q, want the disconnect cause", canceled.Error)
	}

	// Tear the daemon down and verify the goroutine count returns to the
	// pre-test baseline (with slack for runtime/net background goroutines
	// that wind down asynchronously).
	ts.Close()
	s.Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if g := runtime.NumGoroutine(); g <= before+3 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after teardown", before, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestSecondWatcherKeepsJobAlive: cancelOnDisconnect fires only when the
// LAST subscriber goes away.
func TestSecondWatcherKeepsJobAlive(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})

	sp := slowSpec(25)
	sp.ObserveInterval = 0.05
	sp.CancelOnDisconnect = true
	_, body := post(t, ts, sp)
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}

	cancelA, respA := openStream(t, ts.URL, st.ID)
	defer cancelA()
	defer respA.Body.Close()
	cancelB, respB := openStream(t, ts.URL, st.ID)
	if events := readEvents(t, bufio.NewReader(respB.Body), 1); len(events) != 1 {
		t.Fatalf("watcher B saw no snapshot: %+v", events)
	}

	// B leaves; A is still watching, so the job must stay alive.
	cancelB()
	respB.Body.Close()
	time.Sleep(100 * time.Millisecond)
	resp, body := get(t, ts, "/v1/jobs/"+st.ID)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var cur JobStatus
	if err := json.Unmarshal(body, &cur); err != nil {
		t.Fatal(err)
	}
	if cur.State != StateRunning {
		t.Fatalf("job state after first watcher left = %s, want running", cur.State)
	}

	// A leaves too: now the job cancels.
	cancelA()
	respA.Body.Close()
	waitState(t, ts, st.ID, StateCanceled, 10*time.Second)
}
