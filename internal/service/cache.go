package service

import "container/list"

// lru is a byte-slice LRU keyed by canonical spec keys: the completed-report
// cache behind the daemon's dedupe path. Entries are the marshaled terminal
// JobStatus bodies, so a cache hit is served byte-identical to the original
// completion. Not goroutine-safe; the Server serializes access under its
// own mutex.
type lru struct {
	cap     int
	order   *list.List               // front = most recent
	entries map[string]*list.Element // key -> element whose Value is *lruEntry
}

type lruEntry struct {
	key  string
	body []byte
}

// newLRU returns an empty cache holding at most cap entries; cap <= 0
// disables caching (every Get misses, every Add is dropped).
func newLRU(cap int) *lru {
	return &lru{cap: cap, order: list.New(), entries: map[string]*list.Element{}}
}

// Get returns the cached body for key and refreshes its recency.
func (c *lru) Get(key string) ([]byte, bool) {
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).body, true
}

// Add inserts (or refreshes) key → body, evicting the least recently used
// entry beyond capacity.
func (c *lru) Add(key string, body []byte) {
	if c.cap <= 0 {
		return
	}
	if el, ok := c.entries[key]; ok {
		el.Value.(*lruEntry).body = body
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&lruEntry{key: key, body: body})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*lruEntry).key)
	}
}

// Len returns the number of cached entries.
func (c *lru) Len() int { return c.order.Len() }
