package service

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestAdversarySpecNormalization: inactive adversary spellings collapse
// onto the clean cache key; active ones canonicalize aliases and inline
// lags without losing information.
func TestAdversarySpecNormalization(t *testing.T) {
	base := JobSpec{Protocol: "two-choices", Counts: []int64{600, 400}}
	kClean, err := base.Key()
	if err != nil {
		t.Fatal(err)
	}

	// Zero-budget and "none" spellings are bit-identical runs: one key.
	for name, sp := range map[string]JobSpec{
		"zero budget":    {Protocol: "two-choices", Counts: []int64{600, 400}, Adversary: "corrupt"},
		"none":           {Protocol: "two-choices", Counts: []int64{600, 400}, Adversary: "none"},
		"budgetless lag": {Protocol: "two-choices", Counts: []int64{600, 400}, Adversary: "late:2"},
	} {
		k, err := sp.Key()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if k != kClean {
			t.Errorf("%s: inactive adversary split the cache key", name)
		}
	}

	// Aliases and inline lags canonicalize onto the same active key.
	k1, err := JobSpec{Protocol: "two-choices", Counts: []int64{600, 400}, Adversary: "liar", Budget: 8}.Key()
	if err != nil {
		t.Fatal(err)
	}
	k2, err := JobSpec{Protocol: "two-choices", Counts: []int64{600, 400}, Adversary: "byzantine", Budget: 8}.Key()
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Error("alias spelling split the cache key")
	}
	if k1 == kClean {
		t.Error("active adversary shares the clean run's cache key")
	}
	k3, err := JobSpec{Protocol: "two-choices", Counts: []int64{600, 400}, Adversary: "late:2", Budget: 8}.Key()
	if err != nil {
		t.Fatal(err)
	}
	k4, err := JobSpec{Protocol: "two-choices", Counts: []int64{600, 400}, Adversary: "late", AdversaryLag: 2, Budget: 8}.Key()
	if err != nil {
		t.Fatal(err)
	}
	if k3 != k4 {
		t.Error("inline-lag spelling split the cache key")
	}
	k5, err := JobSpec{Protocol: "two-choices", Counts: []int64{600, 400}, Adversary: "late", AdversaryLag: 3, Budget: 8}.Key()
	if err != nil {
		t.Fatal(err)
	}
	if k5 == k3 {
		t.Error("different lags share a cache key")
	}
}

func TestAdversarySpecRejects(t *testing.T) {
	for name, sp := range map[string]JobSpec{
		"unknown adversary":     {Protocol: "two-choices", Counts: []int64{600, 400}, Adversary: "bogus", Budget: 8},
		"budget without name":   {Protocol: "two-choices", Counts: []int64{600, 400}, Budget: 8},
		"negative budget":       {Protocol: "two-choices", Counts: []int64{600, 400}, Adversary: "corrupt", Budget: -1},
		"double lag":            {Protocol: "two-choices", Counts: []int64{600, 400}, Adversary: "late:2", AdversaryLag: 3, Budget: 8},
		"lag on lag-free":       {Protocol: "two-choices", Counts: []int64{600, 400}, Adversary: "corrupt", AdversaryLag: 2, Budget: 8},
		"late without lag":      {Protocol: "two-choices", Counts: []int64{600, 400}, Adversary: "late", Budget: 8},
		"byzantine on core":     {Protocol: "core", Counts: []int64{600, 400}, Adversary: "byzantine", Budget: 8},
		"adversary on leap":     {Protocol: "two-choices", Counts: []int64{600, 400}, Engine: "leap", Adversary: "corrupt", Budget: 8},
		"per-node on occupancy": {Protocol: "two-choices", Counts: []int64{600, 400}, Engine: "occupancy", Adversary: "delay-set", Budget: 8},
	} {
		if _, _, err := sp.compile(nil); err == nil {
			t.Errorf("%s: compile accepted the spec", name)
		}
	}
	// The supported pairs still compile.
	ok := JobSpec{Protocol: "two-choices", Counts: []int64{600, 400}, Model: "poisson", Adversary: "corruption", Budget: 8}
	if _, _, err := ok.compile(nil); err != nil {
		t.Errorf("corrupt two-choices rejected: %v", err)
	}
}

// FuzzJobSpecKey fuzzes the canonicalizer: for any JSON body the daemon
// would accept, normalization must be idempotent (canonicalize ∘ parse of
// the normalized form is a fixed point), the cache key must be stable
// across re-normalization, and two specs with distinct normalized forms
// must not collide on one key (SHA-256 over the canonical JSON — a
// collision here means normalization lost a run-relevant field).
func FuzzJobSpecKey(f *testing.F) {
	f.Add(`{"protocol":"two-choices","counts":[600,400]}`)
	f.Add(`{"protocol":"two-choices","counts":[600,400],"adversary":"liar","budget":8}`)
	f.Add(`{"protocol":"core","counts":[600,400],"adversary":"corrupt","budget":0,"model":"poisson"}`)
	f.Add(`{"protocol":"voter","counts":[1,2,3],"adversary":"late:2","budget":4,"engine":"per-node"}`)
	f.Add(`{"protocol":"3-majority","counts":[9,3],"adversary":"delay-set","budget":1,"seed":7,"trials":3}`)
	f.Add(`{"protocol":"usd","counts":[5,5],"observeInterval":2,"churn":0.001}`)
	f.Fuzz(func(t *testing.T, body string) {
		var sp JobSpec
		if err := json.Unmarshal([]byte(body), &sp); err != nil {
			t.Skip()
		}
		norm, err := sp.normalize()
		if err != nil {
			// Invalid specs must fail Key the same way, never panic.
			if _, kerr := sp.Key(); kerr == nil {
				t.Fatalf("normalize rejected (%v) but Key succeeded", err)
			}
			return
		}
		// Idempotence: normalizing the normalized form is a fixed point.
		again, err := norm.normalize()
		if err != nil {
			t.Fatalf("re-normalize failed: %v", err)
		}
		b1, _ := json.Marshal(norm)
		b2, _ := json.Marshal(again)
		if string(b1) != string(b2) {
			t.Fatalf("normalize is not idempotent:\n  once:  %s\n  twice: %s", b1, b2)
		}
		// Key stability: the raw and normalized spellings share one key.
		k1, err := sp.Key()
		if err != nil {
			t.Fatalf("Key on accepted spec: %v", err)
		}
		k2, err := norm.Key()
		if err != nil {
			t.Fatalf("Key on normalized spec: %v", err)
		}
		if k1 != k2 {
			t.Fatalf("normalization changed the key: %s vs %s", k1, k2)
		}
		if !strings.HasPrefix(k1, "sha256:") || len(k1) != len("sha256:")+64 {
			t.Fatalf("malformed key %q", k1)
		}
		// No collisions: a spec differing in a run-relevant field (here the
		// seed, always present after normalization) must split the key.
		bumped := norm
		bumped.Seed++
		k3, err := bumped.Key()
		if err == nil && k3 == k1 {
			t.Fatalf("seed bump did not split the key %s", k1)
		}
	})
}
