package service

import (
	"fmt"
	"strings"
)

// Route describes one endpoint of the HTTP contract: the mux registration
// data plus the documentation rendered into docs/API.md. The registry below
// is the single source of truth — Server.Handler registers exactly these
// patterns (construction panics on a route without a handler), and
// TestAPIDocEndpointTable fails when docs/API.md's endpoint table is not
// the byte-exact render of APITable(), so the docs and the mux cannot
// disagree.
type Route struct {
	// Method is the HTTP method.
	Method string
	// Pattern is the net/http ServeMux pattern, e.g. "/v1/jobs/{id}".
	Pattern string
	// Summary is the one-line behavior description.
	Summary string
	// Request names the JSON request body schema ("—" for none).
	Request string
	// Response names the response schema.
	Response string
	// Statuses lists the status codes the endpoint produces.
	Statuses string
}

// Routes returns the daemon's endpoint registry in presentation order.
func Routes() []Route {
	return []Route{
		{
			Method:   "POST",
			Pattern:  "/v1/jobs",
			Summary:  "submit a job spec; dedupes in-flight work and replays cached completed results byte-identically (`X-Cache: hit`)",
			Request:  "`JobSpec`",
			Response: "`JobStatus`",
			Statuses: "202 accepted · 200 cache hit · 400 invalid spec · 429 queue full (+`Retry-After`)",
		},
		{
			Method:   "GET",
			Pattern:  "/v1/jobs",
			Summary:  "list all jobs known to the daemon (most recent first)",
			Request:  "—",
			Response: "`{\"jobs\": [JobStatus]}`",
			Statuses: "200",
		},
		{
			Method:   "GET",
			Pattern:  "/v1/jobs/{id}",
			Summary:  "fetch one job's status; terminal bodies are byte-deterministic",
			Request:  "—",
			Response: "`JobStatus`",
			Statuses: "200 · 404 unknown id",
		},
		{
			Method:   "GET",
			Pattern:  "/v1/jobs/{id}/stream",
			Summary:  "SSE stream of `snapshot` events (jobs submitted with `observeInterval` > 0), closed by a terminal `report` event",
			Request:  "—",
			Response: "`text/event-stream` of `SnapshotBody` / `JobStatus`",
			Statuses: "200 · 404 unknown id · 409 not a streaming job",
		},
		{
			Method:   "DELETE",
			Pattern:  "/v1/jobs/{id}",
			Summary:  "cancel a queued or running job; the engine loop observes the context within its next poll stride",
			Request:  "—",
			Response: "`JobStatus`",
			Statuses: "200 · 404 unknown id",
		},
		{
			Method:   "GET",
			Pattern:  "/v1/protocols",
			Summary:  "the protocol registry: name, samples, rule, capability flags per family",
			Request:  "—",
			Response: "`{\"protocols\": [ProtocolInfo]}`",
			Statuses: "200",
		},
		{
			Method:   "GET",
			Pattern:  "/v1/metrics",
			Summary:  "daemon observability: jobs/sec, queue depth, cache hit rate, completion-latency p50/p90/p99",
			Request:  "—",
			Response: "`MetricsSnapshot`",
			Statuses: "200",
		},
		{
			Method:   "GET",
			Pattern:  "/v1/healthz",
			Summary:  "liveness probe",
			Request:  "—",
			Response: "`{\"status\": \"ok\"}`",
			Statuses: "200",
		},
	}
}

// APITable renders the endpoint registry as the markdown table committed in
// docs/API.md; a drift test keeps the committed file byte-identical to this
// render, mirroring the registry-generated protocol table in README.md.
func APITable() string {
	var b strings.Builder
	b.WriteString("| Method | Path | Behavior | Request | Response | Statuses |\n")
	b.WriteString("|---|---|---|---|---|---|\n")
	for _, r := range Routes() {
		fmt.Fprintf(&b, "| `%s` | `%s` | %s | %s | %s | %s |\n",
			r.Method, r.Pattern, r.Summary, r.Request, r.Response, r.Statuses)
	}
	return b.String()
}
