package service

import (
	"slices"
	"sync"
	"sync/atomic"
	"time"
)

// metrics is the daemon's observability state: monotonic counters updated
// lock-free on the request path plus a bounded reservoir of recent
// job-completion latencies for the quantile figures. All of it is exported
// through GET /v1/metrics as MetricsSnapshot.
type metrics struct {
	start time.Time

	submitted atomic.Int64 // POST /v1/jobs accepted (queued or deduped)
	completed atomic.Int64 // jobs that reached the done state
	failed    atomic.Int64 // jobs that reached the failed state
	canceled  atomic.Int64 // jobs canceled (DELETE, disconnect, shutdown)
	rejected  atomic.Int64 // submissions bounced with 429 queue-full
	cacheHits atomic.Int64 // submissions served from the completed cache
	cacheMiss atomic.Int64 // submissions that had to execute
	running   atomic.Int64 // jobs currently executing on a worker
	streams   atomic.Int64 // SSE subscribers currently connected

	mu        sync.Mutex
	latencies []float64 // ring of recent completion latencies (seconds)
	latNext   int
	latFull   bool
}

// latencyWindow bounds the completion-latency reservoir the p50/p99
// figures are computed over.
const latencyWindow = 1024

func newMetrics() *metrics {
	return &metrics{start: time.Now(), latencies: make([]float64, latencyWindow)}
}

// observeLatency records one job's queue-to-completion wall time.
func (m *metrics) observeLatency(d time.Duration) {
	m.mu.Lock()
	m.latencies[m.latNext] = d.Seconds()
	m.latNext++
	if m.latNext == len(m.latencies) {
		m.latNext, m.latFull = 0, true
	}
	m.mu.Unlock()
}

// quantiles returns (count, p50, p90, p99) over the current reservoir.
func (m *metrics) quantiles() (int, float64, float64, float64) {
	m.mu.Lock()
	n := m.latNext
	if m.latFull {
		n = len(m.latencies)
	}
	window := slices.Clone(m.latencies[:n])
	m.mu.Unlock()
	if n == 0 {
		return 0, 0, 0, 0
	}
	slices.Sort(window)
	q := func(p float64) float64 {
		i := int(p * float64(n-1))
		return window[i]
	}
	return n, q(0.50), q(0.90), q(0.99)
}

// MetricsSnapshot is the GET /v1/metrics response body.
type MetricsSnapshot struct {
	// UptimeSeconds is the daemon's age.
	UptimeSeconds float64 `json:"uptimeSeconds"`
	// Workers is the size of the execution pool.
	Workers int `json:"workers"`
	// QueueDepth and QueueCapacity describe the pending-job queue;
	// submissions beyond capacity are rejected with 429 + Retry-After.
	QueueDepth    int `json:"queueDepth"`
	QueueCapacity int `json:"queueCapacity"`
	// Running is the number of jobs currently executing.
	Running int64 `json:"running"`
	// Streams is the number of SSE subscribers currently connected.
	Streams int64 `json:"streams"`
	// Jobs are the lifecycle counters since process start.
	Jobs struct {
		Submitted  int64   `json:"submitted"`
		Completed  int64   `json:"completed"`
		Failed     int64   `json:"failed"`
		Canceled   int64   `json:"canceled"`
		Rejected   int64   `json:"rejected"`
		JobsPerSec float64 `json:"jobsPerSec"`
	} `json:"jobs"`
	// Cache describes the completed-report LRU.
	Cache struct {
		Hits     int64   `json:"hits"`
		Misses   int64   `json:"misses"`
		HitRate  float64 `json:"hitRate"`
		Entries  int     `json:"entries"`
		Capacity int     `json:"capacity"`
	} `json:"cache"`
	// Latency summarizes queue-to-completion wall times over the most
	// recent completions (a bounded reservoir).
	Latency struct {
		Count      int     `json:"count"`
		P50Seconds float64 `json:"p50Seconds"`
		P90Seconds float64 `json:"p90Seconds"`
		P99Seconds float64 `json:"p99Seconds"`
	} `json:"latency"`
}

// snapshot assembles the exported metrics view.
func (m *metrics) snapshot(workers, queueDepth, queueCap, cacheLen, cacheCap int) MetricsSnapshot {
	var s MetricsSnapshot
	s.UptimeSeconds = time.Since(m.start).Seconds()
	s.Workers = workers
	s.QueueDepth = queueDepth
	s.QueueCapacity = queueCap
	s.Running = m.running.Load()
	s.Streams = m.streams.Load()
	s.Jobs.Submitted = m.submitted.Load()
	s.Jobs.Completed = m.completed.Load()
	s.Jobs.Failed = m.failed.Load()
	s.Jobs.Canceled = m.canceled.Load()
	s.Jobs.Rejected = m.rejected.Load()
	if up := s.UptimeSeconds; up > 0 {
		s.Jobs.JobsPerSec = float64(s.Jobs.Completed) / up
	}
	s.Cache.Hits = m.cacheHits.Load()
	s.Cache.Misses = m.cacheMiss.Load()
	if total := s.Cache.Hits + s.Cache.Misses; total > 0 {
		s.Cache.HitRate = float64(s.Cache.Hits) / float64(total)
	}
	s.Cache.Entries = cacheLen
	s.Cache.Capacity = cacheCap
	s.Latency.Count, s.Latency.P50Seconds, s.Latency.P90Seconds, s.Latency.P99Seconds = m.quantiles()
	return s
}
