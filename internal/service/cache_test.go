package service

import (
	"bytes"
	"testing"
)

func TestLRUEvictsLeastRecentlyUsed(t *testing.T) {
	c := newLRU(2)
	c.Add("a", []byte("A"))
	c.Add("b", []byte("B"))
	if _, ok := c.Get("a"); !ok { // refresh a; b becomes LRU
		t.Fatal("a missing")
	}
	c.Add("c", []byte("C")) // evicts b
	if _, ok := c.Get("b"); ok {
		t.Error("b survived eviction")
	}
	if body, ok := c.Get("a"); !ok || !bytes.Equal(body, []byte("A")) {
		t.Errorf("a = %q, %v", body, ok)
	}
	if body, ok := c.Get("c"); !ok || !bytes.Equal(body, []byte("C")) {
		t.Errorf("c = %q, %v", body, ok)
	}
	if c.Len() != 2 {
		t.Errorf("len = %d, want 2", c.Len())
	}
}

func TestLRURefreshReplacesBody(t *testing.T) {
	c := newLRU(2)
	c.Add("a", []byte("A"))
	c.Add("a", []byte("A2"))
	if c.Len() != 1 {
		t.Fatalf("len = %d, want 1", c.Len())
	}
	if body, _ := c.Get("a"); !bytes.Equal(body, []byte("A2")) {
		t.Errorf("a = %q, want A2", body)
	}
}

func TestLRUDisabled(t *testing.T) {
	c := newLRU(0)
	c.Add("a", []byte("A"))
	if _, ok := c.Get("a"); ok || c.Len() != 0 {
		t.Error("disabled cache stored an entry")
	}
}
