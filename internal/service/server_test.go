package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// quietLogger keeps test output clean.
func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// newTestServer spins a daemon behind an httptest listener and tears both
// down with the test.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Logger == nil {
		cfg.Logger = quietLogger()
	}
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// fastSpec is a deterministic occupancy job that completes in milliseconds.
func fastSpec(seed uint64) JobSpec {
	return JobSpec{
		Protocol: "two-choices",
		Counts:   []int64{60_000, 40_000},
		Seed:     seed,
		Model:    "poisson",
		Engine:   "occupancy",
	}
}

// slowSpec needs ~n parallel time (Voter on a tie) — effectively unbounded
// on test timescales, and promptly cancelable inside the engine loop.
func slowSpec(seed uint64) JobSpec {
	return JobSpec{
		Protocol: "voter",
		Counts:   []int64{100_000, 100_000},
		Seed:     seed,
		Engine:   "per-node",
		MaxTime:  1e9,
	}
}

// post submits a spec and returns the response.
func post(t *testing.T, ts *httptest.Server, spec JobSpec) (*http.Response, []byte) {
	t.Helper()
	blob, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// get fetches a path and returns the response body.
func get(t *testing.T, ts *httptest.Server, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// waitState polls GET /v1/jobs/{id} until the job reaches want (or any
// terminal state), failing on timeout.
func waitState(t *testing.T, ts *httptest.Server, id string, want JobState, timeout time.Duration) (JobStatus, []byte) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		resp, body := get(t, ts, "/v1/jobs/"+id)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET job %s: status %d: %s", id, resp.StatusCode, body)
		}
		var st JobStatus
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatalf("job %s: %v in %s", id, err, body)
		}
		if st.State == want {
			return st, body
		}
		if st.State.terminal() {
			t.Fatalf("job %s reached %s while waiting for %s: %s", id, st.State, want, body)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s waiting for %s", id, st.State, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestSubmitCompleteCachedResubmit is the contract the CI smoke also
// drives: a deterministic job completes, its terminal GET body is
// byte-stable, and re-submitting the identical spec replays exactly those
// bytes from the cache without re-execution.
func TestSubmitCompleteCachedResubmit(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 8})

	resp, body := post(t, ts, fastSpec(7))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, body)
	}
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.State != StateQueued && st.State != StateRunning {
		t.Fatalf("fresh submit state = %s", st.State)
	}

	done, doneBody := waitState(t, ts, st.ID, StateDone, 30*time.Second)
	if len(done.Reports) != 1 || !done.Reports[0].Converged {
		t.Fatalf("terminal status: %s", doneBody)
	}
	if done.Reports[0].Protocol != "two-choices" {
		t.Fatalf("report protocol = %q", done.Reports[0].Protocol)
	}

	// Terminal GET is byte-stable.
	_, again := get(t, ts, "/v1/jobs/"+st.ID)
	if !bytes.Equal(doneBody, again) {
		t.Fatalf("terminal GET not byte-stable:\n%s\nvs\n%s", doneBody, again)
	}

	// Cached re-submit: 200, X-Cache: hit, byte-identical body, no second
	// execution.
	completedBefore := s.metrics.completed.Load()
	resp2, body2 := post(t, ts, fastSpec(7))
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("resubmit: status %d: %s", resp2.StatusCode, body2)
	}
	if h := resp2.Header.Get("X-Cache"); h != "hit" {
		t.Fatalf("X-Cache = %q, want hit", h)
	}
	if !bytes.Equal(body2, doneBody) {
		t.Fatalf("cached body differs:\n%s\nvs\n%s", body2, doneBody)
	}
	if got := s.metrics.completed.Load(); got != completedBefore {
		t.Fatalf("cache hit re-executed the job: completed %d -> %d", completedBefore, got)
	}
	if s.metrics.cacheHits.Load() == 0 {
		t.Fatal("cache hit not counted")
	}

	// A different seed is a different key and runs fresh.
	resp3, _ := post(t, ts, fastSpec(8))
	if resp3.StatusCode != http.StatusAccepted {
		t.Fatalf("different seed: status %d, want 202", resp3.StatusCode)
	}
}

// TestQueueSaturationReturns429: with the single worker pinned by a long
// job and the depth-1 queue filled, further submissions bounce with 429 +
// Retry-After, and the rejection is counted.
func TestQueueSaturationReturns429(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})

	respA, bodyA := post(t, ts, slowSpec(1))
	if respA.StatusCode != http.StatusAccepted {
		t.Fatalf("job A: status %d: %s", respA.StatusCode, bodyA)
	}
	var stA JobStatus
	if err := json.Unmarshal(bodyA, &stA); err != nil {
		t.Fatal(err)
	}
	waitState(t, ts, stA.ID, StateRunning, 10*time.Second)

	respB, _ := post(t, ts, slowSpec(2))
	if respB.StatusCode != http.StatusAccepted {
		t.Fatalf("job B: status %d, want 202 (queued)", respB.StatusCode)
	}

	respC, bodyC := post(t, ts, slowSpec(3))
	if respC.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("job C: status %d, want 429: %s", respC.StatusCode, bodyC)
	}
	if respC.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	var e errorBody
	if err := json.Unmarshal(bodyC, &e); err != nil || e.Error.Code != "queue_full" {
		t.Fatalf("429 body: %s (err %v)", bodyC, err)
	}
	if s.metrics.rejected.Load() != 1 {
		t.Fatalf("rejected = %d, want 1", s.metrics.rejected.Load())
	}
}

// TestDeleteCancelsRunningJobPromptly: DELETE must interrupt the engine
// loop mid-run — the service-level version of the library's prompt-
// cancellation guarantee.
func TestDeleteCancelsRunningJobPromptly(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})

	_, body := post(t, ts, slowSpec(4))
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	waitState(t, ts, st.ID, StateRunning, 10*time.Second)

	start := time.Now()
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE: status %d", resp.StatusCode)
	}
	canceled, _ := waitState(t, ts, st.ID, StateCanceled, 10*time.Second)
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v, want prompt", elapsed)
	}
	if canceled.Error == "" {
		t.Fatal("canceled status carries no error text")
	}
	if len(canceled.Reports) == 0 {
		t.Fatal("canceled status carries no partial report")
	}
}

// TestSubmitValidation: malformed JSON, unknown fields, spec errors and
// library-level option rejections all surface as structured 400s.
func TestSubmitValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})

	for name, tc := range map[string]struct {
		body string
		code string
	}{
		"malformed json": {body: `{"protocol": `, code: "invalid_json"},
		"unknown field":  {body: `{"protocol": "voter", "counts": [2,1], "protcol": "x"}`, code: "invalid_json"},
		"unknown model":  {body: `{"protocol": "voter", "counts": [2,1], "model": "warp"}`, code: "invalid_spec"},
		"unknown protocol": {
			body: `{"protocol": "no-such", "counts": [2,1]}`, code: "invalid_spec"},
		"ignored option": {
			// responseDelay is a per-node extension; the occupancy engine
			// rejects it through Job.Validate.
			body: `{"protocol": "voter", "counts": [2,1], "engine": "occupancy", "responseDelay": 1}`,
			code: "invalid_spec"},
		"bad counts": {body: `{"protocol": "voter", "counts": [1, -2]}`, code: "invalid_spec"},
	} {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400: %s", name, resp.StatusCode, body)
			continue
		}
		var e errorBody
		if err := json.Unmarshal(body, &e); err != nil || e.Error.Code != tc.code {
			t.Errorf("%s: body %s, want code %s", name, body, tc.code)
		}
	}
}

// TestNotFound: unknown job ids and unknown endpoints both answer
// structured 404s.
func TestNotFound(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	for _, path := range []string{"/v1/jobs/nope", "/v2/anything"} {
		resp, body := get(t, ts, path)
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s: status %d, want 404", path, resp.StatusCode)
		}
		var e errorBody
		if err := json.Unmarshal(body, &e); err != nil || e.Error.Code != "not_found" {
			t.Errorf("%s: body %s", path, body)
		}
	}
}

// TestProtocolsEndpoint mirrors the registry.
func TestProtocolsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	resp, body := get(t, ts, "/v1/protocols")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out struct {
		Protocols []protocolInfo `json:"protocols"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, p := range out.Protocols {
		names[p.Name] = true
	}
	for _, want := range []string{"two-choices", "voter", "3-majority", "usd", "j-majority"} {
		if !names[want] {
			t.Errorf("protocol %s missing from %v", want, names)
		}
	}
}

// TestMetricsAndList: the observability surface reflects a short
// submit/complete/cache-hit session.
func TestMetricsAndList(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 8})

	_, body := post(t, ts, fastSpec(11))
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	waitState(t, ts, st.ID, StateDone, 30*time.Second)
	post(t, ts, fastSpec(11)) // cache hit

	resp, body := get(t, ts, "/v1/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: status %d", resp.StatusCode)
	}
	var m MetricsSnapshot
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatal(err)
	}
	if m.Jobs.Submitted != 2 || m.Jobs.Completed != 1 || m.Cache.Hits != 1 || m.Cache.Misses != 1 {
		t.Fatalf("metrics: %s", body)
	}
	if m.Cache.HitRate != 0.5 || m.Cache.Entries != 1 {
		t.Fatalf("cache metrics: %s", body)
	}
	if m.Latency.Count != 1 || m.Latency.P99Seconds <= 0 {
		t.Fatalf("latency metrics: %s", body)
	}
	if m.Workers != 2 || m.QueueCapacity != 8 {
		t.Fatalf("shape metrics: %s", body)
	}

	resp, body = get(t, ts, "/v1/jobs")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("list: status %d", resp.StatusCode)
	}
	var list struct {
		Jobs []JobStatus `json:"jobs"`
	}
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) != 1 || list.Jobs[0].ID != st.ID {
		t.Fatalf("list: %s", body)
	}

	resp, body = get(t, ts, "/v1/healthz")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "ok") {
		t.Fatalf("healthz: %d %s", resp.StatusCode, body)
	}
}

// TestInflightDedupe: concurrent submissions of one spec join the same job
// instead of executing twice.
func TestInflightDedupe(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})

	_, bodyA := post(t, ts, slowSpec(9))
	var stA JobStatus
	if err := json.Unmarshal(bodyA, &stA); err != nil {
		t.Fatal(err)
	}
	respB, bodyB := post(t, ts, slowSpec(9))
	if respB.StatusCode != http.StatusAccepted {
		t.Fatalf("dedupe submit: status %d", respB.StatusCode)
	}
	if h := respB.Header.Get("X-Cache"); h != "inflight" {
		t.Fatalf("X-Cache = %q, want inflight", h)
	}
	var stB JobStatus
	if err := json.Unmarshal(bodyB, &stB); err != nil {
		t.Fatal(err)
	}
	if stB.ID != stA.ID {
		t.Fatalf("dedupe returned a different job: %s vs %s", stB.ID, stA.ID)
	}
}

// TestTrialsJob: a multi-trial spec fans out through Job.Trials and
// returns one report per trial.
func TestTrialsJob(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 4})
	sp := fastSpec(13)
	sp.Trials = 3
	_, body := post(t, ts, sp)
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	done, _ := waitState(t, ts, st.ID, StateDone, 60*time.Second)
	if len(done.Reports) != 3 {
		t.Fatalf("reports = %d, want 3", len(done.Reports))
	}
	for i, rep := range done.Reports {
		if !rep.Converged {
			t.Errorf("trial %d did not converge: %+v", i, rep)
		}
	}
}

// TestHandlerPanicsOnRouteDrift: a registry entry without a handler is a
// construction-time panic, not a silent 404.
func TestHandlerPanicsOnRouteDrift(t *testing.T) {
	// The real Handler must construct cleanly.
	s, _ := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	func() {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Handler panicked on the committed registry: %v", r)
			}
		}()
		_ = s.Handler()
	}()
	// Route uniqueness: duplicate patterns would shadow handlers.
	seen := map[string]bool{}
	for _, r := range Routes() {
		key := r.Method + " " + r.Pattern
		if seen[key] {
			t.Errorf("duplicate route %q", key)
		}
		seen[key] = true
		if r.Summary == "" || r.Response == "" || r.Statuses == "" {
			t.Errorf("route %q has empty documentation fields: %+v", key, r)
		}
	}
	_ = fmt.Sprintf // keep fmt imported for future use
}
