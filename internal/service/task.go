package service

import (
	"context"
	"errors"
	"slices"
	"sync"

	"plurality"
)

// JobState is the lifecycle state of a submitted job.
type JobState string

const (
	// StateQueued: accepted, waiting for a worker.
	StateQueued JobState = "queued"
	// StateRunning: executing on a worker.
	StateRunning JobState = "running"
	// StateDone: finished deterministically — converged, or exhausted its
	// budget (ErrNoConsensus / ErrTimeLimit / ErrPhaseLimit). Done results
	// are cacheable: a re-submission of the same spec replays them.
	StateDone JobState = "done"
	// StateCanceled: interrupted by DELETE, SSE disconnect
	// (cancelOnDisconnect) or daemon shutdown. Not cached.
	StateCanceled JobState = "canceled"
	// StateFailed: an execution error that is not a deterministic budget
	// sentinel. Not cached.
	StateFailed JobState = "failed"
)

// terminal reports whether the state is final.
func (s JobState) terminal() bool {
	return s == StateDone || s == StateCanceled || s == StateFailed
}

// ReportBody is the wire form of one plurality.Report in job statuses and
// SSE report events.
type ReportBody struct {
	Kind          string  `json:"kind"`
	Protocol      string  `json:"protocol"`
	Converged     bool    `json:"converged"`
	Winner        int     `json:"winner"`
	ConsensusTime float64 `json:"consensusTime,omitempty"`
	Time          float64 `json:"time,omitempty"`
	Rounds        int     `json:"rounds,omitempty"`
	Ticks         int64   `json:"ticks,omitempty"`
	Undecided     int64   `json:"undecided,omitempty"`
	Churns        int64   `json:"churns,omitempty"`
	Corruptions   int64   `json:"corruptions,omitempty"`
	Biased        int64   `json:"biased,omitempty"`
}

// reportBody converts a library report to its wire form.
func reportBody(rep plurality.Report) ReportBody {
	return ReportBody{
		Kind:          rep.Kind.String(),
		Protocol:      rep.Protocol,
		Converged:     rep.Converged,
		Winner:        int(rep.Winner),
		ConsensusTime: rep.ConsensusTime,
		Time:          rep.Time,
		Rounds:        rep.Rounds,
		Ticks:         rep.Ticks,
		Undecided:     rep.Undecided,
		Churns:        rep.Churns,
		Corruptions:   rep.Corruptions,
		Biased:        rep.Biased,
	}
}

// SnapshotBody is the wire form of one streamed plurality.Snapshot — the
// data payload of SSE "snapshot" events.
type SnapshotBody struct {
	Time              float64 `json:"time"`
	Ticks             int64   `json:"ticks,omitempty"`
	Rounds            int     `json:"rounds,omitempty"`
	Counts            []int64 `json:"counts"`
	Undecided         int64   `json:"undecided,omitempty"`
	ConvergedFraction float64 `json:"convergedFraction"`
}

// JobStatus is the wire form of a job's current state: the body of POST
// /v1/jobs and GET /v1/jobs/{id} responses and of SSE "report" events. It
// deliberately contains no wall-clock fields, so terminal statuses are
// byte-deterministic — the property the cache's byte-identical replay and
// the serve bench's determinism gate rely on.
type JobStatus struct {
	// ID addresses the job under /v1/jobs/{id}. Deduped submissions of an
	// identical spec return the original job's ID.
	ID string `json:"id"`
	// Key is the spec's canonical cache key ("sha256:…").
	Key string `json:"key"`
	// State is the lifecycle state.
	State JobState `json:"state"`
	// Protocol, N, Trials echo the normalized spec.
	Protocol string `json:"protocol"`
	N        int64  `json:"n"`
	Trials   int    `json:"trials"`
	// Streaming reports whether the job publishes SSE snapshots.
	Streaming bool `json:"streaming,omitempty"`
	// Reports holds one entry per trial once the job is terminal (partial
	// progress included on budget exhaustion and cancellation).
	Reports []ReportBody `json:"reports,omitempty"`
	// Error is the run error for non-converged terminal states ("" when
	// every trial converged).
	Error string `json:"error,omitempty"`
}

// errDisconnected is the cancel cause when a cancelOnDisconnect job loses
// its last SSE subscriber.
var errDisconnected = errors.New("service: last stream subscriber disconnected")

// errShutdown is the cancel cause applied to queued jobs on daemon
// shutdown.
var errShutdown = errors.New("service: daemon shutting down")

// streamEvent is one SSE frame queued to a subscriber: an event name plus
// its already-marshaled JSON payload.
type streamEvent struct {
	name string
	data []byte
}

// subscriberBuffer bounds each SSE subscriber's event queue. Snapshot
// events beyond a slow subscriber's buffer are dropped (the stream is a
// live view, not a durable log); the terminal report event is always
// delivered because the SSE handler emits it itself from the stored
// terminal body once the channel closes, so publishing never blocks on a
// stuck client.
const subscriberBuffer = 256

// task is one submitted job: the compiled library Job plus lifecycle,
// cancellation and streaming fan-out state.
type task struct {
	id   string
	key  string
	spec JobSpec // normalized
	job  *plurality.Job

	ctx    context.Context
	cancel context.CancelCauseFunc

	mu          sync.Mutex
	state       JobState
	reports     []ReportBody
	errText     string
	body        []byte // marshaled terminal JobStatus
	subs        map[chan streamEvent]struct{}
	everWatched bool

	done chan struct{} // closed exactly when the state turns terminal
}

// status assembles the job's current wire status under the task lock.
func (t *task) status() JobStatus {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.statusLocked()
}

func (t *task) statusLocked() JobStatus {
	return JobStatus{
		ID:        t.id,
		Key:       t.key,
		State:     t.state,
		Protocol:  t.spec.Protocol,
		N:         t.job.N(),
		Trials:    t.spec.Trials,
		Streaming: t.spec.ObserveInterval > 0,
		Reports:   t.reports,
		Error:     t.errText,
	}
}

// publish fans one observer snapshot out to the current subscribers. It
// runs synchronously on the engine goroutine, so it must never block:
// events beyond a subscriber's buffer are dropped.
func (t *task) publish(s plurality.Snapshot) {
	body := SnapshotBody{
		Time:              s.Time,
		Ticks:             s.Ticks,
		Rounds:            s.Rounds,
		Counts:            slices.Clone(s.Counts), // Counts aliases engine scratch
		Undecided:         s.Undecided,
		ConvergedFraction: s.ConvergedFraction,
	}
	data, err := marshalJSON(body)
	if err != nil {
		return
	}
	ev := streamEvent{name: "snapshot", data: data}
	t.mu.Lock()
	for ch := range t.subs {
		select {
		case ch <- ev:
		default: // slow subscriber: drop the frame, keep the run unblocked
		}
	}
	t.mu.Unlock()
}

// finish moves the task to a terminal state, stores its deterministic body
// and closes every subscriber channel (the SSE handlers then emit the
// terminal "report" event from the stored body, so a stuck client can never
// block the worker). It is idempotent; only the first call wins.
func (t *task) finish(state JobState, reports []ReportBody, errText string) {
	t.mu.Lock()
	if t.state.terminal() {
		t.mu.Unlock()
		return
	}
	t.state = state
	t.reports = reports
	t.errText = errText
	body, err := marshalJSON(t.statusLocked())
	if err != nil {
		// statusLocked marshals plain structs; this cannot fail, but fall
		// back to an explicit error body rather than a nil cache entry.
		body = []byte(`{"error":{"code":"internal","message":"status marshal failed"}}`)
	}
	t.body = body
	subs := make([]chan streamEvent, 0, len(t.subs))
	for ch := range t.subs {
		subs = append(subs, ch)
	}
	clear(t.subs)
	t.mu.Unlock()

	for _, ch := range subs {
		close(ch)
	}
	close(t.done)
}

// terminalBody returns the stored terminal status body ("" before finish).
func (t *task) terminalBody() []byte {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.body
}

// subscribe attaches a new SSE subscriber. For terminal tasks it returns a
// pre-closed empty channel; the handler then replays the outcome from the
// stored terminal body.
func (t *task) subscribe() chan streamEvent {
	ch := make(chan streamEvent, subscriberBuffer)
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.state.terminal() {
		close(ch)
		return ch
	}
	t.subs[ch] = struct{}{}
	t.everWatched = true
	return ch
}

// unsubscribe detaches a subscriber; when a cancelOnDisconnect job loses
// its last watcher the job's context is canceled — the engine loop observes
// it within its next poll stride.
func (t *task) unsubscribe(ch chan streamEvent) {
	t.mu.Lock()
	_, wasSubscribed := t.subs[ch]
	delete(t.subs, ch)
	lastGone := wasSubscribed && len(t.subs) == 0 && t.everWatched && !t.state.terminal()
	t.mu.Unlock()
	if lastGone && t.spec.CancelOnDisconnect {
		t.cancel(errDisconnected)
	}
}
