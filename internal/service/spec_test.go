package service

import (
	"strings"
	"testing"
)

// TestKeyCanonicalization: equivalent spellings of the same deterministic
// run must share one cache key; fields that change the run must split it.
func TestKeyCanonicalization(t *testing.T) {
	base := JobSpec{Protocol: "two-choices", Counts: []int64{600, 400}}

	k1, err := base.Key()
	if err != nil {
		t.Fatal(err)
	}

	// Defaults spelled out explicitly: same key.
	explicit := base
	explicit.Seed = 1
	explicit.Trials = 1
	explicit.Model = "sequential"
	explicit.Engine = "auto"
	k2, err := explicit.Key()
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Errorf("explicit defaults changed the key: %s vs %s", k1, k2)
	}

	// CancelOnDisconnect is lifecycle-only and must not split the key —
	// but it is only valid on streaming jobs, so compare there.
	s1 := base
	s1.ObserveInterval = 10
	s2 := s1
	s2.CancelOnDisconnect = true
	ks1, err := s1.Key()
	if err != nil {
		t.Fatal(err)
	}
	ks2, err := s2.Key()
	if err != nil {
		t.Fatal(err)
	}
	if ks1 != ks2 {
		t.Errorf("cancelOnDisconnect split the key: %s vs %s", ks1, ks2)
	}

	// Fields that change the executed run must split the key: the seed,
	// and — because observation switches the counts engine to tick mode —
	// the observation interval.
	for name, mut := range map[string]JobSpec{
		"seed":            {Protocol: "two-choices", Counts: []int64{600, 400}, Seed: 2},
		"observeInterval": {Protocol: "two-choices", Counts: []int64{600, 400}, ObserveInterval: 5},
		"model":           {Protocol: "two-choices", Counts: []int64{600, 400}, Model: "poisson"},
		"counts":          {Protocol: "two-choices", Counts: []int64{601, 399}},
		"trials":          {Protocol: "two-choices", Counts: []int64{600, 400}, Trials: 4},
	} {
		k, err := mut.Key()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if k == k1 {
			t.Errorf("changing %s did not change the key", name)
		}
	}

	if !strings.HasPrefix(k1, "sha256:") {
		t.Errorf("key %q lacks the sha256: prefix", k1)
	}
}

// TestNormalizeRejects: the service-level constraints the library cannot
// see.
func TestNormalizeRejects(t *testing.T) {
	cases := map[string]JobSpec{
		"unknown model":           {Protocol: "voter", Counts: []int64{2, 1}, Model: "warp"},
		"unknown engine":          {Protocol: "voter", Counts: []int64{2, 1}, Engine: "quantum"},
		"negative trials":         {Protocol: "voter", Counts: []int64{2, 1}, Trials: -1},
		"streaming multi-trial":   {Protocol: "voter", Counts: []int64{2, 1}, Trials: 3, ObserveInterval: 5},
		"disconnect no streaming": {Protocol: "voter", Counts: []int64{2, 1}, CancelOnDisconnect: true},
		"negative interval":       {Protocol: "voter", Counts: []int64{2, 1}, ObserveInterval: -2},
	}
	for name, sp := range cases {
		if _, err := sp.normalize(); err == nil {
			t.Errorf("%s: normalize accepted %+v", name, sp)
		}
	}
}

// TestCompileUsesLibraryValidation: compile must surface Job.Validate
// rejections (here: an option the selected engine ignores) as errors before
// anything is queued.
func TestCompileUsesLibraryValidation(t *testing.T) {
	sp := JobSpec{
		Protocol:      "two-choices",
		Counts:        []int64{600, 400},
		Engine:        "occupancy",
		ResponseDelay: 1, // per-node extension: the counts engine rejects it
	}
	if _, _, err := sp.compile(nil); err == nil {
		t.Fatal("compile accepted a per-node option on the occupancy engine")
	}

	if _, _, err := (JobSpec{Protocol: "no-such", Counts: []int64{2, 1}}).compile(nil); err == nil {
		t.Fatal("compile accepted an unknown protocol")
	}

	// And the happy path compiles.
	norm, job, err := (JobSpec{Protocol: "two-choices", Counts: []int64{600, 400}}).compile(nil)
	if err != nil {
		t.Fatal(err)
	}
	if job.N() != 1000 || norm.Trials != 1 || norm.Seed != 1 {
		t.Fatalf("normalized spec %+v, job n=%d", norm, job.N())
	}
}
