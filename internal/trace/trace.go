// Package trace records simulation time series (support fractions,
// synchronization spreads) and renders them as compact ASCII artifacts for
// the CLI tools and examples: sparklines and aligned tables.
package trace

import (
	"fmt"
	"io"
	"strings"
)

// Series is one named time series.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Append adds one point.
func (s *Series) Append(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.X) }

// Last returns the most recent y value, or 0 for an empty series.
func (s *Series) Last() float64 {
	if len(s.Y) == 0 {
		return 0
	}
	return s.Y[len(s.Y)-1]
}

// Recorder collects named series in insertion order.
type Recorder struct {
	order  []string
	series map[string]*Series
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{series: make(map[string]*Series)}
}

// Record appends a point to the named series, creating it on first use.
func (r *Recorder) Record(name string, x, y float64) {
	s, ok := r.series[name]
	if !ok {
		s = &Series{Name: name}
		r.series[name] = s
		r.order = append(r.order, name)
	}
	s.Append(x, y)
}

// Series returns the named series, or nil if it was never recorded.
func (r *Recorder) Series(name string) *Series { return r.series[name] }

// Names returns the series names in insertion order.
func (r *Recorder) Names() []string {
	out := make([]string, len(r.order))
	copy(out, r.order)
	return out
}

var sparkLevels = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders ys as a fixed-width unicode sparkline, downsampling by
// bucket means. An empty input yields an empty string.
func Sparkline(ys []float64, width int) string {
	if len(ys) == 0 || width <= 0 {
		return ""
	}
	buckets := resample(ys, width)
	lo, hi := buckets[0], buckets[0]
	for _, v := range buckets {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var b strings.Builder
	for _, v := range buckets {
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(sparkLevels)-1))
		}
		b.WriteRune(sparkLevels[idx])
	}
	return b.String()
}

// resample reduces ys to exactly width bucket means (or pads by repetition
// when ys is shorter than width).
func resample(ys []float64, width int) []float64 {
	out := make([]float64, width)
	n := len(ys)
	for i := 0; i < width; i++ {
		lo := i * n / width
		hi := (i + 1) * n / width
		if hi <= lo {
			hi = lo + 1
		}
		if hi > n {
			hi = n
		}
		var sum float64
		for _, v := range ys[lo:hi] {
			sum += v
		}
		out[i] = sum / float64(hi-lo)
	}
	return out
}

// Table accumulates rows and prints them with aligned columns — the
// rendering used for every experiment table in EXPERIMENTS.md.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends one row; cells beyond the header count are kept and simply
// widen the table.
func (t *Table) AddRow(cells ...string) {
	t.rows = append(t.rows, cells)
}

// Rows returns the accumulated rows.
func (t *Table) Rows() [][]string { return t.rows }

// Fprint renders the table to w.
func (t *Table) Fprint(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = runeLen(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i >= len(widths) {
				widths = append(widths, 0)
			}
			if l := runeLen(c); l > widths[i] {
				widths[i] = l
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	printRow(w, t.Headers, widths)
	sep := make([]string, len(widths))
	for i, width := range widths {
		sep[i] = strings.Repeat("-", width)
	}
	printRow(w, sep, widths)
	for _, row := range t.rows {
		printRow(w, row, widths)
	}
}

func printRow(w io.Writer, cells []string, widths []int) {
	parts := make([]string, 0, len(widths))
	for i, width := range widths {
		c := ""
		if i < len(cells) {
			c = cells[i]
		}
		parts = append(parts, pad(c, width))
	}
	fmt.Fprintf(w, "%s\n", strings.TrimRight(strings.Join(parts, "  "), " "))
}

func pad(s string, width int) string {
	if d := width - runeLen(s); d > 0 {
		return s + strings.Repeat(" ", d)
	}
	return s
}

func runeLen(s string) int { return len([]rune(s)) }
