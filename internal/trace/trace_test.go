package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestRecorder(t *testing.T) {
	r := NewRecorder()
	r.Record("a", 0, 1)
	r.Record("b", 0, 2)
	r.Record("a", 1, 3)
	if got := r.Names(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Names = %v", got)
	}
	a := r.Series("a")
	if a == nil || a.Len() != 2 || a.Last() != 3 {
		t.Fatalf("series a = %+v", a)
	}
	if r.Series("missing") != nil {
		t.Fatal("missing series should be nil")
	}
	var empty Series
	if empty.Last() != 0 {
		t.Fatal("empty Last should be 0")
	}
}

func TestRecorderNamesCopy(t *testing.T) {
	r := NewRecorder()
	r.Record("a", 0, 1)
	names := r.Names()
	names[0] = "mutated"
	if r.Names()[0] != "a" {
		t.Fatal("Names leaked internal slice")
	}
}

func TestSparkline(t *testing.T) {
	tests := []struct {
		name  string
		ys    []float64
		width int
		want  string
	}{
		{name: "empty", ys: nil, width: 10, want: ""},
		{name: "zero width", ys: []float64{1}, width: 0, want: ""},
		{name: "flat", ys: []float64{5, 5, 5}, width: 3, want: "▁▁▁"},
		{name: "ramp", ys: []float64{0, 1, 2, 3, 4, 5, 6, 7}, width: 8, want: "▁▂▃▄▅▆▇█"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Sparkline(tt.ys, tt.width); got != tt.want {
				t.Fatalf("Sparkline = %q, want %q", got, tt.want)
			}
		})
	}
}

func TestSparklineDownsamples(t *testing.T) {
	ys := make([]float64, 1000)
	for i := range ys {
		ys[i] = float64(i)
	}
	got := Sparkline(ys, 10)
	if len([]rune(got)) != 10 {
		t.Fatalf("width = %d, want 10", len([]rune(got)))
	}
	runes := []rune(got)
	if runes[0] != '▁' || runes[9] != '█' {
		t.Fatalf("ramp endpoints wrong: %q", got)
	}
}

func TestSparklineShortInputPads(t *testing.T) {
	got := Sparkline([]float64{1, 2}, 6)
	if len([]rune(got)) != 6 {
		t.Fatalf("width = %d, want 6", len([]rune(got)))
	}
}

func TestTableFprint(t *testing.T) {
	tbl := NewTable("My Title", "name", "value")
	tbl.AddRow("x", "1")
	tbl.AddRow("longer-name", "22")
	var buf bytes.Buffer
	tbl.Fprint(&buf)
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if lines[0] != "My Title" {
		t.Errorf("title line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "name") || !strings.Contains(lines[1], "value") {
		t.Errorf("header line = %q", lines[1])
	}
	if !strings.Contains(lines[2], "----") {
		t.Errorf("separator line = %q", lines[2])
	}
	if !strings.HasPrefix(lines[4], "longer-name") {
		t.Errorf("row line = %q", lines[4])
	}
	// Columns aligned: "value" column starts at the same offset in header
	// and rows.
	hIdx := strings.Index(lines[1], "value")
	rIdx := strings.Index(lines[3], "1")
	if hIdx != rIdx {
		t.Errorf("column misaligned: header at %d, row at %d\n%s", hIdx, rIdx, out)
	}
}

func TestTableNoTitle(t *testing.T) {
	tbl := NewTable("", "a")
	tbl.AddRow("1")
	var buf bytes.Buffer
	tbl.Fprint(&buf)
	if strings.HasPrefix(buf.String(), "\n") {
		t.Fatal("empty title should not emit a blank line")
	}
	if len(tbl.Rows()) != 1 {
		t.Fatal("Rows() lost data")
	}
}

func TestTableRaggedRows(t *testing.T) {
	tbl := NewTable("t", "a", "b")
	tbl.AddRow("1")
	tbl.AddRow("1", "2", "3")
	var buf bytes.Buffer
	tbl.Fprint(&buf) // must not panic
	if !strings.Contains(buf.String(), "3") {
		t.Fatal("extra cell dropped")
	}
}
