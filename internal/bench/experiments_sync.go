package bench

import (
	"fmt"
	"math"

	"plurality/internal/graph"
	"plurality/internal/population"
	"plurality/internal/protocols/onebit"
	"plurality/internal/protocols/twochoices"
	"plurality/internal/rng"
	"plurality/internal/stats"
	"plurality/internal/trace"
)

// runE1 — Theorem 1.1 upper bound: synchronous Two-Choices converges within
// O(n/c1 · log n) rounds under bias z·sqrt(n·ln n). We sweep n at fixed k
// and fit rounds against (n/c1)·ln n.
func runE1(cfg Config) error {
	var (
		ns     = pick(cfg, []int{2000, 8000}, []int{2000, 4000, 8000, 16000, 32000})
		trials = pick(cfg, 3, 5)
		k      = 8
	)
	tbl := trace.NewTable(
		fmt.Sprintf("E1: sync Two-Choices rounds, k=%d, bias z*sqrt(n ln n), %d trials", k, trials),
		"n", "c1", "predictor (n/c1)ln n", "median rounds", "plurality wins")
	var xs, ys []float64
	for _, n := range ns {
		counts, err := population.GapSqrtCounts(n, k, 1)
		if err != nil {
			return err
		}
		ts, err := runTrials(trials, func(trial int) (measurement, error) {
			res, err := runSync(twochoices.Rule{}, counts, cfg.Seed+uint64(n*100+trial), 1_000_000)
			if err != nil {
				return measurement{}, err
			}
			return measurement{value: float64(res.Rounds), win: res.Winner == 0}, nil
		})
		if err != nil {
			return err
		}
		med := medianValue(ts)
		predictor := float64(n) / float64(counts[0]) * math.Log(float64(n))
		xs = append(xs, predictor)
		ys = append(ys, med)
		tbl.AddRow(
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%d", counts[0]),
			fmt.Sprintf("%.1f", predictor),
			fmt.Sprintf("%.0f", med),
			fmt.Sprintf("%d/%d", countWins(ts), trials),
		)
	}
	tbl.Fprint(cfg.Out)
	fit, err := stats.LinearFit(xs, ys)
	if err != nil {
		return err
	}
	fmt.Fprintf(cfg.Out, "shape: rounds ~ %.2f * (n/c1)*ln(n) + %.1f (R^2 = %.3f); theory predicts a linear fit\n\n",
		fit.Slope, fit.Intercept, fit.R2)
	return nil
}

// runE2 — Theorem 1.1 lower bound: on the equal-runner-up instance with
// gap z·sqrt(n·ln n), Two-Choices needs Ω(n/c1) = Ω(k·(1−o(1))) rounds. We
// sweep k at fixed n and fit rounds against n/c1 (≈ k for small gaps).
func runE2(cfg Config) error {
	var (
		n      = pick(cfg, 10000, 30000)
		ks     = pick(cfg, []int{2, 8, 32}, []int{2, 4, 8, 16, 32, 64})
		trials = pick(cfg, 3, 5)
	)
	tbl := trace.NewTable(
		fmt.Sprintf("E2: sync Two-Choices rounds vs k, n=%d, bias z*sqrt(n ln n), %d trials", n, trials),
		"k", "n/c1", "median rounds", "rounds/(n/c1)")
	var xs, ys []float64
	for _, k := range ks {
		counts, err := population.GapSqrtCounts(n, k, 1)
		if err != nil {
			return err
		}
		ts, err := runTrials(trials, func(trial int) (measurement, error) {
			res, err := runSync(twochoices.Rule{}, counts, cfg.Seed+uint64(k*1000+trial), 2_000_000)
			if err != nil {
				return measurement{}, err
			}
			return measurement{value: float64(res.Rounds), win: res.Winner == 0}, nil
		})
		if err != nil {
			return err
		}
		med := medianValue(ts)
		ratio := float64(n) / float64(counts[0])
		xs = append(xs, ratio)
		ys = append(ys, med)
		tbl.AddRow(
			fmt.Sprintf("%d", k),
			fmt.Sprintf("%.1f", ratio),
			fmt.Sprintf("%.0f", med),
			fmt.Sprintf("%.1f", med/ratio),
		)
	}
	tbl.Fprint(cfg.Out)
	fit, err := stats.LinearFit(xs, ys)
	if err != nil {
		return err
	}
	fmt.Fprintf(cfg.Out, "shape: rounds ~ %.2f * (n/c1) + %.1f (R^2 = %.3f); theory predicts linear growth in n/c1 ~ k\n\n",
		fit.Slope, fit.Intercept, fit.R2)
	return nil
}

// runE3 — Theorem 1.1's negative result: with gap only z·sqrt(n) a
// non-plurality color wins with constant probability, while the theorem-
// level gap z·sqrt(n·ln n) keeps upsets rare.
func runE3(cfg Config) error {
	var (
		n      = pick(cfg, 4000, 10000)
		trials = pick(cfg, 40, 200)
		k      = 2
	)
	tiny, err := population.TinyGapCounts(n, k, 0.5)
	if err != nil {
		return err
	}
	strong, err := population.GapSqrtCounts(n, k, 1.5)
	if err != nil {
		return err
	}
	upsetRate := func(counts []int64, salt uint64) (float64, error) {
		ts, err := runTrials(trials, func(trial int) (measurement, error) {
			res, err := runSync(twochoices.Rule{}, counts, cfg.Seed+salt*1_000_000+uint64(trial), 1_000_000)
			if err != nil {
				return measurement{}, err
			}
			return measurement{win: res.Winner == 0}, nil
		})
		if err != nil {
			return 0, err
		}
		return float64(trials-countWins(ts)) / float64(trials), nil
	}
	tinyRate, err := upsetRate(tiny, 1)
	if err != nil {
		return err
	}
	strongRate, err := upsetRate(strong, 2)
	if err != nil {
		return err
	}
	tbl := trace.NewTable(
		fmt.Sprintf("E3: upset probability of sync Two-Choices, n=%d, k=%d, %d trials", n, k, trials),
		"initial gap", "gap size", "non-plurality win rate")
	tbl.AddRow("0.5*sqrt(n)", fmt.Sprintf("%d", tiny[0]-tiny[1]), fmt.Sprintf("%.1f%%", 100*tinyRate))
	tbl.AddRow("1.5*sqrt(n ln n)", fmt.Sprintf("%d", strong[0]-strong[1]), fmt.Sprintf("%.1f%%", 100*strongRate))
	tbl.Fprint(cfg.Out)
	fmt.Fprintf(cfg.Out, "shape: upsets are constant-probability at gap O(sqrt n) (%.1f%%) and vanish at z*sqrt(n ln n) (%.1f%%)\n\n",
		100*tinyRate, 100*strongRate)
	return nil
}

// runE4 — Theorem 1.2: OneExtraBit converges in polylogarithmic rounds and
// overtakes Two-Choices as k grows. Part (a) sweeps n at fixed k; part (b)
// races both protocols over a k sweep on the same workload.
func runE4(cfg Config) error {
	var (
		nsA     = pick(cfg, []int{4000, 16000}, []int{4000, 16000, 64000})
		kA      = 16
		nB      = pick(cfg, 50000, 200000)
		ksB     = pick(cfg, []int{16, 64}, []int{16, 64, 256})
		trials  = pick(cfg, 3, 3)
		maxSync = 2_000_000
	)

	runOneBit := func(n int, counts []int64, seed uint64) (measurement, error) {
		pop, err := trialPop(counts)
		if err != nil {
			return measurement{}, err
		}
		g, err := graph.NewComplete(n)
		if err != nil {
			return measurement{}, err
		}
		res, err := onebit.Run(pop, onebit.Config{
			Graph:     g,
			Rand:      rng.New(seed),
			MaxPhases: 400,
		})
		if err != nil {
			return measurement{}, err
		}
		return measurement{
			value: float64(res.Rounds),
			win:   res.Winner == 0,
			aux:   float64(res.Phases),
		}, nil
	}

	tblA := trace.NewTable(
		fmt.Sprintf("E4a: OneExtraBit rounds vs n, k=%d, bias z*sqrt(n)ln^1.5 n, %d trials", kA, trials),
		"n", "median rounds", "median phases", "plurality wins")
	var rawNs, roundsA []float64
	for _, n := range nsA {
		counts, err := population.GapSqrtPolylogCounts(n, kA, 0.5)
		if err != nil {
			return err
		}
		ts, err := runTrials(trials, func(trial int) (measurement, error) {
			return runOneBit(n, counts, cfg.Seed+uint64(n*10+trial))
		})
		if err != nil {
			return err
		}
		med := medianValue(ts)
		rawNs = append(rawNs, float64(n))
		roundsA = append(roundsA, med)
		tblA.AddRow(
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.0f", med),
			fmt.Sprintf("%.0f", medianAux(ts)),
			fmt.Sprintf("%d/%d", countWins(ts), trials),
		)
	}
	tblA.Fprint(cfg.Out)
	if fit, err := stats.PowerFit(rawNs, roundsA); err == nil {
		fmt.Fprintf(cfg.Out, "shape: OneExtraBit rounds grow ~ n^%.2f (R^2 = %.3f); theory predicts polylog, i.e. exponent near 0\n\n",
			fit.Slope, fit.R2)
	}

	tblB := trace.NewTable(
		fmt.Sprintf("E4b: OneExtraBit vs Two-Choices rounds over k, n=%d, bias sqrt(n ln n), %d trials", nB, trials),
		"k", "n/c1", "two-choices rounds", "onebit rounds", "speedup")
	for _, k := range ksB {
		counts, err := population.GapSqrtCounts(nB, k, 1)
		if err != nil {
			return err
		}
		tcTrials, err := runTrials(trials, func(trial int) (measurement, error) {
			res, err := runSync(twochoices.Rule{}, counts, cfg.Seed+uint64(k*7+trial), maxSync)
			if err != nil {
				return measurement{}, err
			}
			return measurement{value: float64(res.Rounds), win: res.Winner == 0}, nil
		})
		if err != nil {
			return err
		}
		obTrials, err := runTrials(trials, func(trial int) (measurement, error) {
			return runOneBit(nB, counts, cfg.Seed+uint64(k*13+trial))
		})
		if err != nil {
			return err
		}
		tcMed, obMed := medianValue(tcTrials), medianValue(obTrials)
		tblB.AddRow(
			fmt.Sprintf("%d", k),
			fmt.Sprintf("%.0f", float64(nB)/float64(counts[0])),
			fmt.Sprintf("%.0f", tcMed),
			fmt.Sprintf("%.0f", obMed),
			fmt.Sprintf("%.1fx", tcMed/obMed),
		)
	}
	tblB.Fprint(cfg.Out)
	fmt.Fprintf(cfg.Out, "shape: Two-Choices rounds track n/c1 (which grows with k) while OneExtraBit stays polylog-flat; the crossover lands around n/c1 ~ 50\n\n")
	return nil
}

// runE5 — §2's amplification claim: across one OneExtraBit phase the ratio
// c1/cj squares (up to concentration error).
func runE5(cfg Config) error {
	var (
		n   = pick(cfg, 50000, 200000)
		k   = 4
		eps = 0.5
	)
	counts, err := population.BiasedCounts(n, k, eps)
	if err != nil {
		return err
	}
	pop, err := trialPop(counts)
	if err != nil {
		return err
	}
	g, err := graph.NewComplete(n)
	if err != nil {
		return err
	}
	type phaseRatio struct {
		phase int
		ratio float64
	}
	ratios := []phaseRatio{{phase: -1, ratio: float64(counts[0]) / float64(counts[1])}}
	_, err = onebit.Run(pop, onebit.Config{
		Graph:     g,
		Rand:      rng.At(cfg.Seed, 5),
		MaxPhases: 50,
		OnPhase: func(info onebit.PhaseInfo) {
			var runnerUp int64
			for _, c := range info.Counts[1:] {
				if c > runnerUp {
					runnerUp = c
				}
			}
			if runnerUp == 0 {
				return
			}
			ratios = append(ratios, phaseRatio{
				phase: info.Phase,
				ratio: float64(info.Counts[0]) / float64(runnerUp),
			})
		},
	})
	if err != nil {
		return err
	}
	tbl := trace.NewTable(
		fmt.Sprintf("E5: per-phase bias amplification of OneExtraBit, n=%d, k=%d, eps=%.1f", n, k, eps),
		"phase", "c1/c2 after phase", "(previous ratio)^2", "measured/predicted")
	ok := 0
	comparisons := 0
	for i := 1; i < len(ratios); i++ {
		pred := ratios[i-1].ratio * ratios[i-1].ratio
		got := ratios[i].ratio
		rel := got / pred
		// Quadratic growth is only meaningful while the runner-up still
		// has non-trivial support.
		if pred < float64(n)/10 {
			comparisons++
			if rel > 0.75 && rel < 1.35 {
				ok++
			}
		}
		tbl.AddRow(
			fmt.Sprintf("%d", ratios[i].phase),
			fmt.Sprintf("%.2f", got),
			fmt.Sprintf("%.2f", pred),
			fmt.Sprintf("%.2f", rel),
		)
	}
	tbl.Fprint(cfg.Out)
	fmt.Fprintf(cfg.Out, "shape: %d/%d phases match the quadratic-growth prediction within 35%%\n\n", ok, comparisons)
	return nil
}
