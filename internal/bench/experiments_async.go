package bench

import (
	"errors"
	"fmt"
	"math"

	"plurality/internal/core"
	"plurality/internal/population"
	"plurality/internal/protocols/twochoices"
	"plurality/internal/rng"
	"plurality/internal/sched"
	"plurality/internal/stats"
	"plurality/internal/trace"
)

// runE6 — Theorem 1.3 (the main theorem): the asynchronous protocol
// converges in Θ(log n) parallel time. Part (a) sweeps n and fits time
// against ln n; part (b) sweeps k and races the asynchronous Two-Choices
// baseline, whose time grows ~linearly with k on the same workload.
func runE6(cfg Config) error {
	var (
		// n starts at 2000: below that the Two-Choices bit-count signal
		// (c1²−c2²)/n falls under its own sampling noise for k=8 and the
		// amplification claim is not meaningfully testable.
		nsA = pick(cfg, []int{2000, 4000}, []int{2000, 4000, 8000, 16000, 32000})
		kA  = 8
		// The k sweep stays within the theorem's own validity range
		// k <= exp(ln n / ln ln n) (~71 at n = 16000); beyond it the
		// per-color bit counts c_j²/n drop to O(1) and the protocol's
		// w.h.p. guarantees genuinely do not apply.
		nB     = pick(cfg, 8000, 16000)
		ksB    = pick(cfg, []int{4, 16}, []int{4, 8, 16, 32, 64})
		trials = pick(cfg, 3, 3)
		eps    = 0.5
		epsB   = 1.0
	)

	tblA := trace.NewTable(
		fmt.Sprintf("E6a: async protocol consensus time vs n, k=%d, c1=(1+%.1f)c2, %d trials", kA, eps, trials),
		"n", "ln n", "median time", "time/ln n", "plurality wins")
	var lnns, times []float64
	for _, n := range nsA {
		counts, err := population.BiasedCounts(n, kA, eps)
		if err != nil {
			return err
		}
		ts, err := runTrials(trials, func(trial int) (measurement, error) {
			res, err := runCore(counts, cfg.Seed+uint64(n*10+trial), 1e6, nil)
			if err != nil {
				return measurement{}, err
			}
			return measurement{value: res.ConsensusTime, win: res.Winner == 0}, nil
		})
		if err != nil {
			return err
		}
		med := medianValue(ts)
		ln := math.Log(float64(n))
		lnns = append(lnns, float64(n))
		times = append(times, med)
		tblA.AddRow(
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.1f", ln),
			fmt.Sprintf("%.0f", med),
			fmt.Sprintf("%.1f", med/ln),
			fmt.Sprintf("%d/%d", countWins(ts), trials),
		)
	}
	tblA.Fprint(cfg.Out)
	logFit, err := stats.LogFit(lnns, times)
	if err != nil {
		return err
	}
	powFit, err := stats.PowerFit(lnns, times)
	if err != nil {
		return err
	}
	fmt.Fprintf(cfg.Out, "shape: time ~ %.1f*ln(n) %+.1f (R^2 = %.3f); power-law exponent %.2f (theory: logarithmic, exponent -> 0)\n\n",
		logFit.Slope, logFit.Intercept, logFit.R2, powFit.Slope)

	tblB := trace.NewTable(
		fmt.Sprintf("E6b: async protocol vs async Two-Choices over k, n=%d, c1=(1+%.1f)c2, %d trials", nB, epsB, trials),
		"k", "two-choices time", "core protocol time", "core converged", "ratio tc/core")
	var ksX, tcTimes, coreTimes []float64
	for _, k := range ksB {
		counts, err := population.BiasedCounts(nB, k, epsB)
		if err != nil {
			return err
		}
		tcTrials, err := runTrials(trials, func(trial int) (measurement, error) {
			res, err := runAsync(twochoices.Rule{}, counts, cfg.Seed+uint64(k*17+trial), 1e6)
			if err != nil {
				return measurement{}, err
			}
			return measurement{value: res.Time, win: res.Winner == 0}, nil
		})
		if err != nil {
			return err
		}
		// Near the theorem's k ~ exp(ln n/lnln n) boundary the w.h.p.
		// guarantee is genuinely marginal, so individual no-consensus
		// trials are an outcome to report, not a harness error. A failed
		// run contributes its wall-clock end time, which is far above
		// any converged time, so the median stays meaningful while a
		// minority of trials fail.
		coreTrials, err := runTrials(trials, func(trial int) (measurement, error) {
			res, err := runCore(counts, cfg.Seed+uint64(k*31+trial), 1e6, nil)
			if err != nil && !errors.Is(err, core.ErrNoConsensus) {
				return measurement{}, err
			}
			v := res.ConsensusTime
			if !res.Done {
				v = res.Time
			}
			return measurement{value: v, win: res.Done && res.Winner == 0, aux: boolTo01(res.Done)}, nil
		})
		if err != nil {
			return err
		}
		converged := 0
		for _, m := range coreTrials {
			if m.aux > 0 {
				converged++
			}
		}
		tcMed, coreMed := medianValue(tcTrials), medianValue(coreTrials)
		ksX = append(ksX, float64(k))
		tcTimes = append(tcTimes, tcMed)
		if converged > trials/2 {
			coreTimes = append(coreTimes, coreMed)
		} else {
			coreTimes = append(coreTimes, math.NaN())
		}
		tblB.AddRow(
			fmt.Sprintf("%d", k),
			fmt.Sprintf("%.0f", tcMed),
			fmt.Sprintf("%.0f", coreMed),
			fmt.Sprintf("%d/%d", converged, trials),
			fmt.Sprintf("%.2f", tcMed/coreMed),
		)
	}
	tblB.Fprint(cfg.Out)
	tcFit, err := stats.LinearFit(ksX, tcTimes)
	if err != nil {
		return err
	}
	// Fit the core protocol against ln k over the majority-converged rows
	// only; its k-dependence enters through the phase count, which is
	// logarithmic in k.
	var coreKs, coreYs []float64
	for i, v := range coreTimes {
		if !math.IsNaN(v) {
			coreKs = append(coreKs, ksX[i])
			coreYs = append(coreYs, v)
		}
	}
	coreFit, err := stats.LogFit(coreKs, coreYs)
	if err != nil {
		return err
	}
	crossK := crossover(tcFit, coreFit)
	fmt.Fprintf(cfg.Out, "shape: two-choices grows linearly in k (%.2f/color, R^2 = %.3f); core grows ~%.0f*ln(k); extrapolated crossover k ~ %.0f vs theorem k-limit ~%.0f at this n — the shapes match the theory, the constants place the crossover beyond laptop-scale n\n\n",
		tcFit.Slope, tcFit.R2, coreFit.Slope, crossK,
		math.Exp(math.Log(float64(nB))/math.Log(math.Log(float64(nB)))))
	return nil
}

// crossover solves tc(k) = core(k) for k, where tc is linear in k and core
// is logarithmic in k, by doubling then bisection. Returns NaN if the
// curves do not cross within k < 2^40.
func crossover(tc, coreLog stats.Fit) float64 {
	f := func(k float64) float64 {
		return tc.Slope*k + tc.Intercept - (coreLog.Slope*math.Log(k) + coreLog.Intercept)
	}
	lo := 1.0
	if f(lo) > 0 {
		return lo
	}
	hi := 2.0
	for f(hi) < 0 {
		hi *= 2
		if hi > 1<<40 {
			return math.NaN()
		}
	}
	for i := 0; i < 100; i++ {
		mid := (lo + hi) / 2
		if f(mid) < 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// runE7 — §3's weak synchronicity: with the Sync Gadget on, at most a small
// fraction of nodes is ever more than ∆ from the median working time; with
// the gadget ablated, the spread drifts upward with time.
func runE7(cfg Config) error {
	var (
		ns  = pick(cfg, []int{4000}, []int{4000, 16000, 64000})
		k   = 4
		eps = 1.0
	)
	tbl := trace.NewTable(
		fmt.Sprintf("E7: working-time synchronization, k=%d, eps=%.0f", k, eps),
		"n", "Delta", "gadget", "max poor fraction", "max spread90", "jumps")
	type obs struct {
		poorFrac float64
		spread   int64
	}
	measure := func(n int, disable bool, phases int, seed uint64) (obs, core.Result, error) {
		counts, err := population.BiasedCounts(n, k, eps)
		if err != nil {
			return obs{}, core.Result{}, err
		}
		var worst obs
		res, err := runCore(counts, seed, 1e6, func(c *core.Config) {
			c.DisableSyncGadget = disable
			c.Phases = phases
			c.ProbeInterval = 5
			c.OnProbe = func(p core.Probe) {
				if p.Active == 0 {
					return
				}
				if f := float64(p.PoorlySynced) / float64(p.Active); f > worst.poorFrac {
					worst.poorFrac = f
				}
				if p.Spread90 > worst.spread {
					worst.spread = p.Spread90
				}
			}
		})
		if err != nil && !errors.Is(err, core.ErrNoConsensus) {
			return obs{}, core.Result{}, err
		}
		return worst, res, nil
	}
	for _, n := range ns {
		spec, err := core.Plan(core.Config{}, n)
		if err != nil {
			return err
		}
		on, resOn, err := measure(n, false, 12, cfg.Seed+uint64(n))
		if err != nil {
			return err
		}
		off, resOff, err := measure(n, true, 12, cfg.Seed+uint64(n)+1)
		if err != nil {
			return err
		}
		tbl.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%d", spec.Delta), "on",
			fmt.Sprintf("%.3f", on.poorFrac), fmt.Sprintf("%d", on.spread), fmt.Sprintf("%d", resOn.Jumps))
		tbl.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%d", spec.Delta), "off",
			fmt.Sprintf("%.3f", off.poorFrac), fmt.Sprintf("%d", off.spread), fmt.Sprintf("%d", resOff.Jumps))
	}
	tbl.Fprint(cfg.Out)
	fmt.Fprintf(cfg.Out, "shape: with the gadget the poorly-synced fraction stays small and spread90 stays O(Delta); the ablation drifts upward\n\n")
	return nil
}

// runE8 — the Ω(log n) argument: in the sequential model the time until
// every node has ticked at least once is Θ(log n), and per-node tick counts
// over a Θ(log n) horizon spread by Θ(log n).
func runE8(cfg Config) error {
	var (
		ns     = pick(cfg, []int{10000, 100000}, []int{10000, 100000, 1000000})
		trials = pick(cfg, 3, 7)
	)
	tbl := trace.NewTable(
		fmt.Sprintf("E8: clock concentration in the sequential model, %d trials", trials),
		"n", "ln n", "median time until all ticked", "ratio/ln n", "median tick spread at T=3 ln n")
	var lnns, allTicked []float64
	for _, n := range ns {
		n := n
		ts, err := runTrials(trials, func(trial int) (measurement, error) {
			s, err := sched.NewSequential(n, rng.At(cfg.Seed+uint64(trial), n))
			if err != nil {
				return measurement{}, err
			}
			var (
				seen      = make([]bool, n)
				remaining = n
				coverTime float64
				counts    = make([]int32, n)
				horizon   = 3 * math.Log(float64(n))
			)
			for {
				t := s.Next()
				if t.Time <= horizon {
					counts[t.Node]++
				}
				if !seen[t.Node] {
					seen[t.Node] = true
					remaining--
					if remaining == 0 {
						coverTime = t.Time
					}
				}
				if remaining == 0 && t.Time > horizon {
					break
				}
			}
			minC, maxC := counts[0], counts[0]
			for _, c := range counts {
				if c < minC {
					minC = c
				}
				if c > maxC {
					maxC = c
				}
			}
			return measurement{value: coverTime, aux: float64(maxC - minC)}, nil
		})
		if err != nil {
			return err
		}
		coverMed := medianValue(ts)
		ln := math.Log(float64(n))
		lnns = append(lnns, float64(n))
		allTicked = append(allTicked, coverMed)
		tbl.AddRow(
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.1f", ln),
			fmt.Sprintf("%.1f", coverMed),
			fmt.Sprintf("%.2f", coverMed/ln),
			fmt.Sprintf("%.0f", medianAux(ts)),
		)
	}
	tbl.Fprint(cfg.Out)
	fit, err := stats.LogFit(lnns, allTicked)
	if err != nil {
		return err
	}
	fmt.Fprintf(cfg.Out, "shape: cover time ~ %.2f*ln(n) %+.1f (R^2 = %.3f); no algorithm can finish before every node acts, hence Omega(log n)\n\n",
		fit.Slope, fit.Intercept, fit.R2)
	return nil
}

// runE9 — §3.2's endgame safety: starting from c1 ≥ (1−ε)n and running
// part 2 only, all nodes adopt C1 before the first node halts.
func runE9(cfg Config) error {
	var (
		ns     = pick(cfg, []int{10000, 40000}, []int{10000, 40000, 160000})
		trials = pick(cfg, 3, 5)
		minorF = 0.10
	)
	tbl := trace.NewTable(
		fmt.Sprintf("E9: endgame from c1 = %.0f%% n (part 2 only), %d trials", 100*(1-minorF), trials),
		"n", "median consensus time", "median first halt", "median margin", "safe")
	var lnns, consTimes []float64
	for _, n := range ns {
		counts := []int64{int64(float64(n) * (1 - minorF)), int64(float64(n) * minorF)}
		counts[0] += int64(n) - counts[0] - counts[1]
		ts, err := runTrials(trials, func(trial int) (measurement, error) {
			res, err := runCore(counts, cfg.Seed+uint64(n+trial), 1e6, func(c *core.Config) {
				c.SkipPart1 = true
				c.RunToHalt = true
			})
			if err != nil {
				return measurement{}, err
			}
			return measurement{
				value: res.ConsensusTime,
				win:   res.EndgameSafe,
				aux:   res.FirstHaltTime,
			}, nil
		})
		if err != nil {
			return err
		}
		consMed := medianValue(ts)
		haltMed := medianAux(ts)
		lnns = append(lnns, float64(n))
		consTimes = append(consTimes, consMed)
		tbl.AddRow(
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.1f", consMed),
			fmt.Sprintf("%.1f", haltMed),
			fmt.Sprintf("%.1f", haltMed-consMed),
			fmt.Sprintf("%d/%d", countWins(ts), trials),
		)
	}
	tbl.Fprint(cfg.Out)
	fit, err := stats.LogFit(lnns, consTimes)
	if err != nil {
		return err
	}
	fmt.Fprintf(cfg.Out, "shape: endgame consensus ~ %.2f*ln(n) %+.1f (R^2 = %.3f) and always lands before the first halt\n\n",
		fit.Slope, fit.Intercept, fit.R2)
	return nil
}
