package bench

import (
	"errors"
	"fmt"
	"math"

	"plurality/internal/core"
	"plurality/internal/graph"
	"plurality/internal/population"
	"plurality/internal/protocols/onebit"
	"plurality/internal/rng"
	"plurality/internal/sched"
	"plurality/internal/stats"
	"plurality/internal/trace"
	"plurality/internal/urn"
)

// runE10 — §3.1's Pólya-urn argument: Bit-Propagation grows the bit-set
// crowd without changing its color distribution. Part (a) checks the pure
// urn martingale; part (b) checks the embedded claim: the end-of-phase
// color distribution matches the post-Two-Choices prediction c_j²/Σc_i².
func runE10(cfg Config) error {
	var (
		trialsUrn = pick(cfg, 500, 2000)
		steps     = pick(cfg, 100, 300)
	)
	initial := []int64{30, 10, 60}
	var sumFinal [3]float64
	var worstDrift float64
	for trial := 0; trial < trialsUrn; trial++ {
		u, err := urn.New(initial)
		if err != nil {
			return err
		}
		start := u.Fractions()
		if _, err := u.Run(rng.At(cfg.Seed, trial), steps, 1); err != nil {
			return err
		}
		end := u.Fractions()
		if d := urn.MartingaleDrift(start, end); d > worstDrift {
			worstDrift = d
		}
		for c, f := range end {
			sumFinal[c] += f
		}
	}
	tblA := trace.NewTable(
		fmt.Sprintf("E10a: Polya urn fraction martingale, %d trials x %d steps", trialsUrn, steps),
		"color", "initial fraction", "mean final fraction")
	for c := range initial {
		tblA.AddRow(
			fmt.Sprintf("%d", c),
			fmt.Sprintf("%.3f", float64(initial[c])/100),
			fmt.Sprintf("%.3f", sumFinal[c]/float64(trialsUrn)),
		)
	}
	tblA.Fprint(cfg.Out)
	fmt.Fprintf(cfg.Out, "shape: mean final fractions reproduce the initial ones (martingale); single-run drift can reach %.2f\n\n", worstDrift)

	// Part (b): in the protocol, the distribution set up by the
	// Two-Choices step (c_j²-proportional) must survive propagation to the
	// whole population.
	var (
		n = pick(cfg, 50000, 100000)
		k = 8
	)
	counts, err := population.BiasedCounts(n, k, 0.5)
	if err != nil {
		return err
	}
	pop, err := trialPop(counts)
	if err != nil {
		return err
	}
	g, err := graph.NewComplete(n)
	if err != nil {
		return err
	}
	tblB := trace.NewTable(
		fmt.Sprintf("E10b: OneExtraBit phase outcome vs c_j^2/sum prediction, n=%d, k=%d", n, k),
		"phase", "pred c1 share", "measured c1 share", "rel err", "bits after TC", "bits after BP")
	prev := counts
	matches, total := 0, 0
	_, err = onebit.Run(pop, onebit.Config{
		Graph:     g,
		Rand:      rng.At(cfg.Seed, 10),
		MaxPhases: 6,
		OnPhase: func(info onebit.PhaseInfo) {
			var sumSq float64
			for _, c := range prev {
				sumSq += float64(c) * float64(c)
			}
			pred := float64(prev[0]) * float64(prev[0]) / sumSq
			got := float64(info.Counts[0]) / float64(n)
			rel := math.Abs(got-pred) / pred
			total++
			if rel < 0.1 {
				matches++
			}
			tblB.AddRow(
				fmt.Sprintf("%d", info.Phase),
				fmt.Sprintf("%.3f", pred),
				fmt.Sprintf("%.3f", got),
				fmt.Sprintf("%.1f%%", 100*rel),
				fmt.Sprintf("%d", info.BitsAfterTwoChoices),
				fmt.Sprintf("%d", info.BitsAfterPropagation),
			)
			prev = info.Counts
		},
	})
	if err != nil && !isPhaseLimit(err) {
		return err
	}
	tblB.Fprint(cfg.Out)
	fmt.Fprintf(cfg.Out, "shape: %d/%d phases land within 10%% of the c_j^2 prediction — propagation preserves the post-Two-Choices distribution\n\n",
		matches, total)
	return nil
}

func isPhaseLimit(err error) bool { return errors.Is(err, onebit.ErrPhaseLimit) }

// runE11 — the Mosk-Aoyama–Shah equivalence the paper builds on: the
// sequential and continuous (Poisson-clock) schedulers yield the same
// protocol run time.
func runE11(cfg Config) error {
	var (
		ns     = pick(cfg, []int{2000}, []int{2000, 8000})
		trials = pick(cfg, 3, 5)
		k      = 8
	)
	tbl := trace.NewTable(
		fmt.Sprintf("E11: async protocol under both schedulers, k=%d, %d trials", k, trials),
		"n", "sequential time", "poisson time", "ratio")
	for _, n := range ns {
		counts, err := population.BiasedCounts(n, k, 1)
		if err != nil {
			return err
		}
		seqTrials, err := runTrials(trials, func(trial int) (measurement, error) {
			res, err := runCore(counts, cfg.Seed+uint64(n+trial), 1e6, nil)
			if err != nil {
				return measurement{}, err
			}
			return measurement{value: res.ConsensusTime, win: res.Winner == 0}, nil
		})
		if err != nil {
			return err
		}
		poiTrials, err := runTrials(trials, func(trial int) (measurement, error) {
			res, err := runCoreOn(counts, cfg.Seed+uint64(n+trial), func(nn int, r *rng.RNG) (sched.Scheduler, error) {
				return sched.NewPoisson(nn, 1, r)
			})
			if err != nil {
				return measurement{}, err
			}
			return measurement{value: res.ConsensusTime, win: res.Winner == 0}, nil
		})
		if err != nil {
			return err
		}
		seqMed, poiMed := medianValue(seqTrials), medianValue(poiTrials)
		tbl.AddRow(
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.0f", seqMed),
			fmt.Sprintf("%.0f", poiMed),
			fmt.Sprintf("%.2f", seqMed/poiMed),
		)
	}
	tbl.Fprint(cfg.Out)
	fmt.Fprintf(cfg.Out, "shape: both schedulers agree within trial noise (ratio ~ 1), matching the model-equivalence claim\n\n")
	return nil
}

// runCoreOn runs the core protocol with a custom scheduler factory.
func runCoreOn(counts []int64, seed uint64, mk func(n int, r *rng.RNG) (sched.Scheduler, error)) (core.Result, error) {
	pop, err := trialPop(counts)
	if err != nil {
		return core.Result{}, err
	}
	g, err := graph.NewComplete(pop.N())
	if err != nil {
		return core.Result{}, err
	}
	s, err := mk(pop.N(), rng.At(seed, 0))
	if err != nil {
		return core.Result{}, err
	}
	return core.Run(pop, core.Config{
		Graph:     g,
		Scheduler: s,
		Rand:      rng.At(seed, 1),
		MaxTime:   1e6,
	})
}

// runE12 — §4's extension: exponential response delays slow the protocol by
// a constant factor but preserve the Θ(log n) shape.
func runE12(cfg Config) error {
	var (
		n      = pick(cfg, 4000, 8000)
		k      = 4
		trials = pick(cfg, 3, 3)
		rates  = []float64{0, 2, 1, 0.5} // 0 = no delay; otherwise Exp(rate), mean 1/rate
	)
	tbl := trace.NewTable(
		fmt.Sprintf("E12a: async protocol with Exp response delays, n=%d, k=%d, %d trials", n, k, trials),
		"mean delay", "median consensus time", "slowdown vs instant")
	counts, err := population.BiasedCounts(n, k, 1)
	if err != nil {
		return err
	}
	var instant float64
	for _, rate := range rates {
		ts, err := runTrials(trials, func(trial int) (measurement, error) {
			res, err := runCore(counts, cfg.Seed+uint64(trial)+uint64(rate*1000), 1e6, func(c *core.Config) {
				if rate > 0 {
					c.Delay = sched.ExpDelay{Rate: rate}
				}
			})
			if err != nil {
				return measurement{}, err
			}
			return measurement{value: res.ConsensusTime, win: res.Winner == 0}, nil
		})
		if err != nil {
			return err
		}
		med := medianValue(ts)
		label := "0 (instant)"
		slow := "1.00"
		if rate == 0 {
			instant = med
		} else {
			label = fmt.Sprintf("%.1f", 1/rate)
			slow = fmt.Sprintf("%.2f", med/instant)
		}
		tbl.AddRow(label, fmt.Sprintf("%.0f", med), slow)
	}
	tbl.Fprint(cfg.Out)

	// Part (b): the log-shape survives under a fixed delay.
	nsB := pick(cfg, []int{2000, 8000}, []int{2000, 8000, 32000})
	tblB := trace.NewTable(
		fmt.Sprintf("E12b: consensus time vs n with Exp(1) delays, k=%d, %d trials", k, trials),
		"n", "ln n", "median time", "time/ln n")
	var xs, ys []float64
	for _, nn := range nsB {
		countsB, err := population.BiasedCounts(nn, k, 1)
		if err != nil {
			return err
		}
		ts, err := runTrials(trials, func(trial int) (measurement, error) {
			res, err := runCore(countsB, cfg.Seed+uint64(nn+trial), 1e6, func(c *core.Config) {
				c.Delay = sched.ExpDelay{Rate: 1}
			})
			if err != nil {
				return measurement{}, err
			}
			return measurement{value: res.ConsensusTime, win: res.Winner == 0}, nil
		})
		if err != nil {
			return err
		}
		med := medianValue(ts)
		ln := math.Log(float64(nn))
		xs = append(xs, float64(nn))
		ys = append(ys, med)
		tblB.AddRow(fmt.Sprintf("%d", nn), fmt.Sprintf("%.1f", ln),
			fmt.Sprintf("%.0f", med), fmt.Sprintf("%.1f", med/ln))
	}
	tblB.Fprint(cfg.Out)
	fit, err := stats.LogFit(xs, ys)
	if err != nil {
		return err
	}
	fmt.Fprintf(cfg.Out, "shape: delayed time ~ %.1f*ln(n) %+.1f (R^2 = %.3f) — still logarithmic, constant-factor slower\n\n",
		fit.Slope, fit.Intercept, fit.R2)
	return nil
}
