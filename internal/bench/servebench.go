package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"time"

	"plurality/internal/service"
)

// ServeBenchSchema tags BENCH_serve artifacts so comparison refuses files
// written by an incompatible harness.
const ServeBenchSchema = "plurality-serve/v1"

// ServeBenchConfig configures the daemon load benchmark behind
// BENCH_serve.json: a real service.Server behind a real HTTP listener,
// driven through three phases — distinct-job throughput, the cache probe
// (hit + byte-identical replay of a deterministic reference job) and queue
// backpressure under a saturating burst.
type ServeBenchConfig struct {
	// Smoke selects the CI-sized load (fewer jobs, smaller populations);
	// the full run uses a larger fleet of distinct jobs.
	Smoke bool
	// Seed roots the reference job and the distinct-job seed range, so the
	// reference tick count is a pure function of (config, binary).
	Seed uint64
}

// ServeThroughput is the distinct-job throughput phase: J jobs with
// distinct seeds pushed through W workers. JobsPerSec and Seconds are
// hardware-bound and never gated; the accounting identities are.
type ServeThroughput struct {
	Jobs       int     `json:"jobs"`
	Workers    int     `json:"workers"`
	Completed  int     `json:"completed"` // gated: must equal Jobs
	JobsPerSec float64 `json:"jobsPerSec"`
	Seconds    float64 `json:"seconds"`
	// P99Seconds is the daemon's own completion-latency p99 after the
	// phase (informational).
	P99Seconds float64 `json:"p99Seconds"`
}

// ServeCacheProbe is the dedupe/cache phase around one deterministic
// reference job (occupancy Two-Choices). Everything here is
// machine-portable and gated.
type ServeCacheProbe struct {
	// Hit reports the re-submission answered 200 + X-Cache: hit.
	Hit bool `json:"hit"`
	// ByteIdentical reports the cached replay body equalled the terminal
	// GET body byte for byte.
	ByteIdentical bool `json:"byteIdentical"`
	// RefConverged / RefTicks describe the reference run; ticks are
	// deterministic given the seed, so baseline drift here is a behavior
	// change in the engine or the service spec normalization, not noise.
	RefConverged bool  `json:"refConverged"`
	RefTicks     int64 `json:"refTicks"`
	// HitRate is the daemon's cache hit rate after the probe
	// (informational; depends on phase sizing).
	HitRate float64 `json:"hitRate"`
}

// ServeBackpressure is the queue-saturation phase: one worker pinned by a
// long job, a tiny queue, and a burst of further submissions. The
// accounting identities and the 429 contract are gated; nothing here
// depends on wall clock.
type ServeBackpressure struct {
	Workers    int `json:"workers"`
	QueueDepth int `json:"queueDepth"`
	Submitted  int `json:"submitted"`
	Accepted   int `json:"accepted"`
	Rejected   int `json:"rejected"` // gated: > 0 and Accepted+Rejected == Submitted
	// RetryAfterSet reports every 429 carried a Retry-After header.
	RetryAfterSet bool `json:"retryAfterSet"`
	// Canceled counts the accepted long jobs reaped by DELETE afterwards.
	Canceled int `json:"canceled"`
}

// ServeBenchReport is the full benchmark output, serialized to
// BENCH_serve.json and — from the smoke load — the committed
// BENCH_serve_baseline.json CI comparison target.
type ServeBenchReport struct {
	Schema       string            `json:"schema"`
	Go           string            `json:"go"`
	GOARCH       string            `json:"goarch"`
	Smoke        bool              `json:"smoke,omitempty"`
	Seed         uint64            `json:"seed"`
	Throughput   ServeThroughput   `json:"throughput"`
	Cache        ServeCacheProbe   `json:"cache"`
	Backpressure ServeBackpressure `json:"backpressure"`
}

// serveClient wraps the HTTP plumbing the phases share.
type serveClient struct {
	url string
}

func (c serveClient) submit(spec string) (*http.Response, []byte, error) {
	resp, err := http.Post(c.url+"/v1/jobs", "application/json", bytes.NewReader([]byte(spec)))
	if err != nil {
		return nil, nil, err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, body, err
}

func (c serveClient) get(path string) (*http.Response, []byte, error) {
	resp, err := http.Get(c.url + path)
	if err != nil {
		return nil, nil, err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, body, err
}

// serveStatus is the slice of JobStatus the harness reads back.
type serveStatus struct {
	ID      string `json:"id"`
	State   string `json:"state"`
	Reports []struct {
		Converged bool  `json:"converged"`
		Ticks     int64 `json:"ticks"`
	} `json:"reports"`
}

// waitTerminal polls one job until it leaves the queue/run states.
func (c serveClient) waitTerminal(id string, timeout time.Duration) (serveStatus, []byte, error) {
	deadline := time.Now().Add(timeout)
	for {
		resp, body, err := c.get("/v1/jobs/" + id)
		if err != nil {
			return serveStatus{}, nil, err
		}
		if resp.StatusCode != http.StatusOK {
			return serveStatus{}, nil, fmt.Errorf("bench: GET job %s: status %d: %s", id, resp.StatusCode, body)
		}
		var st serveStatus
		if err := json.Unmarshal(body, &st); err != nil {
			return serveStatus{}, nil, err
		}
		switch st.State {
		case "done", "canceled", "failed":
			return st, body, nil
		}
		if time.Now().After(deadline) {
			return st, body, fmt.Errorf("bench: job %s stuck in %s", id, st.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// refSpec is the deterministic reference job of the cache probe: a biased
// Two-Choices run on the count-collapsed engine.
func refSpec(n int64, seed uint64) string {
	c1 := n * 6 / 10
	return fmt.Sprintf(`{"protocol":"two-choices","counts":[%d,%d],"engine":"occupancy","model":"poisson","seed":%d}`,
		c1, n-c1, seed)
}

// slowSpecJSON is a job that needs ~n parallel time (Voter on a tie): it
// pins a worker for the whole backpressure phase and cancels promptly.
func slowSpecJSON(n int64, seed uint64) string {
	return fmt.Sprintf(`{"protocol":"voter","counts":[%d,%d],"engine":"per-node","maxTime":1e9,"seed":%d}`,
		n/2, n/2, seed)
}

// RunServeBench executes the three phases and writes a human-readable
// summary to out (if non-nil).
func RunServeBench(cfg ServeBenchConfig, out io.Writer) (ServeBenchReport, error) {
	rep := ServeBenchReport{
		Schema: ServeBenchSchema,
		Go:     runtime.Version(),
		GOARCH: runtime.GOARCH,
		Smoke:  cfg.Smoke,
		Seed:   cfg.Seed,
	}
	jobs, refN := 64, int64(1_000_000)
	if cfg.Smoke {
		jobs, refN = 24, 100_000
	}
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))

	// Phase 1+2 share a daemon: throughput over distinct seeds, then the
	// cache probe on the reference spec.
	srv := service.New(service.Config{QueueDepth: jobs + 8, Logger: quiet})
	ts := httptest.NewServer(srv.Handler())
	c := serveClient{url: ts.URL}

	workers := runtime.GOMAXPROCS(0)
	rep.Throughput = ServeThroughput{Jobs: jobs, Workers: workers}
	start := time.Now()
	ids := make([]string, 0, jobs)
	for i := 0; i < jobs; i++ {
		resp, body, err := c.submit(refSpec(refN/10, cfg.Seed+uint64(i)+1000))
		if err != nil {
			ts.Close()
			srv.Close()
			return rep, err
		}
		if resp.StatusCode != http.StatusAccepted {
			ts.Close()
			srv.Close()
			return rep, fmt.Errorf("bench: throughput submit %d: status %d: %s", i, resp.StatusCode, body)
		}
		var st serveStatus
		if err := json.Unmarshal(body, &st); err != nil {
			ts.Close()
			srv.Close()
			return rep, err
		}
		ids = append(ids, st.ID)
	}
	for _, id := range ids {
		st, _, err := c.waitTerminal(id, 2*time.Minute)
		if err != nil {
			ts.Close()
			srv.Close()
			return rep, err
		}
		if st.State == "done" {
			rep.Throughput.Completed++
		}
	}
	rep.Throughput.Seconds = time.Since(start).Seconds()
	if rep.Throughput.Seconds > 0 {
		rep.Throughput.JobsPerSec = float64(jobs) / rep.Throughput.Seconds
	}
	if _, body, err := c.get("/v1/metrics"); err == nil {
		var m struct {
			Latency struct {
				P99Seconds float64 `json:"p99Seconds"`
			} `json:"latency"`
		}
		if json.Unmarshal(body, &m) == nil {
			rep.Throughput.P99Seconds = m.Latency.P99Seconds
		}
	}
	if out != nil {
		fmt.Fprintf(out, "throughput: %d jobs (n=%d) on %d workers in %.2fs = %.1f jobs/s (p99 %.3fs)\n",
			jobs, refN/10, workers, rep.Throughput.Seconds, rep.Throughput.JobsPerSec, rep.Throughput.P99Seconds)
	}

	// Cache probe: run the reference job, then replay it.
	spec := refSpec(refN, cfg.Seed)
	resp, body, err := c.submit(spec)
	if err != nil {
		ts.Close()
		srv.Close()
		return rep, err
	}
	if resp.StatusCode != http.StatusAccepted {
		ts.Close()
		srv.Close()
		return rep, fmt.Errorf("bench: reference submit: status %d: %s", resp.StatusCode, body)
	}
	var st serveStatus
	if err := json.Unmarshal(body, &st); err != nil {
		ts.Close()
		srv.Close()
		return rep, err
	}
	ref, terminal, err := c.waitTerminal(st.ID, 2*time.Minute)
	if err != nil {
		ts.Close()
		srv.Close()
		return rep, err
	}
	if len(ref.Reports) == 1 {
		rep.Cache.RefConverged = ref.Reports[0].Converged
		rep.Cache.RefTicks = ref.Reports[0].Ticks
	}
	resp, cached, err := c.submit(spec)
	if err != nil {
		ts.Close()
		srv.Close()
		return rep, err
	}
	rep.Cache.Hit = resp.StatusCode == http.StatusOK && resp.Header.Get("X-Cache") == "hit"
	rep.Cache.ByteIdentical = bytes.Equal(cached, terminal)
	if _, body, err := c.get("/v1/metrics"); err == nil {
		var m struct {
			Cache struct {
				HitRate float64 `json:"hitRate"`
			} `json:"cache"`
		}
		if json.Unmarshal(body, &m) == nil {
			rep.Cache.HitRate = m.Cache.HitRate
		}
	}
	ts.Close()
	srv.Close()
	if out != nil {
		fmt.Fprintf(out, "cache: hit=%v byteIdentical=%v refTicks=%d refConverged=%v\n",
			rep.Cache.Hit, rep.Cache.ByteIdentical, rep.Cache.RefTicks, rep.Cache.RefConverged)
	}

	// Backpressure: one worker, a depth-2 queue, a burst of long jobs.
	bp, err := runServeBackpressure(cfg, quiet, out)
	if err != nil {
		return rep, err
	}
	rep.Backpressure = bp
	return rep, nil
}

// runServeBackpressure saturates a deliberately tiny daemon and accounts
// for every submission.
func runServeBackpressure(cfg ServeBenchConfig, quiet *slog.Logger, out io.Writer) (ServeBackpressure, error) {
	bp := ServeBackpressure{Workers: 1, QueueDepth: 2}
	srv := service.New(service.Config{Workers: 1, QueueDepth: 2, Logger: quiet})
	ts := httptest.NewServer(srv.Handler())
	defer srv.Close()
	defer ts.Close()
	c := serveClient{url: ts.URL}

	n := int64(200_000)
	if cfg.Smoke {
		n = 100_000
	}
	burst := 10
	bp.RetryAfterSet = true
	var accepted []string
	for i := 0; i < burst; i++ {
		resp, body, err := c.submit(slowSpecJSON(n, cfg.Seed+uint64(i)))
		if err != nil {
			return bp, err
		}
		bp.Submitted++
		switch resp.StatusCode {
		case http.StatusAccepted:
			bp.Accepted++
			var st serveStatus
			if err := json.Unmarshal(body, &st); err != nil {
				return bp, err
			}
			accepted = append(accepted, st.ID)
		case http.StatusTooManyRequests:
			bp.Rejected++
			if resp.Header.Get("Retry-After") == "" {
				bp.RetryAfterSet = false
			}
		default:
			return bp, fmt.Errorf("bench: backpressure submit %d: status %d: %s", i, resp.StatusCode, body)
		}
	}
	// Reap the long jobs so the phase exits promptly.
	for _, id := range accepted {
		req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
		if err != nil {
			return bp, err
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return bp, err
		}
		resp.Body.Close()
	}
	for _, id := range accepted {
		st, _, err := c.waitTerminal(id, 30*time.Second)
		if err != nil {
			return bp, err
		}
		if st.State == "canceled" {
			bp.Canceled++
		}
	}
	if out != nil {
		fmt.Fprintf(out, "backpressure: %d submitted = %d accepted + %d rejected (retryAfter=%v, %d reaped)\n",
			bp.Submitted, bp.Accepted, bp.Rejected, bp.RetryAfterSet, bp.Canceled)
	}
	return bp, nil
}

// Check returns the report's built-in acceptance failures — the invariants
// that must hold on any machine, baseline or not.
func (r ServeBenchReport) Check() []string {
	var fails []string
	if r.Throughput.Completed != r.Throughput.Jobs {
		fails = append(fails, fmt.Sprintf("throughput: %d/%d jobs completed", r.Throughput.Completed, r.Throughput.Jobs))
	}
	if !r.Cache.Hit {
		fails = append(fails, "cache: re-submission was not a cache hit")
	}
	if !r.Cache.ByteIdentical {
		fails = append(fails, "cache: replayed body was not byte-identical to the terminal status")
	}
	if !r.Cache.RefConverged {
		fails = append(fails, "cache: reference job did not converge")
	}
	if r.Backpressure.Rejected == 0 {
		fails = append(fails, "backpressure: saturating burst produced no 429")
	}
	if r.Backpressure.Accepted+r.Backpressure.Rejected != r.Backpressure.Submitted {
		fails = append(fails, fmt.Sprintf("backpressure: %d accepted + %d rejected != %d submitted",
			r.Backpressure.Accepted, r.Backpressure.Rejected, r.Backpressure.Submitted))
	}
	if !r.Backpressure.RetryAfterSet {
		fails = append(fails, "backpressure: a 429 lacked Retry-After")
	}
	if r.Backpressure.Canceled != r.Backpressure.Accepted {
		fails = append(fails, fmt.Sprintf("backpressure: %d/%d accepted jobs reaped by DELETE",
			r.Backpressure.Canceled, r.Backpressure.Accepted))
	}
	return fails
}

// WriteJSON serializes the report with stable indentation.
func (r ServeBenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// LoadServeBench reads a BENCH_serve artifact and checks its schema.
func LoadServeBench(path string) (ServeBenchReport, error) {
	var rep ServeBenchReport
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return rep, fmt.Errorf("bench: %s: %w", path, err)
	}
	if rep.Schema != ServeBenchSchema {
		return rep, fmt.Errorf("bench: %s: schema %q, want %q", path, rep.Schema, ServeBenchSchema)
	}
	return rep, nil
}

// CompareServe diffs a current serve report against a baseline. Only
// machine-portable quantities gate: the Check invariants on the current
// run, and the deterministic reference tick count within a relative
// tolerance band. Jobs/sec and latency are hardware-bound and never
// compared.
func CompareServe(cur, base ServeBenchReport, rel float64) []string {
	if cur.Schema != base.Schema {
		return []string{fmt.Sprintf("schema mismatch: current %q vs baseline %q", cur.Schema, base.Schema)}
	}
	if cur.Smoke != base.Smoke {
		return []string{fmt.Sprintf("load mismatch: current smoke=%v vs baseline smoke=%v — compare like against like", cur.Smoke, base.Smoke)}
	}
	regressions := cur.Check()
	if base.Cache.RefTicks > 0 {
		drift := float64(cur.Cache.RefTicks-base.Cache.RefTicks) / float64(base.Cache.RefTicks)
		if drift < 0 {
			drift = -drift
		}
		if drift > rel {
			regressions = append(regressions, fmt.Sprintf(
				"cache: reference ticks %d drifted %.0f%% from baseline %d (deterministic seed: engine or spec normalization changed)",
				cur.Cache.RefTicks, drift*100, base.Cache.RefTicks))
		}
	}
	return regressions
}
