// Package bench is the experiment harness that regenerates every
// quantitative claim of the paper as an empirical table. DESIGN.md §5 maps
// each experiment ID (E1–E12) to its paper claim, workload, and modules;
// EXPERIMENTS.md records the measured outputs.
//
// Each experiment prints one or more tables (via trace.Table) followed by
// "shape:" lines summarizing the fitted growth behaviour that the paper's
// theory predicts. Experiments are deterministic given Config.Seed.
package bench

import (
	"io"

	"plurality/internal/core"
	"plurality/internal/graph"
	"plurality/internal/population"
	"plurality/internal/protocols/dynamics"
	"plurality/internal/rng"
	"plurality/internal/sched"
)

// Config controls an experiment run.
type Config struct {
	// Out receives the experiment's tables and summary lines. Required.
	Out io.Writer
	// Quick selects reduced parameter grids (used by the benchmark
	// entry points and smoke tests); the full grids regenerate
	// EXPERIMENTS.md.
	Quick bool
	// Seed derives every trial's generator.
	Seed uint64
}

// Experiment is one reproducible experiment.
type Experiment struct {
	// ID is the experiment identifier, e.g. "e1".
	ID string
	// Title is a one-line description.
	Title string
	// Claim is the paper claim being checked.
	Claim string
	// Run executes the experiment and writes its tables to cfg.Out.
	Run func(cfg Config) error
}

// All returns every experiment in ID order.
func All() []Experiment {
	return []Experiment{
		{
			ID:    "e1",
			Title: "Synchronous Two-Choices upper bound",
			Claim: "Thm 1.1: converges to C1 in O(n/c1 * log n) rounds with bias z*sqrt(n ln n)",
			Run:   runE1,
		},
		{
			ID:    "e2",
			Title: "Synchronous Two-Choices lower bound",
			Claim: "Thm 1.1: Omega(k) rounds when c1-c2 = z*sqrt(n ln n), c2 = ... = ck",
			Run:   runE2,
		},
		{
			ID:    "e3",
			Title: "Small-bias upsets",
			Claim: "Thm 1.1: with c1-c2 = O(sqrt n), a non-plurality color wins with constant probability",
			Run:   runE3,
		},
		{
			ID:    "e4",
			Title: "OneExtraBit run time",
			Claim: "Thm 1.2: O((log(c1/(c1-c2)) + loglog n)(log k + loglog n)) rounds; beats Two-Choices' Omega(k)",
			Run:   runE4,
		},
		{
			ID:    "e5",
			Title: "Quadratic bias amplification per phase",
			Claim: "S2: after each phase c1'/cj' >= (1-o(1)) (c1/cj)^2",
			Run:   runE5,
		},
		{
			ID:    "e6",
			Title: "Asynchronous protocol run time (main theorem)",
			Claim: "Thm 1.3: Theta(log n) time with c1 >= (1+eps) ci; beats async Two-Choices as k grows",
			Run:   runE6,
		},
		{
			ID:    "e7",
			Title: "Weak synchronicity and the Sync Gadget",
			Claim: "S3: all but o(n) nodes stay within Delta = Theta(log n/loglog n); ablation drifts",
			Run:   runE7,
		},
		{
			ID:    "e8",
			Title: "Clock concentration / Omega(log n) lower bound",
			Claim: "S1.1: in the sequential model some nodes stay unselected for Theta(log n) time",
			Run:   runE8,
		},
		{
			ID:    "e9",
			Title: "Endgame safety",
			Claim: "S3.2: from c1 >= (1-eps) n, consensus lands before the first node halts",
			Run:   runE9,
		},
		{
			ID:    "e10",
			Title: "Polya-urn preservation of Bit-Propagation",
			Claim: "S3.1: the color distribution among bit-set nodes is almost unchanged by Bit-Propagation",
			Run:   runE10,
		},
		{
			ID:    "e11",
			Title: "Sequential vs continuous model equivalence",
			Claim: "S1 (via [4]): both asynchronous models yield the same run time",
			Run:   runE11,
		},
		{
			ID:    "e12",
			Title: "Exponential response delays",
			Claim: "S4: Exp(theta) response delays preserve Theta(log n) up to a constant factor",
			Run:   runE12,
		},
	}
}

// ByID returns the experiment (paper experiment or ablation) with the
// given ID.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	for _, e := range Ablations() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// --- shared measurement helpers ------------------------------------------

// trialPop instantiates a fresh population from counts.
func trialPop(counts []int64) (*population.Population, error) {
	return population.FromCounts(counts)
}

// runSync executes a sampling dynamic in the synchronous model and returns
// the number of rounds to consensus and the winner.
func runSync(rule dynamics.Rule, counts []int64, seed uint64, maxRounds int) (dynamics.SyncResult, error) {
	pop, err := trialPop(counts)
	if err != nil {
		return dynamics.SyncResult{}, err
	}
	g, err := graph.NewComplete(pop.N())
	if err != nil {
		return dynamics.SyncResult{}, err
	}
	return dynamics.RunSync(pop, rule, dynamics.SyncConfig{
		Graph:     g,
		Rand:      rng.At(seed, 0),
		MaxRounds: maxRounds,
	})
}

// runAsync executes a sampling dynamic in the asynchronous sequential model.
func runAsync(rule dynamics.Rule, counts []int64, seed uint64, maxTime float64) (dynamics.AsyncResult, error) {
	pop, err := trialPop(counts)
	if err != nil {
		return dynamics.AsyncResult{}, err
	}
	g, err := graph.NewComplete(pop.N())
	if err != nil {
		return dynamics.AsyncResult{}, err
	}
	s, err := sched.NewSequential(pop.N(), rng.At(seed, 0))
	if err != nil {
		return dynamics.AsyncResult{}, err
	}
	return dynamics.RunAsync(pop, rule, dynamics.AsyncConfig{
		Graph:     g,
		Scheduler: s,
		Rand:      rng.At(seed, 1),
		MaxTime:   maxTime,
	})
}

// runCore executes the paper's asynchronous protocol. mutate, if non-nil,
// adjusts the configuration before the run (scheduler swaps, ablations,
// delays, endgame-only studies).
func runCore(counts []int64, seed uint64, maxTime float64, mutate func(*core.Config)) (core.Result, error) {
	pop, err := trialPop(counts)
	if err != nil {
		return core.Result{}, err
	}
	g, err := graph.NewComplete(pop.N())
	if err != nil {
		return core.Result{}, err
	}
	s, err := sched.NewSequential(pop.N(), rng.At(seed, 0))
	if err != nil {
		return core.Result{}, err
	}
	cfg := core.Config{
		Graph:     g,
		Scheduler: s,
		Rand:      rng.At(seed, 1),
		MaxTime:   maxTime,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	return core.Run(pop, cfg)
}

// pick returns the quick or full variant of a parameter grid.
func pick[T any](cfg Config, quick, full T) T {
	if cfg.Quick {
		return quick
	}
	return full
}
