package bench

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"plurality"
	"plurality/internal/rng"
)

// ScaleBenchSchema tags BENCH_scale artifacts so comparison refuses files
// written by an incompatible harness. v2 added the topology axis: entries
// carry a graph-family label and SpeedupAtN keys are family-qualified for
// non-clique families.
const ScaleBenchSchema = "plurality-scale/v2"

// ScaleBenchConfig configures the engine-scaling benchmark behind
// BENCH_scale.json: full Two-Choices consensus runs (biased workload,
// eps = 1, k = 4, Poisson model) per engine × topology × population size,
// measuring delivered-tick throughput, allocated bytes per node, and
// convergence.
type ScaleBenchConfig struct {
	// Smoke selects the CI-sized grid: per-node at 1e5 (clique and
	// random-regular d=8), occupancy at 1e5 and 1e7, lumped at 1e5 and
	// 1e7, a few seconds total. The full grid takes the per-node engine to
	// 1e6, the occupancy engine to 1e9, the lumped engine to 1e9 on the
	// annealed d=8 family and the hybrid leap engine to 1e12.
	Smoke bool
	// Seed roots every trial's randomness; the report is a pure function
	// of (config, binary).
	Seed uint64
}

// ScaleBenchEntry is one engine × size measurement over a few consensus
// runs.
type ScaleBenchEntry struct {
	// Engine is "per-node" (O(n) state, every activation walked),
	// "occupancy" (count-collapsed O(k) state on the clique, no-ops leapt
	// over), "lumped" (the degree-class count matrix on an annealed
	// configuration model, O(classes × k) state) or "leap" (the hybrid
	// tau-leap/mean-field engine, approximate).
	Engine string `json:"engine"`
	// Topology is the graph family: "complete", "regular8" (quenched
	// random 8-regular on the CSR fast path) or "annealed8" (annealed
	// 8-regular, the lumped engine's mean-field law).
	Topology string `json:"topology"`
	N        int64  `json:"n"`
	Trials   int    `json:"trials"`
	// Converged counts trials that reached consensus inside the budget.
	Converged int `json:"converged"`
	// MeanConsensusTime is the mean parallel time to consensus.
	MeanConsensusTime float64 `json:"meanConsensusTime"`
	// MeanTicks is the mean number of delivered activations (skipped
	// no-ops included for the occupancy engine — the apples-to-apples
	// figure). Deterministic given the seed, so baseline comparison treats
	// drift here as a behavior change, not noise.
	MeanTicks float64 `json:"meanTicks"`
	// TicksPerSec is total delivered activations over total wall time.
	TicksPerSec float64 `json:"ticksPerSec"`
	NsPerTick   float64 `json:"nsPerTick"`
	// BytesPerNode is the heap allocated by one full run divided by n —
	// the memory model: ~4–8 B/node for the per-node engine (the color
	// vector plus engine state), ~0 for the count-collapsed engine.
	BytesPerNode float64 `json:"bytesPerNode"`
	// AllocBytes is the raw allocation total of the measured run.
	AllocBytes uint64 `json:"allocBytes"`
	// Seconds is the total wall time of the entry.
	Seconds float64 `json:"seconds"`
	// MaxRSSBytes is the process peak RSS after this entry (monotone over
	// the report; the headline acceptance bound is < 4 GiB after the
	// occupancy 1e8 run).
	MaxRSSBytes int64 `json:"maxRSSBytes"`
}

// ScaleBenchReport is the full benchmark output, serialized to
// BENCH_scale.json (full grid) and BENCH_scale_baseline.json (smoke grid,
// the CI comparison target).
type ScaleBenchReport struct {
	Schema  string            `json:"schema"`
	Go      string            `json:"go"`
	GOARCH  string            `json:"goarch"`
	Smoke   bool              `json:"smoke,omitempty"`
	Seed    uint64            `json:"seed"`
	Entries []ScaleBenchEntry `json:"entries"`
	// SpeedupAtN maps a size key to the count-collapse throughput ratio
	// where both engines ran: "<n>" is ticksPerSec(occupancy)/
	// ticksPerSec(per-node) on the clique, "regular8/<n>" is
	// ticksPerSec(lumped on annealed8)/ticksPerSec(per-node on the
	// quenched regular8 CSR fast path) — the structured-topology headline.
	SpeedupAtN map[string]float64 `json:"speedupAtN"`
}

// scaleCell is one grid point of the benchmark.
type scaleCell struct {
	engine   string
	topology string
	n        int64
	trials   int
}

func scaleGrid(smoke bool) []scaleCell {
	if smoke {
		return []scaleCell{
			{"per-node", "complete", 100_000, 3},
			{"per-node", "regular8", 100_000, 2},
			{"occupancy", "complete", 100_000, 3},
			{"occupancy", "complete", 10_000_000, 2},
			{"lumped", "annealed8", 100_000, 2},
			{"lumped", "annealed8", 10_000_000, 2},
		}
	}
	return []scaleCell{
		{"per-node", "complete", 10_000, 4},
		{"per-node", "complete", 100_000, 4},
		{"per-node", "complete", 1_000_000, 3},
		{"per-node", "regular8", 10_000, 4},
		{"per-node", "regular8", 100_000, 4},
		{"per-node", "regular8", 1_000_000, 3},
		{"occupancy", "complete", 10_000, 4},
		{"occupancy", "complete", 100_000, 4},
		{"occupancy", "complete", 1_000_000, 3},
		{"occupancy", "complete", 10_000_000, 3},
		{"occupancy", "complete", 100_000_000, 2},
		{"occupancy", "complete", 1_000_000_000, 1},
		{"lumped", "annealed8", 100_000, 4},
		{"lumped", "annealed8", 1_000_000, 3},
		{"lumped", "annealed8", 10_000_000, 3},
		{"lumped", "annealed8", 100_000_000, 2},
		{"lumped", "annealed8", 1_000_000_000, 1},
		{"leap", "complete", 1_000_000, 3},
		{"leap", "complete", 10_000_000, 3},
		{"leap", "complete", 100_000_000, 2},
		{"leap", "complete", 1_000_000_000, 2},
		{"leap", "complete", 10_000_000_000, 2},
		{"leap", "complete", 100_000_000_000, 2},
		{"leap", "complete", 1_000_000_000_000, 2},
	}
}

// RunScaleBench executes the grid and writes a human-readable summary to
// out (if non-nil). Trials run single-threaded so the per-run allocation
// measurement is clean.
func RunScaleBench(cfg ScaleBenchConfig, out io.Writer) (ScaleBenchReport, error) {
	rep := ScaleBenchReport{
		Schema:     ScaleBenchSchema,
		Go:         runtime.Version(),
		GOARCH:     runtime.GOARCH,
		Smoke:      cfg.Smoke,
		Seed:       cfg.Seed,
		SpeedupAtN: map[string]float64{},
	}
	rates := map[string]map[string]float64{} // engine -> family-qualified n -> ticks/sec
	for i, cell := range scaleGrid(cfg.Smoke) {
		entry, err := runScaleCell(cell, rng.At(cfg.Seed, i).Uint64())
		if err != nil {
			return rep, fmt.Errorf("bench: scale %s %s n=%d: %w", cell.engine, cell.topology, cell.n, err)
		}
		rep.Entries = append(rep.Entries, entry)
		if rates[cell.engine] == nil {
			rates[cell.engine] = map[string]float64{}
		}
		key := fmt.Sprintf("%d", cell.n)
		if cell.topology != "complete" {
			key = cell.topology + "/" + key
		}
		rates[cell.engine][key] = entry.TicksPerSec
		if out != nil {
			fmt.Fprintf(out, "%-10s %-9s n=%-11d %8.1f ns/tick %13.0f ticks/s  %7.2f B/node  mean T=%7.2f  rss=%dMB\n",
				entry.Engine, entry.Topology, entry.N, entry.NsPerTick, entry.TicksPerSec,
				entry.BytesPerNode, entry.MeanConsensusTime, entry.MaxRSSBytes>>20)
		}
	}
	for nKey, occ := range rates["occupancy"] {
		if per, ok := rates["per-node"][nKey]; ok && per > 0 {
			rep.SpeedupAtN[nKey] = occ / per
		}
	}
	// The structured-topology headline: the lumped engine's annealed d=8
	// cells against the per-node CSR fast path on the quenched d=8 family
	// of the same size (the exact oracle the lumped law is gated against).
	for nKey, lum := range rates["lumped"] {
		n, ok := strings.CutPrefix(nKey, "annealed8/")
		if !ok {
			continue
		}
		if per, ok := rates["per-node"]["regular8/"+n]; ok && per > 0 {
			rep.SpeedupAtN["regular8/"+n] = lum / per
		}
	}
	return rep, nil
}

// scaleGraphStream derives per-trial graph seeds; it matches the harness
// convention of claiming high stream indices (the runners use 0 and 1).
const scaleGraphStream = 1 << 10

// runScaleCell measures one engine × topology × size cell. Graph
// construction happens outside the timed region — ticks/sec measures the
// dynamics hot loop — but inside the allocation window, so BytesPerNode
// reports the family's real memory model (the CSR arena for regular8).
func runScaleCell(cell scaleCell, seedBase uint64) (ScaleBenchEntry, error) {
	entry := ScaleBenchEntry{Engine: cell.engine, Topology: cell.topology, N: cell.n, Trials: cell.trials}
	counts, err := plurality.Biased(int(cell.n), 4, 1)
	if err != nil {
		return entry, err
	}
	var (
		totalTicks int64
		totalTime  float64
		elapsed    time.Duration
	)
	for trial := 0; trial < cell.trials; trial++ {
		seed := plurality.TrialSeed(seedBase, trial)
		opts := []plurality.Option{
			plurality.WithSeed(seed),
			plurality.WithModel(plurality.Poisson),
		}
		measureAllocs := trial == 0
		var before runtime.MemStats
		if measureAllocs {
			runtime.GC()
			runtime.ReadMemStats(&before)
		}
		var (
			res plurality.AsyncResult
			err error
		)
		switch cell.engine {
		case "per-node":
			var pop *plurality.Population
			pop, err = plurality.NewPopulation(counts)
			if err != nil {
				return entry, err
			}
			popOpts := append(opts, plurality.WithEngine(plurality.EnginePerNode))
			if cell.topology == "regular8" {
				g, gerr := plurality.RandomRegularGraph(int(cell.n), 8, rng.At(seed, scaleGraphStream).Uint64())
				if gerr != nil {
					return entry, gerr
				}
				popOpts = append(popOpts, plurality.WithGraph(g))
			}
			start := time.Now()
			res, err = plurality.RunTwoChoicesAsync(pop, popOpts...)
			elapsed += time.Since(start)
		case "lumped":
			g, gerr := plurality.AnnealedRegularGraph(int(cell.n), 8)
			if gerr != nil {
				return entry, gerr
			}
			cs := append([]int64(nil), counts...)
			start := time.Now()
			res, err = plurality.RunTwoChoicesCounts(cs, append(opts, plurality.WithGraph(g), plurality.WithEngine(plurality.EngineOccupancy))...)
			elapsed += time.Since(start)
		case "leap":
			cs := append([]int64(nil), counts...)
			start := time.Now()
			res, err = plurality.RunTwoChoicesCounts(cs, append(opts, plurality.WithEngine(plurality.EngineLeap))...)
			elapsed += time.Since(start)
		default:
			cs := append([]int64(nil), counts...)
			start := time.Now()
			res, err = plurality.RunTwoChoicesCounts(cs, opts...)
			elapsed += time.Since(start)
		}
		if err != nil && !errors.Is(err, plurality.ErrTimeLimit) {
			return entry, err
		}
		if measureAllocs {
			var after runtime.MemStats
			runtime.ReadMemStats(&after)
			entry.AllocBytes = after.TotalAlloc - before.TotalAlloc
			entry.BytesPerNode = float64(entry.AllocBytes) / float64(cell.n)
		}
		totalTicks += res.Ticks
		if res.Done {
			entry.Converged++
			totalTime += res.Time
		}
	}
	entry.Seconds = elapsed.Seconds()
	if entry.Converged > 0 {
		entry.MeanConsensusTime = totalTime / float64(entry.Converged)
	}
	entry.MeanTicks = float64(totalTicks) / float64(cell.trials)
	if entry.Seconds > 0 {
		entry.TicksPerSec = float64(totalTicks) / entry.Seconds
		entry.NsPerTick = entry.Seconds * 1e9 / float64(totalTicks)
	}
	entry.MaxRSSBytes = maxRSSBytes()
	return entry, nil
}

// WriteJSON serializes the report with stable indentation.
func (r ScaleBenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// LoadScaleBench reads a BENCH_scale artifact and checks its schema.
func LoadScaleBench(path string) (ScaleBenchReport, error) {
	var rep ScaleBenchReport
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return rep, fmt.Errorf("bench: %s: %w", path, err)
	}
	if rep.Schema != ScaleBenchSchema {
		return rep, fmt.Errorf("bench: %s: schema %q, want %q", path, rep.Schema, ScaleBenchSchema)
	}
	return rep, nil
}

// CompareScale diffs a current scale report against a baseline within a
// relative tolerance band, in the spirit of exp.Compare. Only
// machine-portable quantities gate: per-cell convergence, the deterministic
// tick counts, bytes/node, and the dimensionless occupancy/per-node speedup
// ratio. Absolute ticks/sec are hardware-bound and never compared.
func CompareScale(cur, base ScaleBenchReport, rel float64) []string {
	var regressions []string
	if cur.Schema != base.Schema {
		return []string{fmt.Sprintf("schema mismatch: current %q vs baseline %q", cur.Schema, base.Schema)}
	}
	if cur.Smoke != base.Smoke {
		return []string{fmt.Sprintf("grid mismatch: current smoke=%v vs baseline smoke=%v — compare like against like", cur.Smoke, base.Smoke)}
	}
	find := func(engine, topology string, n int64) *ScaleBenchEntry {
		for i := range cur.Entries {
			if cur.Entries[i].Engine == engine && cur.Entries[i].Topology == topology && cur.Entries[i].N == n {
				return &cur.Entries[i]
			}
		}
		return nil
	}
	for _, be := range base.Entries {
		ce := find(be.Engine, be.Topology, be.N)
		if ce == nil {
			regressions = append(regressions, fmt.Sprintf("entry %s %s n=%d: present in baseline, missing from current run", be.Engine, be.Topology, be.N))
			continue
		}
		if ce.Trials > 0 && be.Trials > 0 && ce.Converged*be.Trials < be.Converged*ce.Trials {
			regressions = append(regressions, fmt.Sprintf("entry %s %s n=%d: %d/%d converged (baseline %d/%d)",
				be.Engine, be.Topology, be.N, ce.Converged, ce.Trials, be.Converged, be.Trials))
		}
		if be.MeanTicks > 0 {
			drift := (ce.MeanTicks - be.MeanTicks) / be.MeanTicks
			if drift < 0 {
				drift = -drift
			}
			if drift > rel {
				regressions = append(regressions, fmt.Sprintf("entry %s %s n=%d: mean ticks %.0f drifted %.0f%% from baseline %.0f (deterministic seeds: engine behavior changed)",
					be.Engine, be.Topology, be.N, ce.MeanTicks, drift*100, be.MeanTicks))
			}
		}
		// One spare byte per node of slack keeps allocator noise on the
		// nearly-zero occupancy figures from flagging.
		if ce.BytesPerNode > be.BytesPerNode*(1+rel)+1 {
			regressions = append(regressions, fmt.Sprintf("entry %s %s n=%d: %.2f B/node exceeds baseline %.2f by more than %.0f%%",
				be.Engine, be.Topology, be.N, ce.BytesPerNode, be.BytesPerNode, rel*100))
		}
	}
	for nKey, baseRatio := range base.SpeedupAtN {
		curRatio, ok := cur.SpeedupAtN[nKey]
		if !ok {
			regressions = append(regressions, fmt.Sprintf("speedup at n=%s: missing from current run", nKey))
			continue
		}
		if curRatio < baseRatio*(1-rel) {
			regressions = append(regressions, fmt.Sprintf("speedup at n=%s: %.1fx below baseline %.1fx by more than %.0f%%",
				nKey, curRatio, baseRatio, rel*100))
		}
	}
	return regressions
}
