package bench

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func scaleFixture() ScaleBenchReport {
	return ScaleBenchReport{
		Schema: ScaleBenchSchema,
		Smoke:  true,
		Seed:   1,
		Entries: []ScaleBenchEntry{
			{Engine: "per-node", Topology: "complete", N: 100_000, Trials: 3, Converged: 3, MeanTicks: 1.5e6, TicksPerSec: 2e7, BytesPerNode: 4.2},
			{Engine: "occupancy", Topology: "complete", N: 100_000, Trials: 3, Converged: 3, MeanTicks: 1.5e6, TicksPerSec: 2.4e8, BytesPerNode: 0.01},
			{Engine: "per-node", Topology: "regular8", N: 100_000, Trials: 2, Converged: 2, MeanTicks: 2.1e6, TicksPerSec: 1.4e7, BytesPerNode: 72},
			{Engine: "lumped", Topology: "annealed8", N: 100_000, Trials: 2, Converged: 2, MeanTicks: 2.1e6, TicksPerSec: 2.1e8, BytesPerNode: 0.02},
		},
		SpeedupAtN: map[string]float64{"100000": 12, "regular8/100000": 15},
	}
}

func TestCompareScaleClean(t *testing.T) {
	base := scaleFixture()
	cur := scaleFixture()
	// Hardware-bound drift must not flag: halve the absolute rates but
	// keep the ratio.
	cur.Entries[0].TicksPerSec /= 2
	cur.Entries[1].TicksPerSec /= 2
	cur.SpeedupAtN["100000"] = 11
	if regs := CompareScale(cur, base, 0.5); len(regs) != 0 {
		t.Fatalf("clean comparison flagged: %v", regs)
	}
}

func TestCompareScaleRegressions(t *testing.T) {
	base := scaleFixture()

	missing := scaleFixture()
	missing.Entries = missing.Entries[:1]
	delete(missing.SpeedupAtN, "100000")

	lostConvergence := scaleFixture()
	lostConvergence.Entries[1].Converged = 1

	tickDrift := scaleFixture()
	tickDrift.Entries[1].MeanTicks *= 3

	memBlowup := scaleFixture()
	memBlowup.Entries[1].BytesPerNode = 8 // occupancy suddenly O(n)

	slowdown := scaleFixture()
	slowdown.SpeedupAtN["100000"] = 2

	wrongGrid := scaleFixture()
	wrongGrid.Smoke = false

	// Same engine and n but a different family must not satisfy the
	// baseline's regular8 entry.
	wrongFamily := scaleFixture()
	wrongFamily.Entries[2].Topology = "complete"

	famSlowdown := scaleFixture()
	famSlowdown.SpeedupAtN["regular8/100000"] = 3

	cases := map[string]ScaleBenchReport{
		"missing-entry":    missing,
		"lost-convergence": lostConvergence,
		"tick-drift":       tickDrift,
		"memory-blowup":    memBlowup,
		"speedup-loss":     slowdown,
		"grid-mismatch":    wrongGrid,
		"wrong-family":     wrongFamily,
		"family-slowdown":  famSlowdown,
	}
	for name, cur := range cases {
		if regs := CompareScale(cur, base, 0.5); len(regs) == 0 {
			t.Errorf("%s: no regression flagged", name)
		}
	}
}

func TestScaleBenchRoundTrip(t *testing.T) {
	rep := scaleFixture()
	path := filepath.Join(t.TempDir(), "scale.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := LoadScaleBench(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != ScaleBenchSchema || len(got.Entries) != 4 || got.SpeedupAtN["regular8/100000"] != 15 {
		t.Fatalf("round trip mangled the report: %+v", got)
	}

	// A schema from another harness must be refused.
	bad := rep
	bad.Schema = "plurality-exp/v1"
	f2, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := bad.WriteJSON(f2); err != nil {
		t.Fatal(err)
	}
	f2.Close()
	if _, err := LoadScaleBench(path); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("wrong schema accepted: %v", err)
	}
}
