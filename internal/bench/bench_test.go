package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestRegistryWellFormed(t *testing.T) {
	all := All()
	if len(all) != 12 {
		t.Fatalf("registry has %d experiments, want 12", len(all))
	}
	seen := make(map[string]bool)
	for i, e := range all {
		if e.ID == "" || e.Title == "" || e.Claim == "" || e.Run == nil {
			t.Errorf("experiment %d incomplete: %+v", i, e)
		}
		if seen[e.ID] {
			t.Errorf("duplicate ID %q", e.ID)
		}
		seen[e.ID] = true
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("e6"); !ok {
		t.Error("e6 missing")
	}
	if _, ok := ByID("nope"); ok {
		t.Error("bogus ID resolved")
	}
}

func TestAblationsRegistry(t *testing.T) {
	for _, e := range Ablations() {
		if e.ID == "" || e.Run == nil {
			t.Errorf("incomplete ablation %+v", e)
		}
		if _, ok := ByID(e.ID); !ok {
			t.Errorf("ablation %s not resolvable via ByID", e.ID)
		}
	}
}

// TestAllExperimentsQuick runs every experiment on its reduced grid: this is
// the harness's end-to-end smoke test and doubles as the check that every
// experiment emits at least one table and one shape line.
func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("quick experiment suite still takes tens of seconds")
	}
	for _, e := range append(All(), Ablations()...) {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			var buf bytes.Buffer
			if err := e.Run(Config{Out: &buf, Quick: true, Seed: 1}); err != nil {
				t.Fatalf("%s failed: %v\noutput so far:\n%s", e.ID, err, buf.String())
			}
			out := buf.String()
			if !strings.Contains(out, "shape:") {
				t.Errorf("%s emitted no shape line:\n%s", e.ID, out)
			}
			if !strings.Contains(out, "----") {
				t.Errorf("%s emitted no table:\n%s", e.ID, out)
			}
		})
	}
}

func TestRunTrialsHelpers(t *testing.T) {
	ts, err := runTrials(5, func(i int) (measurement, error) {
		return measurement{value: float64(i), win: i%2 == 0, aux: float64(10 - i)}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 5 {
		t.Fatalf("got %d measurements", len(ts))
	}
	// Results must be in trial order despite parallel execution.
	for i, m := range ts {
		if m.value != float64(i) {
			t.Fatalf("trial %d out of order: %v", i, m.value)
		}
	}
	if medianValue(ts) != 2 {
		t.Errorf("medianValue = %v", medianValue(ts))
	}
	if medianAux(ts) != 8 {
		t.Errorf("medianAux = %v", medianAux(ts))
	}
	if countWins(ts) != 3 {
		t.Errorf("countWins = %d", countWins(ts))
	}
}

func TestRunTrialsPropagatesError(t *testing.T) {
	_, err := runTrials(4, func(i int) (measurement, error) {
		if i == 2 {
			return measurement{}, errTest
		}
		return measurement{}, nil
	})
	if err == nil {
		t.Fatal("error swallowed")
	}
}

var errTest = errorString("boom")

type errorString string

func (e errorString) Error() string { return string(e) }

func TestPickHelper(t *testing.T) {
	if got := pick(Config{Quick: true}, 1, 2); got != 1 {
		t.Fatalf("quick pick = %d", got)
	}
	if got := pick(Config{}, 1, 2); got != 2 {
		t.Fatalf("full pick = %d", got)
	}
}
