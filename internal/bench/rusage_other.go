//go:build !unix

package bench

// maxRSSBytes is unavailable off unix; the scale report records 0.
func maxRSSBytes() int64 { return 0 }
