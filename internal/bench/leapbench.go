package bench

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"plurality"
	"plurality/internal/occupancy"
	"plurality/internal/protocols"
	"plurality/internal/rng"
	"plurality/internal/sched"
)

// LeapBenchSchema tags BENCH_leap artifacts so comparison refuses files
// written by an incompatible harness.
const LeapBenchSchema = "plurality-leap/v1"

// LeapBenchConfig configures the hybrid-engine benchmark behind
// BENCH_leap_baseline.json: full consensus runs on the tau-leap/mean-field
// engine per protocol × population size (biased workload, eps = 1, k = 4,
// Poisson model), recording the machine-portable regime trace, plus a
// calibration block that measures the leap engine's consensus-time error
// against the exact engine at a size where both are affordable.
type LeapBenchConfig struct {
	// Smoke selects the CI-sized grid: leap runs at n = 1e9 plus the 1e7
	// calibration, a few seconds total. The full grid takes the leap engine
	// to n = 1e12.
	Smoke bool
	// Seed roots every trial's randomness; the report is a pure function of
	// (config, binary).
	Seed uint64
}

// LeapBenchEntry is one protocol × size measurement over a few hybrid
// consensus runs.
type LeapBenchEntry struct {
	// Protocol is the registry spec the cell ran, e.g. "two-choices".
	Protocol string `json:"protocol"`
	N        int64  `json:"n"`
	Trials   int    `json:"trials"`
	// Converged counts trials that reached consensus inside the budget.
	Converged int `json:"converged"`
	// MeanConsensusTime is the mean parallel time to consensus.
	MeanConsensusTime float64 `json:"meanConsensusTime"`
	// MeanTicks is the mean number of activations covered (leapt, handed to
	// the ODE, or walked exactly). Deterministic given the seed, so baseline
	// comparison treats drift here as a behavior change, not noise.
	MeanTicks float64 `json:"meanTicks"`
	// MeanLeapSteps / MeanExactTransitions / MeanODESteps split the work by
	// regime — the hybrid engine's cost model.
	MeanLeapSteps        float64 `json:"meanLeapSteps"`
	MeanExactTransitions float64 `json:"meanExactTransitions"`
	MeanODESteps         float64 `json:"meanODESteps"`
	// ODETimeFrac is the fraction of covered parallel time the ODE regime
	// handled (1 ⇒ the run was essentially deterministic in the bulk).
	ODETimeFrac float64 `json:"odeTimeFrac"`
	// Regimes is trial 0's regime trace, e.g. "exact>leap>ode>leap>exact"
	// — deterministic given the seed, the regime-switch half of the gate.
	Regimes string `json:"regimes"`
	// SwitchTicks is trial 0's activation count at each regime switch.
	SwitchTicks []int64 `json:"switchTicks"`
	// Seconds is the total wall time of the entry (never gated).
	Seconds   float64 `json:"seconds"`
	NsPerTick float64 `json:"nsPerTick"`
}

// LeapCalibration measures the hybrid engine against the exact
// count-collapsed engine at a size both can afford: the relative error of
// the mean consensus time over a handful of trials each. This is the
// trajectory-accuracy half of the leap gate — machine-portable because both
// sides run the same seeds on the same binary.
type LeapCalibration struct {
	Protocol string `json:"protocol"`
	N        int64  `json:"n"`
	Trials   int    `json:"trials"`
	// ExactMeanTime / LeapMeanTime are the two engines' mean consensus
	// times; RelTimeErr = |leap − exact| / exact.
	ExactMeanTime float64 `json:"exactMeanTime"`
	LeapMeanTime  float64 `json:"leapMeanTime"`
	RelTimeErr    float64 `json:"relTimeErr"`
}

// LeapBenchReport is the full benchmark output, serialized to
// BENCH_leap.json (full grid) and BENCH_leap_baseline.json (smoke grid, the
// CI comparison target).
type LeapBenchReport struct {
	Schema       string            `json:"schema"`
	Go           string            `json:"go"`
	GOARCH       string            `json:"goarch"`
	Smoke        bool              `json:"smoke,omitempty"`
	Seed         uint64            `json:"seed"`
	Entries      []LeapBenchEntry  `json:"entries"`
	Calibrations []LeapCalibration `json:"calibrations"`
}

// leapCell is one grid point of the benchmark.
type leapCell struct {
	protocol string
	n        int64
	trials   int
}

func leapGrid(smoke bool) []leapCell {
	if smoke {
		return []leapCell{
			{"two-choices", 1_000_000_000, 2},
			{"usd", 1_000_000_000, 2},
		}
	}
	return []leapCell{
		{"two-choices", 1_000_000_000, 3},
		{"two-choices", 10_000_000_000, 2},
		{"two-choices", 100_000_000_000, 2},
		{"two-choices", 1_000_000_000_000, 2},
		{"3-majority", 10_000_000_000, 2},
		{"usd", 100_000_000_000, 2},
		{"j-majority:5", 10_000_000_000, 2},
	}
}

// leapCalGrid is the calibration half: sizes where the exact engine is
// still affordable per trial. Shared between smoke and full.
func leapCalGrid() []leapCell {
	return []leapCell{
		{"two-choices", 10_000_000, 12},
		{"usd", 10_000_000, 12},
	}
}

// RunLeapBench executes the grid and writes a human-readable summary to out
// (if non-nil). Trials run single-threaded.
func RunLeapBench(cfg LeapBenchConfig, out io.Writer) (LeapBenchReport, error) {
	rep := LeapBenchReport{
		Schema: LeapBenchSchema,
		Go:     runtime.Version(),
		GOARCH: runtime.GOARCH,
		Smoke:  cfg.Smoke,
		Seed:   cfg.Seed,
	}
	for i, cell := range leapGrid(cfg.Smoke) {
		entry, err := runLeapCell(cell, rng.At(cfg.Seed, i).Uint64())
		if err != nil {
			return rep, fmt.Errorf("bench: leap %s n=%d: %w", cell.protocol, cell.n, err)
		}
		rep.Entries = append(rep.Entries, entry)
		if out != nil {
			fmt.Fprintf(out, "leap %-13s n=%-14d %6.2fs  mean T=%8.2f  ode %4.0f%% of time  regimes %s\n",
				entry.Protocol, entry.N, entry.Seconds, entry.MeanConsensusTime,
				entry.ODETimeFrac*100, entry.Regimes)
		}
	}
	for i, cell := range leapCalGrid() {
		cal, err := runLeapCalibration(cell, rng.At(cfg.Seed, 1000+i).Uint64())
		if err != nil {
			return rep, fmt.Errorf("bench: leap calibration %s n=%d: %w", cell.protocol, cell.n, err)
		}
		rep.Calibrations = append(rep.Calibrations, cal)
		if out != nil {
			fmt.Fprintf(out, "cal  %-13s n=%-14d exact T=%8.2f  leap T=%8.2f  rel err %.3f\n",
				cal.Protocol, cal.N, cal.ExactMeanTime, cal.LeapMeanTime, cal.RelTimeErr)
		}
	}
	return rep, nil
}

// leapRule resolves a registry spec to the occupancy rule the hybrid engine
// executes (dynamics.Rule and occupancy.Rule are structurally identical).
func leapRule(protocol string) (occupancy.Rule, error) {
	_, rule, err := protocols.Lookup(protocol)
	if err != nil {
		return nil, err
	}
	return rule, nil
}

// runLeapCell measures one protocol × size cell on the hybrid engine,
// calling occupancy.RunLeap directly for the regime diagnostics the public
// result type does not carry.
func runLeapCell(cell leapCell, seedBase uint64) (LeapBenchEntry, error) {
	entry := LeapBenchEntry{Protocol: cell.protocol, N: cell.n, Trials: cell.trials}
	rule, err := leapRule(cell.protocol)
	if err != nil {
		return entry, err
	}
	counts, err := plurality.Biased(int(cell.n), 4, 1)
	if err != nil {
		return entry, err
	}
	var (
		totalTicks, totalLeap, totalExact, totalODE int64
		totalTime, totalODETime                     float64
		elapsed                                     time.Duration
	)
	for trial := 0; trial < cell.trials; trial++ {
		seed := plurality.TrialSeed(seedBase, trial)
		s, err := sched.NewPoisson(int(cell.n), 1, rng.At(seed, 0))
		if err != nil {
			return entry, err
		}
		cs := append([]int64(nil), counts...)
		start := time.Now()
		res, err := occupancy.RunLeap(cs, rule, occupancy.Config{
			Scheduler: s,
			Rand:      rng.At(seed, 1),
			MaxTime:   1e6,
		}, occupancy.LeapConfig{})
		elapsed += time.Since(start)
		if err != nil && !errors.Is(err, occupancy.ErrTimeLimit) {
			return entry, err
		}
		totalTicks += res.Ticks
		totalLeap += res.LeapSteps
		totalExact += res.ExactTransitions
		totalODE += res.ODESteps
		if res.Time > 0 {
			totalODETime += res.ODETime / res.Time
		}
		if res.Done {
			entry.Converged++
			totalTime += res.Time
		}
		if trial == 0 {
			var regimes []string
			for _, sw := range res.Switches {
				regimes = append(regimes, sw.To.String())
				entry.SwitchTicks = append(entry.SwitchTicks, sw.Ticks)
			}
			entry.Regimes = strings.Join(regimes, ">")
		}
	}
	tf := float64(cell.trials)
	entry.Seconds = elapsed.Seconds()
	if entry.Converged > 0 {
		entry.MeanConsensusTime = totalTime / float64(entry.Converged)
	}
	entry.MeanTicks = float64(totalTicks) / tf
	entry.MeanLeapSteps = float64(totalLeap) / tf
	entry.MeanExactTransitions = float64(totalExact) / tf
	entry.MeanODESteps = float64(totalODE) / tf
	entry.ODETimeFrac = totalODETime / tf
	if totalTicks > 0 {
		entry.NsPerTick = entry.Seconds * 1e9 / float64(totalTicks)
	}
	return entry, nil
}

// runLeapCalibration runs the exact and the hybrid engine over the same
// workload (same seeds, the public counts API both times) and records the
// relative consensus-time error.
func runLeapCalibration(cell leapCell, seedBase uint64) (LeapCalibration, error) {
	cal := LeapCalibration{Protocol: cell.protocol, N: cell.n, Trials: cell.trials}
	counts, err := plurality.Biased(int(cell.n), 4, 1)
	if err != nil {
		return cal, err
	}
	meanTime := func(engine plurality.Engine) (float64, error) {
		var total float64
		for trial := 0; trial < cell.trials; trial++ {
			cs := append([]int64(nil), counts...)
			res, err := plurality.RunDynamicCounts(cell.protocol, cs,
				plurality.WithSeed(plurality.TrialSeed(seedBase, trial)),
				plurality.WithModel(plurality.Poisson),
				plurality.WithEngine(engine),
				plurality.WithMaxTime(1e6))
			if err != nil {
				return 0, err
			}
			total += res.Time
		}
		return total / float64(cell.trials), nil
	}
	if cal.ExactMeanTime, err = meanTime(plurality.EngineOccupancy); err != nil {
		return cal, err
	}
	if cal.LeapMeanTime, err = meanTime(plurality.EngineLeap); err != nil {
		return cal, err
	}
	if cal.ExactMeanTime > 0 {
		cal.RelTimeErr = (cal.LeapMeanTime - cal.ExactMeanTime) / cal.ExactMeanTime
		if cal.RelTimeErr < 0 {
			cal.RelTimeErr = -cal.RelTimeErr
		}
	}
	return cal, nil
}

// WriteJSON serializes the report with stable indentation.
func (r LeapBenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// LoadLeapBench reads a BENCH_leap artifact and checks its schema.
func LoadLeapBench(path string) (LeapBenchReport, error) {
	var rep LeapBenchReport
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return rep, fmt.Errorf("bench: %s: %w", path, err)
	}
	if rep.Schema != LeapBenchSchema {
		return rep, fmt.Errorf("bench: %s: schema %q, want %q", path, rep.Schema, LeapBenchSchema)
	}
	return rep, nil
}

// maxCalRelErr is the absolute ceiling on the calibration block's relative
// consensus-time error: the leap engine must stay within this of the exact
// engine regardless of what the baseline recorded. The leaping bias itself
// is well under 1% at the default Eps; the ceiling budgets the sampling
// noise of the calibration's trial counts (≈3σ) on top.
const maxCalRelErr = 0.08

// CompareLeap diffs a current leap report against a baseline within a
// relative tolerance band. Only machine-portable quantities gate: per-cell
// convergence, the deterministic tick counts and regime traces, and the
// calibration block's relative consensus-time error (which additionally must
// stay under the absolute maxCalRelErr ceiling). Wall-clock figures never
// gate.
func CompareLeap(cur, base LeapBenchReport, rel float64) []string {
	var regressions []string
	if cur.Schema != base.Schema {
		return []string{fmt.Sprintf("schema mismatch: current %q vs baseline %q", cur.Schema, base.Schema)}
	}
	if cur.Smoke != base.Smoke {
		return []string{fmt.Sprintf("grid mismatch: current smoke=%v vs baseline smoke=%v — compare like against like", cur.Smoke, base.Smoke)}
	}
	find := func(protocol string, n int64) *LeapBenchEntry {
		for i := range cur.Entries {
			if cur.Entries[i].Protocol == protocol && cur.Entries[i].N == n {
				return &cur.Entries[i]
			}
		}
		return nil
	}
	drifted := func(c, b float64) bool {
		if b == 0 {
			return c != 0
		}
		d := (c - b) / b
		if d < 0 {
			d = -d
		}
		return d > rel
	}
	for _, be := range base.Entries {
		ce := find(be.Protocol, be.N)
		if ce == nil {
			regressions = append(regressions, fmt.Sprintf("entry %s n=%d: present in baseline, missing from current run", be.Protocol, be.N))
			continue
		}
		if ce.Trials > 0 && be.Trials > 0 && ce.Converged*be.Trials < be.Converged*ce.Trials {
			regressions = append(regressions, fmt.Sprintf("entry %s n=%d: %d/%d converged (baseline %d/%d)",
				be.Protocol, be.N, ce.Converged, ce.Trials, be.Converged, be.Trials))
		}
		if drifted(ce.MeanTicks, be.MeanTicks) {
			regressions = append(regressions, fmt.Sprintf("entry %s n=%d: mean ticks %.3g drifted beyond %.0f%% from baseline %.3g (deterministic seeds: engine behavior changed)",
				be.Protocol, be.N, ce.MeanTicks, rel*100, be.MeanTicks))
		}
		if ce.Regimes != be.Regimes {
			regressions = append(regressions, fmt.Sprintf("entry %s n=%d: regime trace %q differs from baseline %q",
				be.Protocol, be.N, ce.Regimes, be.Regimes))
		} else {
			for i, bt := range be.SwitchTicks {
				if i < len(ce.SwitchTicks) && drifted(float64(ce.SwitchTicks[i]), float64(bt)) {
					regressions = append(regressions, fmt.Sprintf("entry %s n=%d: regime switch %d at tick %d drifted beyond %.0f%% from baseline %d",
						be.Protocol, be.N, i, ce.SwitchTicks[i], rel*100, bt))
				}
			}
		}
	}
	findCal := func(protocol string, n int64) *LeapCalibration {
		for i := range cur.Calibrations {
			if cur.Calibrations[i].Protocol == protocol && cur.Calibrations[i].N == n {
				return &cur.Calibrations[i]
			}
		}
		return nil
	}
	for _, bc := range base.Calibrations {
		cc := findCal(bc.Protocol, bc.N)
		if cc == nil {
			regressions = append(regressions, fmt.Sprintf("calibration %s n=%d: present in baseline, missing from current run", bc.Protocol, bc.N))
			continue
		}
		if cc.RelTimeErr > maxCalRelErr {
			regressions = append(regressions, fmt.Sprintf("calibration %s n=%d: leap consensus-time error %.3f exceeds the %.2f ceiling (exact %.2f vs leap %.2f)",
				bc.Protocol, bc.N, cc.RelTimeErr, maxCalRelErr, cc.ExactMeanTime, cc.LeapMeanTime))
		}
	}
	return regressions
}
